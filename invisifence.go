// Package invisifence is a from-scratch Go reproduction of
//
//	Blundell, Martin, Wenisch. "InvisiFence: Performance-Transparent
//	Memory Ordering in Conventional Multiprocessors." ISCA 2009.
//
// It bundles a deterministic cycle-level 16-node multiprocessor simulator
// (out-of-order cores, private L1/L2, directory MESI coherence over a 2D
// torus), conventional implementations of SC, TSO, and RMO, the paper's
// InvisiFence selective and continuous speculation mechanisms (including
// commit-on-violate), an ASO-style baseline, proxies for the paper's seven
// workloads, and experiment drivers that regenerate every figure in the
// paper's evaluation.
//
// Quick start:
//
//	cfg := invisifence.DefaultConfig()
//	cfg.Workload = "apache"
//	cfg.Variant = invisifence.SelectiveVariant(invisifence.SC)
//	res, err := invisifence.Run(cfg)
//
// Grid experiments go through [Sweep] (or cmd/sweep), which expands a
// declarative [SweepSpec] over a bounded worker pool and persists every
// result to a content-addressed cache, so overlapping experiments across
// processes and tools simulate each configuration exactly once.
//
// See README.md for the repository layout, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for measured results against the paper.
package invisifence

import (
	"fmt"

	"invisifence/internal/cache"
	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/cpu"
	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
	"invisifence/internal/node"
	"invisifence/internal/sim"
	"invisifence/internal/stats"
	"invisifence/internal/workload"
)

// Model is a memory consistency model.
type Model = consistency.Model

// The three models of §2, plus release consistency (RC).
const (
	SC  = consistency.SC
	TSO = consistency.TSO
	RMO = consistency.RMO
	RC  = consistency.RC
)

// Variant names one consistency implementation: a model plus a speculation
// policy and its store buffer sizing.
type Variant struct {
	// Name is the label used in figures ("sc", "Invisi_rmo", ...).
	Name string
	// Model is the consistency model the implementation enforces.
	Model Model
	// Engine configures post-retirement speculation (Mode Off =
	// conventional).
	Engine ifcore.Config
	// SBCapacity sizes the store buffer per Figure 6 (entries).
	SBCapacity int
}

// ConventionalVariant returns the conventional implementation of a model:
// word-FIFO store buffer for SC/TSO (64 entries), block-coalescing for RMO
// (8 entries).
func ConventionalVariant(m Model) Variant {
	cap := 64
	if consistency.RulesFor(m).SB == consistency.SBCoalescingBlock {
		cap = 8
	}
	return Variant{
		Name:       m.String(),
		Model:      m,
		Engine:     ifcore.Config{Mode: ifcore.ModeOff, Model: m},
		SBCapacity: cap,
	}
}

// SelectiveVariant returns INVISIFENCE-SELECTIVE for a model: a single
// checkpoint and an 8-entry coalescing buffer (the paper's
// highest-performing configuration).
func SelectiveVariant(m Model) Variant {
	return Variant{
		Name:       "Invisi_" + m.String(),
		Model:      m,
		Engine:     ifcore.DefaultSelective(m),
		SBCapacity: 8,
	}
}

// Selective2CkptVariant returns the two-checkpoint selective variant of
// §6.4 (32-entry buffer per Figure 6).
func Selective2CkptVariant(m Model) Variant {
	eng := ifcore.DefaultSelective(m)
	eng.MaxCheckpoints = 2
	return Variant{
		Name:       "Invisi_" + m.String() + "-2ckpt",
		Model:      m,
		Engine:     eng,
		SBCapacity: 32,
	}
}

// ContinuousVariant returns INVISIFENCE-CONTINUOUS (§4.2), optionally with
// the commit-on-violate policy (§3.2, 4000-cycle timeout).
func ContinuousVariant(cov bool) Variant {
	name := "Invisi_cont"
	if cov {
		name = "Invisi_cont_CoV"
	}
	return Variant{
		Name:       name,
		Model:      SC,
		Engine:     ifcore.DefaultContinuous(cov),
		SBCapacity: 32,
	}
}

// ASOVariant returns the ASO-style baseline (§2.2/§6.4) enforcing SC.
func ASOVariant() Variant {
	return Variant{
		Name:       "ASO_sc",
		Model:      SC,
		Engine:     ifcore.DefaultASO(),
		SBCapacity: 32,
	}
}

// LouvreVariant returns the Louvre-style versioned-ordering baseline over
// release consistency: version epochs open only at release boundaries
// (two in flight: current + draining, hence the 32-entry buffer), with
// squash-on-version-conflict instead of general speculation.
func LouvreVariant() Variant {
	return Variant{
		Name:       "Louvre_rc",
		Model:      RC,
		Engine:     ifcore.DefaultLouvre(),
		SBCapacity: 32,
	}
}

// MachineConfig is the Figure 6 system model. Capacities are scaled to the
// proxy workloads' footprints (see DESIGN.md §1); latencies follow the
// paper at 4 GHz.
type MachineConfig struct {
	Width, Height int
	HopLatency    uint64 // cycles per torus hop (25 ns = 100)
	LocalLatency  uint64
	Jitter        uint64 // interleaving exploration (0 in experiments)
	// LinkBandwidth enables the per-link contention model: cycles per flit
	// on each torus injection link (messages queue at busy links, DESIGN.md
	// §10). 0 — the calibrated Figure 6 default — keeps the latency-only
	// torus, bit-exact with the pre-contention simulator; the omitempty tag
	// keeps bandwidth-0 cache keys and golden results byte-stable.
	LinkBandwidth uint64 `json:"LinkBandwidth,omitempty"`

	L1Bytes, L1Ways int
	L1Latency       uint64
	L2Bytes, L2Ways int
	L2Latency       uint64

	MemLatency uint64
	MemBanks   int
	BankBusy   uint64

	MSHRs              int
	StorePrefetchDepth int
	MsgsPerCycle       int

	Core cpu.Config
}

// DefaultMachine returns the Figure 6 configuration (L2 scaled from 8 MB
// to 1 MB per node to match the proxy working sets).
func DefaultMachine() MachineConfig {
	return MachineConfig{
		Width: 4, Height: 4,
		HopLatency:   100,
		LocalLatency: 1,
		L1Bytes:      64 << 10, L1Ways: 2, L1Latency: 2,
		L2Bytes: 1 << 20, L2Ways: 8, L2Latency: 25,
		MemLatency: 160, MemBanks: 64, BankBusy: 8,
		MSHRs:              32,
		StorePrefetchDepth: 8,
		MsgsPerCycle:       8,
		Core:               cpu.DefaultConfig(),
	}
}

// Config is one simulation run.
type Config struct {
	Machine  MachineConfig
	Variant  Variant
	Workload string
	Seed     int64
	// Scale multiplies workload size (1.0 = calibrated default).
	Scale float64
	// MaxCycles bounds the run (0 = the runner's generous default).
	MaxCycles uint64
	// DisableIdleSkip runs the naive lock-step cycle loop instead of the
	// event-horizon scheduler. Simulated results are bit-identical either
	// way (enforced by the golden tests), so the flag is excluded from
	// cache keys; it exists for cmd/bench speedup measurements and as a
	// diagnostic bisect knob.
	DisableIdleSkip bool `json:"-"`
	// Clusters >= 2 selects the conservative parallel runner: per-node
	// local clocks with one goroutine per node cluster, synchronized at
	// epoch barriers (DESIGN.md §7). Results are bit-identical to the
	// serial loops (TestParallelBitExact), so — like DisableIdleSkip — the
	// knob is a scheduler selection, excluded from cache keys. Values the
	// runner cannot honor (more clusters than nodes, jitter, lock-step)
	// fall back to the serial scheduler.
	Clusters int `json:"-"`
}

// DefaultConfig returns a 16-core run of apache under conventional SC.
func DefaultConfig() Config {
	return Config{
		Machine:  DefaultMachine(),
		Variant:  ConventionalVariant(SC),
		Workload: "apache",
		Seed:     1,
		Scale:    1.0,
	}
}

// Result is a completed run.
type Result struct {
	Config    Config
	Cycles    uint64
	Retired   uint64
	Breakdown stats.Breakdown
	// SpecFraction is the share of core-cycles spent inside speculation
	// (Figure 10).
	SpecFraction float64
	// Counters aggregates interesting events.
	Speculations, Commits, Aborts uint64
	CoVDeferrals, CoVSaves        uint64
	CleaningWBs                   uint64
	// NetStats is the link-contention telemetry (queuing delay, link busy
	// cycles, queue depths), embedded so its fields — every one zero, and
	// omitted from the JSON encoding, unless Machine.LinkBandwidth was
	// non-zero — marshal flat, keeping bandwidth-0 golden results and
	// cached entries byte-stable.
	stats.NetStats
	// Validated reports that the workload's end-to-end data invariant held.
	Validated bool
}

// Workloads lists the seven paper workloads in Figure 1/7 order.
func Workloads() []string { return workload.Names() }

// Run executes one configuration and validates the workload invariant.
func Run(cfg Config) (Result, error) { return RunBounded(cfg, 0) }

// RunBounded is Run with an external cycle backstop: the simulation is
// bounded by the smaller of cfg.MaxCycles (defaulted when zero) and
// backstop (ignored when zero). The bound never enters cfg — MaxCycles
// participates in cache keys, so a service-side backstop must cap the
// run without changing what run it is.
func RunBounded(cfg Config, backstop uint64) (Result, error) {
	cores := cfg.Machine.Width * cfg.Machine.Height
	wl, err := workload.Get(cfg.Workload, workload.Params{
		Cores: cores,
		Model: cfg.Variant.Model,
		Seed:  cfg.Seed,
		Scale: cfg.Scale,
	})
	if err != nil {
		return Result{}, err
	}
	maxCycles := cfg.MaxCycles
	if maxCycles == 0 {
		maxCycles = 500_000_000
	}
	if backstop != 0 && backstop < maxCycles {
		maxCycles = backstop
	}
	scfg := sim.Config{
		Net: network.Config{
			Width: cfg.Machine.Width, Height: cfg.Machine.Height,
			HopLatency: cfg.Machine.HopLatency, LocalLatency: cfg.Machine.LocalLatency,
			Jitter: cfg.Machine.Jitter, Seed: cfg.Seed,
			LinkBandwidth: cfg.Machine.LinkBandwidth,
		},
		Node: node.Config{
			Model:              cfg.Variant.Model,
			Engine:             cfg.Variant.Engine,
			Core:               cfg.Machine.Core,
			L1:                 cache.Config{SizeBytes: cfg.Machine.L1Bytes, Ways: cfg.Machine.L1Ways, HitLatency: cfg.Machine.L1Latency, Name: "L1"},
			L2:                 cache.Config{SizeBytes: cfg.Machine.L2Bytes, Ways: cfg.Machine.L2Ways, HitLatency: cfg.Machine.L2Latency, Name: "L2"},
			Memory:             memctrl.Config{AccessLatency: cfg.Machine.MemLatency, Banks: cfg.Machine.MemBanks, BankBusy: cfg.Machine.BankBusy},
			MSHRs:              cfg.Machine.MSHRs,
			SBCapacity:         cfg.Variant.SBCapacity,
			StorePrefetchDepth: cfg.Machine.StorePrefetchDepth,
			MsgsPerCycle:       cfg.Machine.MsgsPerCycle,
			SnoopLQ:            true,
			FillHoldCycles:     8,
		},
		MaxCycles:       maxCycles,
		WatchdogCycles:  2_000_000,
		DisableIdleSkip: cfg.DisableIdleSkip,
		Clusters:        cfg.Clusters,
	}
	s := sim.New(scfg, wl.Programs, wl.RegInit)
	for a, v := range wl.MemInit {
		s.WriteWord(a, v)
	}
	r := s.Run()
	if !r.Finished {
		return Result{}, fmt.Errorf("invisifence: %s/%s did not finish within %d cycles",
			cfg.Workload, cfg.Variant.Name, maxCycles)
	}
	if err := wl.Validate(func(a memtypes.Addr) memtypes.Word { return s.ReadWord(a) }); err != nil {
		return Result{}, fmt.Errorf("invisifence: %s/%s invariant violated: %w",
			cfg.Workload, cfg.Variant.Name, err)
	}
	return Result{
		Config:       cfg,
		Cycles:       r.Cycles,
		Retired:      r.Retired,
		Breakdown:    r.Breakdown,
		SpecFraction: r.SpecFraction,
		Speculations: r.Speculations,
		Commits:      r.Commits,
		Aborts:       r.Aborts,
		CoVDeferrals: r.CoVDeferrals,
		CoVSaves:     r.CoVSaves,
		CleaningWBs:  r.CleaningWBs,
		NetStats:     r.Net,
		Validated:    true,
	}, nil
}
