package invisifence

import (
	"fmt"
	"testing"
)

// The benchmarks regenerate every evaluation figure at reduced scale (so
// `go test -bench=.` completes in minutes) and report the figure's headline
// metric via b.ReportMetric. cmd/figures regenerates the full-scale tables.

// benchOpts is the reduced-scale campaign configuration for benchmarks.
func benchOpts() ExpOptions {
	return ExpOptions{Seeds: []int64{1}, Scale: 0.25, Parallel: 4}
}

func benchRun(b *testing.B, cfg Config) Result {
	b.Helper()
	res, err := Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func benchConfig(wl string, v Variant, scale float64) Config {
	cfg := DefaultConfig()
	cfg.Workload = wl
	cfg.Variant = v
	cfg.Scale = scale
	return cfg
}

// BenchmarkFigure1 reports conventional ordering-stall fractions: SB-stall
// cycles as a share of SC execution per model (Figure 1's bars).
func BenchmarkFigure1(b *testing.B) {
	for _, wl := range Workloads() {
		b.Run(wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var scTotal float64
				for _, v := range []Variant{ConventionalVariant(SC), ConventionalVariant(TSO), ConventionalVariant(RMO)} {
					res := benchRun(b, benchConfig(wl, v, 0.25))
					if v.Model == SC {
						scTotal = float64(res.Breakdown.Total())
					}
					stall := float64(res.Breakdown[2] + res.Breakdown[3])
					b.ReportMetric(100*stall/scTotal, "sbstall_pct_"+v.Name)
				}
			}
		})
	}
}

// BenchmarkFigure8 reports speedups over conventional SC for the six-bar
// group of Figure 8.
func BenchmarkFigure8(b *testing.B) {
	variants := []Variant{
		ConventionalVariant(TSO), ConventionalVariant(RMO),
		SelectiveVariant(SC), SelectiveVariant(TSO), SelectiveVariant(RMO),
	}
	for _, wl := range Workloads() {
		b.Run(wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := benchRun(b, benchConfig(wl, ConventionalVariant(SC), 0.25))
				for _, v := range variants {
					res := benchRun(b, benchConfig(wl, v, 0.25))
					b.ReportMetric(float64(base.Cycles)/float64(res.Cycles), "speedup_"+v.Name)
				}
			}
		})
	}
}

// BenchmarkFigure9 reports the runtime breakdown (percent of SC cycles) for
// INVISIFENCE-SELECTIVE-SC: the bar the paper uses to show where the
// eliminated stalls went.
func BenchmarkFigure9(b *testing.B) {
	for _, wl := range Workloads() {
		b.Run(wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := benchRun(b, benchConfig(wl, ConventionalVariant(SC), 0.25))
				res := benchRun(b, benchConfig(wl, SelectiveVariant(SC), 0.25))
				scTotal := float64(base.Breakdown.Total())
				names := []string{"busy", "other", "sbfull", "sbdrain", "violation"}
				for c, name := range names {
					b.ReportMetric(100*float64(res.Breakdown[c])/scTotal, name+"_pct")
				}
			}
		})
	}
}

// BenchmarkFigure10 reports percent of cycles spent speculating per
// selective variant (Figure 10).
func BenchmarkFigure10(b *testing.B) {
	for _, wl := range Workloads() {
		b.Run(wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, v := range []Variant{SelectiveVariant(SC), SelectiveVariant(TSO), SelectiveVariant(RMO)} {
					res := benchRun(b, benchConfig(wl, v, 0.25))
					b.ReportMetric(100*res.SpecFraction, "spec_pct_"+v.Name)
				}
			}
		})
	}
}

// BenchmarkFigure11 reports runtime normalized to the ASO baseline for
// one- and two-checkpoint INVISIFENCE-SELECTIVE-SC (Figure 11).
func BenchmarkFigure11(b *testing.B) {
	for _, wl := range Workloads() {
		b.Run(wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				aso := benchRun(b, benchConfig(wl, ASOVariant(), 0.25))
				one := benchRun(b, benchConfig(wl, SelectiveVariant(SC), 0.25))
				two := benchRun(b, benchConfig(wl, Selective2CkptVariant(SC), 0.25))
				b.ReportMetric(float64(one.Cycles)/float64(aso.Cycles), "norm_1ckpt")
				b.ReportMetric(float64(two.Cycles)/float64(aso.Cycles), "norm_2ckpt")
			}
		})
	}
}

// BenchmarkFigure12 reports runtime normalized to SC for continuous
// speculation with and without commit-on-violate, against RMO and
// INVISIFENCE-RMO (Figure 12).
func BenchmarkFigure12(b *testing.B) {
	variants := []Variant{
		ContinuousVariant(false), ConventionalVariant(RMO),
		ContinuousVariant(true), SelectiveVariant(RMO),
	}
	for _, wl := range Workloads() {
		b.Run(wl, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base := benchRun(b, benchConfig(wl, ConventionalVariant(SC), 0.25))
				for _, v := range variants {
					res := benchRun(b, benchConfig(wl, v, 0.25))
					b.ReportMetric(float64(res.Cycles)/float64(base.Cycles), "norm_"+v.Name)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §6): design-choice sweeps beyond the paper's
// figures, including the "sensitivity studies (not shown)" of §6.1.
// ---------------------------------------------------------------------

// BenchmarkAblationSBSize sweeps the coalescing store buffer capacity for
// INVISIFENCE-SELECTIVE-SC (the paper found 8 entries sufficient).
func BenchmarkAblationSBSize(b *testing.B) {
	for _, size := range []int{2, 4, 8, 16, 32} {
		b.Run(fmt.Sprintf("sb%d", size), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := SelectiveVariant(SC)
				v.SBCapacity = size
				res := benchRun(b, benchConfig("apache", v, 0.25))
				b.ReportMetric(float64(res.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationChunkSize sweeps the continuous minimum chunk size
// (~100 instructions in Figure 4).
func BenchmarkAblationChunkSize(b *testing.B) {
	for _, chunk := range []int{25, 50, 100, 200, 400} {
		b.Run(fmt.Sprintf("chunk%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := ContinuousVariant(true)
				v.Engine.MinChunk = chunk
				res := benchRun(b, benchConfig("ocean", v, 0.25))
				b.ReportMetric(float64(res.Cycles), "cycles")
				b.ReportMetric(float64(res.Aborts), "aborts")
			}
		})
	}
}

// BenchmarkAblationCoVTimeout sweeps the commit-on-violate deferral window
// (the paper evaluates 4000 cycles).
func BenchmarkAblationCoVTimeout(b *testing.B) {
	for _, timeout := range []uint64{250, 1000, 4000, 16000} {
		b.Run(fmt.Sprintf("cov%d", timeout), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := ContinuousVariant(true)
				v.Engine.CoVTimeout = timeout
				res := benchRun(b, benchConfig("oltp-oracle", v, 0.25))
				b.ReportMetric(float64(res.Cycles), "cycles")
				b.ReportMetric(float64(res.CoVSaves), "cov_saves")
			}
		})
	}
}

// BenchmarkAblationStorePrefetch toggles Flexus-style store prefetching in
// the conventional TSO baseline.
func BenchmarkAblationStorePrefetch(b *testing.B) {
	for _, depth := range []int{0, 4, 8, 16} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cfg := benchConfig("ocean", ConventionalVariant(TSO), 0.25)
				cfg.Machine.StorePrefetchDepth = depth
				res := benchRun(b, cfg)
				b.ReportMetric(float64(res.Cycles), "cycles")
			}
		})
	}
}

// BenchmarkAblationSelectiveCoV applies commit-on-violate to selective
// speculation (§6.6: the paper found < 1% average benefit).
func BenchmarkAblationSelectiveCoV(b *testing.B) {
	for _, cov := range []uint64{0, 4000} {
		b.Run(fmt.Sprintf("cov%d", cov), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := SelectiveVariant(SC)
				v.Engine.CoVTimeout = cov
				res := benchRun(b, benchConfig("oltp-db2", v, 0.25))
				b.ReportMetric(float64(res.Cycles), "cycles")
				b.ReportMetric(float64(res.Aborts), "aborts")
			}
		})
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (host time per
// simulated cycle) — useful when hacking on the simulator itself.
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := benchRun(b, benchConfig("barnes", ConventionalVariant(RMO), 0.25))
		b.ReportMetric(float64(res.Cycles), "simcycles")
	}
}

// ---------------------------------------------------------------------
// Simulator-core performance benchmarks (the cmd/bench reference grid).
// These track host-side cost — ns/run, simulated cycles per host second,
// allocations — not simulated outcomes; BENCH_<n>.json files record the
// trajectory across PRs.
// ---------------------------------------------------------------------

// BenchmarkSimCore runs the reference grid: every paper workload under
// conventional SC and INVISIFENCE-SELECTIVE-SC at reduced scale.
func BenchmarkSimCore(b *testing.B) {
	for _, wl := range Workloads() {
		for _, v := range []Variant{ConventionalVariant(SC), SelectiveVariant(SC)} {
			b.Run(wl+"/"+v.Name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := benchRun(b, benchConfig(wl, v, 0.25))
					b.ReportMetric(float64(res.Cycles)/b.Elapsed().Seconds()*float64(b.N), "simcycles/s")
				}
			})
		}
	}
}

// BenchmarkSimCoreLockstep is the apache/SC reference cell with the
// event-horizon scheduler disabled: the denominator for the idle-skip
// speedup (cmd/bench reports the ratio).
func BenchmarkSimCoreLockstep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig("apache", ConventionalVariant(SC), 0.25)
		cfg.DisableIdleSkip = true
		res := benchRun(b, cfg)
		b.ReportMetric(float64(res.Cycles), "simcycles")
	}
}
