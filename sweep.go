package invisifence

import (
	"fmt"
	"math"
	"strings"
	"sync"

	ifcore "invisifence/internal/core"
	"invisifence/internal/runcache"
	"invisifence/internal/sweep"
)

// VariantNames lists the CLI/spec names accepted by VariantByName, in
// canonical order.
func VariantNames() []string {
	return []string{
		"sc", "tso", "rmo", "rc",
		"invisi-sc", "invisi-tso", "invisi-rmo", "invisi-rc", "invisi-sc-2ckpt",
		"continuous", "continuous-cov", "aso", "louvre-rc",
	}
}

// VariantByName resolves a spec/CLI name ("sc", "invisi-tso",
// "continuous-cov", ...) to its Variant. Names are case-insensitive.
func VariantByName(name string) (Variant, error) {
	switch strings.ToLower(name) {
	case "sc":
		return ConventionalVariant(SC), nil
	case "tso":
		return ConventionalVariant(TSO), nil
	case "rmo":
		return ConventionalVariant(RMO), nil
	case "rc":
		return ConventionalVariant(RC), nil
	case "invisi-sc":
		return SelectiveVariant(SC), nil
	case "invisi-tso":
		return SelectiveVariant(TSO), nil
	case "invisi-rmo":
		return SelectiveVariant(RMO), nil
	case "invisi-rc":
		return SelectiveVariant(RC), nil
	case "invisi-sc-2ckpt":
		return Selective2CkptVariant(SC), nil
	case "continuous":
		return ContinuousVariant(false), nil
	case "continuous-cov":
		return ContinuousVariant(true), nil
	case "aso":
		return ASOVariant(), nil
	case "louvre-rc":
		return LouvreVariant(), nil
	}
	return Variant{}, fmt.Errorf("unknown variant %q (want one of %s)",
		name, strings.Join(VariantNames(), ", "))
}

// TorusFor factors a node count into the squarest W x H torus (4 -> 2x2,
// 8 -> 4x2, 16 -> 4x4). Prime counts degenerate to Nx1.
func TorusFor(nodes int) (w, h int, err error) {
	if nodes < 1 {
		return 0, 0, fmt.Errorf("invisifence: node count %d < 1", nodes)
	}
	for h = int(math.Sqrt(float64(nodes))); h > 1; h-- {
		if nodes%h == 0 {
			break
		}
	}
	if h < 1 {
		h = 1
	}
	return nodes / h, h, nil
}

// SweepSpec declares a parameter grid: the cross-product of every listed
// axis becomes one job per cell. Empty axes fall back to defaults
// (documented per field), so the zero spec is a single conventional-SC run
// of every workload. Specs round-trip through JSON for cmd/sweep.
type SweepSpec struct {
	// Workloads to run (default: all seven paper workloads).
	Workloads []string `json:"workloads,omitempty"`
	// Variants by VariantByName name (default: ["sc"]).
	Variants []string `json:"variants,omitempty"`
	// SBDepths overrides the store-buffer capacity in entries; 0 keeps
	// the variant's Figure 6 default (default: [0]).
	SBDepths []int `json:"sb_depths,omitempty"`
	// Checkpoints overrides MaxCheckpoints for speculative variants; 0
	// keeps the variant default, and conventional variants ignore the
	// axis (default: [0]).
	Checkpoints []int `json:"checkpoints,omitempty"`
	// Nodes lists total node counts, each factored into the squarest
	// torus by TorusFor (default: the machine's configured W*H).
	Nodes []int `json:"nodes,omitempty"`
	// LinkBandwidths lists torus link bandwidths in cycles per flit
	// (MachineConfig.LinkBandwidth); 0 keeps the latency-only torus, so
	// contention is a sweepable axis (default: [0]).
	LinkBandwidths []uint64 `json:"link_bandwidths,omitempty"`
	// Seeds lists run seeds (default: [1]).
	Seeds []int64 `json:"seeds,omitempty"`
	// Scale multiplies workload size (default 1.0).
	Scale float64 `json:"scale,omitempty"`
	// MaxCycles bounds each run (0 = the runner's default).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// Machine overrides the base system model (nil = DefaultMachine);
	// Nodes then overrides its dimensions per cell.
	Machine *MachineConfig `json:"machine,omitempty"`
}

// normalized returns a copy with every defaulted axis filled in.
func (s SweepSpec) normalized() SweepSpec {
	if len(s.Workloads) == 0 {
		s.Workloads = Workloads()
	}
	if len(s.Variants) == 0 {
		s.Variants = []string{"sc"}
	}
	if len(s.SBDepths) == 0 {
		s.SBDepths = []int{0}
	}
	if len(s.Checkpoints) == 0 {
		s.Checkpoints = []int{0}
	}
	if s.Machine == nil {
		m := DefaultMachine()
		s.Machine = &m
	}
	if len(s.Nodes) == 0 {
		s.Nodes = []int{s.Machine.Width * s.Machine.Height}
	}
	if len(s.LinkBandwidths) == 0 {
		s.LinkBandwidths = []uint64{s.Machine.LinkBandwidth}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []int64{1}
	}
	if s.Scale == 0 {
		s.Scale = 1.0
	}
	return s
}

// grid builds the declarative axes in canonical order (workload slowest,
// seed fastest), matching the row order of SweepOutcome.Table.
func (s SweepSpec) grid() sweep.Grid {
	anys := func(n int, at func(int) any) []any {
		vs := make([]any, n)
		for i := range vs {
			vs[i] = at(i)
		}
		return vs
	}
	return sweep.Grid{Axes: []sweep.Axis{
		{Name: "workload", Values: anys(len(s.Workloads), func(i int) any { return s.Workloads[i] })},
		{Name: "variant", Values: anys(len(s.Variants), func(i int) any { return s.Variants[i] })},
		{Name: "sb", Values: anys(len(s.SBDepths), func(i int) any { return s.SBDepths[i] })},
		{Name: "ckpt", Values: anys(len(s.Checkpoints), func(i int) any { return s.Checkpoints[i] })},
		{Name: "nodes", Values: anys(len(s.Nodes), func(i int) any { return s.Nodes[i] })},
		{Name: "linkbw", Values: anys(len(s.LinkBandwidths), func(i int) any { return s.LinkBandwidths[i] })},
		{Name: "seed", Values: anys(len(s.Seeds), func(i int) any { return s.Seeds[i] })},
	}}
}

// Jobs expands the spec into concrete run configurations, in deterministic
// row-major order (workload slowest, seed fastest). Cells that expand to
// identical configurations — e.g. a Checkpoints axis crossed with a
// conventional variant, which ignores it — are deduplicated, keeping the
// first occurrence, so no configuration ever simulates twice.
func (s SweepSpec) Jobs() ([]Config, error) {
	s = s.normalized()
	points := s.grid().Expand()
	jobs := make([]Config, 0, len(points))
	seen := make(map[string]bool, len(points))
	for _, p := range points {
		wl := p.Values[0].(string)
		vname := p.Values[1].(string)
		sbDepth := p.Values[2].(int)
		ckpts := p.Values[3].(int)
		nodes := p.Values[4].(int)
		linkbw := p.Values[5].(uint64)
		seed := p.Values[6].(int64)

		v, err := VariantByName(vname)
		if err != nil {
			return nil, err
		}
		if sbDepth > 0 {
			v.SBCapacity = sbDepth
			v.Name += fmt.Sprintf("@sb%d", sbDepth)
		} else if sbDepth < 0 {
			return nil, fmt.Errorf("invisifence: negative store-buffer depth %d", sbDepth)
		}
		if ckpts > 0 && v.Engine.Mode != ifcore.ModeOff {
			v.Engine.MaxCheckpoints = ckpts
			v.Name += fmt.Sprintf("@ckpt%d", ckpts)
		} else if ckpts < 0 {
			return nil, fmt.Errorf("invisifence: negative checkpoint count %d", ckpts)
		}
		m := *s.Machine
		m.Width, m.Height, err = TorusFor(nodes)
		if err != nil {
			return nil, err
		}
		m.LinkBandwidth = linkbw
		cfg := Config{
			Machine:   m,
			Variant:   v,
			Workload:  wl,
			Seed:      seed,
			Scale:     s.Scale,
			MaxCycles: s.MaxCycles,
		}
		if k := resultKey(cfg); !seen[k] {
			seen[k] = true
			jobs = append(jobs, cfg)
		}
	}
	return jobs, nil
}

// Size returns the number of cells in the spec's grid before
// deduplication; len(Jobs()) can be smaller when axes overlap (see Jobs).
func (s SweepSpec) Size() int { return s.normalized().grid().Size() }

// SweepOptions configures Sweep's execution (not its results: two sweeps
// of the same spec produce identical outcomes whatever the options).
type SweepOptions struct {
	// Parallel bounds concurrent simulations (default 1).
	Parallel int
	// CacheDir roots the persistent result cache; "" disables
	// persistence (results are still deduplicated in memory).
	CacheDir string
	// Progress, when set, is called after each job finishes. Calls are
	// serialized and done is monotone; completion order across workers
	// is nondeterministic.
	Progress func(done, total int, cfg Config, cached bool)
}

// SweepRun pairs one grid cell's configuration with its result.
type SweepRun struct {
	Config Config
	Result Result
	// Cached reports that the result was served from the persistent
	// cache rather than simulated in this process.
	Cached bool
}

// SweepOutcome is a completed sweep: all runs in deterministic job order
// plus cache accounting.
type SweepOutcome struct {
	Runs []SweepRun
	// Simulated counts runs actually executed (cache misses).
	Simulated int
	// CacheStats snapshots the result cache's traffic counters.
	CacheStats runcache.Stats
}

// ResultKey derives the canonical content-addressed cache key for one run
// configuration. Everything that can change a Result is part of cfg, so
// two processes asking for the same cell always agree on the key — the
// contract that lets cmd/sweep, Campaign, and the sweepd campaign server
// share one cache layout and single-flight registry.
func ResultKey(cfg Config) string { return runcache.MustKey("result", cfg) }

// resultKey is the historical internal spelling of ResultKey.
func resultKey(cfg Config) string { return ResultKey(cfg) }

// Sweep expands the spec and executes every cell on a bounded worker pool,
// serving previously-computed cells from the persistent cache. Results
// are ordered by grid position regardless of worker scheduling.
func Sweep(spec SweepSpec, opts SweepOptions) (*SweepOutcome, error) {
	jobs, err := spec.Jobs()
	if err != nil {
		return nil, err
	}
	cache, err := runcache.Open(opts.CacheDir)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	simulated, done := 0, 0
	finish := func(cfg Config, cached bool) {
		mu.Lock()
		defer mu.Unlock()
		if !cached {
			simulated++
		}
		done++
		// Called under mu: Progress invocations are serialized and the
		// done counter is monotone across workers.
		if opts.Progress != nil {
			opts.Progress(done, len(jobs), cfg, cached)
		}
	}
	runs, err := sweep.Run(jobs, sweep.Options{Workers: opts.Parallel}, func(cfg Config) (SweepRun, error) {
		key := resultKey(cfg)
		var res Result
		if ok, _ := cache.Get(key, &res); ok {
			finish(cfg, true)
			return SweepRun{Config: cfg, Result: res, Cached: true}, nil
		}
		res, err := Run(cfg)
		if err != nil {
			return SweepRun{}, err
		}
		// Best-effort persistence: a failed write degrades the next
		// process to a re-simulation, it does not fail this one.
		_ = cache.Put(key, res)
		finish(cfg, false)
		return SweepRun{Config: cfg, Result: res}, nil
	})
	if err != nil {
		return nil, err
	}
	return &SweepOutcome{Runs: runs, Simulated: simulated, CacheStats: cache.Stats()}, nil
}

// Table renders the outcome as one row per run, in grid order. The table
// depends only on the results, never on cache state, so repeated sweeps
// of one spec render byte-identical tables.
func (o *SweepOutcome) Table() *Table {
	t := &Table{
		Title: "Sweep results",
		Header: []string{"workload", "variant", "nodes", "sb", "ckpts", "linkbw", "seed",
			"cycles", "retired", "IPC/core", "spec%", "aborts", "qdelay/msg"},
	}
	for _, r := range o.Runs {
		cfg := r.Config
		nodes := cfg.Machine.Width * cfg.Machine.Height
		// A zero-cycle result (degenerate config, corrupt cache entry) must
		// not render NaN into the table.
		ipcCell := "-"
		if r.Result.Cycles > 0 && nodes > 0 {
			ipcCell = fmt.Sprintf("%.3f", float64(r.Result.Retired)/float64(r.Result.Cycles)/float64(nodes))
		}
		// A latency-only cell (LinkBandwidth 0) has no queuing delay to
		// report; render "-" rather than a misleading 0.0.
		qdelayCell := "-"
		if cfg.Machine.LinkBandwidth > 0 {
			qdelayCell = fmt.Sprintf("%.1f", r.Result.QueueDelayPerMsg())
		}
		t.AddRow(
			cfg.Workload, cfg.Variant.Name,
			fmt.Sprintf("%d", nodes),
			fmt.Sprintf("%d", cfg.Variant.SBCapacity),
			fmt.Sprintf("%d", cfg.Variant.Engine.MaxCheckpoints),
			fmt.Sprintf("%d", cfg.Machine.LinkBandwidth),
			fmt.Sprintf("%d", cfg.Seed),
			fmt.Sprintf("%d", r.Result.Cycles),
			fmt.Sprintf("%d", r.Result.Retired),
			ipcCell,
			pct(r.Result.SpecFraction),
			fmt.Sprintf("%d", r.Result.Aborts),
			qdelayCell,
		)
	}
	return t
}
