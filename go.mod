module invisifence

go 1.22
