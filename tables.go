package invisifence

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: one paper figure or table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			if i == 0 {
				b.WriteString(c + strings.Repeat(" ", pad))
			} else {
				b.WriteString(strings.Repeat(" ", pad) + c)
			}
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s\n\n", t.Title)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n_%s_\n", n)
	}
	return b.String()
}

func pct(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
func spd(f float64) string { return fmt.Sprintf("%.3f", f) }
