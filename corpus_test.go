package invisifence

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"invisifence/internal/consistency"
	"invisifence/internal/isa"
	"invisifence/internal/litmus"
)

// The litmus corpus pins the memory-model surface of the simulator the way
// golden_test.go pins its cycle-level core: for each corpus test, the full
// outcome histogram of every implementation — unfenced and fenced — is
// written to testdata/litmus/<name>.golden, and the allowed/forbidden
// table below states which implementations are expected to exhibit the
// SC-forbidden target outcome when run unfenced. Any change that shifts a
// single litmus outcome fails here.
//
// Regenerate (only with a PR explaining why every delta is correct):
//
//	go test -run TestLitmusCorpus -update
var updateCorpus = flag.Bool("update", false, "rewrite testdata/litmus goldens from the current simulator")

// corpusSeeds is the sweep width pinned by the goldens. 40 covers ten full
// rotations of the variable-placement sweep (period 4).
const corpusSeeds = 40

// corpusCase is one corpus entry: the litmus test plus its expected
// allowed/forbidden classification per implementation.
type corpusCase struct {
	test string
	// observed lists the implementations whose *unfenced* sweep must
	// exhibit the target outcome (model allows it AND this machine's
	// microarchitecture exposes the window). Every implementation not
	// listed must show zero target runs. Implementations whose model
	// forbids the outcome (SC configs everywhere; TSO configs for
	// load→load / store→store tests) must necessarily be absent here —
	// a target hit there is a coherence bug, which TestLitmusCorpus
	// cross-checks via the suite's own Forbidden predicates.
	observed []string
	// note documents why the allowed-but-unobserved implementations stay
	// clean (microarchitectural windows the machine closes).
	note string
}

// corpusCases is the expected allowed/forbidden table. The weak configs are
// tso/rmo and their InvisiFence counterparts; every SC-model config
// (sc, invisi-sc*, continuous*, aso) must always read as SC.
var corpusCases = []corpusCase{
	{test: "SB", observed: []string{"tso", "rmo", "invisi-tso", "invisi-rmo", "rc", "invisi-rc", "louvre-rc"},
		note: "store buffers delay both stores past both loads"},
	{test: "MP", observed: []string{"rmo", "invisi-rmo", "rc", "invisi-rc", "louvre-rc"},
		note: "coalescing buffer drains flag before data when the data block's home is remote; reader side is closed by load-queue snooping"},
	{test: "LB", observed: nil,
		note: "loads retire in order and stores drain post-retirement, so a load's value can never come from a program-later store"},
	{test: "IRIW", observed: nil,
		note: "writes propagate via a single directory point: no implementation is non-multi-copy-atomic"},
	{test: "CoRR", observed: nil,
		note: "same-address load-load reordering is squashed by load-queue snooping (coherence)"},
	{test: "ISA2", observed: nil,
		note: "the extra hop through T1 gives T0's delayed data store time to complete before T2 reads: the MP-style window closes transitively"},
	{test: "2+2W", observed: []string{"rmo", "invisi-rmo", "rc", "invisi-rc", "louvre-rc"},
		note: "both coalescing buffers drain their second store first"},
	{test: "R", observed: []string{"tso", "rmo", "invisi-tso", "invisi-rmo", "rc", "invisi-rc", "louvre-rc"},
		note: "T1's load bypasses its buffered store of y"},
	{test: "S", observed: nil,
		note: "the write-to-read edge into T1 pins T1's buffered store of x behind the observed load"},
	{test: "MP-rel-acq", observed: []string{"rmo", "invisi-rmo"},
		note: "st.rel/ld.acq degrade to plain st/ld under RMO, reopening the MP window; every RC config must stay clean — the annotations alone carry the ordering"},
	{test: "ISA2-rel-acq", observed: nil,
		note: "as ISA2: the extra hop closes the window even where the model allows it"},
}

// fencedPolicy is the corpus's "fenced" column per config: full fences for
// the fence-based models, acquire/release annotations for RC (its sync
// library emits ld.acq/st.rel instead of fences).
func fencedPolicy(spec litmus.ConfigSpec) isa.FencePolicy {
	if spec.Model == consistency.RC {
		return isa.RCFences
	}
	return isa.RMOFences
}

// corpusTest resolves a corpus entry against the litmus suite.
func corpusTest(t *testing.T, name string) litmus.Test {
	t.Helper()
	for _, tt := range litmus.Tests {
		if tt.Name == name {
			if tt.Target == nil {
				t.Fatalf("corpus test %s has no target outcome", name)
			}
			return tt
		}
	}
	t.Fatalf("corpus test %s not in litmus.Tests", name)
	panic("unreachable")
}

// corpusGoldenPath maps a test name to its golden file.
func corpusGoldenPath(name string) string {
	return filepath.Join("testdata", "litmus", strings.ReplaceAll(name, "+", "p")+".golden")
}

// formatHistogram renders an outcome histogram canonically (sorted by
// outcome value), independent of map iteration order.
func formatHistogram(hist map[litmus.Outcome]int, slots int) string {
	keys := make([]litmus.Outcome, 0, len(hist))
	for o := range hist {
		keys = append(keys, o)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		for k := 0; k < slots; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	parts := make([]string, len(keys))
	for i, o := range keys {
		vals := make([]string, slots)
		for k := 0; k < slots; k++ {
			vals[k] = fmt.Sprint(o[k])
		}
		parts[i] = fmt.Sprintf("[%s]x%d", strings.Join(vals, " "), hist[o])
	}
	return strings.Join(parts, " ")
}

// corpusReport renders one test's full golden content: per config, the
// unfenced and fenced histograms with target-match counts.
func corpusReport(tt litmus.Test) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# litmus corpus golden: %s seeds=%d target=%v\n", tt.Name, corpusSeeds, tt.Target)
	fmt.Fprintf(&b, "# regenerate: go test -run TestLitmusCorpus -update\n")
	slots := tt.TotalSlots()
	for _, spec := range litmus.AllConfigs() {
		for _, pol := range []struct {
			name string
			fp   isa.FencePolicy
		}{{"unfenced", isa.NoFences}, {"fenced", fencedPolicy(spec)}} {
			h := litmus.HarnessFor(tt, pol.fp)
			hist := h.Sweep(spec, corpusSeeds)
			matches := litmus.CountMatches(hist, tt.Target)
			fmt.Fprintf(&b, "%-16s %-8s target=%-3d %s\n", spec.Name, pol.name, matches, formatHistogram(hist, slots))
		}
	}
	return b.String()
}

// TestLitmusCorpus pins the histograms and checks the allowed/forbidden
// table: unfenced targets appear exactly under the implementations the
// table lists, fenced targets never appear, and no run anywhere violates
// its implementation's consistency model.
func TestLitmusCorpus(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is not -short")
	}
	for _, tc := range corpusCases {
		tc := tc
		t.Run(tc.test, func(t *testing.T) {
			t.Parallel()
			tt := corpusTest(t, tc.test)
			report := corpusReport(tt)
			path := corpusGoldenPath(tc.test)
			if *updateCorpus {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(report), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			if string(want) != report {
				t.Errorf("histograms drifted from %s (regenerate with -update if intentional):\ngot:\n%swant:\n%s",
					path, report, want)
			}

			observed := make(map[string]bool, len(tc.observed))
			for _, name := range tc.observed {
				observed[name] = true
			}
			for _, spec := range litmus.AllConfigs() {
				// Allowed/forbidden classification on the unfenced sweep.
				h := litmus.HarnessFor(tt, isa.NoFences)
				matches := litmus.CountMatches(h.Sweep(spec, corpusSeeds), tt.Target)
				if observed[spec.Name] && matches == 0 {
					t.Errorf("%s/%s: target %v expected observable unfenced, got 0/%d (%s)",
						tc.test, spec.Name, tt.Target, corpusSeeds, tc.note)
				}
				if !observed[spec.Name] && matches > 0 {
					t.Errorf("%s/%s: target %v expected forbidden/unobserved unfenced, got %d/%d",
						tc.test, spec.Name, tt.Target, matches, corpusSeeds)
				}
				// The model's own Forbidden predicate — the per-model
				// forbidden table, fence-policy aware (e.g. fenced SB still
				// admits [0 0]: release/acquire never orders store→load) —
				// must hold run by run under both policies.
				for _, pol := range []isa.FencePolicy{isa.NoFences, fencedPolicy(spec)} {
					r := litmus.RunWithPolicy(tt, spec, pol, corpusSeeds)
					if len(r.Violations) > 0 {
						t.Errorf("%s/%s: %d model-forbidden outcomes (first %v)",
							tc.test, spec.Name, len(r.Violations), r.Violations[0])
					}
				}
			}
		})
	}
}
