package invisifence

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"invisifence/internal/consistency"
	"invisifence/internal/runcache"
	"invisifence/internal/stats"
	"invisifence/internal/sweep"
	"invisifence/internal/workload"
)

// ExpOptions configures the figure-regeneration experiments.
type ExpOptions struct {
	// Machine overrides the system model (zero value = DefaultMachine).
	Machine *MachineConfig
	// Workloads restricts the workload set (nil = all seven).
	Workloads []string
	// Seeds lists the run seeds; multiple seeds produce 95% confidence
	// intervals (the SimFlex-sampling stand-in).
	Seeds []int64
	// Scale multiplies workload size.
	Scale float64
	// Parallel runs independent simulations on multiple OS threads (the
	// simulations themselves stay single-threaded and deterministic).
	Parallel int
	// CacheDir roots the persistent result cache shared across
	// processes; "" keeps results in memory only. Figures regenerated
	// twice against the same cache directory re-simulate nothing.
	CacheDir string
}

// DefaultExpOptions returns the options used for EXPERIMENTS.md.
func DefaultExpOptions() ExpOptions {
	return ExpOptions{Seeds: []int64{1, 2, 3}, Scale: 1.0, Parallel: 4}
}

func (o *ExpOptions) fill() {
	if len(o.Workloads) == 0 {
		o.Workloads = Workloads()
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1}
	}
	if o.Scale == 0 {
		o.Scale = 1.0
	}
	if o.Parallel <= 0 {
		o.Parallel = 1
	}
	if o.Machine == nil {
		m := DefaultMachine()
		o.Machine = &m
	}
}

// Campaign runs and memoizes simulations so that figures sharing
// configurations (8, 9, 10) reuse results. It layers an in-process memo
// (per workload/variant cell) over the persistent internal/runcache store,
// so with a CacheDir set, results survive the process and a rerun of
// AllFigures re-simulates nothing.
type Campaign struct {
	opts     ExpOptions
	pc       *runcache.Cache // persistent layer (memory-only if CacheDir == "")
	cacheErr error           // why CacheDir could not be opened, if it couldn't

	mu        sync.Mutex
	cache     map[string][]Result // key: workload/variant -> per-seed results
	simulated int
}

// NewCampaign creates a result cache for the given options. An unusable
// CacheDir degrades to in-memory caching rather than failing; CacheErr
// reports the degradation.
func NewCampaign(opts ExpOptions) *Campaign {
	opts.fill()
	pc, err := runcache.Open(opts.CacheDir)
	if err != nil {
		pc, _ = runcache.Open("")
	}
	return &Campaign{opts: opts, pc: pc, cacheErr: err, cache: make(map[string][]Result)}
}

// Options returns the campaign's (filled-in) options.
func (c *Campaign) Options() ExpOptions { return c.opts }

// CacheErr reports why the configured CacheDir could not be opened; it is
// nil when persistence is working (or was never requested). A campaign
// with a non-nil CacheErr still runs, but caches in memory only.
func (c *Campaign) CacheErr() error { return c.cacheErr }

// CacheStats snapshots the persistent cache's traffic counters.
func (c *Campaign) CacheStats() runcache.Stats { return c.pc.Stats() }

// Simulated returns how many simulations this campaign actually executed
// (cells served from the persistent cache don't count).
func (c *Campaign) Simulated() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.simulated
}

func key(wl string, v Variant) string { return wl + "/" + v.Name }

// cellConfig assembles the full run configuration for one (workload,
// variant, seed) cell; it is also the persistent cache key's content.
func (c *Campaign) cellConfig(wl string, v Variant, seed int64) Config {
	return Config{
		Machine:  *c.opts.Machine,
		Variant:  v,
		Workload: wl,
		Seed:     seed,
		Scale:    c.opts.Scale,
	}
}

// Results returns the per-seed results for one cell, running them if needed.
func (c *Campaign) Results(wl string, v Variant) ([]Result, error) {
	c.mu.Lock()
	if rs, ok := c.cache[key(wl, v)]; ok {
		c.mu.Unlock()
		return rs, nil
	}
	c.mu.Unlock()
	rs := make([]Result, len(c.opts.Seeds))
	for i, seed := range c.opts.Seeds {
		cfg := c.cellConfig(wl, v, seed)
		ckey := resultKey(cfg)
		if ok, _ := c.pc.Get(ckey, &rs[i]); ok {
			continue
		}
		r, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		_ = c.pc.Put(ckey, r) // best-effort; failure only costs a future re-run
		c.mu.Lock()
		c.simulated++
		c.mu.Unlock()
		rs[i] = r
	}
	c.mu.Lock()
	c.cache[key(wl, v)] = rs
	c.mu.Unlock()
	return rs, nil
}

// Prefetch runs all (workload, variant) cells on a bounded worker pool.
func (c *Campaign) Prefetch(variants []Variant) error {
	type job struct {
		wl string
		v  Variant
	}
	var jobs []job
	for _, wl := range c.opts.Workloads {
		for _, v := range variants {
			jobs = append(jobs, job{wl, v})
		}
	}
	_, err := sweep.Run(jobs, sweep.Options{Workers: c.opts.Parallel}, func(j job) (struct{}, error) {
		_, err := c.Results(j.wl, j.v)
		return struct{}{}, err
	})
	return err
}

// meanCycles averages cycles across seeds.
func meanCycles(rs []Result) float64 {
	var s float64
	for _, r := range rs {
		s += float64(r.Cycles)
	}
	return s / float64(len(rs))
}

// speedupSummary computes per-seed speedups of rs over base with a CI.
func speedupSummary(base, rs []Result) stats.Summary {
	n := len(base)
	if len(rs) < n {
		n = len(rs)
	}
	samples := make([]float64, n)
	for i := 0; i < n; i++ {
		samples[i] = float64(base[i].Cycles) / float64(rs[i].Cycles)
	}
	return stats.Summarize(samples)
}

// ---------------------------------------------------------------------
// Figure drivers.
// ---------------------------------------------------------------------

// Figure1 reproduces Figure 1: ordering stalls (SB drain and SB full) in
// conventional SC/TSO/RMO as a percent of SC execution time.
func Figure1(c *Campaign) (*Table, error) {
	variants := []Variant{ConventionalVariant(SC), ConventionalVariant(TSO), ConventionalVariant(RMO)}
	if err := c.Prefetch(variants); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 1: ordering stalls in conventional SC/TSO/RMO (% of SC execution time)",
		Header: []string{"workload", "sc SBdrain", "sc SBfull", "tso SBdrain", "tso SBfull", "rmo SBdrain", "rmo SBfull"},
	}
	for _, wl := range c.opts.Workloads {
		base, err := c.Results(wl, variants[0])
		if err != nil {
			return nil, err
		}
		scTotal := 0.0
		for _, r := range base {
			scTotal += float64(r.Breakdown.Total())
		}
		scTotal /= float64(len(base))
		row := []string{wl}
		for _, v := range variants {
			rs, err := c.Results(wl, v)
			if err != nil {
				return nil, err
			}
			var drain, full float64
			for _, r := range rs {
				drain += float64(r.Breakdown[stats.SBDrain])
				full += float64(r.Breakdown[stats.SBFull])
			}
			drain /= float64(len(rs))
			full /= float64(len(rs))
			row = append(row, pct(drain/scTotal), pct(full/scTotal))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: large SC stalls everywhere; TSO keeps atomic/full-buffer stalls; RMO keeps fence stalls in commercial workloads, ~0 in Barnes/Ocean")
	return t, nil
}

// Figure2 reproduces Figure 2: the consistency-model definition and
// conventional-implementation rule table.
func Figure2() *Table {
	t := &Table{
		Title:  "Figure 2: consistency models — definitions and conventional implementations",
		Header: []string{"model", "relaxations", "SB organization", "load", "store", "atomic", "full fence"},
	}
	dash := "-"
	for _, m := range consistency.Models {
		r := consistency.RulesFor(m)
		load, store, atomic, fence := dash, dash, dash, dash
		if r.LoadNeedsDrain {
			load = "drain SB"
		}
		if r.ReleaseNeedsDrain {
			store = "drain SB at st.rel"
		}
		if r.AtomicNeedsDrain {
			atomic = "drain SB"
		} else if r.AtomicNeedsOwnership {
			atomic = "complete store"
		}
		if m == consistency.SC {
			fence = "N/A"
		} else if r.FenceNeedsDrain {
			fence = "drain SB"
		}
		t.AddRow(m.String(), r.Relaxations, r.SB.String(), load, store, atomic, fence)
	}
	return t
}

// Figure4 reproduces Figure 4: properties of the InvisiFence variants,
// with the measured percent-of-time-speculating range over the workloads.
func Figure4(c *Campaign) (*Table, error) {
	rows := []struct {
		v        Variant
		triggers string
		minChunk string
		snoopsLQ string
	}{
		{SelectiveVariant(RMO), "fences, atomics", "none", "yes"},
		{SelectiveVariant(TSO), "store/atomic reorderings, fences", "none", "yes"},
		{SelectiveVariant(SC), "all memory reorderings", "none", "yes"},
		{ContinuousVariant(false), "continuous chunks", "~100 instructions", "no"},
	}
	t := &Table{
		Title:  "Figure 4: properties of INVISIFENCE variants",
		Header: []string{"variant", "speculates on", "% time speculating", "min chunk", "needs LQ snooping"},
	}
	for _, row := range rows {
		lo, hi := 1.0, 0.0
		for _, wl := range c.opts.Workloads {
			rs, err := c.Results(wl, row.v)
			if err != nil {
				return nil, err
			}
			var f float64
			for _, r := range rs {
				f += r.SpecFraction
			}
			f /= float64(len(rs))
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		t.AddRow(row.v.Name, row.triggers, fmt.Sprintf("%s-%s", pct(lo), pct(hi)), row.minChunk, row.snoopsLQ)
	}
	t.AddNote("paper ranges: rmo 0-10%%, tso 10-40%%, sc 10-50%%, continuous ~100%%")
	return t, nil
}

// Figure6 renders the simulated machine parameters (Figure 6).
func Figure6(m MachineConfig) *Table {
	t := &Table{
		Title:  "Figure 6: simulator parameters",
		Header: []string{"component", "configuration"},
	}
	t.AddRow("cores", fmt.Sprintf("%d-node %dx%d torus, %d-cycle hops", m.Width*m.Height, m.Width, m.Height, m.HopLatency))
	t.AddRow("pipeline", fmt.Sprintf("%d-wide OoO, %d-entry ROB/LSQ, %d mem ports", m.Core.FetchWidth, m.Core.ROBSize, m.Core.MemPorts))
	t.AddRow("store buffer", "SC/TSO: 8-byte 64-entry FIFO; RMO/InvisiFence: 64-byte 8-entry coalescing; 2-ckpt: 32-entry")
	t.AddRow("L1D", fmt.Sprintf("%dKB %d-way, %d-cycle, %d MSHRs", m.L1Bytes>>10, m.L1Ways, m.L1Latency, m.MSHRs))
	t.AddRow("L2", fmt.Sprintf("%dKB %d-way, %d-cycle (paper: 8MB, scaled to proxy footprints)", m.L2Bytes>>10, m.L2Ways, m.L2Latency))
	t.AddRow("memory", fmt.Sprintf("%d-cycle access, %d banks/node", m.MemLatency, m.MemBanks))
	return t
}

// Figure7 renders the workload descriptions (Figure 7).
func Figure7() *Table {
	t := &Table{
		Title:  "Figure 7: workloads (proxy kernels; see DESIGN.md for the substitution rationale)",
		Header: []string{"workload", "proxy structure"},
	}
	for _, name := range workload.Names() {
		wl := workload.MustGet(name, workload.Params{Cores: 2, Model: SC, Seed: 1, Scale: 0.05})
		t.AddRow(name, wl.Description)
	}
	return t
}

// figure8Variants is the six-bar group of Figures 8 and 9.
func figure8Variants() []Variant {
	return []Variant{
		ConventionalVariant(SC), ConventionalVariant(TSO), ConventionalVariant(RMO),
		SelectiveVariant(SC), SelectiveVariant(TSO), SelectiveVariant(RMO),
	}
}

// Figure8 reproduces Figure 8: speedups of conventional and
// INVISIFENCE-SELECTIVE implementations over conventional SC.
func Figure8(c *Campaign) (*Table, error) {
	variants := figure8Variants()
	if err := c.Prefetch(variants); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 8: speedup over conventional SC (95% CI over seeds)",
		Header: append([]string{"workload"}, variantNames(variants)...),
	}
	gm := make([]float64, len(variants))
	for i := range gm {
		gm[i] = 1
	}
	for _, wl := range c.opts.Workloads {
		base, err := c.Results(wl, variants[0])
		if err != nil {
			return nil, err
		}
		row := []string{wl}
		for i, v := range variants {
			rs, err := c.Results(wl, v)
			if err != nil {
				return nil, err
			}
			s := speedupSummary(base, rs)
			gm[i] *= s.Mean
			row = append(row, s.String())
		}
		t.AddRow(row...)
	}
	n := float64(len(c.opts.Workloads))
	row := []string{"geomean"}
	for _, g := range gm {
		row = append(row, spd(pow(g, 1/n)))
	}
	t.AddRow(row...)
	t.AddNote("paper: TSO ~1.24x SC, RMO ~1.08x TSO; Invisi_sc beats conventional SC/TSO/RMO by 36%%/9%%/2%%; Invisi_rmo ~1.05x RMO")
	return t, nil
}

// Figure9 reproduces Figure 9: execution-time breakdown normalized to SC.
func Figure9(c *Campaign) (*Table, error) {
	variants := figure8Variants()
	if err := c.Prefetch(variants); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 9: runtime breakdown, % of conventional-SC cycles (Busy/Other/SBfull/SBdrain/Violation)",
		Header: []string{"workload", "variant", "total", "Busy", "Other", "SB full", "SB drain", "Violation"},
	}
	for _, wl := range c.opts.Workloads {
		base, err := c.Results(wl, variants[0])
		if err != nil {
			return nil, err
		}
		scTotal := 0.0
		for _, r := range base {
			scTotal += float64(r.Breakdown.Total())
		}
		scTotal /= float64(len(base))
		for _, v := range variants {
			rs, err := c.Results(wl, v)
			if err != nil {
				return nil, err
			}
			var bd stats.Breakdown
			for _, r := range rs {
				bd.Add(&r.Breakdown)
			}
			norm := func(cl stats.CycleClass) string {
				return pct(float64(bd[cl]) / float64(len(rs)) / scTotal)
			}
			t.AddRow(wl, v.Name, pct(float64(bd.Total())/float64(len(rs))/scTotal),
				norm(stats.Busy), norm(stats.Other), norm(stats.SBFull),
				norm(stats.SBDrain), norm(stats.Violation))
		}
	}
	return t, nil
}

// Figure10 reproduces Figure 10: percent of cycles each
// INVISIFENCE-SELECTIVE variant spends speculating.
func Figure10(c *Campaign) (*Table, error) {
	variants := []Variant{SelectiveVariant(SC), SelectiveVariant(TSO), SelectiveVariant(RMO)}
	if err := c.Prefetch(variants); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 10: percent of cycles spent in speculation",
		Header: append([]string{"workload"}, variantNames(variants)...),
	}
	for _, wl := range c.opts.Workloads {
		row := []string{wl}
		for _, v := range variants {
			rs, err := c.Results(wl, v)
			if err != nil {
				return nil, err
			}
			var f float64
			for _, r := range rs {
				f += r.SpecFraction
			}
			row = append(row, pct(f/float64(len(rs))))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper shape: sc > tso >> rmo (rmo under 10%%)")
	return t, nil
}

// Figure11 reproduces Figure 11: runtime of the ASO baseline vs
// INVISIFENCE-SELECTIVE-SC with one and two checkpoints, normalized to ASO.
func Figure11(c *Campaign) (*Table, error) {
	variants := []Variant{ASOVariant(), SelectiveVariant(SC), Selective2CkptVariant(SC)}
	if err := c.Prefetch(variants); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 11: runtime normalized to ASO-SC (lower is better)",
		Header: append([]string{"workload"}, variantNames(variants)...),
	}
	for _, wl := range c.opts.Workloads {
		base, err := c.Results(wl, variants[0])
		if err != nil {
			return nil, err
		}
		row := []string{wl}
		for _, v := range variants {
			rs, err := c.Results(wl, v)
			if err != nil {
				return nil, err
			}
			row = append(row, spd(meanCycles(rs)/meanCycles(base)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: ASO ~1%% ahead of 1-ckpt Invisi (less discarded work); a second checkpoint closes the gap")
	return t, nil
}

// Figure12 reproduces Figure 12: runtime of SC, INVISIFENCE-CONTINUOUS
// (abort-immediately and commit-on-violate), RMO, and INVISIFENCE-RMO,
// normalized to SC.
func Figure12(c *Campaign) (*Table, error) {
	variants := []Variant{
		ConventionalVariant(SC), ContinuousVariant(false), ConventionalVariant(RMO),
		ContinuousVariant(true), SelectiveVariant(RMO),
	}
	if err := c.Prefetch(variants); err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Figure 12: runtime normalized to conventional SC (lower is better)",
		Header: append([]string{"workload"}, variantNames(variants)...),
	}
	for _, wl := range c.opts.Workloads {
		base, err := c.Results(wl, variants[0])
		if err != nil {
			return nil, err
		}
		row := []string{wl}
		for _, v := range variants {
			rs, err := c.Results(wl, v)
			if err != nil {
				return nil, err
			}
			row = append(row, spd(meanCycles(rs)/meanCycles(base)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: plain continuous ~27%% over SC but behind RMO; CoV recovers most of the gap (within ~2%% of Invisi_rmo)")
	return t, nil
}

func variantNames(vs []Variant) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Name
	}
	return out
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// AllFigures regenerates every experiment table, in paper order.
func AllFigures(c *Campaign) ([]*Table, error) {
	var out []*Table
	f1, err := Figure1(c)
	if err != nil {
		return nil, err
	}
	out = append(out, f1, Figure2())
	f4, err := Figure4(c)
	if err != nil {
		return nil, err
	}
	out = append(out, f4, Figure6(*c.opts.Machine), Figure7())
	for _, fn := range []func(*Campaign) (*Table, error){Figure8, Figure9, Figure10, Figure11, Figure12} {
		tbl, err := fn(c)
		if err != nil {
			return nil, err
		}
		out = append(out, tbl)
	}
	return out, nil
}

// sortedCacheKeys helps tests introspect a campaign deterministically.
func (c *Campaign) sortedCacheKeys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := make([]string, 0, len(c.cache))
	for k := range c.cache {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
