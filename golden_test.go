package invisifence

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// The golden-result test pins the simulator core bit-exactly: any change to
// the cycle loop, the caches, the network, or the coherence protocol that
// alters a single simulated outcome — one cycle, one retired instruction,
// one breakdown bucket, one event counter — fails here. Performance work on
// the hot loop (idle-skip scheduling, allocation removal) must keep every
// Result identical to the seed implementation that generated the file.
//
// Regenerate (only when an intentional semantic change is made, with a PR
// explaining why every delta is correct):
//
//	go test -run TestGoldenResults -update-golden
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_results.json from the current simulator")

// goldenCase names one pinned configuration.
type goldenCase struct {
	Workload string
	Variant  string // VariantByName name
	Scale    float64
}

// goldenCases covers all seven workloads under conventional SC and
// INVISIFENCE-SELECTIVE-SC (the acceptance grid), plus full-scale apache
// under both (the bench reference point) and one RMO/TSO pair so the FIFO
// and coalescing store-buffer paths both stay pinned.
func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, wl := range Workloads() {
		cases = append(cases,
			goldenCase{wl, "sc", 0.25},
			goldenCase{wl, "invisi-sc", 0.25},
		)
	}
	cases = append(cases,
		goldenCase{"apache", "sc", 1.0},
		goldenCase{"apache", "invisi-sc", 1.0},
		goldenCase{"ocean", "tso", 0.25},
		goldenCase{"ocean", "rmo", 0.25},
		goldenCase{"barnes", "invisi-rmo", 0.25},
		goldenCase{"oltp-db2", "continuous-cov", 0.25},
		// The release-consistency family: the conventional RC baseline
		// (annotated sync library, release drains), speculation over RC,
		// and the Louvre-style versioned-ordering baseline.
		goldenCase{"ocean", "rc", 0.25},
		goldenCase{"barnes", "invisi-rc", 0.25},
		goldenCase{"apache", "louvre-rc", 0.25},
	)
	return cases
}

// goldenEntry is the pinned outcome of one case. CacheKey pins the runcache
// content-address too, so optimized and seed binaries share cached results.
type goldenEntry struct {
	Workload string  `json:"workload"`
	Variant  string  `json:"variant"`
	Scale    float64 `json:"scale"`
	CacheKey string  `json:"cache_key"`
	Result   Result  `json:"result"`
}

func goldenConfig(c goldenCase) Config {
	v, err := VariantByName(c.Variant)
	if err != nil {
		panic(err)
	}
	cfg := DefaultConfig()
	cfg.Workload = c.Workload
	cfg.Variant = v
	cfg.Scale = c.Scale
	return cfg
}

func goldenPath() string { return filepath.Join("testdata", "golden_results.json") }

func TestGoldenResults(t *testing.T) {
	if testing.Short() {
		t.Skip("golden grid is minutes of simulation; skipped in -short")
	}
	cases := goldenCases()
	if *updateGolden {
		var entries []goldenEntry
		for _, c := range cases {
			cfg := goldenConfig(c)
			start := time.Now()
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", c.Workload, c.Variant, err)
			}
			t.Logf("%s/%s scale=%.2f: %d cycles in %v", c.Workload, c.Variant, c.Scale, res.Cycles, time.Since(start).Round(time.Millisecond))
			entries = append(entries, goldenEntry{
				Workload: c.Workload,
				Variant:  c.Variant,
				Scale:    c.Scale,
				CacheKey: resultKey(cfg),
				Result:   res,
			})
		}
		data, err := json.MarshalIndent(entries, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}

	data, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update-golden): %v", err)
	}
	var entries []goldenEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(cases) {
		t.Fatalf("golden file has %d entries, want %d (regenerate with -update-golden)", len(entries), len(cases))
	}
	for _, e := range entries {
		e := e
		t.Run(fmt.Sprintf("%s/%s@%.2g", e.Workload, e.Variant, e.Scale), func(t *testing.T) {
			t.Parallel()
			cfg := goldenConfig(goldenCase{e.Workload, e.Variant, e.Scale})
			if key := resultKey(cfg); key != e.CacheKey {
				t.Errorf("cache key drifted: got %s want %s", key, e.CacheKey)
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			want, err := json.Marshal(e.Result)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("Result diverged from golden:\n got: %s\nwant: %s", got, want)
			}
		})
	}
}
