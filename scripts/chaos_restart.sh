#!/usr/bin/env bash
# chaos_restart.sh — crash-recovery acceptance test against the real
# binary: kill -9 a sweepd strictly mid-campaign, restart it on the same
# cache directory, and assert the journaled campaign resumes under its
# original ID, completes, and renders a table byte-identical to cmd/sweep
# run offline on the same spec with an independent cache.
#
# Environment: SWEEPD/SWEEP point at prebuilt binaries (default
# /tmp/sweepd, /tmp/sweep); ADDR is the listen address.
set -euo pipefail

SWEEPD=${SWEEPD:-/tmp/sweepd}
SWEEP=${SWEEP:-/tmp/sweep}
ADDR=${ADDR:-127.0.0.1:8378}
WORK=$(mktemp -d)
PID=
trap 'kill -9 $PID 2>/dev/null || true; rm -rf "$WORK"' EXIT

# 16 cells, small scale: slow enough that a 25ms poll catches the
# campaign mid-flight, fast enough to finish promptly after the restart.
printf '%s\n' '{"workloads": ["barnes"], "variants": ["sc", "invisi-sc"], "seeds": [1, 2, 3, 4, 5, 6, 7, 8], "scale": 0.5}' > "$WORK/grid.json"
TOTAL=16

field() { # field <url> <python-expr over the response object r>
  curl -s "$1" | python3 -c "import json,sys; r=json.load(sys.stdin); print($2)"
}

wait_http() {
  for _ in $(seq 200); do
    curl -sf "$ADDR/$1" >/dev/null && return 0
    sleep 0.05
  done
  echo "chaos_restart: $ADDR/$1 never came up" >&2
  return 1
}

# A too-fast campaign can finish before the kill lands; retry with a
# fresh cache rather than passing vacuously.
for attempt in 1 2 3; do
  CACHE="$WORK/cache$attempt"
  "$SWEEPD" -addr "$ADDR" -cache "$CACHE" -workers 2 2> "$WORK/log1" &
  PID=$!
  wait_http healthz
  id=$(curl -sf -d @"$WORK/grid.json" "$ADDR/sweeps" | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')

  done_cells=0
  for _ in $(seq 2400); do
    done_cells=$(field "$ADDR/sweeps/$id" 'r["cells"]["cached"]+r["cells"]["simulated"]+r["cells"]["deduped"]')
    [ "$done_cells" -gt 0 ] && break
    sleep 0.025
  done
  kill -9 "$PID"
  wait "$PID" 2>/dev/null || true

  if [ "$done_cells" -gt 0 ] && [ "$done_cells" -lt "$TOTAL" ]; then
    echo "chaos_restart: killed sweepd with $done_cells/$TOTAL cells done (attempt $attempt)"
    break
  fi
  echo "chaos_restart: campaign not mid-flight at the kill (done=$done_cells); retrying" >&2
  if [ "$attempt" = 3 ]; then
    echo "chaos_restart: could not catch a campaign mid-flight in 3 attempts" >&2
    exit 1
  fi
done

[ -f "$CACHE/journal/$id.wal" ] || { echo "chaos_restart: no journal for $id after kill -9" >&2; exit 1; }

# Restart on the same cache: the journal must resume the campaign.
"$SWEEPD" -addr "$ADDR" -cache "$CACHE" -workers 4 2> "$WORK/log2" &
PID=$!
wait_http healthz
wait_http readyz   # readiness gates on journal replay finishing

state=running
for _ in $(seq 2400); do
  state=$(field "$ADDR/sweeps/$id" 'r["state"]')
  [ "$state" != running ] && break
  sleep 0.05
done
[ "$state" = done ] || { echo "chaos_restart: resumed campaign state=$state" >&2; curl -s "$ADDR/sweeps/$id" >&2; exit 1; }
resumed=$(field "$ADDR/sweeps/$id" 'r.get("resumed", False)')
[ "$resumed" = True ] || { echo "chaos_restart: campaign not marked resumed" >&2; exit 1; }
grep -q "resumed 1 journaled campaign" "$WORK/log2" || { echo "chaos_restart: no recovery line in the restart log" >&2; cat "$WORK/log2" >&2; exit 1; }

curl -s "$ADDR/sweeps/$id/table" > "$WORK/resumed.txt"
kill -TERM "$PID" && wait "$PID"
PID=

# Independent oracle: cmd/sweep offline, fresh cache, same spec.
"$SWEEP" -spec "$WORK/grid.json" -cache "$WORK/offline-cache" > "$WORK/offline.txt"
diff -u "$WORK/offline.txt" "$WORK/resumed.txt"
echo "chaos_restart: resumed table byte-identical to the offline run"
