package invisifence

import (
	"fmt"
	"os"
	"testing"
	"time"
)

// TestFullMatrix runs every (workload, variant) cell at full scale — the
// data source for EXPERIMENTS.md. It takes many minutes, so it only runs
// when INVISIFENCE_FULL_MATRIX=1 is set:
//
//	INVISIFENCE_FULL_MATRIX=1 go test -run TestFullMatrix -v -timeout 60m
func TestFullMatrix(t *testing.T) {
	if os.Getenv("INVISIFENCE_FULL_MATRIX") == "" {
		t.Skip("set INVISIFENCE_FULL_MATRIX=1 to run the full-scale matrix")
	}
	variants := []Variant{
		ConventionalVariant(SC), ConventionalVariant(TSO), ConventionalVariant(RMO),
		SelectiveVariant(SC), SelectiveVariant(TSO), SelectiveVariant(RMO),
		Selective2CkptVariant(SC),
		ContinuousVariant(false), ContinuousVariant(true), ASOVariant(),
	}
	for _, wl := range Workloads() {
		var sc uint64
		for _, v := range variants {
			cfg := DefaultConfig()
			cfg.Workload = wl
			cfg.Variant = v
			start := time.Now()
			res, err := Run(cfg)
			if err != nil {
				t.Errorf("%s/%s: %v", wl, v.Name, err)
				continue
			}
			if v.Name == "sc" {
				sc = res.Cycles
			}
			fmt.Printf("%-12s %-16s cycles=%8d speedup=%.3f spec=%.2f specs=%d commits=%d aborts=%d drain=%.2f full=%.2f viol=%.2f wall=%.0fs\n",
				wl, v.Name, res.Cycles, float64(sc)/float64(res.Cycles), res.SpecFraction,
				res.Speculations, res.Commits, res.Aborts,
				res.Breakdown.Frac(3), res.Breakdown.Frac(2), res.Breakdown.Frac(4),
				time.Since(start).Seconds())
		}
	}
}
