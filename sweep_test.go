package invisifence

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func tinySpec() SweepSpec {
	m := tinyMachine()
	return SweepSpec{
		Workloads: []string{"barnes"},
		Variants:  []string{"sc", "invisi-sc"},
		Seeds:     []int64{1, 2},
		Scale:     0.2,
		Machine:   &m,
	}
}

func TestVariantByName(t *testing.T) {
	for _, name := range VariantNames() {
		v, err := VariantByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if v.Name == "" || v.SBCapacity == 0 {
			t.Fatalf("%s: incomplete variant %+v", name, v)
		}
	}
	if v, err := VariantByName("INVISI-SC"); err != nil || v.Name != "Invisi_sc" {
		t.Fatalf("case-insensitive lookup: %+v, %v", v, err)
	}
	if _, err := VariantByName("nope"); err == nil {
		t.Fatal("expected unknown-variant error")
	}
}

func TestTorusFor(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1}, {2, 2, 1}, {4, 2, 2}, {8, 4, 2}, {16, 4, 4}, {12, 4, 3}, {7, 7, 1},
	}
	for _, c := range cases {
		w, h, err := TorusFor(c.n)
		if err != nil || w != c.w || h != c.h {
			t.Fatalf("TorusFor(%d) = %dx%d, %v; want %dx%d", c.n, w, h, err, c.w, c.h)
		}
	}
	if _, _, err := TorusFor(0); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
}

func TestSweepSpecJobsExpansion(t *testing.T) {
	spec := tinySpec()
	spec.SBDepths = []int{0, 4}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// 1 workload x 2 variants x 2 depths x 1 ckpt x 1 nodes x 2 seeds.
	if len(jobs) != 8 {
		t.Fatalf("job count: %d", len(jobs))
	}
	if spec.Size() != len(jobs) {
		t.Fatalf("Size %d != len(Jobs) %d", spec.Size(), len(jobs))
	}
	// Row-major: workload slowest, seed fastest.
	if jobs[0].Variant.Name != "sc" || jobs[0].Seed != 1 || jobs[1].Seed != 2 {
		t.Fatalf("order: %+v", jobs[:2])
	}
	// sb override applies and renames; sb=0 keeps the default.
	if jobs[0].Variant.SBCapacity != 64 {
		t.Fatalf("default sb: %d", jobs[0].Variant.SBCapacity)
	}
	if jobs[2].Variant.SBCapacity != 4 || !strings.Contains(jobs[2].Variant.Name, "@sb4") {
		t.Fatalf("sb override: %+v", jobs[2].Variant)
	}
	// Expansion is deterministic.
	again, _ := spec.Jobs()
	for i := range jobs {
		if resultKey(jobs[i]) != resultKey(again[i]) {
			t.Fatalf("job %d not reproducible", i)
		}
	}
}

func TestSweepSpecDefaults(t *testing.T) {
	jobs, err := SweepSpec{}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(Workloads()) {
		t.Fatalf("zero spec: %d jobs", len(jobs))
	}
	if jobs[0].Variant.Name != "sc" || jobs[0].Scale != 1.0 || jobs[0].Seed != 1 {
		t.Fatalf("zero-spec defaults: %+v", jobs[0])
	}
	if jobs[0].Machine.Width*jobs[0].Machine.Height != 16 {
		t.Fatal("zero spec must default to the 16-node machine")
	}
}

func TestSweepSpecDedupesIdenticalConfigs(t *testing.T) {
	// A checkpoint axis crossed with a conventional variant expands to
	// identical configs (conventional ignores it); only one job survives
	// per distinct configuration, so nothing ever simulates twice.
	spec := tinySpec()
	spec.Variants = []string{"sc", "invisi-sc"}
	spec.Checkpoints = []int{1, 2}
	spec.Seeds = []int64{1}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	// sc collapses to 1 job; invisi-sc keeps both checkpoint settings.
	if len(jobs) != 3 {
		t.Fatalf("job count after dedup: %d, want 3", len(jobs))
	}
	if spec.Size() != 4 {
		t.Fatalf("grid size: %d, want 4 (pre-dedup)", spec.Size())
	}
	keys := make(map[string]bool)
	for _, j := range jobs {
		k := resultKey(j)
		if keys[k] {
			t.Fatalf("duplicate config survived dedup: %s/%s", j.Workload, j.Variant.Name)
		}
		keys[k] = true
	}
}

func TestCampaignCacheErr(t *testing.T) {
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// A plain file as CacheDir cannot be opened as a directory; the
	// campaign must degrade to memory-only and report why.
	c := NewCampaign(ExpOptions{CacheDir: f})
	if c.CacheErr() == nil {
		t.Fatal("expected CacheErr for unusable cache dir")
	}
	if NewCampaign(ExpOptions{}).CacheErr() != nil {
		t.Fatal("CacheErr must be nil when no CacheDir was requested")
	}
}

func TestSweepSpecRejectsBadInput(t *testing.T) {
	spec := tinySpec()
	spec.Variants = []string{"nope"}
	if _, err := spec.Jobs(); err == nil {
		t.Fatal("expected unknown-variant error")
	}
	spec = tinySpec()
	spec.SBDepths = []int{-1}
	if _, err := spec.Jobs(); err == nil {
		t.Fatal("expected negative-depth error")
	}
	spec = tinySpec()
	spec.Nodes = []int{0}
	if _, err := spec.Jobs(); err == nil {
		t.Fatal("expected bad node count error")
	}
}

// TestSweepPersistentCache is the subsystem's acceptance test: a second
// sweep of the same spec simulates nothing and renders the same table.
func TestSweepPersistentCache(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec()
	opts := SweepOptions{Parallel: 4, CacheDir: dir}

	first, err := Sweep(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Simulated != 4 {
		t.Fatalf("first sweep simulated %d of 4", first.Simulated)
	}
	for _, r := range first.Runs {
		if r.Cached {
			t.Fatal("first sweep claims cache hits")
		}
	}

	second, err := Sweep(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Simulated != 0 {
		t.Fatalf("second sweep re-simulated %d runs", second.Simulated)
	}
	for _, r := range second.Runs {
		if !r.Cached {
			t.Fatalf("uncached run on second sweep: %s/%s", r.Config.Workload, r.Config.Variant.Name)
		}
	}
	if got, want := second.Table().String(), first.Table().String(); got != want {
		t.Fatalf("tables differ between sweeps:\n%s\nvs\n%s", got, want)
	}
	if s := second.CacheStats; s.Hits != 4 {
		t.Fatalf("second sweep cache stats: %+v", s)
	}
}

func TestSweepWithoutCacheDir(t *testing.T) {
	spec := tinySpec()
	spec.Variants = []string{"sc"}
	spec.Seeds = []int64{1}
	out, err := Sweep(spec, SweepOptions{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Runs) != 1 || out.Simulated != 1 || out.Runs[0].Cached {
		t.Fatalf("outcome: %+v", out)
	}
	if !strings.Contains(out.Table().String(), "barnes") {
		t.Fatal("table missing run row")
	}
}

func TestSweepProgressAndDeterminism(t *testing.T) {
	spec := tinySpec()
	calls := 0
	cached := 0
	opts := SweepOptions{Parallel: 3, CacheDir: t.TempDir(),
		Progress: func(done, total int, cfg Config, hit bool) {
			calls++
			if hit {
				cached++
			}
			if total != 4 || done < 1 || done > 4 {
				t.Errorf("progress %d/%d", done, total)
			}
		}}
	a, err := Sweep(spec, opts)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 4 || cached != 0 {
		t.Fatalf("progress calls %d, cached %d", calls, cached)
	}
	// A serial sweep over the same cache yields identical run ordering.
	b, err := Sweep(spec, SweepOptions{Parallel: 1, CacheDir: opts.CacheDir})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Runs {
		if a.Runs[i].Result.Cycles != b.Runs[i].Result.Cycles {
			t.Fatalf("run %d differs across worker counts", i)
		}
	}
}

// TestCampaignUsesPersistentCache is the Campaign regression test: a fresh
// Campaign over a warmed cache directory must answer from disk.
func TestCampaignUsesPersistentCache(t *testing.T) {
	dir := t.TempDir()
	m := tinyMachine()
	opts := ExpOptions{
		Machine:   &m,
		Workloads: []string{"barnes"},
		Seeds:     []int64{1},
		Scale:     0.2,
		CacheDir:  dir,
	}
	v := ConventionalVariant(SC)

	warm := NewCampaign(opts)
	r1, err := warm.Results("barnes", v)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Simulated() != 1 {
		t.Fatalf("warm campaign simulated %d", warm.Simulated())
	}

	cold := NewCampaign(opts) // a "new process" sharing the directory
	r2, err := cold.Results("barnes", v)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Simulated() != 0 {
		t.Fatalf("second campaign re-simulated %d cells", cold.Simulated())
	}
	if s := cold.CacheStats(); s.Hits != 1 || s.Misses != 0 {
		t.Fatalf("cache stats: %+v", s)
	}
	if r1[0].Cycles != r2[0].Cycles || r1[0].Retired != r2[0].Retired {
		t.Fatal("cached result differs from simulated result")
	}
	// Figures built from cache match figures built from simulation.
	f1, err := Figure10(warm)
	if err != nil {
		t.Fatal(err)
	}
	_ = f1 // Figure10 needs Invisi variants; just ensure no error with cache on.
}

// TestSweepAndCampaignShareCache checks the two entry points agree on keys:
// a sweep's results satisfy a later campaign without re-simulation.
func TestSweepAndCampaignShareCache(t *testing.T) {
	dir := t.TempDir()
	m := tinyMachine()
	spec := SweepSpec{
		Workloads: []string{"barnes"},
		Variants:  []string{"sc"},
		Seeds:     []int64{1},
		Scale:     0.2,
		Machine:   &m,
	}
	if _, err := Sweep(spec, SweepOptions{CacheDir: dir}); err != nil {
		t.Fatal(err)
	}
	c := NewCampaign(ExpOptions{
		Machine:   &m,
		Workloads: []string{"barnes"},
		Seeds:     []int64{1},
		Scale:     0.2,
		CacheDir:  dir,
	})
	if _, err := c.Results("barnes", ConventionalVariant(SC)); err != nil {
		t.Fatal(err)
	}
	if c.Simulated() != 0 {
		t.Fatalf("campaign re-simulated %d cells after sweep warmed the cache", c.Simulated())
	}
}
