package invisifence

import (
	"strings"
	"testing"
)

// tinyMachine shrinks the system for fast API tests (4 cores, short hops).
func tinyMachine() MachineConfig {
	m := DefaultMachine()
	m.Width, m.Height = 2, 2
	m.HopLatency = 10
	m.L1Bytes = 16 << 10
	m.L2Bytes = 256 << 10
	m.L2Latency = 12
	m.MemLatency = 60
	return m
}

func TestRunAndValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machine = tinyMachine()
	cfg.Workload = "apache"
	cfg.Scale = 0.2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Validated || res.Cycles == 0 || res.Retired == 0 {
		t.Fatalf("bad result: %+v", res)
	}
	if res.Breakdown.Total() == 0 {
		t.Fatal("empty breakdown")
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workload = "nope"
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected error")
	}
}

func TestVariantConstructors(t *testing.T) {
	cases := []struct {
		v     Variant
		name  string
		sbCap int
	}{
		{ConventionalVariant(SC), "sc", 64},
		{ConventionalVariant(TSO), "tso", 64},
		{ConventionalVariant(RMO), "rmo", 8},
		{SelectiveVariant(SC), "Invisi_sc", 8},
		{Selective2CkptVariant(SC), "Invisi_sc-2ckpt", 32},
		{ContinuousVariant(false), "Invisi_cont", 32},
		{ContinuousVariant(true), "Invisi_cont_CoV", 32},
		{ASOVariant(), "ASO_sc", 32},
	}
	for _, c := range cases {
		if c.v.Name != c.name || c.v.SBCapacity != c.sbCap {
			t.Errorf("variant %q: %+v", c.name, c.v)
		}
	}
	if ContinuousVariant(true).Engine.CoVTimeout != 4000 {
		t.Fatal("CoV timeout must default to the paper's 4000 cycles")
	}
}

func TestWorkloadsList(t *testing.T) {
	wls := Workloads()
	if len(wls) != 7 {
		t.Fatalf("got %d workloads, want the paper's 7", len(wls))
	}
	want := []string{"apache", "zeus", "oltp-oracle", "oltp-db2", "dss-db2", "barnes", "ocean"}
	for i, w := range want {
		if wls[i] != w {
			t.Fatalf("workload order: %v", wls)
		}
	}
}

func TestSpeculativeVariantsRunAndSpeculate(t *testing.T) {
	for _, v := range []Variant{SelectiveVariant(SC), ContinuousVariant(true), ASOVariant()} {
		cfg := DefaultConfig()
		cfg.Machine = tinyMachine()
		cfg.Workload = "oltp-oracle"
		cfg.Scale = 0.2
		cfg.Variant = v
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", v.Name, err)
		}
		if res.Speculations == 0 {
			t.Fatalf("%s: never speculated", v.Name)
		}
		if res.Commits == 0 {
			t.Fatalf("%s: never committed", v.Name)
		}
	}
}

func TestCampaignCachesResults(t *testing.T) {
	m := tinyMachine()
	c := NewCampaign(ExpOptions{
		Machine:   &m,
		Workloads: []string{"barnes"},
		Seeds:     []int64{1},
		Scale:     0.2,
	})
	v := ConventionalVariant(SC)
	r1, err := c.Results("barnes", v)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Results("barnes", v)
	if err != nil {
		t.Fatal(err)
	}
	if &r1[0] != &r2[0] {
		t.Fatal("results not cached")
	}
	if len(c.sortedCacheKeys()) != 1 {
		t.Fatal("cache key bookkeeping")
	}
}

func TestFigureTablesSmallScale(t *testing.T) {
	m := tinyMachine()
	c := NewCampaign(ExpOptions{
		Machine:   &m,
		Workloads: []string{"barnes", "ocean"},
		Seeds:     []int64{1},
		Scale:     0.2,
		Parallel:  4,
	})
	f1, err := Figure1(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Rows) != 2 || len(f1.Header) != 7 {
		t.Fatalf("figure 1 shape: %dx%d", len(f1.Rows), len(f1.Header))
	}
	f8, err := Figure8(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(f8.Rows) != 3 { // 2 workloads + geomean
		t.Fatalf("figure 8 rows: %d", len(f8.Rows))
	}
	f10, err := Figure10(c)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f10.String(), "ocean") {
		t.Fatal("figure 10 missing workload row")
	}
	// Static tables.
	if len(Figure2().Rows) != 4 {
		t.Fatal("figure 2 must have one row per model")
	}
	if len(Figure7().Rows) != 7 {
		t.Fatal("figure 7 must list all workloads")
	}
	if !strings.Contains(Figure6(DefaultMachine()).String(), "torus") {
		t.Fatal("figure 6 content")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a", "bb"}}
	tb.AddRow("x", "1")
	tb.AddRow("yy", "22")
	tb.AddNote("n%d", 1)
	s := tb.String()
	for _, frag := range []string{"T", "a", "bb", "yy", "22", "note: n1"} {
		if !strings.Contains(s, frag) {
			t.Fatalf("missing %q in:\n%s", frag, s)
		}
	}
	md := tb.Markdown()
	if !strings.Contains(md, "| a | bb |") || !strings.Contains(md, "### T") {
		t.Fatalf("markdown:\n%s", md)
	}
}

func TestLitmusWrapper(t *testing.T) {
	if len(LitmusTests()) < 5 || len(LitmusConfigs()) < 8 {
		t.Fatal("litmus registry too small")
	}
	r, err := RunLitmus("SB", "invisi-sc", 6)
	if err != nil {
		t.Fatal(err)
	}
	if r.Runs != 6 || r.Forbidden != 0 {
		t.Fatalf("litmus result: %+v", r)
	}
	if _, err := RunLitmus("nope", "sc", 1); err == nil {
		t.Fatal("expected unknown-test error")
	}
	if _, err := RunLitmus("SB", "nope", 1); err == nil {
		t.Fatal("expected unknown-config error")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Machine = tinyMachine()
	cfg.Workload = "dss-db2"
	cfg.Scale = 0.2
	cfg.Variant = SelectiveVariant(SC)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles || a.Retired != b.Retired || a.Aborts != b.Aborts {
		t.Fatalf("nondeterministic: %d/%d cycles", a.Cycles, b.Cycles)
	}
}
