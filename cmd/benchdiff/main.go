// Command benchdiff compares two BENCH_<n>.json files produced by
// cmd/bench and fails (exit 1) when any grid cell's cycles/s regresses by
// more than a threshold — or when its allocations per run grow by more than
// the allocation threshold, so the allocation-free message path cannot
// silently regress behind a wall-clock-neutral change. CI uses it to diff
// the fresh quick-bench artifact against the previous run's artifact, so a
// PR that slows the simulator core down trips the gate with a per-cell
// table rather than a vague timeout.
//
// Cells are matched by (workload, variant, scale, link bandwidth); cells
// present in only one file are reported but never fail the gate (grids may
// grow). Contention cells additionally carry their queuing-delay-per-
// message telemetry into the report — informational only, never gated.
// Files measured at different -quick settings are refused — their rates
// are not comparable.
//
// Usage:
//
//	benchdiff old.json new.json
//	benchdiff -threshold 0.15 bench-prev/ bench-new/   # dirs: highest BENCH_<n>.json inside
//	benchdiff -alloc-threshold 0.5 old.json new.json   # tolerate +50% allocs/run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

// cell mirrors the cmd/bench run schema fields benchdiff consumes (v1 and
// v2 files both decode; the contention fields are absent — zero — in
// pre-contention files). QueueDelayPerMsg is carried into the report for
// trend-watching but never gated: queuing delay is simulated machine
// behavior, not host performance, so a delay change is a model change to
// review, not a regression to block.
type cell struct {
	Workload         string  `json:"workload"`
	Variant          string  `json:"variant"`
	Scale            float64 `json:"scale"`
	LinkBandwidth    uint64  `json:"link_bandwidth"`
	CyclesPerSec     float64 `json:"cycles_per_sec"`
	AllocsPerRun     uint64  `json:"allocs_per_run"`
	QueueDelayPerMsg float64 `json:"queue_delay_per_msg"`
}

type benchFile struct {
	Schema   string `json:"schema"`
	Quick    bool   `json:"quick"`
	Clusters int    `json:"clusters"` // 0 for v1 files (serial scheduler)
	Runs     []cell `json:"runs"`
}

var benchName = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// resolve returns path itself for a file, or the highest-numbered
// BENCH_<n>.json inside it for a directory.
func resolve(path string) (string, error) {
	st, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if !st.IsDir() {
		return path, nil
	}
	entries, err := os.ReadDir(path)
	if err != nil {
		return "", err
	}
	best, bestN := "", -1
	for _, e := range entries {
		m := benchName.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		if n, _ := strconv.Atoi(m[1]); n > bestN {
			bestN, best = n, filepath.Join(path, e.Name())
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_<n>.json in %s", path)
	}
	return best, nil
}

func load(path string) (benchFile, string, error) {
	p, err := resolve(path)
	if err != nil {
		return benchFile{}, "", err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return benchFile{}, "", err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return benchFile{}, "", fmt.Errorf("%s: %w", p, err)
	}
	return f, p, nil
}

// key identifies a grid cell across files. Contention cells carry their
// link bandwidth in the key; latency-only cells (LinkBandwidth 0, including
// every cell of a pre-contention file) keep the historical key so old and
// new artifacts keep matching.
func key(c cell) string {
	k := fmt.Sprintf("%s/%s@%g", c.Workload, c.Variant, c.Scale)
	if c.LinkBandwidth > 0 {
		k += fmt.Sprintf("+lbw%d", c.LinkBandwidth)
	}
	return k
}

// qdelayCol renders the carried (never gated) queuing-delay column for a
// cell that has the telemetry on either side of the diff.
func qdelayCol(o, n cell, haveOld bool) string {
	if o.QueueDelayPerMsg == 0 && n.QueueDelayPerMsg == 0 {
		return ""
	}
	if !haveOld {
		return fmt.Sprintf("  qdelay/msg %.1f", n.QueueDelayPerMsg)
	}
	return fmt.Sprintf("  qdelay/msg %.1f -> %.1f", o.QueueDelayPerMsg, n.QueueDelayPerMsg)
}

func main() {
	threshold := flag.Float64("threshold", 0.10, "maximum tolerated cycles/s regression per cell (0.10 = 10%)")
	allocThreshold := flag.Float64("alloc-threshold", 0.25, "maximum tolerated allocs/run growth per cell (0.25 = 25%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold f] [-alloc-threshold f] OLD NEW (files or directories)")
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	oldF, oldPath, err := load(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	newF, newPath, err := load(flag.Arg(1))
	if err != nil {
		fail(err)
	}
	if oldF.Quick != newF.Quick {
		fail(fmt.Errorf("quick flags differ (%v vs %v): rates not comparable", oldF.Quick, newF.Quick))
	}
	if oldF.Clusters != newF.Clusters {
		// Scheduler changed between artifacts (e.g. a v1 serial baseline vs
		// a v2 parallel run): the ~2.5x scheduler delta would drown any core
		// regression, so there is nothing sound to gate on. Skip rather than
		// fail — the next run compares like against like.
		fmt.Printf("benchdiff: cluster counts differ (%d vs %d): schedulers not comparable, skipping diff\n",
			oldF.Clusters, newF.Clusters)
		return
	}
	old := map[string]cell{}
	for _, c := range oldF.Runs {
		old[key(c)] = c
	}
	var keys []string
	cur := map[string]cell{}
	for _, c := range newF.Runs {
		cur[key(c)] = c
		keys = append(keys, key(c))
	}
	sort.Strings(keys)

	fmt.Printf("benchdiff: %s -> %s (cycles/s threshold %.0f%%, allocs threshold %.0f%%)\n",
		oldPath, newPath, *threshold*100, *allocThreshold*100)
	regressed := 0
	for _, k := range keys {
		n := cur[k]
		o, ok := old[k]
		if !ok || o.CyclesPerSec <= 0 {
			fmt.Printf("  %-36s %12.0f cycles/s  %9d allocs%s  (new cell)\n",
				k, n.CyclesPerSec, n.AllocsPerRun, qdelayCol(o, n, false))
			continue
		}
		ratio := n.CyclesPerSec/o.CyclesPerSec - 1
		mark := ""
		if ratio < -*threshold {
			mark = "  << REGRESSION"
		}
		// Allocation gate: a v1 artifact without alloc data (0) never fails.
		allocDelta := 0.0
		if o.AllocsPerRun > 0 {
			allocDelta = float64(n.AllocsPerRun)/float64(o.AllocsPerRun) - 1
			if allocDelta > *allocThreshold {
				mark += "  << ALLOC REGRESSION"
			}
		}
		if mark != "" {
			regressed++
		}
		fmt.Printf("  %-36s %12.0f -> %12.0f cycles/s  %+6.1f%%  %9d -> %9d allocs  %+6.1f%%%s%s\n",
			k, o.CyclesPerSec, n.CyclesPerSec, ratio*100, o.AllocsPerRun, n.AllocsPerRun, allocDelta*100, qdelayCol(o, n, true), mark)
	}
	for k := range old {
		if _, ok := cur[k]; !ok {
			fmt.Printf("  %-36s dropped from grid\n", k)
		}
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d cell(s) regressed beyond the thresholds (cycles/s %.0f%%, allocs %.0f%%)\n",
			regressed, *threshold*100, *allocThreshold*100)
		os.Exit(1)
	}
	fmt.Println("benchdiff: no regression beyond thresholds")
}
