// Command fencesearch searches the fence-placement lattice of a litmus
// program for minimal fence sets that forbid a target outcome, using the
// simulator as the correctness oracle.
//
// The deterministic report (query, candidate sites, per-implementation
// minimal sets and evaluation counts) goes to stdout; cache/simulation
// traffic counters go to stderr, so two runs of the same query produce
// byte-identical stdout regardless of cache warmth.
//
// Usage:
//
//	fencesearch -test SB -configs rmo          # classic two-fence answer
//	fencesearch -test MP                       # all implementations
//	fencesearch -test MP -target '1,0'         # explicit outcome (Any = ?)
//	fencesearch -test SB -cache .litmus-cache  # persistent dedupe across runs
//	fencesearch -list                          # searchable tests + configs
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"invisifence/internal/fencesearch"
	"invisifence/internal/litmus"
	"invisifence/internal/runcache"
)

func main() {
	test := flag.String("test", "", "litmus test to search (required unless -list)")
	target := flag.String("target", "", "target outcome as comma-separated slot values, ? = any (default: the test's canonical SC-forbidden outcome)")
	configs := flag.String("configs", "", "comma-separated implementations to search; empty = all")
	seeds := flag.Int("seeds", 48, "interleaving seeds per candidate evaluation")
	maxFences := flag.Int("max-fences", 0, "cap candidate set size; 0 = full lattice")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent candidate evaluations")
	cacheDir := flag.String("cache", "", "evaluation cache directory; empty = in-memory only")
	prune := flag.Bool("prune", false, "steer the walk with the static delay-set analysis (same report, fewer simulations)")
	list := flag.Bool("list", false, "list searchable tests and implementations")
	flag.Parse()

	if *list {
		fmt.Println("tests:")
		for _, t := range litmus.Tests {
			if t.Target == nil {
				continue
			}
			fmt.Printf("  %-6s target=%v\n", t.Name, t.Target)
		}
		fmt.Println("configs:")
		for _, s := range litmus.AllConfigs() {
			fmt.Printf("  %s\n", s.Name)
		}
		return
	}
	if *test == "" {
		flag.Usage()
		os.Exit(2)
	}

	q := fencesearch.Query{Test: *test}
	if *target != "" {
		spec, err := parseTarget(*target)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		q.Target = spec
	}
	if *configs != "" {
		q.Configs = strings.Split(*configs, ",")
	}

	opts := fencesearch.Options{Seeds: *seeds, MaxFences: *maxFences, Workers: *workers, Prune: *prune}
	if *cacheDir != "" {
		c, err := runcache.Open(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		opts.Cache = c
	}

	res, err := fencesearch.Search(q, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Print(res.Report())
	fmt.Fprintln(os.Stderr, res.TrafficString())
}

// parseTarget decodes "1,0" / "1,?" into an OutcomeSpec.
func parseTarget(s string) (litmus.OutcomeSpec, error) {
	parts := strings.Split(s, ",")
	spec := make(litmus.OutcomeSpec, len(parts))
	for i, p := range parts {
		p = strings.TrimSpace(p)
		if p == "?" || p == "*" {
			spec[i] = litmus.Any
			continue
		}
		v, err := strconv.ParseInt(p, 0, 64)
		if err != nil {
			return nil, fmt.Errorf("fencesearch: bad target slot %q: %v", p, err)
		}
		spec[i] = v
	}
	return spec, nil
}
