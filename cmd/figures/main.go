// Command figures regenerates the paper's evaluation tables and figures
// (Figures 1, 2, 4, 6, 7, 8, 9, 10, 11, 12) as text tables.
//
// Usage:
//
//	figures                    # all figures, 1 seed, full scale
//	figures -fig 8 -seeds 3    # Figure 8 with 95% CIs over 3 seeds
//	figures -scale 0.5 -workloads apache,ocean
//	figures -cache .invisifence-cache   # reuse results across runs
//	figures -markdown > results.md
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"invisifence"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1,2,4,6,7,8,9,10,11,12 or all")
	seeds := flag.Int("seeds", 1, "number of seeds (CIs need >= 2)")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	wls := flag.String("workloads", "", "comma-separated workload subset (default: all)")
	par := flag.Int("parallel", 4, "concurrent simulations")
	markdown := flag.Bool("markdown", false, "emit markdown tables")
	cacheDir := flag.String("cache", "", "persistent result cache directory shared with cmd/sweep (\"\" disables)")
	flag.Parse()

	opts := invisifence.ExpOptions{Scale: *scale, Parallel: *par, CacheDir: *cacheDir}
	for s := 1; s <= *seeds; s++ {
		opts.Seeds = append(opts.Seeds, int64(s))
	}
	if *wls != "" {
		opts.Workloads = strings.Split(*wls, ",")
	}
	c := invisifence.NewCampaign(opts)
	if err := c.CacheErr(); err != nil {
		fmt.Fprintf(os.Stderr, "warning: result cache disabled: %v\n", err)
	}

	emit := func(t *invisifence.Table, err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t.String())
		}
	}

	switch *fig {
	case "1":
		emit(invisifence.Figure1(c))
	case "2":
		emit(invisifence.Figure2(), nil)
	case "4":
		emit(invisifence.Figure4(c))
	case "6":
		emit(invisifence.Figure6(*c.Options().Machine), nil)
	case "7":
		emit(invisifence.Figure7(), nil)
	case "8":
		emit(invisifence.Figure8(c))
	case "9":
		emit(invisifence.Figure9(c))
	case "10":
		emit(invisifence.Figure10(c))
	case "11":
		emit(invisifence.Figure11(c))
	case "12":
		emit(invisifence.Figure12(c))
	case "all":
		tables, err := invisifence.AllFigures(c)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, t := range tables {
			if *markdown {
				fmt.Println(t.Markdown())
			} else {
				fmt.Println(t.String())
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	if *cacheDir != "" {
		fmt.Fprintf(os.Stderr, "%d simulated, %s\n", c.Simulated(), c.CacheStats())
	}
}
