// Command invisifence runs a single simulation: one workload under one
// consistency implementation, printing the runtime breakdown and speculation
// statistics.
//
// Usage:
//
//	invisifence -workload apache -variant invisi-sc [-cores 16] [-seed 1] [-scale 1.0]
//
// Variants: sc, tso, rmo, rc, invisi-sc, invisi-tso, invisi-rmo,
// invisi-rc, invisi-sc-2ckpt, continuous, continuous-cov, aso, louvre-rc.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"invisifence"
	"invisifence/internal/stats"
)

func main() {
	wl := flag.String("workload", "apache", "workload: "+strings.Join(invisifence.Workloads(), ", "))
	variant := flag.String("variant", "sc", "consistency implementation: "+strings.Join(invisifence.VariantNames(), ", "))
	cores := flag.Int("cores", 16, "core count (must form a WxH torus: 1, 2, 4, 8, 16)")
	seed := flag.Int64("seed", 1, "workload/jitter seed")
	scale := flag.Float64("scale", 1.0, "workload size multiplier")
	flag.Parse()

	v, err := invisifence.VariantByName(*variant)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	cfg := invisifence.DefaultConfig()
	cfg.Workload = *wl
	cfg.Variant = v
	cfg.Seed = *seed
	cfg.Scale = *scale
	switch *cores {
	case 1:
		cfg.Machine.Width, cfg.Machine.Height = 1, 1
	case 2:
		cfg.Machine.Width, cfg.Machine.Height = 2, 1
	case 4:
		cfg.Machine.Width, cfg.Machine.Height = 2, 2
	case 8:
		cfg.Machine.Width, cfg.Machine.Height = 4, 2
	case 16:
		cfg.Machine.Width, cfg.Machine.Height = 4, 4
	default:
		fmt.Fprintf(os.Stderr, "unsupported core count %d\n", *cores)
		os.Exit(2)
	}

	res, err := invisifence.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("workload       %s (seed %d, scale %.2f)\n", *wl, *seed, *scale)
	fmt.Printf("variant        %s\n", v.Name)
	fmt.Printf("cycles         %d\n", res.Cycles)
	fmt.Printf("retired        %d (IPC %.3f over %d cores)\n",
		res.Retired, float64(res.Retired)/float64(res.Cycles)/float64(*cores), *cores)
	fmt.Printf("validated      %v\n", res.Validated)
	fmt.Println("breakdown:")
	for c := stats.Busy; c < stats.NumClasses; c++ {
		fmt.Printf("  %-10s %6.2f%%\n", c.String(), 100*res.Breakdown.Frac(c))
	}
	fmt.Printf("speculation    %.1f%% of cycles, %d episodes, %d commits, %d aborts\n",
		100*res.SpecFraction, res.Speculations, res.Commits, res.Aborts)
	if res.CoVDeferrals > 0 {
		fmt.Printf("commit-on-violate: %d deferrals, %d ended in commit\n",
			res.CoVDeferrals, res.CoVSaves)
	}
	if res.CleaningWBs > 0 {
		fmt.Printf("cleaning writebacks: %d\n", res.CleaningWBs)
	}
}
