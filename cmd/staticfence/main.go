// Command staticfence runs the static fence-inference analyzer
// (critical-cycle / delay-set analysis) over the litmus corpus, and
// optionally cross-validates it against the dynamic simulator oracle.
//
// The report is fully deterministic (stdout); in -crossval mode the
// dynamic search's cache/simulation traffic goes to stderr, so two runs of
// the same query produce byte-identical stdout regardless of cache warmth.
// A crossval run with soundness violations exits nonzero.
//
// Usage:
//
//	staticfence -test MP -model rmo          # one test, one model
//	staticfence                              # full corpus x {sc,tso,rmo}
//	staticfence -crossval                    # static vs dynamic, all configs
//	staticfence -crossval -cache .litmus-cache
//	staticfence -list                        # analyzable tests + models
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"invisifence/internal/consistency"
	"invisifence/internal/crossval"
	"invisifence/internal/isa"
	"invisifence/internal/litmus"
	"invisifence/internal/runcache"
	"invisifence/internal/staticfence"
)

func main() {
	test := flag.String("test", "", "litmus test to analyze; empty = full corpus")
	model := flag.String("model", "", "memory model (sc, tso, rmo); empty = all three")
	doCrossval := flag.Bool("crossval", false, "cross-validate against the fencesearch simulator oracle (all implementations)")
	seeds := flag.Int("seeds", 48, "crossval: interleaving seeds per dynamic evaluation")
	workers := flag.Int("workers", runtime.NumCPU(), "crossval: concurrent evaluations")
	cacheDir := flag.String("cache", "", "crossval: evaluation cache directory; empty = in-memory only")
	list := flag.Bool("list", false, "list analyzable tests and models")
	flag.Parse()

	if *list {
		fmt.Println("tests:")
		for _, t := range litmus.Tests {
			fmt.Printf("  %-6s threads=%d\n", t.Name, t.Threads)
		}
		fmt.Println("models: sc tso rmo")
		return
	}

	if *doCrossval {
		opts := crossval.Options{Seeds: *seeds, Workers: *workers}
		if *test != "" {
			opts.Tests = strings.Split(*test, ",")
		}
		if *cacheDir != "" {
			c, err := runcache.Open(*cacheDir)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opts.Cache = c
		}
		rep, err := crossval.Run(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Print(rep.String())
		if v := rep.Violations(); len(v) > 0 {
			fmt.Fprintf(os.Stderr, "staticfence: %d soundness violation(s)\n", len(v))
			os.Exit(1)
		}
		return
	}

	models, err := parseModels(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, t := range litmus.Tests {
		if *test != "" && t.Name != *test {
			continue
		}
		bodies := litmus.BodyPrograms(t, isa.NoFences)
		for _, m := range models {
			r, err := staticfence.Analyze(t.Name, bodies, m, staticfence.LitmusLayout())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Print(r.Report())
		}
	}
}

func parseModels(s string) ([]consistency.Model, error) {
	if s == "" {
		return []consistency.Model{consistency.SC, consistency.TSO, consistency.RMO}, nil
	}
	var out []consistency.Model
	for _, name := range strings.Split(s, ",") {
		switch strings.ToLower(strings.TrimSpace(name)) {
		case "sc":
			out = append(out, consistency.SC)
		case "tso":
			out = append(out, consistency.TSO)
		case "rmo":
			out = append(out, consistency.RMO)
		default:
			return nil, fmt.Errorf("staticfence: unknown model %q (have sc, tso, rmo)", name)
		}
	}
	return out, nil
}
