// Command sweepd serves sweep campaigns over HTTP: POST a SweepSpec (the
// same JSON cmd/sweep takes via -spec) to /sweeps and the daemon expands
// it into cells, schedules them on a work-stealing worker pool, dedupes
// identical in-flight cells across all concurrent campaigns
// (single-flight), and persists every simulated result into the shared
// content-addressed cache — so repeated or overlapping campaigns, from
// any number of clients or processes, simulate each unique configuration
// exactly once. Progress streams per cell as NDJSON from
// /sweeps/{id}/events; the finished table at /sweeps/{id}/table is
// byte-identical to cmd/sweep run offline on the same spec.
//
// Campaigns are crash-safe: every accepted spec is journaled under the
// cache directory, and a restarted sweepd on the same -cache replays the
// journals and resumes unfinished campaigns automatically — finished
// cells answer from the cache, so only the cells in flight at the crash
// are re-simulated. Cells run under a watchdog deadline and are retried
// (capped exponential backoff, -max-cell-retries attempts) before the
// cell alone is marked failed.
//
// Usage:
//
//	sweepd -addr :8377 -cache .invisifence-cache -workers 8
//
//	curl -d @grid.json localhost:8377/sweeps            # -> {"id":"c0001",...}
//	curl localhost:8377/sweeps/c0001                    # status + counters
//	curl -N localhost:8377/sweeps/c0001/events          # NDJSON progress
//	curl localhost:8377/sweeps/c0001/table              # deterministic table
//	curl localhost:8377/healthz                         # liveness
//	curl localhost:8377/readyz                          # readiness (503 while draining/replaying)
//
// SIGINT/SIGTERM drain gracefully: new specs get 503, in-flight cells
// finish and persist, queued cells are marked aborted, and the process
// exits 0. The drain is bounded by -graceful-timeout: if a cell outlives
// it, the process exits anyway — the unfinished campaigns' journals make
// the next start resume them.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"invisifence/internal/sweepd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	cacheDir := flag.String("cache", ".invisifence-cache", "persistent result cache directory (\"\" = memory-only, campaigns not journaled)")
	workers := flag.Int("workers", defaultWorkers(), "concurrent simulations across all campaigns")
	maxCells := flag.Int("maxcells", 0, "per-spec cell cap (0 = the server default)")
	gracefulTimeout := flag.Duration("graceful-timeout", 30*time.Second, "hard bound on the SIGTERM drain; campaigns still unfinished at the bound are left to journal recovery (0 = wait forever)")
	maxCellRetries := flag.Int("max-cell-retries", 2, "re-attempts for a timed-out or failed cell before the cell is marked failed (negative = no retries)")
	flag.Parse()

	srv, err := sweepd.New(sweepd.Options{
		Workers:        *workers,
		CacheDir:       *cacheDir,
		MaxCells:       *maxCells,
		MaxCellRetries: *maxCellRetries,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	// Journal replay runs concurrently with serving: /healthz answers
	// immediately, /readyz stays 503 until replay finishes and every
	// journaled campaign is resumed.
	go func() {
		if err := srv.Recover(); err != nil {
			fmt.Fprintln(os.Stderr, "sweepd: journal recovery:", err)
		}
		if s := srv.Stats(); s.CampaignsRecovered > 0 {
			fmt.Fprintf(os.Stderr, "sweepd: resumed %d journaled campaign(s)\n", s.CampaignsRecovered)
		}
	}()
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "sweepd: %v: draining (in-flight cells finish and persist; queued cells abort; bound %v)\n", sig, *gracefulTimeout)
		if srv.ShutdownTimeout(*gracefulTimeout) {
			fmt.Fprintf(os.Stderr, "sweepd: drained; %s\n", srv.Stats())
		} else {
			fmt.Fprintf(os.Stderr, "sweepd: drain exceeded %v; unfinished campaigns will resume from their journals; %s\n", *gracefulTimeout, srv.Stats())
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx) // then close the listener and idle conns
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "sweepd: listening on %s (%d workers, cache %q)\n", *addr, *workers, *cacheDir)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	<-done
}

// defaultWorkers mirrors cmd/bench's cluster sizing: scale with the
// host, floor 4, cap 16 — simulations are single-threaded internally, so
// the pool is the only parallelism.
func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		return 4
	}
	if n > 16 {
		return 16
	}
	return n
}
