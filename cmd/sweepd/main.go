// Command sweepd serves sweep campaigns over HTTP: POST a SweepSpec (the
// same JSON cmd/sweep takes via -spec) to /sweeps and the daemon expands
// it into cells, schedules them on a work-stealing worker pool, dedupes
// identical in-flight cells across all concurrent campaigns
// (single-flight), and persists every simulated result into the shared
// content-addressed cache — so repeated or overlapping campaigns, from
// any number of clients or processes, simulate each unique configuration
// exactly once. Progress streams per cell as NDJSON from
// /sweeps/{id}/events; the finished table at /sweeps/{id}/table is
// byte-identical to cmd/sweep run offline on the same spec.
//
// Usage:
//
//	sweepd -addr :8377 -cache .invisifence-cache -workers 8
//
//	curl -d @grid.json localhost:8377/sweeps            # -> {"id":"c0001",...}
//	curl localhost:8377/sweeps/c0001                    # status + counters
//	curl -N localhost:8377/sweeps/c0001/events          # NDJSON progress
//	curl localhost:8377/sweeps/c0001/table              # deterministic table
//
// SIGINT/SIGTERM drain gracefully: new specs get 503, in-flight cells
// finish and persist, queued cells are marked aborted, and the process
// exits 0.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"invisifence/internal/sweepd"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8377", "listen address")
	cacheDir := flag.String("cache", ".invisifence-cache", "persistent result cache directory (\"\" = memory-only)")
	workers := flag.Int("workers", defaultWorkers(), "concurrent simulations across all campaigns")
	maxCells := flag.Int("maxcells", 0, "per-spec cell cap (0 = the server default)")
	flag.Parse()

	srv, err := sweepd.New(sweepd.Options{
		Workers:  *workers,
		CacheDir: *cacheDir,
		MaxCells: *maxCells,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigs
		fmt.Fprintf(os.Stderr, "sweepd: %v: draining (in-flight cells finish and persist; queued cells abort)\n", sig)
		srv.Shutdown() // returns once every campaign is terminal
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(ctx) // then close the listener and idle conns
		fmt.Fprintf(os.Stderr, "sweepd: drained; %s\n", srv.Stats())
		close(done)
	}()

	fmt.Fprintf(os.Stderr, "sweepd: listening on %s (%d workers, cache %q)\n", *addr, *workers, *cacheDir)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
		os.Exit(1)
	}
	<-done
}

// defaultWorkers mirrors cmd/bench's cluster sizing: scale with the
// host, floor 4, cap 16 — simulations are single-threaded internally, so
// the pool is the only parallelism.
func defaultWorkers() int {
	n := runtime.GOMAXPROCS(0)
	if n < 4 {
		return 4
	}
	if n > 16 {
		return 16
	}
	return n
}
