// Command sweep runs a declarative parameter grid — workloads × variants ×
// store-buffer depth × checkpoints × node count × link bandwidth × seeds —
// on a bounded worker pool, persisting every result to a content-addressed
// cache so repeated sweeps (and overlapping ones) re-simulate nothing.
//
// The grid comes from a JSON spec file and/or flags (flags override the
// file). Results go to stdout as a deterministic table; progress and cache
// statistics go to stderr, so two runs of one spec emit byte-identical
// stdout — the second entirely from cache.
//
// Usage:
//
//	sweep -variants sc,invisi-sc -seeds 1,2,3
//	sweep -spec grid.json -parallel 8 -markdown
//	sweep -workloads barnes -variants invisi-sc -sb 2,4,8,16 -scale 0.2
//	sweep -variants invisi-sc -nodes 4,8,16        # scaling curve
//	sweep -workloads apache -variants sc,invisi-sc -linkbw 0,2,8   # contention curve
//
// where grid.json looks like:
//
//	{"workloads": ["apache", "ocean"],
//	 "variants": ["sc", "tso", "invisi-sc"],
//	 "sb_depths": [0, 4, 16],
//	 "seeds": [1, 2],
//	 "scale": 0.5}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"invisifence"
)

func splitInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func splitInt64s(s string) ([]int64, error) {
	ns, err := splitInts(s)
	if err != nil {
		return nil, err
	}
	var out []int64
	for _, n := range ns {
		out = append(out, int64(n))
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

func main() {
	specPath := flag.String("spec", "", "JSON SweepSpec file (flags override its fields)")
	wls := flag.String("workloads", "", "comma-separated workloads (default: all seven)")
	variants := flag.String("variants", "", "comma-separated variants: "+strings.Join(invisifence.VariantNames(), ", "))
	sb := flag.String("sb", "", "comma-separated store-buffer depths (0 = variant default)")
	ckpts := flag.String("ckpts", "", "comma-separated checkpoint counts (0 = variant default)")
	nodes := flag.String("nodes", "", "comma-separated node counts (each factored into the squarest torus)")
	linkbw := flag.String("linkbw", "", "comma-separated link bandwidths in cycles/flit (0 = latency-only torus)")
	seeds := flag.String("seeds", "", "comma-separated seeds (default: 1)")
	scale := flag.Float64("scale", 0, "workload size multiplier (default 1.0)")
	maxCycles := flag.Uint64("maxcycles", 0, "per-run cycle bound (0 = runner default)")
	parallel := flag.Int("parallel", 4, "concurrent simulations")
	cacheDir := flag.String("cache", ".invisifence-cache", "persistent result cache directory (\"\" disables)")
	markdown := flag.Bool("markdown", false, "emit a markdown table")
	quiet := flag.Bool("quiet", false, "suppress per-job progress on stderr")
	dryRun := flag.Bool("n", false, "print the expanded job list and exit without simulating")
	flag.Parse()

	var spec invisifence.SweepSpec
	if *specPath != "" {
		data, err := os.ReadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *specPath, err))
		}
	}
	if *wls != "" {
		spec.Workloads = strings.Split(*wls, ",")
	}
	if *variants != "" {
		spec.Variants = strings.Split(*variants, ",")
	}
	var err error
	if *sb != "" {
		if spec.SBDepths, err = splitInts(*sb); err != nil {
			fatal(err)
		}
	}
	if *ckpts != "" {
		if spec.Checkpoints, err = splitInts(*ckpts); err != nil {
			fatal(err)
		}
	}
	if *nodes != "" {
		if spec.Nodes, err = splitInts(*nodes); err != nil {
			fatal(err)
		}
	}
	if *linkbw != "" {
		bws, err := splitInts(*linkbw)
		if err != nil {
			fatal(err)
		}
		spec.LinkBandwidths = spec.LinkBandwidths[:0]
		for _, bw := range bws {
			if bw < 0 {
				fatal(fmt.Errorf("negative link bandwidth %d", bw))
			}
			spec.LinkBandwidths = append(spec.LinkBandwidths, uint64(bw))
		}
	}
	if *seeds != "" {
		if spec.Seeds, err = splitInt64s(*seeds); err != nil {
			fatal(err)
		}
	}
	if *scale != 0 {
		spec.Scale = *scale
	}
	if *maxCycles != 0 {
		spec.MaxCycles = *maxCycles
	}

	if *dryRun {
		jobs, err := spec.Jobs()
		if err != nil {
			fatal(err)
		}
		for i, j := range jobs {
			fmt.Printf("%4d  %-12s %-20s nodes=%d sb=%d linkbw=%d seed=%d\n", i,
				j.Workload, j.Variant.Name, j.Machine.Width*j.Machine.Height,
				j.Variant.SBCapacity, j.Machine.LinkBandwidth, j.Seed)
		}
		fmt.Fprintf(os.Stderr, "%d jobs\n", len(jobs))
		return
	}

	opts := invisifence.SweepOptions{Parallel: *parallel, CacheDir: *cacheDir}
	if !*quiet {
		opts.Progress = func(done, total int, cfg invisifence.Config, cached bool) {
			src := "ran"
			if cached {
				src = "hit"
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s %s/%s seed=%d\n",
				done, total, src, cfg.Workload, cfg.Variant.Name, cfg.Seed)
		}
	}
	out, err := invisifence.Sweep(spec, opts)
	if err != nil {
		fatal(err)
	}
	t := out.Table()
	if *markdown {
		fmt.Println(t.Markdown())
	} else {
		fmt.Println(t.String())
	}
	fmt.Fprintf(os.Stderr, "%d runs, %d simulated, %s\n",
		len(out.Runs), out.Simulated, out.CacheStats)
}
