// Command litmus sweeps memory-model litmus tests across consistency
// implementations and interleaving seeds, reporting outcome histograms and
// flagging any model-forbidden observation.
//
// Usage:
//
//	litmus                       # full suite
//	litmus -test SB -config tso -seeds 50
package main

import (
	"flag"
	"fmt"
	"os"

	"invisifence"
)

func main() {
	test := flag.String("test", "", "single test (SB, MP, LB, IRIW, SB+F, WRC, CoRR, RMW, ISA2, 2+2W, R, S); empty = all")
	config := flag.String("config", "", "single implementation; empty = all")
	seeds := flag.Int("seeds", 20, "interleaving seeds per (test, config)")
	flag.Parse()

	tests := invisifence.LitmusTests()
	if *test != "" {
		tests = []string{*test}
	}
	configs := invisifence.LitmusConfigs()
	if *config != "" {
		configs = []string{*config}
	}

	violations := 0
	for _, tt := range tests {
		fmt.Printf("== %s ==\n", tt)
		for _, cc := range configs {
			r, err := invisifence.RunLitmus(tt, cc, *seeds)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			fmt.Printf("  %-16s forbidden=%d relaxed=%d outcomes:", cc, r.Forbidden, r.Relaxed)
			for _, o := range r.Outcomes {
				fmt.Printf(" %vx%d", o.Values, o.Count)
			}
			fmt.Println()
			violations += r.Forbidden
		}
	}
	if violations > 0 {
		fmt.Printf("\nFAIL: %d forbidden outcomes observed\n", violations)
		os.Exit(1)
	}
	fmt.Println("\nOK: no forbidden outcome under any implementation")
}
