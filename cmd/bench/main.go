// Command bench measures the simulator core's wall-clock performance on the
// reference grid — the seven paper workloads under conventional SC and
// INVISIFENCE-SELECTIVE-SC — and records the trajectory as a BENCH_<n>.json
// file, so every PR that touches the core leaves a measured data point
// behind. Grid cells run under the parallel runner (-clusters; by default
// derived from GOMAXPROCS and the 16-node grid, see defaultClusters);
// simulated results are scheduler-independent (TestGoldenResults,
// TestParallelBitExact), so trajectories stay comparable across files.
//
// For the reference apache cells (conventional SC and Invisi_sc, the two
// configurations the performance acceptance gates track) it additionally
// re-runs the simulation under the serial event-horizon scheduler and the
// naive lock-step loop, recording the serial-to-parallel trajectory per
// cell: lock-step ns, serial ns, parallel ns, and the derived speedups.
//
// Besides the latency-only grid it measures two contention smoke cells —
// apache under conventional SC and Invisi_sc with a finite link bandwidth
// (-linkbw, cycles/flit) — so the per-link contention model's cost and its
// queuing-delay telemetry are tracked in every BENCH file and in the
// -quick CI artifact, plus one release-consistency cell (apache under
// Invisi_rc) tracking the RC retirement paths.
//
// Usage:
//
//	bench                 # full grid at scale 1.0, 3 iterations per cell
//	bench -quick          # CI smoke: scale 0.25, 1 iteration
//	bench -out results/   # write BENCH_<n>.json into a directory
//	bench -workloads apache,ocean -variants sc -iters 5
//	bench -clusters 0     # measure the serial schedulers only
//	bench -clusters -1    # explicit auto: derive clusters from GOMAXPROCS
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"invisifence"
)

// benchRun is one measured grid cell. LinkBandwidth and the queuing-delay
// telemetry identify and describe contention cells (0 for the latency-only
// torus); cmd/benchdiff keys on LinkBandwidth and carries — but never
// gates on — the delay columns.
type benchRun struct {
	Workload         string  `json:"workload"`
	Variant          string  `json:"variant"`
	Scale            float64 `json:"scale"`
	LinkBandwidth    uint64  `json:"link_bandwidth,omitempty"`
	Iters            int     `json:"iters"`
	SimCycles        uint64  `json:"sim_cycles"`
	Retired          uint64  `json:"retired"`
	NsPerRun         int64   `json:"ns_per_run"`
	CyclesPerSec     float64 `json:"cycles_per_sec"`
	AllocsPerRun     uint64  `json:"allocs_per_run"`
	BytesPerRun      uint64  `json:"bytes_per_run"`
	QueueDelayPerMsg float64 `json:"queue_delay_per_msg,omitempty"`
}

// reference pins one cell's scheduler trajectory: the same simulation under
// the naive lock-step loop, the serial event-horizon scheduler, and the
// parallel runner, in this binary (isolating scheduler effects from
// everything else) — and, when -prerefactor-ns supplies a measurement of
// the seed core on the same host, against the pre-refactor implementation
// as a whole. OptimizedNs is the best configured scheduler (the parallel
// runner unless -clusters 0).
type reference struct {
	Workload           string  `json:"workload"`
	Variant            string  `json:"variant"`
	Scale              float64 `json:"scale"`
	Clusters           int     `json:"clusters"`
	OptimizedNs        int64   `json:"optimized_ns"`
	SerialNs           int64   `json:"serial_ns"`
	LockstepNs         int64   `json:"lockstep_ns"`
	SerialSpeedup      float64 `json:"serial_speedup"`   // serial / optimized
	LockstepSpeedup    float64 `json:"lockstep_speedup"` // lock-step / optimized
	PreRefactorNs      int64   `json:"prerefactor_ns,omitempty"`
	PreRefactorSpeedup float64 `json:"prerefactor_speedup,omitempty"`
}

// benchFile is the BENCH_<n>.json schema. v2 adds per-cell scheduler
// references (References) in place of v1's single apache/SC entry.
type benchFile struct {
	Schema    string      `json:"schema"`
	GoVersion string      `json:"go_version"`
	GOOS      string      `json:"goos"`
	GOARCH    string      `json:"goarch"`
	CPUs      int         `json:"cpus"`
	Quick     bool        `json:"quick"`
	Clusters  int         `json:"clusters"`
	Runs      []benchRun  `json:"runs"`
	Reference []reference `json:"references,omitempty"`
}

func measure(cfg invisifence.Config, iters int) (benchRun, error) {
	var ms0, ms1 runtime.MemStats
	var res invisifence.Result
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		var err error
		res, err = invisifence.Run(cfg)
		if err != nil {
			return benchRun{}, err
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&ms1)
	ns := elapsed.Nanoseconds() / int64(iters)
	r := benchRun{
		Workload:         cfg.Workload,
		Variant:          cfg.Variant.Name,
		Scale:            cfg.Scale,
		LinkBandwidth:    cfg.Machine.LinkBandwidth,
		Iters:            iters,
		SimCycles:        res.Cycles,
		Retired:          res.Retired,
		NsPerRun:         ns,
		AllocsPerRun:     (ms1.Mallocs - ms0.Mallocs) / uint64(iters),
		BytesPerRun:      (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(iters),
		QueueDelayPerMsg: res.QueueDelayPerMsg(),
	}
	if ns > 0 {
		r.CyclesPerSec = float64(res.Cycles) / (float64(ns) / 1e9)
	}
	return r, nil
}

// defaultClusters derives the parallel-runner cluster count from
// GOMAXPROCS, clamped to [4, 16]: the reference grid simulates 16 nodes, so
// more clusters than nodes is never useful, and on small hosts the floor
// keeps the historical 4-cluster configuration (ROADMAP "Adaptive cluster
// count": on 1 CPU, 2-16 clusters measure within noise and all beat serial
// — the per-node clocks, not the parallelism, carry the win — so the floor
// costs nothing while keeping trajectories comparable with BENCH_2/3).
func defaultClusters() int {
	k := runtime.GOMAXPROCS(0)
	if k < 4 {
		return 4
	}
	if k > 16 {
		return 16
	}
	return k
}

// nextBenchPath returns dir/BENCH_<n>.json for the smallest unused n >= 1.
func nextBenchPath(dir string) string {
	for n := 1; ; n++ {
		p := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			return p
		}
	}
}

func main() {
	quick := flag.Bool("quick", false, "CI smoke mode: scale 0.25, one iteration per cell")
	iters := flag.Int("iters", 0, "iterations per cell (0 = 3, or 1 with -quick)")
	scale := flag.Float64("scale", 0, "workload scale (0 = 1.0, or 0.25 with -quick)")
	out := flag.String("out", "", "output path or directory (default: next free ./BENCH_<n>.json)")
	workloads := flag.String("workloads", "", "comma-separated workloads (default: all seven)")
	variants := flag.String("variants", "sc,invisi-sc", "comma-separated variant names")
	noRef := flag.Bool("no-reference", false, "skip the apache scheduler-trajectory measurements")
	preNs := flag.Int64("prerefactor-ns", 0, "measured ns/run of the pre-refactor (seed) core for apache/SC at the same scale on this host; recorded for the trajectory")
	clusters := flag.Int("clusters", -1, "parallel-runner clusters for grid cells (-1 = derive from GOMAXPROCS, 0 = serial event-horizon scheduler)")
	linkbw := flag.Uint64("linkbw", 4, "link bandwidth in cycles/flit for the contention smoke cells (0 skips them; only run on the unfiltered reference grid)")
	flag.Parse()

	if *clusters < 0 {
		*clusters = defaultClusters()
	}

	if *iters == 0 {
		if *quick {
			*iters = 1
		} else {
			*iters = 3
		}
	}
	if *scale == 0 {
		if *quick {
			*scale = 0.25
		} else {
			*scale = 1.0
		}
	}
	wls := invisifence.Workloads()
	if *workloads != "" {
		wls = strings.Split(*workloads, ",")
	}
	vns := strings.Split(*variants, ",")

	file := benchFile{
		Schema:    "invisifence-bench/v2",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Quick:     *quick,
		Clusters:  *clusters,
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	for _, wl := range wls {
		for _, vn := range vns {
			v, err := invisifence.VariantByName(strings.TrimSpace(vn))
			if err != nil {
				fail(err)
			}
			cfg := invisifence.DefaultConfig()
			cfg.Workload = strings.TrimSpace(wl)
			cfg.Variant = v
			cfg.Scale = *scale
			cfg.Clusters = *clusters
			r, err := measure(cfg, *iters)
			if err != nil {
				fail(err)
			}
			file.Runs = append(file.Runs, r)
			fmt.Fprintf(os.Stderr, "%-12s %-12s %9d cycles  %12d ns/run  %10.0f cycles/s  %8d allocs\n",
				r.Workload, r.Variant, r.SimCycles, r.NsPerRun, r.CyclesPerSec, r.AllocsPerRun)
		}
	}

	// Contention smoke cells: the SC-vs-Invisi_sc reference pair under a
	// congested torus, so the contention model's wall-clock cost and its
	// queuing-delay telemetry ride every BENCH file (and the -quick CI
	// artifact). benchdiff keys these cells by their link_bandwidth, apart
	// from the latency-only grid. A filtered invocation (-workloads or
	// -variants) is a targeted measurement, not the reference grid, so the
	// extras are skipped — same spirit as -no-reference for the
	// scheduler-trajectory cells.
	if *linkbw > 0 && *workloads == "" && *variants == "sc,invisi-sc" {
		for _, vn := range []string{"sc", "invisi-sc"} {
			v, err := invisifence.VariantByName(vn)
			if err != nil {
				fail(err)
			}
			cfg := invisifence.DefaultConfig()
			cfg.Workload = "apache"
			cfg.Variant = v
			cfg.Scale = *scale
			cfg.Clusters = *clusters
			cfg.Machine.LinkBandwidth = *linkbw
			r, err := measure(cfg, *iters)
			if err != nil {
				fail(err)
			}
			file.Runs = append(file.Runs, r)
			fmt.Fprintf(os.Stderr, "%-12s %-12s %9d cycles  %12d ns/run  %10.0f cycles/s  qdelay/msg %.1f  (linkbw %d)\n",
				r.Workload, r.Variant, r.SimCycles, r.NsPerRun, r.CyclesPerSec, r.QueueDelayPerMsg, r.LinkBandwidth)
		}
	}

	// Release-consistency smoke cell: apache under speculation-over-RC
	// (Invisi_rc), so the RC retirement paths — annotated sync library,
	// release-triggered speculation, draining atomics — leave a measured
	// wall-clock point in every BENCH file and the -quick CI artifact for
	// benchdiff to track. Skipped on filtered invocations like the other
	// extras.
	if *workloads == "" && *variants == "sc,invisi-sc" {
		v, err := invisifence.VariantByName("invisi-rc")
		if err != nil {
			fail(err)
		}
		cfg := invisifence.DefaultConfig()
		cfg.Workload = "apache"
		cfg.Variant = v
		cfg.Scale = *scale
		cfg.Clusters = *clusters
		r, err := measure(cfg, *iters)
		if err != nil {
			fail(err)
		}
		file.Runs = append(file.Runs, r)
		fmt.Fprintf(os.Stderr, "%-12s %-12s %9d cycles  %12d ns/run  %10.0f cycles/s  %8d allocs\n",
			r.Workload, r.Variant, r.SimCycles, r.NsPerRun, r.CyclesPerSec, r.AllocsPerRun)
	}

	if !*noRef {
		for _, v := range []invisifence.Variant{
			invisifence.ConventionalVariant(invisifence.SC),
			invisifence.SelectiveVariant(invisifence.SC),
		} {
			cfg := invisifence.DefaultConfig()
			cfg.Workload = "apache"
			cfg.Variant = v
			cfg.Scale = *scale
			cfg.Clusters = *clusters
			opt, err := measure(cfg, *iters)
			if err != nil {
				fail(err)
			}
			serial := opt // -clusters 0: optimized IS the serial scheduler
			if *clusters >= 2 {
				cfg.Clusters = 0
				serial, err = measure(cfg, *iters)
				if err != nil {
					fail(err)
				}
			}
			cfg.DisableIdleSkip = true
			lock, err := measure(cfg, *iters)
			if err != nil {
				fail(err)
			}
			ref := reference{
				Workload:        "apache",
				Variant:         v.Name,
				Scale:           *scale,
				Clusters:        *clusters,
				OptimizedNs:     opt.NsPerRun,
				SerialNs:        serial.NsPerRun,
				LockstepNs:      lock.NsPerRun,
				SerialSpeedup:   float64(serial.NsPerRun) / float64(opt.NsPerRun),
				LockstepSpeedup: float64(lock.NsPerRun) / float64(opt.NsPerRun),
			}
			if *preNs > 0 && v.Name == "sc" {
				ref.PreRefactorNs = *preNs
				ref.PreRefactorSpeedup = float64(*preNs) / float64(opt.NsPerRun)
			}
			file.Reference = append(file.Reference, ref)
			fmt.Fprintf(os.Stderr, "reference apache/%s: parallel(%d) %d ns, serial %d ns (%.2fx), lock-step %d ns (%.2fx)",
				v.Name, *clusters, opt.NsPerRun, serial.NsPerRun, ref.SerialSpeedup, lock.NsPerRun, ref.LockstepSpeedup)
			if ref.PreRefactorNs > 0 {
				fmt.Fprintf(os.Stderr, ", pre-refactor %d ns (%.2fx)", ref.PreRefactorNs, ref.PreRefactorSpeedup)
			}
			fmt.Fprintln(os.Stderr)
		}
	}

	path := *out
	switch {
	case path == "":
		path = nextBenchPath(".")
	default:
		if st, err := os.Stat(path); err == nil && st.IsDir() {
			path = nextBenchPath(path)
		}
	}
	data, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
	fmt.Println(path)
}
