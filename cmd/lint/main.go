// Command lint runs the repo's custom analyzers (tracegate, determinism)
// over the given package patterns (default ./...) and exits nonzero on any
// finding. It is the CI entry point for the invariants the analyzers encode;
// see the package docs under internal/lint for what each one enforces.
package main

import (
	"flag"
	"fmt"
	"os"

	"invisifence/internal/lint/analysis"
	"invisifence/internal/lint/determinism"
	"invisifence/internal/lint/loader"
	"invisifence/internal/lint/tracegate"
)

var analyzers = []*analysis.Analyzer{tracegate.Analyzer, determinism.Analyzer}

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lint [packages]\n\nanalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil {
				fmt.Fprintf(os.Stderr, "lint: %s: %s: %v\n", a.Name, pkg.ImportPath, err)
				os.Exit(2)
			}
			for _, d := range pass.Diagnostics() {
				fmt.Println(d)
				findings++
			}
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
