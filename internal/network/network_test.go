package network

import (
	"testing"
	"testing/quick"

	"invisifence/internal/coherence"
	"invisifence/internal/memtypes"
	"invisifence/internal/stats"
)

// pl wraps a test tag in the wire format (the only payload the network
// carries since devirtualization); tag reads it back.
func pl(i int) coherence.Msg { return coherence.Msg{Addr: memtypes.Addr(i)} }

func payloadTag(m Message) int { return int(m.Payload.Addr) }

func mk(t *testing.T, cfg Config) *Network {
	t.Helper()
	return New(cfg)
}

func TestHopsTorus4x4(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},  // wraparound in x
		{0, 12, 1}, // wraparound in y
		{0, 5, 2},
		{0, 15, 2}, // diagonal wrap
		{0, 10, 4}, // farthest point on a 4x4 torus
		{5, 10, 2}, // (1,1)->(2,2)
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	f := func(a, b uint8) bool {
		x, y := NodeID(a%16), NodeID(b%16)
		return n.Hops(x, y) == n.Hops(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	f := func(a, b, c uint8) bool {
		x, y, z := NodeID(a%16), NodeID(b%16), NodeID(c%16)
		return n.Hops(x, z) <= n.Hops(x, y)+n.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryLatency(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10, LocalLatency: 1})
	n.Tick(100)
	n.Send(0, 5, pl(7)) // 2 hops = 20 cycles
	for now := uint64(101); now < 120; now++ {
		n.Tick(now)
		if _, ok := n.Recv(5); ok {
			t.Fatalf("delivered early at %d", now)
		}
	}
	n.Tick(120)
	m, ok := n.Recv(5)
	if !ok {
		t.Fatal("not delivered at latency")
	}
	if payloadTag(m) != 7 || m.Src != 0 {
		t.Fatalf("bad message %+v", m)
	}
}

func TestLocalDelivery(t *testing.T) {
	n := mk(t, Config{Width: 2, Height: 2, HopLatency: 10, LocalLatency: 1})
	n.Tick(10)
	n.Send(3, 3, pl(42))
	n.Tick(11)
	if _, ok := n.Recv(3); !ok {
		t.Fatal("local message not delivered after LocalLatency")
	}
}

func TestPerPairFIFO(t *testing.T) {
	// Even with jitter, two messages on the same (src,dst) pair must be
	// delivered in send order.
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 5, Jitter: 20, Seed: 99})
	n.Tick(1)
	for i := 0; i < 50; i++ {
		n.Send(1, 2, pl(i))
	}
	got := make([]int, 0, 50)
	for now := uint64(2); now < 500 && len(got) < 50; now++ {
		n.Tick(now)
		for {
			m, ok := n.Recv(2)
			if !ok {
				break
			}
			got = append(got, payloadTag(m))
		}
	}
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		n := mk(t, Config{Width: 4, Height: 4, HopLatency: 7, Jitter: 9, Seed: 4})
		n.Tick(1)
		for i := 0; i < 30; i++ {
			n.Send(NodeID(i%3), NodeID(12+i%4), pl(i))
		}
		var order []int
		for now := uint64(2); now < 300; now++ {
			n.Tick(now)
			for d := 0; d < n.Nodes(); d++ {
				for {
					m, ok := n.Recv(NodeID(d))
					if !ok {
						break
					}
					order = append(order, payloadTag(m))
				}
			}
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 30 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic delivery at %d", i)
		}
	}
}

func TestPendingCount(t *testing.T) {
	n := mk(t, Config{Width: 2, Height: 2, HopLatency: 10})
	n.Tick(1)
	if n.Pending() != 0 {
		t.Fatal("pending on empty network")
	}
	n.Send(0, 1, pl(1))
	if n.Pending() != 1 {
		t.Fatal("in-flight not pending")
	}
	n.Tick(11)
	if n.Pending() != 1 {
		t.Fatal("delivered-unconsumed not pending")
	}
	n.Recv(1)
	if n.Pending() != 0 {
		t.Fatal("consumed still pending")
	}
}

func TestCounters(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	n.Tick(1)
	n.Send(0, 5, pl(1)) // 2 hops
	n.Send(0, 1, pl(2)) // 1 hop
	if n.Sent != 2 || n.TotalHops != 3 {
		t.Fatalf("sent=%d hops=%d", n.Sent, n.TotalHops)
	}
}

// TestShardOrderingMatchesSerial drives the same send schedule through a
// whole-torus network and through a two-shard partition with barrier
// exchanges, and requires identical per-destination delivery sequences —
// the composite shard ordering key must reproduce the serial global-seq
// order exactly, including same-cycle ties from different sources and
// per-pair FIFO bumps.
func TestShardOrderingMatchesSerial(t *testing.T) {
	cfg := Config{Width: 2, Height: 2, HopLatency: 5, LocalLatency: 1}
	type send struct {
		at       uint64
		src, dst NodeID
		tag      int
	}
	// Sends chosen to create same-arrival ties at shared destinations from
	// sources in both shards, plus repeated same-pair sends (FIFO bumps).
	var schedule []send
	tag := 0
	for cyc := uint64(1); cyc <= 12; cyc++ {
		for src := NodeID(0); src < 4; src++ {
			for _, dst := range []NodeID{(src + 1) % 4, (src + 2) % 4, src} {
				schedule = append(schedule, send{cyc, src, dst, tag})
				tag++
			}
		}
	}
	serial := func() [][]int {
		n := New(cfg)
		got := make([][]int, 4)
		for now := uint64(1); now <= 40; now++ {
			n.Tick(now)
			for dst := NodeID(0); dst < 4; dst++ {
				for {
					m, ok := n.Recv(dst)
					if !ok {
						break
					}
					got[dst] = append(got[dst], payloadTag(m))
				}
			}
			for _, s := range schedule {
				if s.at == now {
					n.Send(s.src, s.dst, pl(s.tag))
				}
			}
		}
		return got
	}()

	sharded := func() [][]int {
		// Shard A owns {0,1}, shard B owns {2,3}; exchange every cycle
		// (valid: min cross-shard latency >= 1).
		shards := [2]*Network{
			NewShard(cfg, []bool{true, true, false, false}),
			NewShard(cfg, []bool{false, false, true, true}),
		}
		shardOf := func(id NodeID) int {
			if id < 2 {
				return 0
			}
			return 1
		}
		got := make([][]int, 4)
		for now := uint64(1); now <= 40; now++ {
			for _, sh := range shards {
				sh.Tick(now)
			}
			for dst := NodeID(0); dst < 4; dst++ {
				sh := shards[shardOf(dst)]
				for {
					m, ok := sh.Recv(dst)
					if !ok {
						break
					}
					got[dst] = append(got[dst], payloadTag(m))
				}
			}
			for _, s := range schedule {
				if s.at == now {
					shards[shardOf(s.src)].Send(s.src, s.dst, pl(s.tag))
				}
			}
			for _, sh := range shards {
				for _, m := range sh.DrainOutbox() {
					shards[shardOf(m.Dst)].Inject([]Message{m})
				}
			}
		}
		return got
	}()

	for dst := range serial {
		if len(serial[dst]) != len(sharded[dst]) {
			t.Fatalf("dst %d: serial delivered %d, sharded %d", dst, len(serial[dst]), len(sharded[dst]))
		}
		for i := range serial[dst] {
			if serial[dst][i] != sharded[dst][i] {
				t.Fatalf("dst %d: delivery %d differs: serial tag %d, sharded tag %d",
					dst, i, serial[dst][i], sharded[dst][i])
			}
		}
	}
}

// TestShardRejectsJitter pins the fallback contract: shards cannot
// reproduce the serial jitter RNG's global consumption order.
func TestShardRejectsJitter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShard accepted a jittered config")
		}
	}()
	NewShard(Config{Width: 2, Height: 2, HopLatency: 5, Jitter: 2}, []bool{true, true, false, false})
}

// ------------------------------------------------------- link contention

// contCfg is a 4x4 torus with the contention model on: 10 cycles/flit, so
// a control message occupies its injection link for 10 cycles and a
// data-bearing one for 50 (header + 4 block flits).
func contCfg() Config {
	return Config{Width: 4, Height: 4, HopLatency: 100, LocalLatency: 1, LinkBandwidth: 10}
}

func TestLinkContentionSerializes(t *testing.T) {
	n := mk(t, contCfg())
	n.Tick(1)
	// Two control messages on the same injection link (0 -> 1 is the +X
	// link of node 0): the first transmits [1,11) and arrives at 11+100;
	// the second queues 10 cycles, transmits [11,21), arrives at 121.
	n.Send(0, 1, pl(1))
	n.Send(0, 1, pl(2))
	n.Tick(110)
	if _, ok := n.Recv(1); ok {
		t.Fatal("message delivered before serialization + propagation completed")
	}
	n.Tick(111)
	if m, ok := n.Recv(1); !ok || payloadTag(m) != 1 {
		t.Fatalf("first message not delivered at 111 (ok=%v)", ok)
	}
	n.Tick(120)
	if _, ok := n.Recv(1); ok {
		t.Fatal("queued message delivered before its link wait elapsed")
	}
	n.Tick(121)
	if m, ok := n.Recv(1); !ok || payloadTag(m) != 2 {
		t.Fatalf("queued message not delivered at 121 (ok=%v)", ok)
	}
	c := n.Contention
	if c.Messages != 2 || c.QueuedMessages != 1 || c.QueueDelayCycles != 10 {
		t.Errorf("counters = %+v, want 2 messages, 1 queued, 10 delay cycles", c)
	}
	if c.LinkBusyCycles != 20 || c.MaxQueueDepth != 2 {
		t.Errorf("counters = %+v, want 20 busy cycles, max depth 2", c)
	}
}

func TestLinkContentionDataFlits(t *testing.T) {
	n := mk(t, contCfg())
	n.Tick(1)
	m := pl(1)
	m.HasData = true
	n.Send(0, 1, m) // 5 flits x 10 cycles: transmits [1,51), arrives 151
	n.Tick(150)
	if _, ok := n.Recv(1); ok {
		t.Fatal("data message delivered before its serialization elapsed")
	}
	n.Tick(151)
	if _, ok := n.Recv(1); !ok {
		t.Fatal("data message not delivered at 151")
	}
	if got := n.Contention.LinkBusyCycles; got != 50 {
		t.Errorf("LinkBusyCycles = %d, want 50 (5 flits x 10 cycles)", got)
	}
}

func TestLinkContentionDistinctLinksIndependent(t *testing.T) {
	n := mk(t, contCfg())
	n.Tick(1)
	// 0->1 leaves on +X, 0->4 on +Y: different links, no queuing.
	n.Send(0, 1, pl(1))
	n.Send(0, 4, pl(2))
	n.Tick(111)
	if _, ok := n.Recv(1); !ok {
		t.Fatal("+X message not delivered uncontended")
	}
	if _, ok := n.Recv(4); !ok {
		t.Fatal("+Y message not delivered uncontended")
	}
	if q := n.Contention.QueuedMessages; q != 0 {
		t.Errorf("QueuedMessages = %d, want 0 (distinct links)", q)
	}
}

func TestLinkContentionLocalBypass(t *testing.T) {
	n := mk(t, contCfg())
	n.Tick(1)
	n.Send(0, 0, pl(1))
	n.Tick(2)
	if _, ok := n.Recv(0); !ok {
		t.Fatal("self-send not delivered at LocalLatency")
	}
	if n.Contention.Messages != 0 || n.Contention.LinkBusyCycles != 0 {
		t.Errorf("self-send touched the links: %+v", n.Contention)
	}
}

// TestLinkBandwidthZeroUnchanged pins the bit-exactness guarantee: with
// LinkBandwidth 0 the contention path is never entered and delivery times
// equal the latency-only model's.
func TestLinkBandwidthZeroUnchanged(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 100, LocalLatency: 1})
	n.Tick(1)
	n.Send(0, 1, pl(1))
	n.Send(0, 1, pl(2))
	n.Tick(101)
	if m, ok := n.Recv(1); !ok || payloadTag(m) != 1 {
		t.Fatal("latency-only delivery at hop latency broken")
	}
	// Same-pair FIFO bump: second message one cycle later, as ever.
	n.Tick(102)
	if m, ok := n.Recv(1); !ok || payloadTag(m) != 2 {
		t.Fatal("latency-only FIFO bump broken")
	}
	if n.Contention != (stats.NetStats{}) {
		t.Errorf("latency-only run accumulated contention telemetry: %+v", n.Contention)
	}
	if ev := n.LinkNextEvent(); ev != memtypes.NoEvent {
		t.Errorf("LinkNextEvent = %d with contention off, want NoEvent", ev)
	}
}

func TestLinkNextEvent(t *testing.T) {
	n := mk(t, contCfg())
	n.Tick(1)
	if ev := n.LinkNextEvent(); ev != memtypes.NoEvent {
		t.Fatalf("idle links report next event %d, want NoEvent", ev)
	}
	n.Send(0, 1, pl(1))
	n.Send(0, 1, pl(2))
	// The link's reservation backlog runs through cycle 21 (two back-to-
	// back 10-cycle transmissions); it frees at 21, before either arrival.
	if ev := n.LinkNextEvent(); ev != 21 {
		t.Errorf("LinkNextEvent = %d, want 21", ev)
	}
	if ev := n.NextEvent(); ev != 21 {
		t.Errorf("NextEvent = %d, want 21 (link release precedes arrivals)", ev)
	}
	n.Tick(21)
	if ev := n.LinkNextEvent(); ev != memtypes.NoEvent {
		t.Errorf("LinkNextEvent = %d after release, want NoEvent", ev)
	}
	if ev := n.NextEvent(); ev != 111 {
		t.Errorf("NextEvent = %d after release, want first arrival 111", ev)
	}
}

func TestLinkQueueDepth(t *testing.T) {
	n := mk(t, contCfg())
	n.Tick(1)
	for i := 0; i < 4; i++ {
		n.Send(0, 1, pl(i))
	}
	if d := n.Contention.MaxQueueDepth; d != 4 {
		t.Errorf("MaxQueueDepth = %d, want 4", d)
	}
	// After the backlog fully drains, a fresh send sees depth 1 again (the
	// expired windows are dropped), so the max is a true high-water mark.
	n.Tick(60)
	n.Send(0, 1, pl(9))
	if d := n.Contention.MaxQueueDepth; d != 4 {
		t.Errorf("MaxQueueDepth = %d after drain+send, want 4 (high-water)", d)
	}
}

// TestShardContentionMatchesSerial mirrors TestShardOrderingMatchesSerial
// with the contention model on: per-source link state lives with the
// sender's shard, so delivery schedules and the merged contention counters
// must equal the serial network's exactly.
func TestShardContentionMatchesSerial(t *testing.T) {
	cfg := Config{Width: 2, Height: 2, HopLatency: 5, LocalLatency: 1, LinkBandwidth: 3}
	type send struct {
		at       uint64
		src, dst NodeID
		tag      int
	}
	var schedule []send
	tag := 0
	for cyc := uint64(1); cyc <= 12; cyc++ {
		for src := NodeID(0); src < 4; src++ {
			for _, dst := range []NodeID{(src + 1) % 4, (src + 2) % 4, src} {
				schedule = append(schedule, send{cyc, src, dst, tag})
				tag++
			}
		}
	}
	const horizon = 400 // generous: backlogged links push arrivals far out
	serialNet := New(cfg)
	serial := make([][]int, 4)
	for now := uint64(1); now <= horizon; now++ {
		serialNet.Tick(now)
		for dst := NodeID(0); dst < 4; dst++ {
			for {
				m, ok := serialNet.Recv(dst)
				if !ok {
					break
				}
				serial[dst] = append(serial[dst], payloadTag(m))
			}
		}
		for _, s := range schedule {
			if s.at == now {
				serialNet.Send(s.src, s.dst, pl(s.tag))
			}
		}
	}

	shards := [2]*Network{
		NewShard(cfg, []bool{true, true, false, false}),
		NewShard(cfg, []bool{false, false, true, true}),
	}
	shardOf := func(id NodeID) int {
		if id < 2 {
			return 0
		}
		return 1
	}
	sharded := make([][]int, 4)
	for now := uint64(1); now <= horizon; now++ {
		for _, sh := range shards {
			sh.Tick(now)
		}
		for dst := NodeID(0); dst < 4; dst++ {
			sh := shards[shardOf(dst)]
			for {
				m, ok := sh.Recv(dst)
				if !ok {
					break
				}
				sharded[dst] = append(sharded[dst], payloadTag(m))
			}
		}
		for _, s := range schedule {
			if s.at == now {
				shards[shardOf(s.src)].Send(s.src, s.dst, pl(s.tag))
			}
		}
		for _, sh := range shards {
			for _, m := range sh.DrainOutbox() {
				shards[shardOf(m.Dst)].Inject([]Message{m})
			}
		}
	}

	for dst := range serial {
		if len(serial[dst]) != len(sharded[dst]) {
			t.Fatalf("dst %d: serial delivered %d, sharded %d", dst, len(serial[dst]), len(sharded[dst]))
		}
		for i := range serial[dst] {
			if serial[dst][i] != sharded[dst][i] {
				t.Fatalf("dst %d: delivery %d differs: serial tag %d, sharded tag %d",
					dst, i, serial[dst][i], sharded[dst][i])
			}
		}
	}
	var merged stats.NetStats
	for _, sh := range shards {
		merged.Merge(&sh.Contention)
	}
	if merged != serialNet.Contention {
		t.Errorf("merged shard contention %+v != serial %+v", merged, serialNet.Contention)
	}
	if serialNet.Contention.QueuedMessages == 0 {
		t.Error("schedule produced no queuing; the test exercises nothing")
	}
}
