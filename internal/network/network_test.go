package network

import (
	"testing"
	"testing/quick"

	"invisifence/internal/coherence"
	"invisifence/internal/memtypes"
)

// pl wraps a test tag in the wire format (the only payload the network
// carries since devirtualization); tag reads it back.
func pl(i int) coherence.Msg { return coherence.Msg{Addr: memtypes.Addr(i)} }

func payloadTag(m Message) int { return int(m.Payload.Addr) }

func mk(t *testing.T, cfg Config) *Network {
	t.Helper()
	return New(cfg)
}

func TestHopsTorus4x4(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},  // wraparound in x
		{0, 12, 1}, // wraparound in y
		{0, 5, 2},
		{0, 15, 2}, // diagonal wrap
		{0, 10, 4}, // farthest point on a 4x4 torus
		{5, 10, 2}, // (1,1)->(2,2)
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	f := func(a, b uint8) bool {
		x, y := NodeID(a%16), NodeID(b%16)
		return n.Hops(x, y) == n.Hops(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	f := func(a, b, c uint8) bool {
		x, y, z := NodeID(a%16), NodeID(b%16), NodeID(c%16)
		return n.Hops(x, z) <= n.Hops(x, y)+n.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryLatency(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10, LocalLatency: 1})
	n.Tick(100)
	n.Send(0, 5, pl(7)) // 2 hops = 20 cycles
	for now := uint64(101); now < 120; now++ {
		n.Tick(now)
		if _, ok := n.Recv(5); ok {
			t.Fatalf("delivered early at %d", now)
		}
	}
	n.Tick(120)
	m, ok := n.Recv(5)
	if !ok {
		t.Fatal("not delivered at latency")
	}
	if payloadTag(m) != 7 || m.Src != 0 {
		t.Fatalf("bad message %+v", m)
	}
}

func TestLocalDelivery(t *testing.T) {
	n := mk(t, Config{Width: 2, Height: 2, HopLatency: 10, LocalLatency: 1})
	n.Tick(10)
	n.Send(3, 3, pl(42))
	n.Tick(11)
	if _, ok := n.Recv(3); !ok {
		t.Fatal("local message not delivered after LocalLatency")
	}
}

func TestPerPairFIFO(t *testing.T) {
	// Even with jitter, two messages on the same (src,dst) pair must be
	// delivered in send order.
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 5, Jitter: 20, Seed: 99})
	n.Tick(1)
	for i := 0; i < 50; i++ {
		n.Send(1, 2, pl(i))
	}
	got := make([]int, 0, 50)
	for now := uint64(2); now < 500 && len(got) < 50; now++ {
		n.Tick(now)
		for {
			m, ok := n.Recv(2)
			if !ok {
				break
			}
			got = append(got, payloadTag(m))
		}
	}
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		n := mk(t, Config{Width: 4, Height: 4, HopLatency: 7, Jitter: 9, Seed: 4})
		n.Tick(1)
		for i := 0; i < 30; i++ {
			n.Send(NodeID(i%3), NodeID(12+i%4), pl(i))
		}
		var order []int
		for now := uint64(2); now < 300; now++ {
			n.Tick(now)
			for d := 0; d < n.Nodes(); d++ {
				for {
					m, ok := n.Recv(NodeID(d))
					if !ok {
						break
					}
					order = append(order, payloadTag(m))
				}
			}
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 30 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic delivery at %d", i)
		}
	}
}

func TestPendingCount(t *testing.T) {
	n := mk(t, Config{Width: 2, Height: 2, HopLatency: 10})
	n.Tick(1)
	if n.Pending() != 0 {
		t.Fatal("pending on empty network")
	}
	n.Send(0, 1, pl(1))
	if n.Pending() != 1 {
		t.Fatal("in-flight not pending")
	}
	n.Tick(11)
	if n.Pending() != 1 {
		t.Fatal("delivered-unconsumed not pending")
	}
	n.Recv(1)
	if n.Pending() != 0 {
		t.Fatal("consumed still pending")
	}
}

func TestCounters(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	n.Tick(1)
	n.Send(0, 5, pl(1)) // 2 hops
	n.Send(0, 1, pl(2)) // 1 hop
	if n.Sent != 2 || n.TotalHops != 3 {
		t.Fatalf("sent=%d hops=%d", n.Sent, n.TotalHops)
	}
}

// TestShardOrderingMatchesSerial drives the same send schedule through a
// whole-torus network and through a two-shard partition with barrier
// exchanges, and requires identical per-destination delivery sequences —
// the composite shard ordering key must reproduce the serial global-seq
// order exactly, including same-cycle ties from different sources and
// per-pair FIFO bumps.
func TestShardOrderingMatchesSerial(t *testing.T) {
	cfg := Config{Width: 2, Height: 2, HopLatency: 5, LocalLatency: 1}
	type send struct {
		at       uint64
		src, dst NodeID
		tag      int
	}
	// Sends chosen to create same-arrival ties at shared destinations from
	// sources in both shards, plus repeated same-pair sends (FIFO bumps).
	var schedule []send
	tag := 0
	for cyc := uint64(1); cyc <= 12; cyc++ {
		for src := NodeID(0); src < 4; src++ {
			for _, dst := range []NodeID{(src + 1) % 4, (src + 2) % 4, src} {
				schedule = append(schedule, send{cyc, src, dst, tag})
				tag++
			}
		}
	}
	serial := func() [][]int {
		n := New(cfg)
		got := make([][]int, 4)
		for now := uint64(1); now <= 40; now++ {
			n.Tick(now)
			for dst := NodeID(0); dst < 4; dst++ {
				for {
					m, ok := n.Recv(dst)
					if !ok {
						break
					}
					got[dst] = append(got[dst], payloadTag(m))
				}
			}
			for _, s := range schedule {
				if s.at == now {
					n.Send(s.src, s.dst, pl(s.tag))
				}
			}
		}
		return got
	}()

	sharded := func() [][]int {
		// Shard A owns {0,1}, shard B owns {2,3}; exchange every cycle
		// (valid: min cross-shard latency >= 1).
		shards := [2]*Network{
			NewShard(cfg, []bool{true, true, false, false}),
			NewShard(cfg, []bool{false, false, true, true}),
		}
		shardOf := func(id NodeID) int {
			if id < 2 {
				return 0
			}
			return 1
		}
		got := make([][]int, 4)
		for now := uint64(1); now <= 40; now++ {
			for _, sh := range shards {
				sh.Tick(now)
			}
			for dst := NodeID(0); dst < 4; dst++ {
				sh := shards[shardOf(dst)]
				for {
					m, ok := sh.Recv(dst)
					if !ok {
						break
					}
					got[dst] = append(got[dst], payloadTag(m))
				}
			}
			for _, s := range schedule {
				if s.at == now {
					shards[shardOf(s.src)].Send(s.src, s.dst, pl(s.tag))
				}
			}
			for _, sh := range shards {
				for _, m := range sh.DrainOutbox() {
					shards[shardOf(m.Dst)].Inject([]Message{m})
				}
			}
		}
		return got
	}()

	for dst := range serial {
		if len(serial[dst]) != len(sharded[dst]) {
			t.Fatalf("dst %d: serial delivered %d, sharded %d", dst, len(serial[dst]), len(sharded[dst]))
		}
		for i := range serial[dst] {
			if serial[dst][i] != sharded[dst][i] {
				t.Fatalf("dst %d: delivery %d differs: serial tag %d, sharded tag %d",
					dst, i, serial[dst][i], sharded[dst][i])
			}
		}
	}
}

// TestShardRejectsJitter pins the fallback contract: shards cannot
// reproduce the serial jitter RNG's global consumption order.
func TestShardRejectsJitter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewShard accepted a jittered config")
		}
	}()
	NewShard(Config{Width: 2, Height: 2, HopLatency: 5, Jitter: 2}, []bool{true, true, false, false})
}
