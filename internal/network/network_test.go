package network

import (
	"testing"
	"testing/quick"
)

func mk(t *testing.T, cfg Config) *Network {
	t.Helper()
	return New(cfg)
}

func TestHopsTorus4x4(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	cases := []struct {
		a, b NodeID
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},  // wraparound in x
		{0, 12, 1}, // wraparound in y
		{0, 5, 2},
		{0, 15, 2}, // diagonal wrap
		{0, 10, 4}, // farthest point on a 4x4 torus
		{5, 10, 2}, // (1,1)->(2,2)
	}
	for _, c := range cases {
		if got := n.Hops(c.a, c.b); got != c.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	f := func(a, b uint8) bool {
		x, y := NodeID(a%16), NodeID(b%16)
		return n.Hops(x, y) == n.Hops(y, x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	f := func(a, b, c uint8) bool {
		x, y, z := NodeID(a%16), NodeID(b%16), NodeID(c%16)
		return n.Hops(x, z) <= n.Hops(x, y)+n.Hops(y, z)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeliveryLatency(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10, LocalLatency: 1})
	n.Tick(100)
	n.Send(0, 5, "x") // 2 hops = 20 cycles
	for now := uint64(101); now < 120; now++ {
		n.Tick(now)
		if _, ok := n.Recv(5); ok {
			t.Fatalf("delivered early at %d", now)
		}
	}
	n.Tick(120)
	m, ok := n.Recv(5)
	if !ok {
		t.Fatal("not delivered at latency")
	}
	if m.Payload.(string) != "x" || m.Src != 0 {
		t.Fatalf("bad message %+v", m)
	}
}

func TestLocalDelivery(t *testing.T) {
	n := mk(t, Config{Width: 2, Height: 2, HopLatency: 10, LocalLatency: 1})
	n.Tick(10)
	n.Send(3, 3, 42)
	n.Tick(11)
	if _, ok := n.Recv(3); !ok {
		t.Fatal("local message not delivered after LocalLatency")
	}
}

func TestPerPairFIFO(t *testing.T) {
	// Even with jitter, two messages on the same (src,dst) pair must be
	// delivered in send order.
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 5, Jitter: 20, Seed: 99})
	n.Tick(1)
	for i := 0; i < 50; i++ {
		n.Send(1, 2, i)
	}
	got := make([]int, 0, 50)
	for now := uint64(2); now < 500 && len(got) < 50; now++ {
		n.Tick(now)
		for {
			m, ok := n.Recv(2)
			if !ok {
				break
			}
			got = append(got, m.Payload.(int))
		}
	}
	if len(got) != 50 {
		t.Fatalf("delivered %d of 50", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		n := mk(t, Config{Width: 4, Height: 4, HopLatency: 7, Jitter: 9, Seed: 4})
		n.Tick(1)
		for i := 0; i < 30; i++ {
			n.Send(NodeID(i%3), NodeID(12+i%4), i)
		}
		var order []int
		for now := uint64(2); now < 300; now++ {
			n.Tick(now)
			for d := 0; d < n.Nodes(); d++ {
				for {
					m, ok := n.Recv(NodeID(d))
					if !ok {
						break
					}
					order = append(order, m.Payload.(int))
				}
			}
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) || len(a) != 30 {
		t.Fatalf("lengths %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic delivery at %d", i)
		}
	}
}

func TestPendingCount(t *testing.T) {
	n := mk(t, Config{Width: 2, Height: 2, HopLatency: 10})
	n.Tick(1)
	if n.Pending() != 0 {
		t.Fatal("pending on empty network")
	}
	n.Send(0, 1, "a")
	if n.Pending() != 1 {
		t.Fatal("in-flight not pending")
	}
	n.Tick(11)
	if n.Pending() != 1 {
		t.Fatal("delivered-unconsumed not pending")
	}
	n.Recv(1)
	if n.Pending() != 0 {
		t.Fatal("consumed still pending")
	}
}

func TestCounters(t *testing.T) {
	n := mk(t, Config{Width: 4, Height: 4, HopLatency: 10})
	n.Tick(1)
	n.Send(0, 5, "a") // 2 hops
	n.Send(0, 1, "b") // 1 hop
	if n.Sent != 2 || n.TotalHops != 3 {
		t.Fatalf("sent=%d hops=%d", n.Sent, n.TotalHops)
	}
}
