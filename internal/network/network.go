// Package network models the 4x4 2D torus interconnect from Figure 6 of the
// paper. It provides point-to-point message delivery with per-hop latency,
// FIFO ordering between each (source, destination) pair, and an optional
// seeded jitter used by the litmus-test harness to explore interleavings.
//
// The model captures latency and ordering, not link contention: Figure 6's
// 128 GB/s bisection bandwidth is far from saturated by 16 cores at the miss
// rates these workloads exhibit (see DESIGN.md §5).
//
// The implementation is allocation-free on the steady-state path: messages
// are values (no per-send boxing), the in-flight set is a hand-rolled binary
// heap of values, and per-destination inboxes are reusable ring buffers.
package network

import (
	"fmt"
	"math/rand"

	"invisifence/internal/memtypes"
)

// NodeID identifies a node (core + caches + directory slice) in the system.
type NodeID int

// Message is an in-flight interconnect message. Payload is opaque to the
// network; the coherence protocol defines the concrete types.
type Message struct {
	Src, Dst NodeID
	Payload  any

	arrive uint64 // delivery cycle
	seq    uint64 // tie-break for deterministic ordering
}

// Config describes the torus geometry and timing.
type Config struct {
	Width, Height int    // torus dimensions; Width*Height == number of nodes
	HopLatency    uint64 // cycles per hop (Figure 6: 25 ns at 4 GHz = 100)
	LocalLatency  uint64 // latency for a node messaging itself (its own home slice)
	Jitter        uint64 // max extra random cycles per message (0 = deterministic)
	Seed          int64  // jitter RNG seed
}

// DefaultConfig returns the Figure 6 interconnect: a 4x4 torus with
// 25 ns (100-cycle) hop latency.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, HopLatency: 100, LocalLatency: 1}
}

// inbox is one destination's delivered-message FIFO: a ring that reuses its
// backing storage instead of shifting on every Recv.
type inbox struct {
	q    []Message
	head int
}

func (b *inbox) len() int { return len(b.q) - b.head }

func (b *inbox) push(m Message) { b.q = append(b.q, m) }

func (b *inbox) pop() (Message, bool) {
	if b.head >= len(b.q) {
		return Message{}, false
	}
	m := b.q[b.head]
	b.q[b.head] = Message{} // release the payload reference
	b.head++
	switch {
	case b.head == len(b.q):
		b.q = b.q[:0]
		b.head = 0
	case b.head >= 64 && b.head*2 >= len(b.q):
		// Compact once the dead prefix dominates, so the backing array is
		// bounded by the backlog (amortized O(1): each element moves at
		// most once per 64 pops).
		n := copy(b.q, b.q[b.head:])
		clear(b.q[n:])
		b.q = b.q[:n]
		b.head = 0
	}
	return m, true
}

// Network is the torus. It is not safe for concurrent use; the simulator is
// single-threaded and deterministic.
type Network struct {
	cfg     Config
	now     uint64
	nextSeq uint64
	flight  msgHeap
	inboxes []inbox
	rng     *rand.Rand

	// lastArrive enforces FIFO ordering per (src,dst) pair: a later send may
	// not arrive before an earlier one even under jitter. Indexed
	// src*nodes+dst (the pair space is small and dense).
	lastArrive []uint64

	// Counters for bandwidth accounting and tests.
	Sent      uint64
	Delivered uint64
	TotalHops uint64
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("network: bad dimensions %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 1
	}
	if cfg.LocalLatency == 0 {
		cfg.LocalLatency = 1
	}
	nodes := cfg.Width * cfg.Height
	n := &Network{
		cfg:        cfg,
		inboxes:    make([]inbox, nodes),
		lastArrive: make([]uint64, nodes*nodes),
	}
	if cfg.Jitter > 0 {
		n.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return n
}

// Nodes returns the number of nodes in the torus.
func (n *Network) Nodes() int { return n.cfg.Width * n.cfg.Height }

// Hops returns the dimension-order routed hop count between two nodes on the
// torus (minimum of the two directions in each dimension).
func (n *Network) Hops(a, b NodeID) int {
	ax, ay := int(a)%n.cfg.Width, int(a)/n.cfg.Width
	bx, by := int(b)%n.cfg.Width, int(b)/n.cfg.Width
	dx := absDiff(ax, bx)
	if w := n.cfg.Width - dx; w < dx {
		dx = w
	}
	dy := absDiff(ay, by)
	if h := n.cfg.Height - dy; h < dy {
		dy = h
	}
	return dx + dy
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Latency returns the base delivery latency from a to b, before jitter.
func (n *Network) Latency(a, b NodeID) uint64 {
	h := n.Hops(a, b)
	if h == 0 {
		return n.cfg.LocalLatency
	}
	return uint64(h) * n.cfg.HopLatency
}

// Send enqueues a message for delivery. It may be called at any point within
// a cycle; delivery happens at a strictly later cycle.
func (n *Network) Send(src, dst NodeID, payload any) {
	if int(dst) < 0 || int(dst) >= n.Nodes() {
		panic(fmt.Sprintf("network: send to invalid node %d", dst))
	}
	lat := n.Latency(src, dst)
	if n.rng != nil && n.cfg.Jitter > 0 {
		lat += uint64(n.rng.Int63n(int64(n.cfg.Jitter) + 1))
	}
	arrive := n.now + lat
	if arrive <= n.now {
		arrive = n.now + 1
	}
	p := int(src)*n.Nodes() + int(dst)
	if last := n.lastArrive[p]; arrive <= last {
		arrive = last + 1 // preserve per-pair FIFO ordering
	}
	n.lastArrive[p] = arrive
	n.flight.push(Message{Src: src, Dst: dst, Payload: payload, arrive: arrive, seq: n.nextSeq})
	n.nextSeq++
	n.Sent++
	n.TotalHops += uint64(n.Hops(src, dst))
}

// Tick advances the network to the given cycle, moving every message whose
// delivery time has been reached into its destination inbox.
func (n *Network) Tick(now uint64) {
	n.now = now
	for len(n.flight) > 0 && n.flight[0].arrive <= now {
		m := n.flight.pop()
		n.inboxes[m.Dst].push(m)
		n.Delivered++
	}
}

// Recv pops the oldest delivered message for dst, if any. Node controllers
// call this repeatedly, bounded by their own per-cycle service rate.
func (n *Network) Recv(dst NodeID) (Message, bool) {
	return n.inboxes[dst].pop()
}

// InboxLen reports delivered-but-unconsumed messages queued for dst; the
// idle-skip scheduler treats a non-empty inbox as immediate work.
func (n *Network) InboxLen(dst NodeID) int { return n.inboxes[dst].len() }

// NextEvent returns the earliest delivery cycle of any in-flight message,
// or memtypes.NoEvent when nothing is in flight. Delivered-but-unconsumed
// messages are per-destination state reported via InboxLen.
func (n *Network) NextEvent() uint64 {
	if len(n.flight) == 0 {
		return memtypes.NoEvent
	}
	return n.flight[0].arrive
}

// Pending reports the number of undelivered plus delivered-but-unconsumed
// messages; the simulator uses it for quiescence detection.
func (n *Network) Pending() int {
	total := len(n.flight)
	for i := range n.inboxes {
		total += n.inboxes[i].len()
	}
	return total
}

// msgHeap is a hand-rolled min-heap of message values ordered by
// (arrive, seq); avoiding container/heap keeps pushes boxing-free.
type msgHeap []Message

func (h msgHeap) less(i, j int) bool {
	if h[i].arrive != h[j].arrive {
		return h[i].arrive < h[j].arrive
	}
	return h[i].seq < h[j].seq
}

func (h *msgHeap) push(m Message) {
	*h = append(*h, m)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *msgHeap) pop() Message {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q[last] = Message{} // release the payload reference
	q = q[:last]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q) && q.less(l, smallest) {
			smallest = l
		}
		if r < len(q) && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}
