// Package network models the 4x4 2D torus interconnect from Figure 6 of the
// paper. It provides point-to-point message delivery with per-hop latency,
// FIFO ordering between each (source, destination) pair, and an optional
// seeded jitter used by the litmus-test harness to explore interleavings.
//
// The model captures latency and ordering, not link contention: Figure 6's
// 128 GB/s bisection bandwidth is far from saturated by 16 cores at the miss
// rates these workloads exhibit (see DESIGN.md §5).
//
// The implementation is allocation-free on the steady-state path: messages
// are values (no per-send boxing), the in-flight set is a hand-rolled binary
// heap of values, and per-destination inboxes are reusable ring buffers.
package network

import (
	"fmt"
	"math/rand"

	"invisifence/internal/coherence"
	"invisifence/internal/memtypes"
)

// NodeID identifies a node (core + caches + directory slice) in the system.
// The defined type lives in memtypes (below the wire format); this alias
// keeps the network's established vocabulary.
type NodeID = memtypes.NodeID

// Message is an in-flight interconnect message. The payload is the coherence
// protocol's wire format, embedded by value: the network carries exactly one
// message type, so there is nothing to box — sending allocates nothing, and
// the heap/inbox/outbox structures hold messages inline (DESIGN.md §9).
type Message struct {
	Src, Dst NodeID
	Payload  coherence.Msg

	arrive uint64 // delivery cycle
	seq    uint64 // tie-break for deterministic ordering (see ordering note)
	sent   uint64 // send cycle (shard mode ordering component)
}

// Ordering note. The serial network breaks same-cycle delivery ties with a
// single global send counter (seq), so messages delivered in the same cycle
// to the same inbox pop in global send order. In shard mode no global
// counter exists — sends happen concurrently on different shards — so seq is
// a per-source counter instead and the heap orders by the composite key
// (arrive, sent, src, seq). The two orders are identical: the serial
// simulator ticks nodes in ascending NodeID order within a cycle, and every
// send happens inside some node's tick, so global send order is exactly
// lexicographic (send cycle, source NodeID, per-source send index). The
// parallel-vs-serial bit-exactness tests (TestParallelBitExact) enforce
// this equivalence.

// Config describes the torus geometry and timing.
type Config struct {
	Width, Height int    // torus dimensions; Width*Height == number of nodes
	HopLatency    uint64 // cycles per hop (Figure 6: 25 ns at 4 GHz = 100)
	LocalLatency  uint64 // latency for a node messaging itself (its own home slice)
	Jitter        uint64 // max extra random cycles per message (0 = deterministic)
	Seed          int64  // jitter RNG seed
}

// DefaultConfig returns the Figure 6 interconnect: a 4x4 torus with
// 25 ns (100-cycle) hop latency.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, HopLatency: 100, LocalLatency: 1}
}

// inbox is one destination's delivered-message FIFO: a ring that reuses its
// backing storage instead of shifting on every Recv.
type inbox struct {
	q    []Message
	head int
}

func (b *inbox) len() int { return len(b.q) - b.head }

func (b *inbox) push(m Message) { b.q = append(b.q, m) }

func (b *inbox) pop() (Message, bool) {
	if b.head >= len(b.q) {
		return Message{}, false
	}
	m := b.q[b.head]
	// Popped slots are left as-is: Message is pointer-free since the payload
	// became an inline value, so there is nothing for the GC to release.
	b.head++
	switch {
	case b.head == len(b.q):
		b.q = b.q[:0]
		b.head = 0
	case b.head >= 64 && b.head*2 >= len(b.q):
		// Compact once the dead prefix dominates, so the backing array is
		// bounded by the backlog (amortized O(1): each element moves at
		// most once per 64 pops).
		n := copy(b.q, b.q[b.head:])
		b.q = b.q[:n]
		b.head = 0
	}
	return m, true
}

// Network is the torus — or, in shard mode, one cluster's partition of it.
//
// A plain Network (New) owns every node and is not safe for concurrent use;
// the serial simulator is single-threaded and deterministic.
//
// A shard (NewShard) owns a subset of the nodes: it carries the in-flight
// heap and inboxes for messages destined to its own nodes, and the per-pair
// FIFO state for messages sent by its own nodes. Sends to foreign nodes are
// timestamped locally (arrival cycle, FIFO bump, per-source sequence) and
// parked in an outbox; the parallel scheduler moves them into the owning
// shard with Inject at an epoch barrier, before any cycle at which they
// could arrive (see internal/sim's parallel runner and DESIGN.md §7).
// Distinct shards never share mutable state, so each may be driven by its
// own goroutine between barriers.
type Network struct {
	cfg     Config
	now     uint64
	nextSeq uint64
	flight  msgHeap
	inboxes []inbox
	rng     *rand.Rand

	// Shard mode. owned is nil for a whole-torus network; otherwise
	// owned[id] reports whether this shard simulates node id. srcSeq
	// replaces the global nextSeq with per-source counters (see the
	// ordering note on Message), and sharded selects the composite heap
	// key.
	sharded   bool
	owned     []bool
	srcSeq    []uint64
	outbox    []Message
	outboxAlt []Message // DrainOutbox's swap buffer (allocation-free epochs)

	// lastArrive enforces FIFO ordering per (src,dst) pair: a later send may
	// not arrive before an earlier one even under jitter. Indexed
	// src*nodes+dst (the pair space is small and dense). In shard mode only
	// rows with an owned src are touched: a pair's FIFO state lives with the
	// sender's shard, and every node is owned by exactly one shard.
	lastArrive []uint64

	// Counters for bandwidth accounting and tests. In shard mode Sent and
	// TotalHops count sends by this shard's nodes and Delivered counts
	// deliveries into this shard's inboxes; summing over shards matches the
	// serial counters exactly.
	Sent      uint64
	Delivered uint64
	TotalHops uint64
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("network: bad dimensions %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 1
	}
	if cfg.LocalLatency == 0 {
		cfg.LocalLatency = 1
	}
	nodes := cfg.Width * cfg.Height
	n := &Network{
		cfg:        cfg,
		inboxes:    make([]inbox, nodes),
		lastArrive: make([]uint64, nodes*nodes),
	}
	if cfg.Jitter > 0 {
		n.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return n
}

// NewShard creates one cluster's partition of the torus: a Network that
// simulates only the nodes with owned[id] == true. Jitter is rejected — its
// RNG is consumed in global send order, which shards cannot reproduce; the
// parallel scheduler falls back to the serial loop for jittered runs.
func NewShard(cfg Config, owned []bool) *Network {
	if cfg.Jitter > 0 {
		panic("network: shards do not support jitter (global RNG order)")
	}
	n := New(cfg)
	if len(owned) != n.Nodes() {
		panic(fmt.Sprintf("network: owned set covers %d of %d nodes", len(owned), n.Nodes()))
	}
	n.sharded = true
	n.owned = append([]bool(nil), owned...)
	n.srcSeq = make([]uint64, n.Nodes())
	return n
}

// Owns reports whether this network simulates node id (always true for a
// whole-torus network).
func (n *Network) Owns(id NodeID) bool { return n.owned == nil || n.owned[id] }

// DrainOutbox returns and clears the cross-shard sends accumulated since the
// last drain. Only the parallel scheduler calls this, at an epoch barrier,
// with every shard goroutine parked. The returned slice is valid until the
// drain after next: the outbox and a spare swap backing arrays, so steady-
// state barrier exchange allocates nothing. The scheduler finishes injecting
// every drained message before any shard resumes sending, which is exactly
// the reuse window.
func (n *Network) DrainOutbox() []Message {
	out := n.outbox
	n.outbox = n.outboxAlt[:0]
	n.outboxAlt = out
	return out
}

// Inject accepts cross-shard messages (drained from peer shards' outboxes)
// whose destinations this shard owns. Arrival cycles and ordering keys were
// fixed by the sender's shard; insertion order is irrelevant because the
// composite heap key is a total order. Only the parallel scheduler calls
// this, at an epoch barrier.
func (n *Network) Inject(ms []Message) {
	for _, m := range ms {
		if !n.Owns(m.Dst) {
			panic(fmt.Sprintf("network: injected message for foreign node %d", m.Dst))
		}
		n.flight.push(m, n.sharded)
	}
}

// Nodes returns the number of nodes in the torus.
func (n *Network) Nodes() int { return n.cfg.Width * n.cfg.Height }

// Hops returns the dimension-order routed hop count between two nodes on the
// torus (minimum of the two directions in each dimension).
func (n *Network) Hops(a, b NodeID) int {
	ax, ay := int(a)%n.cfg.Width, int(a)/n.cfg.Width
	bx, by := int(b)%n.cfg.Width, int(b)/n.cfg.Width
	dx := absDiff(ax, bx)
	if w := n.cfg.Width - dx; w < dx {
		dx = w
	}
	dy := absDiff(ay, by)
	if h := n.cfg.Height - dy; h < dy {
		dy = h
	}
	return dx + dy
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Latency returns the base delivery latency from a to b, before jitter.
func (n *Network) Latency(a, b NodeID) uint64 {
	h := n.Hops(a, b)
	if h == 0 {
		return n.cfg.LocalLatency
	}
	return uint64(h) * n.cfg.HopLatency
}

// Send enqueues a message for delivery. It may be called at any point within
// a cycle; delivery happens at a strictly later cycle. In shard mode src
// must be a node this shard owns (sends only happen inside an owned node's
// tick); a foreign dst parks the message in the outbox for the next barrier
// exchange. The signature implements coherence.Port.
func (n *Network) Send(src, dst NodeID, payload coherence.Msg) {
	if int(dst) < 0 || int(dst) >= n.Nodes() {
		panic(fmt.Sprintf("network: send to invalid node %d", dst))
	}
	lat := n.Latency(src, dst)
	if n.rng != nil && n.cfg.Jitter > 0 {
		lat += uint64(n.rng.Int63n(int64(n.cfg.Jitter) + 1))
	}
	arrive := n.now + lat
	if arrive <= n.now {
		arrive = n.now + 1
	}
	p := int(src)*n.Nodes() + int(dst)
	if last := n.lastArrive[p]; arrive <= last {
		arrive = last + 1 // preserve per-pair FIFO ordering
	}
	n.lastArrive[p] = arrive
	m := Message{Src: src, Dst: dst, Payload: payload, arrive: arrive, sent: n.now}
	if n.sharded {
		m.seq = n.srcSeq[src]
		n.srcSeq[src]++
	} else {
		m.seq = n.nextSeq
		n.nextSeq++
	}
	n.Sent++
	n.TotalHops += uint64(n.Hops(src, dst))
	if !n.Owns(dst) {
		n.outbox = append(n.outbox, m)
		return
	}
	n.flight.push(m, n.sharded)
}

// Tick advances the network to the given cycle, moving every message whose
// delivery time has been reached into its destination inbox. now must be
// monotonically non-decreasing across calls; the jump from one call to the
// next may be arbitrarily large (idle-skip, epoch advancement), and every
// message with arrive <= now is delivered in ordering-key order regardless
// of how many cycles the jump spanned.
func (n *Network) Tick(now uint64) {
	n.now = now
	for len(n.flight) > 0 && n.flight[0].arrive <= now {
		m := n.flight.pop(n.sharded)
		n.inboxes[m.Dst].push(m)
		n.Delivered++
	}
}

// Recv pops the oldest delivered message for dst, if any. Node controllers
// call this repeatedly, bounded by their own per-cycle service rate.
func (n *Network) Recv(dst NodeID) (Message, bool) {
	return n.inboxes[dst].pop()
}

// InboxLen reports delivered-but-unconsumed messages queued for dst; the
// idle-skip scheduler treats a non-empty inbox as immediate work.
func (n *Network) InboxLen(dst NodeID) int { return n.inboxes[dst].len() }

// NextEvent returns the earliest delivery cycle of any in-flight message,
// or memtypes.NoEvent when nothing is in flight. Delivered-but-unconsumed
// messages are per-destination state reported via InboxLen.
//
// Monotonicity contract (shared by every NextEvent in the simulator): the
// hint is valid until the component's state next changes — here, until a
// Send, Inject, or delivering Tick. It must never be later than the true
// next state change; earlier is allowed and costs only a wasted tick. The
// hint is computed read-only, so querying it cannot perturb a run. In shard
// mode the outbox is excluded deliberately: parked cross-shard messages are
// the destination shard's future events, accounted after injection at the
// barrier that precedes any cycle at which they could arrive.
func (n *Network) NextEvent() uint64 {
	if len(n.flight) == 0 {
		return memtypes.NoEvent
	}
	return n.flight[0].arrive
}

// Pending reports the number of undelivered plus delivered-but-unconsumed
// messages; the simulator uses it for quiescence detection.
func (n *Network) Pending() int {
	total := len(n.flight)
	for i := range n.inboxes {
		total += n.inboxes[i].len()
	}
	return total
}

// msgHeap is a hand-rolled min-heap of message values; avoiding
// container/heap keeps pushes boxing-free. The serial network orders by
// (arrive, seq) with a global seq; shards order by the composite key
// (arrive, sent, src, per-source seq), which is a total order equal to the
// serial one (see the ordering note on Message). Because the key is total,
// pop order is independent of push order — cross-shard injection at a
// barrier cannot perturb delivery determinism.
type msgHeap []Message

func (h msgHeap) less(i, j int, composite bool) bool {
	if h[i].arrive != h[j].arrive {
		return h[i].arrive < h[j].arrive
	}
	if composite {
		if h[i].sent != h[j].sent {
			return h[i].sent < h[j].sent
		}
		if h[i].Src != h[j].Src {
			return h[i].Src < h[j].Src
		}
	}
	return h[i].seq < h[j].seq
}

func (h *msgHeap) push(m Message, composite bool) {
	*h = append(*h, m)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent, composite) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *msgHeap) pop(composite bool) Message {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last] // no zeroing: Message is pointer-free

	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q) && q.less(l, smallest, composite) {
			smallest = l
		}
		if r < len(q) && q.less(r, smallest, composite) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}
