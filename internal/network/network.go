// Package network models the 4x4 2D torus interconnect from Figure 6 of the
// paper. It provides point-to-point message delivery with per-hop latency,
// FIFO ordering between each (source, destination) pair, an optional seeded
// jitter used by the litmus-test harness to explore interleavings, and —
// when Config.LinkBandwidth is non-zero — a per-link contention model:
// every node's router has four directed injection links with finite
// bandwidth (a configurable number of cycles per flit), messages queue at a
// busy link in send order, and the resulting queuing delay adds to the
// delivery latency (DESIGN.md §10). With LinkBandwidth zero (the default)
// the torus is latency-only and bit-exact with the pre-contention
// simulator: Figure 6's 128 GB/s bisection bandwidth is far from saturated
// by 16 cores at these miss rates (DESIGN.md §5), so contention is a
// fidelity knob for congestion studies, not part of the calibrated machine.
//
// The implementation is allocation-free on the steady-state path: messages
// are values (no per-send boxing) carrying the coherence protocol's wire
// format (coherence.Msg) inline, the in-flight set is a hand-rolled binary
// heap of values, per-destination inboxes are reusable ring buffers, and
// the per-link occupancy windows used for queue-depth accounting are
// reusable rings as well.
package network

import (
	"fmt"
	"math/rand"

	"invisifence/internal/coherence"
	"invisifence/internal/memtypes"
	"invisifence/internal/stats"
)

// NodeID identifies a node (core + caches + directory slice) in the system.
// The defined type lives in memtypes (below the wire format); this alias
// keeps the network's established vocabulary.
type NodeID = memtypes.NodeID

// Message is an in-flight interconnect message. The payload is the coherence
// protocol's wire format, embedded by value: the network carries exactly one
// message type, so there is nothing to box — sending allocates nothing, and
// the heap/inbox/outbox structures hold messages inline (DESIGN.md §9).
type Message struct {
	Src, Dst NodeID
	Payload  coherence.Msg

	arrive uint64 // delivery cycle
	seq    uint64 // tie-break for deterministic ordering (see ordering note)
	sent   uint64 // send cycle (shard mode ordering component)
}

// Ordering note. The serial network breaks same-cycle delivery ties with a
// single global send counter (seq), so messages delivered in the same cycle
// to the same inbox pop in global send order. In shard mode no global
// counter exists — sends happen concurrently on different shards — so seq is
// a per-source counter instead and the heap orders by the composite key
// (arrive, sent, src, seq). The two orders are identical: the serial
// simulator ticks nodes in ascending NodeID order within a cycle, and every
// send happens inside some node's tick, so global send order is exactly
// lexicographic (send cycle, source NodeID, per-source send index). The
// parallel-vs-serial bit-exactness tests (TestParallelBitExact) enforce
// this equivalence.

// Config describes the torus geometry and timing.
type Config struct {
	Width, Height int    // torus dimensions; Width*Height == number of nodes
	HopLatency    uint64 // cycles per hop (Figure 6: 25 ns at 4 GHz = 100)
	LocalLatency  uint64 // latency for a node messaging itself (its own home slice)
	Jitter        uint64 // max extra random cycles per message (0 = deterministic)
	Seed          int64  // jitter RNG seed

	// LinkBandwidth enables the per-link contention model: each of a
	// node's four directed injection links transmits one flit per
	// LinkBandwidth cycles, a message occupies its link for flits x
	// LinkBandwidth cycles, and messages finding the link busy queue in
	// send order, the wait adding to their delivery latency (DESIGN.md
	// §10). Control messages are one flit; data-bearing messages add
	// DataFlits for the 64-byte block. 0 (the default) disables the model
	// entirely — latency-only delivery, bit-exact with the pre-contention
	// simulator and free of contention bookkeeping.
	LinkBandwidth uint64
}

// Flit sizing for the contention model: a 16-byte link width makes a
// 64-byte cache block four flits, plus one header/command flit for every
// message (coherence.Msg addressing and kind).
const (
	headerFlits = 1
	// DataFlits is the extra flits a data-bearing message occupies a link
	// for (memtypes.BlockBytes / 16-byte flit width).
	DataFlits = memtypes.BlockBytes / 16
)

// FlitsOf returns the number of flits m occupies on a link.
func FlitsOf(m coherence.Msg) uint64 {
	if m.HasData {
		return headerFlits + DataFlits
	}
	return headerFlits
}

// DefaultConfig returns the Figure 6 interconnect: a 4x4 torus with
// 25 ns (100-cycle) hop latency.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, HopLatency: 100, LocalLatency: 1}
}

// inbox is one destination's delivered-message FIFO: a ring that reuses its
// backing storage instead of shifting on every Recv.
type inbox struct {
	q    []Message
	head int
}

func (b *inbox) len() int { return len(b.q) - b.head }

func (b *inbox) push(m Message) { b.q = append(b.q, m) }

func (b *inbox) pop() (Message, bool) {
	if b.head >= len(b.q) {
		return Message{}, false
	}
	m := b.q[b.head]
	// Popped slots are left as-is: Message is pointer-free since the payload
	// became an inline value, so there is nothing for the GC to release.
	b.head++
	switch {
	case b.head == len(b.q):
		b.q = b.q[:0]
		b.head = 0
	case b.head >= 64 && b.head*2 >= len(b.q):
		// Compact once the dead prefix dominates, so the backing array is
		// bounded by the backlog (amortized O(1): each element moves at
		// most once per 64 pops).
		n := copy(b.q, b.q[b.head:])
		b.q = b.q[:n]
		b.head = 0
	}
	return m, true
}

// Network is the torus — or, in shard mode, one cluster's partition of it.
//
// A plain Network (New) owns every node and is not safe for concurrent use;
// the serial simulator is single-threaded and deterministic.
//
// A shard (NewShard) owns a subset of the nodes: it carries the in-flight
// heap and inboxes for messages destined to its own nodes, and the per-pair
// FIFO state for messages sent by its own nodes. Sends to foreign nodes are
// timestamped locally (arrival cycle, FIFO bump, per-source sequence) and
// parked in an outbox; the parallel scheduler moves them into the owning
// shard with Inject at an epoch barrier, before any cycle at which they
// could arrive (see internal/sim's parallel runner and DESIGN.md §7).
// Distinct shards never share mutable state, so each may be driven by its
// own goroutine between barriers.
type Network struct {
	cfg     Config
	now     uint64
	nextSeq uint64
	flight  msgHeap
	inboxes []inbox
	rng     *rand.Rand

	// Shard mode. owned is nil for a whole-torus network; otherwise
	// owned[id] reports whether this shard simulates node id. srcSeq
	// replaces the global nextSeq with per-source counters (see the
	// ordering note on Message), and sharded selects the composite heap
	// key.
	sharded   bool
	owned     []bool
	srcSeq    []uint64
	outbox    []Message
	outboxAlt []Message // DrainOutbox's swap buffer (allocation-free epochs)

	// lastArrive enforces FIFO ordering per (src,dst) pair: a later send may
	// not arrive before an earlier one even under jitter. Indexed
	// src*nodes+dst (the pair space is small and dense). In shard mode only
	// rows with an owned src are touched: a pair's FIFO state lives with the
	// sender's shard, and every node is owned by exactly one shard.
	lastArrive []uint64

	// Link contention state (nil/empty when Config.LinkBandwidth == 0).
	// Indexed src*numLinks+direction: every injection link belongs to
	// exactly one source node, so in shard mode only owned sources' links
	// are ever touched — contention state lives with the sender's shard,
	// exactly like the per-pair FIFO state (DESIGN.md §10). linkFreeAt is
	// the first cycle the link is idle again (reservation model);
	// linkWindows holds the end cycles of the link's outstanding occupancy
	// windows, drained lazily at each send, for queue-depth accounting.
	linkFreeAt  []uint64
	linkWindows []endRing

	// Counters for bandwidth accounting and tests. In shard mode Sent and
	// TotalHops count sends by this shard's nodes and Delivered counts
	// deliveries into this shard's inboxes; summing over shards matches the
	// serial counters exactly. Contention aggregates the link-occupancy
	// telemetry the same way: per-link state is per-source, so summing the
	// shard instances (stats.NetStats.Merge) reproduces the serial counters.
	Sent       uint64
	Delivered  uint64
	TotalHops  uint64
	Contention stats.NetStats
}

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("network: bad dimensions %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 1
	}
	if cfg.LocalLatency == 0 {
		cfg.LocalLatency = 1
	}
	nodes := cfg.Width * cfg.Height
	n := &Network{
		cfg:        cfg,
		inboxes:    make([]inbox, nodes),
		lastArrive: make([]uint64, nodes*nodes),
	}
	if cfg.LinkBandwidth > 0 {
		n.linkFreeAt = make([]uint64, nodes*numLinks)
		n.linkWindows = make([]endRing, nodes*numLinks)
	}
	if cfg.Jitter > 0 {
		n.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return n
}

// NewShard creates one cluster's partition of the torus: a Network that
// simulates only the nodes with owned[id] == true. Jitter is rejected — its
// RNG is consumed in global send order, which shards cannot reproduce; the
// parallel scheduler falls back to the serial loop for jittered runs.
func NewShard(cfg Config, owned []bool) *Network {
	if cfg.Jitter > 0 {
		panic("network: shards do not support jitter (global RNG order)")
	}
	n := New(cfg)
	if len(owned) != n.Nodes() {
		panic(fmt.Sprintf("network: owned set covers %d of %d nodes", len(owned), n.Nodes()))
	}
	n.sharded = true
	n.owned = append([]bool(nil), owned...)
	n.srcSeq = make([]uint64, n.Nodes())
	return n
}

// Owns reports whether this network simulates node id (always true for a
// whole-torus network).
func (n *Network) Owns(id NodeID) bool { return n.owned == nil || n.owned[id] }

// DrainOutbox returns and clears the cross-shard sends accumulated since the
// last drain. Only the parallel scheduler calls this, at an epoch barrier,
// with every shard goroutine parked. The returned slice is valid until the
// drain after next: the outbox and a spare swap backing arrays, so steady-
// state barrier exchange allocates nothing. The scheduler finishes injecting
// every drained message before any shard resumes sending, which is exactly
// the reuse window.
func (n *Network) DrainOutbox() []Message {
	out := n.outbox
	n.outbox = n.outboxAlt[:0]
	n.outboxAlt = out
	return out
}

// Inject accepts cross-shard messages (drained from peer shards' outboxes)
// whose destinations this shard owns. Arrival cycles and ordering keys were
// fixed by the sender's shard; insertion order is irrelevant because the
// composite heap key is a total order. Only the parallel scheduler calls
// this, at an epoch barrier.
func (n *Network) Inject(ms []Message) {
	for _, m := range ms {
		if !n.Owns(m.Dst) {
			panic(fmt.Sprintf("network: injected message for foreign node %d", m.Dst))
		}
		n.flight.push(m, n.sharded)
	}
}

// Nodes returns the number of nodes in the torus.
func (n *Network) Nodes() int { return n.cfg.Width * n.cfg.Height }

// Hops returns the dimension-order routed hop count between two nodes on the
// torus (minimum of the two directions in each dimension).
func (n *Network) Hops(a, b NodeID) int {
	ax, ay := int(a)%n.cfg.Width, int(a)/n.cfg.Width
	bx, by := int(b)%n.cfg.Width, int(b)/n.cfg.Width
	dx := absDiff(ax, bx)
	if w := n.cfg.Width - dx; w < dx {
		dx = w
	}
	dy := absDiff(ay, by)
	if h := n.cfg.Height - dy; h < dy {
		dy = h
	}
	return dx + dy
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Latency returns the base delivery latency from a to b, before jitter and
// link contention.
func (n *Network) Latency(a, b NodeID) uint64 {
	h := n.Hops(a, b)
	if h == 0 {
		return n.cfg.LocalLatency
	}
	return uint64(h) * n.cfg.HopLatency
}

// numLinks is the number of directed injection links per node's router —
// +X, -X, +Y, -Y — the four torus channels a message can leave on.
// Dimension-order routing picks exactly one per message; self-sends never
// enter the network and bypass the links (and the contention model).
const numLinks = 4

const (
	linkXPos = iota
	linkXNeg
	linkYPos
	linkYNeg
)

// linkOf returns the index of the injection link a message from a to b
// occupies under dimension-order (X before Y) routing taking the
// shorter wrap direction (positive on a tie), or -1 for a self-send.
func (n *Network) linkOf(a, b NodeID) int {
	ax, ay := int(a)%n.cfg.Width, int(a)/n.cfg.Width
	bx, by := int(b)%n.cfg.Width, int(b)/n.cfg.Width
	if ax != bx {
		if fwd := (bx - ax + n.cfg.Width) % n.cfg.Width; 2*fwd <= n.cfg.Width {
			return int(a)*numLinks + linkXPos
		}
		return int(a)*numLinks + linkXNeg
	}
	if ay != by {
		if fwd := (by - ay + n.cfg.Height) % n.cfg.Height; 2*fwd <= n.cfg.Height {
			return int(a)*numLinks + linkYPos
		}
		return int(a)*numLinks + linkYNeg
	}
	return -1
}

// reserveLink runs the contention model for one send (only called with
// LinkBandwidth > 0): the message claims its injection link in send order
// (per-link FIFO, the queuing discipline), waiting while the link is busy
// with earlier messages, then occupies it for flits x LinkBandwidth cycles.
// It returns the cycle the tail flit leaves the link (serialization
// complete, propagation begins) and accounts the contention telemetry; the
// transmission-start excess over now is the message's queuing delay.
//
// The reservation is eager: the link's future occupancy is resolved at send
// time, which is exact because a link belongs to one source node and that
// node's sends reach it in nondecreasing cycle order under every runner
// (DESIGN.md §10 has the equivalence argument with a queue-at-the-link
// formulation).
func (n *Network) reserveLink(src, dst NodeID, payload coherence.Msg) uint64 {
	li := n.linkOf(src, dst)
	if li < 0 {
		return n.now
	}
	occ := FlitsOf(payload) * n.cfg.LinkBandwidth
	depart := n.now
	c := &n.Contention
	c.Messages++
	if free := n.linkFreeAt[li]; free > depart {
		depart = free
		c.QueuedMessages++
		c.QueueDelayCycles += free - n.now
	}
	n.linkFreeAt[li] = depart + occ
	c.LinkBusyCycles += occ
	// Queue-depth accounting: occupancy windows end in nondecreasing order
	// (back-to-back reservations), so dropping the expired prefix leaves
	// exactly the messages still holding or awaiting this link.
	w := &n.linkWindows[li]
	w.dropThrough(n.now)
	w.push(depart + occ)
	if d := uint64(w.len()); d > c.MaxQueueDepth {
		c.MaxQueueDepth = d
	}
	return depart + occ
}

// endRing is one link's outstanding occupancy-window end cycles: a ring
// that reuses its backing storage like inbox, so steady-state contention
// accounting allocates nothing once rings reach the peak backlog.
type endRing struct {
	q    []uint64
	head int
}

func (r *endRing) len() int { return len(r.q) - r.head }

func (r *endRing) push(end uint64) { r.q = append(r.q, end) }

// dropThrough discards windows that ended at or before now. Ends are
// pushed in nondecreasing order, so the live windows are always a suffix.
func (r *endRing) dropThrough(now uint64) {
	for r.head < len(r.q) && r.q[r.head] <= now {
		r.head++
	}
	switch {
	case r.head == len(r.q):
		r.q = r.q[:0]
		r.head = 0
	case r.head >= 64 && r.head*2 >= len(r.q):
		// Same amortized-O(1) compaction rule as inbox: move elements only
		// once the dead prefix dominates.
		k := copy(r.q, r.q[r.head:])
		r.q = r.q[:k]
		r.head = 0
	}
}

// Send enqueues a message for delivery. It may be called at any point within
// a cycle; delivery happens at a strictly later cycle. In shard mode src
// must be a node this shard owns (sends only happen inside an owned node's
// tick); a foreign dst parks the message in the outbox for the next barrier
// exchange. The signature implements coherence.Port.
//
// With LinkBandwidth > 0 delivery decomposes as queuing delay (waiting for
// the injection link) + serialization (flits x LinkBandwidth on the link) +
// propagation (hop latency, plus jitter); contention only ever delays a
// message, so every lower bound the schedulers rely on — delivery strictly
// after the send, and cross-shard arrival no earlier than send + minimum
// cross-cluster latency (the parallel lookahead) — survives unchanged.
func (n *Network) Send(src, dst NodeID, payload coherence.Msg) {
	if int(dst) < 0 || int(dst) >= n.Nodes() {
		panic(fmt.Sprintf("network: send to invalid node %d", dst))
	}
	lat := n.Latency(src, dst)
	if n.rng != nil && n.cfg.Jitter > 0 {
		lat += uint64(n.rng.Int63n(int64(n.cfg.Jitter) + 1))
	}
	txDone := n.now
	if n.cfg.LinkBandwidth > 0 {
		txDone = n.reserveLink(src, dst, payload)
	}
	arrive := txDone + lat
	if arrive <= n.now {
		arrive = n.now + 1
	}
	p := int(src)*n.Nodes() + int(dst)
	if last := n.lastArrive[p]; arrive <= last {
		arrive = last + 1 // preserve per-pair FIFO ordering
	}
	n.lastArrive[p] = arrive
	m := Message{Src: src, Dst: dst, Payload: payload, arrive: arrive, sent: n.now}
	if n.sharded {
		m.seq = n.srcSeq[src]
		n.srcSeq[src]++
	} else {
		m.seq = n.nextSeq
		n.nextSeq++
	}
	n.Sent++
	n.TotalHops += uint64(n.Hops(src, dst))
	if !n.Owns(dst) {
		n.outbox = append(n.outbox, m)
		return
	}
	n.flight.push(m, n.sharded)
}

// Tick advances the network to the given cycle, moving every message whose
// delivery time has been reached into its destination inbox. now must be
// monotonically non-decreasing across calls; the jump from one call to the
// next may be arbitrarily large (idle-skip, epoch advancement), and every
// message with arrive <= now is delivered in ordering-key order regardless
// of how many cycles the jump spanned.
func (n *Network) Tick(now uint64) {
	n.now = now
	for len(n.flight) > 0 && n.flight[0].arrive <= now {
		m := n.flight.pop(n.sharded)
		n.inboxes[m.Dst].push(m)
		n.Delivered++
	}
}

// Recv pops the oldest delivered message for dst, if any. Node controllers
// call this repeatedly, bounded by their own per-cycle service rate.
func (n *Network) Recv(dst NodeID) (Message, bool) {
	return n.inboxes[dst].pop()
}

// InboxLen reports delivered-but-unconsumed messages queued for dst; the
// idle-skip scheduler treats a non-empty inbox as immediate work.
func (n *Network) InboxLen(dst NodeID) int { return n.inboxes[dst].len() }

// NextEvent returns the earliest cycle at which this network (whole torus
// or one shard) next changes state on its own: the earliest in-flight
// delivery, folded with the earliest link release (LinkNextEvent) when the
// contention model is on; memtypes.NoEvent when neither is pending.
// Delivered-but-unconsumed messages are per-destination state reported via
// InboxLen.
//
// Monotonicity contract (shared by every NextEvent in the simulator): the
// hint is valid until the component's state next changes — here, until a
// Send, Inject, or delivering Tick. It must never be later than the true
// next state change; earlier is allowed and costs only a wasted tick. The
// hint is computed read-only, so querying it cannot perturb a run. In shard
// mode the outbox is excluded deliberately: parked cross-shard messages are
// the destination shard's future events, accounted after injection at the
// barrier that precedes any cycle at which they could arrive.
func (n *Network) NextEvent() uint64 {
	ev := uint64(memtypes.NoEvent)
	if len(n.flight) > 0 {
		ev = n.flight[0].arrive
	}
	if n.linkFreeAt != nil {
		if le := n.LinkNextEvent(); le < ev {
			ev = le
		}
	}
	return ev
}

// LinkNextEvent is the per-shard link-occupancy horizon: the earliest
// cycle at which a currently-busy injection link frees, or
// memtypes.NoEvent when every link is idle (always, with LinkBandwidth 0).
// NextEvent folds it in so the event-horizon schedulers stay exact under
// contention by construction: no link state transition can hide inside a
// skipped stretch. The fold is conservative — a release itself mutates
// nothing (reservations are resolved eagerly at Send, and expired
// occupancy windows are dropped lazily at the link's next send), so waking
// at one costs at most a wasted tick per message, never a divergence; see
// the DESIGN.md §10 bound proof. Releases satisfy the strictly-future
// property the schedulers assert (release = depart + occupancy > send
// cycle), and a pending release is never jumped over, so the returned
// cycle always exceeds the caller's clock.
func (n *Network) LinkNextEvent() uint64 {
	ev := uint64(memtypes.NoEvent)
	if n.owned != nil {
		// Shard mode: only owned sources ever touch their links, so the
		// scan skips other shards' permanently-idle slots.
		for id, own := range n.owned {
			if !own {
				continue
			}
			for li := id * numLinks; li < (id+1)*numLinks; li++ {
				if free := n.linkFreeAt[li]; free > n.now && free < ev {
					ev = free
				}
			}
		}
		return ev
	}
	for _, free := range n.linkFreeAt {
		if free > n.now && free < ev {
			ev = free
		}
	}
	return ev
}

// Pending reports the number of undelivered plus delivered-but-unconsumed
// messages; the simulator uses it for quiescence detection.
func (n *Network) Pending() int {
	total := len(n.flight)
	for i := range n.inboxes {
		total += n.inboxes[i].len()
	}
	return total
}

// msgHeap is a hand-rolled min-heap of message values; avoiding
// container/heap keeps pushes boxing-free. The serial network orders by
// (arrive, seq) with a global seq; shards order by the composite key
// (arrive, sent, src, per-source seq), which is a total order equal to the
// serial one (see the ordering note on Message). Because the key is total,
// pop order is independent of push order — cross-shard injection at a
// barrier cannot perturb delivery determinism.
type msgHeap []Message

func (h msgHeap) less(i, j int, composite bool) bool {
	if h[i].arrive != h[j].arrive {
		return h[i].arrive < h[j].arrive
	}
	if composite {
		if h[i].sent != h[j].sent {
			return h[i].sent < h[j].sent
		}
		if h[i].Src != h[j].Src {
			return h[i].Src < h[j].Src
		}
	}
	return h[i].seq < h[j].seq
}

func (h *msgHeap) push(m Message, composite bool) {
	*h = append(*h, m)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent, composite) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
}

func (h *msgHeap) pop(composite bool) Message {
	q := *h
	top := q[0]
	last := len(q) - 1
	q[0] = q[last]
	q = q[:last] // no zeroing: Message is pointer-free

	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(q) && q.less(l, smallest, composite) {
			smallest = l
		}
		if r < len(q) && q.less(r, smallest, composite) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q[i], q[smallest] = q[smallest], q[i]
		i = smallest
	}
	return top
}
