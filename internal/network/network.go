// Package network models the 4x4 2D torus interconnect from Figure 6 of the
// paper. It provides point-to-point message delivery with per-hop latency,
// FIFO ordering between each (source, destination) pair, and an optional
// seeded jitter used by the litmus-test harness to explore interleavings.
//
// The model captures latency and ordering, not link contention: Figure 6's
// 128 GB/s bisection bandwidth is far from saturated by 16 cores at the miss
// rates these workloads exhibit (see DESIGN.md §5).
package network

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// NodeID identifies a node (core + caches + directory slice) in the system.
type NodeID int

// Message is an in-flight interconnect message. Payload is opaque to the
// network; the coherence protocol defines the concrete types.
type Message struct {
	Src, Dst NodeID
	Payload  any

	arrive uint64 // delivery cycle
	seq    uint64 // tie-break for deterministic ordering
}

// Config describes the torus geometry and timing.
type Config struct {
	Width, Height int    // torus dimensions; Width*Height == number of nodes
	HopLatency    uint64 // cycles per hop (Figure 6: 25 ns at 4 GHz = 100)
	LocalLatency  uint64 // latency for a node messaging itself (its own home slice)
	Jitter        uint64 // max extra random cycles per message (0 = deterministic)
	Seed          int64  // jitter RNG seed
}

// DefaultConfig returns the Figure 6 interconnect: a 4x4 torus with
// 25 ns (100-cycle) hop latency.
func DefaultConfig() Config {
	return Config{Width: 4, Height: 4, HopLatency: 100, LocalLatency: 1}
}

// Network is the torus. It is not safe for concurrent use; the simulator is
// single-threaded and deterministic.
type Network struct {
	cfg     Config
	now     uint64
	nextSeq uint64
	flight  msgHeap
	inbox   [][]*Message // per destination, delivery-ordered
	rng     *rand.Rand

	// lastArrive enforces FIFO ordering per (src,dst) pair: a later send may
	// not arrive before an earlier one even under jitter.
	lastArrive map[pair]uint64

	// Counters for bandwidth accounting and tests.
	Sent      uint64
	Delivered uint64
	TotalHops uint64
}

type pair struct{ src, dst NodeID }

// New creates a network with the given configuration.
func New(cfg Config) *Network {
	if cfg.Width <= 0 || cfg.Height <= 0 {
		panic(fmt.Sprintf("network: bad dimensions %dx%d", cfg.Width, cfg.Height))
	}
	if cfg.HopLatency == 0 {
		cfg.HopLatency = 1
	}
	if cfg.LocalLatency == 0 {
		cfg.LocalLatency = 1
	}
	n := &Network{
		cfg:        cfg,
		inbox:      make([][]*Message, cfg.Width*cfg.Height),
		lastArrive: make(map[pair]uint64),
	}
	if cfg.Jitter > 0 {
		n.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	return n
}

// Nodes returns the number of nodes in the torus.
func (n *Network) Nodes() int { return n.cfg.Width * n.cfg.Height }

// Hops returns the dimension-order routed hop count between two nodes on the
// torus (minimum of the two directions in each dimension).
func (n *Network) Hops(a, b NodeID) int {
	ax, ay := int(a)%n.cfg.Width, int(a)/n.cfg.Width
	bx, by := int(b)%n.cfg.Width, int(b)/n.cfg.Width
	dx := absDiff(ax, bx)
	if w := n.cfg.Width - dx; w < dx {
		dx = w
	}
	dy := absDiff(ay, by)
	if h := n.cfg.Height - dy; h < dy {
		dy = h
	}
	return dx + dy
}

func absDiff(a, b int) int {
	if a > b {
		return a - b
	}
	return b - a
}

// Latency returns the base delivery latency from a to b, before jitter.
func (n *Network) Latency(a, b NodeID) uint64 {
	h := n.Hops(a, b)
	if h == 0 {
		return n.cfg.LocalLatency
	}
	return uint64(h) * n.cfg.HopLatency
}

// Send enqueues a message for delivery. It may be called at any point within
// a cycle; delivery happens at a strictly later cycle.
func (n *Network) Send(src, dst NodeID, payload any) {
	if int(dst) < 0 || int(dst) >= n.Nodes() {
		panic(fmt.Sprintf("network: send to invalid node %d", dst))
	}
	lat := n.Latency(src, dst)
	if n.rng != nil && n.cfg.Jitter > 0 {
		lat += uint64(n.rng.Int63n(int64(n.cfg.Jitter) + 1))
	}
	arrive := n.now + lat
	if arrive <= n.now {
		arrive = n.now + 1
	}
	p := pair{src, dst}
	if last, ok := n.lastArrive[p]; ok && arrive <= last {
		arrive = last + 1 // preserve per-pair FIFO ordering
	}
	n.lastArrive[p] = arrive
	m := &Message{Src: src, Dst: dst, Payload: payload, arrive: arrive, seq: n.nextSeq}
	n.nextSeq++
	heap.Push(&n.flight, m)
	n.Sent++
	n.TotalHops += uint64(n.Hops(src, dst))
}

// Tick advances the network to the given cycle, moving every message whose
// delivery time has been reached into its destination inbox.
func (n *Network) Tick(now uint64) {
	n.now = now
	for n.flight.Len() > 0 && n.flight[0].arrive <= now {
		m := heap.Pop(&n.flight).(*Message)
		n.inbox[m.Dst] = append(n.inbox[m.Dst], m)
		n.Delivered++
	}
}

// Recv pops the oldest delivered message for dst, if any. Node controllers
// call this repeatedly, bounded by their own per-cycle service rate.
func (n *Network) Recv(dst NodeID) (*Message, bool) {
	q := n.inbox[dst]
	if len(q) == 0 {
		return nil, false
	}
	m := q[0]
	copy(q, q[1:])
	n.inbox[dst] = q[:len(q)-1]
	return m, true
}

// Pending reports the number of undelivered plus delivered-but-unconsumed
// messages; the simulator uses it for quiescence detection.
func (n *Network) Pending() int {
	total := n.flight.Len()
	for _, q := range n.inbox {
		total += len(q)
	}
	return total
}

// msgHeap is a min-heap on (arrive, seq).
type msgHeap []*Message

func (h msgHeap) Len() int { return len(h) }
func (h msgHeap) Less(i, j int) bool {
	if h[i].arrive != h[j].arrive {
		return h[i].arrive < h[j].arrive
	}
	return h[i].seq < h[j].seq
}
func (h msgHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *msgHeap) Push(x any)   { *h = append(*h, x.(*Message)) }
func (h *msgHeap) Pop() any {
	old := *h
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return m
}
