// Package analysistest runs a lint analyzer over a fixture package and
// checks its findings against "// want" comments, in the style of
// golang.org/x/tools/go/analysis/analysistest but built entirely on the
// standard library. Fixtures live under the analyzer's testdata/ directory
// and may import real repo packages — the loader resolves them (and the
// standard library) from `go list -export` build-cache data.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"invisifence/internal/lint/analysis"
	"invisifence/internal/lint/loader"
)

// want is one expected finding.
type want struct {
	file string
	line int
	rx   *regexp.Regexp
	hit  bool
}

// Run type-checks the fixture directory as one package, runs the analyzer,
// and fails the test on any mismatch between diagnostics and the fixture's
// "// want `regex`" comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("analysistest: no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)
	fset := token.NewFileSet()
	var files []*ast.File
	importSet := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				t.Fatalf("analysistest: %s: bad import %s", name, imp.Path.Value)
			}
			importSet[p] = true
		}
	}
	wants := collectWants(t, fset, files)

	var imports []string
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	conf := types.Config{}
	if len(imports) > 0 {
		lookup, err := loader.ExportLookup(imports...)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		conf.Importer = importer.ForCompiler(fset, "gc", lookup)
	}
	info := loader.NewInfo()
	pkg, err := conf.Check(files[0].Name.Name, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: type-checking fixture: %v", err)
	}

	pass := &analysis.Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
	if err := a.Run(pass); err != nil {
		t.Fatalf("analysistest: %s: %v", a.Name, err)
	}

	for _, d := range pass.Diagnostics() {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %v", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("missing diagnostic at %s:%d matching %q", filepath.Base(w.file), w.line, w.rx)
		}
	}
}

// claim marks the first unhit want matching the diagnostic.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.rx.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// collectWants extracts `// want "rx"` / backquoted expectations.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, pos, strings.TrimPrefix(text, "want ")) {
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("analysistest: %s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return wants
}

// splitPatterns decodes the quoted (or backquoted) patterns of a want
// comment.
func splitPatterns(t *testing.T, pos token.Position, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		if s[0] != '"' && s[0] != '`' {
			t.Fatalf("analysistest: %s: want patterns must be quoted, got %q", pos, s)
		}
		end := strings.IndexByte(s[1:], s[0])
		if end < 0 {
			t.Fatalf("analysistest: %s: unterminated want pattern %q", pos, s)
		}
		raw := s[:end+2]
		pat, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("analysistest: %s: bad want pattern %s: %v", pos, raw, err)
		}
		out = append(out, pat)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
