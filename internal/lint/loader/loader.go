// Package loader turns `go list -export` output into type-checked packages
// for the lint suite, using only the standard library: go/parser for syntax
// and go/importer's gc export-data reader for dependency types. It is the
// stdlib stand-in for golang.org/x/tools/go/packages, which this repo
// deliberately does not vendor.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one parsed and type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
}

// goList runs `go list -deps -export` over the patterns and decodes the
// JSON stream. -export populates each package's build-cache export-data
// path, which the gc importer reads back for dependency type information.
func goList(patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %v: %v\n%s", patterns, err, errb.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportLookup returns a gc-importer lookup function covering the patterns
// and all their dependencies.
func ExportLookup(patterns ...string) (func(string) (io.ReadCloser, error), error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	}, nil
}

// Load parses and type-checks every package matching the patterns (their
// dependencies are consumed as export data, not re-checked). Test files are
// not included, mirroring `go list`'s GoFiles.
func Load(patterns ...string) ([]*Package, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	})
	var out []*Package
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		files := make([]*ast.File, 0, len(p.GoFiles))
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("loader: %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("loader: type-checking %s: %v", p.ImportPath, err)
		}
		out = append(out, &Package{
			ImportPath: p.ImportPath,
			Dir:        p.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return out, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}
