package loader_test

import (
	"testing"

	"invisifence/internal/lint/loader"
)

// TestLoadRealPackage proves the go-list/export-data pipeline actually
// yields parsed syntax and type information for a real repo package — so a
// clean cmd/lint run means "analyzed and found nothing", not "loaded
// nothing".
func TestLoadRealPackage(t *testing.T) {
	pkgs, err := loader.Load("invisifence/internal/coherence")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.ImportPath != "invisifence/internal/coherence" {
		t.Fatalf("ImportPath = %q", p.ImportPath)
	}
	if len(p.Files) == 0 {
		t.Fatal("no parsed files")
	}
	if p.Types == nil || p.Types.Name() != "coherence" {
		t.Fatalf("bad types package: %v", p.Types)
	}
	if len(p.Info.Uses) == 0 {
		t.Fatal("empty Uses map: type info not populated")
	}
	// Comments must be retained: //lint:allow suppression depends on them.
	comments := 0
	for _, f := range p.Files {
		comments += len(f.Comments)
	}
	if comments == 0 {
		t.Fatal("no comments retained; //lint:allow suppression would break")
	}
}
