// Package tracegate enforces the PR 4 hot-path tracing contract: every call
// to coherence.Trace or coherence.TraceEvent must be guarded by a
// coherence.TraceOn() check. The callees early-return when tracing is off,
// but by then the call site has already paid fmt.Sprintf and ...any boxing
// allocations — which once dominated the simulator's heap profile. The
// contract was previously enforced only by review.
package tracegate

import (
	"go/ast"
	"go/types"

	"invisifence/internal/lint/analysis"
)

// coherencePath is the package whose tracing entry points are gated.
const coherencePath = "invisifence/internal/coherence"

// gated lists the functions that allocate at the call site; TraceAlways is
// deliberately absent (it is the acknowledged slow-path escape hatch).
var gated = map[string]bool{"Trace": true, "TraceEvent": true}

// Analyzer is the check.
var Analyzer = &analysis.Analyzer{
	Name: "tracegate",
	Doc:  "flag coherence.Trace/TraceEvent call sites not guarded by coherence.TraceOn()",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if name := gatedCallee(pass, call); name != "" && !guarded(pass, stack) {
					pass.Reportf(call.Pos(), "unguarded call to coherence.%s: wrap in if coherence.TraceOn() { ... } (argument boxing allocates even when tracing is off)", name)
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	return nil
}

// gatedCallee returns the gated function's name when the call resolves to
// coherence.Trace/TraceEvent (selector form from other packages, bare
// identifier within package coherence), else "".
func gatedCallee(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != coherencePath {
		return ""
	}
	if !gated[fn.Name()] {
		return ""
	}
	return fn.Name()
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch e := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// guarded reports whether any enclosing if statement's init/condition calls
// coherence.TraceOn (directly or as one conjunct).
func guarded(pass *analysis.Pass, stack []ast.Node) bool {
	for _, n := range stack {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			continue
		}
		if containsTraceOn(pass, ifs.Cond) || (ifs.Init != nil && containsTraceOn(pass, ifs.Init)) {
			return true
		}
	}
	return false
}

func containsTraceOn(pass *analysis.Pass, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == coherencePath && fn.Name() == "TraceOn" {
			found = true
			return false
		}
		return true
	})
	return found
}
