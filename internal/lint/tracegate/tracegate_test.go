package tracegate_test

import (
	"testing"

	"invisifence/internal/lint/analysistest"
	"invisifence/internal/lint/tracegate"
)

func TestTracegate(t *testing.T) {
	analysistest.Run(t, "testdata", tracegate.Analyzer)
}
