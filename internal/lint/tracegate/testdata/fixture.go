// Package fixture exercises the tracegate analyzer. Each "// want" comment
// pins an expected diagnostic; call sites without one must stay clean.
package fixture

import (
	"invisifence/internal/coherence"
	"invisifence/internal/memtypes"
)

func guardedPlain(cycle uint64, m coherence.Msg) {
	if coherence.TraceOn() {
		coherence.Trace(cycle, "node3", m, "load miss")
	}
}

func guardedInit(cycle uint64, a memtypes.Addr) {
	if on := coherence.TraceOn(); on && cycle > 0 {
		coherence.TraceEvent(cycle, a, "GetS from %d", 2)
	}
}

func guardedConjunct(cycle uint64, m coherence.Msg, verbose bool) {
	if verbose && coherence.TraceOn() {
		coherence.Trace(cycle, "dir", m, "verbose path")
	}
}

func guardedOuter(cycle uint64, a memtypes.Addr) {
	if coherence.TraceOn() {
		for i := 0; i < 4; i++ {
			coherence.TraceEvent(cycle, a, "sweep %d", i)
		}
	}
}

func unguarded(cycle uint64, a memtypes.Addr, m coherence.Msg) {
	coherence.Trace(cycle, "node0", m, "oops")   // want `unguarded call to coherence\.Trace`
	coherence.TraceEvent(cycle, a, "GetM %d", 0) // want `unguarded call to coherence\.TraceEvent`
	if cycle > 10 {                              // unrelated guard does not count
		coherence.Trace(cycle, "node1", m, "still bad") // want `unguarded call to coherence\.Trace`
	}
}

func slowPathAllowed(cycle uint64) {
	coherence.TraceAlways(cycle, "deadlock dump %d", cycle) // escape hatch, never flagged
}
