// Package analysis is a minimal, dependency-free skeleton of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package at a time and reports Diagnostics. The repo's lint
// suite (cmd/lint, internal/lint/tracegate, internal/lint/determinism) is
// built on it because the container vendors no external modules — the
// loader (internal/lint/loader) supplies packages straight from `go list
// -export` plus go/parser and go/types.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one lint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// annotations.
	Name string
	// Doc is the one-paragraph description printed by cmd/lint -help.
	Doc string
	// Run inspects one package, reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// Pass is one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's syntax trees, parsed with comments.
	Files []*ast.File
	// Pkg and TypesInfo are the type-checked package and its expression
	// types/uses/defs.
	Pkg       *types.Package
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders "file:line:col: message (analyzer)".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a finding at pos unless an annotation suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.suppressed(pos) {
		return
	}
	p.diagnostics = append(p.diagnostics, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// suppressed reports whether a "//lint:allow <name>" comment sits on the
// finding's line or the line immediately above it.
func (p *Pass) suppressed(pos token.Pos) bool {
	position := p.Fset.Position(pos)
	for _, f := range p.Files {
		if p.Fset.Position(f.Pos()).Filename != position.Filename {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				cl := p.Fset.Position(c.Pos()).Line
				if cl != position.Line && cl != position.Line-1 {
					continue
				}
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
				for _, name := range strings.Fields(rest) {
					if name == p.Analyzer.Name {
						return true
					}
				}
			}
		}
	}
	return false
}

// Diagnostics returns the findings sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.Slice(p.diagnostics, func(i, j int) bool {
		a, b := p.diagnostics[i].Pos, p.diagnostics[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return p.diagnostics
}
