// Package sweepd stands in for a clocked package (matched by package
// name) to exercise the determinism analyzer's clocked-package tier:
// wall-clock reads must go through the injectable Clock, but seeded
// randomness and map iteration — forbidden in the deterministic tier —
// are allowed here.
package sweepd

import (
	"math/rand"
	"time"
)

func nakedNowBad() int64 {
	t := time.Now() // want `naked time\.Now in clocked package sweepd`
	return t.Unix()
}

func nakedSinceBad(start time.Time) time.Duration {
	return time.Since(start) // want `naked time\.Since in clocked package sweepd`
}

func nakedSleepBad() {
	time.Sleep(time.Millisecond) // want `naked time\.Sleep in clocked package sweepd`
}

func nakedAfterBad() <-chan time.Time {
	return time.After(time.Second) // want `naked time\.After in clocked package sweepd`
}

func sanctionedClockImplOK() time.Time {
	return time.Now() //lint:allow determinism the injectable clock's single wall-clock read
}

func timeMethodsOK(t time.Time, d time.Duration) bool {
	// Duration arithmetic and time.Time methods are pure; only the
	// package-level wall-clock and timer functions are findings —
	// t.After here is a method on time.Time, not time.After.
	return t.Add(2 * d).After(t)
}

func randAndMapsOKHere(m map[int]int) int {
	// The clocked tier does not inherit the deterministic tier's rand and
	// map-range bans: a server's schedule is inherently concurrent.
	sum := rand.Intn(4)
	for k, v := range m {
		sum += k * v
	}
	return sum
}
