// Package sim stands in for a deterministic package (matched by package
// name) to exercise the determinism analyzer.
package sim

import (
	"math/rand"
	"time"
)

func seededJitterOK(seed int64) uint64 {
	rng := rand.New(rand.NewSource(seed)) // explicit seed: allowed
	return uint64(rng.Intn(8))            // method on *rand.Rand: allowed
}

func wallClockBad() int64 {
	t := time.Now() // want `call to time\.Now in deterministic package sim`
	return t.Unix()
}

func globalRandBad() int {
	return rand.Intn(4) // want `call to global math/rand\.Intn in deterministic package sim`
}

func mapRangeBad(m map[int]int) int {
	sum := 0
	for k, v := range m { // want `map-range iteration in deterministic package sim`
		sum += k * v
	}
	return sum
}

func mapRangeAnnotated(m map[int]int) int {
	sum := 0
	//lint:allow determinism summing is commutative
	for _, v := range m {
		sum += v
	}
	return sum
}

func sliceRangeOK(s []int) int {
	sum := 0
	for _, v := range s {
		sum += v
	}
	return sum
}
