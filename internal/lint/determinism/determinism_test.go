package determinism_test

import (
	"testing"

	"invisifence/internal/lint/analysistest"
	"invisifence/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer)
}

// TestClockedPackage exercises the clocked tier: the fixture package is
// named sweepd, so naked time calls are findings while rand and
// map-range (deterministic-tier bans) pass.
func TestClockedPackage(t *testing.T) {
	analysistest.Run(t, "testdata/clock", determinism.Analyzer)
}
