package determinism_test

import (
	"testing"

	"invisifence/internal/lint/analysistest"
	"invisifence/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer)
}
