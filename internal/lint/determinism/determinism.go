// Package determinism forbids nondeterminism sources in the simulator's
// deterministic packages: wall-clock reads (time.Now/Since), the global
// math/rand generator, and map-range iteration (whose order leaks into
// anything it feeds). Determinism is the repo's foundational invariant —
// golden grids, the run cache, and the litmus corpus all assume identical
// inputs produce identical outputs.
//
// Seeded generators stay allowed: rand.New(rand.NewSource(seed)) is how the
// network models jitter reproducibly, so the rand.New/NewSource/NewZipf
// constructors (and all methods on a *rand.Rand) pass. A finding that is
// provably order-independent can be annotated with
// "//lint:allow determinism <reason>" on its line or the line above.
package determinism

import (
	"go/ast"
	"go/types"
	"path"

	"invisifence/internal/lint/analysis"
)

// deterministicPkgs names the packages (by final import-path element or
// package name) whose outputs must be bit-reproducible.
var deterministicPkgs = map[string]bool{
	"sim":         true,
	"network":     true,
	"coherence":   true,
	"fencesearch": true,
	"sweep":       true,
	"staticfence": true,
}

// randAllowed lists math/rand package-level constructors that are fine:
// they only wrap an explicit seed.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Analyzer is the check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, global math/rand, and map-range iteration in deterministic packages (sim, network, coherence, fencesearch, sweep, staticfence)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !deterministicPkgs[path.Base(pass.Pkg.Path())] && !deterministicPkgs[pass.Pkg.Name()] {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, n)
			case *ast.RangeStmt:
				checkRange(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	var id *ast.Ident
	switch e := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "call to time.%s in deterministic package %s: derive time from the simulated clock", fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on an explicitly-seeded *rand.Rand are fine
		}
		if randAllowed[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(), "call to global math/rand.%s in deterministic package %s: use rand.New(rand.NewSource(seed))", fn.Name(), pass.Pkg.Name())
	}
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(rs.Pos(), "map-range iteration in deterministic package %s: iteration order leaks into results; iterate sorted keys, or annotate //lint:allow determinism if provably order-independent", pass.Pkg.Name())
}
