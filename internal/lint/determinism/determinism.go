// Package determinism forbids nondeterminism sources in the simulator's
// deterministic packages: wall-clock reads (time.Now/Since), the global
// math/rand generator, and map-range iteration (whose order leaks into
// anything it feeds). Determinism is the repo's foundational invariant —
// golden grids, the run cache, and the litmus corpus all assume identical
// inputs produce identical outputs.
//
// Seeded generators stay allowed: rand.New(rand.NewSource(seed)) is how the
// network models jitter reproducibly, so the rand.New/NewSource/NewZipf
// constructors (and all methods on a *rand.Rand) pass. A finding that is
// provably order-independent can be annotated with
// "//lint:allow determinism <reason>" on its line or the line above.
//
// A second, narrower tier covers the clocked packages (sweepd): they are
// allowed randomness and map iteration, but every wall-clock read must go
// through the package's injectable Clock so watchdog deadlines and retry
// backoff stay testable — naked time.Now/time.Since/time.Sleep/time.After
// is a finding there. The Clock implementation itself carries the one
// sanctioned "//lint:allow determinism" annotation.
package determinism

import (
	"go/ast"
	"go/types"
	"path"

	"invisifence/internal/lint/analysis"
)

// deterministicPkgs names the packages (by final import-path element or
// package name) whose outputs must be bit-reproducible.
var deterministicPkgs = map[string]bool{
	"sim":         true,
	"network":     true,
	"coherence":   true,
	"fencesearch": true,
	"sweep":       true,
	"staticfence": true,
}

// clockedPkgs names the packages that must take time from an injectable
// Clock rather than the wall directly. They are not deterministic — a
// server's schedule depends on real concurrency — but their timeout and
// backoff logic must be drivable by a test double.
var clockedPkgs = map[string]bool{
	"sweepd": true,
}

// clockedForbidden lists the package-level time functions a clocked
// package must route through its Clock.
var clockedForbidden = map[string]bool{"Now": true, "Since": true, "Until": true, "Sleep": true, "After": true, "Tick": true, "NewTimer": true, "NewTicker": true}

// randAllowed lists math/rand package-level constructors that are fine:
// they only wrap an explicit seed.
var randAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// Analyzer is the check.
var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "forbid time.Now, global math/rand, and map-range iteration in deterministic packages (sim, network, coherence, fencesearch, sweep, staticfence); forbid naked time calls in clocked packages (sweepd)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	deterministic := deterministicPkgs[path.Base(pass.Pkg.Path())] || deterministicPkgs[pass.Pkg.Name()]
	clocked := clockedPkgs[path.Base(pass.Pkg.Path())] || clockedPkgs[pass.Pkg.Name()]
	if !deterministic && !clocked {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if deterministic {
					checkCall(pass, n)
				} else {
					checkClockedCall(pass, n)
				}
			case *ast.RangeStmt:
				if deterministic {
					checkRange(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// callTarget resolves the called function, if it can be named.
func callTarget(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch e := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = e.Sel
	case *ast.Ident:
		id = e
	default:
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	return fn
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := callTarget(pass, call)
	if fn == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(), "call to time.%s in deterministic package %s: derive time from the simulated clock", fn.Name(), pass.Pkg.Name())
		}
	case "math/rand", "math/rand/v2":
		sig, ok := fn.Type().(*types.Signature)
		if !ok || sig.Recv() != nil {
			return // methods on an explicitly-seeded *rand.Rand are fine
		}
		if randAllowed[fn.Name()] {
			return
		}
		pass.Reportf(call.Pos(), "call to global math/rand.%s in deterministic package %s: use rand.New(rand.NewSource(seed))", fn.Name(), pass.Pkg.Name())
	}
}

// checkClockedCall enforces the clocked-package rule: every wall-clock
// read or timer goes through the injectable Clock.
func checkClockedCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := callTarget(pass, call)
	if fn == nil || fn.Pkg().Path() != "time" {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods on a time.Time/Timer value are fine
	}
	if !clockedForbidden[fn.Name()] {
		return
	}
	pass.Reportf(call.Pos(), "naked time.%s in clocked package %s: go through the injectable Clock (Options.Clock) so deadlines and backoff are testable", fn.Name(), pass.Pkg.Name())
}

func checkRange(pass *analysis.Pass, rs *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rs.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	pass.Reportf(rs.Pos(), "map-range iteration in deterministic package %s: iteration order leaks into results; iterate sorted keys, or annotate //lint:allow determinism if provably order-independent", pass.Pkg.Name())
}
