package sweepd

import (
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"invisifence"
	"invisifence/internal/faultinject"
	"invisifence/internal/runcache"
	"invisifence/internal/sweep"
)

// chaosSeeds is the pinned seed list CI runs under -race: each seed is a
// deterministic fault schedule over every injection seam.
var chaosSeeds = []int64{1, 2, 3, 5, 8, 13, 21, 34, 55, 89}

// chaosSites is every seam the fault framework arms.
var chaosSites = []string{
	runcache.SiteRead, runcache.SiteWrite, runcache.SiteLeader,
	sweep.SiteWorker, SiteCell,
}

// TestChaosSuite drives the server through the pinned fault schedules —
// cache I/O errors, corrupt entries, leader panics, slow workers, slow
// and failing cells — and holds the robustness invariants: no plan
// panics the server, every campaign reaches a terminal state, terminal
// counters sum to the cell total, and any campaign that reports success
// renders a table byte-identical to the fault-free run.
func TestChaosSuite(t *testing.T) {
	spec := tinySpec()
	spec.Variants = []string{"sc", "invisi-sc"}
	spec.Seeds = []int64{1, 2, 3} // 6 cells
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// The fault-free baseline table every successful chaos campaign must
	// reproduce exactly.
	baseline := chaosTable(t, Options{Workers: 4, Run: chaosRun}, spec)

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			plan := faultinject.RandomPlan(seed, chaosSites)
			srv, err := New(Options{
				Workers:        4,
				CacheDir:       t.TempDir(),
				MaxCellRetries: 4,
				RetryBackoff:   time.Millisecond,
				CellTimeout:    -1, // injected delays are real sleeps; no false timeouts
				Faults:         plan,
				Run:            chaosRun,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Shutdown()
			c, err := srv.Submit(spec, jobs)
			if err != nil {
				t.Fatal(err)
			}
			waitFinished(t, c)
			st := c.Status()

			// Terminal, and the terminal counters account for every cell.
			if st.State == "running" {
				t.Fatalf("campaign not terminal: %+v", st)
			}
			cc := st.Cells
			if sum := cc.Cached + cc.Simulated + cc.Deduped + cc.Failed + cc.Aborted; sum != cc.Total || cc.Total != len(jobs) {
				t.Fatalf("counters do not sum to total: %+v", cc)
			}
			if cc.Queued != 0 || cc.Running != 0 {
				t.Fatalf("terminal campaign with live gauges: %+v", cc)
			}

			// A successful campaign is indistinguishable from a fault-free
			// one at the API: byte-identical table.
			if st.State == "done" {
				ts := httptest.NewServer(srv.Handler())
				if got := getTable(t, ts.URL, c.ID()); got != baseline {
					t.Fatalf("seed %d: successful campaign's table diverged from fault-free run:\n%q\nvs\n%q", seed, got, baseline)
				}
				ts.Close()
			}

			// The telemetry surface stays coherent under faults.
			s := srv.Stats()
			if s.CellsCached+s.CellsSimulated+s.CellsDeduped+s.CellsFailed+s.CellsAborted != s.CellsScheduled {
				t.Fatalf("server cell counters do not sum: %+v", s)
			}
			if fired := srv.inj.Stats(); fired.Total() == 0 && len(plan.Rules) > 0 {
				t.Logf("seed %d: plan armed %d rules, none fired", seed, len(plan.Rules))
			}
		})
	}
}

// chaosRun is the chaos suite's cell implementation: a deterministic
// function of the config, so tables are comparable across servers.
func chaosRun(cfg invisifence.Config) (invisifence.Result, error) {
	return fakeResult(cfg), nil
}

// chaosTable runs one campaign to completion on a fresh server and
// returns its rendered table.
func chaosTable(t *testing.T, opts Options, spec invisifence.SweepSpec) string {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	id := postSpec(t, ts.URL, spec)
	if st := pollDone(t, ts.URL, id); st.State != "done" {
		t.Fatalf("baseline campaign: %+v", st)
	}
	return getTable(t, ts.URL, id)
}

// TestChaosRecovery layers a crash on top of a fault plan: a campaign
// admitted under injected faults is abandoned mid-flight, recovered by a
// second (fault-free) server on the same cache dir, and must complete
// with the fault-free table — injected corruption in the first process
// cannot poison the resumed run, because corrupt entries are quarantined
// and re-simulated.
func TestChaosRecovery(t *testing.T) {
	spec := tinySpec()
	spec.Variants, spec.Seeds = []string{"sc"}, []int64{1, 2, 3, 4}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	baseline := chaosTable(t, Options{Workers: 4, Run: chaosRun}, spec)

	for _, seed := range chaosSeeds[:4] {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			dir := t.TempDir()
			// The last cell wedges in server 1, so the campaign (almost)
			// never finishes before the crash — unless injected faults
			// fail that cell outright, in which case there is nothing
			// left to recover and the seed degenerates to the plain
			// chaos invariants.
			release := make(chan struct{})
			releaseOnce := sync.OnceFunc(func() { close(release) })
			srv1, err := New(Options{
				Workers:        2,
				CacheDir:       dir,
				MaxCellRetries: 1,
				RetryBackoff:   time.Millisecond,
				Faults:         faultinject.RandomPlan(seed, chaosSites),
				Run: func(cfg invisifence.Config) (invisifence.Result, error) {
					if cfg.Seed == 4 {
						<-release
					}
					return fakeResult(cfg), nil
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			// Release the wedge and drain the abandoned server before the
			// temp dir is removed: the freed goroutine writes to the cache.
			t.Cleanup(func() { releaseOnce(); srv1.ShutdownTimeout(time.Minute) })
			c1, err := srv1.Submit(spec, jobs)
			if err != nil {
				t.Fatal(err)
			}
			// Let the campaign make some progress, then "crash": abandon
			// srv1 without draining.
			deadline := time.Now().Add(time.Minute)
			for c1.Status().Cells.Queued == len(jobs) && time.Now().Before(deadline) {
				time.Sleep(100 * time.Microsecond)
			}

			srv2, err := New(Options{Workers: 4, CacheDir: dir, Run: chaosRun})
			if err != nil {
				t.Fatal(err)
			}
			defer srv2.Shutdown()
			if err := srv2.Recover(); err != nil {
				// The only sanctioned failure: server 1 finished the
				// campaign and retired the journal mid-recovery.
				if !c1.Finished() {
					t.Fatal(err)
				}
				return
			}
			c2, ok := srv2.Campaign(c1.ID())
			if !ok {
				// The first process finished (and retired the journal)
				// before the crash; nothing owed.
				if !c1.Finished() {
					t.Fatalf("campaign %s neither finished nor recovered", c1.ID())
				}
				return
			}
			waitFinished(t, c2)
			st := c2.Status()
			if st.State != "done" || !st.Resumed {
				t.Fatalf("recovered campaign: %+v", st)
			}
			ts := httptest.NewServer(srv2.Handler())
			defer ts.Close()
			if got := getTable(t, ts.URL, c2.ID()); got != baseline {
				t.Fatalf("seed %d: recovered table diverged:\n%q\nvs\n%q", seed, got, baseline)
			}
		})
	}
}
