package sweepd

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"

	"invisifence"
)

// walLines encodes records as journal bytes.
func walLines(t *testing.T, recs ...journalRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestReplayJournalReducesRecords pins the replay semantics: the spec
// record identifies the campaign, start-without-cell means in flight,
// duplicated terminal records are idempotent, and cell index 0
// round-trips (no omitempty on Cell).
func TestReplayJournalReducesRecords(t *testing.T) {
	spec := tinySpec()
	data := walLines(t,
		journalRecord{T: recSpec, ID: "c0003", Spec: &spec},
		journalRecord{T: recStart, Cell: 0, Attempt: 0},
		journalRecord{T: recStart, Cell: 1, Attempt: 0},
		journalRecord{T: recCell, Cell: 0, State: "simulated"},
		journalRecord{T: recRetry, Cell: 1},
		journalRecord{T: recStart, Cell: 1, Attempt: 1},
		journalRecord{T: recStart, Cell: 2, Attempt: 0},
		journalRecord{T: recCell, Cell: 0, State: "simulated"}, // duplicate
	)
	st := replayJournal(data)
	if st.id != "c0003" || st.spec == nil {
		t.Fatalf("spec record: id=%q spec=%v", st.id, st.spec)
	}
	if st.done[0] != "simulated" || len(st.done) != 1 {
		t.Fatalf("done: %v", st.done)
	}
	if st.started[1] != 1 || st.started[0] != 0 || st.started[2] != 0 {
		t.Fatalf("started: %v", st.started)
	}
	if st.retries[1] != 1 {
		t.Fatalf("retries: %v", st.retries)
	}
	// Cells 1 and 2 started but never finished: in flight at the crash.
	if got := st.inFlight(); got != 2 {
		t.Fatalf("inFlight: %d", got)
	}
	if st.terminal != "" {
		t.Fatalf("terminal: %q", st.terminal)
	}
	// A done record marks the campaign terminal.
	st2 := replayJournal(append(data, walLines(t, journalRecord{T: recDone, State: "done"})...))
	if st2.terminal != "done" {
		t.Fatalf("terminal after done record: %q", st2.terminal)
	}
}

// TestReplayJournalToleratesDamage checks garbage lines, a truncated
// tail, and hostile record values narrow recovery without panicking.
func TestReplayJournalToleratesDamage(t *testing.T) {
	spec := tinySpec()
	good := walLines(t,
		journalRecord{T: recSpec, ID: "c0001", Spec: &spec},
		journalRecord{T: recStart, Cell: 0},
		journalRecord{T: recCell, Cell: 0, State: "cached"},
	)
	damaged := append([]byte("not json at all\n{\"t\":\"cell\",\"cell\":-5,\"state\":\"x\"}\n"), good...)
	damaged = append(damaged, []byte(`{"t":"start","cel`)...) // crash mid-write
	st := replayJournal(damaged)
	if st.id != "c0001" || st.done[0] != "cached" || st.inFlight() != 0 {
		t.Fatalf("damaged replay: %+v", st)
	}
	if len(st.done) != 1 || len(st.started) != 1 {
		t.Fatalf("hostile cell indices leaked in: %+v", st)
	}
}

// FuzzJournalReplay is the satellite fuzz target: replayJournal never
// panics on arbitrary bytes, and replay is idempotent — the same bytes
// reduce to the same state twice (double replay), and replaying a
// prefix plus the full log equals replaying the full log (records are
// reducers, not deltas that could double-apply).
func FuzzJournalReplay(f *testing.F) {
	spec := invisifence.SweepSpec{Workloads: []string{"barnes"}, Variants: []string{"sc"}, Seeds: []int64{1, 2}}
	b, _ := json.Marshal(journalRecord{T: recSpec, ID: "c0001", Spec: &spec})
	f.Add(append(b, '\n'))
	f.Add([]byte(`{"t":"start","cell":0}` + "\n" + `{"t":"cell","cell":0,"state":"simulated"}` + "\n"))
	f.Add([]byte(`{"t":"spec","id":"c0002"}` + "\n" + `{"t":"done","state":"done"}`))
	f.Add([]byte("garbage\n\x00\xff\n{\"t\":\"retry\",\"cell\":3}\n"))
	f.Add([]byte(`{"t":"cell","cell":-1,"state":"failed","err":"x"}`))
	f.Add([]byte(`{"t":"start","cell":999999999,"attempt":-7}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		st1 := replayJournal(data)
		st2 := replayJournal(data)
		if !reflect.DeepEqual(st1, st2) {
			t.Fatalf("replay not idempotent:\n%+v\n%+v", st1, st2)
		}
		// Appending the full log to any newline-aligned prefix of itself
		// must reduce to the full log's state: every record overwrites,
		// so re-seeing a prefix cannot corrupt the reduction.
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			st3 := replayJournal(append(append([]byte{}, data[:i+1]...), data...))
			if !reflect.DeepEqual(st3.done, st1.done) || st3.terminal != st1.terminal || st3.id != st1.id {
				t.Fatalf("prefix+full replay diverged:\n%+v\n%+v", st3, st1)
			}
		}
		_ = st1.inFlight()
	})
}
