package sweepd

import "time"

// Clock is the server's only source of time. Every retry backoff,
// watchdog deadline, and drain bound goes through it, so chaos tests
// substitute a manual clock and replay timeout schedules
// deterministically (the determinism lint forbids naked time.Now in
// this package).
type Clock interface {
	// Now returns the current wall-clock time.
	Now() time.Time
	// Sleep pauses the calling goroutine for d.
	Sleep(d time.Duration)
	// After returns a channel that receives after d elapses.
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock: plain wall-clock time.
type realClock struct{}

// realClock's three methods are the package's only sanctioned naked time
// calls: everything else must go through a Clock value.

func (realClock) Now() time.Time { return time.Now() } //lint:allow determinism the injectable clock's wall-clock read

func (realClock) Sleep(d time.Duration) { time.Sleep(d) } //lint:allow determinism the injectable clock's sleep

func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) } //lint:allow determinism the injectable clock's timer
