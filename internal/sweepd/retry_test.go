package sweepd

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"invisifence"
)

// manualClock is the chaos-test Clock: After channels are handed to the
// test to fire explicitly, and Sleep blocks until the test releases it.
// Timeout and backoff schedules become fully deterministic.
type manualClock struct {
	afters chan chan time.Time // every After's channel, in call order
	sleeps chan struct{}       // each receive releases one Sleep
}

func newManualClock() *manualClock {
	return &manualClock{
		afters: make(chan chan time.Time, 16),
		sleeps: make(chan struct{}),
	}
}

func (c *manualClock) Now() time.Time        { return time.Time{} }
func (c *manualClock) Sleep(d time.Duration) { <-c.sleeps }
func (c *manualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.afters <- ch
	return ch
}

// fire expires the next outstanding After.
func (c *manualClock) fire(t *testing.T) {
	t.Helper()
	select {
	case ch := <-c.afters:
		ch <- time.Time{}
	case <-time.After(10 * time.Second):
		t.Fatal("no outstanding watchdog timer to fire")
	}
}

// TestWatchdogTimesOutWedgedCell wedges a cell forever and fires the
// watchdog on every attempt: the cell — not the campaign's process —
// fails with a deadline error, timeouts and retries are counted, and
// the drain is not blocked by the wedged simulation.
func TestWatchdogTimesOutWedgedCell(t *testing.T) {
	clock := newManualClock()
	release := make(chan struct{})
	t.Cleanup(sync.OnceFunc(func() { close(release) }))
	srv, err := New(Options{
		Workers:        2,
		MaxCellRetries: 1,
		RetryBackoff:   -1, // no backoff: Sleep is never called
		CellTimeout:    time.Second,
		Clock:          clock,
		Run: func(cfg invisifence.Config) (invisifence.Result, error) {
			<-release // wedged
			return fakeResult(cfg), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec()
	spec.Variants, spec.Seeds = []string{"sc"}, []int64{1}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.Submit(spec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Both attempts of the wedged cell time out.
	clock.fire(t)
	clock.fire(t)
	waitFinished(t, c)

	st := c.Status()
	if st.State != "failed" || st.Cells.Failed != 1 {
		t.Fatalf("status: %+v", st)
	}
	if st.Retries != 1 {
		t.Fatalf("retries: %+v", st)
	}
	if len(st.Failures) != 1 || !strings.Contains(st.Failures[0].Error, "cell deadline") {
		t.Fatalf("failures: %+v", st.Failures)
	}
	if s := srv.Stats(); s.CellTimeouts != 2 || s.CellRetries != 1 || s.CellsFailed != 1 {
		t.Fatalf("server stats: %+v", s)
	}
	// The wedged goroutine is abandoned, not holding a worker: the drain
	// completes immediately.
	if !srv.ShutdownTimeout(30 * time.Second) {
		t.Fatal("drain blocked by an abandoned cell")
	}
}

// TestLateResultCollectedOnRetry times out an attempt whose simulation
// then finishes in the background: the abandoned goroutine publishes to
// the cache, and the retry answers from it without simulating again.
func TestLateResultCollectedOnRetry(t *testing.T) {
	clock := newManualClock()
	gate := make(chan struct{})
	var runs atomic.Int64
	srv, err := New(Options{
		Workers:        1,
		CacheDir:       t.TempDir(),
		MaxCellRetries: 2,
		CellTimeout:    time.Second,
		Clock:          clock,
		Run: func(cfg invisifence.Config) (invisifence.Result, error) {
			runs.Add(1)
			<-gate
			return fakeResult(cfg), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec()
	spec.Variants, spec.Seeds = []string{"sc"}, []int64{1}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.Submit(spec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	clock.fire(t) // attempt 0 times out; its simulation keeps running
	close(gate)   // the abandoned simulation finishes and publishes
	// Wait for the background publish, then release the retry's backoff.
	key := c.keys[0]
	for {
		var res invisifence.Result
		if ok, _ := srv.cache.Get(key, &res); ok {
			break
		}
		time.Sleep(time.Millisecond)
	}
	clock.sleeps <- struct{}{} // backoff before attempt 1
	waitFinished(t, c)

	st := c.Status()
	if st.State != "done" || st.Cells.Cached != 1 {
		t.Fatalf("status: %+v", st)
	}
	if n := runs.Load(); n != 1 {
		t.Fatalf("%d simulations, want 1 (retry must answer from cache)", n)
	}
	if s := srv.Stats(); s.CellTimeouts != 1 || s.CellRetries != 1 || s.CellsCached != 1 {
		t.Fatalf("server stats: %+v", s)
	}
	srv.Shutdown()
}

// TestTransientFailureRetriedToSuccess fails a cell's first attempt and
// lets the second succeed: the campaign completes, with the retry
// visible in status and telemetry.
func TestTransientFailureRetriedToSuccess(t *testing.T) {
	var attempts atomic.Int64
	srv, err := New(Options{
		Workers:        2,
		MaxCellRetries: 2,
		RetryBackoff:   -1,
		Run: func(cfg invisifence.Config) (invisifence.Result, error) {
			if attempts.Add(1) == 1 {
				return invisifence.Result{}, fmt.Errorf("transient: simulated EAGAIN")
			}
			return fakeResult(cfg), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	spec := tinySpec()
	spec.Variants, spec.Seeds = []string{"sc"}, []int64{1}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	c, err := srv.Submit(spec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	waitFinished(t, c)
	st := c.Status()
	if st.State != "done" || st.Cells.Simulated != 1 || st.Retries != 1 {
		t.Fatalf("status: %+v", st)
	}
	if s := srv.Stats(); s.CellRetries != 1 || s.CellTimeouts != 0 {
		t.Fatalf("server stats: %+v", s)
	}
}

// TestBackoffSchedule pins the capped exponential: base, 2x, 4x, 8x,
// then flat at 8x.
func TestBackoffSchedule(t *testing.T) {
	s := &Server{opts: Options{RetryBackoff: 10 * time.Millisecond}}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for k, w := range want {
		if got := s.backoff(k + 1); got != w*time.Millisecond {
			t.Fatalf("backoff(%d) = %v, want %v", k+1, got, w*time.Millisecond)
		}
	}
	if got := (&Server{opts: Options{RetryBackoff: -1}}).backoff(3); got != 0 {
		t.Fatalf("negative base backoff = %v", got)
	}
}

// waitFinished blocks until every cell of the campaign is terminal.
func waitFinished(t *testing.T, c *Campaign) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for !c.Finished() {
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never finished: %+v", c.ID(), c.Status())
		}
		time.Sleep(time.Millisecond)
	}
}
