package sweepd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"invisifence"
	"invisifence/internal/faultinject"
	"invisifence/internal/runcache"
	"invisifence/internal/stats"
	"invisifence/internal/sweep"
)

// SubmitResponse acknowledges an admitted campaign (202).
type SubmitResponse struct {
	ID string `json:"id"`
	// Cells is the expanded, deduplicated cell count.
	Cells int `json:"cells"`
	// Location is the campaign's status URL.
	Location string `json:"location"`
}

// CellCounts classifies a campaign's cells by state. Queued and Running
// are gauges; the terminal counters are final. Exactly one terminal
// state per cell, so Cached+Simulated+Deduped+Failed+Aborted == Total
// once the campaign finishes.
type CellCounts struct {
	Total     int `json:"total"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Cached    int `json:"cached"`
	Simulated int `json:"simulated"`
	Deduped   int `json:"deduped"`
	Failed    int `json:"failed"`
	Aborted   int `json:"aborted"`
}

// CellFailure identifies one failed cell.
type CellFailure struct {
	Cell     int    `json:"cell"`
	Workload string `json:"workload"`
	Variant  string `json:"variant"`
	Seed     int64  `json:"seed"`
	Error    string `json:"error"`
}

// StatusResponse is one campaign's wire status.
type StatusResponse struct {
	ID string `json:"id"`
	// State is "running" until every cell is terminal, then "done"
	// (all cells carry results), "failed" (>= 1 failed cell), or
	// "aborted" (>= 1 cell abandoned by shutdown).
	State string     `json:"state"`
	Cells CellCounts `json:"cells"`
	// Retries counts cell attempts beyond the first across the campaign;
	// Resumed marks a campaign re-admitted from its journal after a
	// restart.
	Retries  int           `json:"retries,omitempty"`
	Resumed  bool          `json:"resumed,omitempty"`
	Failures []CellFailure `json:"failures,omitempty"`
}

// Event is one NDJSON progress line: a cell state change (Cell >= 0) or
// the campaign's terminal announcement (Cell == -1). Seq is dense from 0
// per campaign and Done counts terminal cells at emission time, so a
// replayed stream reconstructs progress exactly.
type Event struct {
	Seq   int    `json:"seq"`
	Cell  int    `json:"cell"`
	State string `json:"state"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
}

// ErrorResponse is the body of every non-2xx JSON reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// StatszResponse is the /statsz telemetry snapshot. Cache carries the
// quarantine/degraded counters, Pool the steal/drop counters, Server the
// retry/timeout/recovery counters, and Faults the fired-fault counters
// of an armed injection plan (all zero in production).
type StatszResponse struct {
	Server    stats.ServerStats    `json:"server"`
	Cache     runcache.Stats       `json:"cache"`
	Flight    runcache.FlightStats `json:"flight"`
	Pool      sweep.PoolStats      `json:"pool"`
	Faults    faultinject.Stats    `json:"faults"`
	InFlight  []string             `json:"in_flight,omitempty"`
	Workers   int                  `json:"workers"`
	Draining  bool                 `json:"draining"`
	Replaying bool                 `json:"replaying"`
}

// maxSpecBytes bounds a POST /sweeps body.
const maxSpecBytes = 1 << 20

// maxNodes bounds any single cell's node count (and the machine
// override's dimensions): far beyond anything the simulator is useful
// for, and small enough that torus factorization is trivially cheap.
const maxNodes = 4096

// DecodeSpec strictly parses and validates a SweepSpec: unknown fields,
// trailing data, negative scale, unknown workloads, node counts beyond
// maxNodes, and grids larger than maxCells are rejected, and axis-level
// errors (unknown variants, negative depths, bad node counts) surface
// from the expansion. On success it returns the spec alongside its
// expanded, deduplicated jobs — an accepted spec always re-encodes
// canonically (json.Marshal(spec) round-trips to an identical spec).
func DecodeSpec(data []byte, maxCells int) (invisifence.SweepSpec, []invisifence.Config, error) {
	var spec invisifence.SweepSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return invisifence.SweepSpec{}, nil, fmt.Errorf("parsing spec: %w", err)
	}
	if dec.More() {
		return invisifence.SweepSpec{}, nil, fmt.Errorf("parsing spec: trailing data after JSON object")
	}
	if spec.Scale < 0 {
		return invisifence.SweepSpec{}, nil, fmt.Errorf("invalid spec: negative scale %v", spec.Scale)
	}
	known := make(map[string]bool)
	for _, w := range invisifence.Workloads() {
		known[w] = true
	}
	for _, w := range spec.Workloads {
		if !known[w] {
			return invisifence.SweepSpec{}, nil, fmt.Errorf("invalid spec: unknown workload %q", w)
		}
	}
	for _, n := range spec.Nodes {
		if n > maxNodes {
			return invisifence.SweepSpec{}, nil, fmt.Errorf("invalid spec: node count %d exceeds the limit of %d", n, maxNodes)
		}
	}
	if m := spec.Machine; m != nil {
		if m.Width < 0 || m.Height < 0 || m.Width > maxNodes || m.Height > maxNodes || m.Width*m.Height > maxNodes {
			return invisifence.SweepSpec{}, nil, fmt.Errorf("invalid spec: machine dimensions %dx%d exceed the limit of %d nodes", m.Width, m.Height, maxNodes)
		}
	}
	if maxCells > 0 {
		// The grid size is the product of axis lengths (empty axes default
		// to one value; empty workloads to all of them). Checking after
		// every factor refuses a hostile 10^12-cell grid before expansion
		// allocates anything, and before the product can overflow.
		cells := len(spec.Workloads)
		if cells == 0 {
			cells = len(invisifence.Workloads())
		}
		for _, n := range []int{
			len(spec.Variants), len(spec.SBDepths), len(spec.Checkpoints),
			len(spec.Nodes), len(spec.LinkBandwidths), len(spec.Seeds),
		} {
			if n > 1 {
				cells *= n
			}
			if cells > maxCells {
				return invisifence.SweepSpec{}, nil, fmt.Errorf("invalid spec: grid size %d exceeds the per-sweep limit of %d cells", cells, maxCells)
			}
		}
	}
	jobs, err := spec.Jobs()
	if err != nil {
		return invisifence.SweepSpec{}, nil, fmt.Errorf("invalid spec: %w", err)
	}
	return spec, jobs, nil
}

// Handler returns the server's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sweeps", s.handleSubmit)
	mux.HandleFunc("GET /sweeps", s.handleList)
	mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	mux.HandleFunc("GET /sweeps/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /sweeps/{id}/table", s.handleTable)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		s.count(func(t *stats.ServerStats) { t.SpecsRejected++ })
		writeError(w, http.StatusBadRequest, "reading spec: %v", err)
		return
	}
	spec, jobs, err := DecodeSpec(body, s.opts.MaxCells)
	if err != nil {
		s.count(func(t *stats.ServerStats) { t.SpecsRejected++ })
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	c, err := s.Submit(spec, jobs)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, SubmitResponse{
		ID: c.ID(), Cells: len(jobs), Location: "/sweeps/" + c.ID(),
	})
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	campaigns := s.Campaigns()
	out := make([]StatusResponse, len(campaigns))
	for i, c := range campaigns {
		out[i] = c.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

// lookup resolves the {id} path value, writing the 404 itself on a miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.Campaign(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no campaign %q", id)
	}
	return c, ok
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if c, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, c.Status())
	}
}

// handleEvents streams the campaign's event log as NDJSON: a full replay
// from seq 0, then a live tail until the campaign reaches a terminal
// state or the client disconnects.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	ctx := r.Context()
	// WaitEvent blocks on a condition variable; wake it when the client
	// goes away so the handler can return.
	stop := ctx.Done()
	go func() {
		<-stop
		c.Interrupt()
	}()
	enc := json.NewEncoder(w)
	for seq := 0; ; seq++ {
		e, ok := c.WaitEvent(seq, func() bool { return ctx.Err() != nil })
		if !ok {
			return
		}
		if err := enc.Encode(e); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleTable renders the finished campaign's result table exactly as
// `cmd/sweep` prints it offline — byte-identical output is the server's
// determinism contract, enforced by the integration suite and the CI
// smoke job. ?markdown=1 selects the markdown rendering.
func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	c, ok := s.lookup(w, r)
	if !ok {
		return
	}
	out, err := c.Outcome()
	if err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	t := out.Table()
	// cmd/sweep emits the table via Println: rendering plus one final
	// newline. Reproduce that exactly.
	if r.URL.Query().Get("markdown") != "" {
		fmt.Fprintln(w, t.Markdown())
	} else {
		fmt.Fprintln(w, t.String())
	}
}

// handleHealth is pure liveness: the process answers, so it is alive.
// Readiness (draining, journal replay) lives on /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReady reports whether the server should receive traffic: 503
// while journal replay is in progress (resumed campaigns are still
// being re-admitted) or while draining (new specs would be refused).
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	switch {
	case s.Draining():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
	case s.Replaying():
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "replaying")
	default:
		fmt.Fprintln(w, "ready")
	}
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, StatszResponse{
		Server:    s.Stats(),
		Cache:     s.cache.Stats(),
		Flight:    s.flight.Stats(),
		Pool:      s.pool.Stats(),
		Faults:    s.inj.Stats(),
		InFlight:  s.flight.InFlight(),
		Workers:   s.pool.Workers(),
		Draining:  s.Draining(),
		Replaying: s.Replaying(),
	})
}
