package sweepd

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"invisifence"
)

// TestCrashRecoveryResumesCampaign is the crash-safety acceptance test,
// run in-process: a campaign is killed mid-flight (the server is simply
// abandoned, as kill -9 would), a second server on the same cache dir
// replays the journal, re-admits the campaign under its original ID, and
// completes it — finished cells answer from the cache, the cells in
// flight at the kill are the only ones simulated twice, and the resumed
// table is byte-identical to an uninterrupted run of the same spec.
func TestCrashRecoveryResumesCampaign(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec() // 4 cells
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	// Server 1: one worker; the first cell completes, the second wedges
	// mid-simulation, two never start. No Shutdown — this is the crash.
	release := make(chan struct{})
	releaseOnce := sync.OnceFunc(func() { close(release) })
	wedged := make(chan struct{})
	var before atomic.Int64
	srv1, err := New(Options{Workers: 1, CacheDir: dir, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		if before.Add(1) == 2 {
			close(wedged)
			<-release // wedged until test cleanup
		}
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	// Release the wedge and drain the abandoned server before the temp
	// dir is removed: the freed goroutine writes to the cache.
	t.Cleanup(func() { releaseOnce(); srv1.ShutdownTimeout(time.Minute) })
	c1, err := srv1.Submit(spec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	<-wedged // cell 0 finished and journaled; cell 1 is in flight

	// The WAL on disk describes exactly that state.
	wal := journalPath(filepath.Join(dir, "journal"), c1.ID())
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	st := replayJournal(data)
	if st.spec == nil || st.terminal != "" {
		t.Fatalf("pre-crash journal: %+v", st)
	}
	inFlight := st.inFlight()
	if inFlight != 1 || len(st.done) != 1 {
		t.Fatalf("pre-crash journal: %d in flight, done %v", inFlight, st.done)
	}

	// Server 2 on the same dir: unready until Recover finishes, then the
	// campaign is back under its original ID and completes.
	var after atomic.Int64
	srv2, err := New(Options{Workers: 2, CacheDir: dir, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		after.Add(1)
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	if !srv2.Replaying() {
		t.Fatal("server with pending journals is not replaying")
	}
	if err := srv2.Recover(); err != nil {
		t.Fatal(err)
	}
	if srv2.Replaying() {
		t.Fatal("still replaying after Recover")
	}
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	st2 := pollDone(t, ts.URL, c1.ID())
	if st2.State != "done" || !st2.Resumed {
		t.Fatalf("resumed campaign: %+v", st2)
	}
	// The journaled-finished cell answers from the cache; everything
	// else simulates. Cells simulated twice == cells in flight at the
	// kill.
	if st2.Cells.Cached != 1 || st2.Cells.Simulated != 3 {
		t.Fatalf("resumed cell counters: %+v", st2.Cells)
	}
	resim := int(before.Load()+after.Load()) - len(jobs)
	if resim != inFlight {
		t.Fatalf("%d cells re-simulated, %d were in flight at the kill", resim, inFlight)
	}
	resumedTable := getTable(t, ts.URL, c1.ID())

	// The retired journal is gone: recovery is owed exactly once.
	if _, err := os.Stat(wal); !os.IsNotExist(err) {
		t.Fatal("journal of completed campaign still on disk")
	}
	if s := srv2.Stats(); s.CampaignsRecovered != 1 || s.CampaignsCompleted != 1 {
		t.Fatalf("server stats: %+v", s)
	}

	// Byte-identical to an uninterrupted run of the same spec.
	srv3, err := New(Options{Workers: 4, CacheDir: t.TempDir(), Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv3.Shutdown()
	ts3 := httptest.NewServer(srv3.Handler())
	defer ts3.Close()
	id3 := postSpec(t, ts3.URL, spec)
	pollDone(t, ts3.URL, id3)
	if uninterrupted := getTable(t, ts3.URL, id3); resumedTable != uninterrupted {
		t.Fatalf("resumed table diverged from uninterrupted run:\n%s\nvs\n%s", resumedTable, uninterrupted)
	}
}

// TestRecoverRemovesTerminalJournal checks a WAL whose campaign already
// finished (crash between the done record and the unlink) is removed,
// not resumed.
func TestRecoverRemovesTerminalJournal(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	spec := tinySpec()
	wal := journalPath(jdir, "c0002")
	if err := os.WriteFile(wal, walLines(t,
		journalRecord{T: recSpec, ID: "c0002", Spec: &spec},
		journalRecord{T: recDone, State: "done"},
	), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{CacheDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	if err := srv.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(wal); !os.IsNotExist(err) {
		t.Fatal("terminal journal survived Recover")
	}
	if _, ok := srv.Campaign("c0002"); ok {
		t.Fatal("terminal journal was resumed")
	}
	if s := srv.Stats(); s.CampaignsRecovered != 0 || s.JournalErrors != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestRecoverSetsAsideBadJournal checks an unusable WAL is renamed .bad
// (so it cannot re-trigger recovery), counted, and does not stop other
// journals from resuming.
func TestRecoverSetsAsideBadJournal(t *testing.T) {
	dir := t.TempDir()
	jdir := filepath.Join(dir, "journal")
	if err := os.MkdirAll(jdir, 0o755); err != nil {
		t.Fatal(err)
	}
	bad := journalPath(jdir, "c0001")
	if err := os.WriteFile(bad, []byte("complete garbage, no spec record\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spec := tinySpec()
	good := journalPath(jdir, "c0002")
	if err := os.WriteFile(good, walLines(t,
		journalRecord{T: recSpec, ID: "c0002", Spec: &spec},
	), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Options{Workers: 2, CacheDir: dir, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	err = srv.Recover()
	if err == nil || !strings.Contains(err.Error(), "no usable spec record") {
		t.Fatalf("Recover error: %v", err)
	}
	if _, err := os.Stat(bad + ".bad"); err != nil {
		t.Fatalf("bad journal not set aside: %v", err)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Fatal("bad journal still in place")
	}
	c, ok := srv.Campaign("c0002")
	if !ok {
		t.Fatal("good journal was not resumed")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if st := pollDone(t, ts.URL, c.ID()); st.State != "done" {
		t.Fatalf("resumed campaign: %+v", st)
	}
	if s := srv.Stats(); s.JournalErrors != 1 || s.CampaignsRecovered != 1 {
		t.Fatalf("stats: %+v", s)
	}

	// Fresh submissions continue the sequence past every journaled ID:
	// no collision with the resumed campaign.
	id := postSpec(t, ts.URL, tinySpec())
	if id != "c0003" {
		t.Fatalf("post-recovery campaign ID %q, want c0003", id)
	}
}
