package sweepd

import (
	"fmt"
	"sync"

	"invisifence"
)

// cellState is one cell's position in its lifecycle. Exactly one
// terminal state is reached per cell.
type cellState uint8

const (
	cellQueued cellState = iota
	cellRunning
	// Terminal states.
	cellCached    // answered by the persistent cache
	cellSimulated // simulated by this campaign's cell (flight leader)
	cellDeduped   // shared another in-flight cell's simulation (flight follower)
	cellFailed    // simulation errored or panicked
	cellAborted   // abandoned in the queue by a graceful shutdown
)

// String implements fmt.Stringer; the names double as wire states.
func (s cellState) String() string {
	switch s {
	case cellQueued:
		return "queued"
	case cellRunning:
		return "running"
	case cellCached:
		return "cached"
	case cellSimulated:
		return "simulated"
	case cellDeduped:
		return "deduped"
	case cellFailed:
		return "failed"
	case cellAborted:
		return "aborted"
	}
	return "invalid"
}

func (s cellState) terminal() bool { return s >= cellCached }

// Campaign is one admitted spec: its expanded cells, their states and
// results, and the event log that clients tail. All mutation goes
// through transition, which appends exactly one event per state change,
// so an event-stream replay reconstructs the cell counters exactly.
type Campaign struct {
	id   string
	spec invisifence.SweepSpec
	jobs []invisifence.Config
	keys []string

	// jl is the campaign's durable journal (nil when journaling is
	// disabled); resumed marks a campaign re-admitted from a journal by
	// Recover. Both are set before any cell is scheduled and never
	// change.
	jl      *journal
	resumed bool

	mu       sync.Mutex
	cond     *sync.Cond
	states   []cellState
	results  []invisifence.Result
	errs     []string
	counts   CellCounts
	events   []Event
	retries  int
	finished bool
	// counted marks the campaign's terminal telemetry as applied
	// (finishCampaign runs once per campaign).
	counted bool
}

func newCampaign(id string, spec invisifence.SweepSpec, jobs []invisifence.Config) *Campaign {
	keys := make([]string, len(jobs))
	for i, cfg := range jobs {
		keys[i] = invisifence.ResultKey(cfg)
	}
	c := &Campaign{
		id:      id,
		spec:    spec,
		jobs:    jobs,
		keys:    keys,
		states:  make([]cellState, len(jobs)),
		results: make([]invisifence.Result, len(jobs)),
		errs:    make([]string, len(jobs)),
		counts:  CellCounts{Total: len(jobs), Queued: len(jobs)},
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// ID returns the campaign's server-assigned identifier.
func (c *Campaign) ID() string { return c.id }

// journal appends one record to the campaign's WAL (no-op when
// journaling is disabled).
func (c *Campaign) journal(r journalRecord) { c.jl.record(r) }

// noteRetry counts one scheduled cell retry and journals it.
func (c *Campaign) noteRetry(i int) {
	c.mu.Lock()
	c.retries++
	c.mu.Unlock()
	c.jl.record(journalRecord{T: recRetry, Cell: i})
}

// transition moves cell i to state to, recording the result or error
// that terminal states carry, and appends the corresponding event.
func (c *Campaign) transition(i int, to cellState, res *invisifence.Result, errMsg string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	from := c.states[i]
	if from.terminal() {
		// A cell finishes exactly once; a second transition is a
		// scheduler bug worth failing loudly over.
		panic("sweepd: transition on terminal cell")
	}
	c.states[i] = to
	c.counts.dec(from)
	c.counts.inc(to)
	if res != nil {
		c.results[i] = *res
	}
	if errMsg != "" {
		c.errs[i] = errMsg
	}
	c.appendEventLocked(Event{Cell: i, State: to.String()})
	if to.terminal() {
		// The result (if any) is already in the cache — Put precedes the
		// flight release, which precedes this transition — so the WAL
		// only needs the state: replay answers the cell from the cache.
		c.jl.record(journalRecord{T: recCell, Cell: i, State: to.String(), Err: errMsg})
	}
	if !c.finished && c.counts.terminalLocked() {
		c.finished = true
		c.appendEventLocked(Event{Cell: -1, State: "campaign " + c.stateLocked()})
		// Terminal campaigns owe no recovery: seal and remove the WAL.
		c.jl.record(journalRecord{T: recDone, State: c.stateLocked()})
		c.jl.retire()
	}
	c.cond.Broadcast()
}

// appendEventLocked stamps the event with its sequence number and the
// campaign's terminal-cell progress. Caller holds mu.
func (c *Campaign) appendEventLocked(e Event) {
	e.Seq = len(c.events)
	e.Done = c.counts.doneLocked()
	e.Total = c.counts.Total
	c.events = append(c.events, e)
}

// checkDone finalizes an empty campaign (no cells to transition).
func (c *Campaign) checkDone() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.finished && c.counts.terminalLocked() {
		c.finished = true
		c.appendEventLocked(Event{Cell: -1, State: "campaign " + c.stateLocked()})
		c.jl.record(journalRecord{T: recDone, State: c.stateLocked()})
		c.jl.retire()
		c.cond.Broadcast()
	}
}

// stateLocked classifies the campaign. Caller holds mu.
func (c *Campaign) stateLocked() string {
	switch {
	case !c.counts.terminalLocked():
		return "running"
	case c.counts.Aborted > 0:
		return "aborted"
	case c.counts.Failed > 0:
		return "failed"
	default:
		return "done"
	}
}

// Status snapshots the campaign for the wire.
func (c *Campaign) Status() StatusResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := StatusResponse{
		ID: c.id, State: c.stateLocked(), Cells: c.counts,
		Retries: c.retries, Resumed: c.resumed,
	}
	for i, msg := range c.errs {
		if msg != "" {
			cfg := c.jobs[i]
			st.Failures = append(st.Failures, CellFailure{
				Cell: i, Workload: cfg.Workload, Variant: cfg.Variant.Name,
				Seed: cfg.Seed, Error: msg,
			})
		}
	}
	return st
}

// Finished reports whether every cell is terminal.
func (c *Campaign) Finished() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.finished
}

// Outcome assembles the campaign's results as a SweepOutcome — the same
// structure an offline invisifence.Sweep returns, so Table renders the
// two byte-identically. It is only available once the campaign is "done"
// (every cell carries a result).
func (c *Campaign) Outcome() (*invisifence.SweepOutcome, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st := c.stateLocked(); st != "done" {
		return nil, fmt.Errorf("sweepd: campaign %s is %s, table unavailable", c.id, st)
	}
	out := &invisifence.SweepOutcome{Runs: make([]invisifence.SweepRun, len(c.jobs))}
	for i := range c.jobs {
		out.Runs[i] = invisifence.SweepRun{
			Config: c.jobs[i],
			Result: c.results[i],
			Cached: c.states[i] == cellCached,
		}
		if c.states[i] == cellSimulated {
			out.Simulated++
		}
	}
	return out, nil
}

// EventsSince returns the events with sequence >= seq that already
// exist, without blocking.
func (c *Campaign) EventsSince(seq int) []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq >= len(c.events) {
		return nil
	}
	return append([]Event(nil), c.events[seq:]...)
}

// WaitEvent blocks until event seq exists or stop reports true (checked
// on every broadcast). It returns the event and whether it exists.
func (c *Campaign) WaitEvent(seq int, stop func() bool) (Event, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for seq >= len(c.events) {
		if c.finished || stop() {
			return Event{}, false
		}
		c.cond.Wait()
	}
	return c.events[seq], true
}

// Interrupt wakes all WaitEvent callers so they can re-check stop.
func (c *Campaign) Interrupt() {
	c.mu.Lock()
	c.cond.Broadcast()
	c.mu.Unlock()
}

// dec/inc maintain the per-state counters through transitions.
func (cc *CellCounts) dec(s cellState) {
	switch s {
	case cellQueued:
		cc.Queued--
	case cellRunning:
		cc.Running--
	}
}

func (cc *CellCounts) inc(s cellState) {
	switch s {
	case cellQueued:
		cc.Queued++
	case cellRunning:
		cc.Running++
	case cellCached:
		cc.Cached++
	case cellSimulated:
		cc.Simulated++
	case cellDeduped:
		cc.Deduped++
	case cellFailed:
		cc.Failed++
	case cellAborted:
		cc.Aborted++
	}
}

// doneLocked counts terminal cells.
func (cc *CellCounts) doneLocked() int {
	return cc.Cached + cc.Simulated + cc.Deduped + cc.Failed + cc.Aborted
}

// terminalLocked reports whether every cell is terminal.
func (cc *CellCounts) terminalLocked() bool { return cc.doneLocked() == cc.Total }
