package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"invisifence"
)

// The campaign journal is an append-only per-campaign WAL under
// <cache-dir>/journal/<id>.wal: one JSON record per line, written
// through an O_APPEND file handle so records are durable against a
// process kill the moment the write returns. The journal holds only
// scheduling state — the accepted spec, cell start/retry/terminal
// records, and the campaign's terminal announcement; results themselves
// live in the content-addressed cache, which is written before a cell's
// terminal record. Replay therefore needs nothing but the journal and
// the cache: an unfinished campaign is re-admitted from its spec record
// and resubmitted whole, finished cells answer from the cache, and only
// the cells in flight at the kill are re-simulated. A finished
// campaign's journal gains a "done" record and is then removed, so the
// journal directory enumerates exactly the campaigns that owe recovery.

// Journal record types.
const (
	recSpec  = "spec"  // campaign admitted: ID + the accepted spec
	recStart = "start" // cell handed to a worker (Attempt counts from 0)
	recRetry = "retry" // cell attempt failed; a retry was scheduled
	recCell  = "cell"  // cell reached a terminal state
	recDone  = "done"  // campaign reached a terminal state
)

// journalRecord is one WAL line. Cell carries no omitempty: cell index
// 0 must round-trip.
type journalRecord struct {
	T    string                 `json:"t"`
	ID   string                 `json:"id,omitempty"`
	Spec *invisifence.SweepSpec `json:"spec,omitempty"`
	Cell int                    `json:"cell"`
	// Attempt numbers the cell execution attempt (0 = first).
	Attempt int    `json:"attempt,omitempty"`
	State   string `json:"state,omitempty"`
	Err     string `json:"err,omitempty"`
}

// journal appends records for one campaign. The nil journal (memory-only
// cache, no journal dir) swallows every call, so callers never branch.
type journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	err  error // first write error; later records are dropped, not retried
}

// journalPath is the campaign's WAL location under the journal dir.
func journalPath(dir, id string) string {
	return filepath.Join(dir, id+".wal")
}

// openJournal opens (creating or appending) the campaign's WAL.
func openJournal(dir, id string) (*journal, error) {
	if dir == "" {
		return nil, nil
	}
	p := journalPath(dir, id)
	f, err := os.OpenFile(p, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweepd: opening journal: %w", err)
	}
	return &journal{f: f, path: p}, nil
}

// record appends one line. Best-effort: a sick disk costs recovery
// fidelity for this campaign, never the campaign itself.
func (j *journal) record(r journalRecord) {
	if j == nil {
		return
	}
	data, err := json.Marshal(r)
	if err != nil {
		return
	}
	data = append(data, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if _, err := j.f.Write(data); err != nil {
		j.err = err
	}
}

// retire closes and removes the WAL — called once the campaign is
// terminal and its "done" record is written, so a crash between the
// record and the unlink just means the next startup removes the file.
func (j *journal) retire() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Close()
	os.Remove(j.path)
}

// close releases the file handle without removing the WAL (shutdown of
// an unfinished campaign: the journal stays, owed to the next startup).
func (j *journal) close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.f.Close()
}

// journalState is the outcome of replaying one WAL.
type journalState struct {
	// id and spec come from the spec record; spec == nil means the WAL
	// holds no usable admission record and cannot be resumed.
	id   string
	spec *invisifence.SweepSpec
	// started maps cell index → latest attempt number with a start record.
	started map[int]int
	// done maps cell index → its journaled terminal state.
	done map[int]string
	// retries counts retry records per cell.
	retries map[int]int
	// terminal is the campaign's journaled terminal state ("" = unfinished).
	terminal string
}

// inFlight counts cells started but not terminal — the cells a recovery
// after a kill at this WAL's end would re-simulate.
func (st *journalState) inFlight() int {
	n := 0
	for c := range st.started {
		if _, ok := st.done[c]; !ok {
			n++
		}
	}
	return n
}

// replayJournal reduces WAL bytes to the campaign state they describe.
// It is a pure, total function: garbage lines, truncated tails (a crash
// mid-write leaves at most one partial last line), interleaved or
// duplicated records, and records for absurd cell indices are all
// tolerated — malformed input narrows recovery, it never panics. Replay
// is idempotent: the same bytes always reduce to the same state.
func replayJournal(data []byte) journalState {
	st := journalState{
		started: make(map[int]int),
		done:    make(map[int]string),
		retries: make(map[int]int),
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64<<10), maxSpecBytes+4096)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var r journalRecord
		if err := json.Unmarshal(line, &r); err != nil {
			continue
		}
		switch r.T {
		case recSpec:
			// First valid spec record wins; a duplicate (replayed
			// admission) must not reset cell state.
			if st.spec == nil && r.Spec != nil && r.ID != "" {
				st.id, st.spec = r.ID, r.Spec
			}
		case recStart:
			if r.Cell >= 0 {
				if a, ok := st.started[r.Cell]; !ok || r.Attempt > a {
					st.started[r.Cell] = r.Attempt
				}
			}
		case recRetry:
			if r.Cell >= 0 {
				st.retries[r.Cell]++
			}
		case recCell:
			if r.Cell >= 0 && r.State != "" {
				st.done[r.Cell] = r.State
			}
		case recDone:
			st.terminal = r.State
		}
	}
	return st
}

// scanJournals lists the WAL files under dir, sorted by name (campaign
// admission order, since IDs are zero-padded sequence numbers).
func scanJournals(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".wal" {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}
