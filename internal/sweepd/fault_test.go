package sweepd

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"invisifence"
)

// TestPoisonedCellFailsAlone injects a panic into one cell of a
// six-cell campaign: that cell alone is marked failed (with an error
// naming it), every sibling completes, the campaign reaches "failed",
// and the server keeps serving new campaigns afterwards.
func TestPoisonedCellFailsAlone(t *testing.T) {
	srv, err := New(Options{Workers: 2, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		if cfg.Seed == 3 {
			panic("poisoned cell")
		}
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := tinySpec()
	spec.Variants = []string{"sc"}
	spec.Seeds = []int64{1, 2, 3, 4, 5, 6}
	id := postSpec(t, ts.URL, spec)
	st := pollDone(t, ts.URL, id)
	if st.State != "failed" {
		t.Fatalf("campaign state %q, want failed: %+v", st.State, st)
	}
	if st.Cells.Failed != 1 || st.Cells.Simulated != 5 {
		t.Fatalf("cell counters: %+v", st.Cells)
	}
	if len(st.Failures) != 1 {
		t.Fatalf("failures: %+v", st.Failures)
	}
	f := st.Failures[0]
	if f.Seed != 3 || f.Workload != "barnes" || f.Variant != "sc" {
		t.Fatalf("failure identifies the wrong cell: %+v", f)
	}
	if !strings.Contains(f.Error, "panicked") || !strings.Contains(f.Error, "poisoned cell") {
		t.Fatalf("failure error: %q", f.Error)
	}

	// A failed campaign has no complete table: 409, not a crash.
	resp, err := http.Get(ts.URL + "/sweeps/" + id + "/table")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("table of failed campaign: %s", resp.Status)
	}

	// The worker that hosted the panic survived: a fresh campaign on the
	// same server completes.
	spec.Seeds = []int64{10, 11}
	id2 := postSpec(t, ts.URL, spec)
	if st2 := pollDone(t, ts.URL, id2); st2.State != "done" || st2.Cells.Simulated != 2 {
		t.Fatalf("post-panic campaign: %+v", st2)
	}
	s := srv.Stats()
	if s.CampaignsFailed != 1 || s.CampaignsCompleted != 1 || s.CellsFailed != 1 {
		t.Fatalf("server stats: %+v", s)
	}
}

// TestGracefulShutdownDrainsAndPersists interrupts a four-cell campaign
// with one cell mid-simulation: Shutdown lets that cell finish and
// persist, aborts the three queued cells, refuses new specs with 503,
// and a restarted server on the same cache directory answers the
// re-submitted spec's completed cell from disk — so across the restart
// every cell simulates exactly once.
func TestGracefulShutdownDrainsAndPersists(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec() // 4 cells
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	open := sync.OnceFunc(func() { close(release) })
	defer open()
	started := make(chan struct{})
	var once sync.Once
	var runsBefore atomic.Int64
	srv, err := New(Options{Workers: 1, CacheDir: dir, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		runsBefore.Add(1)
		once.Do(func() { close(started) })
		<-release
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}

	c, err := srv.Submit(spec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	<-started // one cell is simulating; three are queued behind the single worker

	shutdownDone := make(chan struct{})
	go func() {
		srv.Shutdown()
		close(shutdownDone)
	}()
	for !srv.Draining() {
		runtime.Gosched()
	}
	// Draining: direct submissions get the sentinel, HTTP ones a 503.
	if _, err := srv.Submit(spec, jobs); err != errDraining {
		t.Fatalf("Submit while draining: %v", err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/sweeps", bytes.NewReader(mustJSON(t, spec))))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: %d %s", rec.Code, rec.Body)
	}

	open() // let the in-flight cell finish
	<-shutdownDone

	st := c.Status()
	if st.State != "aborted" {
		t.Fatalf("campaign state %q, want aborted: %+v", st.State, st)
	}
	if st.Cells.Simulated != 1 || st.Cells.Aborted != 3 {
		t.Fatalf("drained cell counters: %+v", st.Cells)
	}
	if n := runsBefore.Load(); n != 1 {
		t.Fatalf("%d simulations before shutdown, want 1", n)
	}
	if s := srv.Stats(); s.SpecsRefused != 2 || s.CellsAborted != 3 {
		t.Fatalf("server stats after drain: %+v", s)
	}

	// Restart on the same cache directory: the drained cell's result is
	// on disk, so the re-submitted spec only simulates the aborted cells.
	var runsAfter atomic.Int64
	srv2, err := New(Options{Workers: 2, CacheDir: dir, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		runsAfter.Add(1)
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown()
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	id := postSpec(t, ts.URL, spec)
	st2 := pollDone(t, ts.URL, id)
	if st2.State != "done" {
		t.Fatalf("restarted campaign: %+v", st2)
	}
	if st2.Cells.Cached != 1 || st2.Cells.Simulated != 3 {
		t.Fatalf("restarted cell counters: %+v", st2.Cells)
	}
	if total := runsBefore.Load() + runsAfter.Load(); total != int64(len(jobs)) {
		t.Fatalf("%d simulations across the restart for %d cells", total, len(jobs))
	}
}
