package sweepd

import (
	"bytes"
	"encoding/json"
	"testing"

	"invisifence"
)

// FuzzSpecDecode throws arbitrary bytes at the POST /sweeps decoder.
// Invariants: DecodeSpec never panics, never expands past the admission
// cap, and every accepted spec is canonical — re-encoding it and
// decoding again is a fixed point that expands to the same cells
// (byte-identical JSON, identical cache keys). Rejections are ordinary
// errors, which the HTTP layer turns into structured 400s.
func FuzzSpecDecode(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workloads":["barnes"],"variants":["sc","invisi-sc"],"seeds":[1,2],"scale":0.2}`))
	f.Add([]byte(`{"nodes":[4,8],"link_bandwidths":[0,1],"sb_depths":[0,64],"checkpoints":[0,2]}`))
	f.Add([]byte(`{"machine":{"Width":2,"Height":2,"HopLatency":10}}`))
	f.Add([]byte(`{"variants":["invisi-sc-2ckpt"],"max_cycles":1000}`))
	f.Add([]byte(`{"wrkloads":["barnes"]}`))
	f.Add([]byte(`{"seeds":[1],"scale":-3}`))
	f.Add([]byte(`{"nodes":[1000000007]}`))
	f.Add([]byte(`{"machine":{"Width":-1,"Height":2}}`))
	f.Add([]byte(`{"seeds":[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]}`))
	f.Add([]byte(`{} {}`))
	f.Add([]byte(`[`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		const maxCells = 512
		spec, jobs, err := DecodeSpec(data, maxCells)
		if err != nil {
			// Rejected input: the only contract is that rejection was an
			// error value, not a panic (the fuzz engine catches panics).
			return
		}
		if len(jobs) > maxCells {
			t.Fatalf("accepted spec expanded to %d jobs, admission cap is %d", len(jobs), maxCells)
		}
		enc1, err := json.Marshal(spec)
		if err != nil {
			t.Fatalf("marshaling accepted spec: %v", err)
		}
		spec2, jobs2, err := DecodeSpec(enc1, maxCells)
		if err != nil {
			t.Fatalf("re-decoding accepted spec failed: %v\ninput: %q\nencoded: %s", err, data, enc1)
		}
		enc2, err := json.Marshal(spec2)
		if err != nil {
			t.Fatalf("re-marshaling accepted spec: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("spec encoding is not a fixed point:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}
		if len(jobs) != len(jobs2) {
			t.Fatalf("round-trip changed the expansion: %d vs %d jobs", len(jobs), len(jobs2))
		}
		for i := range jobs {
			if invisifence.ResultKey(jobs[i]) != invisifence.ResultKey(jobs2[i]) {
				t.Fatalf("round-trip changed job %d's cache key", i)
			}
		}
	})
}
