// Package sweepd is the campaign server: a long-running HTTP/JSON service
// that accepts SweepSpecs, expands them into cells, schedules the cells
// across a work-stealing worker pool, and answers every cell from — in
// order of preference — the persistent content-addressed result cache, an
// identical cell already in flight (single-flight dedupe), or a fresh
// simulation whose result is published back into the cache. Campaigns
// stream per-cell progress as NDJSON events and render their finished
// result table byte-identically to an offline cmd/sweep run of the same
// spec: the server boundary adds sharing, never nondeterminism.
//
// The API (DESIGN.md §13):
//
//	POST /sweeps              submit a SweepSpec; 202 + {id}, 400 on a bad
//	                          spec, 503 while draining
//	GET  /sweeps              list campaign statuses
//	GET  /sweeps/{id}         one campaign's status and cell counters
//	GET  /sweeps/{id}/events  NDJSON event stream (replay + live tail)
//	GET  /sweeps/{id}/table   the finished result table (text; ?markdown=1)
//	GET  /healthz             liveness ("ok", or "draining")
//	GET  /statsz              server/cache/flight/pool telemetry
//
// Shutdown is graceful: Shutdown marks the server draining (new specs get
// 503), lets in-flight cells finish and persist, marks still-queued cells
// aborted, and returns once every campaign is terminal. A restarted
// sweepd answers the re-submitted spec's completed cells from the shared
// cache directory.
package sweepd

import (
	"fmt"
	"sync"
	"sync/atomic"

	"invisifence"
	"invisifence/internal/runcache"
	"invisifence/internal/stats"
	"invisifence/internal/sweep"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent simulations across all campaigns
	// (values < 1 mean 4).
	Workers int
	// CacheDir roots the persistent result cache shared with cmd/sweep
	// and Campaign; "" keeps results in memory only (they die with the
	// process).
	CacheDir string
	// MaxCells caps one spec's expanded grid size (values < 1 mean
	// 100000): the admission guard against accidental or hostile
	// combinatorial explosions.
	MaxCells int
	// Run executes one cell (nil means invisifence.Run). Tests inject
	// counting, gated, or panicking implementations here.
	Run func(invisifence.Config) (invisifence.Result, error)
}

// Server is the campaign scheduler and store behind the HTTP API. Create
// with New, serve via Handler, stop with Shutdown.
type Server struct {
	opts   Options
	cache  *runcache.Cache
	flight *runcache.Flight
	pool   *sweep.Pool

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // campaign IDs in admission order
	seq       int

	draining atomic.Bool
	shutdown sync.Once

	tmu   sync.Mutex
	telem stats.ServerStats
}

// New starts a server: the worker pool is live immediately and the cache
// directory is created if needed.
func New(opts Options) (*Server, error) {
	if opts.Workers < 1 {
		opts.Workers = 4
	}
	if opts.MaxCells < 1 {
		opts.MaxCells = 100_000
	}
	if opts.Run == nil {
		opts.Run = invisifence.Run
	}
	cache, err := runcache.Open(opts.CacheDir)
	if err != nil {
		return nil, fmt.Errorf("sweepd: %w", err)
	}
	return &Server{
		opts:      opts,
		cache:     cache,
		flight:    &runcache.Flight{},
		pool:      sweep.NewPool(opts.Workers),
		campaigns: make(map[string]*Campaign),
	}, nil
}

// Submit admits a validated spec as a new campaign and schedules its
// cells. It returns errDraining once Shutdown has begun.
func (s *Server) Submit(spec invisifence.SweepSpec, jobs []invisifence.Config) (*Campaign, error) {
	if s.draining.Load() {
		s.count(func(t *stats.ServerStats) { t.SpecsRefused++ })
		return nil, errDraining
	}
	s.mu.Lock()
	s.seq++
	c := newCampaign(fmt.Sprintf("c%04d", s.seq), spec, jobs)
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.mu.Unlock()
	s.count(func(t *stats.ServerStats) {
		t.CampaignsAccepted++
		t.CellsScheduled += uint64(len(jobs))
	})
	for i := range jobs {
		s.pool.Submit(func() { s.runCell(c, i) })
	}
	// A zero-cell campaign (impossible via DecodeSpec, possible via the
	// API) is terminal at birth.
	c.checkDone()
	return c, nil
}

// errDraining is Submit's refusal during shutdown; the HTTP layer maps it
// to 503.
var errDraining = fmt.Errorf("sweepd: server is draining, not accepting new sweeps")

// Campaign returns the campaign with the given ID, if any.
func (s *Server) Campaign(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// Campaigns returns all campaigns in admission order.
func (s *Server) Campaigns() []*Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Campaign, len(s.order))
	for i, id := range s.order {
		out[i] = s.campaigns[id]
	}
	return out
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown drains the server: new specs are refused with 503, cells
// already being simulated run to completion and persist into the cache,
// and cells still queued are marked aborted. It returns once every
// campaign is terminal; the caller then closes the HTTP listener.
// Shutdown is idempotent and safe to call concurrently.
func (s *Server) Shutdown() {
	s.shutdown.Do(func() {
		s.draining.Store(true)
		// Close runs every queued task: tasks observe the draining flag
		// and short-circuit their cell to aborted, while tasks already
		// executing finish their simulation and publish it.
		s.pool.Close()
	})
}

// Stats snapshots the scheduler telemetry.
func (s *Server) Stats() stats.ServerStats {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	return s.telem
}

func (s *Server) count(f func(*stats.ServerStats)) {
	s.tmu.Lock()
	f(&s.telem)
	s.tmu.Unlock()
}
