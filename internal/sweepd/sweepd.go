// Package sweepd is the campaign server: a long-running HTTP/JSON service
// that accepts SweepSpecs, expands them into cells, schedules the cells
// across a work-stealing worker pool, and answers every cell from — in
// order of preference — the persistent content-addressed result cache, an
// identical cell already in flight (single-flight dedupe), or a fresh
// simulation whose result is published back into the cache. Campaigns
// stream per-cell progress as NDJSON events and render their finished
// result table byte-identically to an offline cmd/sweep run of the same
// spec: the server boundary adds sharing, never nondeterminism.
//
// The API (DESIGN.md §13):
//
//	POST /sweeps              submit a SweepSpec; 202 + {id}, 400 on a bad
//	                          spec, 503 while draining
//	GET  /sweeps              list campaign statuses
//	GET  /sweeps/{id}         one campaign's status and cell counters
//	GET  /sweeps/{id}/events  NDJSON event stream (replay + live tail)
//	GET  /sweeps/{id}/table   the finished result table (text; ?markdown=1)
//	GET  /healthz             liveness ("ok" while the process serves)
//	GET  /readyz              readiness (503 while replaying or draining)
//	GET  /statsz              server/cache/flight/pool/fault telemetry
//
// The server is crash-safe (DESIGN.md §14): every campaign writes an
// append-only journal under the cache dir, and a restarted sweepd
// replays the journals, re-admits unfinished campaigns, and resumes
// them — finished cells answer from the cache, so only the cells in
// flight at the kill are re-simulated, and the resumed table is
// byte-identical to an uninterrupted run. Cells run under a watchdog
// deadline and are retried with capped exponential backoff before the
// cell (never the campaign) is marked failed.
//
// Shutdown is graceful and bounded: Shutdown marks the server draining
// (new specs get 503), lets in-flight cells finish and persist, marks
// still-queued cells aborted, and returns once every campaign is
// terminal; ShutdownTimeout bounds the wait, and unfinished campaigns
// keep their journals for the next startup.
package sweepd

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"invisifence"
	"invisifence/internal/faultinject"
	"invisifence/internal/runcache"
	"invisifence/internal/stats"
	"invisifence/internal/sweep"
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrent simulations across all campaigns
	// (values < 1 mean 4).
	Workers int
	// CacheDir roots the persistent result cache shared with cmd/sweep
	// and Campaign, and the campaign journals under CacheDir/journal; ""
	// keeps results in memory only (they die with the process, and
	// campaigns are not journaled).
	CacheDir string
	// MaxCells caps one spec's expanded grid size (values < 1 mean
	// 100000): the admission guard against accidental or hostile
	// combinatorial explosions.
	MaxCells int
	// MaxCellRetries is how many times a timed-out or failed cell is
	// re-attempted before the cell is marked failed (0 means 2; negative
	// means no retries).
	MaxCellRetries int
	// RetryBackoff is the base of the capped exponential backoff between
	// attempts: attempt k sleeps min(RetryBackoff<<(k-1), 8*RetryBackoff)
	// (0 means 250ms; negative means no backoff).
	RetryBackoff time.Duration
	// CellTimeout is the per-attempt wall-clock watchdog deadline
	// (0 derives a budget from the spec's scale; negative disables the
	// watchdog).
	CellTimeout time.Duration
	// CellMaxCycles is a simulated-cycle backstop threaded into every
	// cell run (0 keeps the runner's default). It bounds the simulation
	// without entering the Config, so cache keys are unchanged.
	CellMaxCycles uint64
	// Clock supplies time to retries, watchdogs, and the drain bound
	// (nil means the wall clock). Chaos tests inject a manual clock.
	Clock Clock
	// Faults arms the fault-injection plan across the server's seams —
	// cache I/O, flight leaders, pool workers, the cell-simulate hook
	// (nil, the production state, compiles to a no-op).
	Faults *faultinject.Plan
	// Run executes one cell (nil means invisifence.RunBounded with
	// CellMaxCycles). Tests inject counting, gated, or panicking
	// implementations here.
	Run func(invisifence.Config) (invisifence.Result, error)
}

// Defaults for the zero Options.
const (
	defaultCellRetries  = 2
	defaultRetryBackoff = 250 * time.Millisecond
	// defaultScaleBudget is the per-attempt watchdog budget for a
	// scale-1.0 cell; larger scales get proportionally more.
	defaultScaleBudget = 2 * time.Minute
	// backoffCap bounds the exponential backoff at 8 base units.
	backoffCap = 8
)

// SiteCell is the fault-injection site probed inside every cell
// execution (error = transient cell failure, panic = poisoned cell,
// delay = slow cell, exercising the watchdog).
const SiteCell = "sweepd.cell"

// Server is the campaign scheduler and store behind the HTTP API. Create
// with New, recover journaled campaigns with Recover, serve via Handler,
// stop with Shutdown or ShutdownTimeout.
type Server struct {
	opts       Options
	cache      *runcache.Cache
	flight     *runcache.Flight
	pool       *sweep.Pool
	inj        *faultinject.Injector
	clock      Clock
	journalDir string // "" = journaling disabled

	mu        sync.Mutex
	campaigns map[string]*Campaign
	order     []string // campaign IDs in admission order
	seq       int

	draining  atomic.Bool
	replaying atomic.Bool
	shutdown  sync.Once
	drained   chan struct{}

	tmu   sync.Mutex
	telem stats.ServerStats
}

// New starts a server: the worker pool is live immediately, the cache
// and journal directories are created if needed, and any journals left
// by a previous process flip the server unready until Recover runs.
func New(opts Options) (*Server, error) {
	if opts.Workers < 1 {
		opts.Workers = 4
	}
	if opts.MaxCells < 1 {
		opts.MaxCells = 100_000
	}
	if opts.MaxCellRetries == 0 {
		opts.MaxCellRetries = defaultCellRetries
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = defaultRetryBackoff
	}
	if opts.Clock == nil {
		opts.Clock = realClock{}
	}
	if opts.Run == nil {
		bound := opts.CellMaxCycles
		opts.Run = func(cfg invisifence.Config) (invisifence.Result, error) {
			return invisifence.RunBounded(cfg, bound)
		}
	}
	cache, err := runcache.Open(opts.CacheDir)
	if err != nil {
		return nil, fmt.Errorf("sweepd: %w", err)
	}
	s := &Server{
		opts:      opts,
		cache:     cache,
		flight:    &runcache.Flight{},
		pool:      sweep.NewPool(opts.Workers),
		clock:     opts.Clock,
		campaigns: make(map[string]*Campaign),
		drained:   make(chan struct{}),
	}
	s.inj = faultinject.New(opts.Faults)
	s.cache.SetInjector(s.inj)
	s.flight.SetInjector(s.inj)
	s.pool.SetInjector(s.inj)
	if opts.CacheDir != "" {
		s.journalDir = filepath.Join(opts.CacheDir, "journal")
		if err := os.MkdirAll(s.journalDir, 0o755); err != nil {
			return nil, fmt.Errorf("sweepd: %w", err)
		}
		wals, err := scanJournals(s.journalDir)
		if err != nil {
			return nil, fmt.Errorf("sweepd: %w", err)
		}
		// Continue the ID sequence past every journaled campaign so a
		// resumed campaign and a fresh submission can never collide.
		for _, w := range wals {
			var n int
			if _, err := fmt.Sscanf(filepath.Base(w), "c%04d.wal", &n); err == nil && n > s.seq {
				s.seq = n
			}
		}
		if len(wals) > 0 {
			s.replaying.Store(true)
		}
	}
	return s, nil
}

// Recover replays the journals a previous process left behind,
// re-admitting and resuming every unfinished campaign: all its cells are
// resubmitted, finished cells answer from the cache, and only the cells
// in flight at the crash re-simulate. Journals of campaigns that had
// already reached a terminal state are removed; unreadable or spec-less
// journals are set aside as .bad files and counted. Recover clears the
// /readyz "replaying" state and is what cmd/sweepd calls (concurrently
// with serving) right after New.
func (s *Server) Recover() error {
	defer s.replaying.Store(false)
	if s.journalDir == "" {
		return nil
	}
	wals, err := scanJournals(s.journalDir)
	if err != nil {
		return fmt.Errorf("sweepd: %w", err)
	}
	var firstErr error
	for _, w := range wals {
		if err := s.recoverJournal(w); err != nil {
			s.count(func(t *stats.ServerStats) { t.JournalErrors++ })
			// A bad journal must not satisfy the next startup either:
			// set it aside for post-mortems and keep recovering.
			os.Rename(w, w+".bad")
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

// recoverJournal resumes one campaign WAL.
func (s *Server) recoverJournal(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("sweepd: reading journal: %w", err)
	}
	st := replayJournal(data)
	if st.terminal != "" {
		// The campaign finished; the crash hit between the done record
		// and the unlink. Finish the unlink.
		os.Remove(path)
		return nil
	}
	if st.spec == nil {
		return fmt.Errorf("sweepd: journal %s holds no usable spec record", filepath.Base(path))
	}
	if id := journalPath(s.journalDir, st.id); id != path {
		return fmt.Errorf("sweepd: journal %s claims campaign %q", filepath.Base(path), st.id)
	}
	jobs, err := st.spec.Jobs()
	if err != nil {
		return fmt.Errorf("sweepd: re-expanding journaled spec: %w", err)
	}
	if len(jobs) > s.opts.MaxCells {
		return fmt.Errorf("sweepd: journaled campaign %s has %d cells, over the limit of %d", st.id, len(jobs), s.opts.MaxCells)
	}
	jl, err := openJournal(s.journalDir, st.id)
	if err != nil {
		return err
	}
	c := newCampaign(st.id, *st.spec, jobs)
	c.jl = jl
	c.resumed = true
	s.mu.Lock()
	if _, dup := s.campaigns[c.id]; dup {
		s.mu.Unlock()
		jl.close()
		return fmt.Errorf("sweepd: duplicate journaled campaign %s", c.id)
	}
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.mu.Unlock()
	s.count(func(t *stats.ServerStats) {
		t.CampaignsRecovered++
		t.CellsScheduled += uint64(len(jobs))
	})
	for i := range jobs {
		s.pool.Submit(func() { s.runCell(c, i) })
	}
	c.checkDone()
	return nil
}

// Submit admits a validated spec as a new campaign, journals it, and
// schedules its cells. It returns errDraining once Shutdown has begun.
func (s *Server) Submit(spec invisifence.SweepSpec, jobs []invisifence.Config) (*Campaign, error) {
	if s.draining.Load() {
		s.count(func(t *stats.ServerStats) { t.SpecsRefused++ })
		return nil, errDraining
	}
	s.mu.Lock()
	s.seq++
	c := newCampaign(fmt.Sprintf("c%04d", s.seq), spec, jobs)
	s.campaigns[c.id] = c
	s.order = append(s.order, c.id)
	s.mu.Unlock()
	// Journal the admission before any cell can run: the WAL's spec
	// record is what a recovery resumes from. A journal that cannot be
	// opened costs crash-safety for this campaign, not the campaign.
	if jl, err := openJournal(s.journalDir, c.id); err == nil {
		c.jl = jl
		jl.record(journalRecord{T: recSpec, ID: c.id, Spec: &c.spec})
	} else {
		s.count(func(t *stats.ServerStats) { t.JournalErrors++ })
	}
	s.count(func(t *stats.ServerStats) {
		t.CampaignsAccepted++
		t.CellsScheduled += uint64(len(jobs))
	})
	for i := range jobs {
		s.pool.Submit(func() { s.runCell(c, i) })
	}
	// A zero-cell campaign (impossible via DecodeSpec, possible via the
	// API) is terminal at birth.
	c.checkDone()
	return c, nil
}

// errDraining is Submit's refusal during shutdown; the HTTP layer maps it
// to 503.
var errDraining = fmt.Errorf("sweepd: server is draining, not accepting new sweeps")

// Campaign returns the campaign with the given ID, if any.
func (s *Server) Campaign(id string) (*Campaign, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// Campaigns returns all campaigns in admission order.
func (s *Server) Campaigns() []*Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Campaign, len(s.order))
	for i, id := range s.order {
		out[i] = s.campaigns[id]
	}
	return out
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Replaying reports whether journal replay is still owed (New found
// journals and Recover has not finished).
func (s *Server) Replaying() bool { return s.replaying.Load() }

// Shutdown drains the server: new specs are refused with 503, cells
// already being simulated run to completion and persist into the cache,
// and cells still queued are marked aborted. It returns once every
// campaign is terminal; the caller then closes the HTTP listener.
// Shutdown is idempotent and safe to call concurrently.
func (s *Server) Shutdown() {
	s.shutdown.Do(func() {
		s.draining.Store(true)
		// Close runs every queued task: tasks observe the draining flag
		// and short-circuit their cell to aborted, while tasks already
		// executing finish their simulation and publish it.
		s.pool.Close()
		// Unfinished campaigns keep their journals for the next startup;
		// release the file handles.
		for _, c := range s.Campaigns() {
			c.mu.Lock()
			jl := c.jl
			c.mu.Unlock()
			jl.close()
		}
		close(s.drained)
	})
}

// ShutdownTimeout drains like Shutdown but gives up after d (d <= 0
// waits forever). It reports whether the drain completed: on false, the
// server is still draining in the background — in-flight simulations
// keep running — but every campaign left unfinished has a journal, so
// an impatient exit costs at most re-simulating the cells in flight.
func (s *Server) ShutdownTimeout(d time.Duration) bool {
	go s.Shutdown()
	var after <-chan time.Time
	if d > 0 {
		after = s.clock.After(d)
	}
	select {
	case <-s.drained:
		return true
	case <-after:
		return false
	}
}

// Stats snapshots the scheduler telemetry.
func (s *Server) Stats() stats.ServerStats {
	s.tmu.Lock()
	defer s.tmu.Unlock()
	return s.telem
}

func (s *Server) count(f func(*stats.ServerStats)) {
	s.tmu.Lock()
	f(&s.telem)
	s.tmu.Unlock()
}
