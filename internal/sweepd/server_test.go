package sweepd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"invisifence"
)

// tinyMachine mirrors the root test helper: a 2x2 torus with small
// caches so cells simulate in tens of milliseconds.
func tinyMachine() invisifence.MachineConfig {
	m := invisifence.DefaultMachine()
	m.Width, m.Height = 2, 2
	m.HopLatency = 10
	m.L1Bytes = 16 << 10
	m.L2Bytes = 256 << 10
	m.L2Latency = 12
	m.MemLatency = 60
	return m
}

func tinySpec() invisifence.SweepSpec {
	m := tinyMachine()
	return invisifence.SweepSpec{
		Workloads: []string{"barnes"},
		Variants:  []string{"sc", "invisi-sc"},
		Seeds:     []int64{1, 2},
		Scale:     0.2,
		Machine:   &m,
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// postSpec submits a spec and returns the campaign ID.
func postSpec(t *testing.T, url string, spec invisifence.SweepSpec) string {
	t.Helper()
	resp, err := http.Post(url+"/sweeps", "application/json", bytes.NewReader(mustJSON(t, spec)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /sweeps: %s", resp.Status)
	}
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	return sub.ID
}

// pollDone polls the campaign status until it leaves "running".
func pollDone(t *testing.T, url, id string) StatusResponse {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(url + "/sweeps/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st StatusResponse
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State != "running" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still running: %+v", id, st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getTable(t *testing.T, url, id string) string {
	t.Helper()
	resp, err := http.Get(url + "/sweeps/" + id + "/table")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET table: %s: %s", resp.Status, b.String())
	}
	return b.String()
}

// TestServerEndToEndDeterminism is the tentpole acceptance test: a real
// corpus spec submitted to an in-process sweepd produces a result table
// byte-identical to an offline invisifence.Sweep (cmd/sweep's engine) of
// the same spec at a different worker count, and a second submission of
// the same spec simulates nothing.
func TestServerEndToEndDeterminism(t *testing.T) {
	srv, err := New(Options{Workers: 4, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := tinySpec()
	id := postSpec(t, ts.URL, spec)
	st := pollDone(t, ts.URL, id)
	if st.State != "done" {
		t.Fatalf("campaign state: %+v", st)
	}
	if st.Cells.Simulated != 4 || st.Cells.Cached != 0 {
		t.Fatalf("cold campaign counters: %+v", st.Cells)
	}
	serverTable := getTable(t, ts.URL, id)

	// Offline, serial, separate cache: the same spec through the
	// cmd/sweep engine. The server adds exactly one trailing newline
	// (Println), nothing else.
	offline, err := invisifence.Sweep(spec, invisifence.SweepOptions{Parallel: 1, CacheDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if want := offline.Table().String() + "\n"; serverTable != want {
		t.Fatalf("server table differs from offline sweep:\n--- server ---\n%s--- offline ---\n%s", serverTable, want)
	}

	// A second identical campaign: zero simulations, identical bytes.
	id2 := postSpec(t, ts.URL, spec)
	st2 := pollDone(t, ts.URL, id2)
	if st2.State != "done" || st2.Cells.Simulated != 0 || st2.Cells.Cached != 4 {
		t.Fatalf("warm campaign: %+v", st2)
	}
	if warm := getTable(t, ts.URL, id2); warm != serverTable {
		t.Fatal("warm campaign table differs from cold campaign table")
	}
}

// fakeResult derives a deterministic result from a config without
// simulating, for scheduler-level tests.
func fakeResult(cfg invisifence.Config) invisifence.Result {
	return invisifence.Result{
		Config:    cfg,
		Cycles:    uint64(10_000 + 137*cfg.Seed),
		Retired:   uint64(5_000 * (cfg.Seed + 1)),
		Validated: true,
	}
}

// TestServerWorkerCountDeterminism renders the same campaign at three
// pool widths: identical tables, regardless of scheduling.
func TestServerWorkerCountDeterminism(t *testing.T) {
	spec := tinySpec()
	spec.Seeds = []int64{1, 2, 3, 4, 5}
	var tables []string
	for _, workers := range []int{1, 2, 8} {
		srv, err := New(Options{Workers: workers, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
			return fakeResult(cfg), nil
		}})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		id := postSpec(t, ts.URL, spec)
		if st := pollDone(t, ts.URL, id); st.State != "done" {
			t.Fatalf("workers=%d: %+v", workers, st)
		}
		tables = append(tables, getTable(t, ts.URL, id))
		ts.Close()
		srv.Shutdown()
	}
	if tables[0] != tables[1] || tables[1] != tables[2] {
		t.Fatalf("tables differ across worker counts:\n%s\nvs\n%s\nvs\n%s", tables[0], tables[1], tables[2])
	}
}

// TestSingleFlightDedupe is the dedupe acceptance test: four identical
// campaigns racing against a cold cache perform exactly one simulation
// per unique cell; every other cell shares the in-flight computation.
func TestSingleFlightDedupe(t *testing.T) {
	const campaigns = 4
	spec := tinySpec()
	spec.Variants = []string{"sc"} // 2 unique cells (seeds 1, 2)
	const unique = 2
	const followers = campaigns*unique - unique

	var runs atomic.Int64
	var srv *Server
	srv, err := New(Options{
		// Enough workers that every campaign's cells are in flight
		// simultaneously: the leaders block below until all expected
		// followers have joined their flights. The Draining escape only
		// matters if the test fails before the gate opens.
		Workers: campaigns * unique,
		Run: func(cfg invisifence.Config) (invisifence.Result, error) {
			runs.Add(1)
			for srv.flight.Stats().Followers < followers && !srv.Draining() {
				runtime.Gosched()
			}
			return fakeResult(cfg), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := mustJSON(t, spec)
	type postReply struct {
		id  string
		err error
	}
	replies := make(chan postReply, campaigns)
	for i := 0; i < campaigns; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/sweeps", "application/json", bytes.NewReader(body))
			if err != nil {
				replies <- postReply{err: err}
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				replies <- postReply{err: fmt.Errorf("POST /sweeps: %s", resp.Status)}
				return
			}
			var sub SubmitResponse
			if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
				replies <- postReply{err: err}
				return
			}
			replies <- postReply{id: sub.ID}
		}()
	}
	var ids []string
	for i := 0; i < campaigns; i++ {
		r := <-replies
		if r.err != nil {
			t.Fatal(r.err)
		}
		ids = append(ids, r.id)
	}

	total := CellCounts{}
	for _, id := range ids {
		st := pollDone(t, ts.URL, id)
		if st.State != "done" {
			t.Fatalf("campaign %s: %+v", id, st)
		}
		total.Simulated += st.Cells.Simulated
		total.Deduped += st.Cells.Deduped
		total.Cached += st.Cells.Cached
	}
	if got := runs.Load(); got != unique {
		t.Fatalf("%d simulations for %d unique cells across %d identical campaigns", got, unique, campaigns)
	}
	if total.Simulated != unique {
		t.Fatalf("campaigns report %d simulated cells, want %d", total.Simulated, unique)
	}
	if total.Deduped != followers {
		t.Fatalf("campaigns report %d deduped cells, want %d", total.Deduped, followers)
	}
	// The runcache traffic stats agree: one Put per unique cell, and the
	// flight registry saw every follower.
	if s := srv.cache.Stats(); s.Puts != unique {
		t.Fatalf("cache stats: %+v (want %d puts)", s, unique)
	}
	if fs := srv.flight.Stats(); fs.Leaders != unique || fs.Followers != followers {
		t.Fatalf("flight stats: %+v", fs)
	}
	// All four tables render identically.
	want := getTable(t, ts.URL, ids[0])
	for _, id := range ids[1:] {
		if got := getTable(t, ts.URL, id); got != want {
			t.Fatalf("campaign %s table differs from %s", id, ids[0])
		}
	}
}

// TestSchedulerStealsSkewedCampaign drives the server's pool with a
// campaign whose costs are maximally skewed across the round-robin
// stripes and checks the work-stealing layer rebalanced it.
func TestSchedulerStealsSkewedCampaign(t *testing.T) {
	const workers = 4
	start := make(chan struct{})
	open := sync.OnceFunc(func() { close(start) })
	srv, err := New(Options{Workers: workers, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		<-start
		// Cells land on queues round-robin in seed order: seeds
		// 0,4,8,... stripe onto one queue and cost 25ms; the rest are
		// instant.
		if cfg.Seed%workers == 0 {
			time.Sleep(25 * time.Millisecond)
		}
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	defer open() // unblock workers before Shutdown drains them
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := tinySpec()
	spec.Variants = []string{"sc"}
	spec.Seeds = make([]int64, 4*workers)
	for i := range spec.Seeds {
		spec.Seeds[i] = int64(i)
	}
	id := postSpec(t, ts.URL, spec)
	open()
	begin := time.Now()
	st := pollDone(t, ts.URL, id)
	elapsed := time.Since(begin)
	if st.State != "done" || st.Cells.Simulated != 4*workers {
		t.Fatalf("campaign: %+v", st)
	}
	// Serialized behind one worker the slow stripe costs 4x25ms; stolen
	// across four it costs ~2 rounds. The margin distinguishes the
	// regimes without being CI-noise sensitive.
	if elapsed > 85*time.Millisecond {
		t.Fatalf("skewed campaign took %v: stealing not effective", elapsed)
	}
	if s := srv.pool.Stats(); s.Steals == 0 {
		t.Fatalf("no steals recorded: %+v", s)
	}
}

// TestEventStream tails a campaign's NDJSON stream and checks it replays
// into exactly the campaign's history: dense sequence numbers, one
// running and one terminal event per cell, and a final campaign-level
// event carrying Done == Total.
func TestEventStream(t *testing.T) {
	release := make(chan struct{})
	open := sync.OnceFunc(func() { close(release) })
	srv, err := New(Options{Workers: 2, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		<-release
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	defer open() // unblock workers before Shutdown drains them
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := tinySpec() // 4 cells
	id := postSpec(t, ts.URL, spec)

	resp, err := http.Get(ts.URL + "/sweeps/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type: %q", ct)
	}
	open()

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(events) != 2*4+1 {
		t.Fatalf("%d events for a 4-cell campaign (want 9): %+v", len(events), events)
	}
	perCell := make(map[int][]string)
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Total != 4 {
			t.Fatalf("event total: %+v", e)
		}
		perCell[e.Cell] = append(perCell[e.Cell], e.State)
	}
	for cell := 0; cell < 4; cell++ {
		h := perCell[cell]
		if len(h) != 2 || h[0] != "running" || h[1] != "simulated" {
			t.Fatalf("cell %d history: %v", cell, h)
		}
	}
	last := events[len(events)-1]
	if last.Cell != -1 || last.State != "campaign done" || last.Done != 4 {
		t.Fatalf("terminal event: %+v", last)
	}
}

// TestAPIRejections covers the structured error paths: malformed and
// invalid specs are 400s with a JSON error body, unknown campaigns 404,
// and premature table fetches 409.
func TestAPIRejections(t *testing.T) {
	release := make(chan struct{})
	srv, err := New(Options{Workers: 1, MaxCells: 64, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		<-release
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()
	defer close(release) // unblock the worker before Shutdown drains it
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body string) (int, ErrorResponse) {
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		return resp.StatusCode, e
	}

	for _, tc := range []struct {
		name, body, wantErr string
	}{
		{"malformed JSON", `{"workloads": [`, "parsing spec"},
		{"unknown field", `{"wrkloads": ["barnes"]}`, "unknown field"},
		{"unknown workload", `{"workloads": ["nope"]}`, "unknown workload"},
		{"unknown variant", `{"variants": ["nope"]}`, "unknown variant"},
		{"negative scale", `{"scale": -1}`, "negative scale"},
		{"trailing data", `{} {}`, "trailing data"},
		{"grid too large", `{"seeds": [1,2,3,4,5,6,7,8,9,10]}`, "exceeds the per-sweep limit"},
		{"oversized nodes", `{"nodes": [100000]}`, "node count"},
	} {
		code, e := post(tc.body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", tc.name, code)
		}
		if !strings.Contains(e.Error, tc.wantErr) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, e.Error, tc.wantErr)
		}
	}
	if n := srv.Stats().SpecsRejected; n != 8 {
		t.Fatalf("SpecsRejected: %d", n)
	}

	if resp, _ := http.Get(ts.URL + "/sweeps/c9999"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign: %s", resp.Status)
	}

	// A running campaign has no table yet: 409.
	spec := tinySpec()
	spec.Variants, spec.Seeds = []string{"sc"}, []int64{1}
	id := postSpec(t, ts.URL, spec)
	resp, err := http.Get(ts.URL + "/sweeps/" + id + "/table")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("table of running campaign: %s", resp.Status)
	}
}

// TestStatszAndHealthz sanity-checks the telemetry and health surfaces:
// /healthz is pure liveness ("ok" even while draining), /readyz flips to
// 503 once a drain begins.
func TestStatszAndHealthz(t *testing.T) {
	srv, err := New(Options{Workers: 2, Run: func(cfg invisifence.Config) (invisifence.Result, error) {
		return fakeResult(cfg), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if buf.String() != "ok\n" {
		t.Fatalf("healthz: %q", buf.String())
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || buf.String() != "ready\n" {
		t.Fatalf("readyz: %s %q", resp.Status, buf.String())
	}

	spec := tinySpec()
	id := postSpec(t, ts.URL, spec)
	pollDone(t, ts.URL, id)

	var sz StatszResponse
	resp, err = http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&sz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sz.Server.CampaignsAccepted != 1 || sz.Server.CellsSimulated != 4 || sz.Server.CampaignsCompleted != 1 {
		t.Fatalf("statsz server: %+v", sz.Server)
	}
	if sz.Workers != 2 || sz.Draining {
		t.Fatalf("statsz: %+v", sz)
	}
	if fmt.Sprint(sz.Server) == "" {
		t.Fatal("ServerStats.String empty")
	}

	srv.Shutdown()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if buf.String() != "ok\n" {
		t.Fatalf("healthz while draining: %q", buf.String())
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || buf.String() != "draining\n" {
		t.Fatalf("readyz while draining: %s %q", resp.Status, buf.String())
	}
}
