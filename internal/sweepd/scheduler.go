package sweepd

import (
	"fmt"
	"time"

	"invisifence"
	"invisifence/internal/stats"
)

// runCell satisfies one campaign cell. The resolution order is the
// server's economy: persistent cache first (free), then the in-flight
// registry (share a simulation another worker is already running), then
// a fresh simulation published back into the cache before any
// single-flight follower is released — so by the time a waiter or a
// restarted process asks, the cache answers.
//
// Every attempt runs under the watchdog deadline, and a timed-out or
// failed attempt is retried with capped exponential backoff until the
// attempt budget is spent — then the cell, never the campaign, is
// marked failed. The cache is re-checked before each attempt: a
// timed-out attempt's simulation keeps running in the background and
// publishes on completion, so a retry often finds the answer waiting.
func (s *Server) runCell(c *Campaign, i int) {
	if s.draining.Load() {
		c.transition(i, cellAborted, nil, "server draining: cell was queued, never started")
		s.finishCampaign(c, func(t *stats.ServerStats) { t.CellsAborted++ })
		return
	}
	c.transition(i, cellRunning, nil, "")
	key := c.keys[i]
	timeout := s.cellTimeout(c.spec.Scale)
	attempts := 1 + s.opts.MaxCellRetries
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.noteRetry(i)
			s.count(func(t *stats.ServerStats) { t.CellRetries++ })
			if d := s.backoff(attempt); d > 0 {
				s.clock.Sleep(d)
			}
			if s.draining.Load() {
				lastErr = fmt.Errorf("server draining: retry %d abandoned (%w)", attempt, lastErr)
				break
			}
		}
		var res invisifence.Result
		if ok, _ := s.cache.Get(key, &res); ok {
			c.transition(i, cellCached, &res, "")
			s.finishCampaign(c, func(t *stats.ServerStats) { t.CellsCached++ })
			return
		}
		c.journal(journalRecord{T: recStart, Cell: i, Attempt: attempt})
		v, shared, err := s.attempt(c, i, key, timeout)
		switch {
		case err == errCellTimeout:
			s.count(func(t *stats.ServerStats) { t.CellTimeouts++ })
			lastErr = fmt.Errorf("attempt %d exceeded the %v cell deadline", attempt, timeout)
		case err != nil:
			lastErr = err
		case shared:
			r := v.(invisifence.Result)
			c.transition(i, cellDeduped, &r, "")
			s.finishCampaign(c, func(t *stats.ServerStats) { t.CellsDeduped++ })
			return
		default:
			r := v.(invisifence.Result)
			c.transition(i, cellSimulated, &r, "")
			s.finishCampaign(c, func(t *stats.ServerStats) { t.CellsSimulated++ })
			return
		}
	}
	c.transition(i, cellFailed, nil, lastErr.Error())
	s.finishCampaign(c, func(t *stats.ServerStats) { t.CellsFailed++ })
}

// errCellTimeout marks a watchdog expiry (distinguished from simulation
// errors so it can be counted separately).
var errCellTimeout = fmt.Errorf("sweepd: cell deadline exceeded")

// attempt executes one watchdogged try of a cell. On timeout the
// simulation goroutine is abandoned, not killed: it keeps running,
// publishes its result into the cache on completion (the retry loop's
// pre-attempt cache check collects it), and its buffered channel lets it
// exit. The worker, though, is freed — which is what bounds drain time.
func (s *Server) attempt(c *Campaign, i int, key string, timeout time.Duration) (any, bool, error) {
	type outcome struct {
		v      any
		shared bool
		err    error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, shared, err := s.flight.Do(key, func() (any, error) {
			r, err := s.safeRun(c.jobs[i])
			if err != nil {
				return nil, err
			}
			// Publish before the flight releases its followers:
			// best-effort (a failed write degrades a future process to
			// re-simulation), but ordered so a drain that returns after
			// this cell finished implies the result is on disk.
			_ = s.cache.Put(key, r)
			return r, nil
		})
		ch <- outcome{v, shared, err}
	}()
	var after <-chan time.Time
	if timeout > 0 {
		after = s.clock.After(timeout)
	}
	select {
	case o := <-ch:
		return o.v, o.shared, o.err
	case <-after:
		return nil, false, errCellTimeout
	}
}

// cellTimeout derives the per-attempt watchdog deadline from the spec's
// scale: CellTimeout when set, a scale-proportional budget when zero,
// none when negative.
func (s *Server) cellTimeout(scale float64) time.Duration {
	switch {
	case s.opts.CellTimeout > 0:
		return s.opts.CellTimeout
	case s.opts.CellTimeout < 0:
		return 0
	}
	mult := scale
	if mult < 1 {
		mult = 1
	}
	return time.Duration(float64(defaultScaleBudget) * mult)
}

// backoff is the sleep before retry attempt k (k >= 1): capped
// exponential on the configured base.
func (s *Server) backoff(attempt int) time.Duration {
	base := s.opts.RetryBackoff
	if base <= 0 {
		return 0
	}
	d := base
	for k := 1; k < attempt && d < backoffCap*base; k++ {
		d *= 2
	}
	if d > backoffCap*base {
		d = backoffCap * base
	}
	return d
}

// safeRun executes one cell, converting a panic into an error: a
// poisoned cell fails alone — the worker, its queue siblings, and the
// server all survive. (The flight layer has the same guard, so even a
// panic outside safeRun's window could not strand followers.) The cell
// fault-injection site fires inside the guard, so injected panics take
// the organic path.
func (s *Server) safeRun(cfg invisifence.Config) (res invisifence.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("sweepd: cell %s/%s seed=%d panicked: %v",
				cfg.Workload, cfg.Variant.Name, cfg.Seed, p)
		}
	}()
	s.inj.Delay(SiteCell)
	s.inj.MaybePanic(SiteCell)
	if err := s.inj.Err(SiteCell); err != nil {
		return res, err
	}
	return s.opts.Run(cfg)
}

// finishCampaign applies the cell's telemetry delta and, when this cell
// completed its campaign, the campaign-level counters.
func (s *Server) finishCampaign(c *Campaign, cell func(*stats.ServerStats)) {
	st := ""
	c.mu.Lock()
	if c.finished {
		st = c.stateLocked()
	}
	justFinished := c.finished && !c.counted
	c.counted = c.finished
	c.mu.Unlock()
	s.count(func(t *stats.ServerStats) {
		cell(t)
		if justFinished {
			if st == "done" {
				t.CampaignsCompleted++
			} else {
				t.CampaignsFailed++
			}
		}
	})
}
