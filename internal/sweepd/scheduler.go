package sweepd

import (
	"fmt"

	"invisifence"
	"invisifence/internal/stats"
)

// runCell satisfies one campaign cell. The resolution order is the
// server's economy: persistent cache first (free), then the in-flight
// registry (share a simulation another worker is already running), then
// a fresh simulation published back into the cache before any
// single-flight follower is released — so by the time a waiter or a
// restarted process asks, the cache answers.
func (s *Server) runCell(c *Campaign, i int) {
	if s.draining.Load() {
		c.transition(i, cellAborted, nil, "server draining: cell was queued, never started")
		s.finishCampaign(c, func(t *stats.ServerStats) { t.CellsAborted++ })
		return
	}
	c.transition(i, cellRunning, nil, "")
	key := c.keys[i]
	var res invisifence.Result
	if ok, _ := s.cache.Get(key, &res); ok {
		c.transition(i, cellCached, &res, "")
		s.finishCampaign(c, func(t *stats.ServerStats) { t.CellsCached++ })
		return
	}
	v, shared, err := s.flight.Do(key, func() (any, error) {
		r, err := s.safeRun(c.jobs[i])
		if err != nil {
			return nil, err
		}
		// Publish before the flight releases its followers: best-effort
		// (a failed write degrades a future process to re-simulation),
		// but ordered so a drain that returns after this cell finished
		// implies the result is on disk.
		_ = s.cache.Put(key, r)
		return r, nil
	})
	switch {
	case err != nil:
		c.transition(i, cellFailed, nil, err.Error())
		s.finishCampaign(c, func(t *stats.ServerStats) { t.CellsFailed++ })
	case shared:
		r := v.(invisifence.Result)
		c.transition(i, cellDeduped, &r, "")
		s.finishCampaign(c, func(t *stats.ServerStats) { t.CellsDeduped++ })
	default:
		r := v.(invisifence.Result)
		c.transition(i, cellSimulated, &r, "")
		s.finishCampaign(c, func(t *stats.ServerStats) { t.CellsSimulated++ })
	}
}

// safeRun executes one cell, converting a panic into an error: a
// poisoned cell fails alone — the worker, its queue siblings, and the
// server all survive. (The flight layer has the same guard, so even a
// panic outside safeRun's window could not strand followers.)
func (s *Server) safeRun(cfg invisifence.Config) (res invisifence.Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("sweepd: cell %s/%s seed=%d panicked: %v",
				cfg.Workload, cfg.Variant.Name, cfg.Seed, p)
		}
	}()
	return s.opts.Run(cfg)
}

// finishCampaign applies the cell's telemetry delta and, when this cell
// completed its campaign, the campaign-level counters.
func (s *Server) finishCampaign(c *Campaign, cell func(*stats.ServerStats)) {
	st := ""
	c.mu.Lock()
	if c.finished {
		st = c.stateLocked()
	}
	justFinished := c.finished && !c.counted
	c.counted = c.finished
	c.mu.Unlock()
	s.count(func(t *stats.ServerStats) {
		cell(t)
		if justFinished {
			if st == "done" {
				t.CampaignsCompleted++
			} else {
				t.CampaignsFailed++
			}
		}
	})
}
