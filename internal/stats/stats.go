// Package stats implements the cycle-accounting taxonomy of Figure 9
// (Busy / Other / SB full / SB drain / Violation), speculation-time
// tracking for Figure 10, and the multi-seed mean and 95% confidence
// interval reporting that stands in for SimFlex sampling (§6.1).
package stats

import (
	"fmt"
	"math"
)

// CycleClass classifies one core-cycle at retirement, matching the five
// runtime components of Figure 9.
type CycleClass uint8

const (
	// Busy: at least one instruction retired this cycle.
	Busy CycleClass = iota
	// Other: stalls unrelated to memory ordering (load misses at the ROB
	// head, empty ROB after redirects, atomic data waits).
	Other
	// SBFull: a store stalls retirement waiting for a free store buffer
	// entry.
	SBFull
	// SBDrain: retirement stalls until the store buffer drains because of
	// an ordering requirement (SC loads, TSO/RMO atomics and fences).
	SBDrain
	// Violation: cycles spent in post-retirement speculation that was
	// eventually rolled back.
	Violation
	// NumClasses is the class count.
	NumClasses
)

// String implements fmt.Stringer.
func (c CycleClass) String() string {
	switch c {
	case Busy:
		return "Busy"
	case Other:
		return "Other"
	case SBFull:
		return "SB full"
	case SBDrain:
		return "SB drain"
	case Violation:
		return "Violation"
	}
	return fmt.Sprintf("CycleClass(%d)", uint8(c))
}

// Breakdown is a per-class cycle count.
type Breakdown [NumClasses]uint64

// Total sums all classes.
func (b *Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// Add merges another breakdown into this one.
func (b *Breakdown) Add(o *Breakdown) {
	for i := range b {
		b[i] += o[i]
	}
}

// Frac returns class c's share of the total, in [0,1].
func (b *Breakdown) Frac(c CycleClass) float64 {
	t := b.Total()
	if t == 0 {
		return 0
	}
	return float64(b[c]) / float64(t)
}

// NodeStats accumulates one core's accounting. Cycles spent inside an
// active speculation are staged per checkpoint epoch; commit folds the
// staged cycles into the final breakdown under their original classes,
// abort reclassifies them all as Violation (the paper's definition: cycles
// of speculative work that is ultimately discarded).
type NodeStats struct {
	Final Breakdown

	// staged[epoch] holds provisional cycles for an active epoch.
	staged [8]Breakdown

	// SpecCycles counts every cycle spent with speculation active
	// (committed or not): the Figure 10 numerator.
	SpecCycles uint64
	// TotalCycles counts every accounted cycle (the Figure 10 denominator).
	TotalCycles uint64

	// Event counters.
	Speculations  uint64 // speculation episodes begun
	Commits       uint64 // epochs committed
	Aborts        uint64 // epochs aborted
	CoVDeferrals  uint64 // probes deferred by commit-on-violate
	CoVSaves      uint64 // deferrals that ended in commit rather than abort
	ForcedCommits uint64 // commits forced by eviction pressure
	Retired       uint64 // instructions retired
}

// Account records one cycle of class c. If epoch >= 0 the cycle is staged
// against that active speculation epoch; otherwise it is final.
func (s *NodeStats) Account(c CycleClass, epoch int) {
	s.AccountN(c, epoch, 1)
}

// AccountN records n identical cycles of class c at once: the idle-skip
// scheduler fast-forwards stretches in which the per-cycle classification
// is provably constant, and replays their accounting in bulk.
func (s *NodeStats) AccountN(c CycleClass, epoch int, n uint64) {
	s.TotalCycles += n
	if epoch >= 0 {
		s.SpecCycles += n
		s.staged[epoch][c] += n
		return
	}
	s.Final[c] += n
}

// CommitEpoch folds an epoch's staged cycles into the final breakdown.
func (s *NodeStats) CommitEpoch(epoch int) {
	s.Final.Add(&s.staged[epoch])
	s.staged[epoch] = Breakdown{}
	s.Commits++
}

// AbortEpoch reclassifies an epoch's staged cycles as Violation.
func (s *NodeStats) AbortEpoch(epoch int) {
	s.Final[Violation] += s.staged[epoch].Total()
	s.staged[epoch] = Breakdown{}
	s.Aborts++
}

// SpecFraction returns the Figure 10 metric: the fraction of cycles spent
// speculating.
func (s *NodeStats) SpecFraction() float64 {
	if s.TotalCycles == 0 {
		return 0
	}
	return float64(s.SpecCycles) / float64(s.TotalCycles)
}

// RunnerStats is scheduler telemetry: how much work each runner actually
// did to simulate a run. The parallel runner keeps one instance per cluster
// goroutine (written only by that goroutine between barriers) and merges
// them in ascending cluster order once the run completes, so the aggregate
// is deterministic. It is deliberately not part of a run's Result: all
// runners must produce deeply-equal Results, while their telemetry
// necessarily differs.
type RunnerStats struct {
	// SimulatedCycles counts cycles at which at least one of the cluster's
	// nodes ticked; NodeTicks counts individual node ticks and
	// SkippedNodeCycles the node-cycles replayed in bulk via SkipCycles
	// (the per-node local-clock win: NodeTicks + SkippedNodeCycles =
	// nodes x simulated span).
	SimulatedCycles   uint64
	NodeTicks         uint64
	SkippedNodeCycles uint64

	// Coordinator-level counters (identical across clusters; tracked once).
	Epochs         uint64 // epoch barriers executed
	IdleJumpCycles uint64 // cycles fast-forwarded by whole-system jumps at barriers
	Resolutions    uint64 // endgame finish-resolution rounds
}

// Merge adds o into r field-wise. Callers merge per-cluster instances in
// ascending cluster order for a deterministic aggregate.
func (r *RunnerStats) Merge(o *RunnerStats) {
	r.SimulatedCycles += o.SimulatedCycles
	r.NodeTicks += o.NodeTicks
	r.SkippedNodeCycles += o.SkippedNodeCycles
	r.Epochs += o.Epochs
	r.IdleJumpCycles += o.IdleJumpCycles
	r.Resolutions += o.Resolutions
}

// NetStats is the interconnect's link-contention accounting (DESIGN.md
// §10). All counters are zero when the contention model is off
// (network.Config.LinkBandwidth == 0): a latency-only run carries no
// contention telemetry, which keeps bandwidth-0 Results byte-identical to
// the pre-contention simulator.
//
// The counters are deterministic across all three runners: every injection
// link belongs to exactly one source node, each node's sends happen at
// identical cycles in identical order under every runner (the bit-exactness
// contract), and the per-shard instances merge with order-independent
// operations (sums and a max).
type NetStats struct {
	// Messages counts sends that traversed an injection link (self-sends
	// bypass the network's links and are excluded).
	Messages uint64 `json:",omitempty"`
	// QueuedMessages is the subset of Messages that found their injection
	// link busy and waited.
	QueuedMessages uint64 `json:",omitempty"`
	// QueueDelayCycles sums every message's queuing delay: cycles between
	// the send and the start of its link transmission.
	QueueDelayCycles uint64 `json:",omitempty"`
	// LinkBusyCycles sums link-occupancy reservations (flits x
	// cycles-per-flit over all link-traversing messages).
	LinkBusyCycles uint64 `json:",omitempty"`
	// MaxQueueDepth is the largest number of messages simultaneously
	// holding or waiting on any single injection link.
	MaxQueueDepth uint64 `json:",omitempty"`
}

// Merge folds o into n: counters sum, MaxQueueDepth takes the maximum.
// Both operations are order-independent, so merging per-shard instances in
// any order yields the serial network's aggregate exactly.
func (n *NetStats) Merge(o *NetStats) {
	n.Messages += o.Messages
	n.QueuedMessages += o.QueuedMessages
	n.QueueDelayCycles += o.QueueDelayCycles
	n.LinkBusyCycles += o.LinkBusyCycles
	if o.MaxQueueDepth > n.MaxQueueDepth {
		n.MaxQueueDepth = o.MaxQueueDepth
	}
}

// QueueDelayPerMsg returns the mean queuing delay in cycles per
// link-traversing message (0 when the contention model was off).
func (n NetStats) QueueDelayPerMsg() float64 {
	if n.Messages == 0 {
		return 0
	}
	return float64(n.QueueDelayCycles) / float64(n.Messages)
}

// Summary is the mean and 95% confidence half-width of a set of samples
// (one per seed), the stand-in for SimFlex sampling error bars.
type Summary struct {
	Mean     float64
	HalfCI95 float64
	N        int
}

// Summarize computes the summary of samples using a normal approximation
// (1.96 sigma / sqrt(n)); with the small seed counts used here this is the
// intent of the paper's error bars, not a strict t-interval.
func Summarize(samples []float64) Summary {
	n := len(samples)
	if n == 0 {
		return Summary{}
	}
	var sum float64
	for _, v := range samples {
		sum += v
	}
	mean := sum / float64(n)
	if n == 1 {
		return Summary{Mean: mean, N: 1}
	}
	var ss float64
	for _, v := range samples {
		d := v - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return Summary{Mean: mean, HalfCI95: 1.96 * sd / math.Sqrt(float64(n)), N: n}
}

func (s Summary) String() string {
	if s.N <= 1 {
		return fmt.Sprintf("%.3f", s.Mean)
	}
	return fmt.Sprintf("%.3f ±%.3f", s.Mean, s.HalfCI95)
}
