package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBreakdownTotalsAndFractions(t *testing.T) {
	var b Breakdown
	b[Busy] = 50
	b[Other] = 30
	b[SBDrain] = 20
	if b.Total() != 100 {
		t.Fatalf("total = %d", b.Total())
	}
	if b.Frac(Busy) != 0.5 || b.Frac(SBFull) != 0 {
		t.Fatal("fractions wrong")
	}
	var o Breakdown
	o[Busy] = 10
	b.Add(&o)
	if b[Busy] != 60 {
		t.Fatal("add wrong")
	}
	var empty Breakdown
	if empty.Frac(Busy) != 0 {
		t.Fatal("empty breakdown fraction must be 0")
	}
}

func TestStagedCommitKeepsClasses(t *testing.T) {
	var s NodeStats
	s.Account(Busy, 1)
	s.Account(Other, 1)
	s.Account(Busy, 1)
	if s.Final.Total() != 0 {
		t.Fatal("staged cycles leaked into final")
	}
	s.CommitEpoch(1)
	if s.Final[Busy] != 2 || s.Final[Other] != 1 || s.Final[Violation] != 0 {
		t.Fatalf("commit misfiled: %v", s.Final)
	}
}

func TestStagedAbortBecomesViolation(t *testing.T) {
	var s NodeStats
	s.Account(Busy, 0)
	s.Account(SBDrain, 0)
	s.AbortEpoch(0)
	if s.Final[Violation] != 2 || s.Final[Busy] != 0 {
		t.Fatalf("abort misfiled: %v", s.Final)
	}
	if s.Aborts != 1 {
		t.Fatal("abort not counted")
	}
}

func TestSpecFraction(t *testing.T) {
	var s NodeStats
	s.Account(Busy, -1)
	s.Account(Busy, 0)
	s.Account(Busy, 0)
	s.Account(Busy, -1)
	if got := s.SpecFraction(); got != 0.5 {
		t.Fatalf("spec fraction = %f", got)
	}
	var empty NodeStats
	if empty.SpecFraction() != 0 {
		t.Fatal("empty spec fraction")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 6})
	if s.Mean != 4 || s.N != 3 {
		t.Fatalf("summary %+v", s)
	}
	// sd = 2, CI = 1.96*2/sqrt(3)
	want := 1.96 * 2 / math.Sqrt(3)
	if math.Abs(s.HalfCI95-want) > 1e-9 {
		t.Fatalf("CI = %f, want %f", s.HalfCI95, want)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary")
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.HalfCI95 != 0 {
		t.Fatalf("single summary %+v", one)
	}
	if one.String() == "" || s.String() == "" {
		t.Fatal("summary strings")
	}
}

func TestSummarizeMeanBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, x := range xs {
			// Skip inputs where the plain sum overflows.
			if math.IsNaN(x) || math.Abs(x) > 1e300/float64(len(xs)) {
				return true
			}
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		m := Summarize(xs).Mean
		return m >= lo-1e-9 && m <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCycleClassStrings(t *testing.T) {
	seen := map[string]bool{}
	for c := Busy; c < NumClasses; c++ {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("bad class string %q", s)
		}
		seen[s] = true
	}
}
