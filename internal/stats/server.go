package stats

import "fmt"

// ServerStats is the sweepd campaign server's lifetime telemetry: every
// counter is monotone since process start, so deltas between scrapes are
// meaningful. Cell counters classify each scheduled cell by how it was
// satisfied — exactly one of Cached / Simulated / Deduped / Failed /
// Aborted per cell — which makes "CellsSimulated stayed flat across a
// repeated campaign" the server-side statement of the single-flight and
// cache contracts.
type ServerStats struct {
	// CampaignsAccepted counts specs admitted by POST /sweeps;
	// CampaignsCompleted the subset that reached a terminal state with
	// every cell satisfied, CampaignsFailed those that finished with at
	// least one failed or aborted cell.
	CampaignsAccepted  uint64 `json:"campaigns_accepted"`
	CampaignsCompleted uint64 `json:"campaigns_completed"`
	CampaignsFailed    uint64 `json:"campaigns_failed"`
	// CampaignsRecovered counts campaigns re-admitted from their durable
	// journal after a restart (DESIGN.md §14).
	CampaignsRecovered uint64 `json:"campaigns_recovered"`
	// JournalErrors counts journals that could not be opened, replayed,
	// or resumed (set aside as .bad files).
	JournalErrors uint64 `json:"journal_errors"`
	// SpecsRejected counts malformed or invalid specs (400s);
	// SpecsRefused counts specs turned away by a draining server (503s).
	SpecsRejected uint64 `json:"specs_rejected"`
	SpecsRefused  uint64 `json:"specs_refused"`

	// CellsScheduled counts cells handed to the worker pool.
	CellsScheduled uint64 `json:"cells_scheduled"`
	// CellsCached were answered by the persistent cache, CellsSimulated
	// ran a simulation in this process, CellsDeduped shared another
	// in-flight cell's simulation (single-flight followers),
	// CellsFailed errored or panicked, and CellsAborted were queued
	// cells abandoned by a graceful shutdown.
	CellsCached    uint64 `json:"cells_cached"`
	CellsSimulated uint64 `json:"cells_simulated"`
	CellsDeduped   uint64 `json:"cells_deduped"`
	CellsFailed    uint64 `json:"cells_failed"`
	CellsAborted   uint64 `json:"cells_aborted"`
	// CellRetries counts cell attempts beyond each cell's first;
	// CellTimeouts counts attempts cut off by the watchdog deadline.
	// Neither is terminal: a retried or timed-out cell still ends in
	// exactly one of the five states above.
	CellRetries  uint64 `json:"cell_retries"`
	CellTimeouts uint64 `json:"cell_timeouts"`
}

// String renders the stats for log output.
func (s ServerStats) String() string {
	out := fmt.Sprintf(
		"campaigns: %d accepted (%d completed, %d failed, %d rejected, %d refused); cells: %d scheduled (%d cached, %d simulated, %d deduped, %d failed, %d aborted)",
		s.CampaignsAccepted, s.CampaignsCompleted, s.CampaignsFailed, s.SpecsRejected, s.SpecsRefused,
		s.CellsScheduled, s.CellsCached, s.CellsSimulated, s.CellsDeduped, s.CellsFailed, s.CellsAborted)
	if s.CellRetries > 0 || s.CellTimeouts > 0 {
		out += fmt.Sprintf("; %d retries, %d timeouts", s.CellRetries, s.CellTimeouts)
	}
	if s.CampaignsRecovered > 0 || s.JournalErrors > 0 {
		out += fmt.Sprintf("; %d recovered, %d journal errors", s.CampaignsRecovered, s.JournalErrors)
	}
	return out
}
