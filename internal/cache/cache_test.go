package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"invisifence/internal/memtypes"
)

func mk(t *testing.T, kb, ways int) *Cache {
	t.Helper()
	return New(Config{SizeBytes: kb << 10, Ways: ways, HitLatency: 2, Name: "test"})
}

func TestLookupInstall(t *testing.T) {
	c := mk(t, 4, 2)
	a := memtypes.Addr(0x1000)
	if c.Lookup(a) != nil {
		t.Fatal("hit on empty cache")
	}
	v := c.Victim(a, false)
	if v == nil {
		t.Fatal("no victim in empty set")
	}
	var d memtypes.BlockData
	d[3] = 77
	c.Install(v, a, d, Shared)
	l := c.Lookup(a)
	if l == nil || l.Data[3] != 77 || l.State != Shared {
		t.Fatalf("bad line after install: %+v", l)
	}
	// Same block, different word address.
	if c.Lookup(a+8) == nil {
		t.Fatal("same-block lookup missed")
	}
	// Different set.
	if c.Lookup(a+memtypes.Addr(c.Sets()*memtypes.BlockBytes)) != nil {
		t.Fatal("spurious hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := mk(t, 4, 2) // 32 sets
	setStride := memtypes.Addr(c.Sets() * memtypes.BlockBytes)
	a0, a1, a2 := memtypes.Addr(0), setStride, 2*setStride // same set
	for _, a := range []memtypes.Addr{a0, a1} {
		v := c.Victim(a, false)
		c.Install(v, a, memtypes.BlockData{}, Exclusive)
	}
	c.Lookup(a0) // a0 is now MRU
	v := c.Victim(a2, false)
	if v.Addr != a1 {
		t.Fatalf("victim = %#x, want a1 (%#x)", uint64(v.Addr), uint64(a1))
	}
}

func TestVictimPrefersNonSpec(t *testing.T) {
	c := mk(t, 4, 2)
	setStride := memtypes.Addr(c.Sets() * memtypes.BlockBytes)
	a0, a1 := memtypes.Addr(0), setStride
	v := c.Victim(a0, false)
	c.Install(v, a0, memtypes.BlockData{}, Modified)
	v = c.Victim(a1, false)
	c.Install(v, a1, memtypes.BlockData{}, Modified)
	// Mark the LRU line speculative: the other must be chosen.
	c.MarkSpecWritten(c.Peek(a0), 0)
	c.Lookup(a1) // make a1 MRU; a0 is LRU but speculative
	v = c.Victim(2*setStride, false)
	if v == nil || v.Addr != a1 {
		t.Fatalf("victim should avoid speculative LRU line")
	}
	// With both speculative and allowSpec=false: no victim.
	c.MarkSpecRead(c.Peek(a1), 1)
	if c.Victim(2*setStride, false) != nil {
		t.Fatal("victim offered despite all-speculative set")
	}
	if c.Victim(2*setStride, true) == nil {
		t.Fatal("allowSpec should offer a victim")
	}
}

func TestVictimFilteredLocked(t *testing.T) {
	c := mk(t, 4, 2)
	setStride := memtypes.Addr(c.Sets() * memtypes.BlockBytes)
	a0, a1 := memtypes.Addr(0), setStride
	for _, a := range []memtypes.Addr{a0, a1} {
		v := c.Victim(a, false)
		c.Install(v, a, memtypes.BlockData{}, Shared)
	}
	locked := func(a memtypes.Addr) bool { return a == a0 }
	v := c.VictimFiltered(2*setStride, false, locked)
	if v == nil || v.Addr != a1 {
		t.Fatal("filter did not exclude locked block")
	}
}

func TestFlashClearSpec(t *testing.T) {
	c := mk(t, 4, 2)
	for i := 0; i < 8; i++ {
		a := memtypes.Addr(i * memtypes.BlockBytes)
		v := c.Victim(a, false)
		c.Install(v, a, memtypes.BlockData{}, Exclusive)
		l := c.Peek(a)
		if i%2 == 0 {
			c.MarkSpecRead(l, 0)
		}
		if i%3 == 0 {
			c.MarkSpecWritten(l, 1)
		}
	}
	c.FlashClearSpec(0)
	if c.SpecLineCount(0) != 0 {
		t.Fatal("epoch 0 bits survived flash clear")
	}
	if c.SpecLineCount(1) == 0 {
		t.Fatal("epoch 1 bits should survive epoch 0 clear")
	}
}

func TestConditionalInvalidate(t *testing.T) {
	c := mk(t, 4, 2)
	aW := memtypes.Addr(0)                       // written speculatively
	aR := memtypes.Addr(memtypes.BlockBytes)     // only read speculatively
	aN := memtypes.Addr(2 * memtypes.BlockBytes) // untouched
	for _, a := range []memtypes.Addr{aW, aR, aN} {
		v := c.Victim(a, false)
		c.Install(v, a, memtypes.BlockData{}, Exclusive)
	}
	c.MarkSpecWritten(c.Peek(aW), 0)
	c.Peek(aW).State = Modified
	c.MarkSpecRead(c.Peek(aR), 0)
	n := c.ConditionalInvalidate(0)
	if n != 1 {
		t.Fatalf("invalidated %d lines, want 1", n)
	}
	if c.Peek(aW) != nil {
		t.Fatal("speculatively-written line survived abort")
	}
	if l := c.Peek(aR); l == nil || l.SpecRead[0] {
		t.Fatal("speculatively-read line must survive with bits cleared")
	}
	if c.Peek(aN) == nil {
		t.Fatal("untouched line lost")
	}
}

func TestInvalidateReturnsOldContents(t *testing.T) {
	c := mk(t, 4, 2)
	a := memtypes.Addr(0x40)
	v := c.Victim(a, false)
	var d memtypes.BlockData
	d[1] = 9
	c.Install(v, a, d, Modified)
	old, ok := c.Invalidate(a)
	if !ok || old.Data[1] != 9 || old.State != Modified {
		t.Fatalf("bad old contents: %+v ok=%v", old, ok)
	}
	if _, ok := c.Invalidate(a); ok {
		t.Fatal("double invalidate reported a line")
	}
}

// TestCacheVsReferenceModel is a property test: a random stream of installs,
// lookups, and invalidations against a map-based reference. Presence in the
// cache implies data equality with the reference; the reference may hold
// blocks the cache evicted.
func TestCacheVsReferenceModel(t *testing.T) {
	c := mk(t, 2, 2)
	ref := make(map[memtypes.Addr]memtypes.BlockData)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 5000; i++ {
		a := memtypes.Addr(rng.Intn(256)) * memtypes.BlockBytes
		switch rng.Intn(3) {
		case 0: // install/update
			var d memtypes.BlockData
			d[0] = memtypes.Word(i)
			if l := c.Peek(a); l != nil {
				l.Data = d
			} else {
				v := c.Victim(a, true)
				if v.State.Valid() {
					delete(ref, v.Addr)
					c.Invalidate(v.Addr)
				}
				c.Install(v, a, d, Exclusive)
			}
			ref[a] = d
		case 1: // lookup
			l := c.Peek(a)
			if l != nil {
				want, ok := ref[a]
				if !ok {
					t.Fatalf("cache holds %#x the reference lost", uint64(a))
				}
				if l.Data != want {
					t.Fatalf("data mismatch at %#x", uint64(a))
				}
			}
		case 2: // invalidate
			c.Invalidate(a)
			delete(ref, a)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{SizeBytes: 1000, Ways: 2, Name: "odd"},    // not a whole set count
		{SizeBytes: 3 << 10, Ways: 2, Name: "np2"}, // sets not power of two
		{SizeBytes: 4 << 10, Ways: 0, Name: "w0"},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", bad)
				}
			}()
			New(bad)
		}()
	}
}

func TestLineStateHelpers(t *testing.T) {
	if Invalid.Valid() || !Shared.Valid() {
		t.Fatal("Valid()")
	}
	if Shared.Writable() || !Exclusive.Writable() || !Modified.Writable() {
		t.Fatal("Writable()")
	}
	f := func(s uint8) bool {
		st := LineState(s % 4)
		return st.String() != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
