// Package cache implements the set-associative write-back caches of the
// simulated node (L1D and L2 from Figure 6), including the paper's additions
// to the primary data cache: per-line speculatively-read and
// speculatively-written bits (one pair per in-flight checkpoint epoch) with
// single-cycle flash-clear and conditional flash-invalidate operations —
// the behavioural equivalent of the augmented SRAM cells in Figure 3.
package cache

import (
	"fmt"

	"invisifence/internal/memtypes"
)

// LineState is the MESI state of a cache line.
type LineState uint8

const (
	// Invalid: no valid copy.
	Invalid LineState = iota
	// Shared: read-only copy; other caches may hold it too.
	Shared
	// Exclusive: writable clean copy; no other cache holds it.
	Exclusive
	// Modified: writable dirty copy; memory is stale.
	Modified
)

// String implements fmt.Stringer.
func (s LineState) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("LineState(%d)", uint8(s))
}

// Writable reports whether a line in this state may be written locally.
func (s LineState) Writable() bool { return s == Exclusive || s == Modified }

// Valid reports whether the line holds a usable copy.
func (s LineState) Valid() bool { return s != Invalid }

// MaxEpochs is the number of speculative checkpoint epochs the bit arrays
// support. InvisiFence uses one (optionally two, §3.1); the ASO baseline's
// periodic checkpointing (§2.2) uses up to four.
const MaxEpochs = 4

// Line is one cache line. Speculative bits index by checkpoint epoch.
type Line struct {
	Addr        memtypes.Addr // block-aligned; meaningful only when valid
	State       LineState
	Data        memtypes.BlockData
	SpecRead    [MaxEpochs]bool
	SpecWritten [MaxEpochs]bool
	lru         uint64
}

// SpecAny reports whether any speculative bit is set on the line.
func (l *Line) SpecAny() bool {
	for e := 0; e < MaxEpochs; e++ {
		if l.SpecRead[e] || l.SpecWritten[e] {
			return true
		}
	}
	return false
}

// SpecWrittenAny reports whether any epoch's written bit is set.
func (l *Line) SpecWrittenAny() bool {
	for e := 0; e < MaxEpochs; e++ {
		if l.SpecWritten[e] {
			return true
		}
	}
	return false
}

// SpecReadAny reports whether any epoch's read bit is set.
func (l *Line) SpecReadAny() bool {
	for e := 0; e < MaxEpochs; e++ {
		if l.SpecRead[e] {
			return true
		}
	}
	return false
}

// OldestSpecEpoch returns the lowest epoch index with a bit set on the line,
// or -1 if none. The caller maps epoch indexes to checkpoint age.
func (l *Line) OldestSpecEpoch() int {
	for e := 0; e < MaxEpochs; e++ {
		if l.SpecRead[e] || l.SpecWritten[e] {
			return e
		}
	}
	return -1
}

func (l *Line) clearSpec(epoch int) {
	l.SpecRead[epoch] = false
	l.SpecWritten[epoch] = false
}

// Config describes one cache's geometry and timing.
type Config struct {
	SizeBytes  int
	Ways       int
	HitLatency uint64
	Name       string // for error messages and stats
}

// Cache is a set-associative write-back cache with LRU replacement.
type Cache struct {
	cfg      Config
	sets     [][]Line
	setMask  uint64
	lruClock uint64

	// touched[epoch] lists lines that may carry that epoch's speculative
	// bits: every false->true bit transition goes through MarkSpecRead/
	// MarkSpecWritten, which appends the line on its first marking. The
	// flash operations then visit only these lines instead of walking the
	// whole cache per commit/abort. Entries may be stale (bits since
	// cleared by an invalidation) or duplicated (re-marked after an
	// invalidation); both are harmless because the flash operations
	// re-check the bits.
	touched [MaxEpochs][]*Line

	// Stats.
	Hits, Misses, Evictions, Writebacks uint64
}

// New creates a cache. SizeBytes must be a multiple of Ways*BlockBytes and
// the resulting set count must be a power of two.
func New(cfg Config) *Cache {
	if cfg.Ways <= 0 {
		panic("cache: ways must be positive")
	}
	lines := cfg.SizeBytes / memtypes.BlockBytes
	if lines <= 0 || lines%cfg.Ways != 0 {
		panic(fmt.Sprintf("cache %s: %d bytes / %d ways is not a whole number of sets", cfg.Name, cfg.SizeBytes, cfg.Ways))
	}
	nsets := lines / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d is not a power of two", cfg.Name, nsets))
	}
	c := &Cache{cfg: cfg, setMask: uint64(nsets - 1)}
	// Sets materialize lazily, on the first install that touches them: a
	// Figure 6 machine carries ~17 MB of line state across its 16 nodes, and
	// zeroing all of it up front dominated short runs' setup time. A nil set
	// behaves as all-invalid for lookups (range over nil), and victim
	// selection materializes it.
	c.sets = make([][]Line, nsets)
	return c
}

// materialize allocates a set's lines on first use (all invalid).
func (c *Cache) materialize(idx uint64) []Line {
	set := make([]Line, c.cfg.Ways)
	c.sets[idx] = set
	return set
}

// HitLatency returns the configured access latency in cycles.
func (c *Cache) HitLatency() uint64 { return c.cfg.HitLatency }

// Sets returns the number of sets (used by tests).
func (c *Cache) Sets() int { return len(c.sets) }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.cfg.Ways }

func (c *Cache) setFor(a memtypes.Addr) []Line {
	return c.sets[(uint64(a)>>memtypes.BlockShift)&c.setMask]
}

// Lookup returns the line holding a's block and records an LRU touch, or nil
// on miss.
func (c *Cache) Lookup(a memtypes.Addr) *Line {
	ba := memtypes.BlockAddr(a)
	set := c.setFor(a)
	for i := range set {
		l := &set[i]
		if l.State.Valid() && l.Addr == ba {
			c.lruClock++
			l.lru = c.lruClock
			c.Hits++
			return l
		}
	}
	c.Misses++
	return nil
}

// Peek returns the line holding a's block without touching LRU or stats, or
// nil if not present. Used by external probes and spec-bit checks.
func (c *Cache) Peek(a memtypes.Addr) *Line {
	ba := memtypes.BlockAddr(a)
	set := c.setFor(a)
	for i := range set {
		l := &set[i]
		if l.State.Valid() && l.Addr == ba {
			return l
		}
	}
	return nil
}

// Victim selects the line to evict to make room for a's block. It prefers
// invalid lines, then the LRU line among those without speculative bits,
// then (only if allowSpec) the overall LRU line. It returns nil if no
// eligible victim exists (all ways speculative and allowSpec is false).
// The returned line is not modified; the caller evicts and installs.
func (c *Cache) Victim(a memtypes.Addr, allowSpec bool) *Line {
	return c.VictimFiltered(a, allowSpec, nil)
}

// VictimFiltered is Victim with an additional exclusion predicate: lines
// whose block address is "locked" (outstanding miss, pending store-buffer
// entries, cleaning writeback in progress) must not be evicted.
func (c *Cache) VictimFiltered(a memtypes.Addr, allowSpec bool, locked func(memtypes.Addr) bool) *Line {
	set := c.setFor(a)
	if set == nil {
		set = c.materialize((uint64(a) >> memtypes.BlockShift) & c.setMask)
		return &set[0] // freshly materialized: every way is invalid
	}
	var nonSpec, spec *Line
	for i := range set {
		l := &set[i]
		if !l.State.Valid() {
			return l
		}
		if locked != nil && locked(l.Addr) {
			continue
		}
		if l.SpecAny() {
			if spec == nil || l.lru < spec.lru {
				spec = l
			}
		} else {
			if nonSpec == nil || l.lru < nonSpec.lru {
				nonSpec = l
			}
		}
	}
	if nonSpec != nil {
		return nonSpec
	}
	if allowSpec {
		return spec
	}
	return nil
}

// Install fills a's block into the given line (previously returned by
// Victim and already evicted by the caller). It resets speculative bits.
func (c *Cache) Install(l *Line, a memtypes.Addr, data memtypes.BlockData, st LineState) {
	if l.State.Valid() {
		panic(fmt.Sprintf("cache %s: install over valid line %#x", c.cfg.Name, uint64(l.Addr)))
	}
	c.lruClock++
	*l = Line{Addr: memtypes.BlockAddr(a), State: st, Data: data, lru: c.lruClock}
}

// Invalidate drops a's block if present, returning the prior line contents
// so the caller can write back dirty data.
func (c *Cache) Invalidate(a memtypes.Addr) (Line, bool) {
	l := c.Peek(a)
	if l == nil {
		return Line{}, false
	}
	old := *l
	l.State = Invalid
	l.SpecRead = [MaxEpochs]bool{}
	l.SpecWritten = [MaxEpochs]bool{}
	c.Evictions++
	return old, true
}

// MarkSpecRead sets the epoch's speculatively-read bit on a line obtained
// from this cache, registering the line for O(touched) flash operations.
func (c *Cache) MarkSpecRead(l *Line, epoch int) {
	if !l.SpecRead[epoch] {
		if !l.SpecWritten[epoch] {
			c.touched[epoch] = append(c.touched[epoch], l)
		}
		l.SpecRead[epoch] = true
	}
}

// MarkSpecWritten sets the epoch's speculatively-written bit on a line
// obtained from this cache, registering the line for flash operations.
func (c *Cache) MarkSpecWritten(l *Line, epoch int) {
	if !l.SpecWritten[epoch] {
		if !l.SpecRead[epoch] {
			c.touched[epoch] = append(c.touched[epoch], l)
		}
		l.SpecWritten[epoch] = true
	}
}

// FlashClearSpec clears the given epoch's speculative bits on every line:
// the paper's single-cycle commit operation. Only lines the epoch actually
// marked are visited (the hardware flash-clears a column of SRAM cells in
// one cycle; the model must not pay a full cache walk per commit).
func (c *Cache) FlashClearSpec(epoch int) {
	for _, l := range c.touched[epoch] {
		l.clearSpec(epoch)
	}
	clear(c.touched[epoch])
	c.touched[epoch] = c.touched[epoch][:0]
}

// ConditionalInvalidate invalidates every line whose speculatively-written
// bit for the epoch is set (the paper's abort operation) and clears that
// epoch's bits everywhere. It returns the number of lines invalidated.
// Invalidated speculative lines are discarded without writeback: the
// pre-speculative value is guaranteed to live in the next cache level by
// the cleaning-writeback rule (§3.2).
func (c *Cache) ConditionalInvalidate(epoch int) int {
	n := 0
	for _, l := range c.touched[epoch] {
		if l.SpecWritten[epoch] && l.State.Valid() {
			l.State = Invalid
			n++
		}
		l.clearSpec(epoch)
	}
	clear(c.touched[epoch])
	c.touched[epoch] = c.touched[epoch][:0]
	return n
}

// SpecLineCount returns how many lines carry speculative bits for the epoch
// (stats/tests).
func (c *Cache) SpecLineCount(epoch int) int {
	n := 0
	for s := range c.sets {
		set := c.sets[s]
		for i := range set {
			l := &set[i]
			if l.SpecRead[epoch] || l.SpecWritten[epoch] {
				n++
			}
		}
	}
	return n
}

// ForEachValid calls fn for every valid line (tests and invariant checks).
func (c *Cache) ForEachValid(fn func(*Line)) {
	for s := range c.sets {
		set := c.sets[s]
		for i := range set {
			if set[i].State.Valid() {
				fn(&set[i])
			}
		}
	}
}
