package fencesearch

import (
	"reflect"
	"testing"

	"invisifence/internal/isa"
	"invisifence/internal/litmus"
	"invisifence/internal/runcache"
)

func search(t testing.TB, test string, configs []string, opts Options) *Result {
	t.Helper()
	res, err := Search(Query{Test: test, Configs: configs}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestKnownMinimalSets pins the acceptance answers: the search must find
// the known-minimal fence sets for MP and SB under the weakest model.
func TestKnownMinimalSets(t *testing.T) {
	cases := []struct {
		test, config string
		want         [][]Site
	}{
		// MP under RMO: only the writer-side fence (before the flag store)
		// is needed — the reader side is closed by load-queue snooping,
		// which squashes and replays any in-window load whose block is
		// invalidated, so in-order retirement forbids load-load reordering.
		{"MP", "rmo", [][]Site{{{Thread: 0, PC: 2}}}},
		{"MP", "invisi-rmo", [][]Site{{{Thread: 0, PC: 2}}}},
		// SB under RMO: the classic pair — a full fence between each
		// thread's store and its load. No single fence suffices.
		{"SB", "rmo", [][]Site{{{Thread: 0, PC: 2}, {Thread: 1, PC: 2}}}},
		{"SB", "tso", [][]Site{{{Thread: 0, PC: 2}, {Thread: 1, PC: 2}}}},
		// 2+2W under RMO: either thread's store-store fence alone restores
		// enough order — two alternative singleton solutions.
		{"2+2W", "rmo", [][]Site{{{Thread: 0, PC: 3}}, {{Thread: 1, PC: 3}}}},
		// R under TSO: fencing either thread's last access works.
		{"R", "tso", [][]Site{{{Thread: 0, PC: 2}}, {{Thread: 1, PC: 2}}}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.test+"/"+tc.config, func(t *testing.T) {
			t.Parallel()
			res := search(t, tc.test, []string{tc.config}, Options{Seeds: 48, Workers: 4})
			m := res.Models[0]
			if m.AlreadyForbidden {
				t.Fatalf("%s/%s: baseline unexpectedly forbids the target", tc.test, tc.config)
			}
			if !reflect.DeepEqual(m.Minimal, tc.want) {
				t.Fatalf("minimal sets = %v, want %v\n%s", m.Minimal, tc.want, res.Report())
			}
		})
	}
}

// TestAlreadyForbiddenBaseline: under SC the targets never appear, so the
// search stops at the empty set.
func TestAlreadyForbiddenBaseline(t *testing.T) {
	res := search(t, "SB", []string{"sc", "invisi-sc"}, Options{Seeds: 24, Workers: 4})
	for _, m := range res.Models {
		if !m.AlreadyForbidden || len(m.Minimal) != 0 || m.Evals != 1 {
			t.Fatalf("%s: want AlreadyForbidden with 1 eval, got %+v", m.Config, m)
		}
	}
}

// TestOracleCrossCheck re-verifies every reported minimal set by direct
// simulation, outside the search's cache path: the set must be sufficient
// (zero target runs), and removing any single fence must re-admit the
// target (minimality). It also checks reported sets are mutually
// incomparable.
func TestOracleCrossCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-check sweep is not -short")
	}
	const seeds = 48
	queries := []struct {
		test    string
		configs []string
	}{
		{"MP", []string{"rmo", "invisi-rmo"}},
		{"SB", []string{"tso", "rmo", "invisi-tso", "invisi-rmo"}},
		{"2+2W", []string{"rmo", "invisi-rmo"}},
		{"R", []string{"tso", "rmo"}},
	}
	for _, q := range queries {
		q := q
		t.Run(q.test, func(t *testing.T) {
			t.Parallel()
			res := search(t, q.test, q.configs, Options{Seeds: seeds, Workers: 4})
			var tt *litmus.Test
			for i := range litmus.Tests {
				if litmus.Tests[i].Name == q.test {
					tt = &litmus.Tests[i]
				}
			}
			bodies := litmus.BodyPrograms(*tt, isa.NoFences)
			specs, err := resolveConfigs(q.configs)
			if err != nil {
				t.Fatal(err)
			}
			simulate := func(spec litmus.ConfigSpec, set []Site) int {
				perThread := make(map[int][]int)
				for _, s := range set {
					perThread[s.Thread] = append(perThread[s.Thread], s.PC)
				}
				fenced := make([]*isa.Program, len(bodies))
				for ti, b := range bodies {
					fb, err := isa.InsertFences(b, perThread[ti])
					if err != nil {
						t.Fatal(err)
					}
					fenced[ti] = fb
				}
				h := litmus.Harness{Name: q.test, Slots: tt.Slots, Finals: tt.FinalVars, Bodies: fenced}
				return litmus.CountMatches(h.Sweep(spec, seeds), tt.Target)
			}
			for mi, m := range res.Models {
				if m.AlreadyForbidden {
					continue
				}
				if len(m.Minimal) == 0 {
					t.Errorf("%s: baseline admits target but no fence set found", m.Config)
					continue
				}
				for _, set := range m.Minimal {
					// Sufficiency: the full set forbids the outcome.
					if n := simulate(specs[mi], set); n != 0 {
						t.Errorf("%s: reported set %v admits target in %d/%d runs", m.Config, set, n, seeds)
					}
					// Minimality: dropping any one fence re-admits it.
					for drop := range set {
						sub := make([]Site, 0, len(set)-1)
						sub = append(sub, set[:drop]...)
						sub = append(sub, set[drop+1:]...)
						if n := simulate(specs[mi], sub); n == 0 {
							t.Errorf("%s: set %v not minimal — %v already suffices", m.Config, set, sub)
						}
					}
				}
				// Mutual incomparability.
				for i := range m.Minimal {
					for j := range m.Minimal {
						if i != j && siteSubset(m.Minimal[i], m.Minimal[j]) {
							t.Errorf("%s: reported set %v ⊆ %v", m.Config, m.Minimal[i], m.Minimal[j])
						}
					}
				}
			}
		})
	}
}

// siteSubset reports a ⊆ b for site sets.
func siteSubset(a, b []Site) bool {
	for _, s := range a {
		found := false
		for _, x := range b {
			if x == s {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestRepeatQueryHitsCache: a second identical query through a shared cache
// performs zero simulations, serves ≥90% of its lookups from the cache
// (per runcache's own stats), and renders a byte-identical report.
func TestRepeatQueryHitsCache(t *testing.T) {
	cache, err := runcache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Seeds: 32, Workers: 4, Cache: cache}
	cold := search(t, "SB", []string{"rmo", "tso"}, opts)
	if cold.Simulated != cold.Evals || cold.CacheHits != 0 {
		t.Fatalf("cold run: %d/%d simulated, %d hits", cold.Simulated, cold.Evals, cold.CacheHits)
	}
	before := cache.Stats()
	warm := search(t, "SB", []string{"rmo", "tso"}, opts)
	if warm.Simulated != 0 {
		t.Fatalf("warm run simulated %d evaluations (want 0)", warm.Simulated)
	}
	if warm.Runs != 0 {
		t.Fatalf("warm run executed %d simulator runs (want 0)", warm.Runs)
	}
	if warm.CacheHits != warm.Evals {
		t.Fatalf("warm run: %d hits for %d evaluations", warm.CacheHits, warm.Evals)
	}
	after := cache.Stats()
	hits := (after.Hits + after.MemHits) - (before.Hits + before.MemHits)
	misses := after.Misses - before.Misses
	if total := hits + misses; total == 0 || float64(hits)/float64(total) < 0.9 {
		t.Fatalf("warm-run cache hit rate %d/%d below 90%%", hits, total)
	}
	if cold.Report() != warm.Report() {
		t.Fatalf("cold and warm reports differ:\n%s\nvs\n%s", cold.Report(), warm.Report())
	}
}

// TestReportDeterministicAcrossWorkers: worker count must not change the
// report (results are ordered by job index, not completion).
func TestReportDeterministicAcrossWorkers(t *testing.T) {
	a := search(t, "MP", []string{"rmo"}, Options{Seeds: 32, Workers: 1})
	b := search(t, "MP", []string{"rmo"}, Options{Seeds: 32, Workers: 8})
	if a.Report() != b.Report() {
		t.Fatalf("reports differ across worker counts:\n%s\nvs\n%s", a.Report(), b.Report())
	}
}

// TestMaxFencesBoundsLattice: capping the set size must truncate the
// search without corrupting smaller levels.
func TestMaxFencesBoundsLattice(t *testing.T) {
	full := search(t, "SB", []string{"rmo"}, Options{Seeds: 32, Workers: 4})
	capped := search(t, "SB", []string{"rmo"}, Options{Seeds: 32, Workers: 4, MaxFences: 1})
	if len(capped.Models[0].Minimal) != 0 {
		t.Fatalf("SB has no single-fence solution, got %v", capped.Models[0].Minimal)
	}
	if capped.Evals >= full.Evals {
		t.Fatalf("capped search evaluated %d ≥ full %d", capped.Evals, full.Evals)
	}
}

// TestSearchInputValidation covers the error paths.
func TestSearchInputValidation(t *testing.T) {
	if _, err := Search(Query{Test: "nope"}, Options{}); err == nil {
		t.Error("unknown test accepted")
	}
	if _, err := Search(Query{Test: "SB", Configs: []string{"nope"}}, Options{}); err == nil {
		t.Error("unknown config accepted")
	}
	if _, err := Search(Query{Test: "RMW"}, Options{}); err == nil {
		t.Error("targetless test accepted without explicit target")
	}
	if _, err := SearchInput(Input{}, nil, Options{}); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCombinations(t *testing.T) {
	got := combinations(4, 2)
	want := [][]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("combinations(4,2) = %v, want %v", got, want)
	}
	if c := combinations(3, 0); len(c) != 1 || len(c[0]) != 0 {
		t.Fatalf("combinations(3,0) = %v, want one empty set", c)
	}
	if combinations(2, 3) != nil {
		t.Fatal("combinations(2,3) should be empty")
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{}, []int{1, 2}, true},
		{[]int{1}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{3}, []int{1, 2}, false},
		{[]int{1, 3}, []int{1, 2}, false},
	}
	for _, c := range cases {
		if got := isSubset(c.a, c.b); got != c.want {
			t.Errorf("isSubset(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSortSites(t *testing.T) {
	set := []Site{{1, 3}, {0, 2}, {1, 1}}
	sortSites(set)
	want := []Site{{0, 2}, {1, 1}, {1, 3}}
	if !reflect.DeepEqual(set, want) {
		t.Fatalf("sortSites = %v, want %v", set, want)
	}
}

// fuzzTests and fuzzConfigs bound the fuzz domain to searchable corpus
// entries and the implementations whose lattices stay small enough for a
// per-input full search.
var fuzzTests = []string{"SB", "MP", "LB", "CoRR", "2+2W", "R", "S"}
var fuzzConfigs = []string{"sc", "tso", "rmo", "invisi-tso", "invisi-rmo"}

// FuzzFenceSearch checks the search invariants on arbitrary (test, config,
// seeds, cap) points: reported sets are sufficient by direct re-simulation,
// mutually incomparable, and the report is byte-identical across two
// independent runs (fresh caches, different worker counts).
func FuzzFenceSearch(f *testing.F) {
	f.Add(uint8(0), uint8(2), uint8(24), uint8(0)) // SB/rmo — the classic pair
	f.Add(uint8(1), uint8(2), uint8(24), uint8(0)) // MP/rmo — writer-side only
	f.Add(uint8(4), uint8(2), uint8(16), uint8(1)) // 2+2W/rmo capped at 1
	f.Add(uint8(5), uint8(1), uint8(16), uint8(0)) // R/tso — two singletons
	f.Add(uint8(0), uint8(0), uint8(8), uint8(2))  // SB/sc — already forbidden
	f.Fuzz(func(t *testing.T, ti, ci, seeds, maxF uint8) {
		test := fuzzTests[int(ti)%len(fuzzTests)]
		config := fuzzConfigs[int(ci)%len(fuzzConfigs)]
		nseeds := 8 + int(seeds)%25 // 8..32
		opts := Options{Seeds: nseeds, MaxFences: int(maxF) % 3, Workers: 4}
		res := search(t, test, []string{config}, opts)
		again := search(t, test, []string{config}, Options{
			Seeds: nseeds, MaxFences: int(maxF) % 3, Workers: 1})
		if res.Report() != again.Report() {
			t.Fatalf("report not deterministic:\n%s\nvs\n%s", res.Report(), again.Report())
		}
		var tt *litmus.Test
		for i := range litmus.Tests {
			if litmus.Tests[i].Name == test {
				tt = &litmus.Tests[i]
			}
		}
		bodies := litmus.BodyPrograms(*tt, isa.NoFences)
		specs, _ := resolveConfigs([]string{config})
		m := res.Models[0]
		for _, set := range m.Minimal {
			perThread := make(map[int][]int)
			for _, s := range set {
				perThread[s.Thread] = append(perThread[s.Thread], s.PC)
			}
			fenced := make([]*isa.Program, len(bodies))
			for bi, b := range bodies {
				fb, err := isa.InsertFences(b, perThread[bi])
				if err != nil {
					t.Fatal(err)
				}
				fenced[bi] = fb
			}
			h := litmus.Harness{Name: test, Slots: tt.Slots, Finals: tt.FinalVars, Bodies: fenced}
			if n := litmus.CountMatches(h.Sweep(specs[0], nseeds), tt.Target); n != 0 {
				t.Fatalf("%s/%s: reported set %v admits target in %d/%d runs", test, config, set, n, nseeds)
			}
		}
		for i := range m.Minimal {
			for j := range m.Minimal {
				if i != j && siteSubset(m.Minimal[i], m.Minimal[j]) {
					t.Fatalf("%s/%s: reported sets comparable: %v ⊆ %v", test, config, m.Minimal[i], m.Minimal[j])
				}
			}
		}
	})
}
