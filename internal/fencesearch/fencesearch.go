// Package fencesearch searches the fence-placement lattice of a litmus
// program for minimal fence sets that forbid a target outcome, using the
// simulator as the correctness oracle.
//
// This inverts the repo's usual direction: instead of checking that a given
// implementation never produces a model-forbidden outcome, the search asks
// which fences a *program* needs so that a weak implementation never
// produces it. Candidate placements are subsets of the per-thread fence
// sites enumerated by isa.FenceSites; the lattice is explored bottom-up
// (all sets of size k before any of size k+1) with superset pruning, so
// every reported set is minimal by construction: a superset of a sufficient
// set is never evaluated, and every strict subset of a reported set was
// evaluated at a smaller level and found insufficient.
//
// Each candidate evaluation runs the litmus harness exhaustively across
// seeds (network jitter, start skew, variable placement) under the target
// implementation; "sufficient" means the target outcome appears in zero
// runs. Evaluations fan out over the internal/sweep worker pool with
// deterministic result ordering, and are deduplicated through a
// content-addressed internal/runcache keyed by the fenced programs
// themselves — a repeated query performs zero simulations.
package fencesearch

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"invisifence/internal/consistency"
	"invisifence/internal/isa"
	"invisifence/internal/litmus"
	"invisifence/internal/runcache"
	"invisifence/internal/staticfence"
	"invisifence/internal/sweep"
)

// evalVersion is folded into every evaluation cache key; bump when the
// harness or the meaning of a cached evaluation changes.
const evalVersion = "fencesearch/eval/v1"

// Site is one fence-insertion point: immediately before the instruction at
// PC in thread Thread's body program (pre-harness-prefix PC, as enumerated
// by isa.FenceSites).
type Site struct {
	Thread int
	PC     int
}

// String implements fmt.Stringer.
func (s Site) String() string { return fmt.Sprintf("T%d@%d", s.Thread, s.PC) }

// Input is a program-level search problem: thread bodies (unfenced), the
// outcome protocol, and the target outcome to forbid.
type Input struct {
	Name   string
	Slots  int   // register-result outcome slots
	Finals []int // shared-var indices appended as outcome slots
	Bodies []*isa.Program
	Target litmus.OutcomeSpec
	Jitter uint64 // harness jitter override (0 = suite default)
	// Canonical marks Target as the test's canonical SC-forbidden outcome
	// (set by Search). Static delay-set pruning is only sound for such
	// targets: internal/staticfence proves "all executions are SC", which
	// says nothing about outcomes SC itself allows.
	Canonical bool
}

// Options configures a search.
type Options struct {
	// Seeds is the interleaving sweep width per evaluation (default 48).
	Seeds int
	// MaxFences caps the candidate set size (0 = the full lattice).
	MaxFences int
	// Workers bounds evaluation concurrency on the sweep pool (default 1).
	Workers int
	// Cache dedupes evaluations; nil uses a fresh in-memory cache (still
	// exercised, so traffic stats are always meaningful).
	Cache *runcache.Cache
	// Prune seeds the lattice walk with the static delay-set analysis
	// (internal/staticfence): statically-forbidden implementations skip
	// their baseline sweep, candidate sites off every critical cycle are
	// never combined, and candidates that provably cover the delay set are
	// answered sufficient without simulating. Reports stay byte-identical
	// to the unpruned walk (the equivalence is pinned by test over the
	// corpus); only the traffic counters change. Ignored unless the input
	// is a canonical corpus query the analyzer accepts (straight-line
	// litmus-protocol bodies).
	Prune bool
}

// ModelResult is the search outcome under one implementation.
type ModelResult struct {
	// Config names the litmus implementation searched.
	Config string
	// BaselineMatches counts target-outcome runs with no fences inserted.
	BaselineMatches int
	// AlreadyForbidden: the empty set suffices (the implementation never
	// produced the target across the sweep); Minimal is then empty.
	AlreadyForbidden bool
	// Minimal lists the minimal sufficient fence sets, each sorted by
	// (thread, pc), in discovery order (by size, then lexicographic).
	// Mutually incomparable by construction.
	Minimal [][]Site
	// Evals counts candidate evaluations for this config (incl. baseline
	// and, under Options.Prune, candidates answered statically).
	Evals int
}

// Result is a full search report.
type Result struct {
	// Name and Target restate the query.
	Name   string
	Target litmus.OutcomeSpec
	// Seeds is the per-evaluation sweep width.
	Seeds int
	// Sites is the global candidate list, thread-major then by PC; minimal
	// sets index into it conceptually (they carry the sites directly).
	Sites []Site
	// SiteText disassembles the instruction each site precedes.
	SiteText []string
	// Models holds one entry per searched implementation, in query order.
	Models []ModelResult
	// Evals / Simulated / CacheHits / Runs are traffic totals: candidate
	// evaluations, evaluations that actually simulated, evaluations served
	// from the cache, and individual simulator runs executed. Static counts
	// evaluations answered by the delay-set certificate without touching
	// the simulator or the cache (always 0 unless Pruned).
	Evals     int
	Simulated int
	CacheHits int
	Runs      int
	Static    int
	// Pruned reports that the static delay-set analysis steered this walk.
	Pruned bool
}

// evalOutcome is the cached result of one candidate evaluation.
type evalOutcome struct {
	Runs    int `json:"runs"`
	Matches int `json:"matches"`
}

// progKey is the JSON-encodable identity of a program for cache keying:
// the exact instruction stream (names and labels excluded — two
// identically-shaped programs share evaluations).
func progKey(p *isa.Program) []isa.Instr { return p.Instrs }

type searcher struct {
	in    Input
	specs []litmus.ConfigSpec
	opts  Options
	sites []Site
	cache *runcache.Cache

	mu        sync.Mutex
	simulated int
	cacheHits int
	runs      int
	static    int // delay-set-certified evaluations (never simulated)
}

// job is one candidate evaluation: a config index and a site-index subset.
type job struct {
	cfg  int
	comb []int // indices into searcher.sites, ascending
}

// SearchInput runs the search over explicit thread bodies. The specs list
// the implementations to search, in report order.
func SearchInput(in Input, specs []litmus.ConfigSpec, opts Options) (*Result, error) {
	if len(in.Bodies) == 0 {
		return nil, fmt.Errorf("fencesearch: no thread bodies")
	}
	if len(in.Bodies) > 4 {
		return nil, fmt.Errorf("fencesearch: %d threads exceeds the 4-node litmus machine", len(in.Bodies))
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("fencesearch: no implementations to search")
	}
	if n := in.Slots + len(in.Finals); n == 0 || n > 4 {
		return nil, fmt.Errorf("fencesearch: outcome width %d out of range [1,4]", n)
	}
	if len(in.Target) == 0 {
		return nil, fmt.Errorf("fencesearch: empty target outcome")
	}
	if opts.Seeds <= 0 {
		opts.Seeds = 48
	}
	s := &searcher{in: in, specs: specs, opts: opts, cache: opts.Cache}
	if s.cache == nil {
		c, err := runcache.Open("")
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	for t, b := range in.Bodies {
		for _, pc := range isa.FenceSites(b) {
			s.sites = append(s.sites, Site{Thread: t, PC: pc})
		}
	}
	return s.run()
}

// pruner is the optional static delay-set steering of one walk: per-config
// analysis results (shared per model) plus the site-index filter.
type pruner struct {
	static  []*staticfence.Result // per spec index
	allowed []bool                // per site index: cuts a critical-cycle po pair
}

// newPruner runs the static analysis when pruning is requested and sound
// for this input; any analyzer refusal (branches, non-protocol addressing)
// falls back to the unpruned walk.
func (s *searcher) newPruner() *pruner {
	if !s.opts.Prune || !s.in.Canonical {
		return nil
	}
	byModel := map[consistency.Model]*staticfence.Result{}
	p := &pruner{static: make([]*staticfence.Result, len(s.specs))}
	for i, spec := range s.specs {
		sr, ok := byModel[spec.Model]
		if !ok {
			var err error
			sr, err = staticfence.Analyze(s.in.Name, s.in.Bodies, spec.Model, staticfence.LitmusLayout())
			if err != nil {
				return nil
			}
			byModel[spec.Model] = sr
		}
		p.static[i] = sr
	}
	// Critical cycles (hence WalkSites) are model-independent; any entry
	// serves.
	walk := map[Site]bool{}
	for _, ws := range p.static[0].WalkSites() {
		walk[Site(ws)] = true
	}
	p.allowed = make([]bool, len(s.sites))
	for i, site := range s.sites {
		p.allowed[i] = walk[site]
	}
	return p
}

// allows reports whether every site of the candidate cuts some critical
// cycle.
func (p *pruner) allows(comb []int) bool {
	for _, idx := range comb {
		if !p.allowed[idx] {
			return false
		}
	}
	return true
}

// sufficient reports whether the candidate provably covers the config's
// delay set (so the target cannot appear and simulation is unnecessary).
func (p *pruner) sufficient(cfg int, sites []Site) bool {
	set := make([]staticfence.Site, len(sites))
	for i, s := range sites {
		set[i] = staticfence.Site(s)
	}
	return p.static[cfg].Sufficient(set)
}

// entry is one lattice candidate of a level, in walk order; static entries
// are answered by the delay-set certificate instead of the sweep pool.
type entry struct {
	cfg    int
	comb   []int
	static bool
}

func (s *searcher) run() (*Result, error) {
	res := &Result{
		Name:   s.in.Name,
		Target: s.in.Target,
		Seeds:  s.opts.Seeds,
		Sites:  s.sites,
		Models: make([]ModelResult, len(s.specs)),
	}
	for _, site := range s.sites {
		res.SiteText = append(res.SiteText, s.in.Bodies[site.Thread].Instrs[site.PC].String())
	}
	prune := s.newPruner()
	res.Pruned = prune != nil

	// Level 0: the unfenced baseline under every implementation.
	// Statically-forbidden configs need no sweep: soundness (pinned by
	// internal/crossval over the corpus) guarantees zero matches.
	var base []job
	active := make([]bool, len(s.specs))
	for i := range s.specs {
		if prune != nil && prune.static[i].AlreadyForbidden() {
			res.Models[i] = ModelResult{Config: s.specs[i].Name, AlreadyForbidden: true, Evals: 1}
			s.static++
			continue
		}
		base = append(base, job{cfg: i})
	}
	baseRes, err := s.evalBatch(base)
	if err != nil {
		return nil, err
	}
	for i, r := range baseRes {
		ci := base[i].cfg
		res.Models[ci] = ModelResult{Config: s.specs[ci].Name, BaselineMatches: r.Matches, Evals: 1}
		if r.Matches == 0 {
			res.Models[ci].AlreadyForbidden = true
		} else {
			active[ci] = true
		}
	}

	maxK := len(s.sites)
	if s.opts.MaxFences > 0 && s.opts.MaxFences < maxK {
		maxK = s.opts.MaxFences
	}
	// minimal[i] holds config i's found sets as site-index slices.
	minimal := make([][][]int, len(s.specs))
	for k := 1; k <= maxK; k++ {
		var entries []entry
		for ci := range s.specs {
			if !active[ci] {
				continue
			}
			for _, comb := range combinations(len(s.sites), k) {
				if prune != nil && !prune.allows(comb) {
					continue // off every critical cycle: cannot matter
				}
				if containsAnySet(comb, minimal[ci]) {
					continue // superset of a sufficient set: never minimal
				}
				entries = append(entries, entry{cfg: ci, comb: comb,
					static: prune != nil && prune.sufficient(ci, s.sitesOf(comb))})
			}
		}
		if len(entries) == 0 {
			break
		}
		var jobs []job
		for _, e := range entries {
			if !e.static {
				jobs = append(jobs, job{cfg: e.cfg, comb: e.comb})
			}
		}
		results, err := s.evalBatch(jobs)
		if err != nil {
			return nil, err
		}
		ji := 0
		for _, e := range entries {
			matches := 0
			if e.static {
				s.static++
			} else {
				matches = results[ji].Matches
				ji++
			}
			res.Models[e.cfg].Evals++
			if matches == 0 {
				minimal[e.cfg] = append(minimal[e.cfg], e.comb)
				res.Models[e.cfg].Minimal = append(res.Models[e.cfg].Minimal, s.sitesOf(e.comb))
			}
		}
	}

	for i := range res.Models {
		res.Evals += res.Models[i].Evals
	}
	res.Simulated = s.simulated
	res.CacheHits = s.cacheHits
	res.Runs = s.runs
	res.Static = s.static
	return res, nil
}

// sitesOf maps site indices to Sites.
func (s *searcher) sitesOf(comb []int) []Site {
	out := make([]Site, len(comb))
	for i, idx := range comb {
		out[i] = s.sites[idx]
	}
	return out
}

// evalBatch fans candidate evaluations out over the sweep pool; results
// come back in job order regardless of worker count.
func (s *searcher) evalBatch(jobs []job) ([]evalOutcome, error) {
	if len(jobs) == 0 {
		return nil, nil
	}
	workers := s.opts.Workers
	if workers < 1 {
		workers = 1
	}
	return sweep.Run(jobs, sweep.Options{Workers: workers}, s.evaluate)
}

// evaluate runs one candidate: insert the fences, consult the cache, and
// only simulate on a miss.
func (s *searcher) evaluate(j job) (evalOutcome, error) {
	spec := s.specs[j.cfg]
	perThread := make(map[int][]int)
	for _, idx := range j.comb {
		site := s.sites[idx]
		perThread[site.Thread] = append(perThread[site.Thread], site.PC)
	}
	bodies := make([]*isa.Program, len(s.in.Bodies))
	keyProgs := make([][]isa.Instr, len(s.in.Bodies))
	for t, b := range s.in.Bodies {
		fenced, err := isa.InsertFences(b, perThread[t])
		if err != nil {
			return evalOutcome{}, err
		}
		bodies[t] = fenced
		keyProgs[t] = progKey(fenced)
	}
	key := runcache.MustKey(evalVersion, spec.Name, spec.Model, spec.Engine,
		s.opts.Seeds, s.in.Jitter, s.in.Target, s.in.Slots, s.in.Finals, keyProgs)
	var out evalOutcome
	if ok, err := s.cache.Get(key, &out); err == nil && ok {
		s.mu.Lock()
		s.cacheHits++
		s.mu.Unlock()
		return out, nil
	}
	h := litmus.Harness{
		Name:   fmt.Sprintf("%s%v", s.in.Name, s.sitesOf(j.comb)),
		Slots:  s.in.Slots,
		Finals: s.in.Finals,
		Bodies: bodies,
		Jitter: s.in.Jitter,
	}
	hist := h.Sweep(spec, s.opts.Seeds)
	out = evalOutcome{Runs: s.opts.Seeds, Matches: litmus.CountMatches(hist, s.in.Target)}
	_ = s.cache.Put(key, out) // best-effort, like the rest of runcache
	s.mu.Lock()
	s.simulated++
	s.runs += out.Runs
	s.mu.Unlock()
	return out, nil
}

// combinations enumerates the k-subsets of [0,n) in lexicographic order.
func combinations(n, k int) [][]int {
	if k > n || k < 0 {
		return nil
	}
	var out [][]int
	comb := make([]int, k)
	for i := range comb {
		comb[i] = i
	}
	for {
		out = append(out, append([]int(nil), comb...))
		// Advance: find the rightmost slot that can move.
		i := k - 1
		for i >= 0 && comb[i] == n-k+i {
			i--
		}
		if i < 0 {
			return out
		}
		comb[i]++
		for j := i + 1; j < k; j++ {
			comb[j] = comb[j-1] + 1
		}
	}
}

// containsAnySet reports whether comb (ascending) is a superset of any of
// the given sets (each ascending).
func containsAnySet(comb []int, sets [][]int) bool {
	for _, set := range sets {
		if isSubset(set, comb) {
			return true
		}
	}
	return false
}

// isSubset reports a ⊆ b for ascending index slices.
func isSubset(a, b []int) bool {
	i := 0
	for _, v := range b {
		if i < len(a) && a[i] == v {
			i++
		}
	}
	return i == len(a)
}

// Query is a corpus-level search request.
type Query struct {
	// Test names a litmus.Tests entry.
	Test string
	// Target overrides the test's canonical SC-forbidden outcome.
	Target litmus.OutcomeSpec
	// Configs names the implementations to search (nil = all).
	Configs []string
	// Jitter overrides the harness jitter (0 = suite default).
	Jitter uint64
}

// Search resolves a corpus query and runs SearchInput on the test's
// unfenced bodies.
func Search(q Query, opts Options) (*Result, error) {
	var tt *litmus.Test
	for i := range litmus.Tests {
		if litmus.Tests[i].Name == q.Test {
			tt = &litmus.Tests[i]
			break
		}
	}
	if tt == nil {
		return nil, fmt.Errorf("fencesearch: unknown litmus test %q", q.Test)
	}
	target := q.Target
	if target == nil {
		target = tt.Target
	}
	if target == nil {
		return nil, fmt.Errorf("fencesearch: test %q has no canonical target; pass one explicitly", q.Test)
	}
	specs, err := resolveConfigs(q.Configs)
	if err != nil {
		return nil, err
	}
	in := Input{
		Name:      tt.Name,
		Slots:     tt.Slots,
		Finals:    tt.FinalVars,
		Bodies:    litmus.BodyPrograms(*tt, isa.NoFences),
		Target:    target,
		Jitter:    q.Jitter,
		Canonical: specEqual(target, tt.Target),
	}
	return SearchInput(in, specs, opts)
}

// specEqual compares outcome specs slot-for-slot.
func specEqual(a, b litmus.OutcomeSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// resolveConfigs maps config names onto litmus specs, preserving order;
// nil selects every implementation.
func resolveConfigs(names []string) ([]litmus.ConfigSpec, error) {
	all := litmus.AllConfigs()
	if len(names) == 0 {
		return all, nil
	}
	specs := make([]litmus.ConfigSpec, 0, len(names))
	for _, name := range names {
		found := false
		for _, spec := range all {
			if spec.Name == name {
				specs = append(specs, spec)
				found = true
				break
			}
		}
		if !found {
			avail := make([]string, len(all))
			for i, spec := range all {
				avail[i] = spec.Name
			}
			return nil, fmt.Errorf("fencesearch: unknown config %q (have %s)", name, strings.Join(avail, ", "))
		}
	}
	return specs, nil
}

// Report renders the deterministic section of a result: the query, the
// site table, and per-model minimal sets. Cache and simulation traffic —
// including evaluation counts, which depend on whether the walk was
// statically pruned — is deliberately excluded: the report is byte-
// identical between cold, warm, and pruned runs of the same query, so it
// can be pinned as a golden file and diffed by CI.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "fencesearch: %s target=%v seeds=%d sites=%d\n",
		r.Name, r.Target, r.Seeds, len(r.Sites))
	for i, site := range r.Sites {
		fmt.Fprintf(&b, "  s%-2d %v: %s\n", i, site, r.SiteText[i])
	}
	for _, m := range r.Models {
		fmt.Fprintf(&b, "== %s ==\n", m.Config)
		switch {
		case m.AlreadyForbidden:
			fmt.Fprintf(&b, "  already forbidden unfenced (0/%d runs match)\n", r.Seeds)
		case len(m.Minimal) == 0:
			fmt.Fprintf(&b, "  no sufficient fence set found (baseline %d/%d)\n",
				m.BaselineMatches, r.Seeds)
		default:
			fmt.Fprintf(&b, "  baseline admits target (%d/%d runs); %d minimal set(s)\n",
				m.BaselineMatches, r.Seeds, len(m.Minimal))
			for _, set := range m.Minimal {
				fmt.Fprintf(&b, "  {%s}\n", joinSites(set, r))
			}
		}
	}
	return b.String()
}

// joinSites renders a fence set with its site labels and disassembly.
func joinSites(set []Site, r *Result) string {
	parts := make([]string, len(set))
	for i, site := range set {
		label := site.String()
		for idx, s := range r.Sites {
			if s == site {
				label = fmt.Sprintf("s%d %v \"%s\"", idx, site, r.SiteText[idx])
				break
			}
		}
		parts[i] = label
	}
	return strings.Join(parts, ", ")
}

// TrafficString renders the nondeterministic traffic counters (varies with
// cache warmth; printed to stderr by the CLI, never part of Report).
func (r *Result) TrafficString() string {
	return fmt.Sprintf("fencesearch: %d evaluations, %d simulated (%d runs), %d cache hits, %d static",
		r.Evals, r.Simulated, r.Runs, r.CacheHits, r.Static)
}

// sortSites orders a site set by (thread, pc); used by tests.
func sortSites(set []Site) {
	sort.Slice(set, func(i, j int) bool {
		if set[i].Thread != set[j].Thread {
			return set[i].Thread < set[j].Thread
		}
		return set[i].PC < set[j].PC
	})
}
