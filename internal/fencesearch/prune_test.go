package fencesearch

import (
	"testing"

	"invisifence/internal/isa"
	"invisifence/internal/litmus"
)

// TestPruneEquivalence is the pruning acceptance gate: on the corpus tests
// with live search walks, the statically-seeded walk must render a byte-
// identical report while strictly reducing the number of simulated
// candidate evaluations. Both runs use fresh in-memory caches so the
// simulation counts are honest.
func TestPruneEquivalence(t *testing.T) {
	configs := []string{"sc", "tso", "rmo", "invisi-rmo"}
	for _, name := range []string{"MP", "SB", "2+2W", "R"} {
		q := Query{Test: name, Configs: configs}
		unpruned, err := Search(q, Options{Workers: 4})
		if err != nil {
			t.Fatalf("%s unpruned: %v", name, err)
		}
		pruned, err := Search(q, Options{Workers: 4, Prune: true})
		if err != nil {
			t.Fatalf("%s pruned: %v", name, err)
		}
		if !pruned.Pruned {
			t.Errorf("%s: Prune requested on a canonical corpus query but walk ran unpruned", name)
		}
		if unpruned.Pruned {
			t.Errorf("%s: unpruned walk reports Pruned", name)
		}
		if a, b := unpruned.Report(), pruned.Report(); a != b {
			t.Errorf("%s: pruned report differs:\n--- unpruned ---\n%s--- pruned ---\n%s", name, a, b)
		}
		if pruned.Simulated >= unpruned.Simulated {
			t.Errorf("%s: pruning did not reduce simulations (%d pruned vs %d unpruned)",
				name, pruned.Simulated, unpruned.Simulated)
		}
		if pruned.Static == 0 {
			t.Errorf("%s: pruned walk answered no candidates statically", name)
		}
		if unpruned.Static != 0 {
			t.Errorf("%s: unpruned walk counted %d static answers", name, unpruned.Static)
		}
	}
}

// TestPruneRequiresCanonicalTarget: a non-canonical target outcome gets no
// static steering — the delay-set certificate only speaks about
// SC-forbidden outcomes.
func TestPruneRequiresCanonicalTarget(t *testing.T) {
	res, err := Search(Query{Test: "SB", Configs: []string{"rmo"}, Target: litmus.OutcomeSpec{1, 1}},
		Options{Workers: 4, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned {
		t.Error("SB with target [1 1] (SC-allowed) must not be statically pruned")
	}
	// SearchInput never marks its input canonical, so Prune is inert there
	// too.
	var sb *litmus.Test
	for i := range litmus.Tests {
		if litmus.Tests[i].Name == "SB" {
			sb = &litmus.Tests[i]
		}
	}
	in := Input{
		Name:   sb.Name,
		Slots:  sb.Slots,
		Finals: sb.FinalVars,
		Bodies: litmus.BodyPrograms(*sb, isa.NoFences),
		Target: sb.Target,
	}
	specs, err := resolveConfigs([]string{"rmo"})
	if err != nil {
		t.Fatal(err)
	}
	res, err = SearchInput(in, specs, Options{Workers: 4, Prune: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned {
		t.Error("SearchInput without Canonical must not be statically pruned")
	}
}
