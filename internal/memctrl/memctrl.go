// Package memctrl models per-node main memory: block-granularity backing
// storage plus the Figure 6 access latency (40 ns = 160 cycles at 4 GHz).
// The directory at each home node consults its local memory controller for
// block reads and writebacks; the controller charges the access latency and
// models bank occupancy as a simple per-bank next-free-cycle schedule.
package memctrl

import (
	"invisifence/internal/memtypes"
)

// Config describes one node's memory controller.
type Config struct {
	AccessLatency uint64 // cycles per access (Figure 6: 160)
	Banks         int    // banks per node (Figure 6: 64)
	BankBusy      uint64 // cycles a bank stays busy per access
}

// DefaultConfig returns the Figure 6 memory parameters.
func DefaultConfig() Config {
	return Config{AccessLatency: 160, Banks: 64, BankBusy: 8}
}

// Memory is the backing store and timing model for one node's share of
// physical memory. Storage is sparse; unwritten blocks read as zero.
type Memory struct {
	cfg      Config
	blocks   map[memtypes.Addr]*memtypes.BlockData
	bankFree []uint64

	Reads  uint64
	Writes uint64
}

// New creates an empty memory with the given configuration.
func New(cfg Config) *Memory {
	if cfg.Banks <= 0 {
		cfg.Banks = 1
	}
	if cfg.AccessLatency == 0 {
		cfg.AccessLatency = 1
	}
	return &Memory{
		cfg:      cfg,
		blocks:   make(map[memtypes.Addr]*memtypes.BlockData),
		bankFree: make([]uint64, cfg.Banks),
	}
}

func (m *Memory) bank(a memtypes.Addr) int {
	return int(a>>memtypes.BlockShift) % m.cfg.Banks
}

// AccessDone returns the cycle at which an access issued at cycle now to
// address a completes, accounting for access latency and bank occupancy.
func (m *Memory) AccessDone(now uint64, a memtypes.Addr) uint64 {
	b := m.bank(a)
	start := now
	if m.bankFree[b] > start {
		start = m.bankFree[b]
	}
	m.bankFree[b] = start + m.cfg.BankBusy
	return start + m.cfg.AccessLatency
}

// NextEvent implements the idle-skip contract for the memory controller.
// The controller is pull-scheduled: AccessDone assigns every access its
// completion cycle at request time, and the requesting directory carries
// that cycle in its transaction state (reported via Directory.NextEvent).
// Bank free times influence only future AccessDone results, so the
// controller itself never generates a spontaneous event.
func (m *Memory) NextEvent(now uint64) uint64 {
	return memtypes.NoEvent
}

// ReadBlock returns the current contents of the block containing a.
func (m *Memory) ReadBlock(a memtypes.Addr) memtypes.BlockData {
	m.Reads++
	if b, ok := m.blocks[memtypes.BlockAddr(a)]; ok {
		return *b
	}
	return memtypes.BlockData{}
}

// WriteBlock replaces the contents of the block containing a.
func (m *Memory) WriteBlock(a memtypes.Addr, d memtypes.BlockData) {
	m.Writes++
	ba := memtypes.BlockAddr(a)
	b, ok := m.blocks[ba]
	if !ok {
		b = new(memtypes.BlockData)
		m.blocks[ba] = b
	}
	*b = d
}

// WriteWord updates a single word; used to initialize workload data
// structures before simulation starts.
func (m *Memory) WriteWord(a memtypes.Addr, w memtypes.Word) {
	ba := memtypes.BlockAddr(a)
	b, ok := m.blocks[ba]
	if !ok {
		b = new(memtypes.BlockData)
		m.blocks[ba] = b
	}
	b[memtypes.WordIndex(a)] = w
}

// ReadWord returns a single word; used by tests and by the harness to read
// workload results after simulation ends.
func (m *Memory) ReadWord(a memtypes.Addr) memtypes.Word {
	if b, ok := m.blocks[memtypes.BlockAddr(a)]; ok {
		return b[memtypes.WordIndex(a)]
	}
	return 0
}

// Blocks returns the number of distinct blocks ever written.
func (m *Memory) Blocks() int { return len(m.blocks) }
