package memctrl

import (
	"testing"
	"testing/quick"

	"invisifence/internal/memtypes"
)

func TestReadWriteRoundTrip(t *testing.T) {
	m := New(Config{AccessLatency: 10, Banks: 4, BankBusy: 2})
	var d memtypes.BlockData
	d[2] = 99
	m.WriteBlock(0x1000, d)
	got := m.ReadBlock(0x1008) // same block, different word
	if got[2] != 99 {
		t.Fatalf("read = %v", got)
	}
	if m.ReadBlock(0x2000) != (memtypes.BlockData{}) {
		t.Fatal("unwritten block not zero")
	}
}

func TestWordAccessors(t *testing.T) {
	m := New(Config{AccessLatency: 10, Banks: 4, BankBusy: 2})
	m.WriteWord(0x1010, 7)
	m.WriteWord(0x1018, 8)
	if m.ReadWord(0x1010) != 7 || m.ReadWord(0x1018) != 8 {
		t.Fatal("word accessors wrong")
	}
	b := m.ReadBlock(0x1000)
	if b[2] != 7 || b[3] != 8 {
		t.Fatal("word writes not visible in block read")
	}
	if m.Blocks() != 1 {
		t.Fatalf("blocks = %d", m.Blocks())
	}
}

func TestAccessLatencyAndBankOccupancy(t *testing.T) {
	m := New(Config{AccessLatency: 100, Banks: 2, BankBusy: 10})
	// Two back-to-back accesses to the same bank queue up.
	d1 := m.AccessDone(1000, 0x0)  // bank 0
	d2 := m.AccessDone(1000, 0x80) // block 2 -> bank 0 again
	d3 := m.AccessDone(1000, 0x40) // block 1 -> bank 1
	if d1 != 1100 {
		t.Fatalf("d1 = %d", d1)
	}
	if d2 != 1110 {
		t.Fatalf("d2 = %d (bank busy not applied)", d2)
	}
	if d3 != 1100 {
		t.Fatalf("d3 = %d (different bank delayed)", d3)
	}
}

func TestWriteReadQuick(t *testing.T) {
	m := New(DefaultConfig())
	f := func(a uint32, v uint64) bool {
		addr := memtypes.WordAlign(memtypes.Addr(a))
		m.WriteWord(addr, memtypes.Word(v))
		return m.ReadWord(addr) == memtypes.Word(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
