// Package consistency encodes the three memory consistency models the paper
// evaluates (§2) and the Figure 2 table of conventional implementation
// requirements: what each model demands at the retirement of loads, stores,
// atomics, and fences, and which store buffer organization it uses.
package consistency

import "fmt"

// Model is a memory consistency model.
type Model uint8

const (
	// SC is sequential consistency (e.g., MIPS).
	SC Model = iota
	// TSO is total store order / processor consistency (SPARC TSO, x86):
	// relaxes store-to-load ordering only.
	TSO
	// RMO is relaxed memory order (SPARC RMO, PowerPC, ARM, Alpha): all
	// ordering relaxed except at explicit fences.
	RMO
	// RC is release consistency (Gharachorloo et al.): plain accesses
	// reorder freely, but an acquiring load orders before every later
	// access and a releasing store orders after every earlier access.
	// Ordering is carried by the annotated accesses themselves (ld.acq /
	// st.rel), not by standalone fences.
	RC
)

// Models lists all models in presentation order.
var Models = []Model{SC, TSO, RMO, RC}

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case SC:
		return "sc"
	case TSO:
		return "tso"
	case RMO:
		return "rmo"
	case RC:
		return "rc"
	}
	return fmt.Sprintf("Model(%d)", uint8(m))
}

// SBOrganization is the store buffer organization of Figure 2.
type SBOrganization uint8

const (
	// SBFIFOWord is the word-granularity FIFO store buffer (SC, TSO).
	SBFIFOWord SBOrganization = iota
	// SBCoalescingBlock is the block-granularity unordered coalescing
	// store buffer (RMO, and every InvisiFence variant).
	SBCoalescingBlock
)

// String implements fmt.Stringer.
func (o SBOrganization) String() string {
	if o == SBFIFOWord {
		return "FIFO/word"
	}
	return "coalescing/block"
}

// Rules is one row of Figure 2: the conventional implementation's
// requirements for retiring each instruction class.
type Rules struct {
	Model Model
	// Relaxations documents the orderings the model relaxes.
	Relaxations string
	// SB is the store buffer organization.
	SB SBOrganization
	// LoadNeedsDrain: a load may not retire until the store buffer is
	// empty (SC only).
	LoadNeedsDrain bool
	// StoreNeedsOrder: stores must become visible in program order, so a
	// coalescing (unordered) buffer may not hold more than one epoch of
	// unordered stores non-speculatively. True for SC and TSO; their
	// conventional implementations use the FIFO buffer instead.
	StoreNeedsOrder bool
	// AtomicNeedsDrain: an atomic may not retire until the store buffer
	// is empty (SC, TSO).
	AtomicNeedsDrain bool
	// AtomicNeedsOwnership: an atomic may not retire until it holds write
	// permission for its block (all models; Figure 2's "complete store"
	// for RMO).
	AtomicNeedsOwnership bool
	// FenceNeedsDrain: a fence may not retire until the store buffer is
	// empty (TSO's full fence, RMO's MEMBAR; SC has no fences).
	FenceNeedsDrain bool
	// ReleaseNeedsDrain: a releasing store (st.rel) may not retire until
	// the store buffer is empty, making every earlier store visible
	// before the release itself (RC only). Plain stores are unaffected.
	// Acquire-side ordering needs no drain: in-order retirement plus
	// load-queue snooping already order an acquiring load before
	// everything younger.
	ReleaseNeedsDrain bool
}

// ruleTable is indexed by Model: RulesFor sits on the simulator's
// per-retirement hot path, so the lookup must not hash.
var ruleTable = [...]Rules{
	SC: {
		Model:                SC,
		Relaxations:          "none",
		SB:                   SBFIFOWord,
		LoadNeedsDrain:       true,
		StoreNeedsOrder:      true,
		AtomicNeedsDrain:     true,
		AtomicNeedsOwnership: true,
		FenceNeedsDrain:      true, // N/A in practice: SC programs need no fences
	},
	TSO: {
		Model:                TSO,
		Relaxations:          "store-to-load",
		SB:                   SBFIFOWord,
		StoreNeedsOrder:      true,
		AtomicNeedsDrain:     true,
		AtomicNeedsOwnership: true,
		FenceNeedsDrain:      true,
	},
	RMO: {
		Model:                RMO,
		Relaxations:          "all",
		SB:                   SBCoalescingBlock,
		AtomicNeedsOwnership: true,
		FenceNeedsDrain:      true,
	},
	RC: {
		Model:       RC,
		Relaxations: "all except acquire/release edges",
		SB:          SBCoalescingBlock,
		// Atomics are synchronization accesses (RCsc): they carry both
		// acquire and release ordering, so they drain like a release.
		AtomicNeedsDrain:     true,
		AtomicNeedsOwnership: true,
		FenceNeedsDrain:      true,
		ReleaseNeedsDrain:    true,
	},
}

// RulesFor returns the Figure 2 row for a model.
func RulesFor(m Model) Rules {
	if int(m) >= len(ruleTable) {
		panic(fmt.Sprintf("consistency: unknown model %v", m))
	}
	return ruleTable[m]
}
