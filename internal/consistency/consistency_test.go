package consistency

import "testing"

// TestFigure2RuleTable pins the Figure 2 rows: each model's conventional
// implementation requirements.
func TestFigure2RuleTable(t *testing.T) {
	sc := RulesFor(SC)
	if !sc.LoadNeedsDrain || !sc.AtomicNeedsDrain || sc.SB != SBFIFOWord {
		t.Fatalf("SC row wrong: %+v", sc)
	}
	tso := RulesFor(TSO)
	if tso.LoadNeedsDrain {
		t.Fatal("TSO must relax store-to-load ordering")
	}
	if !tso.AtomicNeedsDrain || !tso.FenceNeedsDrain || tso.SB != SBFIFOWord {
		t.Fatalf("TSO row wrong: %+v", tso)
	}
	rmo := RulesFor(RMO)
	if rmo.LoadNeedsDrain || rmo.AtomicNeedsDrain || rmo.StoreNeedsOrder {
		t.Fatalf("RMO must relax everything: %+v", rmo)
	}
	if !rmo.FenceNeedsDrain || !rmo.AtomicNeedsOwnership || rmo.SB != SBCoalescingBlock {
		t.Fatalf("RMO row wrong: %+v", rmo)
	}
	if rmo.ReleaseNeedsDrain {
		t.Fatal("RMO has no release drains: ordering comes from fences")
	}
	rc := RulesFor(RC)
	if rc.LoadNeedsDrain || rc.StoreNeedsOrder {
		t.Fatalf("RC must relax plain accesses: %+v", rc)
	}
	if !rc.ReleaseNeedsDrain || !rc.AtomicNeedsDrain || !rc.FenceNeedsDrain ||
		!rc.AtomicNeedsOwnership || rc.SB != SBCoalescingBlock {
		t.Fatalf("RC row wrong: %+v", rc)
	}
}

func TestModelsOrderAndStrings(t *testing.T) {
	if len(Models) != 4 || Models[0] != SC || Models[1] != TSO || Models[2] != RMO || Models[3] != RC {
		t.Fatal("Models order changed")
	}
	for _, m := range Models {
		if m.String() == "" || RulesFor(m).Model != m {
			t.Fatalf("bad model %v", m)
		}
	}
	if SBFIFOWord.String() == SBCoalescingBlock.String() {
		t.Fatal("SB organization strings collide")
	}
}

func TestUnknownModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RulesFor(Model(99))
}
