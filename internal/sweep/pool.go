package sweep

import (
	"sync"

	"invisifence/internal/faultinject"
)

// SiteWorker fires in a pool worker just before it executes a task
// (delay = a stalled worker, exercising the stealing and watchdog
// paths) when an injector is armed.
const SiteWorker = "pool.worker"

// Task is one unit of pool work. Tasks carry their own context via
// closure; the pool never inspects them.
type Task func()

// PoolStats counts pool traffic since NewPool.
type PoolStats struct {
	// Submitted and Completed count tasks accepted vs finished.
	Submitted, Completed uint64
	// Steals counts tasks a worker took from another worker's queue.
	// Zero under perfectly balanced load; a skewed cost distribution
	// (one queue holding all the expensive cells) drives it up, which is
	// exactly when stealing pays.
	Steals uint64
	// Dropped counts tasks discarded by Stop before any worker ran them.
	Dropped uint64
}

// Pool is a long-lived work-stealing executor: each worker owns a FIFO
// queue, Submit distributes tasks round-robin across the queues, and a
// worker that runs dry steals from the back of a sibling's queue. The
// stealable queues keep skewed task costs from serializing behind one
// worker — a cheap campaign submitted after an expensive one overlaps it
// instead of queuing behind it — while round-robin placement keeps the
// no-contention path deterministic.
//
// All queue state sits behind one mutex: pool tasks are simulation cells
// costing milliseconds to seconds, so lock granularity is irrelevant and
// a single lock keeps stealing trivially race-free. Task completion order
// is nondeterministic; callers that need deterministic output must index
// results by task identity (as Run does), never by completion order.
type Pool struct {
	inj *faultinject.Injector

	mu     sync.Mutex
	cond   *sync.Cond
	queues [][]Task // one FIFO per worker; workers steal from the back
	next   int      // round-robin submit cursor
	active int      // tasks currently executing
	closed bool
	stats  PoolStats
	wg     sync.WaitGroup
}

// NewPool starts a pool with the given number of workers (values < 1
// mean 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{queues: make([][]Task, workers)}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return len(p.queues) }

// SetInjector arms fault injection at the worker seam (nil keeps the
// disarmed no-op). Call before submitting work.
func (p *Pool) SetInjector(in *faultinject.Injector) { p.inj = in }

// Submit enqueues a task and reports whether the pool accepted it
// (false after Close/Stop). Safe from any goroutine.
func (p *Pool) Submit(t Task) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.queues[p.next] = append(p.queues[p.next], t)
	p.next = (p.next + 1) % len(p.queues)
	p.stats.Submitted++
	p.cond.Signal()
	return true
}

// Drain blocks until every previously submitted task has completed.
// Tasks submitted while draining extend the wait; callers that want a
// terminal drain should stop submitting first.
func (p *Pool) Drain() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for p.pendingLocked() > 0 {
		p.cond.Wait()
	}
}

// Close rejects further submissions, waits for all queued and running
// tasks to finish, and stops the workers.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Stop rejects further submissions, discards tasks no worker has started
// (counted in Stats().Dropped), waits for in-flight tasks to finish, and
// stops the workers. This is the graceful-shutdown primitive: in-flight
// work completes, queued work is abandoned.
func (p *Pool) Stop() {
	p.mu.Lock()
	p.closed = true
	for w := range p.queues {
		p.stats.Dropped += uint64(len(p.queues[w]))
		p.queues[w] = nil
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
}

// Stats returns a snapshot of the traffic counters.
func (p *Pool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// pendingLocked counts tasks not yet completed. Caller holds mu.
func (p *Pool) pendingLocked() int {
	n := p.active
	for _, q := range p.queues {
		n += len(q)
	}
	return n
}

// takeLocked claims the next task for worker w: the front of its own
// queue, else the back of the first non-empty sibling queue scanning
// round-robin from w+1 (stealing from the back takes the most recently
// distributed work, which under round-robin placement is the task
// farthest from being reached by its owner). Caller holds mu.
func (p *Pool) takeLocked(w int) (Task, bool) {
	if q := p.queues[w]; len(q) > 0 {
		t := q[0]
		q[0] = nil
		p.queues[w] = q[1:]
		return t, false
	}
	n := len(p.queues)
	for i := 1; i < n; i++ {
		v := (w + i) % n
		if q := p.queues[v]; len(q) > 0 {
			t := q[len(q)-1]
			q[len(q)-1] = nil
			p.queues[v] = q[:len(q)-1]
			return t, true
		}
	}
	return nil, false
}

func (p *Pool) worker(w int) {
	defer p.wg.Done()
	p.mu.Lock()
	for {
		t, stolen := p.takeLocked(w)
		if t == nil {
			if p.closed {
				p.mu.Unlock()
				return
			}
			p.cond.Wait()
			continue
		}
		if stolen {
			p.stats.Steals++
		}
		p.active++
		p.mu.Unlock()
		p.inj.Delay(SiteWorker)
		t()
		p.mu.Lock()
		p.active--
		p.stats.Completed++
		// Wake both idle workers (more queued work may exist) and
		// Drain waiters (pending may have hit zero).
		p.cond.Broadcast()
	}
}
