package sweep

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"invisifence/internal/faultinject"
)

func TestPoolRunsEverySubmittedTask(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	const n = 200
	for i := 0; i < n; i++ {
		if !p.Submit(func() { ran.Add(1) }) {
			t.Fatalf("submit %d rejected before close", i)
		}
	}
	p.Drain()
	if got := ran.Load(); got != n {
		t.Fatalf("drain returned with %d/%d tasks run", got, n)
	}
	p.Close()
	if p.Submit(func() {}) {
		t.Fatal("submit accepted after Close")
	}
	s := p.Stats()
	if s.Submitted != n || s.Completed != n || s.Dropped != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestPoolStealsSkewedCosts is the work-stealing acceptance test: with a
// cost distribution where round-robin placement lands every expensive
// task on one worker's queue, siblings must steal — the run completes in
// roughly parallel time, and the steal counter proves the mechanism
// fired rather than the schedule getting lucky.
func TestPoolStealsSkewedCosts(t *testing.T) {
	const workers = 4
	p := NewPool(workers)
	defer p.Close()

	var gate sync.WaitGroup
	gate.Add(1)
	// Fill one round-robin stripe: task i lands on queue i%workers. All
	// tasks block on the gate so the queues are fully built before any
	// work is claimed, making the skew deterministic.
	const tasks = 4 * workers
	var slow, fast atomic.Int64
	for i := 0; i < tasks; i++ {
		if i%workers == 0 {
			p.Submit(func() {
				gate.Wait()
				time.Sleep(30 * time.Millisecond)
				slow.Add(1)
			})
		} else {
			p.Submit(func() {
				gate.Wait()
				fast.Add(1)
			})
		}
	}
	gate.Done()
	start := time.Now()
	p.Drain()
	elapsed := time.Since(start)

	if slow.Load() != tasks/workers || fast.Load() != tasks-tasks/workers {
		t.Fatalf("task accounting: %d slow, %d fast", slow.Load(), fast.Load())
	}
	// Worker 0's queue held all four 30ms tasks. Without stealing they
	// serialize behind each other (>=120ms); with stealing the three
	// idle workers take them (~2 rounds, ~60ms). Allow generous margin
	// for CI-host noise while still distinguishing the two regimes.
	if elapsed > 100*time.Millisecond {
		t.Fatalf("skewed queue serialized: %v elapsed (stealing broken?)", elapsed)
	}
	if s := p.Stats(); s.Steals == 0 {
		t.Fatalf("no steals recorded under maximal skew: %+v", s)
	}
}

func TestPoolStopDropsQueuedKeepsInflight(t *testing.T) {
	p := NewPool(1)
	var started, finished atomic.Int64
	release := make(chan struct{})
	running := make(chan struct{})
	p.Submit(func() {
		started.Add(1)
		close(running)
		<-release
		finished.Add(1)
	})
	for i := 0; i < 10; i++ {
		p.Submit(func() { started.Add(1) })
	}
	<-running
	go func() {
		// Stop blocks on the in-flight task; release it once Stop has
		// had a chance to mark the pool closed.
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	p.Stop()
	if started.Load() != 1 || finished.Load() != 1 {
		t.Fatalf("in-flight handling: started %d finished %d", started.Load(), finished.Load())
	}
	s := p.Stats()
	if s.Dropped != 10 || s.Completed != 1 {
		t.Fatalf("stats after Stop: %+v", s)
	}
}

func TestPoolConcurrencyBound(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	var cur, peak atomic.Int64
	for i := 0; i < 30; i++ {
		p.Submit(func() {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	}
	p.Drain()
	if got := peak.Load(); got > 3 {
		t.Fatalf("concurrency peaked at %d with 3 workers", got)
	}
}

func TestPoolSubmitFromTask(t *testing.T) {
	// Tasks may submit follow-up work (campaign cells enqueue their
	// completion bookkeeping); Drain waits for the extended frontier.
	p := NewPool(2)
	defer p.Close()
	var ran atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	p.Submit(func() {
		ran.Add(1)
		p.Submit(func() { ran.Add(1); wg.Done() })
	})
	wg.Wait()
	p.Drain()
	if ran.Load() != 2 {
		t.Fatalf("nested submit: %d tasks ran", ran.Load())
	}
}

// TestPoolInjectedWorkerDelay checks an armed injector stalls a worker
// without losing work: all tasks still complete, and the injectable
// sleeper records the stall.
func TestPoolInjectedWorkerDelay(t *testing.T) {
	in := faultinject.New(&faultinject.Plan{
		Rules: []faultinject.Rule{{Site: SiteWorker, Kind: faultinject.KindDelay, Delay: 3 * time.Millisecond, Count: 2}},
	})
	var slept atomic.Int64
	in.SetSleep(func(d time.Duration) { slept.Add(int64(d)) })
	p := NewPool(2)
	p.SetInjector(in)
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		p.Submit(func() { ran.Add(1) })
	}
	p.Drain()
	p.Close()
	if ran.Load() != 8 {
		t.Fatalf("ran %d tasks", ran.Load())
	}
	if slept.Load() != int64(6*time.Millisecond) {
		t.Fatalf("slept %v", time.Duration(slept.Load()))
	}
	if s := in.Stats(); s.Delays != 2 {
		t.Fatalf("injector stats: %+v", s)
	}
}
