package sweep

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func grid3x2() Grid {
	return Grid{Axes: []Axis{
		{Name: "workload", Values: []any{"a", "b", "c"}},
		{Name: "seed", Values: []any{1, 2}},
	}}
}

func TestGridSize(t *testing.T) {
	if n := grid3x2().Size(); n != 6 {
		t.Fatalf("size: %d", n)
	}
	if n := (Grid{}).Size(); n != 1 {
		t.Fatalf("empty grid size: %d", n)
	}
	empty := Grid{Axes: []Axis{{Name: "x", Values: nil}}}
	if n := empty.Size(); n != 0 {
		t.Fatalf("empty axis size: %d", n)
	}
	if pts := empty.Expand(); pts != nil {
		t.Fatalf("empty axis expand: %v", pts)
	}
}

func TestGridExpandRowMajor(t *testing.T) {
	pts := grid3x2().Expand()
	want := [][]any{
		{"a", 1}, {"a", 2},
		{"b", 1}, {"b", 2},
		{"c", 1}, {"c", 2},
	}
	if len(pts) != len(want) {
		t.Fatalf("point count: %d", len(pts))
	}
	for i, p := range pts {
		if p.Index != i {
			t.Fatalf("point %d has index %d", i, p.Index)
		}
		if !reflect.DeepEqual(p.Values, want[i]) {
			t.Fatalf("point %d: %v, want %v", i, p.Values, want[i])
		}
	}
	// Expansion is deterministic.
	if !reflect.DeepEqual(grid3x2().Expand(), pts) {
		t.Fatal("expansion not reproducible")
	}
}

func TestPointValue(t *testing.T) {
	g := grid3x2()
	p := g.Expand()[3] // {"b", 2}
	if v := p.Value(g, "workload"); v != "b" {
		t.Fatalf("workload: %v", v)
	}
	if v := p.Value(g, "seed"); v != 2 {
		t.Fatalf("seed: %v", v)
	}
	if v := p.Value(g, "nope"); v != nil {
		t.Fatalf("unknown axis: %v", v)
	}
}

// TestRunDeterministicOrder is the core worker-pool guarantee: the result
// slice is ordered by job index no matter how many workers run or how the
// scheduler interleaves them.
func TestRunDeterministicOrder(t *testing.T) {
	jobs := make([]int, 40)
	for i := range jobs {
		jobs[i] = i
	}
	fn := func(j int) (string, error) {
		// Earlier jobs sleep longer, so completion order inverts
		// submission order under concurrency.
		time.Sleep(time.Duration(len(jobs)-j) * 100 * time.Microsecond)
		return fmt.Sprintf("r%d", j), nil
	}
	serial, err := Run(jobs, Options{Workers: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 64} {
		got, err := Run(jobs, Options{Workers: workers}, fn)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, serial) {
			t.Fatalf("workers=%d reordered results:\n%v\nvs serial\n%v", workers, got, serial)
		}
	}
}

func TestRunBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	jobs := make([]int, 30)
	_, err := Run(jobs, Options{Workers: 3}, func(int) (int, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("concurrency peaked at %d with 3 workers", p)
	}
}

func TestRunReturnsLowestIndexedError(t *testing.T) {
	jobs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		_, err := Run(jobs, Options{Workers: workers}, func(j int) (int, error) {
			if j == 3 || j == 5 {
				return 0, fmt.Errorf("job-%d: %w", j, boom)
			}
			return j, nil
		})
		if err == nil {
			t.Fatal("expected error")
		}
		var je *JobError
		if !errors.As(err, &je) {
			t.Fatalf("want *JobError, got %T", err)
		}
		if je.Index != 3 {
			t.Fatalf("workers=%d: first error index %d, want 3", workers, je.Index)
		}
		if !errors.Is(err, boom) {
			t.Fatal("Unwrap lost the cause")
		}
	}
}

func TestRunStopsSchedulingAfterError(t *testing.T) {
	jobs := make([]int, 100)
	for i := range jobs {
		jobs[i] = i
	}
	var started atomic.Int64
	_, err := Run(jobs, Options{Workers: 2}, func(j int) (int, error) {
		started.Add(1)
		if j == 0 {
			return 0, errors.New("early failure")
		}
		return j, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n > 10 {
		t.Fatalf("pool kept scheduling after failure: %d jobs started", n)
	}
}

func TestRunProgress(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[int]bool)
	last := 0
	jobs := []int{10, 20, 30, 40}
	_, err := Run(jobs, Options{Workers: 2, OnProgress: func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		if p.Total != 4 {
			t.Errorf("total: %d", p.Total)
		}
		seen[p.Index] = true
		last = p.Done
	}}, func(j int) (int, error) { return j, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 4 || last != 4 {
		t.Fatalf("progress coverage: %v, last done %d", seen, last)
	}
}

func TestRunEmptyAndZeroWorkers(t *testing.T) {
	got, err := Run(nil, Options{}, func(j int) (int, error) { return j, nil })
	if err != nil || len(got) != 0 {
		t.Fatalf("empty: %v %v", got, err)
	}
	got, err = Run([]int{7}, Options{Workers: -3}, func(j int) (int, error) { return j * 2, nil })
	if err != nil || !reflect.DeepEqual(got, []int{14}) {
		t.Fatalf("zero workers: %v %v", got, err)
	}
}
