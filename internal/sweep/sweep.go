// Package sweep expands declarative parameter grids into job lists and
// executes them on a bounded work-stealing worker pool with deterministic
// result ordering.
//
// A Grid is an ordered list of named axes; Expand produces the full
// cartesian product in row-major order (the last axis varies fastest), so
// a grid expands to the same job sequence on every run. Run then maps an
// arbitrary job slice through a worker function: results come back indexed
// exactly like the input jobs regardless of worker count or completion
// order, which keeps downstream tables byte-identical between a serial
// debug run and a 32-way sweep. Run is one-shot; long-running callers
// (the sweepd campaign server) use Pool directly, whose per-worker
// stealable queues keep skewed cell costs from serializing behind one
// worker.
package sweep

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Axis is one dimension of a parameter grid.
type Axis struct {
	// Name labels the axis ("workload", "seed", ...).
	Name string
	// Values are the points along the axis, in sweep order.
	Values []any
}

// Grid is an ordered set of axes describing a cross-product of runs.
type Grid struct {
	Axes []Axis
}

// Size returns the number of points in the product (1 for an empty grid,
// 0 if any axis is empty).
func (g Grid) Size() int {
	n := 1
	for _, a := range g.Axes {
		n *= len(a.Values)
	}
	return n
}

// Point is one cell of an expanded grid.
type Point struct {
	// Index is the point's row-major position in the expansion.
	Index int
	// Values holds one value per axis, in axis order.
	Values []any
}

// Value returns the point's value for the named axis, or nil.
func (p Point) Value(g Grid, name string) any {
	for i, a := range g.Axes {
		if a.Name == name {
			return p.Values[i]
		}
	}
	return nil
}

// Expand enumerates the grid's cartesian product in row-major order: the
// first axis varies slowest, the last fastest. The result is deterministic
// for a given grid.
func (g Grid) Expand() []Point {
	n := g.Size()
	if n == 0 {
		return nil
	}
	points := make([]Point, n)
	for i := 0; i < n; i++ {
		vals := make([]any, len(g.Axes))
		rem := i
		for ax := len(g.Axes) - 1; ax >= 0; ax-- {
			k := len(g.Axes[ax].Values)
			vals[ax] = g.Axes[ax].Values[rem%k]
			rem /= k
		}
		points[i] = Point{Index: i, Values: vals}
	}
	return points
}

// Progress reports pool state after each job completes.
type Progress struct {
	// Done and Total count completed vs scheduled jobs.
	Done, Total int
	// Index identifies the job that just finished.
	Index int
	// Err is that job's error, if any.
	Err error
}

// Options configures Run.
type Options struct {
	// Workers bounds concurrency (values < 1 mean 1). Simulations stay
	// single-threaded internally; the pool only parallelizes independent
	// jobs.
	Workers int
	// OnProgress, when set, is called after each job completes. Calls
	// are serialized (a slow callback stalls the pool) and Done is
	// monotone, but completion order is nondeterministic; use the Index
	// field, not call order.
	OnProgress func(Progress)
}

// JobError wraps the first-by-index failure of a sweep.
type JobError struct {
	// Index is the failing job's position in the input slice.
	Index int
	// Err is the worker function's error.
	Err error
}

// Error implements error.
func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *JobError) Unwrap() error { return e.Err }

// Run executes fn over jobs on a bounded worker pool and returns the
// results in job order: results[i] is fn(jobs[i]) no matter how many
// workers ran or in what order they finished. On failure, Run still waits
// for in-flight jobs, skips unstarted ones, and returns the error of the
// lowest-indexed failing job (again independent of scheduling), wrapped in
// a *JobError.
//
// Run is a one-shot convenience over Pool: it builds a pool of the
// requested width, submits every job, drains, and closes. Long-running
// callers (the sweepd campaign scheduler) hold a Pool directly so
// independent job batches share workers and steal from each other.
func Run[J, R any](jobs []J, opts Options, fn func(J) (R, error)) ([]R, error) {
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if len(jobs) == 0 {
		return []R{}, nil
	}
	results := make([]R, len(jobs))
	var (
		next   atomic.Int64 // next job index to claim
		failed atomic.Bool  // stop claiming new jobs after any failure

		mu   sync.Mutex
		done int
		errs []*JobError
	)
	// One task per job, but tasks claim indexes from a shared counter
	// rather than carrying one: fn starts in strict index order no matter
	// which queue a task sat in or which worker stole it. That keeps the
	// old contract — after a failure every unstarted job has a higher
	// index than every recorded error, so the lowest recorded error is
	// scheduling-independent.
	pool := NewPool(workers)
	for range jobs {
		pool.Submit(func() {
			i := int(next.Add(1)) - 1
			if failed.Load() {
				return
			}
			r, err := fn(jobs[i])
			mu.Lock()
			if err != nil {
				failed.Store(true)
				errs = append(errs, &JobError{Index: i, Err: err})
			} else {
				results[i] = r
			}
			done++
			// The callback runs under mu so invocations are
			// serialized and Done is monotone, as documented.
			if opts.OnProgress != nil {
				opts.OnProgress(Progress{Done: done, Total: len(jobs), Index: i, Err: err})
			}
			mu.Unlock()
		})
	}
	pool.Close()
	if len(errs) > 0 {
		sort.Slice(errs, func(a, b int) bool { return errs[a].Index < errs[b].Index })
		return nil, errs[0]
	}
	return results, nil
}
