package litmus

import "invisifence/internal/isa"

// The litmus body protocol addresses memory through two base registers set
// up by the per-seed harness prefix (RunSeed): R4 points at the shared
// variable area and R5 at the private result area. Static analyses
// (internal/staticfence) classify a body's accesses by these bases: only
// shared-area accesses can conflict across threads, and the per-seed
// rotation of the shared base (varsBase) moves whole blocks, so a variable's
// identity is its offset divided by the stride regardless of the seed.
const (
	// VarsReg is the base register of the shared-variable area.
	VarsReg = isa.R4
	// ResultsReg is the base register of the per-thread result area.
	ResultsReg = isa.R5
	// VarStride is the byte stride between shared variables (one block
	// each, to avoid false sharing); result slots use the same stride.
	VarStride = varStride
)

// VarIndex maps a shared-area (or result-area) byte offset to its variable
// index. ok is false for offsets that are not a whole non-negative stride —
// such an access does not follow the litmus layout and a static analysis
// must refuse to classify it.
func VarIndex(off int64) (int, bool) {
	if off < 0 || off%VarStride != 0 {
		return 0, false
	}
	return int(off / VarStride), true
}
