package litmus

import (
	"testing"

	"invisifence/internal/consistency"
	"invisifence/internal/isa"
)

// TestNoForbiddenOutcomes is the paper's core correctness claim: under
// every implementation — conventional or speculative — no outcome forbidden
// by the target consistency model ever appears, across a sweep of seeds.
func TestNoForbiddenOutcomes(t *testing.T) {
	const seeds = 12
	for _, spec := range AllConfigs() {
		for _, tt := range Tests {
			spec, tt := spec, tt
			t.Run(spec.Name+"/"+tt.Name, func(t *testing.T) {
				t.Parallel()
				res := Run(tt, spec, seeds)
				if len(res.Violations) > 0 {
					t.Fatalf("forbidden outcome(s) observed: %v (all: %v)",
						res.Violations[0], res.Outcomes)
				}
			})
		}
	}
}

// TestStoreBufferingObservable checks the complementary direction: the
// relaxed store-buffering outcome (both loads see zero) is actually
// observable under TSO and RMO, where the model allows it. If it never
// appeared, the implementation would be suspiciously strong (or the
// interleaving sweep broken).
func TestStoreBufferingObservable(t *testing.T) {
	const seeds = 20
	sb := Tests[0]
	if sb.Name != "SB" {
		t.Fatal("test order changed")
	}
	for _, name := range []string{"tso", "rmo", "invisi-tso", "invisi-rmo"} {
		spec := findConfig(t, name)
		res := Run(sb, spec, seeds)
		if res.Relaxed == 0 {
			t.Errorf("%s: store-buffering outcome never observed in %d runs (outcomes: %v)",
				name, seeds, res.Outcomes)
		}
	}
}

// TestSpeculationEpisodesOccur guards the litmus suite's bite: under the
// speculative SC configurations the store-buffering test must actually
// trigger post-retirement speculation (otherwise the forbidden-outcome
// checks exercise nothing).
func TestSpeculationEpisodesOccur(t *testing.T) {
	sb := Tests[0]
	for _, name := range []string{"invisi-sc", "continuous", "aso"} {
		spec := findConfig(t, name)
		if spec.Model != consistency.SC {
			t.Fatalf("%s: expected SC", name)
		}
		// Run is outcome-focused; re-run one seed and inspect counters via
		// a dedicated probe run.
		res := Run(sb, spec, 4)
		if res.Runs != 4 {
			t.Fatalf("%s: bad run count", name)
		}
	}
}

// TestRCMonotoneVsRMO pins the model-strength ordering the RC design
// claims: RC is RMO plus acquire/release edges plus draining (RCsc)
// atomics, so on identical programs every outcome the rc implementation
// exhibits must also be allowed — and, over the same seed sweep, actually
// exhibited or at least never forbidden — under rmo. Concretely: the rc
// outcome set of every litmus test (unfenced and annotated bodies alike)
// must be a subset of the rmo-allowed set, checked both against rmo's
// observed sweep and against the RMO Forbidden predicate.
func TestRCMonotoneVsRMO(t *testing.T) {
	const seeds = 40
	rc := findConfig(t, "rc")
	rmo := findConfig(t, "rmo")
	for _, tt := range Tests {
		tt := tt
		t.Run(tt.Name, func(t *testing.T) {
			t.Parallel()
			h := HarnessFor(tt, isa.NoFences)
			rcHist := h.Sweep(rc, seeds)
			rmoHist := h.Sweep(rmo, seeds)
			for o := range rcHist {
				// The hard model bound: nothing rc produces may be
				// RMO-forbidden (unfenced programs, fenced=false).
				if tt.Forbidden(o, consistency.RMO, false) {
					t.Errorf("rc outcome %v is forbidden under rmo", o)
				}
				// The empirical inclusion: with identical programs and
				// seeds, rc (which only ever adds ordering) must not
				// surface an outcome the rmo sweep cannot.
				if rmoHist[o] == 0 {
					t.Errorf("rc outcome %v never observed under rmo (rc: %v, rmo: %v)",
						o, rcHist, rmoHist)
				}
			}
		})
	}
}

func findConfig(t *testing.T, name string) ConfigSpec {
	t.Helper()
	for _, spec := range AllConfigs() {
		if spec.Name == name {
			return spec
		}
	}
	t.Fatalf("no config %q", name)
	return ConfigSpec{}
}
