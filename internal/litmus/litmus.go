// Package litmus runs classic memory-model litmus tests (store buffering /
// Dekker, message passing, load buffering, IRIW, coherence) against every
// consistency implementation in the simulator — conventional SC/TSO/RMO and
// all InvisiFence/ASO variants.
//
// This is the correctness heart of the reproduction: the paper's claim is
// that post-retirement speculation is *invisible* — outcomes forbidden by
// the target model must never appear, no matter how deep the speculation,
// how many rollbacks occur, or how requests interleave. The runner explores
// interleavings by sweeping seeds over network jitter, per-thread start
// skew, and shared-variable placement (rotating directory home nodes).
package litmus

import (
	"fmt"

	"invisifence/internal/cache"
	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/cpu"
	"invisifence/internal/isa"
	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
	"invisifence/internal/node"
	"invisifence/internal/sim"
)

// Outcome is the observed result-register values of one run, indexed by
// result slot.
type Outcome [4]memtypes.Word

// String implements fmt.Stringer.
func (o Outcome) String() string {
	return fmt.Sprintf("[%d %d %d %d]", o[0], o[1], o[2], o[3])
}

// Any, in an OutcomeSpec slot, matches every observed value.
const Any = int64(-1)

// OutcomeSpec is a serializable outcome predicate: one expected value per
// outcome slot, with Any matching everything. It is the target language of
// the fence-insertion search (internal/fencesearch) and of the corpus
// expectation tables under testdata/litmus/ — unlike the Forbidden
// closures, a spec can be hashed into a cache key and printed in a report.
type OutcomeSpec []int64

// Matches reports whether the observed outcome satisfies the spec. Slots
// beyond the spec's length match implicitly.
func (s OutcomeSpec) Matches(o Outcome) bool {
	for i, v := range s {
		if v != Any && o[i] != memtypes.Word(v) {
			return false
		}
	}
	return true
}

// String renders the spec with * for wildcard slots, e.g. "[1 0 * *]".
func (s OutcomeSpec) String() string {
	out := "["
	for i, v := range s {
		if i > 0 {
			out += " "
		}
		if v == Any {
			out += "*"
		} else {
			out += fmt.Sprintf("%d", v)
		}
	}
	return out + "]"
}

// CountMatches sums the histogram weight of outcomes satisfying the spec.
func CountMatches(hist map[Outcome]int, s OutcomeSpec) int {
	n := 0
	for o, c := range hist {
		if s.Matches(o) {
			n += c
		}
	}
	return n
}

// Test is one litmus test: thread bodies plus the predicate for outcomes
// the target model forbids.
type Test struct {
	Name    string
	Threads int
	// Build emits thread t's body. vars is the base register for the
	// shared variable area; results is the base register for the outcome
	// area (thread t writes its observations to fixed slots).
	Build func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy)
	// Slots is how many register-result outcome words the test defines.
	Slots int
	// FinalVars lists shared-variable indices whose post-run memory values
	// are appended as outcome slots after the register slots (for tests
	// whose condition is on final state, e.g. 2+2W).
	FinalVars []int
	// Forbidden reports whether the outcome violates the model. fenced
	// says the program was built with the RMO fence policy (under SC/TSO
	// programs are unfenced but the model itself forbids the reordering).
	Forbidden func(o Outcome, model consistency.Model, fenced bool) bool
	// Interesting reports the relaxed outcome whose appearance we track
	// (e.g., both-zero under TSO store buffering).
	Interesting func(o Outcome) bool
	// Target is the canonical SC-forbidden outcome, as a serializable
	// spec: the default query of the fence-insertion search. Nil when the
	// violation is not expressible as a single spec (RMW atomicity).
	Target OutcomeSpec
}

// TotalSlots is the full outcome width: register slots plus final-state
// slots.
func (t Test) TotalSlots() int { return t.Slots + len(t.FinalVars) }

const (
	varsAddr    = memtypes.Addr(0x10000)
	resultsAddr = memtypes.Addr(0x20000)
	// Shared variables live one per block to avoid false sharing.
	varStride = memtypes.BlockBytes
)

// varOff returns the byte offset of shared variable i.
func varOff(i int) int64 { return int64(i) * varStride }

// pubSt emits an ordering-carrying publication store: st.rel under an RC
// annotation policy, an optional full fence plus a plain store otherwise.
// Tests route their release edges through this so one builder serves every
// policy the corpus sweeps (unfenced, RMO fences, RC annotations).
func pubSt(b *isa.Builder, fp isa.FencePolicy, base isa.Reg, off int64, src isa.Reg) {
	if fp.ReleaseStores {
		b.StRel(base, off, src)
		return
	}
	if fp.Release {
		b.Fence()
	}
	b.St(base, off, src)
}

// acqLd emits an ordering-carrying observation load: ld.acq under an RC
// annotation policy, a plain load plus an optional trailing fence otherwise.
func acqLd(b *isa.Builder, fp isa.FencePolicy, rd, base isa.Reg, off int64) {
	if fp.AcquireLoads {
		b.LdAcq(rd, base, off)
		return
	}
	b.Ld(rd, base, off)
	if fp.Acquire {
		b.Fence()
	}
}

// weakUnordered reports whether the model leaves the test's edges unordered
// for a program built without fences or annotations: RMO and RC relax
// everything in that case (RC's extra ordering exists only on annotated
// accesses, which unfenced programs do not emit).
func weakUnordered(m consistency.Model, fenced bool) bool {
	return (m == consistency.RMO || m == consistency.RC) && !fenced
}

// resOff returns the byte offset of result slot i (one per block: each
// thread writes its own).
func resOff(i int) int64 { return int64(i) * varStride }

// Tests is the suite.
var Tests = []Test{
	{
		// Store buffering (Dekker): both threads store then load the
		// other's flag. r0 == r1 == 0 is forbidden under SC, allowed
		// under TSO and RMO.
		Name:    "SB",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			mine, theirs := varOff(t), varOff(1-t)
			b.MovI(isa.R6, 1)
			b.St(vars, mine, isa.R6)
			b.Ld(isa.R7, vars, theirs)
			b.St(results, resOff(t), isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if m != consistency.SC {
				return false
			}
			return o[0] == 0 && o[1] == 0
		},
		Interesting: func(o Outcome) bool { return o[0] == 0 && o[1] == 0 },
		Target:      OutcomeSpec{0, 0},
	},
	{
		// Message passing: T0 writes data then flag; T1 reads flag then
		// data. Seeing the flag but stale data is forbidden under SC and
		// TSO, and under RMO/RC when fences (or acquire/release
		// annotations) are emitted.
		Name:    "MP",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			data, flag := varOff(0), varOff(1)
			if t == 0 {
				b.MovI(isa.R6, 1)
				b.St(vars, data, isa.R6)
				pubSt(b, fp, vars, flag, isa.R6)
				return
			}
			acqLd(b, fp, isa.R7, vars, flag)
			b.Ld(isa.R8, vars, data)
			b.St(results, resOff(0), isa.R7)
			b.St(results, resOff(1), isa.R8)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if weakUnordered(m, fenced) {
				return false
			}
			return o[0] == 1 && o[1] == 0
		},
		Interesting: func(o Outcome) bool { return o[0] == 1 && o[1] == 0 },
		Target:      OutcomeSpec{1, 0},
	},
	{
		// Load buffering: r0 == r1 == 1 requires stores to become visible
		// before older loads bind, impossible with in-order retirement in
		// any of these implementations (and forbidden by SC/TSO).
		Name:    "LB",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			mine, theirs := varOff(t), varOff(1-t)
			b.Ld(isa.R7, vars, theirs)
			b.MovI(isa.R6, 1)
			b.St(vars, mine, isa.R6)
			b.St(results, resOff(t), isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			return o[0] == 1 && o[1] == 1
		},
		Target: OutcomeSpec{1, 1},
	},
	{
		// IRIW: two writers, two readers observing opposite orders.
		// Forbidden under SC and TSO (store atomicity + load ordering),
		// and under RMO with fences between the reader loads.
		Name:    "IRIW",
		Threads: 4,
		Slots:   4,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x, y := varOff(0), varOff(1)
			switch t {
			case 0:
				b.MovI(isa.R6, 1)
				b.St(vars, x, isa.R6)
			case 1:
				b.MovI(isa.R6, 1)
				b.St(vars, y, isa.R6)
			case 2:
				acqLd(b, fp, isa.R7, vars, x)
				b.Ld(isa.R8, vars, y)
				b.St(results, resOff(0), isa.R7)
				b.St(results, resOff(1), isa.R8)
			case 3:
				acqLd(b, fp, isa.R7, vars, y)
				b.Ld(isa.R8, vars, x)
				b.St(results, resOff(2), isa.R7)
				b.St(results, resOff(3), isa.R8)
			}
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if weakUnordered(m, fenced) {
				return false
			}
			return o[0] == 1 && o[1] == 0 && o[2] == 1 && o[3] == 0
		},
		Target: OutcomeSpec{1, 0, 1, 0},
	},
	{
		// SB+F: Dekker with explicit full fences between each thread's
		// store and load. Forbidden under every model — this is the
		// paper's core fence semantics, and under InvisiFence the fence
		// retires *speculatively* (§3.2) yet must still be enforced by
		// the atomic commit of the speculation.
		Name:    "SB+F",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			mine, theirs := varOff(t), varOff(1-t)
			b.MovI(isa.R6, 1)
			b.St(vars, mine, isa.R6)
			b.Fence()
			b.Ld(isa.R7, vars, theirs)
			b.St(results, resOff(t), isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			return o[0] == 0 && o[1] == 0
		},
		Target: OutcomeSpec{0, 0},
	},
	{
		// WRC: write-to-read causality. T1 observes T0's write and then
		// writes a flag; T2 observing the flag must also see T0's write.
		// Forbidden under SC/TSO, and under RMO with fences.
		Name:    "WRC",
		Threads: 3,
		Slots:   3,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x, y := varOff(0), varOff(1)
			switch t {
			case 0:
				b.MovI(isa.R6, 1)
				b.St(vars, x, isa.R6)
			case 1:
				acqLd(b, fp, isa.R7, vars, x)
				b.St(vars, y, isa.R7) // forwards the observed value
				b.St(results, resOff(0), isa.R7)
			case 2:
				acqLd(b, fp, isa.R8, vars, y)
				b.Ld(isa.R9, vars, x)
				b.St(results, resOff(1), isa.R8)
				b.St(results, resOff(2), isa.R9)
			}
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if weakUnordered(m, fenced) {
				return false
			}
			return o[0] == 1 && o[1] == 1 && o[2] == 0
		},
		Target: OutcomeSpec{1, 1, 0},
	},
	{
		// CoRR: per-location coherence. A reader must never observe a
		// location's writes going backwards (1 then 0), under any model.
		Name:    "CoRR",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x := varOff(0)
			if t == 0 {
				b.MovI(isa.R6, 1)
				b.St(vars, x, isa.R6)
				return
			}
			b.Ld(isa.R7, vars, x)
			b.Ld(isa.R8, vars, x)
			b.St(results, resOff(0), isa.R7)
			b.St(results, resOff(1), isa.R8)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			return o[0] == 1 && o[1] == 0
		},
		Target: OutcomeSpec{1, 0},
	},
	{
		// Atomicity: both threads fetch-add the same word once; the sum
		// must be exactly 2 (lost RMW updates are forbidden everywhere).
		Name:    "RMW",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x := varOff(0)
			b.MovI(isa.R6, 1)
			b.Fadd(isa.R7, vars, x, isa.R6)
			b.St(results, resOff(t), isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			// Old values observed must be {0, 1} in some order.
			return !((o[0] == 0 && o[1] == 1) || (o[0] == 1 && o[1] == 0))
		},
	},
	{
		// ISA2: transitive message passing through an intermediary. T0
		// publishes x then y; T1 forwards its observation of y into z; T2
		// observing z must also see x. Forbidden under SC and TSO (needs
		// W->W, R->W, or R->R reordering), under RMO only with fences.
		Name:    "ISA2",
		Threads: 3,
		Slots:   3,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x, y, z := varOff(0), varOff(1), varOff(2)
			switch t {
			case 0:
				b.MovI(isa.R6, 1)
				b.St(vars, x, isa.R6)
				pubSt(b, fp, vars, y, isa.R6)
			case 1:
				acqLd(b, fp, isa.R7, vars, y)
				b.St(vars, z, isa.R7) // forwards the observed value
				b.St(results, resOff(0), isa.R7)
			case 2:
				acqLd(b, fp, isa.R8, vars, z)
				b.Ld(isa.R9, vars, x)
				b.St(results, resOff(1), isa.R8)
				b.St(results, resOff(2), isa.R9)
			}
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if weakUnordered(m, fenced) {
				return false
			}
			return o[0] == 1 && o[1] == 1 && o[2] == 0
		},
		Target: OutcomeSpec{1, 1, 0},
	},
	{
		// 2+2W: write-order cycle on two locations. Both finals equal to
		// the *first* writes (x == 2 and y == 2) needs each thread's
		// stores to drain out of order — forbidden under SC and TSO (FIFO
		// buffers), under RMO only with a fence between the stores.
		Name:      "2+2W",
		Threads:   2,
		Slots:     0,
		FinalVars: []int{0, 1}, // final x, final y
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x, y := varOff(0), varOff(1)
			first, second := x, y
			if t == 1 {
				first, second = y, x
			}
			b.MovI(isa.R6, 2)
			b.MovI(isa.R7, 1)
			b.St(vars, first, isa.R6)
			pubSt(b, fp, vars, second, isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if weakUnordered(m, fenced) {
				return false
			}
			return o[0] == 2 && o[1] == 2
		},
		Interesting: func(o Outcome) bool { return o[0] == 2 && o[1] == 2 },
		Target:      OutcomeSpec{2, 2},
	},
	{
		// R: store-order vs. load. T0 publishes x then y=1; T1 writes y=2
		// then reads x. Final y == 2 with r == 0 needs T1's read to bypass
		// its own pending store — allowed under TSO and RMO (like SB),
		// forbidden under SC and under RMO with a full fence on T1.
		Name:      "R",
		Threads:   2,
		Slots:     1,
		FinalVars: []int{1}, // final y
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x, y := varOff(0), varOff(1)
			if t == 0 {
				b.MovI(isa.R6, 1)
				b.St(vars, x, isa.R6)
				pubSt(b, fp, vars, y, isa.R6)
				return
			}
			// T1's store→load edge needs a *full* fence: release/acquire
			// annotations never order a store before a later load, so under
			// RC the outcome stays allowed even with RCFences.
			b.MovI(isa.R6, 2)
			b.St(vars, y, isa.R6)
			if fp.Release {
				b.Fence()
			}
			b.Ld(isa.R7, vars, x)
			b.St(results, resOff(0), isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if m != consistency.SC && !(m == consistency.RMO && fenced) {
				return false
			}
			return o[0] == 0 && o[1] == 2
		},
		Interesting: func(o Outcome) bool { return o[0] == 0 && o[1] == 2 },
		Target:      OutcomeSpec{0, 2},
	},
	{
		// S: store-order vs. dependent store. T0 writes x=2 then y=1; T1
		// reading y==1 then writing x=1 must leave x == 1 (its write is
		// coherence-after T0's). r == 1 with final x == 2 is forbidden
		// under SC and TSO, under RMO only with fences.
		Name:      "S",
		Threads:   2,
		Slots:     1,
		FinalVars: []int{0}, // final x
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x, y := varOff(0), varOff(1)
			if t == 0 {
				b.MovI(isa.R6, 2)
				b.MovI(isa.R7, 1)
				b.St(vars, x, isa.R6)
				pubSt(b, fp, vars, y, isa.R7)
				return
			}
			acqLd(b, fp, isa.R7, vars, y)
			b.MovI(isa.R6, 1)
			b.St(vars, x, isa.R6)
			b.St(results, resOff(0), isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if weakUnordered(m, fenced) {
				return false
			}
			return o[0] == 1 && o[1] == 2
		},
		Target: OutcomeSpec{1, 2},
	},
	{
		// MP-rel-acq: message passing whose ordering lives entirely in the
		// instruction annotations — the flag is published with st.rel and
		// observed with ld.acq, with no standalone fences under the RC
		// policy. Under RC the annotations alone forbid the stale-data
		// outcome even in the "unfenced" sweep; under RMO the machine
		// ignores them (they degrade to plain ld/st) and only an explicit
		// fence policy closes the window. This is the pinning test for the
		// RC variant family: it separates RC from RMO on identical programs.
		Name:    "MP-rel-acq",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			data, flag := varOff(0), varOff(1)
			if t == 0 {
				b.MovI(isa.R6, 1)
				b.St(vars, data, isa.R6)
				if fp.Release {
					b.Fence()
				}
				b.StRel(vars, flag, isa.R6)
				return
			}
			b.LdAcq(isa.R7, vars, flag)
			if fp.Acquire {
				b.Fence()
			}
			b.Ld(isa.R8, vars, data)
			b.St(results, resOff(0), isa.R7)
			b.St(results, resOff(1), isa.R8)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if m == consistency.RMO && !fenced {
				return false
			}
			return o[0] == 1 && o[1] == 0
		},
		Interesting: func(o Outcome) bool { return o[0] == 1 && o[1] == 0 },
		Target:      OutcomeSpec{1, 0},
	},
	{
		// ISA2-rel-acq: the transitive message-passing chain with every
		// edge carried by annotations — st.rel publications, ld.acq
		// observations, no fences under RC. Forbidden under SC/TSO and
		// under RC unconditionally; under RMO the annotations degrade and
		// the outcome is only forbidden with explicit fences.
		Name:    "ISA2-rel-acq",
		Threads: 3,
		Slots:   3,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x, y, z := varOff(0), varOff(1), varOff(2)
			switch t {
			case 0:
				b.MovI(isa.R6, 1)
				b.St(vars, x, isa.R6)
				if fp.Release {
					b.Fence()
				}
				b.StRel(vars, y, isa.R6)
			case 1:
				b.LdAcq(isa.R7, vars, y)
				if fp.Acquire {
					b.Fence()
				}
				b.StRel(vars, z, isa.R7) // forwards the observed value
				b.St(results, resOff(0), isa.R7)
			case 2:
				b.LdAcq(isa.R8, vars, z)
				if fp.Acquire {
					b.Fence()
				}
				b.Ld(isa.R9, vars, x)
				b.St(results, resOff(1), isa.R8)
				b.St(results, resOff(2), isa.R9)
			}
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if m == consistency.RMO && !fenced {
				return false
			}
			return o[0] == 1 && o[1] == 1 && o[2] == 0
		},
		Target: OutcomeSpec{1, 1, 0},
	},
}

// ConfigSpec names one consistency implementation under test.
type ConfigSpec struct {
	Name   string
	Model  consistency.Model
	Engine ifcore.Config
}

// AllConfigs returns every implementation the suite validates.
func AllConfigs() []ConfigSpec {
	return []ConfigSpec{
		{"sc", consistency.SC, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.SC}},
		{"tso", consistency.TSO, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.TSO}},
		{"rmo", consistency.RMO, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.RMO}},
		{"invisi-sc", consistency.SC, ifcore.DefaultSelective(consistency.SC)},
		{"invisi-tso", consistency.TSO, ifcore.DefaultSelective(consistency.TSO)},
		{"invisi-rmo", consistency.RMO, ifcore.DefaultSelective(consistency.RMO)},
		{"invisi-sc-2ckpt", consistency.SC, func() ifcore.Config {
			c := ifcore.DefaultSelective(consistency.SC)
			c.MaxCheckpoints = 2
			return c
		}()},
		{"continuous", consistency.SC, ifcore.DefaultContinuous(false)},
		{"continuous-cov", consistency.SC, ifcore.DefaultContinuous(true)},
		{"aso", consistency.SC, ifcore.DefaultASO()},
		{"rc", consistency.RC, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.RC}},
		{"invisi-rc", consistency.RC, ifcore.DefaultSelective(consistency.RC)},
		{"louvre-rc", consistency.RC, ifcore.DefaultLouvre()},
	}
}

// Result summarizes a sweep of one test under one configuration.
type Result struct {
	Test       string
	Config     string
	Runs       int
	Outcomes   map[Outcome]int
	Violations []Outcome
	Relaxed    int // runs showing the Interesting outcome
}

// Run sweeps a test under a configuration across seeds, each seed with
// different network jitter and thread skew. Programs are specialized per
// model: under RMO the builders emit their fences, under RC their
// acquire/release annotations (fenced = true for the Forbidden predicate).
func Run(t Test, spec ConfigSpec, seeds int) Result {
	return RunWithPolicy(t, spec, DefaultPolicy(spec.Model), seeds)
}

// DefaultPolicy is the fence policy a correct sync library would use for
// the model: full fences under RMO, acquire/release annotations under RC,
// nothing under the stronger models.
func DefaultPolicy(m consistency.Model) isa.FencePolicy {
	switch m {
	case consistency.RMO:
		return isa.RMOFences
	case consistency.RC:
		return isa.RCFences
	}
	return isa.NoFences
}

// RunWithPolicy is Run with an explicit fence policy, letting callers probe
// the *unfenced* behavior of a weak model (the corpus tables pin both).
func RunWithPolicy(t Test, spec ConfigSpec, fp isa.FencePolicy, seeds int) Result {
	fenced := fp.Synchronizes()
	h := HarnessFor(t, fp)
	res := Result{Test: t.Name, Config: spec.Name, Outcomes: make(map[Outcome]int)}
	for seed := 0; seed < seeds; seed++ {
		o := h.RunSeed(spec, int64(seed))
		res.Runs++
		res.Outcomes[o]++
		if t.Forbidden(o, spec.Model, fenced) {
			res.Violations = append(res.Violations, o)
		}
		if t.Interesting != nil && t.Interesting(o) {
			res.Relaxed++
		}
	}
	return res
}

// BodyPrograms assembles the per-thread body programs of a test under a
// fence policy, without the per-seed harness prefix (start skew and the
// R4/R5 base-register setup): the stable instruction streams on which
// fence-insertion sites are enumerated.
func BodyPrograms(t Test, fp isa.FencePolicy) []*isa.Program {
	progs := make([]*isa.Program, t.Threads)
	for i := range progs {
		b := isa.NewBuilder(fmt.Sprintf("%s-t%d", t.Name, i))
		t.Build(b, i, isa.R4, isa.R5, fp)
		b.Halt()
		progs[i] = b.MustBuild()
	}
	return progs
}

// Harness runs prebuilt thread programs under the litmus machine
// configuration and extracts outcomes. It is the program-level interface
// the fence-insertion search evaluates candidates through: Bodies may be
// any straight-line-or-looping programs using the vars/results protocol
// (R4 = shared-variable base, R5 = result base), typically a Test's
// BodyPrograms with fences inserted.
type Harness struct {
	Name   string
	Slots  int   // register-result outcome slots read from the result area
	Finals []int // shared-var indices appended as outcome slots
	Bodies []*isa.Program
	// Jitter overrides the per-message network jitter bound (0 = the
	// suite default). The fence-insertion oracle runs with a wider bound
	// than the plain suite: fill-latency differentials up to Jitter are
	// what expose load-load and store-store reorderings, and a too-narrow
	// sweep would certify fence sets that the model does not justify.
	Jitter uint64
}

// HarnessFor wraps a test's body programs in a harness.
func HarnessFor(t Test, fp isa.FencePolicy) Harness {
	return Harness{Name: t.Name, Slots: t.Slots, Finals: t.FinalVars, Bodies: BodyPrograms(t, fp)}
}

// TotalSlots is the full outcome width.
func (h Harness) TotalSlots() int { return h.Slots + len(h.Finals) }

// Sweep runs the harness across seeds and histograms the outcomes.
func (h Harness) Sweep(spec ConfigSpec, seeds int) map[Outcome]int {
	hist := make(map[Outcome]int)
	for seed := 0; seed < seeds; seed++ {
		hist[h.RunSeed(spec, int64(seed))]++
	}
	return hist
}

// varsBase rotates the shared-variable area by whole blocks across seeds.
// Rotation moves each variable's directory home node around the 2x2 torus,
// so the drain/fill races that weak outcomes depend on (which store gains
// ownership first, which load's fill arrives late) are actually explored:
// with a fixed placement the home distances pin most races and the sweep
// never exhibits store-store reordering, which would blind the
// fence-insertion oracle.
func varsBase(seed int64) memtypes.Addr {
	return varsAddr + memtypes.Addr((seed%4)*varStride)
}

// RunSeed runs one seed: each thread gets a seed-dependent start-skew delay
// plus the base-register prefix (R4 = rotated shared-variable base, R5 =
// result base), the simulation runs to completion, and the outcome is read
// back from the result area plus any final-state slots.
func (h Harness) RunSeed(spec ConfigSpec, seed int64) Outcome {
	nodes := 4
	if len(h.Bodies) > nodes {
		panic(fmt.Sprintf("litmus: %s has %d threads, max %d", h.Name, len(h.Bodies), nodes))
	}
	vbase := varsBase(seed)
	progs := make([]*isa.Program, nodes)
	for i := 0; i < nodes; i++ {
		if i >= len(h.Bodies) {
			b := isa.NewBuilder(fmt.Sprintf("%s-t%d", h.Name, i))
			b.Halt()
			progs[i] = b.MustBuild()
			continue
		}
		// Seed-dependent start skew explores interleavings.
		prefix := make([]isa.Insertion, 0, 3)
		if skew := (seed*7 + int64(i)*13) % 40; skew > 0 {
			prefix = append(prefix, isa.Insertion{PC: 0, In: isa.Instr{Op: isa.Delay, Imm: skew}})
		}
		prefix = append(prefix,
			isa.Insertion{PC: 0, In: isa.Instr{Op: isa.MovI, Rd: isa.R4, Imm: int64(vbase)}},
			isa.Insertion{PC: 0, In: isa.Instr{Op: isa.MovI, Rd: isa.R5, Imm: int64(resultsAddr)}},
		)
		p, err := isa.InsertBefore(h.Bodies[i], prefix)
		if err != nil {
			panic(err)
		}
		progs[i] = p
	}
	jitter := h.Jitter
	if jitter == 0 {
		jitter = 8
	}
	cfg := sim.Config{
		Net: network.Config{
			Width: 2, Height: 2,
			HopLatency: 12, LocalLatency: 1,
			Jitter: jitter, Seed: seed,
		},
		Node: node.Config{
			Model:              spec.Model,
			Engine:             spec.Engine,
			Core:               cpu.DefaultConfig(),
			L1:                 cache.Config{SizeBytes: 8 << 10, Ways: 2, HitLatency: 2, Name: "L1"},
			L2:                 cache.Config{SizeBytes: 64 << 10, Ways: 8, HitLatency: 10, Name: "L2"},
			Memory:             memctrl.Config{AccessLatency: 50, Banks: 8, BankBusy: 4},
			MSHRs:              16,
			SBCapacity:         sbCapacity(spec),
			StorePrefetchDepth: 4,
			SnoopLQ:            true,
			FillHoldCycles:     8,
		},
		MaxCycles:      500_000,
		WatchdogCycles: 100_000,
	}
	s := sim.New(cfg, progs, nil)
	r := s.Run()
	if !r.Finished {
		panic(fmt.Sprintf("litmus %s/%s seed %d did not finish", h.Name, spec.Name, seed))
	}
	var o Outcome
	for i := 0; i < h.Slots; i++ {
		o[i] = s.ReadWord(resultsAddr + memtypes.Addr(resOff(i)))
	}
	for j, v := range h.Finals {
		o[h.Slots+j] = s.ReadWord(vbase + memtypes.Addr(varOff(v)))
	}
	return o
}

func sbCapacity(spec ConfigSpec) int {
	if spec.Engine.Mode == ifcore.ModeOff &&
		consistency.RulesFor(spec.Model).SB == consistency.SBFIFOWord {
		return 64
	}
	if spec.Engine.MaxCheckpoints > 1 {
		return 32
	}
	return 8
}
