// Package litmus runs classic memory-model litmus tests (store buffering /
// Dekker, message passing, load buffering, IRIW, coherence) against every
// consistency implementation in the simulator — conventional SC/TSO/RMO and
// all InvisiFence/ASO variants.
//
// This is the correctness heart of the reproduction: the paper's claim is
// that post-retirement speculation is *invisible* — outcomes forbidden by
// the target model must never appear, no matter how deep the speculation,
// how many rollbacks occur, or how requests interleave. The runner explores
// interleavings by sweeping seeds over network jitter and per-thread start
// skew.
package litmus

import (
	"fmt"

	"invisifence/internal/cache"
	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/cpu"
	"invisifence/internal/isa"
	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
	"invisifence/internal/node"
	"invisifence/internal/sim"
)

// Outcome is the observed result-register values of one run, indexed by
// result slot.
type Outcome [4]memtypes.Word

// String implements fmt.Stringer.
func (o Outcome) String() string {
	return fmt.Sprintf("[%d %d %d %d]", o[0], o[1], o[2], o[3])
}

// Test is one litmus test: thread bodies plus the predicate for outcomes
// the target model forbids.
type Test struct {
	Name    string
	Threads int
	// Build emits thread t's body. vars is the base register for the
	// shared variable area; results is the base register for the outcome
	// area (thread t writes its observations to fixed slots).
	Build func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy)
	// Slots is how many outcome words the test defines.
	Slots int
	// Forbidden reports whether the outcome violates the model. fenced
	// says the program was built with the RMO fence policy (under SC/TSO
	// programs are unfenced but the model itself forbids the reordering).
	Forbidden func(o Outcome, model consistency.Model, fenced bool) bool
	// Interesting reports the relaxed outcome whose appearance we track
	// (e.g., both-zero under TSO store buffering).
	Interesting func(o Outcome) bool
}

const (
	varsAddr    = memtypes.Addr(0x10000)
	resultsAddr = memtypes.Addr(0x20000)
	// Shared variables live one per block to avoid false sharing.
	varStride = memtypes.BlockBytes
)

// varOff returns the byte offset of shared variable i.
func varOff(i int) int64 { return int64(i) * varStride }

// resOff returns the byte offset of result slot i (one per block: each
// thread writes its own).
func resOff(i int) int64 { return int64(i) * varStride }

// Tests is the suite.
var Tests = []Test{
	{
		// Store buffering (Dekker): both threads store then load the
		// other's flag. r0 == r1 == 0 is forbidden under SC, allowed
		// under TSO and RMO.
		Name:    "SB",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			mine, theirs := varOff(t), varOff(1-t)
			b.MovI(isa.R6, 1)
			b.St(vars, mine, isa.R6)
			b.Ld(isa.R7, vars, theirs)
			b.St(results, resOff(t), isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if m != consistency.SC {
				return false
			}
			return o[0] == 0 && o[1] == 0
		},
		Interesting: func(o Outcome) bool { return o[0] == 0 && o[1] == 0 },
	},
	{
		// Message passing: T0 writes data then flag; T1 reads flag then
		// data. Seeing the flag but stale data is forbidden under SC and
		// TSO, and under RMO when fences are emitted.
		Name:    "MP",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			data, flag := varOff(0), varOff(1)
			if t == 0 {
				b.MovI(isa.R6, 1)
				b.St(vars, data, isa.R6)
				if fp.Release {
					b.Fence()
				}
				b.St(vars, flag, isa.R6)
				return
			}
			b.Ld(isa.R7, vars, flag)
			if fp.Acquire {
				b.Fence()
			}
			b.Ld(isa.R8, vars, data)
			b.St(results, resOff(0), isa.R7)
			b.St(results, resOff(1), isa.R8)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if m == consistency.RMO && !fenced {
				return false
			}
			return o[0] == 1 && o[1] == 0
		},
		Interesting: func(o Outcome) bool { return o[0] == 1 && o[1] == 0 },
	},
	{
		// Load buffering: r0 == r1 == 1 requires stores to become visible
		// before older loads bind, impossible with in-order retirement in
		// any of these implementations (and forbidden by SC/TSO).
		Name:    "LB",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			mine, theirs := varOff(t), varOff(1-t)
			b.Ld(isa.R7, vars, theirs)
			b.MovI(isa.R6, 1)
			b.St(vars, mine, isa.R6)
			b.St(results, resOff(t), isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			return o[0] == 1 && o[1] == 1
		},
	},
	{
		// IRIW: two writers, two readers observing opposite orders.
		// Forbidden under SC and TSO (store atomicity + load ordering),
		// and under RMO with fences between the reader loads.
		Name:    "IRIW",
		Threads: 4,
		Slots:   4,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x, y := varOff(0), varOff(1)
			switch t {
			case 0:
				b.MovI(isa.R6, 1)
				b.St(vars, x, isa.R6)
			case 1:
				b.MovI(isa.R6, 1)
				b.St(vars, y, isa.R6)
			case 2:
				b.Ld(isa.R7, vars, x)
				if fp.Acquire {
					b.Fence()
				}
				b.Ld(isa.R8, vars, y)
				b.St(results, resOff(0), isa.R7)
				b.St(results, resOff(1), isa.R8)
			case 3:
				b.Ld(isa.R7, vars, y)
				if fp.Acquire {
					b.Fence()
				}
				b.Ld(isa.R8, vars, x)
				b.St(results, resOff(2), isa.R7)
				b.St(results, resOff(3), isa.R8)
			}
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if m == consistency.RMO && !fenced {
				return false
			}
			return o[0] == 1 && o[1] == 0 && o[2] == 1 && o[3] == 0
		},
	},
	{
		// SB+F: Dekker with explicit full fences between each thread's
		// store and load. Forbidden under every model — this is the
		// paper's core fence semantics, and under InvisiFence the fence
		// retires *speculatively* (§3.2) yet must still be enforced by
		// the atomic commit of the speculation.
		Name:    "SB+F",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			mine, theirs := varOff(t), varOff(1-t)
			b.MovI(isa.R6, 1)
			b.St(vars, mine, isa.R6)
			b.Fence()
			b.Ld(isa.R7, vars, theirs)
			b.St(results, resOff(t), isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			return o[0] == 0 && o[1] == 0
		},
	},
	{
		// WRC: write-to-read causality. T1 observes T0's write and then
		// writes a flag; T2 observing the flag must also see T0's write.
		// Forbidden under SC/TSO, and under RMO with fences.
		Name:    "WRC",
		Threads: 3,
		Slots:   3,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x, y := varOff(0), varOff(1)
			switch t {
			case 0:
				b.MovI(isa.R6, 1)
				b.St(vars, x, isa.R6)
			case 1:
				b.Ld(isa.R7, vars, x)
				if fp.Release {
					b.Fence()
				}
				b.St(vars, y, isa.R7) // forwards the observed value
				b.St(results, resOff(0), isa.R7)
			case 2:
				b.Ld(isa.R8, vars, y)
				if fp.Acquire {
					b.Fence()
				}
				b.Ld(isa.R9, vars, x)
				b.St(results, resOff(1), isa.R8)
				b.St(results, resOff(2), isa.R9)
			}
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			if m == consistency.RMO && !fenced {
				return false
			}
			return o[0] == 1 && o[1] == 1 && o[2] == 0
		},
	},
	{
		// CoRR: per-location coherence. A reader must never observe a
		// location's writes going backwards (1 then 0), under any model.
		Name:    "CoRR",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x := varOff(0)
			if t == 0 {
				b.MovI(isa.R6, 1)
				b.St(vars, x, isa.R6)
				return
			}
			b.Ld(isa.R7, vars, x)
			b.Ld(isa.R8, vars, x)
			b.St(results, resOff(0), isa.R7)
			b.St(results, resOff(1), isa.R8)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			return o[0] == 1 && o[1] == 0
		},
	},
	{
		// Atomicity: both threads fetch-add the same word once; the sum
		// must be exactly 2 (lost RMW updates are forbidden everywhere).
		Name:    "RMW",
		Threads: 2,
		Slots:   2,
		Build: func(b *isa.Builder, t int, vars, results isa.Reg, fp isa.FencePolicy) {
			x := varOff(0)
			b.MovI(isa.R6, 1)
			b.Fadd(isa.R7, vars, x, isa.R6)
			b.St(results, resOff(t), isa.R7)
		},
		Forbidden: func(o Outcome, m consistency.Model, fenced bool) bool {
			// Old values observed must be {0, 1} in some order.
			return !((o[0] == 0 && o[1] == 1) || (o[0] == 1 && o[1] == 0))
		},
	},
}

// ConfigSpec names one consistency implementation under test.
type ConfigSpec struct {
	Name   string
	Model  consistency.Model
	Engine ifcore.Config
}

// AllConfigs returns every implementation the suite validates.
func AllConfigs() []ConfigSpec {
	return []ConfigSpec{
		{"sc", consistency.SC, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.SC}},
		{"tso", consistency.TSO, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.TSO}},
		{"rmo", consistency.RMO, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.RMO}},
		{"invisi-sc", consistency.SC, ifcore.DefaultSelective(consistency.SC)},
		{"invisi-tso", consistency.TSO, ifcore.DefaultSelective(consistency.TSO)},
		{"invisi-rmo", consistency.RMO, ifcore.DefaultSelective(consistency.RMO)},
		{"invisi-sc-2ckpt", consistency.SC, func() ifcore.Config {
			c := ifcore.DefaultSelective(consistency.SC)
			c.MaxCheckpoints = 2
			return c
		}()},
		{"continuous", consistency.SC, ifcore.DefaultContinuous(false)},
		{"continuous-cov", consistency.SC, ifcore.DefaultContinuous(true)},
		{"aso", consistency.SC, ifcore.DefaultASO()},
	}
}

// Result summarizes a sweep of one test under one configuration.
type Result struct {
	Test       string
	Config     string
	Runs       int
	Outcomes   map[Outcome]int
	Violations []Outcome
	Relaxed    int // runs showing the Interesting outcome
}

// Run sweeps a test under a configuration across seeds, each seed with
// different network jitter and thread skew.
func Run(t Test, spec ConfigSpec, seeds int) Result {
	res := Result{Test: t.Name, Config: spec.Name, Outcomes: make(map[Outcome]int)}
	fenced := spec.Model == consistency.RMO
	fp := isa.NoFences
	if fenced {
		fp = isa.RMOFences
	}
	for seed := 0; seed < seeds; seed++ {
		o := runOnce(t, spec, fp, int64(seed))
		res.Runs++
		res.Outcomes[o]++
		if t.Forbidden(o, spec.Model, fenced) {
			res.Violations = append(res.Violations, o)
		}
		if t.Interesting != nil && t.Interesting(o) {
			res.Relaxed++
		}
	}
	return res
}

func runOnce(t Test, spec ConfigSpec, fp isa.FencePolicy, seed int64) Outcome {
	nodes := 4
	progs := make([]*isa.Program, nodes)
	for i := 0; i < nodes; i++ {
		b := isa.NewBuilder(fmt.Sprintf("%s-t%d", t.Name, i))
		if i < t.Threads {
			// Seed-dependent start skew explores interleavings.
			skew := (seed*7 + int64(i)*13) % 40
			if skew > 0 {
				b.Delay(skew)
			}
			b.MovI(isa.R4, int64(varsAddr))
			b.MovI(isa.R5, int64(resultsAddr))
			t.Build(b, i, isa.R4, isa.R5, fp)
		}
		b.Halt()
		progs[i] = b.MustBuild()
	}
	cfg := sim.Config{
		Net: network.Config{
			Width: 2, Height: 2,
			HopLatency: 12, LocalLatency: 1,
			Jitter: 8, Seed: seed,
		},
		Node: node.Config{
			Model:              spec.Model,
			Engine:             spec.Engine,
			Core:               cpu.DefaultConfig(),
			L1:                 cache.Config{SizeBytes: 8 << 10, Ways: 2, HitLatency: 2, Name: "L1"},
			L2:                 cache.Config{SizeBytes: 64 << 10, Ways: 8, HitLatency: 10, Name: "L2"},
			Memory:             memctrl.Config{AccessLatency: 50, Banks: 8, BankBusy: 4},
			MSHRs:              16,
			SBCapacity:         sbCapacity(spec),
			StorePrefetchDepth: 4,
			SnoopLQ:            true,
			FillHoldCycles:     8,
		},
		MaxCycles:      500_000,
		WatchdogCycles: 100_000,
	}
	s := sim.New(cfg, progs, nil)
	r := s.Run()
	if !r.Finished {
		panic(fmt.Sprintf("litmus %s/%s seed %d did not finish", t.Name, spec.Name, seed))
	}
	var o Outcome
	for i := 0; i < t.Slots; i++ {
		o[i] = s.ReadWord(resultsAddr + memtypes.Addr(resOff(i)))
	}
	return o
}

func sbCapacity(spec ConfigSpec) int {
	if spec.Engine.Mode == ifcore.ModeOff &&
		consistency.RulesFor(spec.Model).SB == consistency.SBFIFOWord {
		return 64
	}
	if spec.Engine.MaxCheckpoints > 1 {
		return 32
	}
	return 8
}
