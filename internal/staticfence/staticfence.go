// Package staticfence infers sufficient fence placements for litmus bodies
// by static critical-cycle (Shasha–Snir delay-set) analysis, refined by a
// per-model reorderable-pairs relation in the style of Alglave et al.'s
// "Don't sit on the fence".
//
// This is the static counterpart of internal/fencesearch's dynamic oracle:
// instead of simulating candidate placements, it builds an event graph from
// the thread bodies (per-thread program order over shared-memory accesses,
// inter-thread communication edges between conflicting accesses), enumerates
// critical cycles, and keeps the program-order edges a model can actually
// relax. Covering every such *delay edge* with a fence provably restores
// sequential consistency for the program, so the minimal covers emitted here
// are sufficient — but possibly conservative — fence sets: the machine may
// close a reordering window the model leaves open (MP's reader side under
// load-queue snooping), which is exactly the paper's performance-transparency
// claim made checkable. internal/crossval diffs the two analyzers.
//
// Soundness argument (DESIGN.md §12 carries the full version):
//
//  1. The simulated machine is multi-copy atomic — writes propagate through
//     a single directory serialization point — so every execution that
//     violates SC embeds a critical cycle of program-order and
//     communication edges (Shasha & Snir).
//  2. A critical cycle can materialize only if at least one of its
//     program-order edges is relaxed by the model: if every po edge is
//     enforced, the cycle's po∪com order is acyclic in every execution.
//  3. A full fence between two accesses enforces their order under every
//     model (consistency.Rules: FenceNeedsDrain plus in-order retirement).
//     Same-address pairs are always enforced (coherence; the CoRR test).
//  4. Therefore fencing every relaxable po edge of every critical cycle
//     leaves no cycle materializable: the outcome set is SC.
//
// The analysis is deliberately restricted to what it can prove: bodies must
// be straight-line (no branches) and address only the litmus protocol's
// shared and result areas with immediate offsets; anything else is refused
// with an error rather than analyzed optimistically.
package staticfence

import (
	"fmt"
	"sort"
	"strings"

	"invisifence/internal/consistency"
	"invisifence/internal/isa"
	"invisifence/internal/litmus"
)

// Site is one fence-insertion point, in the same vocabulary as
// internal/fencesearch: immediately before the instruction at PC in thread
// Thread's body program.
type Site struct {
	Thread int
	PC     int
}

// String implements fmt.Stringer.
func (s Site) String() string { return fmt.Sprintf("T%d@%d", s.Thread, s.PC) }

// Class is the ordering class of a memory access.
type Class uint8

const (
	// Load is a non-atomic plain read.
	Load Class = iota
	// Store is a non-atomic plain write.
	Store
	// Atomic is a read-modify-write; it behaves as both a read and a
	// write for conflict and reordering purposes.
	Atomic
	// AcqLoad is a load-acquire (ld.acq): a read that, under RC, orders
	// itself before every later access. Under every other model it is a
	// plain load — the machine ignores the annotation.
	AcqLoad
	// RelStore is a store-release (st.rel): a write that, under RC,
	// orders every earlier access before itself. Under every other model
	// it is a plain store.
	RelStore
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Load:
		return "ld"
	case Store:
		return "st"
	case Atomic:
		return "at"
	case AcqLoad:
		return "ld.acq"
	case RelStore:
		return "st.rel"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// loadLike reports whether the class reads and does not write (plain or
// acquire loads) — the "load" of the TSO store→load relaxation.
func (c Class) loadLike() bool { return c == Load || c == AcqLoad }

// storeLike reports whether the class writes and does not read (plain or
// release stores).
func (c Class) storeLike() bool { return c == Store || c == RelStore }

// Event is one shared-memory access of the event graph.
type Event struct {
	Thread int
	PC     int
	Class  Class
	Var    int // shared-variable index (offset / stride)
	id     int // global enumeration index
}

// Reads reports whether the event observes memory.
func (e Event) Reads() bool { return !e.Class.storeLike() }

// Writes reports whether the event mutates memory.
func (e Event) Writes() bool { return !e.Class.loadLike() }

// String renders "T0@2:st(v1)".
func (e Event) String() string {
	return fmt.Sprintf("T%d@%d:%v(v%d)", e.Thread, e.PC, e.Class, e.Var)
}

// POEdge is a program-order edge between two events of one thread
// (From.PC < To.PC).
type POEdge struct {
	From, To Event
}

// String implements fmt.Stringer.
func (e POEdge) String() string {
	return fmt.Sprintf("T%d@%d->@%d (%v->%v)", e.From.Thread, e.From.PC, e.To.PC, e.From.Class, e.To.Class)
}

// Layout names the base registers and stride of the address protocol the
// bodies follow. Accesses off the shared base conflict across threads;
// accesses off the result base are thread-private (verified, not assumed);
// any other base register is refused.
type Layout struct {
	SharedBase isa.Reg
	ResultBase isa.Reg
	Stride     int64
}

// LitmusLayout is the litmus suite's protocol (R4 shared, R5 results).
func LitmusLayout() Layout {
	return Layout{SharedBase: litmus.VarsReg, ResultBase: litmus.ResultsReg, Stride: litmus.VarStride}
}

// Graph is the static event graph of a multi-threaded program.
type Graph struct {
	Name string
	// Bodies are the analyzed programs (needed for fence-site spans and
	// existing-fence detection).
	Bodies []*isa.Program
	// Threads holds each thread's shared events in program order.
	Threads [][]Event

	events []Event // flattened by id
}

// BuildGraph extracts the event graph, refusing programs it cannot analyze
// soundly: branches, non-protocol base registers, misaligned offsets, or a
// result-area slot touched by more than one thread.
func BuildGraph(name string, bodies []*isa.Program, lay Layout) (*Graph, error) {
	g := &Graph{Name: name, Bodies: bodies, Threads: make([][]Event, len(bodies))}
	resultOwner := map[int64]int{} // result-area offset -> owning thread
	for t, body := range bodies {
		if isa.HasBranch(body) {
			return nil, fmt.Errorf("staticfence: %s thread %d has branches; static program order undefined", name, t)
		}
		for _, a := range isa.MemAccesses(body) {
			switch a.Base {
			case lay.SharedBase:
				v, ok := litmusVar(a.Off, lay.Stride)
				if !ok {
					return nil, fmt.Errorf("staticfence: %s T%d@%d shared access at off-stride offset %d", name, t, a.PC, a.Off)
				}
				e := Event{Thread: t, PC: a.PC, Class: classOf(a.Op), Var: v, id: len(g.events)}
				g.Threads[t] = append(g.Threads[t], e)
				g.events = append(g.events, e)
			case lay.ResultBase:
				if owner, seen := resultOwner[a.Off]; seen && owner != t {
					return nil, fmt.Errorf("staticfence: %s result offset %d written by threads %d and %d; result area is not private", name, a.Off, owner, t)
				}
				resultOwner[a.Off] = t
			default:
				return nil, fmt.Errorf("staticfence: %s T%d@%d uses base r%d outside the litmus protocol", name, t, a.PC, a.Base)
			}
		}
	}
	return g, nil
}

func litmusVar(off, stride int64) (int, bool) {
	if off < 0 || stride <= 0 || off%stride != 0 {
		return 0, false
	}
	return int(off / stride), true
}

func classOf(op isa.Op) Class {
	switch {
	// Annotations first: IsLoad/IsStore include the annotated ops.
	case op.IsAcquire():
		return AcqLoad
	case op.IsRelease():
		return RelStore
	case op.IsLoad():
		return Load
	case op.IsStore():
		return Store
	case op.IsAtomic():
		return Atomic
	}
	panic(fmt.Sprintf("staticfence: %v is not a memory access", op))
}

// conflict reports whether two events can communicate: different threads,
// same variable, at least one writer.
func conflict(a, b Event) bool {
	return a.Thread != b.Thread && a.Var == b.Var && (a.Writes() || b.Writes())
}

// Cycle is one critical cycle: the event sequence in traversal order, where
// consecutive events (wrapping around) are connected by a program-order
// edge (same thread) or a communication edge (conflicting accesses).
type Cycle struct {
	Events []Event
	// PO lists the cycle's program-order edges (same-thread consecutive
	// pairs), in traversal order.
	PO []POEdge
}

// String renders "T0@1:st(v0) ->po-> T0@2:st(v1) ->com-> ...".
func (c Cycle) String() string {
	var b strings.Builder
	for i, e := range c.Events {
		if i > 0 {
			b.WriteString(edgeLabel(c.Events[i-1], e))
		}
		b.WriteString(e.String())
		_ = i
	}
	b.WriteString(edgeLabel(c.Events[len(c.Events)-1], c.Events[0]))
	b.WriteString("(cycle)")
	return b.String()
}

func edgeLabel(a, b Event) string {
	if a.Thread == b.Thread {
		return " ->po-> "
	}
	return " ->com-> "
}

// CriticalCycles enumerates the graph's critical cycles: simple cycles over
// po and com edges spanning at least two threads, visiting at most two
// events per thread as one contiguous arc, and containing at least one po
// edge. Enumerating *more* cycles than Shasha–Snir's minimal criticality
// criterion (we skip the at-most-three-accesses-per-variable refinement)
// only adds delay edges, which keeps the answer sufficient — conservatism
// is sound here, under-enumeration is not.
func (g *Graph) CriticalCycles() []Cycle {
	var cycles []Cycle
	n := len(g.events)
	seen := map[string]bool{}
	var path []Event
	var dfs func(start, cur int)
	dfs = func(start, cur int) {
		u := g.events[cur]
		for next := 0; next < n; next++ {
			v := g.events[next]
			if next == start && len(path) >= 2 {
				if okStep(path, u, v, true) {
					c := makeCycle(path)
					if critical(c) {
						sig := cycleSig(c)
						if !seen[sig] {
							seen[sig] = true
							cycles = append(cycles, c)
						}
					}
				}
				continue
			}
			if next <= start || onPath(path, v) {
				continue // canonical start = smallest id; simple paths only
			}
			if !okStep(path, u, v, false) {
				continue
			}
			path = append(path, v)
			dfs(start, next)
			path = path[:len(path)-1]
		}
	}
	for s := 0; s < n; s++ {
		path = append(path[:0], g.events[s])
		dfs(s, s)
	}
	sort.Slice(cycles, func(i, j int) bool { return cycleSig(cycles[i]) < cycleSig(cycles[j]) })
	return cycles
}

// okStep reports whether the walk may step u -> v: a po edge (same thread,
// forward) that does not extend a same-thread run past two events, or a com
// edge between conflicting accesses. closing marks the edge back to the
// path's first event.
func okStep(path []Event, u, v Event, closing bool) bool {
	if u.Thread == v.Thread {
		if v.PC <= u.PC {
			return false
		}
		// A po step after a po step would put three events in one thread.
		if len(path) >= 2 && path[len(path)-2].Thread == u.Thread {
			return false
		}
		if closing {
			// Closing po edge: first event is in the same thread; the run
			// first..u..first would fold the thread's arc around the seam.
			return false
		}
		return true
	}
	return conflict(u, v)
}

func onPath(path []Event, e Event) bool {
	for _, p := range path {
		if p.id == e.id {
			return true
		}
	}
	return false
}

func makeCycle(path []Event) Cycle {
	c := Cycle{Events: append([]Event(nil), path...)}
	for i, e := range c.Events {
		next := c.Events[(i+1)%len(c.Events)]
		if e.Thread == next.Thread {
			c.PO = append(c.PO, POEdge{From: e, To: next})
		}
	}
	return c
}

// critical applies the post-filters: at least two threads, at least one po
// edge, at most two events per thread, and each thread's events contiguous
// in circular order.
func critical(c Cycle) bool {
	if len(c.PO) == 0 {
		return false
	}
	maxT := 0
	for _, e := range c.Events {
		if e.Thread > maxT {
			maxT = e.Thread
		}
	}
	counts := make([]int, maxT+1)
	threads := 0
	for _, e := range c.Events {
		if counts[e.Thread] == 0 {
			threads++
		}
		counts[e.Thread]++
		if counts[e.Thread] > 2 {
			return false
		}
	}
	if threads < 2 {
		return false
	}
	// Contiguity: the number of circular thread changes must equal the
	// number of distinct threads (each thread = one arc).
	changes := 0
	for i, e := range c.Events {
		next := c.Events[(i+1)%len(c.Events)]
		if e.Thread != next.Thread {
			changes++
		}
	}
	return changes == threads
}

func cycleSig(c Cycle) string {
	ids := make([]int, len(c.Events))
	for i, e := range c.Events {
		ids[i] = e.id
	}
	return fmt.Sprint(ids)
}

// Reorderable is the per-model reorderable-pairs relation over distinct
// addresses: may the model make the second access visible before the first?
//
//	sc:  nothing
//	tso: st -> ld only (FIFO store buffer; atomics drain it); the
//	     acquire/release annotations are ignored (plain ld/st)
//	rmo: every pair (coalescing unordered buffer, no implicit atomic
//	     order); annotations are ignored here too
//	rc:  every pair except the acquire and release edges — an AcqLoad
//	     orders itself before everything later, a RelStore orders
//	     everything earlier before itself, and atomics are RCsc
//	     synchronization accesses (both acquire and release ordering,
//	     consistency.Rules drains the buffer around them)
//
// InvisiFence/ASO configs map to their *base* model: speculation must be
// invisible, so the model's relation — not the mechanism's — is what the
// static analysis may assume. Same-address pairs are never reorderable
// (per-location coherence) and are excluded by the caller, not here.
func Reorderable(m consistency.Model, from, to Class) bool {
	switch m {
	case consistency.SC:
		return false
	case consistency.TSO:
		return from.storeLike() && to.loadLike()
	case consistency.RMO:
		return true
	case consistency.RC:
		if from == Atomic || to == Atomic {
			return false
		}
		if from == AcqLoad || to == RelStore {
			return false
		}
		return true
	}
	panic(fmt.Sprintf("staticfence: unknown model %v", m))
}

// Result is a full static analysis under one model.
type Result struct {
	Name  string
	Model consistency.Model
	Graph *Graph
	// Cycles lists every critical cycle; Feasible[i] reports whether cycle
	// i has at least one relaxed (reorderable, unfenced, distinct-address)
	// po edge under the model — only feasible cycles can materialize.
	Cycles   []Cycle
	Feasible []bool
	// Delays is the model-refined delay set: the union over feasible
	// cycles of their relaxed po edges, deduplicated and sorted.
	Delays []POEdge
	// Sites is the fence-site candidate list (isa.FenceSites vocabulary,
	// identical to internal/fencesearch's).
	Sites []Site
	// Minimal lists the minimal fence-site covers of the delay set: each
	// set cuts every delay edge, no strict subset does, sorted by size
	// then lexicographically. Empty iff Delays is empty.
	Minimal [][]Site
}

// Analyze builds the event graph and computes the delay set and minimal
// covers for one model.
func Analyze(name string, bodies []*isa.Program, m consistency.Model, lay Layout) (*Result, error) {
	g, err := BuildGraph(name, bodies, lay)
	if err != nil {
		return nil, err
	}
	r := &Result{Name: name, Model: m, Graph: g, Cycles: g.CriticalCycles()}
	r.Feasible = make([]bool, len(r.Cycles))
	seen := map[POEdge]bool{}
	for i, c := range r.Cycles {
		var relaxed []POEdge
		for _, e := range c.PO {
			if r.relaxed(e) {
				relaxed = append(relaxed, e)
			}
		}
		if len(relaxed) == 0 {
			continue
		}
		r.Feasible[i] = true
		for _, e := range relaxed {
			key := POEdge{From: Event{Thread: e.From.Thread, PC: e.From.PC}, To: Event{Thread: e.To.Thread, PC: e.To.PC}}
			if !seen[key] {
				seen[key] = true
				r.Delays = append(r.Delays, e)
			}
		}
	}
	sort.Slice(r.Delays, func(i, j int) bool {
		a, b := r.Delays[i], r.Delays[j]
		if a.From.Thread != b.From.Thread {
			return a.From.Thread < b.From.Thread
		}
		if a.From.PC != b.From.PC {
			return a.From.PC < b.From.PC
		}
		return a.To.PC < b.To.PC
	})
	for t, body := range bodies {
		for _, pc := range isa.FenceSites(body) {
			r.Sites = append(r.Sites, Site{Thread: t, PC: pc})
		}
	}
	r.Minimal, err = minimalCovers(r.Delays, r.Sites)
	if err != nil {
		return nil, fmt.Errorf("staticfence: %s/%v: %w", name, m, err)
	}
	return r, nil
}

// relaxed reports whether a po edge can be inverted by the model: the pair
// must be reorderable, on distinct variables, and not already separated by
// a fence in the instruction stream.
func (r *Result) relaxed(e POEdge) bool {
	if e.From.Var == e.To.Var {
		return false
	}
	if !Reorderable(r.Model, e.From.Class, e.To.Class) {
		return false
	}
	return !isa.FenceBetween(r.Graph.Bodies[e.From.Thread], e.From.PC, e.To.PC)
}

// AlreadyForbidden reports that no critical cycle is feasible under the
// model: every SC-forbidden outcome of this program is statically ruled out
// with no fences at all.
func (r *Result) AlreadyForbidden() bool { return len(r.Delays) == 0 }

// Cuts reports whether a fence at the site orders the edge's endpoints: the
// site lies strictly after From and at-or-before To in the same thread
// (isa.InsertFences places the fence immediately before the site's PC).
func Cuts(s Site, e POEdge) bool {
	return s.Thread == e.From.Thread && e.From.PC < s.PC && s.PC <= e.To.PC
}

// Sufficient reports whether the site set cuts every delay edge — the
// static sufficiency certificate used by fencesearch's pruned walk.
func (r *Result) Sufficient(set []Site) bool {
	for _, d := range r.Delays {
		cut := false
		for _, s := range set {
			if Cuts(s, d) {
				cut = true
				break
			}
		}
		if !cut {
			return false
		}
	}
	return true
}

// WalkSites returns the candidate sites that cut at least one po edge of
// at least one critical cycle (feasible or not). A fence anywhere else can
// only order pairs that no communication cycle passes through — it cannot
// change which outcomes are reachable, so a search walk may skip it.
func (r *Result) WalkSites() []Site {
	var poEdges []POEdge
	for _, c := range r.Cycles {
		poEdges = append(poEdges, c.PO...)
	}
	var out []Site
	for _, s := range r.Sites {
		for _, e := range poEdges {
			if Cuts(s, e) {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// minimalCovers enumerates every minimal site set covering all delay edges.
// An error means some delay edge has no cutting site, which the fence-site
// construction should make impossible (the edge's To is itself a site
// unless a fence already precedes it, in which case the edge is not a
// delay).
func minimalCovers(delays []POEdge, sites []Site) ([][]Site, error) {
	if len(delays) == 0 {
		return nil, nil
	}
	for _, d := range delays {
		any := false
		for _, s := range sites {
			if Cuts(s, d) {
				any = true
				break
			}
		}
		if !any {
			return nil, fmt.Errorf("delay edge %v has no candidate fence site", d)
		}
	}
	var covers [][]Site
	var rec func(chosen []Site)
	rec = func(chosen []Site) {
		// First uncovered delay edge.
		var need *POEdge
		for i := range delays {
			covered := false
			for _, s := range chosen {
				if Cuts(s, delays[i]) {
					covered = true
					break
				}
			}
			if !covered {
				need = &delays[i]
				break
			}
		}
		if need == nil {
			covers = append(covers, append([]Site(nil), chosen...))
			return
		}
		for _, s := range sites {
			if Cuts(s, *need) {
				rec(append(chosen, s))
			}
		}
	}
	rec(nil)
	return canonicalizeCovers(covers), nil
}

// canonicalizeCovers sorts each cover, deduplicates, drops non-minimal
// covers (strict supersets of another cover), and orders the family by
// size then lexicographically.
func canonicalizeCovers(covers [][]Site) [][]Site {
	seen := map[string]bool{}
	var uniq [][]Site
	for _, c := range covers {
		sortSites(c)
		c = dedupeSites(c)
		sig := fmt.Sprint(c)
		if !seen[sig] {
			seen[sig] = true
			uniq = append(uniq, c)
		}
	}
	var minimal [][]Site
	for i, c := range uniq {
		dominated := false
		for j, d := range uniq {
			if i != j && len(d) < len(c) && siteSubset(d, c) {
				dominated = true
				break
			}
		}
		if !dominated {
			minimal = append(minimal, c)
		}
	}
	sort.Slice(minimal, func(i, j int) bool {
		a, b := minimal[i], minimal[j]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k] != b[k] {
				if a[k].Thread != b[k].Thread {
					return a[k].Thread < b[k].Thread
				}
				return a[k].PC < b[k].PC
			}
		}
		return false
	})
	return minimal
}

func sortSites(set []Site) {
	sort.Slice(set, func(i, j int) bool {
		if set[i].Thread != set[j].Thread {
			return set[i].Thread < set[j].Thread
		}
		return set[i].PC < set[j].PC
	})
}

func dedupeSites(set []Site) []Site {
	out := set[:0]
	for i, s := range set {
		if i == 0 || s != set[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func siteSubset(a, b []Site) bool {
	for _, s := range a {
		found := false
		for _, x := range b {
			if x == s {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Report renders the deterministic analysis report: events, sites, cycles
// with feasibility, the delay set, and the minimal fence covers.
func (r *Result) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "staticfence: %s model=%v events=%d cycles=%d\n", r.Name, r.Model, len(r.Graph.events), len(r.Cycles))
	for t, evs := range r.Graph.Threads {
		parts := make([]string, len(evs))
		for i, e := range evs {
			parts[i] = fmt.Sprintf("@%d:%v(v%d)", e.PC, e.Class, e.Var)
		}
		fmt.Fprintf(&b, "  T%d: %s\n", t, strings.Join(parts, " "))
	}
	for i, s := range r.Sites {
		fmt.Fprintf(&b, "  s%-2d %v: %s\n", i, s, r.Graph.Bodies[s.Thread].Instrs[s.PC].String())
	}
	for i, c := range r.Cycles {
		tag := "infeasible"
		if r.Feasible[i] {
			tag = "FEASIBLE"
		}
		fmt.Fprintf(&b, "  c%-2d %-10s %s\n", i, tag, c.String())
	}
	if r.AlreadyForbidden() {
		fmt.Fprintf(&b, "  delay set empty: all SC-forbidden outcomes statically forbidden under %v\n", r.Model)
		return b.String()
	}
	for _, d := range r.Delays {
		fmt.Fprintf(&b, "  delay %v\n", d)
	}
	for _, set := range r.Minimal {
		parts := make([]string, len(set))
		for i, s := range set {
			parts[i] = s.String()
		}
		fmt.Fprintf(&b, "  minimal {%s}\n", strings.Join(parts, ", "))
	}
	return b.String()
}
