package staticfence

import (
	"strings"
	"testing"

	"invisifence/internal/consistency"
	"invisifence/internal/isa"
	"invisifence/internal/litmus"
)

func analyze(t *testing.T, name string, m consistency.Model) *Result {
	t.Helper()
	for _, lt := range litmus.Tests {
		if lt.Name == name {
			r, err := Analyze(name, litmus.BodyPrograms(lt, isa.NoFences), m, LitmusLayout())
			if err != nil {
				t.Fatalf("Analyze(%s, %v): %v", name, m, err)
			}
			return r
		}
	}
	t.Fatalf("unknown litmus test %q", name)
	return nil
}

func sitesEqual(a, b [][]Site) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestExpectations pins the hand-computed delay-set answer for every corpus
// test under every conventional model. nil means statically already
// forbidden (empty delay set).
func TestExpectations(t *testing.T) {
	cases := []struct {
		test  string
		model consistency.Model
		want  [][]Site
	}{
		{"SB", consistency.SC, nil},
		{"SB", consistency.TSO, [][]Site{{{0, 2}, {1, 2}}}},
		{"SB", consistency.RMO, [][]Site{{{0, 2}, {1, 2}}}},

		{"MP", consistency.SC, nil},
		{"MP", consistency.TSO, nil},
		// The headline conservative cell: static analysis requires the
		// reader-side fence (T1@1) under RMO; the machine's load-queue
		// snooping makes it dynamically unnecessary (fencesearch pins
		// {{T0@2}} only).
		{"MP", consistency.RMO, [][]Site{{{0, 2}, {1, 1}}}},

		{"LB", consistency.SC, nil},
		{"LB", consistency.TSO, nil},
		{"LB", consistency.RMO, [][]Site{{{0, 2}, {1, 2}}}},

		{"IRIW", consistency.SC, nil},
		{"IRIW", consistency.TSO, nil},
		{"IRIW", consistency.RMO, [][]Site{{{2, 1}, {3, 1}}}},

		// The body's own fence separates the store/load pair: forbidden
		// under every model with no further fences.
		{"SB+F", consistency.SC, nil},
		{"SB+F", consistency.TSO, nil},
		{"SB+F", consistency.RMO, nil},

		{"WRC", consistency.TSO, nil},
		{"WRC", consistency.RMO, [][]Site{{{1, 1}, {2, 1}}}},

		// Same-address pairs are coherence-ordered: no delay under any
		// model.
		{"CoRR", consistency.SC, nil},
		{"CoRR", consistency.TSO, nil},
		{"CoRR", consistency.RMO, nil},

		// Two conflicting atomics, no po edge between shared accesses in
		// either thread: no critical cycle at all.
		{"RMW", consistency.RMO, nil},

		{"ISA2", consistency.TSO, nil},
		{"ISA2", consistency.RMO, [][]Site{{{0, 2}, {1, 1}, {2, 1}}}},

		{"2+2W", consistency.SC, nil},
		{"2+2W", consistency.TSO, nil},
		{"2+2W", consistency.RMO, [][]Site{{{0, 3}, {1, 3}}}},

		{"R", consistency.SC, nil},
		{"R", consistency.TSO, [][]Site{{{1, 2}}}},
		{"R", consistency.RMO, [][]Site{{{0, 2}, {1, 2}}}},

		{"S", consistency.TSO, nil},
		{"S", consistency.RMO, [][]Site{{{0, 3}, {1, 2}}}},
	}
	for _, c := range cases {
		r := analyze(t, c.test, c.model)
		if c.want == nil {
			if !r.AlreadyForbidden() {
				t.Errorf("%s/%v: want statically forbidden, got delays %v minimal %v", c.test, c.model, r.Delays, r.Minimal)
			}
			continue
		}
		if r.AlreadyForbidden() {
			t.Errorf("%s/%v: want minimal %v, got statically forbidden", c.test, c.model, c.want)
			continue
		}
		if !sitesEqual(r.Minimal, c.want) {
			t.Errorf("%s/%v: minimal = %v, want %v", c.test, c.model, r.Minimal, c.want)
		}
	}
}

// TestMinimalCoversAreMinimalAndSufficient checks the cover family's
// internal contract on every (test, model) cell: each cover cuts all delay
// edges and no single-site removal still does.
func TestMinimalCoversAreMinimalAndSufficient(t *testing.T) {
	models := []consistency.Model{consistency.SC, consistency.TSO, consistency.RMO}
	for _, lt := range litmus.Tests {
		for _, m := range models {
			r := analyze(t, lt.Name, m)
			if r.Sufficient(nil) != r.AlreadyForbidden() {
				// nil is sufficient iff there are no delay edges.
				t.Errorf("%s/%v: Sufficient(nil)=%v with %d delays", lt.Name, m, r.Sufficient(nil), len(r.Delays))
			}
			for _, set := range r.Minimal {
				if !r.Sufficient(set) {
					t.Errorf("%s/%v: minimal set %v does not cover delays %v", lt.Name, m, set, r.Delays)
				}
				for i := range set {
					reduced := append(append([]Site(nil), set[:i]...), set[i+1:]...)
					if r.Sufficient(reduced) {
						t.Errorf("%s/%v: set %v is not minimal (%v suffices)", lt.Name, m, set, reduced)
					}
				}
			}
		}
	}
}

// TestWalkSites pins the pruning surface on R/tso: the dynamic search's
// pinned answers include {T0@2} — a site cutting a critical-cycle po edge
// that tso does *not* relax — so WalkSites must keep every cycle-cutting
// site, not just delay-cutting ones, while dropping sites off every cycle
// (T1@3 precedes only the private result store).
func TestWalkSites(t *testing.T) {
	r := analyze(t, "R", consistency.TSO)
	got := map[Site]bool{}
	for _, s := range r.WalkSites() {
		got[s] = true
	}
	for _, want := range []Site{{0, 2}, {1, 2}} {
		if !got[want] {
			t.Errorf("R/tso: WalkSites missing %v (got %v)", want, r.WalkSites())
		}
	}
	if got[Site{1, 3}] {
		t.Errorf("R/tso: WalkSites includes T1@3, which cuts no critical-cycle pair")
	}
	// MP: only T0@2 and T1@1 touch the cycle; T1@2 and T1@3 guard result
	// stores only.
	r = analyze(t, "MP", consistency.RMO)
	ws := r.WalkSites()
	if len(ws) != 2 || ws[0] != (Site{0, 2}) || ws[1] != (Site{1, 1}) {
		t.Errorf("MP/rmo: WalkSites = %v, want [T0@2 T1@1]", ws)
	}
}

// TestBuildGraphRefusals: the analysis must refuse programs outside its
// sound fragment rather than analyze them optimistically.
func TestBuildGraphRefusals(t *testing.T) {
	// Branches.
	b := isa.NewBuilder("loop")
	b.Label("top")
	b.Ld(isa.R7, litmus.VarsReg, 0)
	b.Bne(isa.R7, isa.R0, "top")
	b.Halt()
	if _, err := BuildGraph("loop", []*isa.Program{b.MustBuild()}, LitmusLayout()); err == nil {
		t.Error("BuildGraph accepted a branching body")
	}
	// Unknown base register.
	b = isa.NewBuilder("alias")
	b.Ld(isa.R7, isa.R9, 0)
	b.Halt()
	if _, err := BuildGraph("alias", []*isa.Program{b.MustBuild()}, LitmusLayout()); err == nil {
		t.Error("BuildGraph accepted an unknown base register")
	}
	// Off-stride shared offset.
	b = isa.NewBuilder("stride")
	b.Ld(isa.R7, litmus.VarsReg, 4)
	b.Halt()
	if _, err := BuildGraph("stride", []*isa.Program{b.MustBuild()}, LitmusLayout()); err == nil {
		t.Error("BuildGraph accepted an off-stride shared offset")
	}
	// Result slot shared by two threads.
	mk := func() *isa.Program {
		b := isa.NewBuilder("shared-result")
		b.St(litmus.ResultsReg, 0, isa.R6)
		b.Halt()
		return b.MustBuild()
	}
	if _, err := BuildGraph("shared-result", []*isa.Program{mk(), mk()}, LitmusLayout()); err == nil {
		t.Error("BuildGraph accepted a result slot written by two threads")
	}
}

// TestReportDeterministic: two independent analyses render byte-identical
// reports (the staticfence-smoke CI contract).
func TestReportDeterministic(t *testing.T) {
	for _, lt := range litmus.Tests {
		for _, m := range []consistency.Model{consistency.SC, consistency.TSO, consistency.RMO} {
			a := analyze(t, lt.Name, m).Report()
			b := analyze(t, lt.Name, m).Report()
			if a != b {
				t.Errorf("%s/%v: report not deterministic:\n%s\n---\n%s", lt.Name, m, a, b)
			}
			if !strings.Contains(a, "staticfence: "+lt.Name) {
				t.Errorf("%s/%v: report missing header: %q", lt.Name, m, a)
			}
		}
	}
}

// TestCycleShapes spot-checks the enumerator: SB has exactly one critical
// cycle (the 4-event Dekker cycle), and its po edges are the two st->ld
// pairs.
func TestCycleShapes(t *testing.T) {
	r := analyze(t, "SB", consistency.SC)
	if len(r.Cycles) != 1 {
		t.Fatalf("SB: %d critical cycles, want 1:\n%s", len(r.Cycles), r.Report())
	}
	c := r.Cycles[0]
	if len(c.PO) != 2 || len(c.Events) != 4 {
		t.Fatalf("SB cycle shape: %d events, %d po edges (%v)", len(c.Events), len(c.PO), c)
	}
	for _, e := range c.PO {
		if e.From.Class != Store || e.To.Class != Load {
			t.Errorf("SB po edge %v: want st->ld", e)
		}
	}
	// IRIW: the single 6-event cycle through both readers.
	r = analyze(t, "IRIW", consistency.SC)
	if len(r.Cycles) != 1 || len(r.Cycles[0].Events) != 6 {
		t.Errorf("IRIW cycles: %v", r.Cycles)
	}
}
