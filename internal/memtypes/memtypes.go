// Package memtypes defines the basic address and data types shared by every
// level of the simulated memory system: byte addresses, 8-byte words, and
// 64-byte cache blocks. All memory operations in the simulator are word-sized
// and word-aligned; cache and coherence state is kept at block granularity.
package memtypes

import "fmt"

// Addr is a byte address in the simulated flat physical address space.
type Addr uint64

// NodeID identifies a node (core + caches + directory slice) in the system.
// It lives here — below both the coherence protocol and the interconnect —
// so the protocol's wire format (coherence.Msg) can name nodes without
// depending on the transport that carries it (network.Message embeds the
// wire format by value; see DESIGN.md §9).
type NodeID int

// Word is the unit of data transfer for loads, stores, and atomics.
type Word uint64

const (
	// BlockShift is log2 of the cache block size in bytes.
	BlockShift = 6
	// BlockBytes is the cache block size (64 bytes, per Figure 6).
	BlockBytes = 1 << BlockShift
	// WordShift is log2 of the word size in bytes.
	WordShift = 3
	// WordBytes is the word size (8 bytes).
	WordBytes = 1 << WordShift
	// WordsPerBlock is the number of words in a cache block.
	WordsPerBlock = BlockBytes / WordBytes
)

// BlockData holds the data payload of one cache block.
type BlockData [WordsPerBlock]Word

// NoEvent is the NextEvent() sentinel meaning "no self-generated future
// event": the component changes state only in response to an external input
// (a message delivery, a fill, a retirement on another component). The
// simulator's idle-skip scheduler jumps the clock to the minimum NextEvent
// across all components; a component returning NoEvent never holds the
// clock back.
const NoEvent = ^uint64(0)

// BlockAddr returns the block-aligned address containing a.
func BlockAddr(a Addr) Addr { return a &^ (BlockBytes - 1) }

// WordAlign returns the word-aligned address containing a.
func WordAlign(a Addr) Addr { return a &^ (WordBytes - 1) }

// WordIndex returns the index of a's word within its block.
func WordIndex(a Addr) int { return int(a>>WordShift) & (WordsPerBlock - 1) }

// SameBlock reports whether two addresses fall in the same cache block.
func SameBlock(a, b Addr) bool { return BlockAddr(a) == BlockAddr(b) }

// AccessKind classifies a memory operation for ordering purposes.
type AccessKind uint8

const (
	// AccessLoad is an ordinary load.
	AccessLoad AccessKind = iota
	// AccessStore is an ordinary store.
	AccessStore
	// AccessAtomic is an atomic read-modify-write (CAS, fetch-add, swap).
	AccessAtomic
	// AccessFence is an explicit memory ordering fence.
	AccessFence
)

// String implements fmt.Stringer.
func (k AccessKind) String() string {
	switch k {
	case AccessLoad:
		return "load"
	case AccessStore:
		return "store"
	case AccessAtomic:
		return "atomic"
	case AccessFence:
		return "fence"
	}
	return fmt.Sprintf("AccessKind(%d)", uint8(k))
}
