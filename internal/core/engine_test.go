package core

import (
	"testing"

	"invisifence/internal/consistency"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
	"invisifence/internal/stats"
)

// fakeHost records the machine-state operations the engine drives.
type fakeHost struct {
	now     uint64
	regs    [isa.NumRegs]memtypes.Word
	pc      int
	st      stats.NodeStats
	drained map[int]bool // epoch -> SBEpochDrained answer

	flashCleared, condInvalidated, sbFlushed []int
	restored                                 int
	restoredPC                               int
}

func newFakeHost() *fakeHost {
	return &fakeHost{drained: map[int]bool{}}
}

func (h *fakeHost) Now() uint64 { return h.now }
func (h *fakeHost) CaptureCheckpoint() ([isa.NumRegs]memtypes.Word, int) {
	return h.regs, h.pc
}
func (h *fakeHost) RestoreCheckpoint(regs [isa.NumRegs]memtypes.Word, pc int) {
	h.restored++
	h.restoredPC = pc
	h.regs = regs
}
func (h *fakeHost) FlashClearSpecBits(e int) { h.flashCleared = append(h.flashCleared, e) }
func (h *fakeHost) CondInvalidateSpec(e int) int {
	h.condInvalidated = append(h.condInvalidated, e)
	return 0
}
func (h *fakeHost) SBFlashInvalidate(e int) int {
	h.sbFlushed = append(h.sbFlushed, e)
	return 0
}
func (h *fakeHost) SBEpochDrained(e int) bool { return h.drained[e] }
func (h *fakeHost) Stats() *stats.NodeStats   { return &h.st }

func TestSelectiveBeginCommit(t *testing.T) {
	h := newFakeHost()
	e := New(DefaultSelective(consistency.SC), h)
	if e.Speculating() || !e.CanBegin() {
		t.Fatal("bad initial state")
	}
	h.pc = 42
	ep := e.Begin()
	if !e.Speculating() || e.YoungestEpoch() != ep || e.OldestEpoch() != ep {
		t.Fatal("begin bookkeeping wrong")
	}
	if e.CanBegin() {
		t.Fatal("single checkpoint allows a second Begin")
	}
	// Not drained: no commit.
	e.Tick()
	if !e.Speculating() {
		t.Fatal("committed before drain")
	}
	// Drained: opportunistic constant-time commit.
	h.drained[ep] = true
	e.Tick()
	if e.Speculating() {
		t.Fatal("did not commit after drain")
	}
	if len(h.flashCleared) != 1 || h.flashCleared[0] != ep {
		t.Fatalf("flash clear calls: %v", h.flashCleared)
	}
	if h.st.Commits != 1 || h.st.Speculations != 1 {
		t.Fatalf("stats: %+v", h.st)
	}
}

func TestAbortRestoresOldestCheckpoint(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultSelective(consistency.SC)
	cfg.MaxCheckpoints = 2
	e := New(cfg, h)
	h.pc = 10
	ep0 := e.Begin()
	e.OnRetireInstr()
	h.pc = 20
	ep1 := e.Begin()
	if e.EpochAge(ep0) != 0 || e.EpochAge(ep1) != 1 {
		t.Fatal("age order wrong")
	}
	// Abort the older: everything rolls back to pc=10.
	e.AbortFrom(ep0)
	if e.Speculating() {
		t.Fatal("still speculating after full abort")
	}
	if h.restoredPC != 10 || h.restored != 1 {
		t.Fatalf("restored pc %d (%d times)", h.restoredPC, h.restored)
	}
	if len(h.sbFlushed) != 2 || len(h.condInvalidated) != 2 {
		t.Fatalf("flush calls: sb=%v cond=%v", h.sbFlushed, h.condInvalidated)
	}
	if h.st.Aborts != 2 {
		t.Fatalf("aborts = %d, want 2 (both epochs)", h.st.Aborts)
	}
}

func TestPartialAbortKeepsOlder(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultSelective(consistency.SC)
	cfg.MaxCheckpoints = 2
	e := New(cfg, h)
	h.pc = 10
	ep0 := e.Begin()
	h.pc = 20
	ep1 := e.Begin()
	e.AbortFrom(ep1)
	if !e.Speculating() || e.OldestEpoch() != ep0 || e.YoungestEpoch() != ep0 {
		t.Fatal("older epoch must survive a partial abort")
	}
	if h.restoredPC != 20 {
		t.Fatalf("restored pc %d, want 20", h.restoredPC)
	}
}

func TestForwardProgressGrace(t *testing.T) {
	h := newFakeHost()
	e := New(DefaultSelective(consistency.SC), h)
	e.Begin()
	e.AbortAll()
	if e.CanBegin() {
		t.Fatal("Begin allowed immediately after abort (forward progress, §3.2)")
	}
	// One instruction retires non-speculatively: grace satisfied.
	e.OnRetireInstr()
	if !e.CanBegin() {
		t.Fatal("grace not cleared by a non-speculative retirement")
	}
}

func TestContinuousChunking(t *testing.T) {
	h := newFakeHost()
	e := New(DefaultContinuous(false), h)
	// First Tick opens the first chunk.
	e.Tick()
	if !e.Speculating() {
		t.Fatal("continuous mode did not open a chunk")
	}
	first := e.YoungestEpoch()
	// Retire past the minimum chunk size: a new chunk must open, with the
	// old one closed and awaiting drain.
	for i := 0; i < e.Config().MinChunk; i++ {
		e.OnRetireInstr()
	}
	e.Tick()
	if len(e.ActiveEpochs()) != 2 {
		t.Fatalf("active epochs = %v, want pipelined pair", e.ActiveEpochs())
	}
	// Drain the first: it commits; the second keeps running.
	h.drained[first] = true
	e.Tick()
	if len(e.ActiveEpochs()) != 1 || e.OldestEpoch() == first {
		t.Fatal("closed chunk did not commit after drain")
	}
	if h.st.Commits != 1 {
		t.Fatalf("commits = %d", h.st.Commits)
	}
}

func TestContinuousHaltStopsChunking(t *testing.T) {
	h := newFakeHost()
	e := New(DefaultContinuous(false), h)
	e.Tick()
	ep := e.YoungestEpoch()
	e.RequestHalt()
	h.drained[ep] = true
	e.Tick()
	if e.Speculating() {
		t.Fatal("open chunk did not close and commit at halt")
	}
	e.Tick()
	if e.Speculating() {
		t.Fatal("halt must stop new chunks")
	}
	// An abort cancels the halt (the Halt itself was speculative).
	// (Simulate: new begin after clearing halt via AbortFrom path.)
}

func TestAbortClearsHaltRequest(t *testing.T) {
	h := newFakeHost()
	e := New(DefaultContinuous(false), h)
	e.Tick()
	e.RequestHalt()
	e.AbortAll()
	e.OnRetireInstr()
	e.Tick()
	if !e.Speculating() {
		t.Fatal("abort must clear the halt request and reopen a chunk")
	}
}

func TestASOSSBCapacityAndPeriodicCheckpoints(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultASO()
	cfg.ASOSSBCapacity = 3
	cfg.ASOCkptInterval = 5
	e := New(cfg, h)
	e.Begin()
	for i := 0; i < 3; i++ {
		if !e.OnSpecStore() {
			t.Fatalf("SSB rejected store %d under capacity", i)
		}
	}
	if e.OnSpecStore() {
		t.Fatal("SSB accepted store beyond capacity")
	}
	// Periodic checkpoints at the retirement interval.
	for i := 0; i < 5; i++ {
		e.OnRetireInstr()
	}
	if len(e.ActiveEpochs()) != 2 {
		t.Fatalf("ASO periodic checkpoint not taken: %v", e.ActiveEpochs())
	}
}

func TestASOCommitDrainWindow(t *testing.T) {
	h := newFakeHost()
	e := New(DefaultASO(), h)
	ep := e.Begin()
	for i := 0; i < 10; i++ {
		e.OnSpecStore()
	}
	h.now = 1000
	h.drained[ep] = true
	e.Tick()
	if e.Speculating() {
		t.Fatal("no commit")
	}
	want := uint64(1000 + 10*e.Config().ASODrainPerStore)
	if e.CommitBusyUntil() != want {
		t.Fatalf("commit busy until %d, want %d (drain cost per store)", e.CommitBusyUntil(), want)
	}
}

func TestCoVPolicy(t *testing.T) {
	h := newFakeHost()
	e := New(DefaultContinuous(true), h)
	if !e.DeferAllowed() {
		t.Fatal("CoV config must allow deferral")
	}
	if got := e.CoVDeadline(100); got != 4100 {
		t.Fatalf("deadline = %d, want 4100 (4000-cycle window)", got)
	}
	e2 := New(DefaultContinuous(false), h)
	if e2.DeferAllowed() {
		t.Fatal("abort-immediately config must not defer")
	}
}

func TestTryCommitAllNow(t *testing.T) {
	h := newFakeHost()
	cfg := DefaultSelective(consistency.SC)
	cfg.MaxCheckpoints = 2
	e := New(cfg, h)
	ep0 := e.Begin()
	ep1 := e.Begin()
	if e.TryCommitAllNow() {
		t.Fatal("committed with undrained buffer")
	}
	h.drained[ep0] = true
	h.drained[ep1] = true
	if !e.TryCommitAllNow() {
		t.Fatal("forced commit failed despite drained buffer")
	}
	if h.st.ForcedCommits == 0 {
		t.Fatal("forced commits not counted")
	}
}

func TestSpeculatesOnDescriptions(t *testing.T) {
	for _, m := range consistency.Models {
		e := New(DefaultSelective(m), newFakeHost())
		if e.SpeculatesOn() == "" || e.SpeculatesOn() == "nothing" {
			t.Fatalf("%v: bad description", m)
		}
	}
	if New(DefaultContinuous(false), newFakeHost()).SpeculatesOn() != "continuous chunks" {
		t.Fatal("continuous description wrong")
	}
}

func TestModeStrings(t *testing.T) {
	for _, m := range []Mode{ModeOff, ModeSelective, ModeContinuous, ModeASO} {
		if m.String() == "" {
			t.Fatal("empty mode string")
		}
	}
}
