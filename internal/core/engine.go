// Package core implements the paper's primary contribution: the InvisiFence
// post-retirement speculation engine (§3-§4). It owns the checkpoint state
// and all speculation policy decisions:
//
//   - selective speculation (§4.1): initiate a checkpoint only when an
//     instruction would otherwise stall at retirement under the target
//     consistency model's Figure 2 rules, and commit opportunistically, in
//     constant time, the moment the store buffer drains;
//   - continuous speculation (§4.2): execute everything inside chunks with a
//     minimum chunk size, pipelining commit with a second checkpoint;
//   - commit-on-violate (§3.2): defer a conflicting external request for a
//     bounded timeout, converting would-be rollbacks into commits;
//   - the ASO baseline's policies (§2.2/§5): periodic checkpoints during
//     speculation and a commit that drains a per-store buffer while blocking
//     external requests.
//
// The engine manipulates machine state through the Host interface
// (implemented by internal/node): flash-clearing speculative bits,
// conditionally invalidating speculatively-written lines, flushing
// speculative store-buffer entries, and restoring register checkpoints.
package core

import (
	"fmt"

	"invisifence/internal/cache"
	"invisifence/internal/consistency"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
	"invisifence/internal/stats"
)

// Mode selects the speculation policy.
type Mode uint8

const (
	// ModeOff: conventional implementation only (baselines).
	ModeOff Mode = iota
	// ModeSelective is INVISIFENCE-SELECTIVE (§4.1).
	ModeSelective
	// ModeContinuous is INVISIFENCE-CONTINUOUS (§4.2).
	ModeContinuous
	// ModeASO approximates the ASO baseline (§2.2): selective speculation
	// with periodic checkpoints and drain-based commit.
	ModeASO
	// ModeLouvre approximates a Louvre-style versioned-ordering baseline
	// over release consistency: a version epoch opens only at a release
	// boundary (a st.rel that would otherwise wait on the store-buffer
	// drain), per-block version tags are the epoch's speculative L1 bits,
	// and a version conflict — a remote request touching a tagged block —
	// squashes immediately (no commit-on-violate deferral). Everywhere
	// else the core takes the conventional RC stall.
	ModeLouvre
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeSelective:
		return "selective"
	case ModeContinuous:
		return "continuous"
	case ModeASO:
		return "aso"
	case ModeLouvre:
		return "louvre"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// Config parameterizes the engine.
type Config struct {
	Mode  Mode
	Model consistency.Model
	// MaxCheckpoints is the number of in-flight speculations (1 for
	// INVISIFENCE-SELECTIVE's default, 2 for continuous and the two-
	// checkpoint selective variant of §6.4, up to 4 for ASO).
	MaxCheckpoints int
	// CoVTimeout is the commit-on-violate deferral window in cycles;
	// 0 selects the default abort-immediately policy. The paper evaluates
	// 4000 (§3.2).
	CoVTimeout uint64
	// MinChunk is the continuous mode's minimum chunk size in instructions
	// (~100, Figure 4).
	MinChunk int
	// ASOCkptInterval is the retired-instruction spacing of ASO's periodic
	// checkpoints.
	ASOCkptInterval int
	// ASOSSBCapacity is the Scalable Store Buffer's per-store capacity.
	ASOSSBCapacity int
	// ASODrainPerStore is ASO's commit cost in cycles per drained store,
	// during which the node blocks external requests.
	ASODrainPerStore uint64
}

// DefaultSelective returns the paper's highest-performing configuration:
// single checkpoint, abort-immediately.
func DefaultSelective(m consistency.Model) Config {
	return Config{Mode: ModeSelective, Model: m, MaxCheckpoints: 1}
}

// DefaultContinuous returns the continuous configuration of §4.2/§6.5.
func DefaultContinuous(cov bool) Config {
	c := Config{Mode: ModeContinuous, Model: consistency.SC, MaxCheckpoints: 2, MinChunk: 100}
	if cov {
		c.CoVTimeout = 4000
	}
	return c
}

// DefaultLouvre returns the Louvre-style versioned-ordering baseline:
// two version epochs in flight (current + draining), squash-on-conflict
// (no deferral window), release-boundary triggers only.
func DefaultLouvre() Config {
	return Config{Mode: ModeLouvre, Model: consistency.RC, MaxCheckpoints: 2}
}

// DefaultASO returns the ASO-like baseline configuration used for the
// Figure 11 comparison.
func DefaultASO() Config {
	return Config{
		Mode:             ModeASO,
		Model:            consistency.SC,
		MaxCheckpoints:   4,
		ASOCkptInterval:  64,
		ASOSSBCapacity:   64,
		ASODrainPerStore: 2,
	}
}

// Host is the machine state the engine manipulates; internal/node
// implements it.
type Host interface {
	// Now returns the current cycle.
	Now() uint64
	// CaptureCheckpoint snapshots architectural registers and PC.
	CaptureCheckpoint() ([isa.NumRegs]memtypes.Word, int)
	// RestoreCheckpoint flushes the pipeline and restores a snapshot.
	RestoreCheckpoint(regs [isa.NumRegs]memtypes.Word, pc int)
	// FlashClearSpecBits clears an epoch's bits in the L1 (commit).
	FlashClearSpecBits(epoch int)
	// CondInvalidateSpec invalidates the epoch's speculatively-written L1
	// lines and clears its bits (abort), returning lines invalidated.
	CondInvalidateSpec(epoch int) int
	// SBFlashInvalidate drops the epoch's speculative store buffer
	// entries (abort), returning entries dropped.
	SBFlashInvalidate(epoch int) int
	// SBEpochDrained reports whether every store of the epoch — and of
	// everything older, including non-speculative stores — has completed
	// into the cache (the §3.2 commit condition).
	SBEpochDrained(epoch int) bool
	// Stats exposes the node's accounting.
	Stats() *stats.NodeStats
}

type epochState struct {
	active  bool
	regs    [isa.NumRegs]memtypes.Word
	pc      int
	started uint64
	retired int  // instructions retired inside this epoch
	closed  bool // continuous: chunk closed, awaiting drain+commit
	stores  int  // stores retired inside this epoch (ASO SSB occupancy)
}

// Engine is one core's InvisiFence (or ASO) controller.
type Engine struct {
	cfg  Config
	host Host

	epochs [cache.MaxEpochs]epochState
	order  []int // active epochs, oldest first

	// Forward progress: after an abort at least one instruction must
	// retire non-speculatively before a new speculation begins (§3.2).
	graceNeeded bool

	// haltRequested stops continuous mode from opening new chunks once the
	// program has halted, so outstanding speculation can drain and commit.
	haltRequested bool

	// earlyClose asks the chunk manager to close the open chunk at the
	// next opportunity regardless of the minimum size (commit-on-violate:
	// a deferred probe is waiting on this core's commit).
	earlyClose bool

	// ASO commit drain: external requests are parked until this cycle.
	commitBusyUntil uint64
}

// New creates an engine.
func New(cfg Config, host Host) *Engine {
	if cfg.MaxCheckpoints <= 0 {
		cfg.MaxCheckpoints = 1
	}
	if cfg.MaxCheckpoints > cache.MaxEpochs {
		panic(fmt.Sprintf("core: MaxCheckpoints %d exceeds MaxEpochs %d", cfg.MaxCheckpoints, cache.MaxEpochs))
	}
	return &Engine{cfg: cfg, host: host}
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Enabled reports whether any speculation policy is active.
func (e *Engine) Enabled() bool { return e.cfg.Mode != ModeOff }

// Continuous reports continuous-chunk operation.
func (e *Engine) Continuous() bool { return e.cfg.Mode == ModeContinuous }

// Speculating reports whether any checkpoint is live.
func (e *Engine) Speculating() bool { return len(e.order) > 0 }

// YoungestEpoch returns the epoch new work is tagged with, or -1.
func (e *Engine) YoungestEpoch() int {
	if len(e.order) == 0 {
		return -1
	}
	return e.order[len(e.order)-1]
}

// OldestEpoch returns the next epoch to commit, or -1.
func (e *Engine) OldestEpoch() int {
	if len(e.order) == 0 {
		return -1
	}
	return e.order[0]
}

// ActiveEpochs returns the live epochs, oldest first.
func (e *Engine) ActiveEpochs() []int { return e.order }

// EpochAge returns the position of an epoch in the active order (0 =
// oldest), or -1 if inactive.
func (e *Engine) EpochAge(epoch int) int {
	for i, idx := range e.order {
		if idx == epoch {
			return i
		}
	}
	return -1
}

// CommitBusyUntil reports the end of an ASO commit drain window; the node
// parks external requests until then.
func (e *Engine) CommitBusyUntil() uint64 { return e.commitBusyUntil }

// CanBegin reports whether a new speculation may start now.
func (e *Engine) CanBegin() bool {
	if !e.Enabled() || e.graceNeeded || e.haltRequested {
		return false
	}
	return len(e.order) < e.cfg.MaxCheckpoints
}

// Begin starts a new speculation epoch (register checkpoint). It returns
// the epoch index.
func (e *Engine) Begin() int {
	if !e.CanBegin() {
		panic("core: Begin without CanBegin")
	}
	slot := -1
	for i := 0; i < cache.MaxEpochs; i++ {
		if !e.epochs[i].active {
			slot = i
			break
		}
	}
	if slot < 0 {
		panic("core: no free epoch slot")
	}
	regs, pc := e.host.CaptureCheckpoint()
	e.epochs[slot] = epochState{active: true, regs: regs, pc: pc, started: e.host.Now()}
	e.order = append(e.order, slot)
	e.host.Stats().Speculations++
	return slot
}

// OnRetireInstr updates per-epoch instruction counts, clears the forward-
// progress grace requirement, and takes ASO periodic checkpoints.
func (e *Engine) OnRetireInstr() {
	if e.graceNeeded && !e.Speculating() {
		// An instruction retired outside speculation: progress guaranteed.
		e.graceNeeded = false
	}
	y := e.YoungestEpoch()
	if y < 0 {
		return
	}
	e.epochs[y].retired++
	if e.cfg.Mode == ModeASO &&
		e.epochs[y].retired >= e.cfg.ASOCkptInterval && e.CanBegin() {
		e.Begin()
	}
}

// OnSpecStore counts a store into the youngest epoch (ASO SSB occupancy).
// It returns false if the ASO SSB is full (the store must stall).
func (e *Engine) OnSpecStore() bool {
	y := e.YoungestEpoch()
	if y < 0 {
		return true
	}
	if e.SSBWouldBlock() {
		return false
	}
	e.epochs[y].stores++
	return true
}

// SSBWouldBlock reports, read-only, whether OnSpecStore would refuse the
// next speculative store (ASO's Scalable Store Buffer at capacity; always
// false for the other modes, which bound stores through the coalescing
// buffer instead). The node folds this into its idle-skip horizon: an
// SSB-full retirement attempt is refused before anything is counted, so
// the wait is pure.
func (e *Engine) SSBWouldBlock() bool {
	if e.cfg.Mode != ModeASO || len(e.order) == 0 {
		return false
	}
	total := 0
	for _, idx := range e.order {
		total += e.epochs[idx].stores
	}
	return total >= e.cfg.ASOSSBCapacity
}

// Tick runs the per-cycle policy work: opportunistic commits (oldest
// first), continuous chunk management.
func (e *Engine) Tick() {
	// Opportunistic commit: constant-time, no arbitration (§4.1).
	for len(e.order) > 0 {
		o := e.order[0]
		ep := &e.epochs[o]
		if e.cfg.Mode == ModeContinuous && !ep.closed {
			// Only closed chunks commit; the open chunk keeps executing.
			break
		}
		if !e.host.SBEpochDrained(o) {
			break
		}
		e.commitEpoch(o)
	}
	if e.cfg.Mode == ModeContinuous {
		e.manageChunks()
	}
}

// NextEvent returns the earliest future cycle at which the engine's
// per-cycle policy work (Tick) would change state on its own: an
// opportunistic commit whose drain condition already holds, or a continuous
// chunk open/close whose trigger is already satisfied. Everything else the
// engine does is driven by retirements, probes, and store-buffer drains —
// events owned by other components. The hint follows the simulator-wide
// monotonicity contract: read-only, never later than the true next state
// change, valid until the engine's (or host's drain) state next changes.
func (e *Engine) NextEvent(now uint64) uint64 {
	if len(e.order) > 0 {
		o := e.order[0]
		if (e.cfg.Mode != ModeContinuous || e.epochs[o].closed) && e.host.SBEpochDrained(o) {
			return now + 1
		}
	}
	if e.cfg.Mode == ModeContinuous {
		if !e.Speculating() {
			if e.CanBegin() {
				return now + 1
			}
		} else {
			ep := &e.epochs[e.YoungestEpoch()]
			if !ep.closed && (ep.retired >= e.cfg.MinChunk || e.earlyClose) &&
				len(e.order) < e.cfg.MaxCheckpoints && !e.graceNeeded {
				return now + 1
			}
		}
	}
	return memtypes.NoEvent
}

func (e *Engine) commitEpoch(epoch int) {
	e.host.FlashClearSpecBits(epoch)
	e.host.Stats().CommitEpoch(epoch)
	if e.cfg.Mode == ModeASO {
		drain := uint64(e.epochs[epoch].stores) * e.cfg.ASODrainPerStore
		until := e.host.Now() + drain
		if until > e.commitBusyUntil {
			e.commitBusyUntil = until
		}
	}
	e.epochs[epoch].active = false
	// Shift in place: e.order[1:] would walk the slice off its backing array
	// and force Begin's append to re-allocate every MaxCheckpoints commits.
	copy(e.order, e.order[1:])
	e.order = e.order[:len(e.order)-1]
}

// manageChunks opens and closes continuous-mode chunks.
func (e *Engine) manageChunks() {
	if !e.Speculating() {
		if e.CanBegin() {
			e.Begin()
		}
		return
	}
	y := e.YoungestEpoch()
	ep := &e.epochs[y]
	ripe := ep.retired >= e.cfg.MinChunk || e.earlyClose
	if !ep.closed && ripe && len(e.order) < e.cfg.MaxCheckpoints && !e.graceNeeded {
		// Close the chunk and pipeline a new checkpoint behind it.
		ep.closed = true
		e.earlyClose = false
		e.Begin()
	}
}

// RequestHalt closes any open chunk and stops new speculations so the node
// can quiesce after the program halts.
func (e *Engine) RequestHalt() {
	e.haltRequested = true
	if y := e.YoungestEpoch(); y >= 0 {
		e.epochs[y].closed = true
	}
}

// AbortFrom aborts the given epoch and every younger one: speculative
// store-buffer entries are flash-invalidated, speculatively-written lines
// conditionally invalidated, bits cleared, and the register checkpoint of
// the oldest aborted epoch restored (§3.2). Staged cycles become Violation
// time.
func (e *Engine) AbortFrom(epoch int) {
	age := e.EpochAge(epoch)
	if age < 0 {
		panic("core: AbortFrom inactive epoch")
	}
	aborted := e.order[age:]
	st := e.host.Stats()
	for _, idx := range aborted {
		e.host.SBFlashInvalidate(idx)
		e.host.CondInvalidateSpec(idx)
		st.AbortEpoch(idx)
		e.epochs[idx].active = false
	}
	oldest := &e.epochs[epoch]
	e.host.RestoreCheckpoint(oldest.regs, oldest.pc)
	e.order = e.order[:age]
	e.graceNeeded = true
	// A Halt observed during the aborted speculation was itself
	// speculative; execution resumes from the checkpoint.
	e.haltRequested = false
}

// AbortAll aborts every active epoch.
func (e *Engine) AbortAll() {
	if len(e.order) > 0 {
		e.AbortFrom(e.order[0])
	}
}

// TryCommitAllNow attempts to commit every active epoch immediately (the
// eviction-pressure path). It returns true if nothing remains speculative.
func (e *Engine) TryCommitAllNow() bool {
	for len(e.order) > 0 {
		o := e.order[0]
		if e.cfg.Mode == ModeContinuous && !e.epochs[o].closed {
			e.epochs[o].closed = true
		}
		if !e.host.SBEpochDrained(o) {
			return false
		}
		e.host.Stats().ForcedCommits++
		e.commitEpoch(o)
	}
	return true
}

// DeferAllowed reports whether a conflicting probe may be deferred under
// commit-on-violate rather than aborting immediately.
func (e *Engine) DeferAllowed() bool { return e.cfg.CoVTimeout > 0 }

// NotifyDeferredProbe tells the engine an external request is parked
// waiting on this core's speculation. Commit-on-violate's purpose is to
// give the speculation "an opportunity to commit instead of immediately
// aborting" (§3.2); in continuous mode that requires closing the open
// chunk early — below the minimum chunk size — so the drain-then-commit
// path can complete within the deferral window rather than riding it to
// the abort timeout.
func (e *Engine) NotifyDeferredProbe() {
	if e.cfg.Mode != ModeContinuous {
		return
	}
	e.earlyClose = true
	e.manageChunks()
}

// CoVDeadline computes the deferral deadline for a probe arriving now.
func (e *Engine) CoVDeadline(now uint64) uint64 { return now + e.cfg.CoVTimeout }

// SpeculatesOn describes the Figure 4 trigger set for this configuration.
func (e *Engine) SpeculatesOn() string {
	switch e.cfg.Mode {
	case ModeSelective, ModeASO:
		switch e.cfg.Model {
		case consistency.SC:
			return "all memory reorderings"
		case consistency.TSO:
			return "store/atomic reorderings, fences"
		case consistency.RMO:
			return "fences, atomics"
		case consistency.RC:
			return "releases, atomics"
		}
	case ModeContinuous:
		return "continuous chunks"
	case ModeLouvre:
		return "release boundaries (versioned ordering)"
	}
	return "nothing"
}
