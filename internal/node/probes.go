package node

import (
	"invisifence/internal/cache"
	"invisifence/internal/coherence"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
)

// handleCacheMsg dispatches a directory-to-cache message.
func (n *Node) handleCacheMsg(src network.NodeID, m coherence.Msg) {
	switch m.Kind {
	case coherence.DataS, coherence.DataE, coherence.DataM,
		coherence.FwdDataS, coherence.FwdDataM, coherence.GrantX:
		n.handleFill(m)
	case coherence.WBAck:
		delete(n.wbBuf, m.Addr)
	case coherence.Inv, coherence.FwdGetS, coherence.FwdGetX:
		n.handleProbe(src, m, nil)
	default:
		n.invariant(false, "unexpected cache message %v from %d", m, src)
	}
}

// handleFill completes an outstanding miss with arriving data or an
// upgrade grant.
func (n *Node) handleFill(m coherence.Msg) {
	block := m.Addr
	mshr, ok := n.mshrs[block]
	n.invariantAddr(ok, "fill without MSHR", block)
	if mshr.invalidated {
		// The block was invalidated while this fill was in flight: the
		// data predates the invalidating write. Discard it and reissue
		// the request; the fresh fill is ordered after the write.
		mshr.invalidated = false
		mshr.sent = false
		mshr.fromL2 = false
		mshr.upgrade = false
		delete(n.parkedFills, block)
		return
	}
	if m.Kind == coherence.GrantX {
		// Upgrade grant: permission without data. The blocking directory
		// guarantees our Shared copy survived (any older invalidation was
		// delivered first on the same FIFO pair).
		l2line := n.l2.Peek(block)
		n.invariantAddr(l2line != nil, "GrantX without L2 line", block)
		if l2line.State == cache.Shared {
			l2line.State = cache.Exclusive
		}
		if l1line := n.l1.Peek(block); l1line != nil {
			if l1line.State == cache.Shared {
				l1line.State = cache.Exclusive
			}
		} else if !n.installL1(block, l2line.Data, cache.Exclusive) {
			// The L1 copy was evicted while the upgrade was in flight and
			// no victim is free yet; retry so the granted permission can
			// be used the moment it arrives (a slow refill here would let
			// contending readers steal the line back forever).
			n.parked = append(n.parked, parkedProbe{src: n.id, msg: m})
			return
		}
		n.wakeWaiters(mshr)
		n.freeMSHR(mshr)
		return
	}
	var l2state cache.LineState
	switch m.Kind {
	case coherence.DataS, coherence.FwdDataS:
		l2state = cache.Shared
	case coherence.DataE, coherence.DataM:
		// Memory supplied the data; our copy is clean.
		l2state = cache.Exclusive
	case coherence.FwdDataM:
		// The previous owner's dirty data came straight to us and memory
		// was not updated: we hold the only valid copy.
		l2state = cache.Modified
	}
	if !n.installL2(block, m.Data, l2state) {
		// No L2 victim available yet; retry next cycle via parked fill.
		n.parkedFills[block] = true
		n.parked = append(n.parked, parkedProbe{src: n.id, msg: m})
		return
	}
	l1state := l2state
	if l2state == cache.Modified {
		l1state = cache.Exclusive // dirtiness tracked at the L2
	}
	if !n.installL1(block, m.Data, l1state) {
		n.parkedFills[block] = true
		n.parked = append(n.parked, parkedProbe{src: n.id, msg: m})
		return
	}
	delete(n.parkedFills, block)
	if mshr.prefetch {
		n.invariant(len(mshr.waiters) == 0, "prefetch MSHR with waiters")
	}
	n.RemoteFills++
	n.wakeWaiters(mshr)
	n.freeMSHR(mshr)
}

// retryParked re-attempts parked work each cycle: deferred probes
// (commit-on-violate), probes that raced ahead of their data, and fills
// waiting for a victim. The parked list and a scratch slice swap backing
// arrays, so the per-cycle retry loop allocates nothing; re-parked entries
// append to the (empty) other slice while the iteration reads this one.
func (n *Node) retryParked() {
	if len(n.parked) == 0 {
		return
	}
	pending := n.parked
	n.parked = n.parkedScratch[:0]
	n.parkedScratch = pending
	for i := range pending {
		p := &pending[i]
		switch p.msg.Kind {
		case coherence.Inv, coherence.FwdGetS, coherence.FwdGetX:
			n.handleProbe(p.src, p.msg, p)
		default:
			n.handleFill(p.msg)
		}
	}
}

// probeWantsWrite reports whether the probe transfers write permission
// away (external write request).
func probeWantsWrite(k coherence.MsgKind) bool {
	return k == coherence.Inv || k == coherence.FwdGetX
}

// handleProbe processes an external coherence request against this node:
// violation detection against the speculative bits (§3.2), commit-on-violate
// deferral, then the conventional MESI response. prior is non-nil when
// retrying a parked probe (it points into retryParked's scratch snapshot,
// which is stable while the retry loop runs; re-parking copies it).
func (n *Node) handleProbe(src network.NodeID, m coherence.Msg, prior *parkedProbe) {
	block := m.Addr

	// ASO commit drain blocks the cache's external interface (§2.2).
	if n.now < n.engine.CommitBusyUntil() {
		n.park(src, m, prior)
		return
	}

	// Fill hold: the line just arrived for a waiting access; let the core
	// touch it once before handing it over (bounded, so deadlock-free).
	if hold, ok := n.fillHold[block]; ok {
		if n.now < hold {
			n.park(src, m, prior)
			return
		}
		delete(n.fillHold, block)
	}

	// A fill for this block has arrived but is waiting for a victim way:
	// the probe is ordered behind it (serving it now would invalidate the
	// cached copy and let the parked fill re-install stale data).
	if n.parkedFills[block] {
		n.park(src, m, prior)
		return
	}

	// Writeback races: we evicted the block but the directory had already
	// forwarded a request to us; serve from the writeback buffer.
	if wb, ok := n.wbBuf[block]; ok {
		if n.l2.Peek(block) == nil {
			switch m.Kind {
			case coherence.Inv:
				n.send(src, coherence.Msg{Kind: coherence.InvAck, Addr: block})
			case coherence.FwdGetS:
				n.send(m.Req, coherence.Msg{Kind: coherence.FwdDataS, Addr: block, Data: wb.data, HasData: true})
				n.send(src, coherence.Msg{Kind: coherence.OwnerWBS, Addr: block, Data: wb.data, HasData: true})
			case coherence.FwdGetX:
				n.send(m.Req, coherence.Msg{Kind: coherence.FwdDataM, Addr: block, Data: wb.data, HasData: true})
				n.send(src, coherence.Msg{Kind: coherence.XferAck, Addr: block})
			}
			return
		}
	}

	l1line := n.l1.Peek(block)
	l2line := n.l2.Peek(block)
	if l1line == nil && l2line == nil {
		if m.Kind == coherence.Inv {
			// Stale sharer (silent drop earlier): acknowledge blindly —
			// but if a miss is pending, a 3-hop fill carrying
			// pre-invalidation data may still be in flight; poison it so
			// its arrival retries the request instead of installing.
			if mshr, ok := n.mshrs[block]; ok {
				mshr.invalidated = true
			}
			n.send(src, coherence.Msg{Kind: coherence.InvAck, Addr: block})
			return
		}
		// A forward raced ahead of our inbound data (3-hop triangle);
		// park until the fill lands.
		n.invariantAddr(n.mshrs[block] != nil, "probe for absent block with no MSHR", block)
		n.park(src, m, prior)
		return
	}

	// Violation detection (§3.2): an external write to a speculatively-read
	// block, or any external request to a speculatively-written block.
	if l1line != nil {
		conflict := -1
		for _, e := range n.engine.ActiveEpochs() {
			if l1line.SpecWritten[e] || (probeWantsWrite(m.Kind) && l1line.SpecRead[e]) {
				conflict = e
				break
			}
		}
		if conflict >= 0 {
			if n.engine.DeferAllowed() {
				// Commit-on-violate: defer for the bounded window, giving
				// the speculation a chance to commit (§3.2).
				if prior == nil || !prior.isCoV {
					n.engine.NotifyDeferredProbe()
					n.st.CoVDeferrals++
					n.park(src, m, &parkedProbe{
						src: src, msg: m,
						deadline: n.engine.CoVDeadline(n.now),
						isCoV:    true,
					})
					return
				}
				if n.now < prior.deadline {
					n.park(src, m, prior)
					return
				}
				// Timeout: forward progress demands the abort.
			}
			n.engine.AbortFrom(conflict)
			l1line = n.l1.Peek(block) // may be invalidated by the abort
		} else if prior != nil && prior.isCoV {
			// The conflict disappeared: the speculation committed during
			// the deferral window.
			n.st.CoVSaves++
		}
	}

	// Any retired-but-undrained non-speculative stores for this block are
	// flushed into the L1 before responding, so the response carries the
	// latest committed values. Speculative entries stay in the buffer:
	// they are not globally visible and will re-acquire ownership later.
	if n.coalSB != nil {
		n.drainCoalescing(block, 0, true)
		l1line = n.l1.Peek(block)
	}
	if n.cfg.SnoopLQ && probeWantsWrite(m.Kind) {
		n.core.SnoopBlock(block)
	}

	switch m.Kind {
	case coherence.Inv:
		if l1line != nil {
			n.invariantAddr(!l1line.SpecAny(), "Inv serving a speculative line", block)
			n.l1.Invalidate(block)
		}
		if l2line != nil {
			n.l2.Invalidate(block)
		}
		n.send(src, coherence.Msg{Kind: coherence.InvAck, Addr: block})

	case coherence.FwdGetS:
		if l1line != nil {
			n.invariantAddr(!l1line.SpecWrittenAny(), "FwdGetS downgrading a speculatively-written line", block)
		}
		data := n.latestData(l1line, l2line, block)
		if l1line != nil {
			l1line.State = cache.Shared
		}
		n.invariantAddr(l2line != nil, "FwdGetS owner without L2 line", block)
		l2line.Data = data
		l2line.State = cache.Shared
		n.send(m.Req, coherence.Msg{Kind: coherence.FwdDataS, Addr: block, Data: data, HasData: true})
		n.send(src, coherence.Msg{Kind: coherence.OwnerWBS, Addr: block, Data: data, HasData: true})

	case coherence.FwdGetX:
		if l1line != nil {
			n.invariantAddr(!l1line.SpecAny(), "FwdGetX taking a speculative line", block)
		}
		data := n.latestData(l1line, l2line, block)
		if l1line != nil {
			n.l1.Invalidate(block)
		}
		if l2line != nil {
			n.l2.Invalidate(block)
		}
		n.send(m.Req, coherence.Msg{Kind: coherence.FwdDataM, Addr: block, Data: data, HasData: true})
		n.send(src, coherence.Msg{Kind: coherence.XferAck, Addr: block})
	}
}

// latestData returns the freshest non-speculative copy of a block: the L1
// if it is non-speculatively dirty, else the L2 (which the cleaning-
// writeback rule keeps current for speculatively-written lines).
func (n *Node) latestData(l1line, l2line *cache.Line, block memtypes.Addr) memtypes.BlockData {
	if l1line != nil && l1line.State == cache.Modified && !l1line.SpecWrittenAny() {
		return l1line.Data
	}
	n.invariantAddr(l2line != nil, "no data source for block", block)
	return l2line.Data
}

// park queues a probe for retry next cycle. prior (a retry's scratch entry)
// carries CoV deferral state forward; its fields are copied into the live
// parked list, never retained by pointer.
func (n *Node) park(src network.NodeID, m coherence.Msg, prior *parkedProbe) {
	if prior != nil {
		p := *prior
		p.src = src
		p.msg = m
		n.parked = append(n.parked, p)
		return
	}
	n.parked = append(n.parked, parkedProbe{src: src, msg: m})
}
