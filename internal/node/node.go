// Package node assembles one simulated node: the out-of-order core, the L1D
// and L2 caches, the post-retirement store buffer, the home-directory slice,
// the cache-side coherence state machine, and the InvisiFence/ASO engine.
//
// The node implements both cpu.Backend (retirement policy per the Figure 2
// consistency rules, speculation triggers per Figure 4) and core.Host (the
// machine-state primitives the engine drives: checkpoint restore, flash
// operations, store-buffer flush).
package node

import (
	"fmt"

	"invisifence/internal/cache"
	"invisifence/internal/coherence"
	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/cpu"
	"invisifence/internal/isa"
	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
	"invisifence/internal/stats"
	"invisifence/internal/storebuffer"
)

// Config describes one node.
type Config struct {
	ID    network.NodeID
	Nodes int
	Model consistency.Model
	// Engine selects speculation policy; Mode Off is a conventional
	// implementation of Model.
	Engine ifcore.Config
	Core   cpu.Config
	L1     cache.Config
	L2     cache.Config
	Memory memctrl.Config
	// MSHRs bounds outstanding misses (Figure 6: 32).
	MSHRs int
	// SBCapacity sizes the store buffer: 64 word entries (FIFO, SC/TSO),
	// 8 block entries (coalescing, single checkpoint), 32 (two in-flight
	// checkpoints), per Figure 6.
	SBCapacity int
	// StorePrefetchDepth is how far past the FIFO head exclusive
	// prefetches are issued (Flexus-style store prefetching; 0 disables).
	StorePrefetchDepth int
	// MsgsPerCycle bounds protocol messages consumed per cycle.
	MsgsPerCycle int
	// SnoopLQ enables in-window load-queue snooping. Kept on in every
	// configuration including continuous (see DESIGN.md: functionally
	// conservative, hardware-cost claim unaffected).
	SnoopLQ bool
	// FillHoldCycles parks external probes for a block for this many
	// cycles after its fill arrives, so the requesting core can perform at
	// least one access before surrendering the line. This is the standard
	// livelock-avoidance window for hot atomics (ownership would otherwise
	// ping-pong forever without any fetch-add completing). Bounded, so it
	// cannot deadlock. 0 disables.
	FillHoldCycles uint64
}

// UsesFIFOSB reports whether this configuration uses the word-granularity
// FIFO store buffer (conventional SC/TSO) rather than the coalescing buffer.
func (c *Config) UsesFIFOSB() bool {
	return c.Engine.Mode == ifcore.ModeOff &&
		consistency.RulesFor(c.Model).SB == consistency.SBFIFOWord
}

type mshrEntry struct {
	block    memtypes.Addr
	wantX    bool
	upgrade  bool
	sent     bool
	fromL2   bool   // served by local L2
	readyAt  uint64 // completion time for local L2 serves
	prefetch bool
	waiters  []loadWaiter
	// invalidated marks a miss whose block was invalidated while pending:
	// an Inv (from a directory transaction ordered after the one producing
	// our fill) can overtake a 3-hop forwarded fill on a different network
	// pair. The stale fill must be discarded and the request reissued, or
	// the node would install a permanently incoherent copy.
	invalidated bool
}

type loadWaiter struct {
	tag  uint64
	addr memtypes.Addr
}

type wbEntry struct {
	data  memtypes.BlockData
	dirty bool
}

// parkedProbe holds a deferred or raced coherence message by value; the
// parked list and its retry scratch swap backing arrays each cycle, so
// parking allocates nothing in steady state.
type parkedProbe struct {
	src      network.NodeID
	msg      coherence.Msg
	deadline uint64 // CoV deferral deadline; 0 = no deadline (resource wait)
	isCoV    bool
}

// Node is one processor node of the 16-node system.
type Node struct {
	cfg   Config
	id    network.NodeID
	nodes int
	net   *network.Network
	dir   *coherence.Directory
	mem   *memctrl.Memory
	core  *cpu.Core
	l1    *cache.Cache
	l2    *cache.Cache

	fifoSB *storebuffer.FIFO
	coalSB *storebuffer.Coalescing
	engine *ifcore.Engine

	st  *stats.NodeStats
	now uint64

	mshrs      map[memtypes.Addr]*mshrEntry
	mshrOrder  []*mshrEntry
	mshrFree   []*mshrEntry   // recycled miss entries (waiter capacity kept)
	setPending map[uint64]int // L1 set index -> outstanding fills/locks

	wbBuf     map[memtypes.Addr]wbEntry
	cleanings map[memtypes.Addr]uint64 // block -> cleaning-writeback done cycle
	cleanList []memtypes.Addr          // deterministic iteration
	fillHold  map[memtypes.Addr]uint64 // block -> probe-hold deadline after fill

	parked        []parkedProbe
	parkedScratch []parkedProbe // retryParked's reusable iteration snapshot
	// parkedFills marks blocks whose fill data has arrived but is waiting
	// for a victim way. Probes for these blocks must queue behind the fill:
	// serving them first would invalidate the cached copy and let the
	// parked fill later re-install stale data.
	parkedFills map[memtypes.Addr]bool

	accounting bool // false once the core halts (post-halt drain not charged)

	// Stats.
	CleaningWBs, Prefetches, L2HitFills, RemoteFills uint64
}

// New builds a node. The workload program and initial registers seed the
// core.
func New(cfg Config, net *network.Network, prog *isa.Program, regs [isa.NumRegs]memtypes.Word) *Node {
	if cfg.MsgsPerCycle <= 0 {
		cfg.MsgsPerCycle = 8
	}
	n := &Node{
		cfg:         cfg,
		id:          cfg.ID,
		nodes:       cfg.Nodes,
		net:         net,
		mem:         memctrl.New(cfg.Memory),
		l1:          cache.New(cfg.L1),
		l2:          cache.New(cfg.L2),
		st:          &stats.NodeStats{},
		mshrs:       make(map[memtypes.Addr]*mshrEntry),
		setPending:  make(map[uint64]int),
		wbBuf:       make(map[memtypes.Addr]wbEntry),
		cleanings:   make(map[memtypes.Addr]uint64),
		fillHold:    make(map[memtypes.Addr]uint64),
		parkedFills: make(map[memtypes.Addr]bool),
		accounting:  true,
	}
	n.dir = coherence.NewDirectory(cfg.ID, cfg.Nodes, n.mem, net)
	if cfg.UsesFIFOSB() {
		n.fifoSB = storebuffer.NewFIFO(cfg.SBCapacity)
	} else {
		n.coalSB = storebuffer.NewCoalescing(cfg.SBCapacity)
	}
	n.engine = ifcore.New(cfg.Engine, n)
	n.core = cpu.New(int(cfg.ID), cfg.Core, prog, regs, n)
	return n
}

// Directory exposes the node's home-directory slice (tests).
func (n *Node) Directory() *coherence.Directory { return n.dir }

// Memory exposes the node's memory controller (workload init, result reads).
func (n *Node) Memory() *memctrl.Memory { return n.mem }

// Core exposes the core (tests).
func (n *Node) Core() *cpu.Core { return n.core }

// L1 exposes the L1 cache (tests).
func (n *Node) L1() *cache.Cache { return n.l1 }

// L2 exposes the L2 cache (tests).
func (n *Node) L2() *cache.Cache { return n.l2 }

// Engine exposes the speculation engine (tests).
func (n *Node) Engine() *ifcore.Engine { return n.engine }

// Stats exposes accounting (also part of core.Host).
func (n *Node) Stats() *stats.NodeStats { return n.st }

// Now implements core.Host.
func (n *Node) Now() uint64 { return n.now }

// Halted reports whether the core has retired its Halt.
func (n *Node) Halted() bool { return n.core.Halted() }

// Finished reports whether the node is fully quiesced: program halted,
// speculation resolved, stores drained, no outstanding misses.
func (n *Node) Finished() bool {
	return n.core.Halted() && !n.engine.Speculating() && n.sbEmpty() &&
		len(n.mshrs) == 0 && len(n.parked) == 0 && len(n.cleanings) == 0
}

func (n *Node) sbEmpty() bool {
	if n.fifoSB != nil {
		return n.fifoSB.Empty()
	}
	return n.coalSB.Empty()
}

// MSHRCount returns outstanding misses (tests, diagnostics).
func (n *Node) MSHRCount() int { return len(n.mshrs) }

// ParkedCount returns parked probes/fills awaiting retry (tests, diagnostics).
func (n *Node) ParkedCount() int { return len(n.parked) }

// SBOccupancy returns current store buffer entries (tests).
func (n *Node) SBOccupancy() int {
	if n.fifoSB != nil {
		return n.fifoSB.Len()
	}
	return n.coalSB.Len()
}

func (n *Node) home(a memtypes.Addr) network.NodeID {
	return coherence.HomeOf(a, n.nodes)
}

func (n *Node) send(dst network.NodeID, m coherence.Msg) {
	if coherence.TraceOn() {
		coherence.Trace(n.now, fmt.Sprintf("node%d->%d", n.id, dst), m, "")
	}
	n.net.Send(n.id, dst, m)
}

// Tick advances the node one cycle. The simulator has already advanced the
// network, so this cycle's deliveries are in the inbox.
func (n *Node) Tick(now uint64) {
	n.now = now
	// Message-driven core paths below (fills, snoops, aborts) anchor
	// redirect timing to the core's clock, which lock-step execution leaves
	// at the previous cycle; re-anchor it in case idle-skip jumped.
	n.core.SyncNow(now - 1)
	n.retryParked()
	n.deliver()
	n.dir.Tick(now)
	n.completeCleanings()
	n.completeL2Serves()
	n.issueRequests()
	n.drainStoreBuffer()
	if n.core.Halted() {
		n.engine.RequestHalt()
	}
	n.engine.Tick()
	n.core.Tick(now)
	n.account()
}

// deliver consumes protocol messages from the network inbox.
func (n *Node) deliver() {
	for i := 0; i < n.cfg.MsgsPerCycle; i++ {
		m, ok := n.net.Recv(n.id)
		if !ok {
			return
		}
		if m.Payload.Kind.IsDirRequest() {
			n.dir.Handle(n.now, m.Src, m.Payload)
			continue
		}
		if coherence.TraceOn() {
			coherence.Trace(n.now, fmt.Sprintf("node%d<-%d", n.id, m.Src), m.Payload, "")
		}
		n.handleCacheMsg(m.Src, m.Payload)
	}
}

// NextEvent returns the earliest future cycle at which this node might
// change state on its own — excluding new network deliveries, which the
// simulator tracks through the network's own horizon. It returns
// memtypes.NoEvent when every pending activity is waiting on an external
// input. The contract is one-sided: the hint must never be later than the
// node's true next state change, but may be earlier (costing only a tick).
//
// The method is read-only with respect to simulated state, so the answer
// never perturbs a run: a simulation executed with idle-skip is bit-exact
// against the naive lock-step loop (enforced by TestGoldenResults and
// TestIdleSkipBitExact).
func (n *Node) NextEvent() uint64 {
	// Unconsumed deliveries, parked probes/fills, and unsent miss requests
	// are all retried next cycle.
	if n.net.InboxLen(n.id) > 0 || len(n.parked) > 0 {
		return n.now + 1
	}
	// A cycle that retired instructions classifies as Busy; the next cycle
	// may classify differently even if frozen, so never skip across it.
	if n.core.RetiredThisCycle > 0 {
		return n.now + 1
	}
	next := uint64(memtypes.NoEvent)
	for _, m := range n.mshrOrder {
		switch {
		case !m.sent && !m.fromL2:
			return n.now + 1 // request issues next cycle
		case m.fromL2:
			// Includes completed-but-stuck local serves (no victim yet),
			// which retry every cycle via max(now+1, ...).
			next = min(next, max(n.now+1, m.readyAt))
		}
	}
	for _, done := range n.cleanings {
		next = min(next, max(n.now+1, done))
	}
	if t := n.sbNextEvent(); t < next {
		next = t
	}
	next = min(next, n.headRetireEvent())
	next = min(next, n.dir.NextEvent(n.now))
	next = min(next, n.engine.NextEvent(n.now))
	next = min(next, n.mem.NextEvent(n.now))
	next = min(next, n.core.NextEvent())
	return next
}

// headRetireEvent folds retirement policy into the horizon: when the ROB
// head is ready to invoke the backend, decide — using the same Figure 2
// rules (or, under speculation, the §3.2 speculative paths) the backend
// applies — whether next cycle's attempt could change state (retire, begin
// a speculation, allocate a miss, bump a stall counter) or is a provably
// pure wait on events tracked elsewhere (store buffer drains, fills,
// cleanings, epoch commits). Pure waits contribute no event; any doubt
// costs only a conservative now+1. The hint is read-only and never later
// than the true next state change (the simulator-wide monotonicity
// contract, see Node.NextEvent).
func (n *Node) headRetireEvent() uint64 {
	hs := n.core.HeadState()
	if !hs.Valid {
		return memtypes.NoEvent
	}
	if !hs.Ready {
		return hs.ReadyAt // NoEvent when only a fill can unblock it
	}
	if n.engine.Speculating() {
		return n.specHeadRetireEvent(hs)
	}
	// Non-speculating head. canTriggerSpeculationOn is consulted exactly
	// where the backend would call Begin — a blanket now+1 whenever the
	// engine *could* begin would misclassify every pure wait on the paths
	// that never trigger (e.g. an SC atomic's ownership wait), which is
	// precisely where lock-contended workloads spend their cycles.
	rules := consistency.RulesFor(n.cfg.Model)
	switch {
	case hs.Op == isa.Halt:
		return n.now + 1
	case hs.Op == isa.Fence:
		if n.sbEmpty() {
			return n.now + 1 // retires
		}
		if n.canTriggerSpeculationOn(trigFence) {
			return n.now + 1 // RetireFence begins a speculation instead
		}
		return memtypes.NoEvent // pure drain wait (RetireFence mutates nothing)
	case hs.Op.IsLoad():
		if rules.LoadNeedsDrain && !n.sbEmpty() {
			if n.canTriggerSpeculationOn(trigLoad) {
				return n.now + 1 // RetireLoad begins a speculation instead
			}
			return memtypes.NoEvent // pure drain wait (SC)
		}
		return n.now + 1 // retires
	case hs.Op.IsStore():
		if n.fifoSB != nil {
			if n.fifoSB.Full() {
				// Blocked push; each attempt counts a FullStall, which
				// SkipCycles replicates for the skipped stretch.
				return memtypes.NoEvent
			}
			return n.now + 1 // pushes
		}
		switch n.cfg.Model {
		case consistency.SC, consistency.TSO:
			if !n.sbEmpty() {
				if n.canTriggerSpeculationOn(trigStore) {
					return n.now + 1 // RetireStore begins a speculation instead
				}
				return memtypes.NoEvent // pure drain-grace wait
			}
		case consistency.RC:
			if hs.Op.IsRelease() && !n.sbEmpty() {
				if n.canTriggerSpeculationOn(trigRelease) {
					return n.now + 1 // RetireStore begins a speculation instead
				}
				return memtypes.NoEvent // pure release-drain wait
			}
		}
		if n.coalStoreWouldStall(hs.Addr) {
			return memtypes.NoEvent // counted FullStall; SkipCycles replicates
		}
		return n.now + 1
	case hs.Op.IsAtomic():
		if rules.AtomicNeedsDrain && !n.sbEmpty() {
			if n.canTriggerSpeculationOn(trigAtomic) {
				return n.now + 1 // RetireAtomic begins a speculation instead
			}
			return memtypes.NoEvent // pure drain wait
		}
		block := memtypes.BlockAddr(hs.Addr)
		line := n.l1.Peek(block)
		if line == nil || !line.State.Writable() {
			if (n.cfg.Model == consistency.RMO || n.cfg.Model == consistency.RC) &&
				n.canTriggerSpeculationOn(trigAtomic) {
				return n.now + 1 // the Figure 4 RMO/RC atomic trigger fires
			}
			// Ownership wait; requestBlock is idempotent once the miss is
			// outstanding. Without an MSHR the next attempt allocates one.
			if _, ok := n.mshrs[block]; ok {
				return memtypes.NoEvent
			}
			return n.now + 1
		}
		if _, cleaning := n.cleanings[block]; cleaning {
			return memtypes.NoEvent // wakes at the cleaning's done cycle
		}
		if n.coalSB != nil && n.sbHasBlock(block) {
			return memtypes.NoEvent // wakes on store-buffer drains
		}
		return n.now + 1 // performs the RMW
	default:
		return n.now + 1 // plain op retires (no backend involvement)
	}
}

// specHeadRetireEvent classifies the ROB head's retirement attempt while a
// speculation is live (the ROADMAP's "skippable speculation waits"). The
// Invisi_* configurations speculate almost continuously, so every pure wait
// recognized here is a cycle the per-node schedulers can skip. The mirror
// relationship is with the retireSpec* paths in backend.go; SkipCycles
// replicates the one per-cycle counter a skippable blocked attempt bumps.
func (n *Node) specHeadRetireEvent(hs cpu.HeadState) uint64 {
	switch {
	case hs.Op.IsLoad():
		// retireSpecLoad either retires (marking the speculatively-read
		// bit) or detects a racing eviction and replays: state changes
		// either way.
		return n.now + 1
	case hs.Op.IsStore():
		switch n.specStoreOutcome(hs.Addr) {
		case specStoreWaitPure, specStoreWaitStall:
			// Wakes through tracked events: store-buffer drains
			// (sbNextEvent, fills, cleanings) and epoch commits
			// (engine.NextEvent); the stall counter is replayed in bulk.
			return memtypes.NoEvent
		}
		return n.now + 1
	case hs.Op.IsAtomic():
		if n.specAtomicWaitsOnMiss(hs) {
			return memtypes.NoEvent // pure fill wait; requestBlock is idempotent
		}
		if out, ok := n.specAtomicStoreOutcome(hs); ok {
			switch out {
			case specStoreWaitPure, specStoreWaitStall:
				// Buffer-blocked store half: wakes through tracked events
				// (store-buffer drains, fills, cleanings, epoch commits);
				// the stall counter is replayed in bulk by SkipCycles.
				return memtypes.NoEvent
			}
		}
		return n.now + 1
	default:
		// Halt (engine halt-request), Fence (retires freely inside a
		// speculation), plain ops: all change state next cycle.
		return n.now + 1
	}
}

// specStoreOutcome classifies, read-only, what the next retireSpecStore
// attempt for a head store to addr would do.
type specStoreOutcome uint8

const (
	// specStoreProgress: the attempt mutates state — a direct L1 write, a
	// cleaning writeback kickoff, a buffer allocation/merge, an ownership
	// request, or (ASO) an SSB occupancy bump on a failed push.
	specStoreProgress specStoreOutcome = iota
	// specStoreWaitPure: the attempt provably mutates nothing (ASO SSB at
	// capacity: OnSpecStore refuses before anything is counted).
	specStoreWaitPure
	// specStoreWaitStall: the attempt only bumps the coalescing buffer's
	// FullStalls counter (full buffer, no same-epoch merge target), which
	// SkipCycles replicates for skipped cycles.
	specStoreWaitStall
)

func (n *Node) specStoreOutcome(addr memtypes.Addr) specStoreOutcome {
	y := n.engine.YoungestEpoch()
	block := memtypes.BlockAddr(addr)
	line := n.l1.Peek(addr)
	_, cleaning := n.cleanings[block]
	if line != nil && line.State.Writable() && !cleaning && !n.sbHasBlock(block) {
		if line.State == cache.Modified && !line.SpecWrittenAny() {
			return specStoreProgress // would start a cleaning writeback
		}
		if !n.heldByOlderEpoch(line, y) {
			return specStoreProgress // direct speculative write retires
		}
	}
	if n.engine.SSBWouldBlock() {
		return specStoreWaitPure
	}
	if !n.coalSB.Full() || n.specCanMerge(block, y) {
		return specStoreProgress // buffer push succeeds, store retires
	}
	// Failed push: no ownership request follows (the push gates it), so
	// the only per-cycle mutation is the buffer's FullStalls counter —
	// except in ASO mode, where OnSpecStore counts the store into the SSB
	// before the push fails, and SSB occupancy is drain-cost-visible state.
	if n.engine.Config().Mode == ifcore.ModeASO {
		return specStoreProgress
	}
	return specStoreWaitStall
}

// specCanMerge reports whether a speculative store of epoch y to block
// would coalesce into the youngest same-block entry (mirrors
// Coalescing.Store's merge rule).
func (n *Node) specCanMerge(block memtypes.Addr, y int) bool {
	entries := n.coalSB.Entries()
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Block == block {
			return entries[i].Epoch == y
		}
	}
	return false
}

// specAtomicWaitsOnMiss reports whether a head atomic under speculation is
// a pure wait on an already-outstanding fill: retireSpecAtomic needs the
// block data itself, and with the miss in flight its requestBlock retry is
// idempotent. Any other state (no MSHR yet, or line present) can mutate on
// the next attempt.
func (n *Node) specAtomicWaitsOnMiss(hs cpu.HeadState) bool {
	if !hs.AddrOK {
		return false
	}
	block := memtypes.BlockAddr(hs.Addr)
	if n.l1.Peek(hs.Addr) != nil {
		return false
	}
	_, outstanding := n.mshrs[block]
	return outstanding
}

// specAtomicStoreOutcome classifies, read-only, the store half of a
// speculative atomic whose line is present: the §3.2 load+store
// decomposition retries retireSpecAtomic every cycle when the write cannot
// buffer, which used to be a dense now+1 horizon (the last one under
// speculation — see ROADMAP). Deciding the write's fate needs the head's
// operand values (a failed CAS retires read-only), plumbed through
// cpu.HeadState. ok is false when the next attempt provably mutates state
// before reaching the store half — an unmarked speculatively-read bit
// (violation detection depends on the marking, so it is never skipped), a
// missing line, or a CAS that fails and therefore retires.
func (n *Node) specAtomicStoreOutcome(hs cpu.HeadState) (specStoreOutcome, bool) {
	if !hs.AddrOK || !hs.OpsOK || n.coalSB == nil {
		return 0, false
	}
	line := n.l1.Peek(hs.Addr)
	if line == nil {
		return 0, false // miss path: specAtomicWaitsOnMiss owns it
	}
	y := n.engine.YoungestEpoch()
	if y < 0 || !line.SpecRead[y] {
		return 0, false // next attempt marks the read bit: a mutation
	}
	old := line.Data[memtypes.WordIndex(hs.Addr)]
	if v, ok := n.coalSB.Forward(hs.Addr); ok {
		old = v
	}
	if _, doWrite := cpu.AtomicApply(hs.Op, old, hs.OpA, hs.OpB); !doWrite {
		return 0, false // failed CAS: retires read-only next attempt
	}
	return n.specStoreOutcome(hs.Addr), true
}

// coalStoreWouldStall mirrors retireNonSpecStore's failure path: the store
// can neither write the L1 directly, nor merge, nor allocate a new entry.
func (n *Node) coalStoreWouldStall(addr memtypes.Addr) bool {
	block := memtypes.BlockAddr(addr)
	line := n.l1.Peek(addr)
	if line != nil && line.State.Writable() && !n.sbHasBlock(block) {
		if _, cleaning := n.cleanings[block]; !cleaning {
			return false // direct write succeeds
		}
	}
	if !n.coalSB.Full() {
		return false // a fresh entry can be allocated
	}
	// Full buffer: only a same-class merge can still succeed.
	return !n.coalCanMerge(block)
}

// coalCanMerge reports whether a non-speculative store to block would
// coalesce into the youngest same-block entry (mirrors Coalescing.Store).
func (n *Node) coalCanMerge(block memtypes.Addr) bool {
	entries := n.coalSB.Entries()
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].Block == block {
			return entries[i].Epoch == storebuffer.NonSpecEpoch
		}
	}
	return false
}

// sbNextEvent reports when the store-buffer drain engine would next act.
func (n *Node) sbNextEvent() uint64 {
	if n.fifoSB != nil {
		if e := n.fifoSB.Head(); e != nil {
			block := memtypes.BlockAddr(e.Addr)
			if line := n.l1.Peek(block); line != nil && line.State.Writable() {
				return n.now + 1 // head drains next cycle
			}
			if _, ok := n.mshrs[block]; !ok {
				return n.now + 1 // ownership request (re)attempted next cycle
			}
		}
		if n.cfg.StorePrefetchDepth > 0 && len(n.mshrs) < n.cfg.MSHRs-4 {
			for _, block := range n.fifoSB.PrefetchBlocks(n.cfg.StorePrefetchDepth) {
				if _, ok := n.mshrs[block]; ok {
					continue
				}
				if line := n.l1.Peek(block); line != nil && line.State.Writable() {
					continue
				}
				return n.now + 1 // a store prefetch would be attempted
			}
		}
		return memtypes.NoEvent
	}
	// Coalescing buffer: an entry whose block has neither an outstanding
	// miss nor a cleaning writeback in progress is (re)attempted every
	// cycle; entries pinned behind a sent miss or a cleaning wake through
	// those events. (A block with an outstanding remote miss can never be
	// writable locally, so no drain is missed by waiting on the fill.)
	for _, e := range n.coalSB.Entries() {
		if _, ok := n.mshrs[e.Block]; ok {
			continue
		}
		if _, ok := n.cleanings[e.Block]; ok {
			continue
		}
		return n.now + 1
	}
	return memtypes.NoEvent
}

// SkipCycles fast-forwards the node across k cycles (n.now+1 .. n.now+k)
// in which the simulator proved no component makes progress. Frozen state
// means every skipped cycle classifies exactly like the cycle just ticked
// (NextEvent refuses to skip after a retiring cycle), so cycle accounting
// is replayed in bulk; the core replicates its own per-cycle counters.
func (n *Node) SkipCycles(k uint64) {
	if n.accounting {
		var cl stats.CycleClass
		switch n.core.HeadStall {
		case cpu.StallSBFull:
			cl = stats.SBFull
		case cpu.StallSBDrain:
			cl = stats.SBDrain
		default:
			cl = stats.Other
		}
		n.st.AccountN(cl, n.engine.YoungestEpoch(), k)
	}
	n.core.SkipCycles(k)
	// A head store blocked on a full store buffer counts one FullStall per
	// attempted push; replicate the attempts the skip suppressed. (These
	// are the only per-cycle mutations a blocked retirement makes — every
	// other skippable head wait is pure, see headRetireEvent and
	// specStoreOutcome.)
	hs := n.core.HeadState()
	if !hs.Valid || !hs.Ready || !(hs.Op.IsStore() || hs.Op.IsAtomic()) {
		return
	}
	if hs.Op.IsAtomic() {
		// Mirror of specHeadRetireEvent's atomic case: only a WaitStall-
		// classified store half bumps the coalescing buffer's FullStalls per
		// attempt. Every other skippable atomic wait (fill wait, non-spec
		// drain/ownership wait, ASO SSB refusal) mutates nothing per cycle.
		if n.engine.Speculating() {
			if out, ok := n.specAtomicStoreOutcome(hs); ok && out == specStoreWaitStall {
				n.coalSB.FullStalls += k
			}
		}
		return
	}
	if n.engine.Speculating() {
		// Mirror of specHeadRetireEvent: only a WaitStall-classified head
		// bumps a counter per attempt (a WaitPure head — ASO SSB full — is
		// refused before anything is counted).
		if n.specStoreOutcome(hs.Addr) == specStoreWaitStall {
			n.coalSB.FullStalls += k
		}
		return
	}
	if n.fifoSB != nil {
		if n.fifoSB.Full() {
			n.fifoSB.FullStalls += k
		}
		return
	}
	// Mirror of RetireStore's non-speculating coalescing path: with a
	// non-empty buffer under SC/TSO (or at an RC releasing store) the
	// attempt either begins a speculation (never skipped, headRetireEvent
	// returns now+1) or waits for the drain without touching the buffer;
	// only past that gate does a failed push count a FullStall per attempt.
	switch n.cfg.Model {
	case consistency.SC, consistency.TSO:
		if !n.sbEmpty() {
			return
		}
	case consistency.RC:
		if hs.Op.IsRelease() && !n.sbEmpty() {
			return
		}
	}
	if n.coalStoreWouldStall(hs.Addr) {
		n.coalSB.FullStalls += k
	}
}

// account classifies this cycle for the Figure 9 breakdown.
func (n *Node) account() {
	if !n.accounting {
		return
	}
	if n.core.Halted() {
		n.accounting = false
		return
	}
	var cl stats.CycleClass
	if n.core.RetiredThisCycle > 0 {
		cl = stats.Busy
	} else {
		switch n.core.HeadStall {
		case cpu.StallSBFull:
			cl = stats.SBFull
		case cpu.StallSBDrain:
			cl = stats.SBDrain
		default:
			cl = stats.Other
		}
	}
	n.st.Account(cl, n.engine.YoungestEpoch())
}

// DebugString dumps miss/parking/cleaning state for diagnostics.
func (n *Node) DebugString() string {
	out := ""
	for _, m := range n.mshrOrder {
		out += fmt.Sprintf("  mshr %#x wantX=%v sent=%v upg=%v fromL2=%v pf=%v waiters=%d\n",
			uint64(m.block), m.wantX, m.sent, m.upgrade, m.fromL2, m.prefetch, len(m.waiters))
	}
	for _, p := range n.parked {
		out += fmt.Sprintf("  parked %v from=%d cov=%v deadline=%d\n", p.msg, p.src, p.isCoV, p.deadline)
	}
	for b, t := range n.cleanings {
		out += fmt.Sprintf("  cleaning %#x until %d\n", uint64(b), t)
	}
	if n.coalSB != nil {
		for _, e := range n.coalSB.Entries() {
			line := "absent"
			if l := n.l1.Peek(e.Block); l != nil {
				line = l.State.String()
			}
			out += fmt.Sprintf("  sb entry %#x epoch=%d l1=%s\n", uint64(e.Block), e.Epoch, line)
		}
	}
	out += fmt.Sprintf("  engine: active=%v\n", n.engine.ActiveEpochs())
	return out
}

func (n *Node) invariant(cond bool, format string, args ...any) {
	if !cond {
		panic(fmt.Sprintf("node %d @%d: %s", n.id, n.now, fmt.Sprintf(format, args...)))
	}
}

// invariantAddr is the hot-path variant of invariant: the ...any form boxes
// its arguments on every call even when the condition holds, which made the
// per-fill and per-probe checks the largest allocation sites in the
// simulator. The address is formatted only on failure.
func (n *Node) invariantAddr(cond bool, msg string, a memtypes.Addr) {
	if !cond {
		panic(fmt.Sprintf("node %d @%d: %s %#x", n.id, n.now, msg, uint64(a)))
	}
}
