package node

import (
	"testing"

	"invisifence/internal/cache"
	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/cpu"
	"invisifence/internal/isa"
	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
)

// rig is a 2-node bring-up harness operating the nodes directly (no sim
// package) so tests can inspect node internals mid-run.
type rig struct {
	net   *network.Network
	nodes []*Node
	now   uint64
}

func newRig(t *testing.T, model consistency.Model, eng ifcore.Config, progs []*isa.Program) *rig {
	t.Helper()
	net := network.New(network.Config{Width: 2, Height: 1, HopLatency: 10, LocalLatency: 1})
	cfg := Config{
		Nodes:              2,
		Model:              model,
		Engine:             eng,
		Core:               cpu.DefaultConfig(),
		L1:                 cache.Config{SizeBytes: 4 << 10, Ways: 2, HitLatency: 2, Name: "L1"},
		L2:                 cache.Config{SizeBytes: 64 << 10, Ways: 8, HitLatency: 10, Name: "L2"},
		Memory:             memctrl.Config{AccessLatency: 40, Banks: 4, BankBusy: 2},
		MSHRs:              16,
		SBCapacity:         8,
		StorePrefetchDepth: 4,
		MsgsPerCycle:       8,
		SnoopLQ:            true,
		FillHoldCycles:     8,
	}
	if cfg.UsesFIFOSB() {
		cfg.SBCapacity = 64
	}
	r := &rig{net: net}
	for i := 0; i < 2; i++ {
		nc := cfg
		nc.ID = network.NodeID(i)
		var regs [isa.NumRegs]memtypes.Word
		r.nodes = append(r.nodes, New(nc, net, progs[i], regs))
	}
	return r
}

func (r *rig) step(n int) {
	for i := 0; i < n; i++ {
		r.now++
		r.net.Tick(r.now)
		for _, nd := range r.nodes {
			nd.Tick(r.now)
		}
	}
}

func (r *rig) runUntilDone(t *testing.T, max int) {
	t.Helper()
	for i := 0; i < max; i++ {
		r.step(1)
		done := true
		for _, nd := range r.nodes {
			if !nd.Finished() {
				done = false
			}
		}
		if done {
			return
		}
	}
	t.Fatalf("rig did not quiesce in %d cycles:\n%s\n%s",
		max, r.nodes[0].DebugString(), r.nodes[1].DebugString())
}

func halt() *isa.Program {
	b := isa.NewBuilder("halt")
	b.Halt()
	return b.MustBuild()
}

// idle never halts (a very long Delay), so the engine's halt latch stays
// clear and tests can drive the node's backend interface directly.
func idle() *isa.Program {
	b := isa.NewBuilder("idle")
	b.Delay(1 << 40)
	b.Halt()
	return b.MustBuild()
}

// TestCleaningWritebackPreservesPreSpecValue drives the §3.2 sequence
// directly: a non-speculative dirty value, then a speculative overwrite
// (forcing a cleaning writeback), then an abort. The pre-speculative value
// must be recovered.
func TestCleaningWritebackPreservesPreSpecValue(t *testing.T) {
	const addr = memtypes.Addr(0x1000)
	r := newRig(t, consistency.RMO, ifcore.DefaultSelective(consistency.RMO),
		[]*isa.Program{idle(), halt()})
	n0 := r.nodes[0]
	// Establish a non-speculative dirty line: a store that misses, fills,
	// and drains.
	if ok, _ := n0.RetireStore(isa.St, addr, 7); !ok {
		t.Fatal("setup store rejected")
	}
	for i := 0; i < 500 && n0.SBOccupancy() > 0; i++ {
		r.step(1)
	}
	line := n0.L1().Peek(addr)
	if line == nil || line.State != cache.Modified || line.Data[0] != 7 {
		t.Fatalf("setup failed: %+v (sb=%d)", line, n0.SBOccupancy())
	}

	// Begin speculation. Two speculative stores: one to the dirty block
	// (forcing a cleaning writeback) and one to a remote block whose long
	// miss keeps the buffer non-empty, blocking the opportunistic commit
	// so the speculative bits stay observable.
	eng := n0.Engine()
	eng.Begin()
	epoch := eng.YoungestEpoch()
	const remote = memtypes.Addr(0x9040)
	if ok, _ := n0.RetireStore(isa.St, addr, 9); !ok {
		t.Fatal("speculative store rejected")
	}
	if ok, _ := n0.RetireStore(isa.St, remote, 3); !ok {
		t.Fatal("remote speculative store rejected")
	}
	// The store must wait in the buffer while the cleaning writeback runs.
	if n0.SBOccupancy() == 0 {
		t.Fatal("store bypassed the buffer during cleaning")
	}
	r.step(30) // cleaning completes and the local store drains
	if !eng.Speculating() {
		t.Fatal("speculation committed despite the outstanding remote store")
	}
	line = n0.L1().Peek(addr)
	if line == nil || !line.SpecWritten[epoch] || line.Data[0] != 9 {
		t.Fatalf("speculative value not in L1: %+v", line)
	}
	l2line := n0.L2().Peek(addr)
	if l2line == nil || l2line.Data[0] != 7 || l2line.State != cache.Modified {
		t.Fatalf("cleaning writeback missing: L2 %+v", l2line)
	}
	if n0.CleaningWBs == 0 {
		t.Fatal("cleaning writeback not counted")
	}

	// Abort: the L1 speculative line is flash-invalidated and the value
	// reverts to the pre-speculative 7 from the L2.
	eng.AbortAll()
	if l := n0.L1().Peek(addr); l != nil {
		t.Fatalf("speculatively-written line survived abort: %+v", l)
	}
	if got := n0.L2().Peek(addr).Data[0]; got != 7 {
		t.Fatalf("pre-speculative value lost: %d", got)
	}
	if n0.SBOccupancy() != 0 {
		t.Fatal("speculative buffer entries survived abort")
	}
}

// TestCommitMakesSpeculativeStoreVisible: commit flash-clears the bits and
// the value becomes ordinary dirty state.
func TestCommitMakesSpeculativeStoreVisible(t *testing.T) {
	const addr = memtypes.Addr(0x2000)
	r := newRig(t, consistency.RMO, ifcore.DefaultSelective(consistency.RMO),
		[]*isa.Program{idle(), halt()})
	n0 := r.nodes[0]
	if ok, _ := n0.RetireStore(isa.St, addr, 1); !ok {
		t.Fatal("setup store rejected")
	}
	for i := 0; i < 500 && n0.SBOccupancy() > 0; i++ {
		r.step(1)
	}
	eng := n0.Engine()
	eng.Begin()
	if ok, _ := n0.RetireStore(isa.St, addr, 2); !ok {
		t.Fatal("spec store failed")
	}
	// The cleaning writeback runs, the store drains, and the engine's
	// opportunistic commit fires the moment the buffer is empty.
	for i := 0; i < 300 && eng.Speculating(); i++ {
		r.step(1)
	}
	if eng.Speculating() {
		t.Fatalf("no opportunistic commit (sb=%d)", n0.SBOccupancy())
	}
	line := n0.L1().Peek(addr)
	if line == nil || line.SpecAny() || line.Data[0] != 2 || line.State != cache.Modified {
		t.Fatalf("committed state wrong: %+v", line)
	}
}

// TestEvictionForcesCommitOrAbort: filling a set whose ways are all
// speculative must not evict speculative state — the engine resolves the
// pressure with a forced commit or an abort.
func TestEvictionForcesCommitOrAbort(t *testing.T) {
	r := newRig(t, consistency.RMO, ifcore.DefaultSelective(consistency.RMO),
		[]*isa.Program{idle(), halt()})
	n0 := r.nodes[0]
	eng := n0.Engine()
	// L1: 4KB, 2 ways, 64B blocks -> 32 sets; set stride = 2KB.
	setStride := memtypes.Addr(32 * memtypes.BlockBytes)
	a0, a1, a2 := memtypes.Addr(0x8000), memtypes.Addr(0x8000)+setStride, memtypes.Addr(0x8000)+2*setStride

	// Warm both ways of the set.
	n0.StartLoad(1, a0)
	n0.StartLoad(2, a1)
	for i := 0; i < 400 && (n0.L1().Peek(a0) == nil || n0.L1().Peek(a1) == nil); i++ {
		r.step(1)
	}
	if n0.L1().Peek(a0) == nil || n0.L1().Peek(a1) == nil {
		t.Fatal("warmup fills never arrived")
	}

	// Speculate, with a feeder keeping the store buffer non-empty so the
	// opportunistic commit cannot resolve the pressure for free.
	eng.Begin()
	y := eng.YoungestEpoch()
	n0.L1().MarkSpecRead(n0.L1().Peek(a0), y)
	n0.L1().MarkSpecRead(n0.L1().Peek(a1), y)
	feed := memtypes.Addr(0x20040)
	n0.RetireStore(isa.St, feed, 1)

	// A load to a third block of the same set forces the resolution.
	n0.StartLoad(3, a2)
	resolved := func() bool {
		return n0.Stats().ForcedCommits > 0 || n0.Stats().Aborts > 0
	}
	for i := 0; i < 1000 && !resolved(); i++ {
		if eng.Speculating() {
			// Keep the bits asserted and the buffer non-empty.
			if l := n0.L1().Peek(a0); l != nil {
				n0.L1().MarkSpecRead(l, y)
			}
			if l := n0.L1().Peek(a1); l != nil {
				n0.L1().MarkSpecRead(l, y)
			}
			if n0.SBOccupancy() == 0 {
				feed += memtypes.Addr(memtypes.BlockBytes)
				n0.RetireStore(isa.St, feed, 1)
			}
		}
		r.step(1)
	}
	if !resolved() {
		t.Fatalf("neither forced commit nor abort resolved the speculative set (a2 present=%v)",
			n0.L1().Peek(a2) != nil)
	}
}

// TestProbeAbortsSpeculativeReader: an external write to a speculatively
// read line aborts the reader (the §3.2 violation rule).
func TestProbeAbortsSpeculativeReader(t *testing.T) {
	const addr = memtypes.Addr(0x3000)
	r := newRig(t, consistency.RMO, ifcore.DefaultSelective(consistency.RMO),
		[]*isa.Program{idle(), idle()})
	n0, n1 := r.nodes[0], r.nodes[1]

	// Warm the line into node 0.
	n0.StartLoad(1, addr)
	for i := 0; i < 300 && n0.L1().Peek(addr) == nil; i++ {
		r.step(1)
	}
	line := n0.L1().Peek(addr)
	if line == nil {
		t.Fatal("read line never arrived")
	}
	// Begin a speculation that cannot commit yet (a pending remote store
	// keeps the buffer non-empty) and mark the line speculatively read.
	eng := n0.Engine()
	eng.Begin()
	if ok, _ := n0.RetireStore(isa.St, memtypes.Addr(0x9040), 3); !ok {
		t.Fatal("blocker store rejected")
	}
	n0.L1().MarkSpecRead(line, eng.YoungestEpoch())

	// Node 1 writes the speculatively-read block: its GetX must abort
	// node 0's speculation.
	if ok, _ := n1.RetireStore(isa.St, addr, 9); !ok {
		t.Fatal("writer store rejected")
	}
	abortsBefore := n0.Stats().Aborts
	for i := 0; i < 3000 && n0.Stats().Aborts == abortsBefore; i++ {
		r.step(1)
	}
	if n0.Stats().Aborts == abortsBefore {
		t.Fatal("external write to a speculatively-read line did not abort")
	}
}

// TestUsesFIFOSB checks the Figure 2 buffer selection.
func TestUsesFIFOSB(t *testing.T) {
	mk := func(m consistency.Model, mode ifcore.Mode) Config {
		return Config{Model: m, Engine: ifcore.Config{Mode: mode, Model: m}}
	}
	if c := mk(consistency.SC, ifcore.ModeOff); !c.UsesFIFOSB() {
		t.Fatal("conventional SC must use the FIFO buffer")
	}
	if c := mk(consistency.RMO, ifcore.ModeOff); c.UsesFIFOSB() {
		t.Fatal("conventional RMO must use the coalescing buffer")
	}
	if c := mk(consistency.SC, ifcore.ModeSelective); c.UsesFIFOSB() {
		t.Fatal("InvisiFence always uses the coalescing buffer")
	}
}

// TestCoVDeferralEndsInCommit: with commit-on-violate, a conflicting probe
// is parked; when the speculation drains and commits within the window, the
// probe is served without any rollback (a "CoV save", §3.2).
func TestCoVDeferralEndsInCommit(t *testing.T) {
	const addr = memtypes.Addr(0x3000)
	eng := ifcore.DefaultSelective(consistency.RMO)
	eng.CoVTimeout = 4000
	r := newRig(t, consistency.RMO, eng, []*isa.Program{idle(), idle()})
	n0, n1 := r.nodes[0], r.nodes[1]

	// Node 0 speculatively writes addr (direct, line writable after warm).
	n0.StartLoad(1, addr)
	for i := 0; i < 300 && n0.L1().Peek(addr) == nil; i++ {
		r.step(1)
	}
	e := n0.Engine()
	e.Begin()
	if ok, _ := n0.RetireStore(isa.St, addr, 5); !ok {
		t.Fatal("spec store rejected")
	}
	// A remote blocker store delays the drain (and hence the commit) long
	// enough for node 1's probe to arrive and be deferred.
	if ok, _ := n0.RetireStore(isa.St, memtypes.Addr(0x9040), 3); !ok {
		t.Fatal("blocker rejected")
	}
	if ok, _ := n1.RetireStore(isa.St, addr, 9); !ok {
		t.Fatal("writer store rejected")
	}
	for i := 0; i < 5000 && n0.Stats().CoVSaves == 0 && n0.Stats().Aborts == 0; i++ {
		r.step(1)
	}
	if n0.Stats().CoVDeferrals == 0 {
		t.Fatal("probe was never deferred")
	}
	if n0.Stats().Aborts != 0 {
		t.Fatal("speculation aborted despite commit-on-violate")
	}
	if n0.Stats().CoVSaves == 0 {
		t.Fatal("deferral did not end in a commit")
	}
	// The writer eventually gets the committed value and applies its own.
	for i := 0; i < 3000 && n1.SBOccupancy() > 0; i++ {
		r.step(1)
	}
	if got := n1.L1().Peek(addr); got == nil || got.Data[0] != 9 {
		t.Fatalf("writer's store did not land after the save: %+v", got)
	}
}
