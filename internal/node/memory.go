package node

import (
	"invisifence/internal/cache"
	"invisifence/internal/coherence"
	"invisifence/internal/memtypes"
	"invisifence/internal/storebuffer"
)

// blockLocked reports whether a block's cache lines must not be evicted:
// an outstanding miss, pending store-buffer entries, or a cleaning
// writeback in progress all pin it.
func (n *Node) blockLocked(block memtypes.Addr) bool {
	if _, ok := n.mshrs[block]; ok {
		return true
	}
	if _, ok := n.cleanings[block]; ok {
		return true
	}
	if n.coalSB != nil && n.coalSB.HasBlock(block) {
		return true
	}
	if n.fifoSB != nil {
		if e := n.fifoSB.Head(); e != nil && memtypes.BlockAddr(e.Addr) == block {
			return true
		}
	}
	return false
}

func (n *Node) l1SetIndex(a memtypes.Addr) uint64 {
	return (uint64(a) >> memtypes.BlockShift) % uint64(n.l1.Sets())
}

// canAllocateFill enforces the per-set way-reservation rule that keeps
// fills deadlock-free: outstanding fills plus pinned lines in an L1 set may
// not exceed its associativity.
func (n *Node) canAllocateFill(block memtypes.Addr) bool {
	if len(n.mshrs) >= n.cfg.MSHRs {
		return false
	}
	return n.setPending[n.l1SetIndex(block)] < n.l1.Ways()
}

// allocMSHR creates and tracks a miss for block, reusing a recycled entry
// when one is free (the waiter slice keeps its capacity across reuse, so a
// steady miss stream allocates nothing). Callers must have checked
// canAllocateFill.
func (n *Node) allocMSHR(block memtypes.Addr, wantX bool) *mshrEntry {
	var m *mshrEntry
	if k := len(n.mshrFree); k > 0 {
		m = n.mshrFree[k-1]
		n.mshrFree = n.mshrFree[:k-1]
		w := m.waiters[:0]
		*m = mshrEntry{block: block, wantX: wantX, waiters: w}
	} else {
		m = &mshrEntry{block: block, wantX: wantX}
	}
	n.mshrs[block] = m
	n.mshrOrder = append(n.mshrOrder, m)
	n.setPending[n.l1SetIndex(block)]++
	return m
}

func (n *Node) freeMSHR(m *mshrEntry) {
	delete(n.mshrs, m.block)
	for i, e := range n.mshrOrder {
		if e == m {
			n.mshrOrder = append(n.mshrOrder[:i], n.mshrOrder[i+1:]...)
			break
		}
	}
	n.mshrFree = append(n.mshrFree, m)
	n.setPending[n.l1SetIndex(m.block)]--
	if n.cfg.FillHoldCycles > 0 && !m.prefetch {
		// Livelock avoidance: give the core a short exclusive window on
		// the freshly arrived line before external probes may take it.
		n.fillHold[m.block] = n.now + n.cfg.FillHoldCycles
		if len(n.fillHold) > 1024 {
			for b, until := range n.fillHold {
				if n.now >= until {
					delete(n.fillHold, b)
				}
			}
		}
	}
}

// issueRequests sends protocol requests for allocated-but-unsent MSHRs and
// decides between GetX and Upgrade by the local copy's state.
func (n *Node) issueRequests() {
	for _, m := range n.mshrOrder {
		if m.sent || m.fromL2 {
			continue
		}
		l2line := n.l2.Peek(m.block)
		switch {
		case !m.wantX:
			n.send(n.home(m.block), coherence.Msg{Kind: coherence.GetS, Addr: m.block})
		case l2line != nil && l2line.State == cache.Shared:
			m.upgrade = true
			n.send(n.home(m.block), coherence.Msg{Kind: coherence.Upgrade, Addr: m.block})
		default:
			n.send(n.home(m.block), coherence.Msg{Kind: coherence.GetX, Addr: m.block})
		}
		m.sent = true
	}
}

// requestBlock ensures a miss request is outstanding for block. wantX asks
// for write permission. It returns false if no MSHR could be allocated.
func (n *Node) requestBlock(block memtypes.Addr, wantX bool) bool {
	if m, ok := n.mshrs[block]; ok {
		// An upgrade of intent (S->X) while a GetS is in flight is handled
		// after the fill completes; the drain loop re-requests.
		_ = m
		return true
	}
	// Local L2 can serve misses that don't need an ownership change.
	l2line := n.l2.Peek(block)
	if l2line != nil && (l2line.State.Writable() || !wantX) {
		if !n.canAllocateFill(block) {
			return false
		}
		m := n.allocMSHR(block, wantX)
		m.fromL2 = true
		m.readyAt = n.now + n.l2.HitLatency()
		return true
	}
	if !n.canAllocateFill(block) {
		return false
	}
	n.allocMSHR(block, wantX)
	return true
}

// completeL2Serves finishes L2->L1 refills whose latency elapsed.
func (n *Node) completeL2Serves() {
	for i := 0; i < len(n.mshrOrder); i++ {
		m := n.mshrOrder[i]
		if !m.fromL2 || n.now < m.readyAt {
			continue
		}
		l2line := n.l2.Peek(m.block)
		if l2line == nil {
			// The L2 copy was invalidated while the refill was in flight
			// (external GetX). Fall back to a remote request.
			m.fromL2 = false
			m.sent = false
			continue
		}
		if m.wantX && !l2line.State.Writable() {
			m.fromL2 = false
			m.sent = false
			continue
		}
		st := cache.Shared
		if l2line.State.Writable() {
			st = cache.Exclusive
		}
		if !n.installL1(m.block, l2line.Data, st) {
			continue // retry next cycle (no victim yet)
		}
		n.L2HitFills++
		n.wakeWaiters(m)
		n.freeMSHR(m)
		i--
	}
}

// wakeWaiters delivers fill data to loads parked on the MSHR. In continuous
// mode the speculatively-read bit is set at fill (execution) time, §4.2.
func (n *Node) wakeWaiters(m *mshrEntry) {
	if len(m.waiters) == 0 {
		return
	}
	line := n.l1.Peek(m.block)
	n.invariantAddr(line != nil, "wake without L1 line", m.block)
	for _, w := range m.waiters {
		val := line.Data[memtypes.WordIndex(w.addr)]
		n.core.FillLoad(w.tag, val)
		n.markExecRead(line)
	}
	m.waiters = m.waiters[:0] // keep capacity: the entry recycles
}

// markExecRead sets the execution-time speculatively-read bit (continuous
// mode only; selective marks at retirement).
func (n *Node) markExecRead(line *cache.Line) {
	if n.engine.Continuous() {
		if y := n.engine.YoungestEpoch(); y >= 0 {
			n.l1.MarkSpecRead(line, y)
		}
	}
}

// installL1 places a block into the L1, evicting as needed. Returns false
// if no victim is available yet (caller retries next cycle).
func (n *Node) installL1(block memtypes.Addr, data memtypes.BlockData, st cache.LineState) bool {
	if line := n.l1.Peek(block); line != nil {
		// Refresh (e.g., GrantX upgrades handled elsewhere); keep data.
		return true
	}
	v := n.l1.VictimFiltered(block, false, n.blockLocked)
	if v == nil {
		// Every non-pinned way is speculative: the paper's
		// eviction-forces-commit rule. Commit if the store buffer has
		// drained; otherwise abort to guarantee forward progress.
		if !n.engine.TryCommitAllNow() {
			n.engine.AbortAll()
		}
		v = n.l1.VictimFiltered(block, false, n.blockLocked)
		if v == nil {
			return false
		}
	}
	if v.State.Valid() {
		n.evictL1Line(v)
	}
	n.l1.Install(v, block, data, st)
	return true
}

// evictL1Line removes a (non-speculative) line from the L1, merging dirty
// data into the L2 and replaying any in-window loads that consumed it.
func (n *Node) evictL1Line(v *cache.Line) {
	n.invariantAddr(!v.SpecAny(), "evicting speculative L1 line", v.Addr)
	addr := v.Addr
	if v.State == cache.Modified {
		l2line := n.l2.Peek(addr)
		n.invariantAddr(l2line != nil, "L1 dirty evict without L2 line (inclusion)", addr)
		l2line.Data = v.Data
		l2line.State = cache.Modified
	}
	n.l1.Invalidate(addr)
	if n.cfg.SnoopLQ {
		n.core.SnoopBlock(addr)
	}
}

// installL2 places a block into the L2 (and nothing else; L1 follows).
// Returns false if no victim is available yet.
func (n *Node) installL2(block memtypes.Addr, data memtypes.BlockData, st cache.LineState) bool {
	if line := n.l2.Peek(block); line != nil {
		line.Data = data
		line.State = st
		return true
	}
	v := n.l2.VictimFiltered(block, true, n.blockLocked)
	if v == nil {
		return false
	}
	if v.State.Valid() {
		if !n.evictL2Line(v) {
			return false
		}
	}
	n.l2.Install(v, block, data, st)
	return true
}

// evictL2Line evicts an L2 line: back-invalidates the L1 (inclusion),
// resolving speculative pins by commit-or-abort, and writes Exclusive/
// Modified blocks back to the home directory via the writeback buffer.
// Returns false if the eviction cannot proceed yet.
func (n *Node) evictL2Line(v *cache.Line) bool {
	addr := v.Addr
	if l1line := n.l1.Peek(addr); l1line != nil {
		if l1line.SpecAny() {
			if !n.engine.TryCommitAllNow() {
				n.engine.AbortAll()
			}
		}
		if l1line := n.l1.Peek(addr); l1line != nil {
			n.evictL1Line(l1line)
			// evictL1Line may have made v Modified (dirty merge).
		}
	}
	if _, busy := n.wbBuf[addr]; busy {
		// A previous writeback of this block is still awaiting its WBAck;
		// stall the eviction.
		return false
	}
	old, ok := n.l2.Invalidate(addr)
	n.invariantAddr(ok, "L2 evict of absent line", addr)
	switch old.State {
	case cache.Modified, cache.Exclusive:
		n.wbBuf[addr] = wbEntry{data: old.Data, dirty: old.State == cache.Modified}
		n.send(n.home(addr), coherence.Msg{
			Kind: coherence.PutX, Addr: addr,
			Data: old.Data, HasData: true,
			Dirty: old.State == cache.Modified,
		})
	case cache.Shared:
		// Silent drop; a stale Inv will be acked blindly.
	}
	return true
}

// startCleaning begins a cleaning writeback (§3.2): the first speculative
// store to a non-speculatively-dirty block pushes the pre-speculative value
// to the L2 so abort can recover it; the L1 line becomes Exclusive when the
// cleaning completes.
func (n *Node) startCleaning(block memtypes.Addr) {
	if _, ok := n.cleanings[block]; ok {
		return
	}
	n.cleanings[block] = n.now + n.l2.HitLatency()
	n.cleanList = append(n.cleanList, block)
	n.CleaningWBs++
	if coherence.TraceOn() {
		coherence.TraceEvent(n.now, block, "node%d startCleaning done=%d", n.id, n.cleanings[block])
	}
}

func (n *Node) completeCleanings() {
	if len(n.cleanList) == 0 {
		return
	}
	live := n.cleanList[:0]
	for _, block := range n.cleanList {
		done := n.cleanings[block]
		if n.now < done {
			live = append(live, block)
			continue
		}
		l1line := n.l1.Peek(block)
		applied := false
		if l1line != nil && l1line.State == cache.Modified && !l1line.SpecWrittenAny() {
			l2line := n.l2.Peek(block)
			n.invariantAddr(l2line != nil, "cleaning without L2 line", block)
			l2line.Data = l1line.Data
			l2line.State = cache.Modified
			l1line.State = cache.Exclusive
			applied = true
		}
		if coherence.TraceOn() {
			w0 := memtypes.Word(0)
			if l1line != nil {
				w0 = l1line.Data[0]
			}
			coherence.TraceEvent(n.now, block, "node%d completeCleaning applied=%v w0l1=%d", n.id, applied, w0)
		}
		delete(n.cleanings, block)
	}
	n.cleanList = live
}

// drainStoreBuffer writes eligible store-buffer entries into the L1 and
// requests ownership for the rest.
func (n *Node) drainStoreBuffer() {
	if n.fifoSB != nil {
		n.drainFIFO()
		return
	}
	n.drainCoalescing(0, 2, false)
}

// drainFIFO drains the word-granularity FIFO head in order and issues
// exclusive prefetches for upcoming entries (store prefetching, §6.1).
func (n *Node) drainFIFO() {
	if e := n.fifoSB.Head(); e != nil {
		block := memtypes.BlockAddr(e.Addr)
		line := n.l1.Peek(block)
		if line != nil && line.State.Writable() {
			line.Data[memtypes.WordIndex(e.Addr)] = e.Val
			line.State = cache.Modified
			n.fifoSB.Pop()
		} else {
			n.requestBlock(block, true)
		}
	}
	if n.cfg.StorePrefetchDepth > 0 && len(n.mshrs) < n.cfg.MSHRs-4 {
		for _, block := range n.fifoSB.PrefetchBlocks(n.cfg.StorePrefetchDepth) {
			if _, ok := n.mshrs[block]; ok {
				continue
			}
			if line := n.l1.Peek(block); line != nil && line.State.Writable() {
				continue
			}
			if n.requestBlock(block, true) {
				n.Prefetches++
			}
		}
	}
}

// drainCoalescing drains up to maxDrains eligible entries (all eligible
// entries for `block` if nonzero — the probe path's drain-before-respond).
// nonspecOnly restricts the drain to non-speculative entries: the probe
// path must never flush speculative stores into a line it is about to
// surrender (the speculative entry simply stays buffered and re-acquires
// ownership after the external request is served).
func (n *Node) drainCoalescing(block memtypes.Addr, maxDrains int, nonspecOnly bool) {
	drained := 0
	entries := n.coalSB.Entries()
	for i := 0; i < len(entries) && (maxDrains == 0 || drained < maxDrains); i++ {
		e := entries[i]
		if block != 0 && e.Block != block {
			continue
		}
		if nonspecOnly && e.Epoch != storebuffer.NonSpecEpoch {
			continue
		}
		if n.drainEntry(e) {
			drained++
			entries = n.coalSB.Entries()
			i--
		}
	}
}

// drainEntry attempts to write one coalescing-buffer entry into the L1.
func (n *Node) drainEntry(e *storebuffer.CoalescingEntry) bool {
	// Per-block age order: an older entry for the same block drains first.
	if !n.coalSB.IsOldestForBlock(e) {
		return false
	}
	line := n.l1.Peek(e.Block)
	if line == nil || !line.State.Writable() {
		// L1 may lack the block while the L2 owns it (L1 victim earlier).
		n.requestBlock(e.Block, true)
		return false
	}
	if _, cleaning := n.cleanings[e.Block]; cleaning {
		return false
	}
	spec := e.Epoch != storebuffer.NonSpecEpoch
	if spec {
		// Hold-back rule (§3.1): a younger epoch's store to a block written
		// by an older active epoch waits for the older commit.
		age := n.engine.EpochAge(e.Epoch)
		if age < 0 {
			// Its epoch is gone (aborted entries are flushed, committed
			// epochs drain first); treat as non-speculative remainder.
			spec = false
		} else {
			for _, older := range n.engine.ActiveEpochs()[:age] {
				if line.SpecWritten[older] {
					return false
				}
			}
		}
		// First speculative store to a non-speculatively-dirty block:
		// cleaning writeback first (§3.2).
		if coherence.TraceOn() {
			coherence.TraceEvent(n.now, e.Block, "node%d drainCheck epoch=%d spec=%v state=%v writtenAny=%v readAny=%v", n.id, e.Epoch, spec, line.State, line.SpecWrittenAny(), line.SpecReadAny())
		}
		if spec && line.State == cache.Modified && !line.SpecWrittenAny() {
			n.startCleaning(e.Block)
			return false
		}
	}
	for w := 0; w < memtypes.WordsPerBlock; w++ {
		if e.Valid[w] {
			line.Data[w] = e.Words[w]
		}
	}
	line.State = cache.Modified
	if spec {
		n.l1.MarkSpecWritten(line, e.Epoch)
	}
	if coherence.TraceOn() {
		coherence.TraceEvent(n.now, e.Block, "node%d drain entry epoch=%d w0=%d(valid=%v)", n.id, e.Epoch, e.Words[0], e.Valid[0])
	}
	n.coalSB.Remove(e)
	return true
}
