package node

import (
	"invisifence/internal/cache"
	"invisifence/internal/coherence"
	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/cpu"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
	"invisifence/internal/storebuffer"
)

// debugInertEngine disables speculation triggers (diagnostic bisect knob).
var DebugInertEngine = false

// ---------------------------------------------------------------------
// cpu.Backend: the load path.
// ---------------------------------------------------------------------

// StartLoad implements cpu.Backend. Value priority: post-retirement store
// buffer forwarding, then L1, then an outstanding-miss fill.
func (n *Node) StartLoad(tag uint64, addr memtypes.Addr) cpu.LoadResult {
	if n.fifoSB != nil {
		if v, ok := n.fifoSB.Forward(addr); ok {
			return cpu.LoadResult{Status: cpu.LoadForwarded, Value: v, ReadyAt: n.now + 1}
		}
	} else if v, ok := n.coalSB.Forward(addr); ok {
		return cpu.LoadResult{Status: cpu.LoadForwarded, Value: v, ReadyAt: n.now + 1}
	}
	block := memtypes.BlockAddr(addr)
	if line := n.l1.Lookup(addr); line != nil {
		n.markExecRead(line) // continuous mode marks at execution (§4.2)
		return cpu.LoadResult{
			Status:  cpu.LoadHit,
			Value:   line.Data[memtypes.WordIndex(addr)],
			ReadyAt: n.now + n.l1.HitLatency(),
		}
	}
	if m, ok := n.mshrs[block]; ok {
		m.waiters = append(m.waiters, loadWaiter{tag: tag, addr: addr})
		return cpu.LoadResult{Status: cpu.LoadMiss}
	}
	if !n.requestBlock(block, false) {
		return cpu.LoadResult{Status: cpu.LoadRetry}
	}
	n.mshrs[block].waiters = append(n.mshrs[block].waiters, loadWaiter{tag: tag, addr: addr})
	return cpu.LoadResult{Status: cpu.LoadMiss}
}

// ---------------------------------------------------------------------
// cpu.Backend: retirement policy (Figure 2 rules, Figure 4 triggers).
// ---------------------------------------------------------------------

// RetireLoad implements cpu.Backend. Acquiring loads (ld.acq) need no
// extra machinery: in-order retirement plus load-queue snooping already
// order a retired load before everything younger, which is exactly the
// acquire edge RC requires.
func (n *Node) RetireLoad(op isa.Op, addr memtypes.Addr, fromL1 bool) (bool, cpu.StallReason) {
	if n.engine.Speculating() {
		return n.retireSpecLoad(addr, fromL1)
	}
	rules := consistency.RulesFor(n.cfg.Model)
	if rules.LoadNeedsDrain && !n.sbEmpty() {
		// SC: a load may not retire past outstanding stores...
		if n.canTriggerSpeculationOn(trigLoad) {
			// ...unless InvisiFence speculates instead (§4.1).
			n.engine.Begin()
			return n.retireSpecLoad(addr, fromL1)
		}
		return false, cpu.StallSBDrain
	}
	return true, cpu.StallNone
}

// retireSpecLoad retires a load inside a speculation, marking the
// speculatively-read bit at retirement (selective/ASO; continuous marked at
// execution). Store-buffer-forwarded values need no bit: they are the
// core's own not-yet-visible stores, protected by the written state.
func (n *Node) retireSpecLoad(addr memtypes.Addr, fromL1 bool) (bool, cpu.StallReason) {
	if !fromL1 {
		return true, cpu.StallNone
	}
	line := n.l1.Peek(addr)
	if line == nil {
		// The line left the L1 between execution and retirement (racing
		// same-cycle eviction). Replay the load rather than retire a value
		// that is no longer protected.
		n.core.SnoopBlock(memtypes.BlockAddr(addr))
		return false, cpu.StallOther
	}
	// Selective/ASO mark at retirement (§4.1). Continuous marks at
	// execution (§4.2), but marking again here closes the gap for loads
	// that executed in the brief non-speculative window after an abort and
	// retire inside the next chunk.
	if y := n.engine.YoungestEpoch(); y >= 0 {
		n.l1.MarkSpecRead(line, y)
	}
	return true, cpu.StallNone
}

// triggerKind classifies the retirement stall that would start a
// speculation: which instruction class hit an ordering requirement.
type triggerKind uint8

const (
	trigLoad triggerKind = iota
	trigStore
	trigRelease // st.rel blocked on a store-buffer drain (RC)
	trigAtomic
	trigFence
)

// canTriggerSpeculationOn reports whether a checkpoint-based speculation
// may begin now at a stall of the given kind. Selective mode (and the ASO
// baseline) speculates at every ordering stall (Figure 4); Louvre-style
// versioned ordering opens a version epoch only at release boundaries and
// takes the conventional stall everywhere else.
func (n *Node) canTriggerSpeculationOn(k triggerKind) bool {
	if DebugInertEngine {
		return false
	}
	switch n.engine.Config().Mode {
	case ifcore.ModeSelective, ifcore.ModeASO:
	case ifcore.ModeLouvre:
		if k != trigRelease {
			return false
		}
	default:
		return false
	}
	return n.engine.CanBegin()
}

// RetireStore implements cpu.Backend.
func (n *Node) RetireStore(op isa.Op, addr memtypes.Addr, val memtypes.Word) (bool, cpu.StallReason) {
	if n.fifoSB != nil {
		// Conventional SC/TSO: word-granularity FIFO.
		if !n.fifoSB.Push(addr, val) {
			return false, cpu.StallSBFull
		}
		return true, cpu.StallNone
	}
	if n.engine.Speculating() {
		return n.retireSpecStore(addr, val)
	}
	// Not speculating, coalescing buffer. Under SC/TSO an unordered buffer
	// may not hold reordered stores: a store retiring with a non-empty
	// buffer triggers speculation (Figure 4's "store/atomic reorderings").
	switch n.cfg.Model {
	case consistency.SC, consistency.TSO:
		if !n.sbEmpty() {
			if n.canTriggerSpeculationOn(trigStore) {
				n.engine.Begin()
				return n.retireSpecStore(addr, val)
			}
			// Forward-progress grace window: wait for the drain.
			return false, cpu.StallSBDrain
		}
	case consistency.RC:
		// A releasing store may not become visible before any earlier
		// store: drain first — or speculate past the release (Invisi_rc's
		// selective trigger, Louvre's version-epoch open). Plain stores
		// coalesce freely.
		if op.IsRelease() && !n.sbEmpty() {
			if n.canTriggerSpeculationOn(trigRelease) {
				n.engine.Begin()
				return n.retireSpecStore(addr, val)
			}
			return false, cpu.StallSBDrain
		}
	}
	return n.retireNonSpecStore(addr, val)
}

// retireNonSpecStore is the baseline RMO path: store hits retire directly
// into the L1; misses coalesce in the store buffer.
//
// A store may only bypass the buffer if the buffer holds nothing for its
// block: buffered entries drain in age order, and a direct write jumping
// ahead of a buffered older store would later be overwritten by it.
func (n *Node) retireNonSpecStore(addr memtypes.Addr, val memtypes.Word) (bool, cpu.StallReason) {
	if coherence.TraceOn() {
		coherence.TraceEvent(n.now, addr, "node%d retireNonSpecStore val=%d", n.id, val)
	}
	block := memtypes.BlockAddr(addr)
	line := n.l1.Peek(addr)
	if line != nil && line.State.Writable() && !n.sbHasBlock(block) {
		if _, cleaning := n.cleanings[block]; !cleaning {
			line.Data[memtypes.WordIndex(addr)] = val
			line.State = cache.Modified
			return true, cpu.StallNone
		}
	}
	if !n.coalSB.Store(addr, val, storebuffer.NonSpecEpoch) {
		return false, cpu.StallSBFull
	}
	n.requestBlock(block, true)
	return true, cpu.StallNone
}

// sbHasBlock reports whether the coalescing buffer holds any entry (of any
// epoch class) for the block.
func (n *Node) sbHasBlock(block memtypes.Addr) bool {
	return n.coalSB.HasBlock(block)
}

// retireSpecStore is the §3.2 speculative store path.
func (n *Node) retireSpecStore(addr memtypes.Addr, val memtypes.Word) (bool, cpu.StallReason) {
	y := n.engine.YoungestEpoch()
	block := memtypes.BlockAddr(addr)
	line := n.l1.Peek(addr)
	_, cleaning := n.cleanings[block]

	if coherence.TraceOn() {
		coherence.TraceEvent(n.now, addr, "node%d retireSpecStore val=%d epoch=%d", n.id, val, y)
	}
	direct := false
	if line != nil && line.State.Writable() && !cleaning && !n.sbHasBlock(block) {
		// (The buffer must hold nothing for this block: a direct write
		// jumping ahead of a buffered older-epoch store would later be
		// overwritten when that entry drains.)
		if line.State == cache.Modified && !line.SpecWrittenAny() {
			// Non-speculatively dirty: the pre-speculative value must
			// survive abort. Clean-writeback in the background; the store
			// waits in the buffer meanwhile (§3.2).
			n.startCleaning(block)
		} else if n.heldByOlderEpoch(line, y) {
			// Written by an older in-flight checkpoint: hold in the buffer
			// until that checkpoint commits (§3.1).
		} else {
			direct = true
		}
	}
	if direct {
		if !n.engine.OnSpecStore() {
			return false, cpu.StallSBFull // ASO SSB full
		}
		line.Data[memtypes.WordIndex(addr)] = val
		line.State = cache.Modified
		n.l1.MarkSpecWritten(line, y)
		return true, cpu.StallNone
	}
	if !n.engine.OnSpecStore() {
		return false, cpu.StallSBFull
	}
	if !n.coalSB.Store(addr, val, y) {
		return false, cpu.StallSBFull
	}
	if line == nil || !line.State.Writable() {
		n.requestBlock(block, true)
	}
	return true, cpu.StallNone
}

// heldByOlderEpoch reports whether an older active checkpoint wrote this
// line.
func (n *Node) heldByOlderEpoch(line *cache.Line, y int) bool {
	for _, e := range n.engine.ActiveEpochs() {
		if e == y {
			return false
		}
		if line.SpecWritten[e] {
			return true
		}
	}
	return false
}

// RetireAtomic implements cpu.Backend: the conventional Figure 2 rules or
// the §3.2 load+store decomposition under speculation.
func (n *Node) RetireAtomic(op isa.Op, addr memtypes.Addr, opA, opB memtypes.Word) (bool, memtypes.Word, cpu.StallReason) {
	if n.engine.Speculating() {
		return n.retireSpecAtomic(op, addr, opA, opB)
	}
	rules := consistency.RulesFor(n.cfg.Model)
	if rules.AtomicNeedsDrain && !n.sbEmpty() {
		// SC/TSO (and RC, whose atomics are synchronization accesses):
		// drain before the atomic -- or speculate (Figure 4).
		if n.canTriggerSpeculationOn(trigAtomic) {
			n.engine.Begin()
			return n.retireSpecAtomic(op, addr, opA, opB)
		}
		return false, 0, cpu.StallSBDrain
	}
	line := n.l1.Peek(addr)
	if line == nil {
		n.requestBlock(memtypes.BlockAddr(addr), true)
		return false, 0, cpu.StallOther // data miss
	}
	if !line.State.Writable() {
		// Ownership wait ("complete store", Figure 2). Under RMO and RC
		// this is the Figure 4 atomic trigger.
		if (n.cfg.Model == consistency.RMO || n.cfg.Model == consistency.RC) &&
			n.canTriggerSpeculationOn(trigAtomic) {
			n.engine.Begin()
			return n.retireSpecAtomic(op, addr, opA, opB)
		}
		n.requestBlock(memtypes.BlockAddr(addr), true)
		return false, 0, cpu.StallSBDrain // atomic-induced ordering stall (Fig. 1)
	}
	if _, cleaning := n.cleanings[memtypes.BlockAddr(addr)]; cleaning {
		return false, 0, cpu.StallOther
	}
	if n.coalSB != nil && n.sbHasBlock(memtypes.BlockAddr(addr)) {
		// A buffered store to this block must drain first (RMO permits a
		// non-empty buffer at atomics); the direct RMW may not jump ahead
		// of it in the block's age order.
		return false, 0, cpu.StallSBDrain
	}
	wi := memtypes.WordIndex(addr)
	old := line.Data[wi]
	if nv, doWrite := cpu.AtomicApply(op, old, opA, opB); doWrite {
		line.Data[wi] = nv
		line.State = cache.Modified
	}
	return true, old, cpu.StallNone
}

// retireSpecAtomic treats the atomic as a load+store pair contained in one
// speculation (§3.2).
func (n *Node) retireSpecAtomic(op isa.Op, addr memtypes.Addr, opA, opB memtypes.Word) (bool, memtypes.Word, cpu.StallReason) {
	y := n.engine.YoungestEpoch()
	// Load half. Unlike a plain load, an atomic's read must stay adjacent
	// to its paired write in the global order, so it must always pin a
	// readable L1 copy with the speculatively-read bit — even when the
	// value itself forwards from the store buffer. Without the bit, a
	// remote write arriving between a buffered own-store and commit would
	// go undetected and break read-modify-write atomicity.
	line := n.l1.Peek(addr)
	if line == nil {
		n.requestBlock(memtypes.BlockAddr(addr), true)
		return false, 0, cpu.StallOther // need the data itself
	}
	var old memtypes.Word
	if v, ok := n.coalSB.Forward(addr); ok {
		old = v
	} else {
		old = line.Data[memtypes.WordIndex(addr)]
	}
	n.l1.MarkSpecRead(line, y)
	nv, doWrite := cpu.AtomicApply(op, old, opA, opB)
	if !doWrite {
		return true, old, cpu.StallNone // failed CAS: read-only
	}
	ok, why := n.retireSpecStore(addr, nv)
	if !ok {
		return false, 0, why
	}
	return true, old, cpu.StallNone
}

// RetireFence implements cpu.Backend: fences retire freely inside a
// speculation (§3.2); conventionally they drain the store buffer.
func (n *Node) RetireFence() (bool, cpu.StallReason) {
	if n.engine.Speculating() {
		return true, cpu.StallNone
	}
	if n.sbEmpty() {
		return true, cpu.StallNone
	}
	if n.canTriggerSpeculationOn(trigFence) {
		n.engine.Begin()
		return true, cpu.StallNone
	}
	return false, cpu.StallSBDrain
}

// OnRetireInstr implements cpu.Backend.
func (n *Node) OnRetireInstr() {
	n.st.Retired++
	n.engine.OnRetireInstr()
}

// ---------------------------------------------------------------------
// core.Host: machine-state primitives for the engine.
// ---------------------------------------------------------------------

// CaptureCheckpoint implements core.Host.
func (n *Node) CaptureCheckpoint() ([isa.NumRegs]memtypes.Word, int) {
	var regs [isa.NumRegs]memtypes.Word
	for r := 0; r < isa.NumRegs; r++ {
		regs[r] = n.core.ArchReg(isa.Reg(r))
	}
	if coherence.TraceOn() {
		coherence.TraceAlways(n.now, "node%d CHECKPOINT pc=%d r2=%d", n.id, n.core.ArchPC(), regs[2])
	}
	return regs, n.core.ArchPC()
}

// RestoreCheckpoint implements core.Host (the abort path's pipeline flush
// and register restore).
func (n *Node) restoreTrace(regs [isa.NumRegs]memtypes.Word, pc int) {
	if coherence.TraceOn() {
		coherence.TraceAlways(n.now, "node%d RESTORE pc=%d r2=%d", n.id, pc, regs[2])
	}
}

// RestoreCheckpoint implements core.Host (the abort path's pipeline flush
// and register restore).
func (n *Node) RestoreCheckpoint(regs [isa.NumRegs]memtypes.Word, pc int) {
	n.restoreTrace(regs, pc)
	n.core.FlushAll(regs, pc)
}

// FlashClearSpecBits implements core.Host (commit).
func (n *Node) FlashClearSpecBits(epoch int) {
	if coherence.TraceOn() {
		coherence.TraceAlways(n.now, "node%d COMMIT epoch=%d", n.id, epoch)
	}
	n.l1.FlashClearSpec(epoch)
}

// CondInvalidateSpec implements core.Host (abort).
func (n *Node) CondInvalidateSpec(epoch int) int {
	k := n.l1.ConditionalInvalidate(epoch)
	if coherence.TraceOn() {
		coherence.TraceAlways(n.now, "node%d ABORT epoch=%d invalidated=%d pc->%d", n.id, epoch, k, n.core.ArchPC())
	}
	return k
}

// SBFlashInvalidate implements core.Host (abort).
func (n *Node) SBFlashInvalidate(epoch int) int {
	if n.coalSB == nil {
		return 0
	}
	return n.coalSB.FlashInvalidateSpec(epoch)
}

// SBEpochDrained implements core.Host: the §3.2 commit condition. All
// stores prior to and within the epoch must have completed into the cache:
// no non-speculative entries, no entries of this epoch. (Entries of younger
// epochs may remain: the two-checkpoint case.)
func (n *Node) SBEpochDrained(epoch int) bool {
	if n.coalSB == nil {
		return true
	}
	if n.coalSB.CountEpoch(storebuffer.NonSpecEpoch) > 0 {
		return false
	}
	return n.coalSB.CountEpoch(epoch) == 0
}
