package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// runnerCases is the full consistency-implementation grid the parallel
// runner must be invisible on: every Figure 2 conventional model and every
// speculation policy.
var runnerCases = []struct {
	name  string
	model consistency.Model
	eng   ifcore.Config
}{
	{"conventional-sc", consistency.SC, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.SC}},
	{"conventional-tso", consistency.TSO, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.TSO}},
	{"conventional-rmo", consistency.RMO, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.RMO}},
	{"conventional-rc", consistency.RC, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.RC}},
	{"selective-sc", consistency.SC, ifcore.DefaultSelective(consistency.SC)},
	{"selective-rmo", consistency.RMO, ifcore.DefaultSelective(consistency.RMO)},
	{"selective-rc", consistency.RC, ifcore.DefaultSelective(consistency.RC)},
	{"louvre-rc", consistency.RC, ifcore.DefaultLouvre()},
	{"continuous", consistency.SC, ifcore.DefaultContinuous(false)},
	{"continuous-cov", consistency.SC, ifcore.DefaultContinuous(true)},
	{"aso", consistency.SC, ifcore.DefaultASO()},
}

// runWith runs the contended-program system under one runner selection.
func runWith(t *testing.T, model consistency.Model, eng ifcore.Config, mutate func(*Config)) Result {
	t.Helper()
	cfg := testConfig(2, 2, model, eng)
	mutate(&cfg)
	nnodes := cfg.Net.Width * cfg.Net.Height
	progs := make([]*isa.Program, nnodes)
	for i := range progs {
		progs[i] = programFor(model, i, nnodes)
	}
	s := New(cfg, progs, nil)
	res := s.Run()
	if !res.Finished {
		t.Fatalf("run did not finish (cycles=%d)", res.Cycles)
	}
	return res
}

// TestParallelBitExact proves the conservative parallel runner is invisible:
// for every consistency implementation, the full Result — cycles,
// retirement counts, the per-class cycle breakdown, per-node stats, and
// every event counter — is identical across the lock-step loop, the serial
// event-horizon loop, and the parallel runner at two cluster counts
// (including one that divides the nodes unevenly).
func TestParallelBitExact(t *testing.T) {
	for _, c := range runnerCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			lockstep := runWith(t, c.model, c.eng, func(cfg *Config) { cfg.DisableIdleSkip = true })
			skipped := runWith(t, c.model, c.eng, func(cfg *Config) {})
			par2 := runWith(t, c.model, c.eng, func(cfg *Config) { cfg.Clusters = 2 })
			par3 := runWith(t, c.model, c.eng, func(cfg *Config) { cfg.Clusters = 3 })
			if !reflect.DeepEqual(lockstep, skipped) {
				t.Errorf("idle-skip diverged from lock-step:\nlock-step: %+v\nidle-skip: %+v", lockstep, skipped)
			}
			if !reflect.DeepEqual(lockstep, par2) {
				t.Errorf("parallel(2) diverged from lock-step:\nlock-step: %+v\nparallel:  %+v", lockstep, par2)
			}
			if !reflect.DeepEqual(lockstep, par3) {
				t.Errorf("parallel(3) diverged from lock-step:\nlock-step: %+v\nparallel:  %+v", lockstep, par3)
			}
		})
	}
}

// TestParallelFallbacks pins the serial-fallback rules: cluster counts the
// node count cannot satisfy, DisableIdleSkip, and jitter all build a
// serial (unsharded) system, and a sharded system with a DebugHook takes
// the sharded lock-step loop (hook sees every cycle exactly once).
func TestParallelFallbacks(t *testing.T) {
	base := testConfig(2, 2, consistency.SC, offEngine(consistency.SC))
	for name, mutate := range map[string]func(*Config){
		"clusters-exceed-nodes": func(c *Config) { c.Clusters = 5 },
		"disable-idle-skip":     func(c *Config) { c.Clusters = 2; c.DisableIdleSkip = true },
		"jitter":                func(c *Config) { c.Clusters = 2; c.Net.Jitter = 3 },
		"one-cluster":           func(c *Config) { c.Clusters = 1 },
	} {
		cfg := base
		mutate(&cfg)
		nnodes := cfg.Net.Width * cfg.Net.Height
		if k := effectiveClusters(cfg, nnodes); k != 1 {
			t.Errorf("%s: effectiveClusters = %d, want 1 (serial fallback)", name, k)
		}
	}

	cfg := base
	cfg.Clusters = 2
	progs := make([]*isa.Program, 4)
	for i := range progs {
		progs[i] = contendedProgram(i, 4)
	}
	s := New(cfg, progs, nil)
	var hooks uint64
	var last uint64
	s.DebugHook = func(now uint64) {
		if now != last+1 {
			t.Fatalf("DebugHook skipped from %d to %d", last, now)
		}
		last = now
		hooks++
	}
	res := s.Run()
	if !res.Finished {
		t.Fatal("hooked sharded run did not finish")
	}
	if hooks != res.Cycles {
		t.Errorf("DebugHook ran %d times for %d cycles", hooks, res.Cycles)
	}
	want := runWith(t, consistency.SC, offEngine(consistency.SC), func(c *Config) { c.DisableIdleSkip = true })
	if !reflect.DeepEqual(want, res) {
		t.Errorf("sharded lock-step diverged from serial lock-step:\nserial:  %+v\nsharded: %+v", want, res)
	}
}

// TestParallelBitExactRandomPrograms is the seed-randomized equivalence
// sweep: for a fixed list of seeds (no wall-clock dependence anywhere),
// random multi-threaded programs must produce deeply-equal Results under
// the serial event-horizon loop and the parallel runner, across a mix of
// speculative and conventional implementations. MaxCycles truncation is
// exercised too (seeded runs that hit the bound must truncate at the same
// cycle with identical partial stats).
func TestParallelBitExactRandomPrograms(t *testing.T) {
	engines := []struct {
		name  string
		model consistency.Model
		eng   ifcore.Config
	}{
		{"sc", consistency.SC, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.SC}},
		{"invisi-sc", consistency.SC, ifcore.DefaultSelective(consistency.SC)},
		{"continuous-cov", consistency.SC, ifcore.DefaultContinuous(true)},
	}
	seeds := []int64{1, 7, 42, 1234, 99991}
	const cores = 4
	for _, seed := range seeds {
		rng := rand.New(rand.NewSource(seed))
		progs := make([]*isa.Program, cores)
		regInits := make([][isa.NumRegs]memtypes.Word, cores)
		for i := 0; i < cores; i++ {
			progs[i], regInits[i] = randomProgram(rng, i, memtypes.Addr(0x100000+i*0x10000))
		}
		for _, e := range engines {
			run := func(mutate func(*Config)) Result {
				cfg := testConfig(2, 2, e.model, e.eng)
				// Also pin MaxCycles truncation behavior on a subset of seeds.
				if seed%2 == 1 {
					cfg.MaxCycles = 30_000
				}
				mutate(&cfg)
				s := New(cfg, progs, regInits)
				return s.Run()
			}
			serial := run(func(*Config) {})
			par := run(func(c *Config) { c.Clusters = 2 })
			if !reflect.DeepEqual(serial, par) {
				t.Errorf("seed %d/%s: parallel diverged from serial:\nserial:   %+v\nparallel: %+v",
					seed, e.name, serial, par)
			}
		}
	}
}
