package sim

import (
	"reflect"
	"testing"

	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// contendedProgram builds a program that hammers shared state from every
// angle the consistency machinery cares about: a spin lock (CAS + fences),
// fetch-adds on a shared counter, private-array stores that fill the store
// buffer, and loads of the other threads' slots.
func contendedProgram(tid, threads int) *isa.Program {
	const (
		lockAddr  = 0x10000
		countAddr = 0x10040
		slotBase  = 0x20000
		privBase  = 0x40000
	)
	b := isa.NewBuilder("contend")
	if d := int64(tid * 7); d > 0 {
		b.Delay(d)
	}
	b.MovI(isa.R1, lockAddr)
	b.MovI(isa.R2, countAddr)
	b.MovI(isa.R3, slotBase+int64(tid)*memtypes.BlockBytes)
	b.MovI(isa.R4, privBase+int64(tid)*4096)
	b.MovI(isa.R5, 0) // loop counter
	b.MovI(isa.R6, 6) // iterations
	b.Label("iter")
	// Acquire the lock.
	b.Label("spin")
	b.MovI(isa.R7, 0)
	b.MovI(isa.R8, 1)
	b.Cas(isa.R9, isa.R1, 0, isa.R7, isa.R8)
	b.Bne(isa.R9, isa.R7, "spin")
	// Critical section: bump the shared counter, publish to our slot.
	b.Ld(isa.R10, isa.R2, 0)
	b.AddI(isa.R10, isa.R10, 1)
	b.St(isa.R2, 0, isa.R10)
	b.St(isa.R3, 0, isa.R10)
	b.Fence()
	// Release.
	b.MovI(isa.R7, 0)
	b.St(isa.R1, 0, isa.R7)
	// Non-critical work: a burst of private stores (store-buffer pressure)
	// and a read of a neighbour's slot (sharing misses).
	b.MovI(isa.R11, 0)
	b.MovI(isa.R12, 8)
	b.Label("burst")
	b.ShlI(isa.R13, isa.R11, 6)
	b.Add(isa.R13, isa.R13, isa.R4)
	b.St(isa.R13, 0, isa.R11)
	b.AddI(isa.R11, isa.R11, 1)
	b.Bltu(isa.R11, isa.R12, "burst")
	b.MovI(isa.R14, slotBase+int64((tid+1)%threads)*memtypes.BlockBytes)
	b.Ld(isa.R15, isa.R14, 0)
	// Shared fetch-add outside the lock.
	b.MovI(isa.R8, 1)
	b.Fadd(isa.R9, isa.R2, 8, isa.R8)
	b.AddI(isa.R5, isa.R5, 1)
	b.Bltu(isa.R5, isa.R6, "iter")
	b.Halt()
	return b.MustBuild()
}

// rcContendedProgram is contendedProgram specialized to release
// consistency: the lock's test load and the release store carry their
// ordering as ld.acq / st.rel annotations, with no standalone fences.
// Every RC-specific backend path is exercised — the release drain-or-
// trigger stall, the structural acquire, and the draining atomics.
func rcContendedProgram(tid, threads int) *isa.Program {
	const (
		lockAddr  = 0x10000
		countAddr = 0x10040
		slotBase  = 0x20000
		privBase  = 0x40000
	)
	b := isa.NewBuilder("contend-rc")
	if d := int64(tid * 7); d > 0 {
		b.Delay(d)
	}
	b.MovI(isa.R1, lockAddr)
	b.MovI(isa.R2, countAddr)
	b.MovI(isa.R3, slotBase+int64(tid)*memtypes.BlockBytes)
	b.MovI(isa.R4, privBase+int64(tid)*4096)
	b.MovI(isa.R5, 0) // loop counter
	b.MovI(isa.R6, 6) // iterations
	b.Label("iter")
	// Acquire the lock (ld.acq test, CAS set).
	b.Label("spin")
	b.MovI(isa.R7, 0)
	b.MovI(isa.R8, 1)
	b.LdAcq(isa.R9, isa.R1, 0)
	b.Bne(isa.R9, isa.R7, "spin")
	b.Cas(isa.R9, isa.R1, 0, isa.R7, isa.R8)
	b.Bne(isa.R9, isa.R7, "spin")
	// Critical section: bump the shared counter, publish to our slot.
	b.Ld(isa.R10, isa.R2, 0)
	b.AddI(isa.R10, isa.R10, 1)
	b.St(isa.R2, 0, isa.R10)
	b.St(isa.R3, 0, isa.R10)
	// Release: the lock-clearing store carries the ordering.
	b.MovI(isa.R7, 0)
	b.StRel(isa.R1, 0, isa.R7)
	// Non-critical work: a burst of private stores (store-buffer pressure,
	// release-drain latency) and a read of a neighbour's slot.
	b.MovI(isa.R11, 0)
	b.MovI(isa.R12, 8)
	b.Label("burst")
	b.ShlI(isa.R13, isa.R11, 6)
	b.Add(isa.R13, isa.R13, isa.R4)
	b.St(isa.R13, 0, isa.R11)
	b.AddI(isa.R11, isa.R11, 1)
	b.Bltu(isa.R11, isa.R12, "burst")
	b.MovI(isa.R14, slotBase+int64((tid+1)%threads)*memtypes.BlockBytes)
	b.Ld(isa.R15, isa.R14, 0)
	// Shared fetch-add outside the lock (drains under RC).
	b.MovI(isa.R8, 1)
	b.Fadd(isa.R9, isa.R2, 8, isa.R8)
	b.AddI(isa.R5, isa.R5, 1)
	b.Bltu(isa.R5, isa.R6, "iter")
	b.Halt()
	return b.MustBuild()
}

// programFor picks the contended program matching the model's sync idiom.
func programFor(model consistency.Model, tid, threads int) *isa.Program {
	if model == consistency.RC {
		return rcContendedProgram(tid, threads)
	}
	return contendedProgram(tid, threads)
}

// runBoth runs the same system twice — lock-step and idle-skip — and
// returns both results.
func runBoth(t *testing.T, model consistency.Model, eng ifcore.Config) (lockstep, skipped Result) {
	t.Helper()
	run := func(disable bool) Result {
		cfg := testConfig(2, 2, model, eng)
		cfg.DisableIdleSkip = disable
		nnodes := cfg.Net.Width * cfg.Net.Height
		progs := make([]*isa.Program, nnodes)
		for i := range progs {
			progs[i] = programFor(model, i, nnodes)
		}
		s := New(cfg, progs, nil)
		res := s.Run()
		if !res.Finished {
			t.Fatalf("run (disableIdleSkip=%v) did not finish", disable)
		}
		return res
	}
	return run(true), run(false)
}

// TestIdleSkipBitExact proves the event-horizon scheduler is invisible: for
// every consistency implementation, the full Result — cycles, retirement
// counts, the per-class cycle breakdown, per-node stats, and every event
// counter — is identical whether the simulator ticks every cycle or jumps
// the clock between events.
func TestIdleSkipBitExact(t *testing.T) {
	cases := []struct {
		name  string
		model consistency.Model
		eng   ifcore.Config
	}{
		{"conventional-sc", consistency.SC, offEngine(consistency.SC)},
		{"conventional-tso", consistency.TSO, offEngine(consistency.TSO)},
		{"conventional-rmo", consistency.RMO, offEngine(consistency.RMO)},
		{"conventional-rc", consistency.RC, offEngine(consistency.RC)},
		{"selective-sc", consistency.SC, ifcore.DefaultSelective(consistency.SC)},
		{"selective-rmo", consistency.RMO, ifcore.DefaultSelective(consistency.RMO)},
		{"selective-rc", consistency.RC, ifcore.DefaultSelective(consistency.RC)},
		{"louvre-rc", consistency.RC, ifcore.DefaultLouvre()},
		{"continuous", consistency.SC, ifcore.DefaultContinuous(false)},
		{"continuous-cov", consistency.SC, ifcore.DefaultContinuous(true)},
		{"aso", consistency.SC, ifcore.DefaultASO()},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			lockstep, skipped := runBoth(t, c.model, c.eng)
			if !reflect.DeepEqual(lockstep, skipped) {
				t.Errorf("idle-skip diverged from lock-step:\nlock-step: %+v\nidle-skip: %+v", lockstep, skipped)
			}
		})
	}
}

// TestIdleSkipNextEventSanity checks the horizon hints on a quiesced
// system: the network must report no in-flight events, and every node must
// report either no event or the conservative now+1 guard that follows a
// retiring cycle (the final Halt retired on the last ticked cycle).
func TestIdleSkipNextEventSanity(t *testing.T) {
	cfg := testConfig(2, 2, consistency.SC, offEngine(consistency.SC))
	nnodes := cfg.Net.Width * cfg.Net.Height
	progs := make([]*isa.Program, nnodes)
	for i := range progs {
		progs[i] = haltProgram()
	}
	s := New(cfg, progs, nil)
	res := s.Run()
	if !res.Finished {
		t.Fatal("halt-only system did not finish")
	}
	for i := 0; i < s.Nodes(); i++ {
		n := s.Node(i)
		e := n.NextEvent()
		if e != memtypes.NoEvent && !(n.Core().RetiredThisCycle > 0 && e == res.Cycles+1) {
			t.Errorf("quiesced node %d reports unexpected event at %d (cycles=%d)", i, e, res.Cycles)
		}
	}
	if e := s.net.NextEvent(); e != memtypes.NoEvent {
		t.Errorf("quiesced network still reports event at %d", e)
	}
}
