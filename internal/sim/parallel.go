// Conservative parallel in-run simulation: per-node local clocks, one
// goroutine per node cluster, epoch barriers at the torus lookahead.
//
// The contract (DESIGN.md §7, condensed):
//
//   - Nodes interact only through the network. The minimum latency between
//     nodes in different clusters — the lookahead L — bounds how far one
//     cluster's present can influence another's future: a message sent at
//     cycle t arrives no earlier than t+L. Link contention
//     (Config.Net.LinkBandwidth > 0) preserves the bound: injection-link
//     state is per source node, resolved inside the sender's shard at send
//     time — a cross-cluster send contends only at injection — and
//     queuing/serialization only ever delay delivery (DESIGN.md §10).
//   - Therefore, once every cluster has simulated through cycle E and
//     exchanged cross-cluster messages, each cluster can simulate
//     (E, E+L] independently: every message that can arrive in that window
//     is already in its shard's in-flight heap.
//   - Within its epoch a cluster runs an event loop with per-node local
//     clocks: a node ticks only at cycles where its cached NextEvent
//     horizon or an arriving message says it could change state; the
//     skipped node-cycles are replayed in bulk with SkipCycles before its
//     next tick, exactly as the serial idle-skip loop does system-wide.
//   - Termination must match the serial loops bit-exactly: the run ends at
//     the first cycle F at which every node reports Finished. A cluster
//     whose nodes are all finished pauses rather than simulating ahead
//     (cycles past F must never be simulated), and the coordinator resolves
//     the exact F with an iterative barrier protocol (see resolve).
//
// Determinism: between barriers, each cluster touches only its own nodes
// and shard; the coordinator touches shared state only while every worker
// is parked (channel-synchronized, so the race detector agrees). Message
// delivery order is a total order independent of exchange batching (see the
// ordering note in internal/network).
package sim

import (
	"fmt"

	"invisifence/internal/memtypes"
	"invisifence/internal/network"
	"invisifence/internal/node"
	"invisifence/internal/stats"
)

// cluster is one worker's slice of the machine: a contiguous run of nodes
// plus their network shard.
type cluster struct {
	idx   int
	shard *network.Network
	nodes []*node.Node
	ids   []network.NodeID

	// clock is the cluster's local clock: every owned node's state reflects
	// all cycles <= clock (ticked or provably idle). lastTick and horizon
	// are the per-node local clocks: lastTick[i] is the last cycle node i
	// actually ticked, horizon[i] its NextEvent hint cached at that tick
	// (absolute cycle, or memtypes.NoEvent). Cycles in (lastTick[i], clock]
	// are node i's lag, replayed in bulk via SkipCycles before its next
	// tick.
	clock    uint64
	lastTick []uint64
	horizon  []uint64

	// paused marks that the cluster stopped at pauseCycle because all its
	// nodes were Finished there and the coordinator had not yet proven the
	// run extends further (the endgame protocol).
	paused     bool
	pauseCycle uint64

	st stats.RunnerStats

	cmds chan clusterCmd
	done chan struct{}
}

// clusterCmd asks a worker to advance its cluster: simulate up to limit,
// pausing at the first cycle >= safe at which all its nodes are Finished.
// safe is the coordinator's guarantee that the serial loop would reach
// cycle safe (F >= safe), so pausing earlier is never necessary.
type clusterCmd struct{ safe, limit uint64 }

func newCluster(idx int, shard *network.Network, all []*node.Node, ids []int) *cluster {
	c := &cluster{
		idx:   idx,
		shard: shard,
		cmds:  make(chan clusterCmd),
		done:  make(chan struct{}),
	}
	for _, id := range ids {
		c.nodes = append(c.nodes, all[id])
		c.ids = append(c.ids, network.NodeID(id))
		c.lastTick = append(c.lastTick, 0)
		// Before its first tick every node is one fetch away from work.
		c.horizon = append(c.horizon, 1)
	}
	return c
}

// nextEventTime returns the earliest cycle at which anything in this
// cluster could change state: a node horizon or an in-flight delivery.
// Arrivals already sitting in an inbox force the owed node's horizon to
// lastTick+1, so they are covered by the horizon terms.
func (c *cluster) nextEventTime() uint64 {
	t := c.shard.NextEvent()
	for _, h := range c.horizon {
		if h < t {
			t = h
		}
	}
	return t
}

func (c *cluster) allFinished() bool {
	for _, n := range c.nodes {
		if !n.Finished() {
			return false
		}
	}
	return true
}

// advance simulates the cluster forward to limit under the pause rule: stop
// at the first cycle t >= safe at which every owned node is Finished —
// that cycle might be the whole run's finish F, and no node may ever be
// simulated past F. The event loop ticks only nodes whose horizon is due or
// whose inbox is non-empty; everyone else accrues lag.
func (c *cluster) advance(safe, limit uint64) {
	c.paused = false
	for {
		fin := c.allFinished()
		if fin && c.clock >= safe {
			c.paused = true
			c.pauseCycle = c.clock
			return
		}
		lim := limit
		if fin && safe < lim {
			// All nodes finished but the run is only proven to reach safe:
			// advance to safe (processing any arrivals on the way, which may
			// un-finish a node) and re-evaluate there.
			lim = safe
		}
		if c.clock >= lim {
			return
		}
		t := c.nextEventTime()
		if t > lim { // includes NoEvent
			c.clock = lim // provably-idle stretch: pure lag, no work
			continue
		}
		if t <= c.clock {
			panic(fmt.Sprintf("sim: cluster %d event horizon %d not beyond clock %d", c.idx, t, c.clock))
		}
		c.runCycle(t)
		c.clock = t
	}
}

// runCycle simulates exactly cycle t: deliver arrivals, then tick every due
// node (ascending node ID, matching the serial loops' order), replaying
// each ticked node's lag first.
func (c *cluster) runCycle(t uint64) {
	c.shard.Tick(t)
	for i, n := range c.nodes {
		if c.horizon[i] <= t || c.shard.InboxLen(c.ids[i]) > 0 {
			if gap := t - c.lastTick[i] - 1; gap > 0 {
				n.SkipCycles(gap)
				c.st.SkippedNodeCycles += gap
			}
			n.Tick(t)
			c.lastTick[i] = t
			c.horizon[i] = n.NextEvent()
			c.st.NodeTicks++
		}
	}
	c.st.SimulatedCycles++
}

// flushLag brings every node's accounting up to cycle "to" (all remaining
// lag is provably idle), aligning the cluster with what the serial loops
// would have ticked or skipped by then.
func (c *cluster) flushLag(to uint64) {
	for i, n := range c.nodes {
		if gap := to - c.lastTick[i]; gap > 0 {
			n.SkipCycles(gap)
			c.st.SkippedNodeCycles += gap
			c.lastTick[i] = to
		}
	}
	c.clock = to
}

// ---------------------------------------------------------------- runner

// runParallel is the coordinator: it drives the cluster workers through
// epochs of length lookahead, exchanges cross-shard messages at barriers,
// fast-forwards whole-system idle stretches, and resolves the exact finish
// cycle.
func (s *System) runParallel() Result {
	clusters := make([]*cluster, len(s.shards))
	for ci := range s.shards {
		clusters[ci] = newCluster(ci, s.shards[ci], s.nodes, s.clusterNodes[ci])
	}
	for _, c := range clusters {
		go func(c *cluster) {
			for cmd := range c.cmds {
				c.advance(cmd.safe, cmd.limit)
				c.done <- struct{}{}
			}
		}(c)
	}
	defer func() {
		for _, c := range clusters {
			close(c.cmds)
		}
		for _, c := range clusters {
			s.runnerStats.Merge(&c.st) // ascending cluster order: deterministic
		}
	}()

	lookahead := s.lookahead()
	var (
		epochEnd     uint64 // every cluster has simulated through epochEnd
		safe         uint64 // serial provably reaches this cycle (F >= safe)
		lastRetired  uint64
		lastProgress uint64
	)
	for {
		// Whole-system idle jump, mirroring the serial idle-skip bounds: the
		// clock may advance to one cycle before the global horizon, but never
		// across MaxCycles or the watchdog deadline. No node ticks, so no
		// Finished flag can change during the jumped stretch — the run
		// cannot end inside it.
		h := uint64(memtypes.NoEvent)
		for _, c := range clusters {
			if t := c.nextEventTime(); t < h {
				h = t
			}
		}
		if h != memtypes.NoEvent && h > epochEnd+1 {
			jump := h - 1
			if s.cfg.MaxCycles > 0 && jump > s.cfg.MaxCycles {
				jump = s.cfg.MaxCycles
			}
			if s.cfg.WatchdogCycles > 0 {
				if deadline := lastProgress + s.cfg.WatchdogCycles + 1; jump > deadline {
					jump = deadline
				}
			}
			if jump > epochEnd {
				clusters[0].st.IdleJumpCycles += jump - epochEnd
				for _, c := range clusters {
					c.clock = jump
				}
				epochEnd = jump
				if safe < epochEnd {
					safe = epochEnd
				}
			}
		}

		target := epochEnd + lookahead
		if s.cfg.MaxCycles > 0 && target > s.cfg.MaxCycles {
			target = s.cfg.MaxCycles
		}

		s.dispatch(clusters, safe, target)
		if res, end := s.resolve(clusters, &safe, target); end {
			return res
		}
		epochEnd = target
		clusters[0].st.Epochs++

		// Barrier exchange: move every cross-cluster message into the shard
		// that owns its destination. All of them arrive after target (the
		// lookahead guarantee), so injection precedes any cycle at which
		// they could be delivered.
		s.exchange()

		if s.cfg.MaxCycles > 0 && epochEnd >= s.cfg.MaxCycles {
			for _, c := range clusters {
				c.flushLag(epochEnd)
			}
			s.now = epochEnd
			return s.result(false)
		}
		if total := s.totalRetired(); total != lastRetired {
			lastRetired = total
			lastProgress = epochEnd
		} else if s.cfg.WatchdogCycles > 0 && epochEnd-lastProgress > s.cfg.WatchdogCycles {
			panic(fmt.Sprintf("sim: no retirement progress for %d cycles at cycle %d\n%s",
				s.cfg.WatchdogCycles, epochEnd, s.debugState()))
		}
	}
}

// dispatch runs advance(safe, limit) on every cluster in sel concurrently
// and waits for all of them (the barrier).
func (s *System) dispatch(sel []*cluster, safe, limit uint64) {
	for _, c := range sel {
		c.cmds <- clusterCmd{safe: safe, limit: limit}
	}
	for _, c := range sel {
		<-c.done
	}
}

// resolve runs the endgame protocol after an epoch's advance. The serial
// loops end at the first cycle F at which every node is Finished; here each
// cluster pauses at its own first all-finished cycle, and F — if it lies in
// this epoch — is the fixpoint of: take the maximum pause cycle F*, prove
// the run reaches it (every earlier cycle had an unfinished node in the
// cluster that paused at F*), let the clusters behind catch up to it, and
// repeat until either every cluster pauses at the same cycle (the run ends
// there) or some cluster passes the epoch end unfinished (the run
// continues; stragglers catch up to the epoch end).
func (s *System) resolve(clusters []*cluster, safe *uint64, target uint64) (Result, bool) {
	for {
		allPaused := true
		for _, c := range clusters {
			if !c.paused {
				allPaused = false
				break
			}
		}
		if !allPaused {
			// The run provably extends through target: catch stragglers up.
			*safe = target
			var behind []*cluster
			for _, c := range clusters {
				if c.paused && c.clock < target {
					behind = append(behind, c)
				}
			}
			if len(behind) > 0 {
				clusters[0].st.Resolutions++
				s.dispatch(behind, target, target)
			}
			for _, c := range clusters {
				c.paused = false
			}
			return Result{}, false
		}
		f := clusters[0].pauseCycle
		same := true
		for _, c := range clusters[1:] {
			if c.pauseCycle > f {
				f = c.pauseCycle
			}
			if c.pauseCycle != clusters[0].pauseCycle {
				same = false
			}
		}
		if same {
			// Every node Finished at f, and no cluster simulated past it:
			// this is exactly where the serial loops return.
			for _, c := range clusters {
				c.flushLag(f)
			}
			s.now = f
			return s.result(true), true
		}
		*safe = f
		var behind []*cluster
		for _, c := range clusters {
			if c.clock < f {
				behind = append(behind, c)
			}
		}
		clusters[0].st.Resolutions++
		s.dispatch(behind, f, target)
	}
}

// lookahead computes the epoch length: the minimum message latency between
// any two nodes in different clusters. Self-messages (LocalLatency) are
// always intra-cluster, so the bound is at least one torus hop.
func (s *System) lookahead() uint64 {
	la := uint64(memtypes.NoEvent)
	for ci, as := range s.clusterNodes {
		for cj, bs := range s.clusterNodes {
			if ci == cj {
				continue
			}
			for _, a := range as {
				for _, b := range bs {
					if l := s.shards[0].Latency(network.NodeID(a), network.NodeID(b)); l < la {
						la = l
					}
				}
			}
		}
	}
	if la == 0 || la == memtypes.NoEvent {
		la = 1
	}
	return la
}

// exchange drains every shard's outbox and injects each message into the
// shard owning its destination. Insertion order cannot affect delivery
// order (total ordering key), so a simple per-destination regrouping
// suffices.
func (s *System) exchange() {
	if s.xferScratch == nil {
		s.xferScratch = make([][]network.Message, len(s.shards))
	}
	for _, src := range s.shards {
		for _, m := range src.DrainOutbox() {
			c := s.clusterOf[int(m.Dst)]
			s.xferScratch[c] = append(s.xferScratch[c], m)
		}
	}
	for c, ms := range s.xferScratch {
		if len(ms) > 0 {
			s.shards[c].Inject(ms)
			s.xferScratch[c] = ms[:0]
		}
	}
}

// RunnerStats returns the parallel runner's merged telemetry for the
// completed run (zero for the serial runners). It is intentionally not part
// of Result: all runners must produce deeply-equal Results.
func (s *System) RunnerStats() stats.RunnerStats { return s.runnerStats }

// ----------------------------------------------------- sharded lock-step

// runLockstepSharded drives a clustered system with the naive per-cycle
// loop: tick every shard and node each cycle, exchange cross-shard messages
// at cycle end. It exists so per-cycle observation hooks (DebugHook,
// coherence tracing) keep their in-order, single-goroutine contract on
// clustered systems, and as a third oracle in the bit-exactness tests.
// Cross-shard messages sent at cycle t arrive at t+latency >= t+1, so an
// end-of-cycle exchange precedes every possible delivery.
func (s *System) runLockstepSharded() Result {
	var lastRetired uint64
	var lastProgress uint64
	for {
		s.now++
		for _, sh := range s.shards {
			sh.Tick(s.now)
		}
		for _, n := range s.nodes {
			n.Tick(s.now)
		}
		s.exchange()
		if res, done := s.cycleEpilogue(&lastRetired, &lastProgress); done {
			return res
		}
	}
}
