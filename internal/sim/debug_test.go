package sim

import (
	"testing"

	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// TestSpeculativeHaltRollback is a regression test for a subtle abort bug:
// a Halt that retires speculatively and is then rolled back must un-halt
// the core and the engine, or the rolled-back tail of the program is
// silently dropped (observed as lost lock-protected increments).
func TestSpeculativeHaltRollback(t *testing.T) {
	const n = 30
	lock := memtypes.Addr(0x5000)
	data := memtypes.Addr(0x5100)
	mk := func(fp isa.FencePolicy) *isa.Program {
		b := isa.NewBuilder("locked-inc")
		b.MovI(isa.R4, int64(lock))
		b.MovI(isa.R5, int64(data))
		b.MovI(isa.R2, 0)
		b.MovI(isa.R3, n)
		b.Label("loop")
		b.SpinLock(isa.R4, 0, isa.R10, isa.R11, fp)
		b.Ld(isa.R6, isa.R5, 0)
		b.AddI(isa.R6, isa.R6, 1)
		b.St(isa.R5, 0, isa.R6)
		b.SpinUnlock(isa.R4, 0, fp)
		b.AddI(isa.R2, isa.R2, 1)
		b.Bltu(isa.R2, isa.R3, "loop")
		b.Halt()
		return b.MustBuild()
	}
	// RMO selective hits the speculative-halt path reliably: the final
	// iterations run inside one deep speculation that a contending reader
	// aborts after the Halt has speculatively retired.
	cfg := testConfig(2, 2, consistency.RMO, ifcore.DefaultSelective(consistency.RMO))
	fp := isa.RMOFences
	progs := []*isa.Program{mk(fp), mk(fp), mk(fp), mk(fp)}
	s := New(cfg, progs, nil)
	res := s.Run()
	if !res.Finished {
		t.Fatalf("did not finish (cycles=%d)", res.Cycles)
	}
	if got := s.ReadWord(data); got != 4*n {
		t.Fatalf("data = %d, want %d", got, 4*n)
	}
}
