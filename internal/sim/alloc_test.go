package sim

import (
	"testing"

	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/isa"
)

// stepSystem hand-drives the serial lock-step cycle loop (network tick, then
// every node in ascending ID order — exactly runSerial's order) so the test
// can measure a bounded window of steady-state cycles in isolation.
func stepSystem(s *System, cycles int) {
	for i := 0; i < cycles; i++ {
		s.now++
		s.net.Tick(s.now)
		for _, n := range s.nodes {
			n.Tick(s.now)
		}
	}
}

// TestSteadyStateCycleAllocFree pins the devirtualized message path and the
// pooled directory/node/store-buffer state: after warm-up, simulating more
// cycles of a contended multi-node workload must not allocate at all — for
// the conventional SC configuration and for INVISIFENCE-SELECTIVE-SC, whose
// speculation paths (coalescing-buffer churn, cleaning writebacks, probe
// parking, abort/recovery) used to dominate the heap profile. A regression
// here means some per-message or per-transaction state went back on the
// heap.
func TestSteadyStateCycleAllocFree(t *testing.T) {
	cases := []struct {
		name  string
		model consistency.Model
		eng   ifcore.Config
	}{
		{"sc", consistency.SC, offEngine(consistency.SC)},
		{"invisi-sc", consistency.SC, ifcore.DefaultSelective(consistency.SC)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := testConfig(2, 2, c.model, c.eng)
			cfg.DisableIdleSkip = true // lock-step: every cycle exercises the full path
			nnodes := cfg.Net.Width * cfg.Net.Height
			progs := make([]*isa.Program, nnodes)
			for i := range progs {
				// Iterations far beyond the measured window so the cores
				// never halt inside it.
				progs[i] = contendedLoopProgram(i, nnodes, 1_000_000)
			}
			s := New(cfg, progs, nil)
			// Warm-up: reach every structure's high-water mark (queue and
			// pool capacities, map sizes, lazily materialized cache sets).
			stepSystem(s, 30_000)
			avg := testing.AllocsPerRun(20, func() {
				stepSystem(s, 250)
			})
			if avg != 0 {
				t.Fatalf("steady-state cycle stepping allocates: %.2f allocs per 250-cycle window", avg)
			}
		})
	}
}

// contendedLoopProgram is contendedProgram with a configurable iteration
// count: a spin lock, shared counters, store bursts, and neighbour reads.
func contendedLoopProgram(tid, threads int, iters int64) *isa.Program {
	const (
		lockAddr  = 0x10000
		countAddr = 0x10040
		slotBase  = 0x20000
		privBase  = 0x40000
	)
	b := isa.NewBuilder("contend-loop")
	if d := int64(tid * 7); d > 0 {
		b.Delay(d)
	}
	b.MovI(isa.R1, lockAddr)
	b.MovI(isa.R2, countAddr)
	b.MovI(isa.R3, slotBase+int64(tid)*64)
	b.MovI(isa.R4, privBase+int64(tid)*4096)
	b.MovI(isa.R5, 0)
	b.MovI(isa.R6, iters)
	b.Label("iter")
	b.Label("spin")
	b.MovI(isa.R7, 0)
	b.MovI(isa.R8, 1)
	b.Cas(isa.R9, isa.R1, 0, isa.R7, isa.R8)
	b.Bne(isa.R9, isa.R7, "spin")
	b.Ld(isa.R10, isa.R2, 0)
	b.AddI(isa.R10, isa.R10, 1)
	b.St(isa.R2, 0, isa.R10)
	b.St(isa.R3, 0, isa.R10)
	b.Fence()
	b.MovI(isa.R7, 0)
	b.St(isa.R1, 0, isa.R7)
	b.MovI(isa.R11, 0)
	b.MovI(isa.R12, 8)
	b.Label("burst")
	b.ShlI(isa.R13, isa.R11, 6)
	b.Add(isa.R13, isa.R13, isa.R4)
	b.St(isa.R13, 0, isa.R11)
	b.AddI(isa.R11, isa.R11, 1)
	b.Bltu(isa.R11, isa.R12, "burst")
	b.MovI(isa.R14, slotBase+int64((tid+1)%threads)*64)
	b.Ld(isa.R15, isa.R14, 0)
	b.MovI(isa.R8, 1)
	b.Fadd(isa.R9, isa.R2, 8, isa.R8)
	b.AddI(isa.R5, isa.R5, 1)
	b.Bltu(isa.R5, isa.R6, "iter")
	b.Halt()
	return b.MustBuild()
}
