package sim

import (
	"testing"

	"invisifence/internal/cache"
	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/cpu"
	"invisifence/internal/isa"
	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
	"invisifence/internal/node"
)

// testConfig builds a small, fast system for functional tests.
func testConfig(w, h int, model consistency.Model, eng ifcore.Config) Config {
	nc := node.Config{
		Model:              model,
		Engine:             eng,
		Core:               cpu.DefaultConfig(),
		L1:                 cache.Config{SizeBytes: 16 << 10, Ways: 2, HitLatency: 2, Name: "L1"},
		L2:                 cache.Config{SizeBytes: 128 << 10, Ways: 8, HitLatency: 12, Name: "L2"},
		Memory:             memctrl.Config{AccessLatency: 60, Banks: 8, BankBusy: 4},
		MSHRs:              16,
		SBCapacity:         64,
		StorePrefetchDepth: 4,
		SnoopLQ:            true,
		FillHoldCycles:     8,
	}
	if !nc.UsesFIFOSB() {
		nc.SBCapacity = 8
		if eng.MaxCheckpoints > 1 {
			nc.SBCapacity = 32
		}
	}
	return Config{
		Net:            network.Config{Width: w, Height: h, HopLatency: 10, LocalLatency: 1},
		Node:           nc,
		MaxCycles:      2_000_000,
		WatchdogCycles: 200_000,
	}
}

func offEngine(m consistency.Model) ifcore.Config {
	return ifcore.Config{Mode: ifcore.ModeOff, Model: m}
}

// haltProgram is a program that halts immediately (for idle nodes).
func haltProgram() *isa.Program {
	b := isa.NewBuilder("halt")
	b.Halt()
	return b.MustBuild()
}

func TestSingleCoreCompute(t *testing.T) {
	// Sum 1..100 with a loop, store the result, halt.
	b := isa.NewBuilder("sum")
	b.MovI(isa.R1, 0)   // sum
	b.MovI(isa.R2, 1)   // i
	b.MovI(isa.R3, 101) // bound
	b.MovI(isa.R4, 0x1000)
	b.Label("loop")
	b.Add(isa.R1, isa.R1, isa.R2)
	b.AddI(isa.R2, isa.R2, 1)
	b.Bltu(isa.R2, isa.R3, "loop")
	b.St(isa.R4, 0, isa.R1)
	b.Halt()
	prog := b.MustBuild()

	s := New(testConfig(1, 1, consistency.SC, offEngine(consistency.SC)), []*isa.Program{prog}, nil)
	res := s.Run()
	if !res.Finished {
		t.Fatalf("did not finish: %+v", res)
	}
	if got := s.ReadWord(0x1000); got != 5050 {
		t.Fatalf("sum = %d, want 5050", got)
	}
	if res.Retired == 0 {
		t.Fatal("nothing retired")
	}
}

func TestSingleCoreLoadStoreRoundTrip(t *testing.T) {
	// Write a table, read it back reversed, accumulate.
	b := isa.NewBuilder("table")
	base := int64(0x2000)
	b.MovI(isa.R4, base)
	b.MovI(isa.R2, 0)
	b.MovI(isa.R3, 64)
	b.Label("wr")
	b.ShlI(isa.R5, isa.R2, 3)
	b.Add(isa.R5, isa.R4, isa.R5)
	b.AddI(isa.R6, isa.R2, 7)
	b.St(isa.R5, 0, isa.R6)
	b.AddI(isa.R2, isa.R2, 1)
	b.Bltu(isa.R2, isa.R3, "wr")
	b.MovI(isa.R2, 0)
	b.MovI(isa.R7, 0) // sum
	b.Label("rd")
	b.ShlI(isa.R5, isa.R2, 3)
	b.Add(isa.R5, isa.R4, isa.R5)
	b.Ld(isa.R6, isa.R5, 0)
	b.Add(isa.R7, isa.R7, isa.R6)
	b.AddI(isa.R2, isa.R2, 1)
	b.Bltu(isa.R2, isa.R3, "rd")
	b.MovI(isa.R8, 0x3000)
	b.St(isa.R8, 0, isa.R7)
	b.Halt()
	prog := b.MustBuild()

	for _, model := range consistency.Models {
		s := New(testConfig(1, 1, model, offEngine(model)), []*isa.Program{prog}, nil)
		res := s.Run()
		if !res.Finished {
			t.Fatalf("%v: did not finish", model)
		}
		// sum of (i+7) for i in 0..63 = 64*7 + 2016 = 2464
		if got := s.ReadWord(0x3000); got != 2464 {
			t.Fatalf("%v: sum = %d, want 2464", model, got)
		}
	}
}

func TestTwoCoreSharedCounterAtomic(t *testing.T) {
	// Both cores fetch-add a shared counter N times; total must be 2N.
	const n = 50
	mk := func() *isa.Program {
		b := isa.NewBuilder("count")
		b.MovI(isa.R4, 0x4000)
		b.MovI(isa.R2, 0)
		b.MovI(isa.R3, n)
		b.MovI(isa.R5, 1)
		b.Label("loop")
		b.Fadd(isa.R6, isa.R4, 0, isa.R5)
		b.AddI(isa.R2, isa.R2, 1)
		b.Bltu(isa.R2, isa.R3, "loop")
		b.Halt()
		return b.MustBuild()
	}
	for _, model := range consistency.Models {
		s := New(testConfig(2, 1, model, offEngine(model)), []*isa.Program{mk(), mk()}, nil)
		res := s.Run()
		if !res.Finished {
			t.Fatalf("%v: did not finish", model)
		}
		if got := s.ReadWord(0x4000); got != 2*n {
			t.Fatalf("%v: counter = %d, want %d", model, got, 2*n)
		}
	}
}

func TestTwoCoreSpinlockInvariant(t *testing.T) {
	// Lock-protected read-modify-write without atomicity inside the
	// critical section: if mutual exclusion holds, no increments are lost.
	const n = 30
	lock := memtypes.Addr(0x5000)
	data := memtypes.Addr(0x5100)
	mk := func(fp isa.FencePolicy) *isa.Program {
		b := isa.NewBuilder("locked-inc")
		b.MovI(isa.R4, int64(lock))
		b.MovI(isa.R5, int64(data))
		b.MovI(isa.R2, 0)
		b.MovI(isa.R3, n)
		b.Label("loop")
		b.SpinLock(isa.R4, 0, isa.R10, isa.R11, fp)
		b.Ld(isa.R6, isa.R5, 0)
		b.AddI(isa.R6, isa.R6, 1)
		b.St(isa.R5, 0, isa.R6)
		b.SpinUnlock(isa.R4, 0, fp)
		b.AddI(isa.R2, isa.R2, 1)
		b.Bltu(isa.R2, isa.R3, "loop")
		b.Halt()
		return b.MustBuild()
	}
	configs := []struct {
		name  string
		model consistency.Model
		eng   ifcore.Config
	}{
		{"sc-conventional", consistency.SC, offEngine(consistency.SC)},
		{"tso-conventional", consistency.TSO, offEngine(consistency.TSO)},
		{"rmo-conventional", consistency.RMO, offEngine(consistency.RMO)},
		{"invisi-sc", consistency.SC, ifcore.DefaultSelective(consistency.SC)},
		{"invisi-tso", consistency.TSO, ifcore.DefaultSelective(consistency.TSO)},
		{"invisi-rmo", consistency.RMO, ifcore.DefaultSelective(consistency.RMO)},
		{"continuous", consistency.SC, ifcore.DefaultContinuous(false)},
		{"continuous-cov", consistency.SC, ifcore.DefaultContinuous(true)},
		{"aso", consistency.SC, ifcore.DefaultASO()},
	}
	for _, tc := range configs {
		t.Run(tc.name, func(t *testing.T) {
			fp := isa.NoFences
			if tc.model == consistency.RMO {
				fp = isa.RMOFences
			}
			progs := []*isa.Program{mk(fp), mk(fp), mk(fp), mk(fp)}
			s := New(testConfig(2, 2, tc.model, tc.eng), progs, nil)
			res := s.Run()
			if !res.Finished {
				t.Fatalf("did not finish (cycles=%d)", res.Cycles)
			}
			if got := s.ReadWord(data); got != 4*n {
				t.Fatalf("data = %d, want %d (lost updates => mutual exclusion or ordering broken)", got, 4*n)
			}
			if got := s.ReadWord(lock); got != 0 {
				t.Fatalf("lock left held: %d", got)
			}
		})
	}
}
