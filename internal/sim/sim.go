// Package sim assembles the full 16-node system of Figure 6 — cores, cache
// hierarchies, store buffers, directories, torus — and drives the
// deterministic cycle loop.
package sim

import (
	"fmt"

	"invisifence/internal/cache"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
	"invisifence/internal/node"
	"invisifence/internal/stats"
)

// Config describes a whole-system run.
type Config struct {
	Net  network.Config
	Node node.Config // template; ID is assigned per node
	// MaxCycles bounds the run (0 = unbounded).
	MaxCycles uint64
	// WatchdogCycles panics if no instruction retires anywhere for this
	// long (deadlock detector; 0 disables).
	WatchdogCycles uint64
	// DisableIdleSkip forces the naive lock-step loop that ticks every
	// cycle, instead of jumping the clock over provably-idle stretches.
	// Results are bit-exact either way; the flag exists so the bench
	// harness (cmd/bench) can measure the event-horizon scheduler's
	// speedup, and as a diagnostic bisect knob.
	DisableIdleSkip bool
}

// Result summarizes a completed run.
type Result struct {
	Cycles    uint64
	Finished  bool // all programs halted and quiesced
	Retired   uint64
	Breakdown stats.Breakdown
	PerNode   []*stats.NodeStats

	// SpecFraction is the Figure 10 metric aggregated over cores.
	SpecFraction float64

	// Aggregate event counters.
	Speculations, Commits, Aborts uint64
	CoVDeferrals, CoVSaves        uint64
	CleaningWBs, Prefetches       uint64
	L2HitFills, RemoteFills       uint64
	Mispredicts, Replays          uint64
}

// System is one assembled machine.
type System struct {
	cfg   Config
	net   *network.Network
	nodes []*node.Node
	now   uint64

	// DebugHook, when set, runs after every ticked cycle (diagnostics,
	// trace dumps). Skipped cycles do not invoke it.
	DebugHook func(now uint64)
}

// New builds the system. programs[i] runs on node i; regs[i] seeds its
// registers (thread id, argument pointers).
func New(cfg Config, programs []*isa.Program, regs [][isa.NumRegs]memtypes.Word) *System {
	nnodes := cfg.Net.Width * cfg.Net.Height
	if len(programs) != nnodes {
		panic(fmt.Sprintf("sim: %d programs for %d nodes", len(programs), nnodes))
	}
	net := network.New(cfg.Net)
	s := &System{cfg: cfg, net: net}
	for i := 0; i < nnodes; i++ {
		nc := cfg.Node
		nc.ID = network.NodeID(i)
		nc.Nodes = nnodes
		var r [isa.NumRegs]memtypes.Word
		if regs != nil {
			r = regs[i]
		}
		s.nodes = append(s.nodes, node.New(nc, net, programs[i], r))
	}
	return s
}

// Nodes returns the node count.
func (s *System) Nodes() int { return len(s.nodes) }

// Node returns node i (tests).
func (s *System) Node(i int) *node.Node { return s.nodes[i] }

// WriteWord initializes a word in memory at its home node. Call before Run.
func (s *System) WriteWord(a memtypes.Addr, v memtypes.Word) {
	home := int(a>>memtypes.BlockShift) % len(s.nodes)
	s.nodes[home].Memory().WriteWord(a, v)
}

// ReadWord returns the current coherent value of a word: the unique dirty
// cached copy if one exists, else home memory. Intended for post-run result
// validation on a quiesced system.
func (s *System) ReadWord(a memtypes.Addr) memtypes.Word {
	wi := memtypes.WordIndex(a)
	for _, n := range s.nodes {
		if l := n.L1().Peek(a); l != nil && l.State == cache.Modified {
			return l.Data[wi]
		}
	}
	for _, n := range s.nodes {
		if l := n.L2().Peek(a); l != nil && l.State == cache.Modified {
			return l.Data[wi]
		}
	}
	home := int(a>>memtypes.BlockShift) % len(s.nodes)
	return s.nodes[home].Memory().ReadWord(a)
}

// Run executes the cycle loop until every node quiesces (or limits hit).
//
// The loop is event-horizon scheduled: after ticking a cycle, every
// component (network, nodes, directories, cores, speculation engines) is
// asked for the earliest future cycle at which it could change state on its
// own. When that horizon is beyond the next cycle — the whole machine is
// waiting on memory accesses and in-flight messages — the clock jumps
// straight to it instead of spinning through idle cycles. Skipped cycles
// are provably state-preserving, so results are bit-exact against the
// naive lock-step loop (TestIdleSkipBitExact, TestGoldenResults).
func (s *System) Run() Result {
	var lastRetired uint64
	var lastProgress uint64
	for {
		s.now++
		s.net.Tick(s.now)
		for _, n := range s.nodes {
			n.Tick(s.now)
		}
		if s.DebugHook != nil {
			s.DebugHook(s.now)
		}
		done := true
		for _, n := range s.nodes {
			if !n.Finished() {
				done = false
				break
			}
		}
		if done {
			return s.result(true)
		}
		if s.cfg.MaxCycles > 0 && s.now >= s.cfg.MaxCycles {
			return s.result(false)
		}
		if s.cfg.WatchdogCycles > 0 {
			total := s.totalRetired()
			if total != lastRetired {
				lastRetired = total
				lastProgress = s.now
			} else if s.now-lastProgress > s.cfg.WatchdogCycles {
				panic(fmt.Sprintf("sim: no retirement progress for %d cycles at cycle %d\n%s",
					s.cfg.WatchdogCycles, s.now, s.debugState()))
			}
		}
		if !s.cfg.DisableIdleSkip {
			s.idleSkip(lastProgress)
		}
	}
}

// idleSkip jumps the clock to one cycle before the next event when every
// component reports no possible work until then. Per-cycle bookkeeping for
// the skipped stretch (cycle-class accounting, wrong-path fetch counters)
// is replayed in bulk by each node.
func (s *System) idleSkip(lastProgress uint64) {
	horizon := s.net.NextEvent()
	if horizon <= s.now+1 {
		return
	}
	for _, n := range s.nodes {
		e := n.NextEvent()
		if e <= s.now+1 {
			return
		}
		if e < horizon {
			horizon = e
		}
	}
	// Never jump past the run bounds: MaxCycles must truncate, and the
	// watchdog must fire, at exactly the same cycle as the lock-step loop.
	if s.cfg.MaxCycles > 0 && s.cfg.MaxCycles < horizon {
		horizon = s.cfg.MaxCycles
	}
	if s.cfg.WatchdogCycles > 0 {
		if deadline := lastProgress + s.cfg.WatchdogCycles + 1; deadline < horizon {
			horizon = deadline
		}
	}
	if horizon == memtypes.NoEvent {
		// A global quiescence failure with no bounds configured: spin like
		// the lock-step loop rather than inventing a termination cycle.
		return
	}
	if horizon <= s.now+1 {
		return
	}
	k := horizon - s.now - 1
	for _, n := range s.nodes {
		n.SkipCycles(k)
	}
	s.now += k
}

func (s *System) totalRetired() uint64 {
	var t uint64
	for _, n := range s.nodes {
		t += n.Core().Retired
	}
	return t
}

func (s *System) debugState() string {
	out := ""
	for i, n := range s.nodes {
		c := n.Core()
		out += fmt.Sprintf("node %d: halted=%v pc=%d rob=%d sb=%d retired=%d spec=%v\n",
			i, c.Halted(), c.ArchPC(), c.ROBOccupancy(), n.SBOccupancy(),
			c.Retired, n.Engine().Speculating())
	}
	return out
}

func (s *System) result(finished bool) Result {
	r := Result{
		Cycles:   s.now,
		Finished: finished,
	}
	var specCycles, totalCycles uint64
	for _, n := range s.nodes {
		st := n.Stats()
		r.PerNode = append(r.PerNode, st)
		r.Breakdown.Add(&st.Final)
		r.Retired += st.Retired
		specCycles += st.SpecCycles
		totalCycles += st.TotalCycles
		r.Speculations += st.Speculations
		r.Commits += st.Commits
		r.Aborts += st.Aborts
		r.CoVDeferrals += st.CoVDeferrals
		r.CoVSaves += st.CoVSaves
		r.CleaningWBs += n.CleaningWBs
		r.Prefetches += n.Prefetches
		r.L2HitFills += n.L2HitFills
		r.RemoteFills += n.RemoteFills
		r.Mispredicts += n.Core().Mispredicts
		r.Replays += n.Core().Replays
	}
	if totalCycles > 0 {
		r.SpecFraction = float64(specCycles) / float64(totalCycles)
	}
	return r
}
