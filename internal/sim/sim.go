// Package sim assembles the full 16-node system of Figure 6 — cores, cache
// hierarchies, store buffers, directories, torus — and drives the
// deterministic cycle loop.
package sim

import (
	"fmt"

	"invisifence/internal/cache"
	"invisifence/internal/coherence"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
	"invisifence/internal/node"
	"invisifence/internal/stats"
)

// Config describes a whole-system run.
type Config struct {
	Net  network.Config
	Node node.Config // template; ID is assigned per node
	// MaxCycles bounds the run (0 = unbounded).
	MaxCycles uint64
	// WatchdogCycles panics if no instruction retires anywhere for this
	// long (deadlock detector; 0 disables).
	WatchdogCycles uint64
	// DisableIdleSkip forces the naive lock-step loop that ticks every
	// cycle, instead of jumping the clock over provably-idle stretches.
	// Results are bit-exact either way; the flag exists so the bench
	// harness (cmd/bench) can measure the event-horizon scheduler's
	// speedup, and as a diagnostic bisect knob. It also disables the
	// parallel runner (Clusters), since that builds on the same horizons.
	DisableIdleSkip bool
	// Clusters >= 2 selects the conservative parallel runner: the torus is
	// partitioned into that many node clusters, each simulated by its own
	// goroutine over its own network shard with per-node local clocks,
	// synchronized at epoch barriers derived from the minimum cross-cluster
	// message latency (DESIGN.md §7). Results are bit-exact against both
	// serial loops (TestParallelBitExact). The runner falls back to the
	// serial loops when Clusters < 2, when the system has fewer nodes than
	// clusters, when DisableIdleSkip is set, or when the network uses
	// jitter (whose RNG is consumed in global send order that shards cannot
	// reproduce); setting DebugHook — or enabling coherence tracing — on a
	// clustered system selects the sharded lock-step loop, so per-cycle
	// observation hooks see every cycle in order from one goroutine.
	Clusters int
}

// Result summarizes a completed run.
type Result struct {
	Cycles    uint64
	Finished  bool // all programs halted and quiesced
	Retired   uint64
	Breakdown stats.Breakdown
	PerNode   []*stats.NodeStats

	// SpecFraction is the Figure 10 metric aggregated over cores.
	SpecFraction float64

	// Aggregate event counters.
	Speculations, Commits, Aborts uint64
	CoVDeferrals, CoVSaves        uint64
	CleaningWBs, Prefetches       uint64
	L2HitFills, RemoteFills       uint64
	Mispredicts, Replays          uint64

	// Net is the interconnect's link-contention telemetry (all-zero when
	// Config.Net.LinkBandwidth is 0). Unlike RunnerStats it is part of
	// Result because it is simulated machine state, deterministic across
	// all three runners: link reservations are per-source-node, so every
	// runner computes identical occupancy, and the per-shard counters
	// merge order-independently (stats.NetStats).
	Net stats.NetStats
}

// System is one assembled machine.
type System struct {
	cfg   Config
	net   *network.Network // whole torus; nil when the system is sharded
	nodes []*node.Node
	now   uint64

	// Sharded construction (Config.Clusters >= 2): shards[c] is cluster c's
	// network partition, clusterNodes[c] its node indices (ascending,
	// contiguous), and clusterOf[id] the owning cluster. Empty for serial
	// systems.
	shards       []*network.Network
	clusterNodes [][]int
	clusterOf    []int
	xferScratch  [][]network.Message // barrier-exchange regrouping buffers

	// runnerStats accumulates parallel-runner telemetry (kept out of Result
	// so all three runners produce deeply-equal Results).
	runnerStats stats.RunnerStats

	// DebugHook, when set, runs after every ticked cycle (diagnostics,
	// trace dumps). Skipped cycles do not invoke it. On a clustered system
	// it forces the sharded lock-step loop, so the hook observes every
	// cycle in order.
	DebugHook func(now uint64)
}

// effectiveClusters resolves Config.Clusters against the fallback rules
// documented on the field.
func effectiveClusters(cfg Config, nnodes int) int {
	k := cfg.Clusters
	if k < 2 || nnodes < k || cfg.DisableIdleSkip || cfg.Net.Jitter > 0 {
		return 1
	}
	return k
}

// New builds the system. programs[i] runs on node i; regs[i] seeds its
// registers (thread id, argument pointers).
func New(cfg Config, programs []*isa.Program, regs [][isa.NumRegs]memtypes.Word) *System {
	nnodes := cfg.Net.Width * cfg.Net.Height
	if len(programs) != nnodes {
		panic(fmt.Sprintf("sim: %d programs for %d nodes", len(programs), nnodes))
	}
	s := &System{cfg: cfg}
	k := effectiveClusters(cfg, nnodes)
	netFor := func(i int) *network.Network { return s.net }
	if k >= 2 {
		s.clusterNodes = partition(nnodes, k)
		s.clusterOf = make([]int, nnodes)
		for c, ids := range s.clusterNodes {
			owned := make([]bool, nnodes)
			for _, id := range ids {
				owned[id] = true
				s.clusterOf[id] = c
			}
			s.shards = append(s.shards, network.NewShard(cfg.Net, owned))
		}
		netFor = func(i int) *network.Network { return s.shards[s.clusterOf[i]] }
	} else {
		s.net = network.New(cfg.Net)
	}
	for i := 0; i < nnodes; i++ {
		nc := cfg.Node
		nc.ID = network.NodeID(i)
		nc.Nodes = nnodes
		var r [isa.NumRegs]memtypes.Word
		if regs != nil {
			r = regs[i]
		}
		s.nodes = append(s.nodes, node.New(nc, netFor(i), programs[i], r))
	}
	return s
}

// partition splits n node indices into k contiguous, balanced clusters. On
// the row-major torus, contiguous index ranges are whole rows (plus row
// fragments), so the minimum cross-cluster hop distance — the parallel
// runner's lookahead — stays at one hop rather than collapsing to zero
// (self-messages, the only sub-hop latency, are always intra-cluster).
func partition(n, k int) [][]int {
	base, rem := n/k, n%k
	out := make([][]int, 0, k)
	next := 0
	for c := 0; c < k; c++ {
		size := base
		if c < rem {
			size++
		}
		ids := make([]int, 0, size)
		for j := 0; j < size; j++ {
			ids = append(ids, next)
			next++
		}
		out = append(out, ids)
	}
	return out
}

// Nodes returns the node count.
func (s *System) Nodes() int { return len(s.nodes) }

// Node returns node i (tests).
func (s *System) Node(i int) *node.Node { return s.nodes[i] }

// WriteWord initializes a word in memory at its home node. Call before Run.
func (s *System) WriteWord(a memtypes.Addr, v memtypes.Word) {
	home := int(a>>memtypes.BlockShift) % len(s.nodes)
	s.nodes[home].Memory().WriteWord(a, v)
}

// ReadWord returns the current coherent value of a word: the unique dirty
// cached copy if one exists, else home memory. Intended for post-run result
// validation on a quiesced system.
func (s *System) ReadWord(a memtypes.Addr) memtypes.Word {
	wi := memtypes.WordIndex(a)
	for _, n := range s.nodes {
		if l := n.L1().Peek(a); l != nil && l.State == cache.Modified {
			return l.Data[wi]
		}
	}
	for _, n := range s.nodes {
		if l := n.L2().Peek(a); l != nil && l.State == cache.Modified {
			return l.Data[wi]
		}
	}
	home := int(a>>memtypes.BlockShift) % len(s.nodes)
	return s.nodes[home].Memory().ReadWord(a)
}

// Run executes the simulation until every node quiesces (or limits hit),
// selecting one of three bit-exact runners (DESIGN.md §6-§7):
//
//   - lock-step (DisableIdleSkip): tick every component every cycle;
//   - event-horizon serial (default): ask every component for the earliest
//     future cycle at which it could change state on its own, and jump the
//     clock over stretches in which the whole machine is provably idle;
//   - conservative parallel (Clusters >= 2): per-node local clocks, one
//     goroutine per node cluster over a network shard, epoch barriers at
//     the minimum cross-cluster latency.
//
// Skipped cycles are provably state-preserving, so all three produce
// deeply-equal Results (TestIdleSkipBitExact, TestParallelBitExact,
// TestGoldenResults).
func (s *System) Run() Result {
	if len(s.shards) > 0 {
		// Per-cycle observation hooks (DebugHook, coherence tracing) need
		// cycles in order from one goroutine; the sharded lock-step loop
		// keeps their contract on clustered systems.
		if s.DebugHook != nil || coherence.TraceAddr != 0 {
			return s.runLockstepSharded()
		}
		return s.runParallel()
	}
	return s.runSerial()
}

// runSerial is the single-threaded cycle loop: lock-step when
// DisableIdleSkip is set, event-horizon scheduled otherwise.
func (s *System) runSerial() Result {
	var lastRetired uint64
	var lastProgress uint64
	for {
		s.now++
		s.net.Tick(s.now)
		for _, n := range s.nodes {
			n.Tick(s.now)
		}
		if res, done := s.cycleEpilogue(&lastRetired, &lastProgress); done {
			return res
		}
		if !s.cfg.DisableIdleSkip {
			s.idleSkip(lastProgress)
		}
	}
}

// cycleEpilogue runs the per-cycle loops' shared end-of-cycle protocol —
// DebugHook, the all-finished check, MaxCycles truncation, and the
// retirement watchdog — returning (result, true) when the run ends this
// cycle. Both serial loops and the sharded lock-step loop share it so the
// termination semantics cannot drift apart (the three-runner bit-exactness
// contract pins them).
func (s *System) cycleEpilogue(lastRetired, lastProgress *uint64) (Result, bool) {
	if s.DebugHook != nil {
		s.DebugHook(s.now)
	}
	done := true
	for _, n := range s.nodes {
		if !n.Finished() {
			done = false
			break
		}
	}
	if done {
		return s.result(true), true
	}
	if s.cfg.MaxCycles > 0 && s.now >= s.cfg.MaxCycles {
		return s.result(false), true
	}
	if s.cfg.WatchdogCycles > 0 {
		total := s.totalRetired()
		if total != *lastRetired {
			*lastRetired = total
			*lastProgress = s.now
		} else if s.now-*lastProgress > s.cfg.WatchdogCycles {
			panic(fmt.Sprintf("sim: no retirement progress for %d cycles at cycle %d\n%s",
				s.cfg.WatchdogCycles, s.now, s.debugState()))
		}
	}
	return Result{}, false
}

// idleSkip jumps the clock to one cycle before the next event when every
// component reports no possible work until then. Per-cycle bookkeeping for
// the skipped stretch (cycle-class accounting, wrong-path fetch counters)
// is replayed in bulk by each node.
func (s *System) idleSkip(lastProgress uint64) {
	horizon := s.net.NextEvent()
	if horizon <= s.now+1 {
		return
	}
	for _, n := range s.nodes {
		e := n.NextEvent()
		if e <= s.now+1 {
			return
		}
		if e < horizon {
			horizon = e
		}
	}
	// Never jump past the run bounds: MaxCycles must truncate, and the
	// watchdog must fire, at exactly the same cycle as the lock-step loop.
	if s.cfg.MaxCycles > 0 && s.cfg.MaxCycles < horizon {
		horizon = s.cfg.MaxCycles
	}
	if s.cfg.WatchdogCycles > 0 {
		if deadline := lastProgress + s.cfg.WatchdogCycles + 1; deadline < horizon {
			horizon = deadline
		}
	}
	if horizon == memtypes.NoEvent {
		// A global quiescence failure with no bounds configured: spin like
		// the lock-step loop rather than inventing a termination cycle.
		return
	}
	if horizon <= s.now+1 {
		return
	}
	k := horizon - s.now - 1
	for _, n := range s.nodes {
		n.SkipCycles(k)
	}
	s.now += k
}

func (s *System) totalRetired() uint64 {
	var t uint64
	for _, n := range s.nodes {
		t += n.Core().Retired
	}
	return t
}

func (s *System) debugState() string {
	out := ""
	for i, n := range s.nodes {
		c := n.Core()
		out += fmt.Sprintf("node %d: halted=%v pc=%d rob=%d sb=%d retired=%d spec=%v\n",
			i, c.Halted(), c.ArchPC(), c.ROBOccupancy(), n.SBOccupancy(),
			c.Retired, n.Engine().Speculating())
	}
	return out
}

func (s *System) result(finished bool) Result {
	r := Result{
		Cycles:   s.now,
		Finished: finished,
	}
	if s.net != nil {
		r.Net = s.net.Contention
	} else {
		for _, sh := range s.shards { // ascending shard order; Merge is order-independent anyway
			r.Net.Merge(&sh.Contention)
		}
	}
	var specCycles, totalCycles uint64
	for _, n := range s.nodes {
		st := n.Stats()
		r.PerNode = append(r.PerNode, st)
		r.Breakdown.Add(&st.Final)
		r.Retired += st.Retired
		specCycles += st.SpecCycles
		totalCycles += st.TotalCycles
		r.Speculations += st.Speculations
		r.Commits += st.Commits
		r.Aborts += st.Aborts
		r.CoVDeferrals += st.CoVDeferrals
		r.CoVSaves += st.CoVSaves
		r.CleaningWBs += n.CleaningWBs
		r.Prefetches += n.Prefetches
		r.L2HitFills += n.L2HitFills
		r.RemoteFills += n.RemoteFills
		r.Mispredicts += n.Core().Mispredicts
		r.Replays += n.Core().Replays
	}
	if totalCycles > 0 {
		r.SpecFraction = float64(specCycles) / float64(totalCycles)
	}
	return r
}
