package sim

import (
	"reflect"
	"testing"
)

// TestParallelBitExactContention extends the three-runner bit-exactness
// contract to the link-contention model (DESIGN.md §10): with a finite
// LinkBandwidth, the lock-step loop, the serial event-horizon scheduler,
// and the parallel runner must still produce deeply-equal Results —
// including the new contention telemetry, which is simulated machine state.
// Injection-link state is per source node, so the conservative lookahead
// and the shard ordering rule are unaffected; this test is the executable
// form of that argument.
func TestParallelBitExactContention(t *testing.T) {
	for _, c := range runnerCases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			contended := func(cfg *Config) { cfg.Net.LinkBandwidth = 3 }
			lockstep := runWith(t, c.model, c.eng, func(cfg *Config) {
				contended(cfg)
				cfg.DisableIdleSkip = true
			})
			skipped := runWith(t, c.model, c.eng, contended)
			par2 := runWith(t, c.model, c.eng, func(cfg *Config) {
				contended(cfg)
				cfg.Clusters = 2
			})
			par3 := runWith(t, c.model, c.eng, func(cfg *Config) {
				contended(cfg)
				cfg.Clusters = 3
			})
			if !reflect.DeepEqual(lockstep, skipped) {
				t.Errorf("idle-skip diverged from lock-step under contention:\nlock-step: %+v\nidle-skip: %+v", lockstep, skipped)
			}
			if !reflect.DeepEqual(lockstep, par2) {
				t.Errorf("parallel(2) diverged from lock-step under contention:\nlock-step: %+v\nparallel:  %+v", lockstep, par2)
			}
			if !reflect.DeepEqual(lockstep, par3) {
				t.Errorf("parallel(3) diverged from lock-step under contention:\nlock-step: %+v\nparallel:  %+v", lockstep, par3)
			}
			// The run must actually exercise the model, or the equalities
			// above prove nothing.
			if lockstep.Net.Messages == 0 || lockstep.Net.QueuedMessages == 0 {
				t.Errorf("contention model not exercised: %+v", lockstep.Net)
			}

			// Bandwidth 0 is the latency-only torus: telemetry-free, and
			// bit-exact with a config that never mentions the knob.
			base := runWith(t, c.model, c.eng, func(cfg *Config) {})
			if base.Net.Messages != 0 {
				t.Errorf("latency-only run accumulated contention telemetry: %+v", base.Net)
			}
			// Queuing only ever delays messages, so a congested run cannot
			// finish faster than the latency-only one.
			if lockstep.Cycles < base.Cycles {
				t.Errorf("contended run finished in %d cycles, faster than latency-only %d", lockstep.Cycles, base.Cycles)
			}
		})
	}
}
