package sim

import (
	"reflect"
	"testing"

	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// specAtomicPressureProgram manufactures the buffer-blocked speculative
// atomic the head classifier must treat as a skippable wait: each iteration
// takes ownership of a hot shared block with a fetch-add, fills the
// coalescing store buffer with remote-miss stores (beginning a speculation
// on the second store under SC), then immediately retries atomics on the hot
// block — whose store half now stalls behind the full buffer (and a cleaning
// writeback) while the read bit is already marked. A never-matching CAS
// exercises the failed-CAS (read-only, never skippable) path, and the
// cross-thread fetch-adds produce ownership-miss waits and abort/recovery
// around the same block.
func specAtomicPressureProgram(tid, threads int) *isa.Program {
	const (
		hotAddr   = 0x30000
		atomBase  = 0x38000 // per-thread private atomic targets
		burstBase = 0x50000
	)
	b := isa.NewBuilder("spec-atomic-pressure")
	if d := int64(tid * 11); d > 0 {
		b.Delay(d)
	}
	b.MovI(isa.R1, hotAddr)
	b.MovI(isa.R2, atomBase+int64(tid)*memtypes.BlockBytes)
	b.MovI(isa.R4, burstBase+int64(tid)*8192)
	b.MovI(isa.R5, 0) // iteration counter
	b.MovI(isa.R6, 5) // iterations
	b.Label("iter")
	// Own the private atomic block (non-speculative when the buffer is
	// empty): its line stays resident and Modified.
	b.MovI(isa.R8, 1)
	b.Fadd(isa.R9, isa.R2, 0, isa.R8)
	// Exactly fill the 8-entry coalescing buffer with stores to distinct
	// mostly-remote blocks; under SC the second store begins a speculation,
	// and the entries drain only as their multi-hundred-cycle fills return.
	b.MovI(isa.R11, 0)
	b.MovI(isa.R12, 8)
	b.Label("burst")
	b.ShlI(isa.R13, isa.R11, 6)
	b.Add(isa.R13, isa.R13, isa.R4)
	b.St(isa.R13, 0, isa.R11)
	b.AddI(isa.R11, isa.R11, 1)
	b.Bltu(isa.R11, isa.R12, "burst")
	// Atomic on the resident private block while the buffer is full: the
	// first attempt marks the read bit and starts the cleaning writeback,
	// every later attempt is the buffer-blocked wait the classifier must
	// recognize.
	b.MovI(isa.R8, 1)
	b.Fadd(isa.R9, isa.R2, 0, isa.R8)
	// A CAS whose compare value can never match: retires read-only.
	b.MovI(isa.R7, 0xdead)
	b.MovI(isa.R8, 0xbeef)
	b.Cas(isa.R9, isa.R2, 0, isa.R7, isa.R8)
	// Contended atomic on the shared hot block: ownership misses, aborts,
	// and recovery around the same classifier.
	b.MovI(isa.R8, 1)
	b.Fadd(isa.R9, isa.R1, 0, isa.R8)
	b.AddI(isa.R5, isa.R5, 1)
	b.Bltu(isa.R5, isa.R6, "iter")
	b.Halt()
	return b.MustBuild()
}

// TestIdleSkipBitExactSpecAtomicPressure pins the speculative-atomic stall
// classification (cpu.HeadState operand plumbing + specAtomicStoreOutcome):
// the lock-step loop, the event-horizon serial scheduler, and the parallel
// runner must produce deeply-equal Results on a workload dominated by
// buffer-blocked speculative atomics. A misclassified wait (skipping an
// attempt that would have marked a bit, started a cleaning, counted a stall,
// or retired a failed CAS) diverges here.
func TestIdleSkipBitExactSpecAtomicPressure(t *testing.T) {
	run := func(disable bool, clusters int) Result {
		cfg := testConfig(2, 2, consistency.SC, ifcore.DefaultSelective(consistency.SC))
		cfg.DisableIdleSkip = disable
		cfg.Clusters = clusters
		nnodes := cfg.Net.Width * cfg.Net.Height
		progs := make([]*isa.Program, nnodes)
		for i := range progs {
			progs[i] = specAtomicPressureProgram(i, nnodes)
		}
		s := New(cfg, progs, nil)
		res := s.Run()
		if !res.Finished {
			t.Fatalf("run (disableIdleSkip=%v clusters=%d) did not finish", disable, clusters)
		}
		return res
	}
	lockstep := run(true, 0)
	skipped := run(false, 0)
	parallel := run(false, 2)
	if !reflect.DeepEqual(lockstep, skipped) {
		t.Errorf("idle-skip diverged from lock-step:\nlock-step: %+v\nidle-skip: %+v", lockstep, skipped)
	}
	if !reflect.DeepEqual(lockstep, parallel) {
		t.Errorf("parallel diverged from lock-step:\nlock-step: %+v\nparallel: %+v", lockstep, parallel)
	}
	// The workload must actually reach the classified path: speculation with
	// buffered stores and atomics retiring inside it.
	if lockstep.Speculations == 0 || lockstep.Retired == 0 {
		t.Fatalf("pressure program did not speculate (spec=%d)", lockstep.Speculations)
	}
}
