package sim

import (
	"fmt"
	"math/rand"
	"testing"

	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// randomProgram emits a random but terminating program: a fixed-trip outer
// loop over straight-line blocks of ALU ops, loads, stores, and atomics
// against a private memory region, plus data-dependent inner branches.
// Returned alongside is the expected architectural result, computed by the
// reference interpreter.
func randomProgram(rng *rand.Rand, tid int, region memtypes.Addr) (*isa.Program, [isa.NumRegs]memtypes.Word) {
	b := isa.NewBuilder(fmt.Sprintf("fuzz-t%d", tid))
	regionWords := int64(256)
	scratch := []isa.Reg{isa.R4, isa.R5, isa.R6, isa.R7, isa.R8, isa.R9, isa.R12, isa.R13}

	b.MovI(isa.R20, int64(region))
	b.MovI(isa.R2, 0)                    // loop counter
	b.MovI(isa.R3, int64(4+rng.Intn(6))) // trips
	for i, r := range scratch {
		b.MovI(r, int64(rng.Intn(1000)+i))
	}
	b.Label("loop")
	n := 10 + rng.Intn(30)
	for i := 0; i < n; i++ {
		rd := scratch[rng.Intn(len(scratch))]
		r1 := scratch[rng.Intn(len(scratch))]
		r2 := scratch[rng.Intn(len(scratch))]
		off := int64(rng.Intn(int(regionWords))) * memtypes.WordBytes
		switch rng.Intn(10) {
		case 0:
			b.Add(rd, r1, r2)
		case 1:
			b.Sub(rd, r1, r2)
		case 2:
			b.Mul(rd, r1, r2)
		case 3:
			b.Xor(rd, r1, r2)
		case 4:
			b.AddI(rd, r1, int64(rng.Intn(64))-32)
		case 5, 6:
			b.Ld(rd, isa.R20, off)
		case 7, 8:
			b.St(isa.R20, off, r1)
		case 9:
			switch rng.Intn(3) {
			case 0:
				b.Fadd(rd, isa.R20, off, r1)
			case 1:
				b.Swap(rd, isa.R20, off, r1)
			case 2:
				b.Cas(rd, isa.R20, off, r1, r2)
			}
		}
		// Occasional data-dependent skip (exercises mispredict recovery).
		if rng.Intn(8) == 0 {
			skip := b.FreshLabel("skip")
			b.MovI(isa.R14, 1)
			b.And(isa.R14, rd, isa.R14)
			b.Bne(isa.R14, isa.R0, skip)
			b.AddI(rd, rd, 3)
			b.Label(skip)
		}
	}
	if rng.Intn(2) == 0 {
		b.Fence()
	}
	b.AddI(isa.R2, isa.R2, 1)
	b.Bltu(isa.R2, isa.R3, "loop")
	b.Halt()

	var regs [isa.NumRegs]memtypes.Word
	regs[isa.R1] = memtypes.Word(tid)
	return b.MustBuild(), regs
}

// TestRandomProgramsMatchReference is the end-to-end differential test:
// random programs on 4 cores with disjoint data regions must produce
// exactly the reference interpreter's architectural results — registers and
// memory — under every consistency implementation, speculative or not.
// Any mis-speculation that leaks, any lost store, any wrong forwarding
// breaks the comparison.
func TestRandomProgramsMatchReference(t *testing.T) {
	engines := []struct {
		name  string
		model consistency.Model
		eng   ifcore.Config
	}{
		{"sc", consistency.SC, offEngine(consistency.SC)},
		{"rmo", consistency.RMO, offEngine(consistency.RMO)},
		{"invisi-sc", consistency.SC, ifcore.DefaultSelective(consistency.SC)},
		{"continuous-cov", consistency.SC, ifcore.DefaultContinuous(true)},
		{"aso", consistency.SC, ifcore.DefaultASO()},
	}
	const cores = 4
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		progs := make([]*isa.Program, cores)
		regInits := make([][isa.NumRegs]memtypes.Word, cores)
		regions := make([]memtypes.Addr, cores)
		for i := 0; i < cores; i++ {
			regions[i] = memtypes.Addr(0x100000 + i*0x10000)
			progs[i], regInits[i] = randomProgram(rng, i, regions[i])
		}
		// Reference execution.
		type expect struct {
			regs [isa.NumRegs]memtypes.Word
			mem  map[memtypes.Addr]memtypes.Word
		}
		want := make([]expect, cores)
		for i := 0; i < cores; i++ {
			it := isa.NewInterp(progs[i], regInits[i], nil)
			if err := it.Run(2_000_000); err != nil {
				t.Fatalf("seed %d: reference: %v", seed, err)
			}
			want[i] = expect{regs: it.Regs, mem: it.Mem}
		}
		for _, e := range engines {
			cfg := testConfig(2, 2, e.model, e.eng)
			s := New(cfg, progs, regInits)
			res := s.Run()
			if !res.Finished {
				t.Fatalf("seed %d/%s: did not finish", seed, e.name)
			}
			for i := 0; i < cores; i++ {
				for r := 0; r < isa.NumRegs; r++ {
					got := s.Node(i).Core().ArchReg(isa.Reg(r))
					if got != want[i].regs[r] {
						t.Fatalf("seed %d/%s: core %d r%d = %d, want %d",
							seed, e.name, i, r, got, want[i].regs[r])
					}
				}
				for a, v := range want[i].mem {
					if got := s.ReadWord(a); got != v {
						t.Fatalf("seed %d/%s: core %d mem[%#x] = %d, want %d",
							seed, e.name, i, uint64(a), got, v)
					}
				}
			}
		}
	}
}
