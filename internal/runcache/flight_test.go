package runcache

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"invisifence/internal/faultinject"
)

func TestFlightDedupesConcurrentCallers(t *testing.T) {
	var f Flight
	var execs atomic.Int64
	gate := make(chan struct{})
	const callers = 16

	var wg sync.WaitGroup
	sharedCount := atomic.Int64{}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := f.Do("k", func() (any, error) {
				<-gate // hold the flight open until all callers joined
				execs.Add(1)
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				t.Errorf("Do: %v, %v", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Wait until the late callers are registered as followers, then
	// release the leader.
	for f.Stats().Followers < callers-1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("%d executions for %d concurrent callers", n, callers)
	}
	if sharedCount.Load() != callers-1 {
		t.Fatalf("%d callers saw shared=true, want %d", sharedCount.Load(), callers-1)
	}
	s := f.Stats()
	if s.Leaders != 1 || s.Followers != callers-1 || s.Panics != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestFlightDistinctKeysIndependent(t *testing.T) {
	var f Flight
	var execs atomic.Int64
	var wg sync.WaitGroup
	for _, k := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, shared, err := f.Do(k, func() (any, error) {
				execs.Add(1)
				return k, nil
			}); shared || err != nil {
				t.Errorf("key %s: shared=%v err=%v", k, shared, err)
			}
		}()
	}
	wg.Wait()
	if execs.Load() != 3 {
		t.Fatalf("distinct keys collapsed: %d executions", execs.Load())
	}
}

func TestFlightSequentialCallsReExecute(t *testing.T) {
	// Flight is dedupe-in-flight only, not a memo: persistence belongs
	// to the Cache.
	var f Flight
	var execs atomic.Int64
	for i := 0; i < 3; i++ {
		if _, shared, _ := f.Do("k", func() (any, error) { execs.Add(1); return nil, nil }); shared {
			t.Fatal("sequential caller reported shared result")
		}
	}
	if execs.Load() != 3 {
		t.Fatalf("sequential executions: %d", execs.Load())
	}
}

func TestFlightErrorSharedWithFollowers(t *testing.T) {
	var f Flight
	boom := errors.New("boom")
	gate := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	leaderStarted := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, errs[0] = f.Do("k", func() (any, error) {
			close(leaderStarted)
			<-gate
			return nil, boom
		})
	}()
	<-leaderStarted
	for i := 1; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, errs[i] = f.Do("k", func() (any, error) {
				t.Error("follower executed fn")
				return nil, nil
			})
		}()
	}
	for f.Stats().Followers < 3 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
}

func TestFlightLeaderPanicBecomesError(t *testing.T) {
	var f Flight
	gate := make(chan struct{})
	started := make(chan struct{})
	var followerErr error
	var wg sync.WaitGroup
	wg.Add(2)
	var leaderErr error
	go func() {
		defer wg.Done()
		_, _, leaderErr = f.Do("k", func() (any, error) {
			close(started)
			<-gate
			panic("poisoned cell")
		})
	}()
	<-started
	go func() {
		defer wg.Done()
		_, _, followerErr = f.Do("k", func() (any, error) { return nil, nil })
	}()
	for f.Stats().Followers < 1 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	for who, err := range map[string]error{"leader": leaderErr, "follower": followerErr} {
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("%s error: %v (want *PanicError)", who, err)
		}
		if pe.Key != "k" || pe.Value.(string) != "poisoned cell" {
			t.Fatalf("%s panic detail: %+v", who, pe)
		}
		if !strings.Contains(err.Error(), "poisoned cell") {
			t.Fatalf("%s error text: %q", who, err)
		}
	}
	if s := f.Stats(); s.Panics != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// The key is released: the next call runs fresh.
	if _, shared, err := f.Do("k", func() (any, error) { return 1, nil }); shared || err != nil {
		t.Fatalf("post-panic call: shared=%v err=%v", shared, err)
	}
}

func TestFlightInFlightRegistry(t *testing.T) {
	var f Flight
	if keys := f.InFlight(); len(keys) != 0 {
		t.Fatalf("idle registry: %v", keys)
	}
	gate := make(chan struct{})
	started := make(chan struct{}, 2)
	var wg sync.WaitGroup
	for _, k := range []string{"zz", "aa"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Do(k, func() (any, error) {
				started <- struct{}{}
				<-gate
				return nil, nil
			})
		}()
	}
	<-started
	<-started
	if keys := f.InFlight(); len(keys) != 2 || keys[0] != "aa" || keys[1] != "zz" {
		t.Fatalf("registry snapshot: %v (want sorted [aa zz])", keys)
	}
	close(gate)
	wg.Wait()
	if keys := f.InFlight(); len(keys) != 0 {
		t.Fatalf("registry after completion: %v", keys)
	}
}

// TestFlightInjectedLeaderPanic checks an injected leader panic takes
// the organic panic path: recovered, counted, surfaced as *PanicError
// to leader and followers, and the flight is re-runnable afterwards.
func TestFlightInjectedLeaderPanic(t *testing.T) {
	var f Flight
	f.SetInjector(faultinject.New(&faultinject.Plan{
		Rules: []faultinject.Rule{{Site: SiteLeader, Kind: faultinject.KindPanic}},
	}))
	_, _, err := f.Do("k", func() (any, error) { return 1, nil })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("injected panic surfaced as %v", err)
	}
	if p, ok := pe.Value.(*faultinject.InjectedError); !ok || p.Site != SiteLeader {
		t.Fatalf("panic value: %v", pe.Value)
	}
	if s := f.Stats(); s.Panics != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// The rule's window is exhausted; the next flight succeeds.
	v, _, err := f.Do("k", func() (any, error) { return 2, nil })
	if err != nil || v != 2 {
		t.Fatalf("flight after injection: v=%v err=%v", v, err)
	}
}
