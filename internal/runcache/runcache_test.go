package runcache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

type fakeResult struct {
	Cycles  uint64
	Retired uint64
	Name    string
	Splits  [4]uint64
	Nested  struct{ A, B int }
}

type fakeConfig struct {
	Workload string
	Seed     int64
	Knobs    map[string]int
}

func cfg() fakeConfig {
	return fakeConfig{Workload: "apache", Seed: 3, Knobs: map[string]int{"sb": 8, "ckpt": 1}}
}

func TestKeyStability(t *testing.T) {
	k1 := MustKey("result", cfg())
	k2 := MustKey("result", cfg())
	if k1 != k2 {
		t.Fatalf("same input, different keys: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("want hex sha256, got %q", k1)
	}
	// Map key order must not matter (encoding/json sorts keys).
	c := cfg()
	c.Knobs = map[string]int{"ckpt": 1, "sb": 8}
	if MustKey("result", c) != k1 {
		t.Fatal("map insertion order changed the key")
	}
	// The key is pinned: it must be stable across processes, machines,
	// and releases (a silent change would orphan every cached result).
	const golden = "fce0f7586911c5f8376c85bdec5d0c95739964b24da91627fb89879d96490402"
	if k1 != golden {
		t.Fatalf("canonical key changed: got %s, want %s (bump schemaVersion if intentional)", k1, golden)
	}
}

func TestKeySensitivity(t *testing.T) {
	base := MustKey("result", cfg())
	c := cfg()
	c.Seed = 4
	if MustKey("result", c) == base {
		t.Fatal("seed change did not change the key")
	}
	if MustKey("trace", cfg()) == base {
		t.Fatal("label change did not change the key")
	}
	if MustKey("result", cfg(), "extra") == base {
		t.Fatal("extra part did not change the key")
	}
}

func TestKeyRejectsUnencodable(t *testing.T) {
	if _, err := Key(func() {}); err == nil {
		t.Fatal("expected error for unencodable part")
	}
}

func TestRoundTripDisk(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	in := fakeResult{Cycles: 123456, Retired: 789, Name: "apache/sc", Splits: [4]uint64{1, 2, 3, 4}}
	in.Nested.A, in.Nested.B = 7, 8
	key := MustKey("result", cfg())

	var out fakeResult
	if ok, _ := c.Get(key, &out); ok {
		t.Fatal("hit before put")
	}
	if err := c.Put(key, in); err != nil {
		t.Fatal(err)
	}
	if ok, _ := c.Get(key, &out); !ok {
		t.Fatal("miss after put")
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mangled value: %+v vs %+v", in, out)
	}

	// A second cache over the same directory (a "new process") must hit.
	c2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	out = fakeResult{}
	if ok, _ := c2.Get(key, &out); !ok {
		t.Fatal("cross-process miss")
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("cross-process round trip mangled value: %+v", out)
	}
	s := c2.Stats()
	if s.Hits != 1 || s.MemHits != 0 || s.Misses != 0 {
		t.Fatalf("stats: %+v", s)
	}
	// Repeat lookup is served from memory.
	if ok, _ := c2.Get(key, &out); !ok {
		t.Fatal("second miss")
	}
	if s := c2.Stats(); s.MemHits != 1 {
		t.Fatalf("stats after repeat: %+v", s)
	}
}

func TestMemoryOnly(t *testing.T) {
	c, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	key := MustKey("k")
	if err := c.Put(key, 42); err != nil {
		t.Fatal(err)
	}
	var n int
	if ok, _ := c.Get(key, &n); !ok || n != 42 {
		t.Fatalf("memory round trip: ok=%v n=%d", ok, n)
	}
	s := c.Stats()
	if s.Puts != 1 || s.Hits != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := MustKey("corrupt")
	if err := c.Put(key, fakeResult{Cycles: 1}); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key[:2], key+".json")
	if err := os.WriteFile(p, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	c2, _ := Open(dir)
	var out fakeResult
	if ok, _ := c2.Get(key, &out); ok {
		t.Fatal("corrupt entry reported as hit")
	}
	s := c2.Stats()
	if s.Errors == 0 || s.Misses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestPutOverwrites(t *testing.T) {
	c, _ := Open(t.TempDir())
	key := MustKey("k")
	if err := c.Put(key, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(key, 2); err != nil {
		t.Fatal(err)
	}
	var n int
	if ok, _ := c.Get(key, &n); !ok || n != 2 {
		t.Fatalf("overwrite: ok=%v n=%d", ok, n)
	}
}
