// Package runcache persists experiment results as content-addressed JSON.
//
// A Cache maps a canonical key — the SHA-256 of a versioned, deterministic
// JSON encoding of the run's full configuration — to the JSON encoding of
// its result. Entries live under dir/<k0k1>/<key>.json (sharded by the
// first key byte) and are written atomically, so concurrent writers and
// multiple processes can share one cache directory. A small in-memory
// layer sits in front of the disk so repeated lookups within one process
// never re-read files.
//
// The cache is strictly best-effort: a missing, unreadable, or corrupt
// entry is reported as a miss (and counted in Stats.Errors), never as a
// failure of the experiment itself.
//
// Two hardening layers back that contract (DESIGN.md §14). Every disk
// entry is checksummed — the payload is prefixed with its own SHA-256 —
// so a truncated or bit-flipped file is detected on read, moved to a
// quarantine sidecar directory (dir/quarantine/) for post-mortems, and
// reported as a miss that the caller transparently re-simulates. And
// persistent write failures (disk full, EIO) flip the cache into a
// counted degraded mode: after degradedAfter consecutive failed writes,
// Put stops touching the disk (the in-memory layer still works), so a
// sick filesystem costs re-simulation on the next process, never a
// failed campaign in this one.
package runcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"invisifence/internal/faultinject"
)

// schemaVersion is folded into every key. Bump it whenever the meaning of
// a cached payload changes (e.g. a simulator fix that alters results for
// the same configuration), which invalidates all prior entries at once.
const schemaVersion = "runcache/v1"

// Key derives the canonical content-addressed key for a run from its
// identifying parts (typically the full configuration plus a label such as
// "result"). Parts are encoded with encoding/json, which is deterministic
// for structs (declaration order) and maps (sorted keys), so the key is
// stable across processes and machines. Parts must be JSON-encodable.
func Key(parts ...any) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", schemaVersion)
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("runcache: encoding key part: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// MustKey is Key for parts known to be encodable (plain config structs);
// it panics on encoding failure.
func MustKey(parts ...any) string {
	k, err := Key(parts...)
	if err != nil {
		panic(err)
	}
	return k
}

// Stats counts cache traffic since Open.
type Stats struct {
	// Hits is the number of Gets served from memory or disk.
	Hits uint64
	// MemHits is the subset of Hits served without touching disk.
	MemHits uint64
	// Misses is the number of Gets that found no entry.
	Misses uint64
	// Puts is the number of entries written.
	Puts uint64
	// Errors counts unreadable/corrupt entries and failed writes; these
	// surface as misses or silently-skipped puts, never as run failures.
	Errors uint64
	// Quarantined counts corrupt disk entries (checksum or decode
	// failures) moved to the quarantine sidecar directory.
	Quarantined uint64
	// WriteErrors counts failed disk writes; degradedAfter consecutive
	// failures flip the cache into degraded (disk-bypass) mode.
	WriteErrors uint64
	// PutsBypassed counts Puts that skipped the disk because the cache
	// was degraded (they still landed in the in-memory layer).
	PutsBypassed uint64
	// Degraded reports disk-bypass mode at snapshot time.
	Degraded bool
}

// String renders the stats for CLI output.
func (s Stats) String() string {
	out := fmt.Sprintf("cache: %d hits (%d in-memory), %d misses, %d puts, %d errors",
		s.Hits, s.MemHits, s.Misses, s.Puts, s.Errors)
	if s.Quarantined > 0 {
		out += fmt.Sprintf(", %d quarantined", s.Quarantined)
	}
	if s.Degraded {
		out += fmt.Sprintf(", DEGRADED (%d write errors, %d puts bypassed)", s.WriteErrors, s.PutsBypassed)
	}
	return out
}

// degradedAfter is the consecutive-write-failure threshold that flips
// the cache into disk-bypass mode. One failure can be a transient blip
// (the campaign retries the put on the next cell); a run of them means
// the filesystem is sick and every further attempt just burns syscalls.
const degradedAfter = 3

// Injection sites probed by the cache when an injector is armed.
const (
	// SiteRead fires on disk entry reads (error = unreadable file,
	// corrupt = bit-flipped payload caught by the checksum).
	SiteRead = "runcache.read"
	// SiteWrite fires on disk entry writes (error = failed write,
	// feeding the degraded-mode counter).
	SiteWrite = "runcache.write"
)

// Cache is a persistent, process-shared result store. The zero value is
// not usable; call Open.
type Cache struct {
	dir string // "" = memory-only
	inj *faultinject.Injector

	mu         sync.Mutex
	mem        map[string][]byte
	stats      Stats
	degraded   bool
	consecWerr int
}

// Open returns a cache rooted at dir, creating it if needed. An empty dir
// yields a memory-only cache (useful for tests and one-shot runs).
func Open(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runcache: %w", err)
		}
	}
	return &Cache{dir: dir, mem: make(map[string][]byte)}, nil
}

// SetInjector arms fault injection at the cache's I/O seams (nil keeps
// the disarmed no-op). Call before first use.
func (c *Cache) SetInjector(in *faultinject.Injector) { c.inj = in }

// Dir returns the cache's root directory ("" for memory-only).
func (c *Cache) Dir() string { return c.dir }

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// quarantinePath is where a corrupt entry is moved for post-mortems.
func (c *Cache) quarantinePath(key string) string {
	return filepath.Join(c.dir, "quarantine", key+".json")
}

// encodeEntry prefixes the payload with its SHA-256, newline-separated.
// JSON payloads carry no raw newlines, so the first line is always the
// checksum.
func encodeEntry(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	out := make([]byte, 0, len(payload)+sha256.Size*2+1)
	out = append(out, hex.EncodeToString(sum[:])...)
	out = append(out, '\n')
	return append(out, payload...)
}

// decodeEntry verifies a disk entry's checksum line and returns the
// payload. It reports false for any malformed or mismatching entry —
// including pre-checksum legacy files, which are indistinguishable from
// truncation and handled the same way (quarantine + re-simulate).
func decodeEntry(raw []byte) ([]byte, bool) {
	nl := bytes.IndexByte(raw, '\n')
	if nl != sha256.Size*2 {
		return nil, false
	}
	payload := raw[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != string(raw[:nl]) {
		return nil, false
	}
	return payload, true
}

// quarantine moves a corrupt entry into the sidecar directory
// (best-effort: a failed move falls back to deletion so the corrupt
// bytes can never satisfy a future read either way).
func (c *Cache) quarantine(key string) {
	p := c.path(key)
	q := c.quarantinePath(key)
	if err := os.MkdirAll(filepath.Dir(q), 0o755); err == nil {
		if os.Rename(p, q) == nil {
			c.count(func(s *Stats) { s.Quarantined++ })
			return
		}
	}
	os.Remove(p)
	c.count(func(s *Stats) { s.Quarantined++ })
}

// Get looks up key and, when present, decodes the stored JSON into out.
// It reports whether an entry was found. Corrupt entries are quarantined
// and count as misses.
func (c *Cache) Get(key string, out any) (bool, error) {
	c.mu.Lock()
	data, inMem := c.mem[key]
	c.mu.Unlock()
	if !inMem {
		if c.dir == "" {
			c.count(func(s *Stats) { s.Misses++ })
			return false, nil
		}
		b, err := os.ReadFile(c.path(key))
		if err == nil {
			err = c.inj.Err(SiteRead)
		}
		if err != nil {
			if !os.IsNotExist(err) {
				c.count(func(s *Stats) { s.Errors++ })
			}
			c.count(func(s *Stats) { s.Misses++ })
			return false, nil
		}
		b = c.inj.Corrupt(SiteRead, b)
		payload, ok := decodeEntry(b)
		if !ok {
			c.quarantine(key)
			c.count(func(s *Stats) { s.Errors++; s.Misses++ })
			return false, nil
		}
		data = payload
	}
	if err := json.Unmarshal(data, out); err != nil {
		// The checksum matched but the JSON does not decode into out: a
		// schema mismatch rather than bit rot. Still a miss, still
		// quarantined so the entry cannot fail every future read.
		if !inMem {
			c.quarantine(key)
		}
		c.count(func(s *Stats) { s.Errors++; s.Misses++ })
		return false, nil
	}
	c.count(func(s *Stats) {
		s.Hits++
		if inMem {
			s.MemHits++
		}
	})
	if !inMem {
		c.mu.Lock()
		c.mem[key] = data
		c.mu.Unlock()
	}
	return true, nil
}

// Put stores v under key, replacing any prior entry. Disk writes are
// atomic (temp file + rename) so readers never observe partial JSON; a
// degraded cache keeps the in-memory layer and skips the disk.
func (c *Cache) Put(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		c.count(func(s *Stats) { s.Errors++ })
		return fmt.Errorf("runcache: encoding entry: %w", err)
	}
	c.mu.Lock()
	c.mem[key] = data
	degraded := c.degraded
	c.mu.Unlock()
	if c.dir != "" {
		if degraded {
			c.count(func(s *Stats) { s.PutsBypassed++; s.Puts++ })
			return nil
		}
		if err := c.writeFile(key, encodeEntry(data)); err != nil {
			c.mu.Lock()
			c.stats.Errors++
			c.stats.WriteErrors++
			c.consecWerr++
			if c.consecWerr >= degradedAfter && !c.degraded {
				c.degraded = true
				c.stats.Degraded = true
			}
			c.mu.Unlock()
			return err
		}
		c.mu.Lock()
		c.consecWerr = 0
		c.mu.Unlock()
	}
	c.count(func(s *Stats) { s.Puts++ })
	return nil
}

// Degraded reports whether persistent write failures have flipped the
// cache into disk-bypass mode.
func (c *Cache) Degraded() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.degraded
}

func (c *Cache) writeFile(key string, data []byte) error {
	if err := c.inj.Err(SiteWrite); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}
