// Package runcache persists experiment results as content-addressed JSON.
//
// A Cache maps a canonical key — the SHA-256 of a versioned, deterministic
// JSON encoding of the run's full configuration — to the JSON encoding of
// its result. Entries live under dir/<k0k1>/<key>.json (sharded by the
// first key byte) and are written atomically, so concurrent writers and
// multiple processes can share one cache directory. A small in-memory
// layer sits in front of the disk so repeated lookups within one process
// never re-read files.
//
// The cache is strictly best-effort: a missing, unreadable, or corrupt
// entry is reported as a miss (and counted in Stats.Errors), never as a
// failure of the experiment itself.
package runcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// schemaVersion is folded into every key. Bump it whenever the meaning of
// a cached payload changes (e.g. a simulator fix that alters results for
// the same configuration), which invalidates all prior entries at once.
const schemaVersion = "runcache/v1"

// Key derives the canonical content-addressed key for a run from its
// identifying parts (typically the full configuration plus a label such as
// "result"). Parts are encoded with encoding/json, which is deterministic
// for structs (declaration order) and maps (sorted keys), so the key is
// stable across processes and machines. Parts must be JSON-encodable.
func Key(parts ...any) (string, error) {
	h := sha256.New()
	fmt.Fprintf(h, "%s\n", schemaVersion)
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			return "", fmt.Errorf("runcache: encoding key part: %w", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// MustKey is Key for parts known to be encodable (plain config structs);
// it panics on encoding failure.
func MustKey(parts ...any) string {
	k, err := Key(parts...)
	if err != nil {
		panic(err)
	}
	return k
}

// Stats counts cache traffic since Open.
type Stats struct {
	// Hits is the number of Gets served from memory or disk.
	Hits uint64
	// MemHits is the subset of Hits served without touching disk.
	MemHits uint64
	// Misses is the number of Gets that found no entry.
	Misses uint64
	// Puts is the number of entries written.
	Puts uint64
	// Errors counts unreadable/corrupt entries and failed writes; these
	// surface as misses or silently-skipped puts, never as run failures.
	Errors uint64
}

// String renders the stats for CLI output.
func (s Stats) String() string {
	return fmt.Sprintf("cache: %d hits (%d in-memory), %d misses, %d puts, %d errors",
		s.Hits, s.MemHits, s.Misses, s.Puts, s.Errors)
}

// Cache is a persistent, process-shared result store. The zero value is
// not usable; call Open.
type Cache struct {
	dir string // "" = memory-only

	mu    sync.Mutex
	mem   map[string][]byte
	stats Stats
}

// Open returns a cache rooted at dir, creating it if needed. An empty dir
// yields a memory-only cache (useful for tests and one-shot runs).
func Open(dir string) (*Cache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("runcache: %w", err)
		}
	}
	return &Cache{dir: dir, mem: make(map[string][]byte)}, nil
}

// Dir returns the cache's root directory ("" for memory-only).
func (c *Cache) Dir() string { return c.dir }

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get looks up key and, when present, decodes the stored JSON into out.
// It reports whether an entry was found. Corrupt entries count as misses.
func (c *Cache) Get(key string, out any) (bool, error) {
	c.mu.Lock()
	data, inMem := c.mem[key]
	c.mu.Unlock()
	if !inMem {
		if c.dir == "" {
			c.count(func(s *Stats) { s.Misses++ })
			return false, nil
		}
		b, err := os.ReadFile(c.path(key))
		if err != nil {
			if !os.IsNotExist(err) {
				c.count(func(s *Stats) { s.Errors++ })
			}
			c.count(func(s *Stats) { s.Misses++ })
			return false, nil
		}
		data = b
	}
	if err := json.Unmarshal(data, out); err != nil {
		c.count(func(s *Stats) { s.Errors++; s.Misses++ })
		return false, nil
	}
	c.count(func(s *Stats) {
		s.Hits++
		if inMem {
			s.MemHits++
		}
	})
	if !inMem {
		c.mu.Lock()
		c.mem[key] = data
		c.mu.Unlock()
	}
	return true, nil
}

// Put stores v under key, replacing any prior entry. Disk writes are
// atomic (temp file + rename) so readers never observe partial JSON.
func (c *Cache) Put(key string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		c.count(func(s *Stats) { s.Errors++ })
		return fmt.Errorf("runcache: encoding entry: %w", err)
	}
	c.mu.Lock()
	c.mem[key] = data
	c.mu.Unlock()
	if c.dir != "" {
		if err := c.writeFile(key, data); err != nil {
			c.count(func(s *Stats) { s.Errors++ })
			return err
		}
	}
	c.count(func(s *Stats) { s.Puts++ })
	return nil
}

func (c *Cache) writeFile(key string, data []byte) error {
	p := c.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+key+".tmp*")
	if err != nil {
		return fmt.Errorf("runcache: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("runcache: %w", err)
	}
	return nil
}

// Stats returns a snapshot of the traffic counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Cache) count(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}
