package runcache

import (
	"fmt"
	"sort"
	"sync"

	"invisifence/internal/faultinject"
)

// SiteLeader fires in the flight leader just before it executes its
// function (panic = a poisoned computation, delay = a slow leader
// stalling its followers) when an injector is armed.
const SiteLeader = "flight.leader"

// FlightStats counts single-flight traffic since NewFlight.
type FlightStats struct {
	// Leaders counts calls that executed their function.
	Leaders uint64
	// Followers counts calls that waited on a leader's in-flight
	// execution instead of running their own: the work deduplicated.
	Followers uint64
	// Panics counts leader functions that panicked (converted to errors
	// for every waiter; see Flight.Do).
	Panics uint64
}

// String renders the stats for CLI/telemetry output.
func (s FlightStats) String() string {
	return fmt.Sprintf("flight: %d leaders, %d followers, %d panics",
		s.Leaders, s.Followers, s.Panics)
}

// PanicError is the error every caller of Do receives when the leader's
// function panicked.
type PanicError struct {
	// Key is the flight key whose leader panicked.
	Key string
	// Value is the recovered panic value.
	Value any
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("runcache: in-flight computation for %.12s… panicked: %v", e.Key, e.Value)
}

// call is one in-flight computation.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// Flight deduplicates concurrent computations of the same key: while one
// caller (the leader) runs the function, every other caller of the same
// key (the followers) blocks until the leader finishes and then shares
// its value and error. Keys are the same canonical content-addressed
// strings the Cache uses, so a Flight in front of a Cache closes the
// window the cache alone leaves open — two workers both missing on a key
// and simulating it twice.
//
// Unlike most single-flight implementations, a leader panic does not
// propagate: it is recovered, counted in FlightStats.Panics, and
// surfaced to the leader and every follower as a *PanicError. A
// long-running server cannot afford one poisoned computation taking
// down unrelated waiters (or the process), and the error form lets the
// caller mark just that key failed.
//
// The zero Flight is ready to use.
type Flight struct {
	inj *faultinject.Injector

	mu       sync.Mutex
	inflight map[string]*call
	stats    FlightStats
}

// SetInjector arms fault injection at the leader seam (nil keeps the
// disarmed no-op). Call before first use.
func (f *Flight) SetInjector(in *faultinject.Injector) { f.inj = in }

// Do returns the result of computing fn for key, executing it at most
// once across all concurrent callers of the same key. shared reports
// that this caller was a follower (the value came from another caller's
// execution). Results are not memoized: once the last waiter is
// released, the next Do for the key runs fn again — persistence across
// completed flights is the Cache's job.
func (f *Flight) Do(key string, fn func() (any, error)) (v any, shared bool, err error) {
	f.mu.Lock()
	if f.inflight == nil {
		f.inflight = make(map[string]*call)
	}
	if c, ok := f.inflight[key]; ok {
		f.stats.Followers++
		f.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &call{done: make(chan struct{})}
	f.inflight[key] = c
	f.stats.Leaders++
	f.mu.Unlock()

	func() {
		defer func() {
			if p := recover(); p != nil {
				c.err = &PanicError{Key: key, Value: p}
				f.mu.Lock()
				f.stats.Panics++
				f.mu.Unlock()
			}
		}()
		// Inside the recovery window: an injected leader panic takes the
		// exact path an organic one would.
		f.inj.Delay(SiteLeader)
		f.inj.MaybePanic(SiteLeader)
		c.val, c.err = fn()
	}()

	f.mu.Lock()
	delete(f.inflight, key)
	f.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// InFlight returns the keys currently executing, sorted, a snapshot of
// the in-flight registry for telemetry endpoints.
func (f *Flight) InFlight() []string {
	f.mu.Lock()
	keys := make([]string, 0, len(f.inflight))
	for k := range f.inflight {
		keys = append(keys, k)
	}
	f.mu.Unlock()
	sort.Strings(keys)
	return keys
}

// Stats returns a snapshot of the traffic counters.
func (f *Flight) Stats() FlightStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}
