package runcache

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"invisifence/internal/faultinject"
)

// TestCorruptEntryQuarantined checks a bit-flipped disk entry is caught
// by the checksum, moved into the quarantine sidecar, and reported as a
// miss the caller can re-simulate.
func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := MustKey("quarantine-me")
	if err := c.Put(key, fakeResult{Cycles: 7}); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key[:2], key+".json")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-2] ^= 0xff // flip a payload byte under the checksum
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	c2, _ := Open(dir)
	var out fakeResult
	if ok, _ := c2.Get(key, &out); ok {
		t.Fatal("corrupt entry reported as hit")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Fatal("corrupt entry still satisfiable at its cache path")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", key+".json")); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	s := c2.Stats()
	if s.Quarantined != 1 || s.Misses != 1 || s.Errors == 0 {
		t.Fatalf("stats: %+v", s)
	}
	// The slot is reusable: a fresh Put round-trips again.
	if err := c2.Put(key, fakeResult{Cycles: 8}); err != nil {
		t.Fatal(err)
	}
	c3, _ := Open(dir)
	if ok, _ := c3.Get(key, &out); !ok || out.Cycles != 8 {
		t.Fatalf("re-put after quarantine: ok=%v out=%+v", ok, out)
	}
}

// TestLegacyEntryQuarantined checks pre-checksum cache files (bare JSON,
// no checksum line) fail verification and are quarantined rather than
// trusted.
func TestLegacyEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	key := MustKey("legacy")
	p := filepath.Join(dir, key[:2], key+".json")
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p, []byte(`{"cycles":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c, _ := Open(dir)
	var out fakeResult
	if ok, _ := c.Get(key, &out); ok {
		t.Fatal("legacy un-checksummed entry reported as hit")
	}
	if s := c.Stats(); s.Quarantined != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestInjectedReadCorruptionQuarantines drives the same path through the
// fault injector instead of hand-edited files.
func TestInjectedReadCorruptionQuarantines(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := MustKey("inj-corrupt")
	if err := c.Put(key, fakeResult{Cycles: 5}); err != nil {
		t.Fatal(err)
	}
	c2, _ := Open(dir)
	c2.SetInjector(faultinject.New(&faultinject.Plan{
		Seed:  1,
		Rules: []faultinject.Rule{{Site: SiteRead, Kind: faultinject.KindCorrupt}},
	}))
	var out fakeResult
	if ok, _ := c2.Get(key, &out); ok {
		t.Fatal("injected corruption reported as hit")
	}
	if s := c2.Stats(); s.Quarantined != 1 || s.Misses != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestInjectedReadErrorIsMiss checks an injected read failure surfaces as
// a counted miss, never an error to the caller.
func TestInjectedReadErrorIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := MustKey("inj-read-err")
	if err := c.Put(key, fakeResult{Cycles: 5}); err != nil {
		t.Fatal(err)
	}
	c2, _ := Open(dir)
	c2.SetInjector(faultinject.New(&faultinject.Plan{
		Rules: []faultinject.Rule{{Site: SiteRead, Kind: faultinject.KindError}},
	}))
	var out fakeResult
	ok, err := c2.Get(key, &out)
	if ok || err != nil {
		t.Fatalf("injected read error: ok=%v err=%v", ok, err)
	}
	// The rule's window is exhausted: the next read succeeds.
	if ok, _ := c2.Get(key, &out); !ok || out.Cycles != 5 {
		t.Fatalf("read after injection window: ok=%v out=%+v", ok, out)
	}
}

// TestDegradedModeAfterWriteErrors checks degradedAfter consecutive
// injected write failures flip the cache into disk-bypass mode: Puts
// stop erroring, land in memory only, and are counted as bypassed.
func TestDegradedModeAfterWriteErrors(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	c.SetInjector(faultinject.New(&faultinject.Plan{
		Rules: []faultinject.Rule{{Site: SiteWrite, Kind: faultinject.KindError, Count: degradedAfter}},
	}))
	var ie *faultinject.InjectedError
	for i := 0; i < degradedAfter; i++ {
		if c.Degraded() {
			t.Fatalf("degraded after only %d write errors", i)
		}
		err := c.Put(MustKey("w", i), fakeResult{Cycles: uint64(i)})
		if !errors.As(err, &ie) {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if !c.Degraded() {
		t.Fatal("not degraded after threshold")
	}
	key := MustKey("bypassed")
	if err := c.Put(key, fakeResult{Cycles: 99}); err != nil {
		t.Fatalf("degraded Put errored: %v", err)
	}
	// In-memory layer still serves the value...
	var out fakeResult
	if ok, _ := c.Get(key, &out); !ok || out.Cycles != 99 {
		t.Fatalf("degraded mem read: ok=%v out=%+v", ok, out)
	}
	// ...but the disk was never touched.
	if _, err := os.Stat(filepath.Join(dir, key[:2], key+".json")); !os.IsNotExist(err) {
		t.Fatal("degraded Put reached the disk")
	}
	s := c.Stats()
	if !s.Degraded || s.WriteErrors != degradedAfter || s.PutsBypassed != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if !strings.Contains(s.String(), "DEGRADED") {
		t.Fatalf("stats string hides degradation: %q", s.String())
	}
}

// TestTransientWriteErrorDoesNotDegrade checks the consecutive-failure
// counter resets on success, so isolated blips never flip the mode.
func TestTransientWriteErrorDoesNotDegrade(t *testing.T) {
	c, _ := Open(t.TempDir())
	// Fail write #0 and #2; succeed in between — never two in a row.
	c.SetInjector(faultinject.New(&faultinject.Plan{
		Rules: []faultinject.Rule{
			{Site: SiteWrite, Kind: faultinject.KindError, After: 0},
			{Site: SiteWrite, Kind: faultinject.KindError, After: 2},
		},
	}))
	for i := 0; i < 6; i++ {
		c.Put(MustKey("t", i), fakeResult{Cycles: uint64(i)})
	}
	if c.Degraded() {
		t.Fatal("transient write errors degraded the cache")
	}
	if s := c.Stats(); s.WriteErrors != 2 || s.PutsBypassed != 0 {
		t.Fatalf("stats: %+v", s)
	}
}
