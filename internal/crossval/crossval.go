// Package crossval cross-validates the static fence-inference analyzer
// (internal/staticfence) against the dynamic simulator oracle
// (internal/fencesearch) over the full litmus corpus.
//
// For every (test, config) cell it runs both analyzers and classifies the
// cell:
//
//   - match: the analyzers agree exactly — both already-forbidden, or the
//     same family of minimal fence sets.
//   - static-conservative: the static answer is sound but stronger than the
//     machine needs — statically-required fences the implementation makes
//     dynamically unnecessary. This is the paper's performance-transparency
//     claim made concrete (MP's reader-side fence under load-queue
//     snooping).
//   - soundness-violation: the dynamic oracle found behavior the static
//     analysis claims impossible — a hard failure of either analyzer.
//   - skipped: the test has no canonical SC-forbidden target outcome (RMW's
//     atomicity condition is not a single outcome spec).
//
// Soundness is not taken on classification alone: every static minimal set
// is re-verified by direct re-simulation (fences inserted, full seed sweep,
// zero target matches required), independently of the fencesearch cache.
package crossval

import (
	"fmt"
	"strings"

	"invisifence/internal/fencesearch"
	"invisifence/internal/isa"
	"invisifence/internal/litmus"
	"invisifence/internal/runcache"
	"invisifence/internal/staticfence"
	"invisifence/internal/sweep"
)

// Class is a cell's classification.
type Class string

// The classifications, from best to worst.
const (
	ClassMatch        Class = "match"
	ClassConservative Class = "static-conservative"
	ClassViolation    Class = "SOUNDNESS-VIOLATION"
	ClassSkipped      Class = "skipped"
)

// Cell is one (test, config) comparison.
type Cell struct {
	Test   string
	Config string
	Class  Class
	// StaticForbidden / DynamicForbidden report each analyzer's
	// already-forbidden verdict (no fences needed).
	StaticForbidden  bool
	DynamicForbidden bool
	// StaticMinimal / DynamicMinimal are the minimal fence-set families
	// (empty when forbidden or skipped).
	StaticMinimal  [][]staticfence.Site
	DynamicMinimal [][]fencesearch.Site
	// Detail explains violations and conservative cells.
	Detail string
}

// Report is a full corpus cross-validation.
type Report struct {
	Seeds int
	Cells []Cell
}

// Options configures a cross-validation run.
type Options struct {
	// Seeds is the sweep width for the dynamic search and for static-set
	// re-verification (default 48, fencesearch's default).
	Seeds int
	// Workers bounds dynamic-search and re-verification concurrency.
	Workers int
	// Cache is the fencesearch evaluation cache (nil = fresh in-memory).
	Cache *runcache.Cache
	// Tests restricts the corpus to the named tests (nil = all).
	Tests []string
}

// Run cross-validates the corpus.
func Run(opts Options) (*Report, error) {
	if opts.Seeds <= 0 {
		opts.Seeds = 48
	}
	rep := &Report{Seeds: opts.Seeds}
	configs := litmus.AllConfigs()
	for _, t := range litmus.Tests {
		if len(opts.Tests) > 0 && !contains(opts.Tests, t.Name) {
			continue
		}
		if t.Target == nil {
			for _, spec := range configs {
				rep.Cells = append(rep.Cells, Cell{
					Test: t.Name, Config: spec.Name, Class: ClassSkipped,
					Detail: "no canonical SC-forbidden target outcome",
				})
			}
			continue
		}
		bodies := litmus.BodyPrograms(t, isa.NoFences)
		// Static answers depend only on the model; memoize per model.
		statics := map[string]*staticfence.Result{}
		for _, spec := range configs {
			if _, ok := statics[spec.Model.String()]; !ok {
				sr, err := staticfence.Analyze(t.Name, bodies, spec.Model, staticfence.LitmusLayout())
				if err != nil {
					return nil, fmt.Errorf("crossval: %s/%v: %w", t.Name, spec.Model, err)
				}
				statics[spec.Model.String()] = sr
			}
		}
		// The dynamic oracle runs unpruned (fencesearch only prunes when
		// asked): the two analyzers must stay independent here.
		dyn, err := fencesearch.Search(fencesearch.Query{Test: t.Name},
			fencesearch.Options{Seeds: opts.Seeds, Workers: opts.Workers, Cache: opts.Cache})
		if err != nil {
			return nil, fmt.Errorf("crossval: %s dynamic search: %w", t.Name, err)
		}
		for i, spec := range configs {
			st := statics[spec.Model.String()]
			cell, err := classify(t, spec, st, dyn.Models[i], opts)
			if err != nil {
				return nil, err
			}
			rep.Cells = append(rep.Cells, cell)
		}
	}
	return rep, nil
}

func contains(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

// classify compares one cell and re-verifies static sufficiency by
// simulation.
func classify(t litmus.Test, spec litmus.ConfigSpec, st *staticfence.Result, dyn fencesearch.ModelResult, opts Options) (Cell, error) {
	cell := Cell{
		Test:             t.Name,
		Config:           spec.Name,
		StaticForbidden:  st.AlreadyForbidden(),
		DynamicForbidden: dyn.AlreadyForbidden,
		StaticMinimal:    st.Minimal,
		DynamicMinimal:   dyn.Minimal,
	}
	// Soundness check 1: statically forbidden cells must be dynamically
	// unreachable.
	if cell.StaticForbidden && !dyn.AlreadyForbidden {
		cell.Class = ClassViolation
		cell.Detail = fmt.Sprintf("statically forbidden but machine produced the target in %d/%d runs", dyn.BaselineMatches, opts.Seeds)
		return cell, nil
	}
	// Soundness check 2: every static minimal set must actually forbid the
	// target when simulated (independent re-verification, no cache).
	for _, set := range st.Minimal {
		matches, err := verifySet(t, spec, set, opts)
		if err != nil {
			return cell, err
		}
		if matches != 0 {
			cell.Class = ClassViolation
			cell.Detail = fmt.Sprintf("static set %v re-simulated with %d/%d target matches", set, matches, opts.Seeds)
			return cell, nil
		}
	}
	// Soundness check 3: when both analyzers emit fence sets, each static
	// set must cover (contain) some dynamic minimal set — the dynamic walk
	// is exhaustive bottom-up, so a sufficient set with no dynamic subset
	// would mean the oracle itself is broken.
	if !cell.StaticForbidden && !dyn.AlreadyForbidden && len(dyn.Minimal) > 0 {
		for _, set := range st.Minimal {
			if !coversSome(set, dyn.Minimal) {
				cell.Class = ClassViolation
				cell.Detail = fmt.Sprintf("static set %v contains no dynamic minimal set from %v", set, dyn.Minimal)
				return cell, nil
			}
		}
	}
	switch {
	case cell.StaticForbidden && dyn.AlreadyForbidden:
		cell.Class = ClassMatch
	case familiesEqual(st.Minimal, dyn.Minimal):
		cell.Class = ClassMatch
	default:
		cell.Class = ClassConservative
		cell.Detail = conservativeDetail(cell)
	}
	return cell, nil
}

// verifySet inserts the static fence set and sweeps the target count
// directly through the litmus harness — no fencesearch, no cache.
func verifySet(t litmus.Test, spec litmus.ConfigSpec, set []staticfence.Site, opts Options) (int, error) {
	perThread := map[int][]int{}
	for _, s := range set {
		perThread[s.Thread] = append(perThread[s.Thread], s.PC)
	}
	bodies := litmus.BodyPrograms(t, isa.NoFences)
	fenced := make([]*isa.Program, len(bodies))
	for i, b := range bodies {
		f, err := isa.InsertFences(b, perThread[i])
		if err != nil {
			return 0, fmt.Errorf("crossval: %s/%s inserting %v: %w", t.Name, spec.Name, set, err)
		}
		fenced[i] = f
	}
	h := litmus.Harness{Name: t.Name + "+static", Slots: t.Slots, Finals: t.FinalVars, Bodies: fenced}
	seeds := make([]int64, opts.Seeds)
	for i := range seeds {
		seeds[i] = int64(i)
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	outs, err := sweep.Run(seeds, sweep.Options{Workers: workers}, func(seed int64) (litmus.Outcome, error) {
		return h.RunSeed(spec, seed), nil
	})
	if err != nil {
		return 0, err
	}
	matches := 0
	for _, o := range outs {
		if t.Target.Matches(o) {
			matches++
		}
	}
	return matches, nil
}

// coversSome reports whether the static set contains some dynamic minimal
// set.
func coversSome(set []staticfence.Site, dyn [][]fencesearch.Site) bool {
	for _, d := range dyn {
		all := true
		for _, s := range d {
			if !siteIn(staticfence.Site(s), set) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func siteIn(s staticfence.Site, set []staticfence.Site) bool {
	for _, x := range set {
		if x == s {
			return true
		}
	}
	return false
}

// familiesEqual compares the two analyzers' minimal-set families (both are
// emitted sorted by size then lexicographically, each set sorted by
// (thread, pc)).
func familiesEqual(st [][]staticfence.Site, dyn [][]fencesearch.Site) bool {
	if len(st) != len(dyn) {
		return false
	}
	for i := range st {
		if len(st[i]) != len(dyn[i]) {
			return false
		}
		for j := range st[i] {
			if st[i][j] != staticfence.Site(dyn[i][j]) {
				return false
			}
		}
	}
	return true
}

func conservativeDetail(c Cell) string {
	switch {
	case c.DynamicForbidden:
		return "machine never exhibits the target; static analysis still requires fences"
	case len(c.StaticMinimal) < len(c.DynamicMinimal):
		return "machine admits extra minimal solutions the model cannot justify"
	default:
		return "static sets are sound supersets of the dynamic answer"
	}
}

// Violations returns the violating cells (empty on a sound corpus).
func (r *Report) Violations() []Cell {
	var out []Cell
	for _, c := range r.Cells {
		if c.Class == ClassViolation {
			out = append(out, c)
		}
	}
	return out
}

// Counts tallies cells per class in a deterministic order.
func (r *Report) Counts() map[Class]int {
	out := map[Class]int{}
	for _, c := range r.Cells {
		out[c.Class]++
	}
	return out
}

// String renders the deterministic corpus table: one line per cell in
// corpus × config order, then a class summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crossval: static (delay-set) vs dynamic (simulator) fence inference, %d seeds\n", r.Seeds)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "  %-6s %-16s %-20s static=%s dynamic=%s",
			c.Test, c.Config, c.Class, family(c.StaticForbidden, sitesStrings(c.StaticMinimal)), family(c.DynamicForbidden, dynStrings(c.DynamicMinimal)))
		if c.Detail != "" {
			fmt.Fprintf(&b, "  (%s)", c.Detail)
		}
		b.WriteString("\n")
	}
	counts := r.Counts()
	fmt.Fprintf(&b, "summary: %d match, %d static-conservative, %d violations, %d skipped\n",
		counts[ClassMatch], counts[ClassConservative], counts[ClassViolation], counts[ClassSkipped])
	return b.String()
}

func family(forbidden bool, sets []string) string {
	if forbidden {
		return "forbidden"
	}
	if len(sets) == 0 {
		return "-"
	}
	return strings.Join(sets, "+")
}

func sitesStrings(sets [][]staticfence.Site) []string {
	out := make([]string, len(sets))
	for i, set := range sets {
		parts := make([]string, len(set))
		for j, s := range set {
			parts[j] = s.String()
		}
		out[i] = "{" + strings.Join(parts, ",") + "}"
	}
	return out
}

func dynStrings(sets [][]fencesearch.Site) []string {
	out := make([]string, len(sets))
	for i, set := range sets {
		parts := make([]string, len(set))
		for j, s := range set {
			parts[j] = s.String()
		}
		out[i] = "{" + strings.Join(parts, ",") + "}"
	}
	return out
}
