package crossval

import (
	"strings"
	"testing"

	"invisifence/internal/fencesearch"
	"invisifence/internal/staticfence"
)

// TestCorpusSound is the acceptance gate: across the full litmus corpus and
// every implementation, the static analyzer never misses a dynamically
// required fence (zero soundness violations, every static set re-verified
// by simulation inside Run), and the classification surfaces at least one
// static-conservative cell — the paper's performance-transparency claim.
func TestCorpusSound(t *testing.T) {
	rep, err := Run(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violations(); len(v) != 0 {
		for _, c := range v {
			t.Errorf("soundness violation: %s/%s: %s", c.Test, c.Config, c.Detail)
		}
	}
	counts := rep.Counts()
	if counts[ClassConservative] == 0 {
		t.Error("no static-conservative cells: the dynamic oracle should beat the model somewhere (MP reader side)")
	}
	if counts[ClassMatch] == 0 {
		t.Error("no matching cells")
	}
	// 14 tests x 13 configs, RMW skipped (no canonical target spec).
	if len(rep.Cells) != 182 || counts[ClassSkipped] != 13 {
		t.Errorf("cells=%d skipped=%d, want 182/13", len(rep.Cells), counts[ClassSkipped])
	}

	find := func(test, config string) Cell {
		for _, c := range rep.Cells {
			if c.Test == test && c.Config == config {
				return c
			}
		}
		t.Fatalf("no cell %s/%s", test, config)
		return Cell{}
	}

	// The headline conservative cell: under RMO the delay-set analysis
	// requires MP's reader-side fence (T1@1); the machine's load-queue
	// snooping closes that window, so the dynamic oracle needs only the
	// writer-side fence.
	mp := find("MP", "rmo")
	if mp.Class != ClassConservative {
		t.Errorf("MP/rmo: class %s, want %s", mp.Class, ClassConservative)
	}
	wantStatic := [][]staticfence.Site{{{Thread: 0, PC: 2}, {Thread: 1, PC: 1}}}
	wantDyn := [][]fencesearch.Site{{{Thread: 0, PC: 2}}}
	if len(mp.StaticMinimal) != 1 || len(mp.StaticMinimal[0]) != 2 ||
		mp.StaticMinimal[0][0] != wantStatic[0][0] || mp.StaticMinimal[0][1] != wantStatic[0][1] {
		t.Errorf("MP/rmo static = %v, want %v", mp.StaticMinimal, wantStatic)
	}
	if len(mp.DynamicMinimal) != 1 || len(mp.DynamicMinimal[0]) != 1 ||
		mp.DynamicMinimal[0][0] != wantDyn[0][0] {
		t.Errorf("MP/rmo dynamic = %v, want %v", mp.DynamicMinimal, wantDyn)
	}

	// And an exact-match cell: SB under TSO needs both st->ld fences in
	// both analyzers.
	sb := find("SB", "tso")
	if sb.Class != ClassMatch || len(sb.StaticMinimal) != 1 || len(sb.StaticMinimal[0]) != 2 {
		t.Errorf("SB/tso: class %s static %v, want match with {T0@2,T1@2}", sb.Class, sb.StaticMinimal)
	}

	// The InvisiFence variants must classify identically to their base
	// model statically (the speculation is invisible to the static side).
	if c := find("MP", "invisi-rmo"); c.Class != ClassConservative {
		t.Errorf("MP/invisi-rmo: class %s, want %s", c.Class, ClassConservative)
	}

	// RC rows. Plain MP under rc relaxes like rmo: the static side needs
	// both fences, the machine only the writer side (load-queue snooping).
	for _, cfg := range []string{"rc", "invisi-rc", "louvre-rc"} {
		if c := find("MP", cfg); c.Class != ClassConservative {
			t.Errorf("MP/%s: class %s, want %s (%s)", cfg, c.Class, ClassConservative, c.Detail)
		}
	}
	// MP-rel-acq under RC: the annotations are the fences — the static
	// delay set must be empty (acquire and release edges are not
	// reorderable) and the machine must agree, with no fence inserted.
	for _, cfg := range []string{"rc", "invisi-rc", "louvre-rc"} {
		c := find("MP-rel-acq", cfg)
		if c.Class != ClassMatch || !c.StaticForbidden || !c.DynamicForbidden {
			t.Errorf("MP-rel-acq/%s: class=%s staticForbidden=%v dynamicForbidden=%v, want match/forbidden/forbidden (%s)",
				cfg, c.Class, c.StaticForbidden, c.DynamicForbidden, c.Detail)
		}
	}
	// ...while under rmo the same program degrades to plain MP: the static
	// side must emit real fence sets (annotations carry no RMO ordering).
	if c := find("MP-rel-acq", "rmo"); c.StaticForbidden {
		t.Errorf("MP-rel-acq/rmo: statically forbidden, but RMO ignores the annotations")
	}
}

// TestReportDeterministic: the crossval table is byte-identical across runs
// (the staticfence-smoke CI contract); restricted to two tests to keep the
// second dynamic search cheap.
func TestReportDeterministic(t *testing.T) {
	opts := Options{Workers: 4, Tests: []string{"MP", "R"}}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("crossval report not deterministic:\n%s\n---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "static-conservative") {
		t.Errorf("MP/R crossval should contain a conservative cell:\n%s", a.String())
	}
}
