// Package cpu models the out-of-order processor core of Figure 6: a 4-wide,
// 96-entry-ROB machine with speculative out-of-order load execution,
// store-to-load forwarding, optimistic memory disambiguation with replay,
// a bimodal branch predictor, and in-order retirement.
//
// The core is "functional-at-execute": instruction values are computed when
// the timing model executes them, against the simulated memory system. All
// recovery paths (branch mispredicts, in-window memory-ordering replays
// triggered by load-queue snooping, and post-retirement speculation aborts
// driven by the InvisiFence engine) restore architectural register state and
// refetch, so rollback is functionally real.
//
// Memory-ordering policy is delegated to a Backend (implemented by the node):
// the core asks the backend to retire every load, store, atomic, and fence,
// and the backend applies the Figure 2 consistency rules or initiates
// InvisiFence speculation.
package cpu

import (
	"fmt"

	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// StallReason classifies why retirement is blocked this cycle.
type StallReason uint8

const (
	// StallNone: not stalled (or ROB empty).
	StallNone StallReason = iota
	// StallSBFull: a store cannot retire because the store buffer is full.
	StallSBFull
	// StallSBDrain: retirement waits for the store buffer to drain due to
	// an ordering requirement.
	StallSBDrain
	// StallOther: data stalls (load miss at head, atomic data wait, ...).
	StallOther
)

// String implements fmt.Stringer.
func (r StallReason) String() string {
	switch r {
	case StallNone:
		return "none"
	case StallSBFull:
		return "sb-full"
	case StallSBDrain:
		return "sb-drain"
	case StallOther:
		return "other"
	}
	return fmt.Sprintf("StallReason(%d)", uint8(r))
}

// LoadStatus is the immediate outcome of Backend.StartLoad.
type LoadStatus uint8

const (
	// LoadForwarded: value supplied by the post-retirement store buffer.
	LoadForwarded LoadStatus = iota
	// LoadHit: value supplied by the L1 after its hit latency.
	LoadHit
	// LoadMiss: a fill is outstanding; the backend will call
	// Core.FillLoad(tag, value) when data arrives.
	LoadMiss
	// LoadRetry: no resources (MSHR full); the core retries next cycle.
	LoadRetry
)

// LoadResult is the backend's answer to StartLoad.
type LoadResult struct {
	Status  LoadStatus
	Value   memtypes.Word
	ReadyAt uint64 // cycle the value may feed dependents (Forwarded/Hit)
}

// Backend is the node-side memory system and consistency/speculation policy
// the core talks to.
type Backend interface {
	// StartLoad begins a load's memory access. tag identifies the request
	// for a later FillLoad on a miss.
	StartLoad(tag uint64, addr memtypes.Addr) LoadResult
	// RetireLoad applies retirement policy for a load whose value is
	// already bound. op distinguishes plain loads from acquiring loads
	// (ld.acq); fromL1 reports whether the value came from the memory
	// system (as opposed to in-window forwarding).
	RetireLoad(op isa.Op, addr memtypes.Addr, fromL1 bool) (bool, StallReason)
	// RetireStore attempts to make a store visible (L1 write or store
	// buffer entry) at retirement. op distinguishes plain stores from
	// releasing stores (st.rel).
	RetireStore(op isa.Op, addr memtypes.Addr, val memtypes.Word) (bool, StallReason)
	// RetireAtomic attempts to perform an atomic read-modify-write at
	// retirement, returning the old value when it completes.
	RetireAtomic(op isa.Op, addr memtypes.Addr, opA, opB memtypes.Word) (bool, memtypes.Word, StallReason)
	// RetireFence applies retirement policy for a memory fence.
	RetireFence() (bool, StallReason)
	// OnRetireInstr is called once per retired instruction (chunk sizing,
	// forward-progress tracking).
	OnRetireInstr()
}

// Config sizes the core (defaults follow Figure 6).
type Config struct {
	FetchWidth      int
	IssueWidth      int
	RetireWidth     int
	ROBSize         int
	MemPorts        int
	RedirectPenalty uint64
	PredictorBits   int // log2 of bimodal predictor entries
	// IssueWindow caps how many waiting instructions the scheduler
	// examines per cycle (the issue queue is smaller than the ROB in real
	// machines; this also bounds simulation cost).
	IssueWindow int
}

// DefaultConfig returns the Figure 6 core: 4-wide, 96-entry ROB, 3 memory
// ports, 8-stage pipeline (a 6-cycle redirect penalty).
func DefaultConfig() Config {
	return Config{
		FetchWidth:      4,
		IssueWidth:      4,
		RetireWidth:     4,
		ROBSize:         96,
		MemPorts:        3,
		RedirectPenalty: 6,
		PredictorBits:   12,
		IssueWindow:     40,
	}
}

// entry states.
const (
	sDispatched uint8 = iota
	sIssued           // executing (doneAt pending) or load access in flight
	sDone             // value bound (for atomics: only after retirement action)
)

type robEntry struct {
	used bool
	seq  uint64
	pc   int
	in   isa.Instr

	predNext int // fetch-time predicted successor pc

	state   uint8
	doneAt  uint64
	value   memtypes.Word
	addr    memtypes.Addr
	addrOK  bool
	dataVal memtypes.Word // staged store data

	// Load bookkeeping.
	valueOK  bool   // value bound (may still be before doneAt)
	fwdSQ    bool   // value forwarded from an in-flight (in-window) store
	fwdSeq   uint64 // seq of the forwarding store
	fromL1   bool   // value came from the memory system (SB/L1/fill)
	pendFill bool   // waiting for FillLoad

	// Operand capture. srcSeq validates srcRef against slot reuse: if the
	// slot no longer holds that seq, the producer retired and its value is
	// in the architectural file under srcReg.
	srcRef [3]int // producer ROB slot or -1
	srcSeq [3]uint64
	srcReg [3]isa.Reg
	opVal  [3]memtypes.Word
	opOK   [3]bool

	// Issue-readiness memo (valid while wakeGen == Core.opGen): the entry
	// cannot pass operandsReady before wakeAt, by the same time-based bound
	// issueEvent computes. Turns the per-cycle issue scan's operand walk
	// into two compares for entries waiting on known completion times.
	// A NoEvent bound (producer not yet issued) is additionally versioned
	// by wakeFlow: any issue anywhere can start such a producer and give
	// the chain a finite completion time, so those memos expire whenever a
	// scan issues something. Finite bounds cannot be accelerated by issues
	// — completion times are fixed at issue — only by the disturb events.
	wakeAt   uint64
	wakeGen  uint64
	wakeFlow uint64
}

// slotQueue is a FIFO of ROB slot indices with O(1) head removal: a head
// offset instead of re-slicing, with amortized compaction, so the retire-
// side pops neither walk the queue off its backing array (which forced a
// reallocation every few dozen pushes) nor shift the whole queue per pop.
type slotQueue struct {
	buf  []int
	head int
}

// slots returns the live entries in order (do not retain across mutation).
func (q *slotQueue) slots() []int { return q.buf[q.head:] }

func (q *slotQueue) len() int { return len(q.buf) - q.head }

func (q *slotQueue) push(s int) { q.buf = append(q.buf, s) }

func (q *slotQueue) reset() { q.buf = q.buf[:0]; q.head = 0 }

// remove deletes the entry at index i of slots().
func (q *slotQueue) remove(i int) {
	live := q.buf[q.head:]
	copy(live[i:], live[i+1:])
	q.buf = q.buf[:len(q.buf)-1]
}

// popHead drops the first live entry, compacting once the dead prefix
// dominates (amortized O(1), bounded memory).
func (q *slotQueue) popHead() {
	q.head++
	switch {
	case q.head == len(q.buf):
		q.reset()
	case q.head >= 32 && q.head*2 >= len(q.buf):
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
}

// Core is one simulated processor core.
type Core struct {
	cfg     Config
	id      int
	prog    *isa.Program
	backend Backend
	now     uint64

	archRegs [isa.NumRegs]memtypes.Word
	pc       int
	halted   bool

	rob         []robEntry
	head        int
	tail        int // next free slot index
	count       int
	nextSeq     uint64
	rename      [isa.NumRegs]int // ROB slot of latest producer, -1 = architectural
	fetchPC     int
	stallTil    uint64
	fetchedHalt bool

	// LQ/SQ: slots of in-flight loads and stores/atomics in program
	// order, and the list of executing entries awaiting completion.
	loadQ  slotQueue
	storeQ slotQueue
	execQ  []int

	// dispQ holds exactly the not-yet-issued (sDispatched) slots in program
	// order, so the issue scan touches only candidate entries instead of
	// walking the whole ROB every cycle. Entries are appended at dispatch,
	// removed the moment they leave sDispatched (issue, head retirement of
	// Halt/Fence, squash rebuild).
	dispQ slotQueue
	// issueScratch is the reusable per-cycle snapshot the issue scan
	// iterates, so mid-scan squashes (which rebuild dispQ) cannot invalidate
	// the iteration.
	issueScratch []int

	pred     []uint8 // bimodal 2-bit counters
	predMask uint32

	// execMin is a conservative lower bound on the earliest doneAt of any
	// execQ entry (never late: queueExec lowers it, a promote pass
	// recomputes it from survivors, squashes only remove entries). Most
	// cycles promote is a single compare against it.
	execMin uint64

	// Issue-horizon cache. A full issue scan that starts nothing proves —
	// by the same read-only operand analysis Core.NextEvent exposes to the
	// idle-skip scheduler — that no dispatched entry can become issueable
	// before issueWake without an outside event (a fill, a squash, a new
	// dispatch, an atomic retiring a value). Until then the per-cycle scan
	// (snapshot copy + operand walk over up to IssueWindow entries) is
	// skipped entirely; every outside event clears the flag (disturbIssue).
	// Purely a memoization: issue order and results are bit-identical.
	// opGen versions the per-entry wakeAt memos; disturbIssue bumps it.
	issueQuiet bool
	issueWake  uint64
	opGen      uint64
	flowGen    uint64 // counts scans that issued; versions NoEvent memos

	// Per-cycle outputs for the node's accounting.
	RetiredThisCycle int
	HeadStall        StallReason

	// Stats.
	Retired, RetiredLoads, RetiredStores, RetiredAtomics, RetiredFences uint64
	Mispredicts, Replays, Squashes                                      uint64
	FetchedWrongPath                                                    uint64
}

// New creates a core running prog with the given initial register state.
func New(id int, cfg Config, prog *isa.Program, regs [isa.NumRegs]memtypes.Word, backend Backend) *Core {
	if cfg.ROBSize <= 0 {
		panic("cpu: ROB size must be positive")
	}
	c := &Core{
		cfg:      cfg,
		id:       id,
		prog:     prog,
		backend:  backend,
		rob:      make([]robEntry, cfg.ROBSize),
		pred:     make([]uint8, 1<<cfg.PredictorBits),
		predMask: uint32(1<<cfg.PredictorBits - 1),
	}
	c.archRegs = regs
	c.archRegs[isa.R0] = 0
	c.execMin = memtypes.NoEvent
	for i := range c.rename {
		c.rename[i] = -1
	}
	// Weakly-taken initial counters help tight spin loops converge fast.
	for i := range c.pred {
		c.pred[i] = 2
	}
	return c
}

// Halted reports whether the program has retired its Halt.
func (c *Core) Halted() bool { return c.halted }

// ArchReg returns the committed value of a register.
func (c *Core) ArchReg(r isa.Reg) memtypes.Word { return c.archRegs[r] }

// ArchPC returns the committed program counter.
func (c *Core) ArchPC() int { return c.pc }

// ROBOccupancy returns the number of in-flight instructions.
func (c *Core) ROBOccupancy() int { return c.count }

func (c *Core) slotAge(slot int) int {
	// Age = distance from head in ring order.
	d := slot - c.head
	if d < 0 {
		d += c.cfg.ROBSize
	}
	return d
}

func (c *Core) older(a, b int) bool { return c.slotAge(a) < c.slotAge(b) }

// SyncNow re-aligns the core's internal clock before the node processes
// incoming messages. Message-driven paths (FillLoad completions, SnoopBlock
// replays, FlushAll aborts) read c.now before Tick runs; the lock-step loop
// guarantees it then equals the previous cycle, and redirect penalties are
// anchored to it. After an idle-skip jump the last ticked cycle may be
// several cycles back, so the node re-anchors explicitly to keep both loops
// bit-identical.
func (c *Core) SyncNow(now uint64) { c.now = now }

// Tick advances the core one cycle: complete, retire, issue, fetch.
func (c *Core) Tick(now uint64) {
	c.now = now
	c.RetiredThisCycle = 0
	c.HeadStall = StallNone
	if c.halted {
		return
	}
	c.promote()
	c.retire()
	c.issue()
	c.fetch()
}

// promote marks finished executions done so they can retire this cycle.
// Only entries on the exec queue (issued with a completion time) are
// examined; squashed entries are dropped by seq mismatch.
func (c *Core) promote() {
	if len(c.execQ) == 0 || c.now < c.execMin {
		return // nothing can have completed yet
	}
	live := c.execQ[:0]
	next := uint64(memtypes.NoEvent)
	for _, s := range c.execQ {
		e := &c.rob[s]
		if !e.used || e.state != sIssued || e.pendFill {
			continue // squashed, reused, or re-queued via FillLoad
		}
		if c.now >= e.doneAt {
			e.state = sDone
			continue
		}
		live = append(live, s)
		next = min(next, e.doneAt)
	}
	c.execQ = live
	c.execMin = next
}

// queueExec registers an issued entry for later completion.
func (c *Core) queueExec(slot int) {
	c.execQ = append(c.execQ, slot)
	if d := c.rob[slot].doneAt; d < c.execMin {
		c.execMin = d
	}
}

// ---------------------------------------------------------------- retire

func (c *Core) retire() {
	for n := 0; n < c.cfg.RetireWidth; n++ {
		if c.count == 0 {
			if c.RetiredThisCycle == 0 {
				c.HeadStall = StallOther
			}
			return
		}
		e := &c.rob[c.head]
		in := e.in
		switch {
		case in.Op == isa.Halt:
			c.commitEntry(e)
			c.halted = true
			return
		case in.Op == isa.Fence:
			ok, why := c.backend.RetireFence()
			if !ok {
				c.stallAt(why)
				return
			}
			c.RetiredFences++
			c.commitEntry(e)
		case in.Op.IsLoad():
			if e.state != sDone || c.now < e.doneAt {
				c.stallAt(StallOther)
				return
			}
			ok, why := c.backend.RetireLoad(in.Op, e.addr, e.fromL1)
			if !ok {
				c.stallAt(why)
				return
			}
			c.RetiredLoads++
			c.commitEntry(e)
		case in.Op.IsStore():
			if e.state != sDone {
				c.stallAt(StallOther)
				return
			}
			ok, why := c.backend.RetireStore(in.Op, e.addr, e.dataVal)
			if !ok {
				c.stallAt(why)
				return
			}
			c.RetiredStores++
			c.commitEntry(e)
		case in.Op.IsAtomic():
			c.captureOps(e)
			if !e.addrOK || !e.opOK[1] || (in.Op == isa.Cas && !e.opOK[2]) {
				c.stallAt(StallOther)
				return
			}
			var opB memtypes.Word
			if in.Op == isa.Cas {
				opB = e.opVal[2]
			}
			ok, old, why := c.backend.RetireAtomic(in.Op, e.addr, e.opVal[1], opB)
			if !ok {
				c.stallAt(why)
				return
			}
			e.value = old
			e.state = sDone
			c.RetiredAtomics++
			c.commitEntry(e)
		default:
			if e.state != sDone || c.now < e.doneAt {
				c.stallAt(StallOther)
				return
			}
			c.commitEntry(e)
		}
	}
}

func (c *Core) stallAt(why StallReason) {
	if c.RetiredThisCycle == 0 {
		c.HeadStall = why
	}
}

// commitEntry retires the head entry: architectural state update and
// rename release. In-flight consumers referencing this slot detect the
// retirement by seq mismatch and read the architectural file instead.
func (c *Core) commitEntry(e *robEntry) {
	slot := c.head
	in := e.in
	if in.Op.WritesRd() && in.Rd != isa.R0 {
		c.archRegs[in.Rd] = e.value
		if c.rename[in.Rd] == slot {
			c.rename[in.Rd] = -1
		}
	}
	if c.loadQ.len() > 0 && c.loadQ.slots()[0] == slot {
		c.loadQ.popHead()
	}
	if c.storeQ.len() > 0 && c.storeQ.slots()[0] == slot {
		c.storeQ.popHead()
	}
	// Halt and Fence can retire straight out of sDispatched (retirement
	// policy handles them at the head before issue ever sees them); the slot
	// is the oldest instruction, so if it is still queued it is dispQ[0].
	if c.dispQ.len() > 0 && c.dispQ.slots()[0] == slot {
		c.dispQ.popHead()
	}
	c.pc = e.predNext // committed successor (mispredicts were squashed at execute)
	c.disturbIssue()  // an atomic's value binds at retirement; the window moves
	e.used = false
	c.head = (c.head + 1) % c.cfg.ROBSize
	c.count--
	c.Retired++
	c.RetiredThisCycle++
	c.backend.OnRetireInstr()
}

// ----------------------------------------------------------------- issue

func (c *Core) issue() {
	if c.dispQ.len() == 0 {
		return
	}
	if c.issueQuiet && c.now < c.issueWake {
		return
	}
	c.issueQuiet = false
	issued := 0
	memIssued := 0
	window := c.cfg.IssueWindow
	if window <= 0 {
		window = c.cfg.ROBSize
	}
	examined := 0
	// Iterate a snapshot: mid-scan squashes (replays, mispredicts) rebuild
	// dispQ, but squashed slots cannot be reused until fetch runs, so stale
	// snapshot entries are safely skipped by the used/state check.
	scratch := append(c.issueScratch[:0], c.dispQ.slots()...)
	c.issueScratch = scratch
	for _, s := range scratch {
		e := &c.rob[s]
		if !e.used || e.state != sDispatched {
			continue // squashed during this scan
		}
		if issued >= c.cfg.IssueWidth || examined >= window {
			break
		}
		examined++
		if e.wakeGen == c.opGen && c.now < e.wakeAt &&
			(e.wakeAt != memtypes.NoEvent || e.wakeFlow == c.flowGen) {
			continue // memoized: cannot become ready this cycle
		}
		ready, wake := c.examineEntry(e)
		if !ready {
			e.wakeAt = wake
			e.wakeGen = c.opGen
			e.wakeFlow = c.flowGen
			continue
		}
		in := e.in
		switch {
		case in.Op == isa.Halt || in.Op == isa.Fence:
			// No execution; retirement policy handles them at the head.
			e.state = sDone
			e.doneAt = c.now
			c.removeDisp(s)
		case in.Op.IsLoad():
			if memIssued >= c.cfg.MemPorts {
				continue
			}
			if c.issueLoad(s, e) {
				memIssued++
				issued++
			}
			if e.state != sDispatched {
				c.removeDisp(s)
			}
		case in.Op.IsStore():
			e.addr = memtypes.WordAlign(memtypes.Addr(e.opVal[0]) + memtypes.Addr(in.Imm))
			e.addrOK = true
			e.dataVal = e.opVal[1]
			e.state = sDone
			e.doneAt = c.now
			issued++
			c.removeDisp(s)
			c.checkStoreConflicts(s, e)
		case in.Op.IsAtomic():
			// Address generation only; the RMW happens at retirement.
			e.addr = memtypes.WordAlign(memtypes.Addr(e.opVal[0]) + memtypes.Addr(in.Imm))
			e.addrOK = true
			e.state = sIssued
			e.doneAt = c.now
			issued++
			c.removeDisp(s)
			c.checkStoreConflicts(s, e)
		case in.Op.IsBranch():
			c.removeDisp(s)
			mispredicted := c.executeBranch(s, e)
			issued++
			if mispredicted {
				// Younger entries are gone; stop the scan.
				return
			}
		default:
			e.value = evalALU(in, e.opVal[0], e.opVal[1])
			e.state = sIssued
			e.doneAt = c.now + in.Op.Latency(in.Imm)
			c.queueExec(s)
			issued++
			c.removeDisp(s)
		}
	}
	if issued == 0 {
		// Nothing started (so no port was consumed and no entry changed
		// state except Halt/Fence leaving the queue): cache the earliest
		// cycle the remaining window could become ready.
		c.issueQuiet, c.issueWake = true, c.dispHorizon()
	} else {
		c.flowGen++ // a started producer may un-block NoEvent memos
	}
}

// dispHorizon returns the earliest cycle any dispatched entry within the
// issue window could pass operandsReady (NextEvent's dispatch-queue term).
func (c *Core) dispHorizon() uint64 {
	window := c.cfg.IssueWindow
	if window <= 0 {
		window = c.cfg.ROBSize
	}
	next := uint64(memtypes.NoEvent)
	for i, s := range c.dispQ.slots() {
		if i >= window {
			break
		}
		e := &c.rob[s]
		if e.wakeGen == c.opGen &&
			(e.wakeAt != memtypes.NoEvent || e.wakeFlow == c.flowGen) {
			// A memoized bound may be conservatively early (never late) —
			// exactly the NextEvent contract — but it may also sit in the
			// past when a width-limited scan broke before refreshing it;
			// clamp to the future (NoEvent saturates).
			next = min(next, max(c.now+1, e.wakeAt))
			continue
		}
		next = min(next, c.issueEvent(e))
	}
	return next
}

// disturbIssue invalidates the issue-horizon cache and every per-entry
// readiness memo: an event outside the scan's time-based operand analysis
// may have made an entry ready.
func (c *Core) disturbIssue() {
	c.issueQuiet = false
	c.opGen++
}

// removeDisp removes a slot from the dispatched queue the moment it leaves
// sDispatched. Issued slots sit near the front, so the scan is short.
func (c *Core) removeDisp(slot int) {
	for i, s := range c.dispQ.slots() {
		if s == slot {
			c.dispQ.remove(i)
			return
		}
	}
}

// captureOps lazily captures operands whose producers completed after this
// entry's dispatch (used by the atomic retirement path).
func (c *Core) captureOps(e *robEntry) {
	for k := 0; k < 3; k++ {
		if !e.opOK[k] {
			c.captureOp(e, k)
		}
	}
}

// captureOp tries to bind operand k. The producer may have retired (seq
// mismatch after slot reuse, or slot freed): then the architectural file
// holds its value — any in-flight intervening writer of the same register
// would have been the rename source instead.
func (c *Core) captureOp(e *robEntry, k int) bool {
	p := e.srcRef[k]
	if p < 0 {
		e.opOK[k] = true
		return true
	}
	pe := &c.rob[p]
	if !pe.used || pe.seq != e.srcSeq[k] {
		e.opVal[k] = c.archRegs[e.srcReg[k]]
		e.opOK[k] = true
		e.srcRef[k] = -1
		return true
	}
	if pe.state == sDone && c.now >= pe.doneAt {
		e.opVal[k] = pe.value
		e.opOK[k] = true
		e.srcRef[k] = -1
		return true
	}
	return false
}

// examineEntry captures any newly available operands and reports readiness
// — and, when the entry is not ready, the earliest cycle it could become so
// (issueEvent's bound), computed in the same walk instead of a second one.
func (c *Core) examineEntry(e *robEntry) (bool, uint64) {
	var ok [3]bool
	var b [3]uint64
	for k := 0; k < 3; k++ {
		ok[k], b[k] = c.captureOpBound(e, k)
	}
	// Loads and atomics only need rs1 (+rs2/rs3 for retirement, captured
	// separately); address generation can proceed on rs1 alone.
	if e.in.Op.IsLoad() || e.in.Op.IsAtomic() {
		if ok[0] {
			return true, 0
		}
		return false, max(c.now+1, b[0]) // saturates at NoEvent
	}
	if ok[0] && ok[1] && ok[2] {
		return true, 0
	}
	t := c.now + 1
	for k := 0; k < 3; k++ {
		if ok[k] {
			continue
		}
		if b[k] == memtypes.NoEvent {
			return false, memtypes.NoEvent
		}
		t = max(t, b[k])
	}
	return false, t
}

// captureOpBound is captureOp fused with operandReadyAt: it binds operand k
// if possible, and otherwise reports when binding could next succeed.
func (c *Core) captureOpBound(e *robEntry, k int) (bool, uint64) {
	if e.opOK[k] {
		return true, 0
	}
	p := e.srcRef[k]
	if p < 0 {
		e.opOK[k] = true
		return true, 0
	}
	pe := &c.rob[p]
	if !pe.used || pe.seq != e.srcSeq[k] {
		e.opVal[k] = c.archRegs[e.srcReg[k]]
		e.opOK[k] = true
		e.srcRef[k] = -1
		return true, 0
	}
	switch {
	case pe.state == sDone:
		if c.now >= pe.doneAt {
			e.opVal[k] = pe.value
			e.opOK[k] = true
			e.srcRef[k] = -1
			return true, 0
		}
		return false, pe.doneAt
	case pe.state == sIssued && !pe.pendFill && !pe.in.Op.IsAtomic():
		// Will be promoted to sDone at doneAt, before issue runs that cycle.
		return false, max(c.now+1, pe.doneAt)
	}
	return false, memtypes.NoEvent
}

// issueLoad computes the address, searches older in-flight stores, and
// falls back to the memory system. Returns true if a port was consumed.
func (c *Core) issueLoad(slot int, e *robEntry) bool {
	e.addr = memtypes.WordAlign(memtypes.Addr(e.opVal[0]) + memtypes.Addr(e.in.Imm))
	e.addrOK = true
	// Search older stores/atomics (store queue, youngest-first) for a
	// same-word match.
	sq := c.storeQ.slots()
	for i := len(sq) - 1; i >= 0; i-- {
		o := &c.rob[sq[i]]
		if o.seq >= e.seq {
			continue // younger than the load
		}
		if !o.addrOK || o.addr != e.addr {
			continue
		}
		if o.in.Op.IsStore() {
			// Forward staged data.
			e.value = o.dataVal
			e.valueOK = true
			e.fwdSQ = true
			e.fwdSeq = o.seq
			e.fromL1 = false
			e.state = sIssued
			e.doneAt = c.now + 1
			c.queueExec(slot)
			return true
		}
		// The atomic's result is unknown until it retires: wait.
		return false
	}
	// Optimistic past unknown-address stores; the store-side conflict check
	// replays us if we were wrong.
	res := c.backend.StartLoad(e.seq, e.addr)
	switch res.Status {
	case LoadRetry:
		e.addrOK = true
		return true // port consumed, retry next cycle
	case LoadForwarded, LoadHit:
		e.value = res.Value
		e.valueOK = true
		e.fromL1 = res.Status == LoadHit
		e.state = sIssued
		e.doneAt = res.ReadyAt
		c.queueExec(slot)
	case LoadMiss:
		e.pendFill = true
		e.fromL1 = true
		e.state = sIssued
		e.doneAt = ^uint64(0) >> 1
	}
	return true
}

// checkStoreConflicts implements optimistic disambiguation: when a store or
// atomic computes its address, the oldest younger load that executed with a
// value not forwarded from it and that overlaps its word is replayed.
func (c *Core) checkStoreConflicts(slot int, st *robEntry) {
	for _, s := range c.loadQ.slots() {
		l := &c.rob[s]
		if l.seq <= st.seq {
			continue
		}
		if l.valueOK && l.addrOK && l.addr == st.addr && l.fwdSeq != st.seq {
			c.Replays++
			c.squashFrom(s)
			return
		}
	}
}

// executeBranch resolves a branch at issue and redirects on mispredict.
// It reports whether a mispredict squashed younger entries.
func (c *Core) executeBranch(slot int, e *robEntry) bool {
	actual := c.branchTarget(e)
	e.state = sDone
	e.doneAt = c.now
	e.value = 0
	c.updatePredictor(e.pc, actual != e.pc+1)
	if actual == e.predNext {
		return false
	}
	c.Mispredicts++
	e.predNext = actual
	if c.slotAge(slot)+1 < c.count {
		c.squashSlots((slot + 1) % c.cfg.ROBSize)
	}
	c.fetchPC = actual
	c.fetchedHalt = false
	c.stallTil = c.now + c.cfg.RedirectPenalty
	return true
}

func (c *Core) branchTarget(e *robEntry) int {
	in := e.in
	taken := false
	switch in.Op {
	case isa.Br:
		taken = true
	case isa.Beq:
		taken = e.opVal[0] == e.opVal[1]
	case isa.Bne:
		taken = e.opVal[0] != e.opVal[1]
	case isa.Bltu:
		taken = e.opVal[0] < e.opVal[1]
	case isa.Bgeu:
		taken = e.opVal[0] >= e.opVal[1]
	}
	if taken {
		return in.Target
	}
	return e.pc + 1
}

// ----------------------------------------------------------------- fetch

func (c *Core) fetch() {
	if c.now < c.stallTil || c.fetchedHalt {
		return
	}
	for n := 0; n < c.cfg.FetchWidth && c.count < c.cfg.ROBSize; n++ {
		if c.fetchPC < 0 || c.fetchPC >= len(c.prog.Instrs) {
			// Fell off the program (wrong path); stop until redirected.
			c.FetchedWrongPath++
			return
		}
		in := c.prog.Instrs[c.fetchPC]
		next := c.fetchPC + 1
		if in.Op == isa.Br {
			next = in.Target
		} else if in.Op.IsCondBranch() && c.predictTaken(c.fetchPC) {
			next = in.Target
		}
		c.dispatch(c.fetchPC, in, next)
		if in.Op == isa.Halt {
			c.fetchedHalt = true
			return
		}
		c.fetchPC = next
	}
}

func (c *Core) dispatch(pc int, in isa.Instr, predNext int) {
	slot := c.tail
	e := &c.rob[slot]
	c.nextSeq++
	// Field-wise reset instead of *e = robEntry{...}: the composite literal
	// zeroes and copies the whole ~200-byte entry per dispatched instruction,
	// which profiled as the core's single hottest line. Every field read
	// before being written is reset here; opVal/srcSeq/srcReg slots are only
	// read under opOK[k]==false with srcRef[k] >= 0 (both set by bind) or
	// after bind wrote the value, so their stale contents are dead.
	e.used = true
	e.seq = c.nextSeq
	e.pc = pc
	e.in = in
	e.predNext = predNext
	e.state = sDispatched
	e.doneAt = 0
	e.value = 0
	e.addr = 0
	e.addrOK = false
	e.dataVal = 0
	e.valueOK = false
	e.fwdSQ = false
	e.fwdSeq = 0
	e.fromL1 = false
	e.pendFill = false
	e.wakeGen = 0 // memo invalid until the first scan
	for k := 0; k < 3; k++ {
		e.srcRef[k] = -1
		e.opOK[k] = true
	}
	bind := func(k int, r isa.Reg) {
		if r == isa.R0 {
			e.opVal[k] = 0
			e.opOK[k] = true
			e.srcRef[k] = -1
			return
		}
		if p := c.rename[r]; p >= 0 {
			pe := &c.rob[p]
			if pe.state == sDone && c.now >= pe.doneAt {
				e.opVal[k] = pe.value
				e.opOK[k] = true
			} else {
				e.srcRef[k] = p
				e.srcSeq[k] = pe.seq
				e.srcReg[k] = r
				e.opOK[k] = false
			}
		} else {
			e.opVal[k] = c.archRegs[r]
			e.opOK[k] = true
		}
	}
	switch {
	case in.Op == isa.MovI || in.Op == isa.Delay || in.Op == isa.Nop || in.Op == isa.Halt || in.Op == isa.Fence || in.Op == isa.Br:
		// No sources.
	case in.Op == isa.AddI || in.Op == isa.ShlI || in.Op == isa.ShrI || in.Op.IsLoad():
		bind(0, in.Rs1)
	case in.Op == isa.Cas:
		bind(0, in.Rs1)
		bind(1, in.Rs2)
		bind(2, in.Rs3)
	default:
		bind(0, in.Rs1)
		bind(1, in.Rs2)
	}
	if in.Op == isa.MovI {
		e.opOK[0] = true
	}
	if in.Op.WritesRd() && in.Rd != isa.R0 {
		c.rename[in.Rd] = slot
	}
	if in.Op.IsLoad() {
		c.loadQ.push(slot)
	} else if in.Op.IsStore() || in.Op.IsAtomic() {
		c.storeQ.push(slot)
	}
	c.dispQ.push(slot)
	c.disturbIssue()
	c.tail = (c.tail + 1) % c.cfg.ROBSize
	c.count++
}

// ---------------------------------------------------------------- squash

// squashFrom squashes the entry at slot and everything younger, restarting
// fetch at that entry's pc (replay).
func (c *Core) squashFrom(slot int) {
	pc := c.rob[slot].pc
	c.squashSlots(slot)
	c.fetchPC = pc
	c.fetchedHalt = false
	c.stallTil = c.now + c.cfg.RedirectPenalty
}

// squashSlots removes the entry at slot and everything younger from the ROB
// and rebuilds the rename table.
func (c *Core) squashSlots(slot int) {
	n := c.slotAge(slot)
	for i, s := n, slot; i < c.count; i, s = i+1, (s+1)%c.cfg.ROBSize {
		c.rob[s].used = false
	}
	c.count = n
	c.tail = slot
	c.Squashes++
	c.disturbIssue()
	c.rebuildRename()
}

// FlushAll squashes the entire pipeline and redirects fetch to pc with
// architectural registers replaced by regs: the InvisiFence abort path.
// A Halt that retired speculatively is rolled back too: the core resumes.
func (c *Core) FlushAll(regs [isa.NumRegs]memtypes.Word, pc int) {
	for i, s := 0, c.head; i < c.count; i, s = i+1, (s+1)%c.cfg.ROBSize {
		c.rob[s].used = false
	}
	c.count = 0
	c.tail = c.head
	c.archRegs = regs
	c.archRegs[isa.R0] = 0
	c.pc = pc
	c.fetchPC = pc
	c.fetchedHalt = false
	c.halted = false
	c.stallTil = c.now + c.cfg.RedirectPenalty
	c.Squashes++
	c.disturbIssue()
	c.rebuildRename()
}

// rebuildRename reconstructs the rename table and the load/store/exec
// queues from the surviving ROB entries after a squash.
func (c *Core) rebuildRename() {
	for i := range c.rename {
		c.rename[i] = -1
	}
	c.loadQ.reset()
	c.storeQ.reset()
	c.execQ = c.execQ[:0]
	c.dispQ.reset()
	for i, s := 0, c.head; i < c.count; i, s = i+1, (s+1)%c.cfg.ROBSize {
		e := &c.rob[s]
		if e.in.Op.WritesRd() && e.in.Rd != isa.R0 {
			c.rename[e.in.Rd] = s
		}
		if e.in.Op.IsLoad() {
			c.loadQ.push(s)
		} else if e.in.Op.IsStore() || e.in.Op.IsAtomic() {
			c.storeQ.push(s)
		}
		if e.state == sIssued && !e.in.Op.IsAtomic() && !e.pendFill {
			c.execQ = append(c.execQ, s)
			if e.doneAt < c.execMin {
				c.execMin = e.doneAt
			}
		}
		if e.state == sDispatched {
			c.dispQ.push(s)
		}
	}
}

// ------------------------------------------------------------- externals

// FillLoad delivers data for an outstanding load miss. Stale fills (for
// squashed entries) are ignored by tag mismatch.
func (c *Core) FillLoad(tag uint64, val memtypes.Word) {
	for _, s := range c.loadQ.slots() {
		e := &c.rob[s]
		if e.used && e.seq == tag && e.pendFill {
			e.pendFill = false
			e.value = val
			e.valueOK = true
			e.doneAt = c.now + 1
			c.queueExec(s)
			c.disturbIssue()
			return
		}
	}
}

// SnoopBlock implements load-queue snooping (§2.1): an external
// invalidation or ownership transfer for a block replays the oldest
// executed-but-unretired load to that block (in-window-forwarded loads are
// exempt: they read their own in-flight store). Returns true if a replay
// occurred. Conventional implementations of all three models need this;
// InvisiFence-Continuous would not (§4.2), but keeping it on is
// conservative and covers execute-to-retire protection gaps (DESIGN.md).
func (c *Core) SnoopBlock(block memtypes.Addr) bool {
	for _, s := range c.loadQ.slots() {
		e := &c.rob[s]
		if e.used && e.valueOK && !e.fwdSQ && memtypes.BlockAddr(e.addr) == block {
			c.Replays++
			c.squashFrom(s)
			return true
		}
	}
	return false
}

// --------------------------------------------------------- event horizon

// NextEvent returns the earliest future cycle at which this core might make
// progress on its own — complete an execution, issue a newly-ready
// instruction, or fetch — or memtypes.NoEvent when the core is provably
// blocked until an external input (a load fill) arrives. Retirement at the
// ROB head is deliberately excluded: whether a retirement-ready head
// actually advances depends on the memory backend's consistency policy, so
// the node folds HeadState into its own horizon. The hint must never be
// late: if the core would change state at cycle T, the returned value must
// be <= T. Early hints only cost a wasted tick.
//
// The method is read-only; in particular it never captures operands (the
// issue path does that), so calling it cannot perturb the simulation.
func (c *Core) NextEvent() uint64 {
	if c.halted {
		return memtypes.NoEvent
	}
	next := uint64(memtypes.NoEvent)
	// Fetch: possible whenever there is ROB room and a valid fetch PC.
	// (A wrong-path PC past the program end fetches nothing; SkipCycles
	// replicates its per-cycle counter.)
	if !c.fetchedHalt && c.count < c.cfg.ROBSize && c.fetchPC >= 0 && c.fetchPC < len(c.prog.Instrs) {
		next = min(next, max(c.now+1, c.stallTil))
	}
	// Execution completions promote entries to sDone. execMin bounds every
	// live completion from below (possibly early when stale entries linger
	// — a wasted tick, never a missed one).
	if len(c.execQ) > 0 {
		next = min(next, max(c.now+1, c.execMin))
	}
	// Dispatched entries become issueable when their operands arrive (only
	// the first IssueWindow queue entries can be examined by the scan, so
	// later ones cannot generate an event before the queue moves). A valid
	// issue-horizon cache is exactly this term, already computed.
	if c.issueQuiet {
		next = min(next, max(c.now+1, c.issueWake))
	} else {
		next = min(next, c.dispHorizon())
	}
	return next
}

// HeadState is a read-only snapshot of the ROB head, exposed so the node
// can fold retirement-policy knowledge (which lives in the backend) into
// its idle-skip horizon.
type HeadState struct {
	Valid  bool // ROB non-empty and core running
	Op     isa.Op
	Addr   memtypes.Addr // meaningful when AddrOK (loads/stores/atomics)
	AddrOK bool
	// Ready reports that the retirement policy will be invoked for the head
	// next cycle. ReadyAt is the earliest cycle that could happen
	// (memtypes.NoEvent: only after an external event such as a fill).
	Ready   bool
	ReadyAt uint64
	// OpA/OpB are a ready atomic's data operands (the compare value and, for
	// CAS, the swap value), peeked read-only: the node needs the actual
	// values — a CAS whose compare fails retires read-only — to classify a
	// buffer-blocked speculative atomic as a skippable wait. OpsOK reports
	// that both were resolvable without mutating capture state.
	OpA, OpB memtypes.Word
	OpsOK    bool
}

// HeadState returns the retirement snapshot of the ROB head.
func (c *Core) HeadState() HeadState {
	if c.halted || c.count == 0 {
		return HeadState{}
	}
	e := &c.rob[c.head]
	hs := HeadState{Valid: true, Op: e.in.Op, Addr: e.addr, AddrOK: e.addrOK}
	switch {
	case e.in.Op == isa.Halt || e.in.Op == isa.Fence:
		hs.Ready = true
		hs.ReadyAt = c.now + 1
	case e.in.Op.IsAtomic():
		hs.ReadyAt = c.retireAtomicEvent(e)
		hs.Ready = hs.ReadyAt == c.now+1
		if hs.Ready {
			hs.OpA, hs.OpsOK = c.peekOp(e, 1)
			if e.in.Op == isa.Cas {
				var okB bool
				hs.OpB, okB = c.peekOp(e, 2)
				hs.OpsOK = hs.OpsOK && okB
			}
		}
	default:
		switch {
		case e.pendFill:
			hs.ReadyAt = memtypes.NoEvent
		case e.state == sDone || e.state == sIssued:
			hs.ReadyAt = max(c.now+1, e.doneAt)
			hs.Ready = hs.ReadyAt == c.now+1
		default:
			// Not issued yet; the dispatch-queue scan owns this event.
			hs.ReadyAt = memtypes.NoEvent
		}
	}
	return hs
}

// peekOp resolves operand k's value without binding it (captureOp's
// read-only mirror): the value comes from the entry's captured slot, the
// retired producer's architectural register, or a completed producer's ROB
// slot. ok is false while the producer is still executing.
func (c *Core) peekOp(e *robEntry, k int) (memtypes.Word, bool) {
	if e.opOK[k] {
		return e.opVal[k], true
	}
	p := e.srcRef[k]
	if p < 0 {
		return e.opVal[k], true
	}
	pe := &c.rob[p]
	if !pe.used || pe.seq != e.srcSeq[k] {
		return c.archRegs[e.srcReg[k]], true
	}
	if pe.state == sDone && c.now >= pe.doneAt {
		return pe.value, true
	}
	return 0, false
}

// operandReadyAt returns the earliest cycle operand k of e could bind
// (c.now+1 if it is ready now), or NoEvent if binding needs an external
// event (a fill, or an atomic producer's retirement).
func (c *Core) operandReadyAt(e *robEntry, k int) uint64 {
	if e.opOK[k] {
		return c.now + 1
	}
	p := e.srcRef[k]
	if p < 0 {
		return c.now + 1
	}
	pe := &c.rob[p]
	if !pe.used || pe.seq != e.srcSeq[k] {
		return c.now + 1 // producer retired: architectural file has it
	}
	switch {
	case pe.state == sDone:
		return max(c.now+1, pe.doneAt)
	case pe.state == sIssued && !pe.pendFill && !pe.in.Op.IsAtomic():
		// Will be promoted to sDone at doneAt, before issue runs that cycle.
		return max(c.now+1, pe.doneAt)
	}
	return memtypes.NoEvent
}

// issueEvent returns the earliest cycle the dispatched entry could pass
// operandsReady, mirroring its per-class requirements read-only.
func (c *Core) issueEvent(e *robEntry) uint64 {
	if e.in.Op.IsLoad() || e.in.Op.IsAtomic() {
		return c.operandReadyAt(e, 0) // address generation needs rs1 only
	}
	t := c.now + 1
	for k := 0; k < 3; k++ {
		tk := c.operandReadyAt(e, k)
		if tk == memtypes.NoEvent {
			return memtypes.NoEvent
		}
		t = max(t, tk)
	}
	return t
}

// retireAtomicEvent returns the earliest cycle an atomic at the head could
// pass its retirement readiness check (address generated, data operands
// bound), after which the backend is probed every cycle.
func (c *Core) retireAtomicEvent(e *robEntry) uint64 {
	if !e.addrOK {
		return memtypes.NoEvent // not issued yet; the dispQ scan covers it
	}
	t := c.operandReadyAt(e, 1)
	if t == memtypes.NoEvent {
		return memtypes.NoEvent
	}
	if e.in.Op == isa.Cas {
		t2 := c.operandReadyAt(e, 2)
		if t2 == memtypes.NoEvent {
			return memtypes.NoEvent
		}
		t = max(t, t2)
	}
	return t
}

// SkipCycles replicates the per-cycle effects of k externally-idle cycles
// the simulator fast-forwarded past (cycles c.now+1 .. c.now+k). The core's
// state is frozen during a skip by construction; the only per-cycle effect
// is the wrong-path fetch counter, which increments while fetch is unstalled
// with a PC past the program end.
func (c *Core) SkipCycles(k uint64) {
	if c.halted || c.fetchedHalt || c.count >= c.cfg.ROBSize {
		return
	}
	if c.fetchPC >= 0 && c.fetchPC < len(c.prog.Instrs) {
		return // would have fetched; the scheduler never skips this state
	}
	first := c.now + 1
	if c.stallTil > first {
		first = c.stallTil
	}
	if last := c.now + k; last >= first {
		c.FetchedWrongPath += last - first + 1
	}
}

// ------------------------------------------------------------ predictor

func (c *Core) predIndex(pc int) uint32 { return uint32(pc) & c.predMask }

func (c *Core) predictTaken(pc int) bool { return c.pred[c.predIndex(pc)] >= 2 }

func (c *Core) updatePredictor(pc int, taken bool) {
	i := c.predIndex(pc)
	v := c.pred[i]
	if taken {
		if v < 3 {
			c.pred[i] = v + 1
		}
	} else if v > 0 {
		c.pred[i] = v - 1
	}
}

// ------------------------------------------------------------------- ALU

func evalALU(in isa.Instr, a, b memtypes.Word) memtypes.Word {
	switch in.Op {
	case isa.MovI:
		return memtypes.Word(in.Imm)
	case isa.Add:
		return a + b
	case isa.AddI:
		return a + memtypes.Word(in.Imm)
	case isa.Sub:
		return a - b
	case isa.Mul:
		return a * b
	case isa.And:
		return a & b
	case isa.Or:
		return a | b
	case isa.Xor:
		return a ^ b
	case isa.ShlI:
		return a << uint(in.Imm&63)
	case isa.ShrI:
		return a >> uint(in.Imm&63)
	case isa.SltU:
		if a < b {
			return 1
		}
		return 0
	case isa.Seq:
		if a == b {
			return 1
		}
		return 0
	case isa.Nop, isa.Delay:
		return 0
	}
	panic(fmt.Sprintf("cpu: evalALU on %v", in.Op))
}

// AtomicApply computes an atomic op's new memory value. doWrite is false
// for a failed compare-and-swap (treated as a read, per §3.2's load+store
// decomposition: no written state is created).
func AtomicApply(op isa.Op, old, opA, opB memtypes.Word) (memtypes.Word, bool) {
	switch op {
	case isa.Cas:
		if old == opA {
			return opB, true
		}
		return old, false
	case isa.Fadd:
		return old + opA, true
	case isa.Swap:
		return opA, true
	}
	panic(fmt.Sprintf("cpu: AtomicApply on %v", op))
}
