package cpu

import (
	"testing"

	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// fakeBackend is a single-cycle flat memory with no ordering constraints —
// enough to unit-test the core pipeline in isolation.
type fakeBackend struct {
	mem        map[memtypes.Addr]memtypes.Word
	now        *uint64
	hitLatency uint64

	// Controls for stall-path tests.
	stallStores bool
	stallReason StallReason
	missAddrs   map[memtypes.Addr]bool // loads to these addresses go pending
	pending     []pendingFill

	retired int
}

type pendingFill struct {
	tag  uint64
	addr memtypes.Addr
}

func newFake(now *uint64) *fakeBackend {
	return &fakeBackend{
		mem:        make(map[memtypes.Addr]memtypes.Word),
		now:        now,
		hitLatency: 2,
		missAddrs:  make(map[memtypes.Addr]bool),
	}
}

func (f *fakeBackend) StartLoad(tag uint64, addr memtypes.Addr) LoadResult {
	if f.missAddrs[memtypes.BlockAddr(addr)] {
		f.pending = append(f.pending, pendingFill{tag, addr})
		return LoadResult{Status: LoadMiss}
	}
	return LoadResult{Status: LoadHit, Value: f.mem[addr], ReadyAt: *f.now + f.hitLatency}
}

func (f *fakeBackend) RetireLoad(op isa.Op, addr memtypes.Addr, fromL1 bool) (bool, StallReason) {
	return true, StallNone
}

func (f *fakeBackend) RetireStore(op isa.Op, addr memtypes.Addr, val memtypes.Word) (bool, StallReason) {
	if f.stallStores {
		return false, f.stallReason
	}
	f.mem[addr] = val
	return true, StallNone
}

func (f *fakeBackend) RetireAtomic(op isa.Op, addr memtypes.Addr, a, b memtypes.Word) (bool, memtypes.Word, StallReason) {
	old := f.mem[addr]
	if nv, doWrite := AtomicApply(op, old, a, b); doWrite {
		f.mem[addr] = nv
	}
	return true, old, StallNone
}

func (f *fakeBackend) RetireFence() (bool, StallReason) { return true, StallNone }
func (f *fakeBackend) OnRetireInstr()                   { f.retired++ }

// run executes prog on a fresh core until halt or maxCycles.
func run(t *testing.T, prog *isa.Program, setup func(*fakeBackend), maxCycles uint64) (*Core, *fakeBackend) {
	t.Helper()
	var now uint64
	fb := newFake(&now)
	if setup != nil {
		setup(fb)
	}
	c := New(0, DefaultConfig(), prog, [isa.NumRegs]memtypes.Word{}, fb)
	for now = 1; now < maxCycles && !c.Halted(); now++ {
		c.Tick(now)
		// Deliver one pending fill per cycle after a fixed delay.
		if len(fb.pending) > 0 && now%17 == 0 {
			p := fb.pending[0]
			fb.pending = fb.pending[1:]
			c.FillLoad(p.tag, fb.mem[p.addr])
		}
	}
	if !c.Halted() {
		t.Fatalf("program did not halt in %d cycles", maxCycles)
	}
	return c, fb
}

func TestALUAndBranchLoop(t *testing.T) {
	b := isa.NewBuilder("loop")
	b.MovI(isa.R1, 0)
	b.MovI(isa.R2, 10)
	b.Label("l")
	b.AddI(isa.R1, isa.R1, 3)
	b.AddI(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "l")
	b.Halt()
	c, _ := run(t, b.MustBuild(), nil, 10_000)
	if got := c.ArchReg(isa.R1); got != 30 {
		t.Fatalf("r1 = %d, want 30", got)
	}
	if c.Retired == 0 || c.RetiredLoads != 0 {
		t.Fatalf("bad counters: %d retired", c.Retired)
	}
}

func TestAllALUOps(t *testing.T) {
	b := isa.NewBuilder("alu")
	b.MovI(isa.R1, 12)
	b.MovI(isa.R2, 5)
	b.Add(isa.R3, isa.R1, isa.R2)   // 17
	b.Sub(isa.R4, isa.R1, isa.R2)   // 7
	b.Mul(isa.R5, isa.R1, isa.R2)   // 60
	b.And(isa.R6, isa.R1, isa.R2)   // 4
	b.Or(isa.R7, isa.R1, isa.R2)    // 13
	b.Xor(isa.R8, isa.R1, isa.R2)   // 9
	b.ShlI(isa.R9, isa.R1, 2)       // 48
	b.ShrI(isa.R12, isa.R1, 2)      // 3
	b.SltU(isa.R13, isa.R2, isa.R1) // 1
	b.Seq(isa.R14, isa.R1, isa.R1)  // 1
	b.Halt()
	c, _ := run(t, b.MustBuild(), nil, 1000)
	want := map[isa.Reg]memtypes.Word{
		isa.R3: 17, isa.R4: 7, isa.R5: 60, isa.R6: 4, isa.R7: 13,
		isa.R8: 9, isa.R9: 48, isa.R12: 3, isa.R13: 1, isa.R14: 1,
	}
	for r, v := range want {
		if got := c.ArchReg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestStoreLoadForwardValue(t *testing.T) {
	b := isa.NewBuilder("fwd2")
	b.MovI(isa.R1, 0x100)
	b.MovI(isa.R2, 42)
	b.St(isa.R1, 0, isa.R2)
	b.Ld(isa.R3, isa.R1, 0)
	b.St(isa.R1, 8, isa.R3) // persist for inspection
	b.Halt()
	c, fb := run(t, b.MustBuild(), nil, 10_000)
	if got := fb.mem[0x108]; got != 42 {
		t.Fatalf("forwarded value = %d, want 42", got)
	}
	if got := c.ArchReg(isa.R3); got != 42 {
		t.Fatalf("r3 = %d", got)
	}
}

func TestLoadMissFillPath(t *testing.T) {
	b := isa.NewBuilder("miss")
	b.MovI(isa.R1, 0x200)
	b.Ld(isa.R3, isa.R1, 0)
	b.AddI(isa.R3, isa.R3, 1)
	b.St(isa.R1, 8, isa.R3)
	b.Halt()
	_, fb := run(t, b.MustBuild(), func(f *fakeBackend) {
		f.mem[0x200] = 10
		f.missAddrs[memtypes.BlockAddr(0x200)] = true
	}, 10_000)
	if got := fb.mem[0x208]; got != 11 {
		t.Fatalf("mem = %d, want 11", got)
	}
}

func TestAtomicProducesOldValue(t *testing.T) {
	b := isa.NewBuilder("atomic")
	b.MovI(isa.R1, 0x300)
	b.MovI(isa.R2, 5)
	b.Fadd(isa.R3, isa.R1, 0, isa.R2) // r3 = old (0), mem = 5
	b.Fadd(isa.R4, isa.R1, 0, isa.R2) // r4 = 5, mem = 10
	b.MovI(isa.R5, 10)
	b.MovI(isa.R6, 77)
	b.Cas(isa.R7, isa.R1, 0, isa.R5, isa.R6) // succeeds: r7 = 10, mem = 77
	b.Cas(isa.R8, isa.R1, 0, isa.R5, isa.R6) // fails: r8 = 77
	b.Swap(isa.R9, isa.R1, 0, isa.R2)        // r9 = 77, mem = 5
	b.Halt()
	c, fb := run(t, b.MustBuild(), nil, 10_000)
	if c.ArchReg(isa.R3) != 0 || c.ArchReg(isa.R4) != 5 || c.ArchReg(isa.R7) != 10 ||
		c.ArchReg(isa.R8) != 77 || c.ArchReg(isa.R9) != 77 {
		t.Fatalf("atomic results wrong: %d %d %d %d %d",
			c.ArchReg(isa.R3), c.ArchReg(isa.R4), c.ArchReg(isa.R7), c.ArchReg(isa.R8), c.ArchReg(isa.R9))
	}
	if fb.mem[0x300] != 5 {
		t.Fatalf("final mem = %d", fb.mem[0x300])
	}
	if c.RetiredAtomics != 5 {
		t.Fatalf("retired atomics = %d", c.RetiredAtomics)
	}
}

func TestBranchMispredictRecovery(t *testing.T) {
	// A data-dependent branch whose direction alternates: the predictor
	// will mispredict at least once; results must still be exact.
	b := isa.NewBuilder("flip")
	b.MovI(isa.R1, 0)  // i
	b.MovI(isa.R2, 20) // n
	b.MovI(isa.R3, 0)  // evens
	b.Label("l")
	b.MovI(isa.R4, 1)
	b.And(isa.R4, isa.R1, isa.R4)
	b.Bne(isa.R4, isa.R0, "odd")
	b.AddI(isa.R3, isa.R3, 1)
	b.Label("odd")
	b.AddI(isa.R1, isa.R1, 1)
	b.Bltu(isa.R1, isa.R2, "l")
	b.Halt()
	c, _ := run(t, b.MustBuild(), nil, 100_000)
	if got := c.ArchReg(isa.R3); got != 10 {
		t.Fatalf("evens = %d, want 10", got)
	}
	if c.Mispredicts == 0 {
		t.Fatal("expected at least one mispredict")
	}
}

func TestSnoopReplayReloads(t *testing.T) {
	// Execute a load, snoop its block before retirement, and check the
	// replayed load observes the new value.
	var now uint64
	fb := newFake(&now)
	fb.mem[0x400] = 1
	b := isa.NewBuilder("snoop")
	b.MovI(isa.R1, 0x400)
	b.Delay(30) // keep the load unretired for a while after it executes
	b.Ld(isa.R3, isa.R1, 0)
	b.Halt()
	c := New(0, DefaultConfig(), b.MustBuild(), [isa.NumRegs]memtypes.Word{}, fb)
	snooped := false
	for now = 1; now < 10_000 && !c.Halted(); now++ {
		c.Tick(now)
		if !snooped && now == 20 {
			// The load has executed (value 1) but the Delay blocks its
			// retirement. An external write arrives:
			fb.mem[0x400] = 2
			if !c.SnoopBlock(memtypes.BlockAddr(0x400)) {
				t.Fatal("snoop found no load to replay")
			}
			snooped = true
		}
	}
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	if got := c.ArchReg(isa.R3); got != 2 {
		t.Fatalf("r3 = %d, want 2 (replayed value)", got)
	}
	if c.Replays == 0 {
		t.Fatal("no replay counted")
	}
}

func TestFlushAllRestoresAndUnhalts(t *testing.T) {
	b := isa.NewBuilder("flush")
	b.MovI(isa.R1, 1)
	b.Halt()
	var now uint64
	fb := newFake(&now)
	c := New(0, DefaultConfig(), b.MustBuild(), [isa.NumRegs]memtypes.Word{}, fb)
	for now = 1; !c.Halted(); now++ {
		c.Tick(now)
	}
	var regs [isa.NumRegs]memtypes.Word
	regs[isa.R1] = 99
	c.FlushAll(regs, 1) // restore at the halt instruction
	if c.Halted() {
		t.Fatal("FlushAll must clear halted (speculative halt rollback)")
	}
	if c.ArchReg(isa.R1) != 99 {
		t.Fatal("registers not restored")
	}
	for ; !c.Halted(); now++ {
		c.Tick(now)
	}
	if c.ArchReg(isa.R1) != 99 {
		t.Fatal("re-execution clobbered restored register")
	}
}

func TestStoreConflictReplay(t *testing.T) {
	// A load issues past an older store with a then-unknown address; when
	// the store's address resolves to the same word, the load replays.
	b := isa.NewBuilder("conflict")
	b.MovI(isa.R1, 0x500)
	b.Ld(isa.R2, isa.R1, 0) // r2 = mem[0x500] (initially 7)
	b.Mul(isa.R3, isa.R2, isa.R2)
	b.Mul(isa.R3, isa.R3, isa.R3) // long dependency chain for the address
	b.MovI(isa.R4, 0x500)
	b.Add(isa.R4, isa.R4, isa.R0)
	b.MovI(isa.R5, 50)
	b.St(isa.R4, 0, isa.R5) // store to 0x500 (addr known late is hard to force; rely on program order)
	b.Ld(isa.R6, isa.R4, 0) // must see 50, by forwarding or replay
	b.St(isa.R1, 8, isa.R6)
	b.Halt()
	_, fb := run(t, b.MustBuild(), func(f *fakeBackend) { f.mem[0x500] = 7 }, 10_000)
	if got := fb.mem[0x508]; got != 50 {
		t.Fatalf("load after store = %d, want 50", got)
	}
}

func TestROBCapacityStall(t *testing.T) {
	// A pending load miss at the head with a long tail of ALU work: the
	// ROB must fill and fetch must stop, then drain after the fill.
	b := isa.NewBuilder("rob")
	b.MovI(isa.R1, 0x600)
	b.Ld(isa.R2, isa.R1, 0)
	for i := 0; i < 200; i++ {
		b.AddI(isa.R3, isa.R3, 1)
	}
	b.Halt()
	c, _ := run(t, b.MustBuild(), func(f *fakeBackend) {
		f.missAddrs[memtypes.BlockAddr(0x600)] = true
	}, 100_000)
	if got := c.ArchReg(isa.R3); got != 200 {
		t.Fatalf("r3 = %d, want 200", got)
	}
}
