// The test package is external (with a dot-import for brevity): the network
// now imports coherence to embed the wire format by value, so a white-box
// test importing network would be an import cycle.
package coherence_test

import (
	"math/rand"
	"testing"

	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"

	. "invisifence/internal/coherence"
)

// agent is a minimal correct cache controller: one block cached at most,
// responds to probes, tracks a writeback buffer. It lets the directory be
// tested without the full node package.
type agent struct {
	id    network.NodeID
	state string // "I", "S", "E", "M"
	data  memtypes.BlockData
	dirty bool

	wbData  map[memtypes.Addr]memtypes.BlockData
	got     []MsgKind
	fills   int
	net     *network.Network
	home    network.NodeID
	block   memtypes.Addr
	pending bool
}

func newAgent(id network.NodeID, net *network.Network, home network.NodeID, block memtypes.Addr) *agent {
	return &agent{id: id, state: "I", net: net, home: home, block: block,
		wbData: make(map[memtypes.Addr]memtypes.BlockData)}
}

func (a *agent) send(m Msg) { a.net.Send(a.id, a.home, m) }

func (a *agent) handle(src network.NodeID, m Msg) {
	a.got = append(a.got, m.Kind)
	switch m.Kind {
	case DataS, FwdDataS:
		a.state, a.data, a.pending = "S", m.Data, false
		a.fills++
	case DataE:
		a.state, a.data, a.pending = "E", m.Data, false
		a.fills++
	case DataM, FwdDataM:
		a.state, a.data, a.pending = "M", m.Data, false
		a.dirty = m.Kind == FwdDataM
		a.fills++
	case GrantX:
		a.state, a.pending = "E", false
		a.fills++
	case Inv:
		a.state = "I"
		a.net.Send(a.id, src, Msg{Kind: InvAck, Addr: m.Addr})
	case FwdGetS:
		data := a.data
		if wb, ok := a.wbData[m.Addr]; ok {
			data = wb
		} else {
			a.state = "S"
		}
		a.net.Send(a.id, m.Req, Msg{Kind: FwdDataS, Addr: m.Addr, Data: data, HasData: true})
		a.net.Send(a.id, src, Msg{Kind: OwnerWBS, Addr: m.Addr, Data: data, HasData: true})
	case FwdGetX:
		data := a.data
		if wb, ok := a.wbData[m.Addr]; ok {
			data = wb
		} else {
			a.state = "I"
		}
		a.net.Send(a.id, m.Req, Msg{Kind: FwdDataM, Addr: m.Addr, Data: data, HasData: true})
		a.net.Send(a.id, src, Msg{Kind: XferAck, Addr: m.Addr})
	case WBAck:
		delete(a.wbData, m.Addr)
	}
}

func (a *agent) evict() {
	a.wbData[a.block] = a.data
	a.send(Msg{Kind: PutX, Addr: a.block, Data: a.data, HasData: true, Dirty: a.state == "M" && a.dirty})
	a.state = "I"
}

// harness ties a directory at node 0 and agents at nodes 1..n together.
type harness struct {
	net    *network.Network
	dir    *Directory
	mem    *memctrl.Memory
	agents map[network.NodeID]*agent
	now    uint64
}

func newHarness(t *testing.T, nAgents int) *harness {
	t.Helper()
	net := network.New(network.Config{Width: 4, Height: 1, HopLatency: 3, LocalLatency: 1})
	mem := memctrl.New(memctrl.Config{AccessLatency: 10, Banks: 4, BankBusy: 1})
	h := &harness{
		net:    net,
		mem:    mem,
		dir:    NewDirectory(0, 4, mem, net),
		agents: make(map[network.NodeID]*agent),
	}
	for i := 1; i <= nAgents; i++ {
		h.agents[network.NodeID(i)] = newAgent(network.NodeID(i), net, 0, 0x1000)
	}
	return h
}

// step advances one cycle, delivering all messages.
func (h *harness) step() {
	h.now++
	h.net.Tick(h.now)
	for {
		m, ok := h.net.Recv(0)
		if !ok {
			break
		}
		h.dir.Handle(h.now, m.Src, m.Payload)
	}
	h.dir.Tick(h.now)
	for id, a := range h.agents {
		for {
			m, ok := h.net.Recv(id)
			if !ok {
				break
			}
			a.handle(m.Src, m.Payload)
		}
	}
}

func (h *harness) run(cycles int) {
	for i := 0; i < cycles; i++ {
		h.step()
	}
}

const blk = memtypes.Addr(0x1000)

func TestGetSGrantsExclusiveWhenUnshared(t *testing.T) {
	h := newHarness(t, 2)
	h.mem.WriteWord(blk, 7)
	h.agents[1].send(Msg{Kind: GetS, Addr: blk})
	h.run(40)
	if h.agents[1].state != "E" {
		t.Fatalf("agent1 state %s, want E (MESI exclusive-clean grant)", h.agents[1].state)
	}
	if h.agents[1].data[0] != 7 {
		t.Fatal("wrong data")
	}
}

func TestSecondGetSShares(t *testing.T) {
	h := newHarness(t, 2)
	h.agents[1].send(Msg{Kind: GetS, Addr: blk})
	h.run(40)
	h.agents[2].send(Msg{Kind: GetS, Addr: blk})
	h.run(40)
	if h.agents[2].state != "S" {
		t.Fatalf("agent2 state %s, want S", h.agents[2].state)
	}
	// Agent1 was E-owner: the directory forwarded, downgrading it.
	if h.agents[1].state != "S" {
		t.Fatalf("agent1 state %s, want S after FwdGetS", h.agents[1].state)
	}
}

func TestGetXInvalidatesSharers(t *testing.T) {
	h := newHarness(t, 3)
	h.agents[1].send(Msg{Kind: GetS, Addr: blk})
	h.run(40)
	h.agents[2].send(Msg{Kind: GetS, Addr: blk})
	h.run(40)
	h.agents[3].send(Msg{Kind: GetX, Addr: blk})
	h.run(60)
	if h.agents[3].state != "M" && h.agents[3].state != "E" {
		t.Fatalf("agent3 state %s, want writable", h.agents[3].state)
	}
	if h.agents[1].state != "I" || h.agents[2].state != "I" {
		t.Fatalf("sharers not invalidated: %s %s", h.agents[1].state, h.agents[2].state)
	}
	if owner, ok := h.dir.Owner(blk); !ok || owner != 3 {
		t.Fatalf("directory owner = %d, %v", owner, ok)
	}
}

func TestOwnershipTransferCarriesDirtyData(t *testing.T) {
	h := newHarness(t, 2)
	h.agents[1].send(Msg{Kind: GetX, Addr: blk})
	h.run(40)
	// Agent1 writes locally (silent E->M).
	h.agents[1].data[0] = 99
	h.agents[1].state = "M"
	h.agents[1].dirty = true
	h.agents[2].send(Msg{Kind: GetX, Addr: blk})
	h.run(60)
	if h.agents[2].state != "M" || h.agents[2].data[0] != 99 {
		t.Fatalf("dirty data lost in 3-hop transfer: %s %d", h.agents[2].state, h.agents[2].data[0])
	}
}

func TestUpgradeGrantsWithoutData(t *testing.T) {
	h := newHarness(t, 2)
	h.agents[1].send(Msg{Kind: GetS, Addr: blk})
	h.run(40)
	h.agents[2].send(Msg{Kind: GetS, Addr: blk})
	h.run(40)
	h.agents[1].send(Msg{Kind: Upgrade, Addr: blk})
	h.run(60)
	if h.agents[1].state != "E" {
		t.Fatalf("agent1 state %s after upgrade", h.agents[1].state)
	}
	if h.agents[2].state != "I" {
		t.Fatal("other sharer not invalidated on upgrade")
	}
	// The grant must have been GrantX (no data transfer needed).
	found := false
	for _, k := range h.agents[1].got {
		if k == GrantX {
			found = true
		}
	}
	if !found {
		t.Fatal("expected GrantX")
	}
}

func TestWritebackUpdatesMemory(t *testing.T) {
	h := newHarness(t, 2)
	h.agents[1].send(Msg{Kind: GetX, Addr: blk})
	h.run(40)
	h.agents[1].data[0] = 55
	h.agents[1].state = "M"
	h.agents[1].dirty = true
	h.agents[1].evict()
	h.run(40)
	if got := h.mem.ReadWord(blk); got != 55 {
		t.Fatalf("memory = %d after PutX, want 55", got)
	}
	if len(h.agents[1].wbData) != 0 {
		t.Fatal("WBAck did not clear the writeback buffer")
	}
	// A later GetS must come from memory (Unowned).
	h.agents[2].send(Msg{Kind: GetS, Addr: blk})
	h.run(40)
	if h.agents[2].data[0] != 55 {
		t.Fatal("stale data after writeback")
	}
}

func TestWritebackRaceServedFromWBBuffer(t *testing.T) {
	// Owner evicts; before the PutX is processed, another agent's GetX is
	// already in flight. The Fwd must be served from the WB buffer and the
	// stale PutX acknowledged without clobbering the new owner's data.
	h := newHarness(t, 2)
	h.agents[1].send(Msg{Kind: GetX, Addr: blk})
	h.run(40)
	h.agents[1].data[0] = 11
	h.agents[1].state = "M"
	h.agents[1].dirty = true
	// Both race: the GetX is sent first so the directory forwards to the
	// (just-evicting) owner.
	h.agents[2].send(Msg{Kind: GetX, Addr: blk})
	h.agents[1].evict()
	h.run(80)
	if h.agents[2].state != "M" || h.agents[2].data[0] != 11 {
		t.Fatalf("race lost data: %s %d", h.agents[2].state, h.agents[2].data[0])
	}
	if owner, ok := h.dir.Owner(blk); !ok || owner != 2 {
		t.Fatalf("owner = %d, %v", owner, ok)
	}
	if len(h.agents[1].wbData) != 0 {
		t.Fatal("WB buffer entry not released")
	}
}

// TestWriteSerialization is the protocol's core property (§2.1): all writes
// to one block are serialized; the final memory value matches the last
// writer in grant order.
func TestWriteSerialization(t *testing.T) {
	h := newHarness(t, 3)
	rng := rand.New(rand.NewSource(3))
	writes := 0
	var lastVal memtypes.Word
	for round := 0; round < 30; round++ {
		id := network.NodeID(1 + rng.Intn(3))
		a := h.agents[id]
		if a.state == "E" || a.state == "M" {
			writes++
			lastVal = memtypes.Word(writes)
			a.data[0] = lastVal
			a.state = "M"
			a.dirty = true
		} else if !a.pending {
			a.pending = true
			a.send(Msg{Kind: GetX, Addr: blk})
		}
		h.run(25)
	}
	// Drain: evict every cached copy and check memory.
	for _, a := range h.agents {
		if a.state == "E" || a.state == "M" {
			a.evict()
		}
	}
	h.run(60)
	if got := h.mem.ReadWord(blk); got != lastVal {
		t.Fatalf("memory = %d, want %d (write serialization broken)", got, lastVal)
	}
	if h.dir.PendingTransactions() != 0 {
		t.Fatal("directory left busy")
	}
}

// TestSWMRInvariant: after every quiescent point, at most one agent holds a
// writable copy (single-writer-multiple-reader).
func TestSWMRInvariant(t *testing.T) {
	h := newHarness(t, 3)
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 40; round++ {
		id := network.NodeID(1 + rng.Intn(3))
		a := h.agents[id]
		if !a.pending && a.state == "I" {
			kind := GetS
			if rng.Intn(2) == 0 {
				kind = GetX
			}
			a.pending = true
			a.send(Msg{Kind: kind, Addr: blk})
		}
		h.run(30) // quiesce
		writable, readable := 0, 0
		for _, ag := range h.agents {
			switch ag.state {
			case "E", "M":
				writable++
			case "S":
				readable++
			}
		}
		if writable > 1 || (writable == 1 && readable > 0) {
			t.Fatalf("SWMR violated: %d writable, %d readable", writable, readable)
		}
	}
}

func TestHomeOfInterleaving(t *testing.T) {
	if HomeOf(0, 16) != 0 || HomeOf(64, 16) != 1 || HomeOf(64*16, 16) != 0 {
		t.Fatal("home interleaving wrong")
	}
	if HomeOf(0x1000, 4) != network.NodeID((0x1000>>6)%4) {
		t.Fatal("home formula wrong")
	}
}

func TestMsgKindStringsAndClassification(t *testing.T) {
	for k := GetS; k <= FwdDataM; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no string", k)
		}
	}
	for _, k := range []MsgKind{GetS, GetX, Upgrade, PutX, InvAck, OwnerWBS, XferAck} {
		if !k.IsDirRequest() {
			t.Errorf("%v should be a directory request", k)
		}
	}
	for _, k := range []MsgKind{DataS, DataM, GrantX, Inv, FwdGetS, FwdGetX, WBAck, FwdDataS, FwdDataM} {
		if k.IsDirRequest() {
			t.Errorf("%v should not be a directory request", k)
		}
	}
}
