// Package coherence implements the directory-based invalidation MESI
// protocol the paper assumes as its conventional substrate (§2.1): a
// block-granularity protocol that serializes all writes to the same address
// and informs the processor when a store miss completes.
//
// The home directory for each block is address-interleaved across nodes.
// Directories are blocking: while a transaction for a block is in flight,
// later requests for that block queue in arrival order, which provides the
// write serialization the consistency implementations rely on. Dirty data is
// forwarded owner-to-requestor (3-hop), with a completion message unblocking
// the directory.
//
// This package also owns the machine's wire format: Msg is the single
// message type carried over the interconnect, a pointer-free plain value
// that internal/network embeds inline in its Message — there is no `any`
// box and no per-message heap allocation (DESIGN.md §9). The import
// relation runs transport → wire format: coherence sits below network
// (memtypes.NodeID at the bottom names nodes for both), and the Directory
// reaches the interconnect only through the narrow Port interface, which
// the network (whole torus or one shard) implements. Msg.HasData also
// drives the network's flit sizing when its per-link contention model is
// enabled (DESIGN.md §10).
package coherence

import (
	"fmt"

	"invisifence/internal/memtypes"
)

// MsgKind enumerates every protocol message type.
type MsgKind uint8

const (
	// Requests, cache controller -> home directory.

	// GetS requests a readable copy of a block.
	GetS MsgKind = iota
	// GetX requests a writable copy of a block (with data).
	GetX
	// Upgrade requests write permission for a block the requestor already
	// shares; the directory falls back to a full GetX if the requestor's
	// copy was invalidated in the meantime.
	Upgrade
	// PutX writes back an evicted Exclusive or Modified block. Data is
	// always carried; Dirty says whether memory must be updated.
	PutX

	// Completion messages, cache controller -> home directory.

	// InvAck acknowledges an Inv.
	InvAck
	// OwnerWBS carries the owner's data back to the directory after a
	// FwdGetS, leaving the block Shared by owner and requestor.
	OwnerWBS
	// XferAck tells the directory that ownership moved to the requestor
	// after a FwdGetX.
	XferAck

	// Responses and probes, home directory -> cache controller.

	// DataS grants a Shared copy with data.
	DataS
	// DataE grants an Exclusive (clean) copy with data; granted on GetS
	// when no other node holds the block.
	DataE
	// DataM grants a Modified (writable) copy with data.
	DataM
	// GrantX grants write permission without data (successful Upgrade).
	GrantX
	// Inv asks a sharer to invalidate its copy and InvAck the directory.
	Inv
	// FwdGetS asks the owner to send DataS to Req and OwnerWBS home.
	FwdGetS
	// FwdGetX asks the owner to send DataM to Req, invalidate its copy,
	// and XferAck home.
	FwdGetX
	// WBAck acknowledges a PutX; the evictor may free its writeback buffer.
	WBAck

	// Owner -> requestor data transfers (3-hop path).

	// FwdDataS is the owner's Shared data reply to the requestor.
	FwdDataS
	// FwdDataM is the owner's Modified data reply to the requestor.
	FwdDataM
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case GetS:
		return "GetS"
	case GetX:
		return "GetX"
	case Upgrade:
		return "Upgrade"
	case PutX:
		return "PutX"
	case InvAck:
		return "InvAck"
	case OwnerWBS:
		return "OwnerWBS"
	case XferAck:
		return "XferAck"
	case DataS:
		return "DataS"
	case DataE:
		return "DataE"
	case DataM:
		return "DataM"
	case GrantX:
		return "GrantX"
	case Inv:
		return "Inv"
	case FwdGetS:
		return "FwdGetS"
	case FwdGetX:
		return "FwdGetX"
	case WBAck:
		return "WBAck"
	case FwdDataS:
		return "FwdDataS"
	case FwdDataM:
		return "FwdDataM"
	}
	return fmt.Sprintf("MsgKind(%d)", uint8(k))
}

// IsDirRequest reports whether the message is handled by a home directory
// (as opposed to a node's cache controller).
func (k MsgKind) IsDirRequest() bool {
	switch k {
	case GetS, GetX, Upgrade, PutX, InvAck, OwnerWBS, XferAck:
		return true
	}
	return false
}

// Msg is the single wire format of the simulated machine: every protocol
// message carried over the interconnect, as a plain value. The network embeds
// it inline in network.Message (no interface box, no per-message heap
// allocation); this package deliberately does not import the network, so the
// dependency runs transport -> wire format, never the other way (DESIGN.md
// §9).
type Msg struct {
	Kind    MsgKind
	Addr    memtypes.Addr // always block-aligned
	Data    memtypes.BlockData
	HasData bool
	Dirty   bool            // PutX: memory must be updated
	Req     memtypes.NodeID // FwdGetS/FwdGetX: the original requestor
}

func (m Msg) String() string {
	return fmt.Sprintf("%s@%#x", m.Kind, uint64(m.Addr))
}

// Port is the directory's outbound link into the interconnect. The network
// (whole torus or one shard) implements it; taking an interface here rather
// than the concrete type keeps this package below the network in the import
// graph. Dispatch cost is one interface call per send — no allocation, since
// Msg travels by value.
type Port interface {
	Send(src, dst memtypes.NodeID, m Msg)
}

// HomeOf returns the home node for a block address, interleaving blocks
// round-robin across nodes.
func HomeOf(a memtypes.Addr, nodes int) memtypes.NodeID {
	return memtypes.NodeID(int(a>>memtypes.BlockShift) % nodes)
}
