package coherence_test

import (
	"regexp"
	"testing"

	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"

	. "invisifence/internal/coherence"
)

// countPort counts sends without delivering them; the churn test drives the
// directory directly and only cares about its internal state.
type countPort struct{ sent int }

func (p *countPort) Send(src, dst memtypes.NodeID, m Msg) { p.sent++ }

// churnRound acquires and releases one block's directory entry: GetS brings
// it Invalid->Owned (via a DataE grant), a dirty PutX returns it to the zero
// coherence state, which releases the pooled entry.
func churnRound(d *Directory, now *uint64, block memtypes.Addr) {
	*now++
	d.Handle(*now, 1, Msg{Kind: GetS, Addr: block})
	*now += 4 // past the 1-cycle memory access
	d.Tick(*now)
	*now++
	d.Handle(*now, 1, Msg{Kind: PutX, Addr: block, Dirty: true, HasData: true})
	*now++
	d.Tick(*now)
}

// TestDirectoryChurnAllocFree pins the pooled directory's contract: repeated
// acquire/release of the same block reuses one entry (wait-queue capacity
// included) with zero steady-state heap allocations, and the debug surfaces
// stay deterministic across reuse.
func TestDirectoryChurnAllocFree(t *testing.T) {
	mem := memctrl.New(memctrl.Config{AccessLatency: 1, Banks: 1, BankBusy: 0})
	port := &countPort{}
	d := NewDirectory(0, 4, mem, port)
	const block = memtypes.Addr(0x40)
	now := uint64(0)

	// Warm-up: allocate the entry chunk, table, and active list once; also
	// exercise the wait queue so its backing array reaches capacity (a PutX
	// queued behind the in-flight GetS; the queue drains without needing a
	// cache controller on the other end).
	now++
	d.Handle(now, 1, Msg{Kind: GetS, Addr: block})
	d.Handle(now, 1, Msg{Kind: PutX, Addr: block, Dirty: true, HasData: true}) // queues
	mid := d.DebugString()
	if mid == "" {
		t.Fatal("expected in-flight transaction state in DebugString")
	}
	now += 4
	d.Tick(now) // GetS finishes (Owned by 1); the queued PutX returns it to Invalid
	now++
	d.Tick(now)
	for i := 0; i < 8; i++ {
		churnRound(d, &now, block)
	}
	if got := d.StateOf(block); got != "I" {
		t.Fatalf("block not back to Invalid after churn: %s", got)
	}

	// DebugString after a full round must be identical (empty) every time,
	// and the queue/transaction accounting stable.
	ref := d.DebugString()
	if ref != "" {
		t.Fatalf("idle directory has debug state: %q", ref)
	}
	if d.PendingTransactions() != 0 {
		t.Fatal("pending transactions on idle directory")
	}

	avg := testing.AllocsPerRun(50, func() {
		churnRound(d, &now, block)
		if s := d.DebugString(); s != ref {
			t.Fatalf("DebugString drifted across entry reuse: %q != %q", s, ref)
		}
	})
	if avg != 0 {
		t.Fatalf("entry churn allocates: %.2f allocs/round (free-list reuse broken)", avg)
	}

	// A post-churn transaction's debug output must match a fresh one's shape
	// exactly: kick off the same GetS-plus-queued-PutX and compare against
	// the warm-up's mid-flight dump (same block, requestor, phase, queue).
	now++
	d.Handle(now, 1, Msg{Kind: GetS, Addr: block})
	d.Handle(now, 1, Msg{Kind: PutX, Addr: block, Dirty: true, HasData: true})
	// memReady is an absolute cycle and legitimately differs; everything
	// else must be byte-identical.
	noTime := regexp.MustCompile(`memReady=\d+`)
	got := noTime.ReplaceAllString(d.DebugString(), "memReady=?")
	want := noTime.ReplaceAllString(mid, "memReady=?")
	if got != want {
		t.Fatalf("mid-flight DebugString not reproducible after churn:\nfresh: %q\nafter: %q", want, got)
	}
}
