package coherence

import (
	"fmt"

	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
)

// dirState is the stable directory state of a block.
type dirState uint8

const (
	dirInvalid dirState = iota // no cached copies
	dirShared                  // one or more read-only copies
	dirOwned                   // exactly one Exclusive/Modified copy
)

func (s dirState) String() string {
	switch s {
	case dirInvalid:
		return "I"
	case dirShared:
		return "S"
	case dirOwned:
		return "O"
	}
	return "?"
}

// txnPhase is the progress state of an in-flight directory transaction.
type txnPhase uint8

const (
	phaseWaitMem   txnPhase = iota // waiting for the local memory access
	phaseWaitAcks                  // waiting for InvAcks (and possibly memory)
	phaseWaitOwner                 // waiting for OwnerWBS/XferAck from the owner
)

// txn is one in-flight transaction at the directory.
type txn struct {
	kind     MsgKind // GetS, GetX, or Upgrade (after fallback rewriting)
	req      network.NodeID
	phase    txnPhase
	memReady uint64 // cycle the memory read completes (phaseWaitMem/WaitAcks)
	needMem  bool
	needAcks int
	gotAcks  int
	grantX   bool // Upgrade fast path: grant permission without data
}

// entry is the directory's record for one block.
type entry struct {
	state    dirState
	owner    network.NodeID
	sharers  uint64 // bitmask over nodes
	cur      *txn
	waitq    []*queuedReq
	inActive bool
	addr     memtypes.Addr
}

type queuedReq struct {
	src network.NodeID
	msg *Msg
}

// Directory is the home directory slice at one node. It owns the node's
// memory controller and communicates with cache controllers over the
// network.
type Directory struct {
	id      network.NodeID
	nodes   int
	mem     *memctrl.Memory
	net     *network.Network
	entries map[memtypes.Addr]*entry
	active  []*entry // entries with an in-flight transaction, insertion order
	now     uint64

	// Stats.
	Transactions uint64
	Forwards     uint64
	Invals       uint64
	Queued       uint64
}

// NewDirectory creates the directory slice for node id.
func NewDirectory(id network.NodeID, nodes int, mem *memctrl.Memory, net *network.Network) *Directory {
	return &Directory{
		id:      id,
		nodes:   nodes,
		mem:     mem,
		net:     net,
		entries: make(map[memtypes.Addr]*entry),
	}
}

func (d *Directory) entryFor(a memtypes.Addr) *entry {
	e, ok := d.entries[a]
	if !ok {
		e = &entry{addr: a}
		d.entries[a] = e
	}
	return e
}

func (d *Directory) send(dst network.NodeID, m *Msg) {
	Trace(d.now, fmt.Sprintf("dir%d->%d", d.id, dst), m, "")
	d.net.Send(d.id, dst, m)
}

// Handle processes one protocol request arriving at this directory.
func (d *Directory) Handle(now uint64, src network.NodeID, m *Msg) {
	d.now = now
	Trace(now, fmt.Sprintf("dir%d<-%d", d.id, src), m, d.StateOf(m.Addr))
	a := m.Addr
	e := d.entryFor(a)
	switch m.Kind {
	case GetS, GetX, Upgrade:
		if e.cur != nil {
			e.waitq = append(e.waitq, &queuedReq{src, m})
			d.Queued++
			return
		}
		d.start(a, e, src, m)
	case PutX:
		d.handlePutX(a, e, src, m)
	case InvAck:
		d.handleInvAck(a, e, src)
	case OwnerWBS:
		d.handleOwnerWBS(a, e, src, m)
	case XferAck:
		d.handleXferAck(a, e, src)
	default:
		panic(fmt.Sprintf("directory %d: unexpected message %v from %d", d.id, m, src))
	}
}

// start begins a new transaction for a block known to be idle.
func (d *Directory) start(a memtypes.Addr, e *entry, src network.NodeID, m *Msg) {
	d.Transactions++
	t := &txn{kind: m.Kind, req: src}
	e.cur = t
	if !e.inActive {
		e.inActive = true
		d.active = append(d.active, e)
	}

	// An Upgrade whose requestor lost its copy (a queued-behind GetX
	// invalidated it before we got here) is handled as a full GetX.
	if t.kind == Upgrade {
		if e.state == dirShared && e.sharers&(1<<uint(src)) != 0 {
			t.grantX = true
		} else {
			t.kind = GetX
		}
	}

	switch t.kind {
	case GetS:
		switch e.state {
		case dirInvalid, dirShared:
			t.needMem = true
			t.memReady = d.mem.AccessDone(d.now, a)
			t.phase = phaseWaitMem
		case dirOwned:
			t.phase = phaseWaitOwner
			d.Forwards++
			d.send(e.owner, &Msg{Kind: FwdGetS, Addr: a, Req: src})
		}
	case GetX, Upgrade:
		switch e.state {
		case dirInvalid:
			t.needMem = true
			t.memReady = d.mem.AccessDone(d.now, a)
			t.phase = phaseWaitMem
		case dirShared:
			t.phase = phaseWaitAcks
			if !t.grantX {
				t.needMem = true
				t.memReady = d.mem.AccessDone(d.now, a)
			}
			for n := 0; n < d.nodes; n++ {
				bit := uint64(1) << uint(n)
				if e.sharers&bit == 0 || network.NodeID(n) == src {
					continue
				}
				t.needAcks++
				d.Invals++
				d.send(network.NodeID(n), &Msg{Kind: Inv, Addr: a})
			}
			if t.needAcks == 0 && !t.needMem {
				d.finish(a, e)
				return
			}
			if t.needAcks == 0 {
				t.phase = phaseWaitMem
			}
		case dirOwned:
			t.phase = phaseWaitOwner
			d.Forwards++
			d.send(e.owner, &Msg{Kind: FwdGetX, Addr: a, Req: src})
		}
	}
	d.tickTxn(a, e)
}

// Tick advances any transactions whose memory accesses have completed.
// Iteration is over an insertion-ordered slice to keep the simulator
// deterministic.
func (d *Directory) Tick(now uint64) {
	d.now = now
	if len(d.active) == 0 {
		return
	}
	// Index-based so that entries appended by complete()->start() during the
	// walk are still visited this cycle.
	for i := 0; i < len(d.active); i++ {
		e := d.active[i]
		if e.cur != nil {
			d.tickTxn(e.addr, e)
		}
	}
	live := d.active[:0]
	for _, e := range d.active {
		if e.cur != nil {
			live = append(live, e)
		} else {
			e.inActive = false
		}
	}
	for i := len(live); i < len(d.active); i++ {
		d.active[i] = nil
	}
	d.active = live
}

// NextEvent returns the earliest future cycle at which an in-flight
// transaction advances on its own: a memory access completing. This is also
// the memory controller's contribution to the idle-skip horizon, because
// access completion times are scheduled into transactions at request time
// (see memctrl.Memory.NextEvent). Ack- and owner-driven transitions are
// external (message) events and contribute nothing here.
func (d *Directory) NextEvent(now uint64) uint64 {
	next := uint64(memtypes.NoEvent)
	for _, e := range d.active {
		t := e.cur
		if t == nil {
			continue
		}
		if t.phase == phaseWaitMem {
			next = min(next, max(now+1, t.memReady))
		}
	}
	return next
}

// tickTxn completes a transaction whose remaining work (memory latency) is
// done. Transitions driven by messages are handled in the message handlers.
func (d *Directory) tickTxn(a memtypes.Addr, e *entry) {
	t := e.cur
	if t == nil {
		return
	}
	switch t.phase {
	case phaseWaitMem:
		if t.needMem && d.now < t.memReady {
			return
		}
		d.finish(a, e)
	case phaseWaitAcks:
		if t.gotAcks < t.needAcks {
			return
		}
		if t.needMem && d.now < t.memReady {
			t.phase = phaseWaitMem
			return
		}
		d.finish(a, e)
	case phaseWaitOwner:
		// Completed by OwnerWBS/XferAck.
	}
}

// finish sends the grant for the current transaction and unblocks the queue.
func (d *Directory) finish(a memtypes.Addr, e *entry) {
	t := e.cur
	switch t.kind {
	case GetS:
		data := d.mem.ReadBlock(a)
		if e.state == dirInvalid {
			e.state = dirOwned
			e.owner = t.req
			e.sharers = 0
			d.send(t.req, &Msg{Kind: DataE, Addr: a, Data: data, HasData: true})
		} else {
			e.state = dirShared
			e.sharers |= 1 << uint(t.req)
			d.send(t.req, &Msg{Kind: DataS, Addr: a, Data: data, HasData: true})
		}
	case GetX, Upgrade:
		if t.grantX {
			d.send(t.req, &Msg{Kind: GrantX, Addr: a})
		} else {
			data := d.mem.ReadBlock(a)
			d.send(t.req, &Msg{Kind: DataM, Addr: a, Data: data, HasData: true})
		}
		e.state = dirOwned
		e.owner = t.req
		e.sharers = 0
	}
	d.complete(a, e)
}

// complete clears the in-flight transaction and drains the wait queue until
// a queued request blocks the entry again (queued PutX messages complete
// immediately and keep draining).
func (d *Directory) complete(a memtypes.Addr, e *entry) {
	e.cur = nil
	for len(e.waitq) > 0 && e.cur == nil {
		q := e.waitq[0]
		copy(e.waitq, e.waitq[1:])
		e.waitq[len(e.waitq)-1] = nil
		e.waitq = e.waitq[:len(e.waitq)-1]
		if q.msg.Kind == PutX {
			d.handlePutX(a, e, q.src, q.msg)
		} else {
			d.start(a, e, q.src, q.msg)
		}
	}
}

func (d *Directory) handlePutX(a memtypes.Addr, e *entry, src network.NodeID, m *Msg) {
	if e.cur != nil {
		// A transaction is in flight; the Fwd to the (evicting) owner is
		// served from its writeback buffer, and by the time this PutX is
		// processed, ownership has moved on. Queue it for ordering.
		e.waitq = append(e.waitq, &queuedReq{src, m})
		d.Queued++
		return
	}
	if e.state == dirOwned && e.owner == src {
		if m.Dirty {
			d.mem.WriteBlock(a, m.Data)
		}
		e.state = dirInvalid
		e.owner = 0
		e.sharers = 0
	}
	// A stale PutX (ownership already transferred) is acknowledged without
	// touching memory: the current owner's data supersedes it.
	d.send(src, &Msg{Kind: WBAck, Addr: a})
}

func (d *Directory) handleInvAck(a memtypes.Addr, e *entry, src network.NodeID) {
	t := e.cur
	if t == nil || t.phase != phaseWaitAcks {
		panic(fmt.Sprintf("directory %d: unexpected InvAck@%#x from %d", d.id, uint64(a), src))
	}
	t.gotAcks++
	d.tickTxn(a, e)
}

func (d *Directory) handleOwnerWBS(a memtypes.Addr, e *entry, src network.NodeID, m *Msg) {
	t := e.cur
	if t == nil || t.phase != phaseWaitOwner || t.kind != GetS {
		panic(fmt.Sprintf("directory %d: unexpected OwnerWBS@%#x from %d", d.id, uint64(a), src))
	}
	// The owner has sent FwdDataS directly to the requestor; record the data
	// at memory and leave both nodes as sharers.
	d.mem.WriteBlock(a, m.Data)
	e.state = dirShared
	e.sharers = (1 << uint(e.owner)) | (1 << uint(t.req))
	d.complete(a, e)
}

func (d *Directory) handleXferAck(a memtypes.Addr, e *entry, src network.NodeID) {
	t := e.cur
	if t == nil || t.phase != phaseWaitOwner {
		panic(fmt.Sprintf("directory %d: unexpected XferAck@%#x from %d", d.id, uint64(a), src))
	}
	e.state = dirOwned
	e.owner = t.req
	e.sharers = 0
	d.complete(a, e)
}

// DebugString dumps in-flight transaction state for diagnostics.
func (d *Directory) DebugString() string {
	out := ""
	for _, e := range d.active {
		if e.cur == nil {
			continue
		}
		t := e.cur
		out += fmt.Sprintf("  txn %#x kind=%v req=%d phase=%d acks=%d/%d memReady=%d state=%s owner=%d sharers=%b waitq=%d\n",
			uint64(e.addr), t.kind, t.req, t.phase, t.gotAcks, t.needAcks, t.memReady,
			e.state, e.owner, e.sharers, len(e.waitq))
	}
	return out
}

// PendingTransactions reports in-flight transaction count (for quiescence
// checks in tests).
func (d *Directory) PendingTransactions() int {
	n := 0
	for _, e := range d.active {
		if e.cur != nil {
			n++
		}
	}
	return n
}

// StateOf returns a debug string for a block's directory state.
func (d *Directory) StateOf(a memtypes.Addr) string {
	e, ok := d.entries[memtypes.BlockAddr(a)]
	if !ok {
		return "I"
	}
	s := e.state.String()
	if e.cur != nil {
		s += "*"
	}
	return s
}

// Owner returns the current owner if the block is in the Owned state.
func (d *Directory) Owner(a memtypes.Addr) (network.NodeID, bool) {
	e, ok := d.entries[memtypes.BlockAddr(a)]
	if !ok || e.state != dirOwned {
		return 0, false
	}
	return e.owner, true
}

// Sharers returns the sharer bitmask if the block is in the Shared state.
func (d *Directory) Sharers(a memtypes.Addr) uint64 {
	e, ok := d.entries[memtypes.BlockAddr(a)]
	if !ok {
		return 0
	}
	return e.sharers
}
