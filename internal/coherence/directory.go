package coherence

import (
	"fmt"

	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
)

// dirState is the stable directory state of a block.
type dirState uint8

const (
	dirInvalid dirState = iota // no cached copies
	dirShared                  // one or more read-only copies
	dirOwned                   // exactly one Exclusive/Modified copy
)

func (s dirState) String() string {
	switch s {
	case dirInvalid:
		return "I"
	case dirShared:
		return "S"
	case dirOwned:
		return "O"
	}
	return "?"
}

// txnPhase is the progress state of an in-flight directory transaction.
type txnPhase uint8

const (
	phaseWaitMem   txnPhase = iota // waiting for the local memory access
	phaseWaitAcks                  // waiting for InvAcks (and possibly memory)
	phaseWaitOwner                 // waiting for OwnerWBS/XferAck from the owner
)

// txn is one in-flight transaction at the directory. It is embedded by value
// in its entry (txnBox), so starting a transaction allocates nothing.
type txn struct {
	kind     MsgKind // GetS, GetX, or Upgrade (after fallback rewriting)
	req      memtypes.NodeID
	phase    txnPhase
	memReady uint64 // cycle the memory read completes (phaseWaitMem/WaitAcks)
	needMem  bool
	needAcks int
	gotAcks  int
	grantX   bool // Upgrade fast path: grant permission without data
}

// queuedReq is one waiting request in an entry's queue. Held by value: the
// wait queue's backing array survives entry reuse, so steady-state queueing
// allocates nothing.
type queuedReq struct {
	src memtypes.NodeID
	msg Msg
}

// entry is the directory's record for one block. Entries live in
// chunk-allocated arenas (stable pointers) and recycle through an intrusive
// free list: a block whose record returns to the zero coherence state
// (dirInvalid, no transaction, empty queue) releases its entry, and the next
// request for any block reuses it — with the wait queue's capacity kept, so
// acquire/release churn on hot blocks settles at zero heap allocations
// (TestDirectoryChurnAllocFree).
type entry struct {
	state    dirState
	owner    memtypes.NodeID
	sharers  uint64 // bitmask over nodes
	cur      *txn   // nil when idle; points at txnBox while a txn is live
	txnBox   txn
	waitq    []queuedReq
	inActive bool
	addr     memtypes.Addr
	freeNext *entry // intrusive free-list link (meaningful only when released)
}

// entryChunkSize is the arena growth quantum. Chunks are never freed; the
// arena's high-water mark is the maximum number of simultaneously live
// blocks, which block-address locality keeps far below the map-per-block
// footprint the previous implementation grew without bound.
const entryChunkSize = 64

// dirTable is an open-addressed (linear-probe, backward-shift-delete) index
// from block address to entry. It replaces the built-in map on the
// per-message path: no per-insert allocation, and deletion (entry release)
// leaves no tombstones to accumulate.
type dirTable struct {
	keys []memtypes.Addr
	vals []*entry
	n    int
}

func (t *dirTable) slot(a memtypes.Addr) uint64 {
	// Fibonacci hashing of the block number spreads the sequential block
	// addresses workloads touch across the table.
	return (uint64(a>>memtypes.BlockShift) * 0x9E3779B97F4A7C15) >> 32 & uint64(len(t.vals)-1)
}

func (t *dirTable) get(a memtypes.Addr) *entry {
	if len(t.vals) == 0 {
		return nil
	}
	mask := uint64(len(t.vals) - 1)
	for i := t.slot(a); ; i = (i + 1) & mask {
		if t.vals[i] == nil {
			return nil
		}
		if t.keys[i] == a {
			return t.vals[i]
		}
	}
}

func (t *dirTable) put(a memtypes.Addr, e *entry) {
	if t.n*4 >= len(t.vals)*3 {
		t.grow()
	}
	mask := uint64(len(t.vals) - 1)
	for i := t.slot(a); ; i = (i + 1) & mask {
		if t.vals[i] == nil {
			t.keys[i], t.vals[i] = a, e
			t.n++
			return
		}
		if t.keys[i] == a {
			panic(fmt.Sprintf("coherence: duplicate directory entry %#x", uint64(a)))
		}
	}
}

func (t *dirTable) grow() {
	size := 64
	if len(t.vals) > 0 {
		size = len(t.vals) * 2
	}
	keys, vals := t.keys, t.vals
	t.keys = make([]memtypes.Addr, size)
	t.vals = make([]*entry, size)
	t.n = 0
	for i := range vals {
		if vals[i] != nil {
			t.put(keys[i], vals[i])
		}
	}
}

// del removes a's slot with the standard backward-shift so probe chains stay
// intact without tombstones.
func (t *dirTable) del(a memtypes.Addr) {
	mask := uint64(len(t.vals) - 1)
	i := t.slot(a)
	for {
		if t.vals[i] == nil {
			return // not present
		}
		if t.keys[i] == a {
			break
		}
		i = (i + 1) & mask
	}
	j := i
	for {
		t.vals[i] = nil
		for {
			j = (j + 1) & mask
			if t.vals[j] == nil {
				t.n--
				return
			}
			h := t.slot(t.keys[j])
			// The element at j may fill slot i unless its home slot lies
			// cyclically in (i, j] — then it is already as close to home as
			// the probe chain allows.
			inIJ := false
			if i <= j {
				inIJ = i < h && h <= j
			} else {
				inIJ = i < h || h <= j
			}
			if !inIJ {
				break
			}
		}
		t.keys[i], t.vals[i] = t.keys[j], t.vals[j]
		i = j
	}
}

// Directory is the home directory slice at one node. It owns the node's
// memory controller and communicates with cache controllers through a Port
// (the torus, or in the parallel runner the node's network shard).
//
// All pooled state — the entry arena, free list, and table — is private to
// one Directory, and each Directory is driven only by its owning node's
// goroutine between barriers, so the parallel runner shares nothing through
// the pools (DESIGN.md §9; enforced by the sim-race CI job).
type Directory struct {
	id    memtypes.NodeID
	nodes int
	mem   *memctrl.Memory
	port  Port

	table  dirTable
	chunks [][]entry // arena: stable entry storage
	free   *entry    // intrusive free list of released entries
	active []*entry  // entries with an in-flight transaction, insertion order
	now    uint64

	// Stats.
	Transactions uint64
	Forwards     uint64
	Invals       uint64
	Queued       uint64
}

// NewDirectory creates the directory slice for node id.
func NewDirectory(id memtypes.NodeID, nodes int, mem *memctrl.Memory, port Port) *Directory {
	return &Directory{
		id:    id,
		nodes: nodes,
		mem:   mem,
		port:  port,
	}
}

// entryFor returns the live entry for a block, acquiring a pooled one (in
// the zero coherence state) if the block has none.
func (d *Directory) entryFor(a memtypes.Addr) *entry {
	if e := d.table.get(a); e != nil {
		return e
	}
	e := d.free
	if e == nil {
		chunk := make([]entry, entryChunkSize)
		d.chunks = append(d.chunks, chunk)
		for i := range chunk {
			chunk[i].freeNext = d.free
			d.free = &chunk[i]
		}
		e = d.free
	}
	d.free = e.freeNext
	wq := e.waitq[:0] // keep the queue's capacity across reuse
	*e = entry{addr: a, waitq: wq}
	d.table.put(a, e)
	return e
}

// releaseIfIdle returns an entry to the free list once it again describes
// the zero coherence state — exactly what entryFor would recreate — so
// keeping it indexed would be pure memory growth. Entries on the active list
// are left for Tick's prune to release (the list holds the pointer).
func (d *Directory) releaseIfIdle(e *entry) {
	if e.cur != nil || e.inActive || len(e.waitq) != 0 || e.state != dirInvalid {
		return
	}
	d.table.del(e.addr)
	e.freeNext = d.free
	d.free = e
}

func (d *Directory) send(dst memtypes.NodeID, m Msg) {
	if TraceOn() {
		Trace(d.now, fmt.Sprintf("dir%d->%d", d.id, dst), m, "")
	}
	d.port.Send(d.id, dst, m)
}

// Handle processes one protocol request arriving at this directory.
func (d *Directory) Handle(now uint64, src memtypes.NodeID, m Msg) {
	d.now = now
	if TraceOn() {
		Trace(now, fmt.Sprintf("dir%d<-%d", d.id, src), m, d.StateOf(m.Addr))
	}
	a := m.Addr
	e := d.entryFor(a)
	switch m.Kind {
	case GetS, GetX, Upgrade:
		if e.cur != nil {
			e.waitq = append(e.waitq, queuedReq{src, m})
			d.Queued++
			return
		}
		d.start(a, e, src, m)
	case PutX:
		d.handlePutX(a, e, src, m)
	case InvAck:
		d.handleInvAck(a, e, src)
	case OwnerWBS:
		d.handleOwnerWBS(a, e, src, m)
	case XferAck:
		d.handleXferAck(a, e, src)
	default:
		panic(fmt.Sprintf("directory %d: unexpected message %v from %d", d.id, m, src))
	}
	d.releaseIfIdle(e)
}

// start begins a new transaction for a block known to be idle.
func (d *Directory) start(a memtypes.Addr, e *entry, src memtypes.NodeID, m Msg) {
	d.Transactions++
	e.txnBox = txn{kind: m.Kind, req: src}
	t := &e.txnBox
	e.cur = t
	if !e.inActive {
		e.inActive = true
		d.active = append(d.active, e)
	}

	// An Upgrade whose requestor lost its copy (a queued-behind GetX
	// invalidated it before we got here) is handled as a full GetX.
	if t.kind == Upgrade {
		if e.state == dirShared && e.sharers&(1<<uint(src)) != 0 {
			t.grantX = true
		} else {
			t.kind = GetX
		}
	}

	switch t.kind {
	case GetS:
		switch e.state {
		case dirInvalid, dirShared:
			t.needMem = true
			t.memReady = d.mem.AccessDone(d.now, a)
			t.phase = phaseWaitMem
		case dirOwned:
			t.phase = phaseWaitOwner
			d.Forwards++
			d.send(e.owner, Msg{Kind: FwdGetS, Addr: a, Req: src})
		}
	case GetX, Upgrade:
		switch e.state {
		case dirInvalid:
			t.needMem = true
			t.memReady = d.mem.AccessDone(d.now, a)
			t.phase = phaseWaitMem
		case dirShared:
			t.phase = phaseWaitAcks
			if !t.grantX {
				t.needMem = true
				t.memReady = d.mem.AccessDone(d.now, a)
			}
			for n := 0; n < d.nodes; n++ {
				bit := uint64(1) << uint(n)
				if e.sharers&bit == 0 || memtypes.NodeID(n) == src {
					continue
				}
				t.needAcks++
				d.Invals++
				d.send(memtypes.NodeID(n), Msg{Kind: Inv, Addr: a})
			}
			if t.needAcks == 0 && !t.needMem {
				d.finish(a, e)
				return
			}
			if t.needAcks == 0 {
				t.phase = phaseWaitMem
			}
		case dirOwned:
			t.phase = phaseWaitOwner
			d.Forwards++
			d.send(e.owner, Msg{Kind: FwdGetX, Addr: a, Req: src})
		}
	}
	d.tickTxn(a, e)
}

// Tick advances any transactions whose memory accesses have completed.
// Iteration is over an insertion-ordered slice to keep the simulator
// deterministic.
func (d *Directory) Tick(now uint64) {
	d.now = now
	if len(d.active) == 0 {
		return
	}
	// Index-based so that entries appended by complete()->start() during the
	// walk are still visited this cycle.
	for i := 0; i < len(d.active); i++ {
		e := d.active[i]
		if e.cur != nil {
			d.tickTxn(e.addr, e)
		}
	}
	live := d.active[:0]
	for _, e := range d.active {
		if e.cur != nil {
			live = append(live, e)
		} else {
			e.inActive = false
			d.releaseIfIdle(e)
		}
	}
	for i := len(live); i < len(d.active); i++ {
		d.active[i] = nil
	}
	d.active = live
}

// NextEvent returns the earliest future cycle at which an in-flight
// transaction advances on its own: a memory access completing. This is also
// the memory controller's contribution to the idle-skip horizon, because
// access completion times are scheduled into transactions at request time
// (see memctrl.Memory.NextEvent). Ack- and owner-driven transitions are
// external (message) events and contribute nothing here.
func (d *Directory) NextEvent(now uint64) uint64 {
	next := uint64(memtypes.NoEvent)
	for _, e := range d.active {
		t := e.cur
		if t == nil {
			continue
		}
		if t.phase == phaseWaitMem {
			next = min(next, max(now+1, t.memReady))
		}
	}
	return next
}

// tickTxn completes a transaction whose remaining work (memory latency) is
// done. Transitions driven by messages are handled in the message handlers.
func (d *Directory) tickTxn(a memtypes.Addr, e *entry) {
	t := e.cur
	if t == nil {
		return
	}
	switch t.phase {
	case phaseWaitMem:
		if t.needMem && d.now < t.memReady {
			return
		}
		d.finish(a, e)
	case phaseWaitAcks:
		if t.gotAcks < t.needAcks {
			return
		}
		if t.needMem && d.now < t.memReady {
			t.phase = phaseWaitMem
			return
		}
		d.finish(a, e)
	case phaseWaitOwner:
		// Completed by OwnerWBS/XferAck.
	}
}

// finish sends the grant for the current transaction and unblocks the queue.
func (d *Directory) finish(a memtypes.Addr, e *entry) {
	t := e.cur
	switch t.kind {
	case GetS:
		data := d.mem.ReadBlock(a)
		if e.state == dirInvalid {
			e.state = dirOwned
			e.owner = t.req
			e.sharers = 0
			d.send(t.req, Msg{Kind: DataE, Addr: a, Data: data, HasData: true})
		} else {
			e.state = dirShared
			e.sharers |= 1 << uint(t.req)
			d.send(t.req, Msg{Kind: DataS, Addr: a, Data: data, HasData: true})
		}
	case GetX, Upgrade:
		if t.grantX {
			d.send(t.req, Msg{Kind: GrantX, Addr: a})
		} else {
			data := d.mem.ReadBlock(a)
			d.send(t.req, Msg{Kind: DataM, Addr: a, Data: data, HasData: true})
		}
		e.state = dirOwned
		e.owner = t.req
		e.sharers = 0
	}
	d.complete(a, e)
}

// complete clears the in-flight transaction and drains the wait queue until
// a queued request blocks the entry again (queued PutX messages complete
// immediately and keep draining).
func (d *Directory) complete(a memtypes.Addr, e *entry) {
	e.cur = nil
	for len(e.waitq) > 0 && e.cur == nil {
		q := e.waitq[0]
		copy(e.waitq, e.waitq[1:])
		e.waitq = e.waitq[:len(e.waitq)-1]
		if q.msg.Kind == PutX {
			d.handlePutX(a, e, q.src, q.msg)
		} else {
			d.start(a, e, q.src, q.msg)
		}
	}
}

func (d *Directory) handlePutX(a memtypes.Addr, e *entry, src memtypes.NodeID, m Msg) {
	if e.cur != nil {
		// A transaction is in flight; the Fwd to the (evicting) owner is
		// served from its writeback buffer, and by the time this PutX is
		// processed, ownership has moved on. Queue it for ordering.
		e.waitq = append(e.waitq, queuedReq{src, m})
		d.Queued++
		return
	}
	if e.state == dirOwned && e.owner == src {
		if m.Dirty {
			d.mem.WriteBlock(a, m.Data)
		}
		e.state = dirInvalid
		e.owner = 0
		e.sharers = 0
	}
	// A stale PutX (ownership already transferred) is acknowledged without
	// touching memory: the current owner's data supersedes it.
	d.send(src, Msg{Kind: WBAck, Addr: a})
}

func (d *Directory) handleInvAck(a memtypes.Addr, e *entry, src memtypes.NodeID) {
	t := e.cur
	if t == nil || t.phase != phaseWaitAcks {
		panic(fmt.Sprintf("directory %d: unexpected InvAck@%#x from %d", d.id, uint64(a), src))
	}
	t.gotAcks++
	d.tickTxn(a, e)
}

func (d *Directory) handleOwnerWBS(a memtypes.Addr, e *entry, src memtypes.NodeID, m Msg) {
	t := e.cur
	if t == nil || t.phase != phaseWaitOwner || t.kind != GetS {
		panic(fmt.Sprintf("directory %d: unexpected OwnerWBS@%#x from %d", d.id, uint64(a), src))
	}
	// The owner has sent FwdDataS directly to the requestor; record the data
	// at memory and leave both nodes as sharers.
	d.mem.WriteBlock(a, m.Data)
	e.state = dirShared
	e.sharers = (1 << uint(e.owner)) | (1 << uint(t.req))
	d.complete(a, e)
}

func (d *Directory) handleXferAck(a memtypes.Addr, e *entry, src memtypes.NodeID) {
	t := e.cur
	if t == nil || t.phase != phaseWaitOwner {
		panic(fmt.Sprintf("directory %d: unexpected XferAck@%#x from %d", d.id, uint64(a), src))
	}
	e.state = dirOwned
	e.owner = t.req
	e.sharers = 0
	d.complete(a, e)
}

// DebugString dumps in-flight transaction state for diagnostics. Iteration
// order is the active list's insertion order — a deterministic property of
// the simulated history, unchanged by entry pooling (the churn test pins
// it).
func (d *Directory) DebugString() string {
	out := ""
	for _, e := range d.active {
		if e.cur == nil {
			continue
		}
		t := e.cur
		out += fmt.Sprintf("  txn %#x kind=%v req=%d phase=%d acks=%d/%d memReady=%d state=%s owner=%d sharers=%b waitq=%d\n",
			uint64(e.addr), t.kind, t.req, t.phase, t.gotAcks, t.needAcks, t.memReady,
			e.state, e.owner, e.sharers, len(e.waitq))
	}
	return out
}

// PendingTransactions reports in-flight transaction count (for quiescence
// checks in tests).
func (d *Directory) PendingTransactions() int {
	n := 0
	for _, e := range d.active {
		if e.cur != nil {
			n++
		}
	}
	return n
}

// StateOf returns a debug string for a block's directory state.
func (d *Directory) StateOf(a memtypes.Addr) string {
	e := d.table.get(memtypes.BlockAddr(a))
	if e == nil {
		return "I"
	}
	s := e.state.String()
	if e.cur != nil {
		s += "*"
	}
	return s
}

// Owner returns the current owner if the block is in the Owned state.
func (d *Directory) Owner(a memtypes.Addr) (memtypes.NodeID, bool) {
	e := d.table.get(memtypes.BlockAddr(a))
	if e == nil || e.state != dirOwned {
		return 0, false
	}
	return e.owner, true
}

// Sharers returns the sharer bitmask if the block is in the Shared state.
func (d *Directory) Sharers(a memtypes.Addr) uint64 {
	e := d.table.get(memtypes.BlockAddr(a))
	if e == nil {
		return 0
	}
	return e.sharers
}
