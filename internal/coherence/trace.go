package coherence

import (
	"fmt"

	"invisifence/internal/memtypes"
)

// TraceAddr enables message-level tracing for one block address (0 =
// disabled). Diagnostic aid for protocol debugging; used by tests.
var TraceAddr memtypes.Addr

// TraceSink receives trace lines; defaults to stdout printing.
var TraceSink = func(s string) { fmt.Println(s) }

// TraceOn reports whether tracing is enabled at all. Hot paths must gate
// their Trace/TraceEvent calls on it: the call sites' fmt.Sprintf arguments
// and ...any boxing allocate before the callee's own early return could
// skip the work, and those allocations alone once dominated the simulator's
// heap profile.
func TraceOn() bool { return TraceAddr != 0 }

// TraceAlways logs a free-form event whenever tracing is enabled at all.
func TraceAlways(now uint64, format string, args ...any) {
	if TraceAddr == 0 {
		return
	}
	TraceSink(fmt.Sprintf("@%d %s", now, fmt.Sprintf(format, args...)))
}

// TraceEvent logs a free-form event for the traced block.
func TraceEvent(now uint64, a memtypes.Addr, format string, args ...any) {
	if TraceAddr == 0 || memtypes.BlockAddr(a) != memtypes.BlockAddr(TraceAddr) {
		return
	}
	TraceSink(fmt.Sprintf("@%d %s", now, fmt.Sprintf(format, args...)))
}

// Trace logs a protocol event for the traced block.
func Trace(now uint64, who string, m Msg, detail string) {
	if TraceAddr == 0 || memtypes.BlockAddr(m.Addr) != memtypes.BlockAddr(TraceAddr) {
		return
	}
	val := ""
	if m.HasData {
		val = fmt.Sprintf(" w0=%d", m.Data[0])
	}
	TraceSink(fmt.Sprintf("@%d %s %v%s %s", now, who, m, val, detail))
}
