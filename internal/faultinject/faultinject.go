// Package faultinject is a deterministic, seeded fault-injection framework
// for the service layer's chaos tests. A Plan arms faults — errors, panics,
// delays, payload corruption — at named sites (seams such as the runcache's
// disk reads, a Flight leader, a Pool worker, or sweepd's cell-simulate
// hook) by hit count: rule K fires on probe numbers [After, After+Count) of
// its kind at its site, so the same plan replays the same fault schedule on
// every run with the same probe order.
//
// The framework is built to cost nothing when disarmed: every probe is a
// method on a *Injector that is nil-safe, so an unarmed seam is a nil check
// and a return — no allocation, no lock, no time read. Production code
// never constructs an Injector; only tests (and explicitly armed servers)
// do.
//
// Probes are one line at the seam they harden:
//
//	if err := inj.Err("runcache.write"); err != nil { return err }
//	inj.Delay("pool.worker")
//	inj.MaybePanic("flight.leader")
//	data = inj.Corrupt("runcache.read", data)
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind classifies a fault.
type Kind uint8

const (
	// KindError makes Err return an *InjectedError at the site.
	KindError Kind = iota + 1
	// KindPanic makes MaybePanic panic with an *InjectedError.
	KindPanic
	// KindDelay makes Delay sleep for the rule's Delay duration.
	KindDelay
	// KindCorrupt makes Corrupt flip deterministic pseudo-random bytes of
	// the payload.
	KindCorrupt
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindDelay:
		return "delay"
	case KindCorrupt:
		return "corrupt"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Rule arms one fault: probes of the rule's Kind at Site fire on hit
// numbers [After, After+Count), counted per rule from zero. Count <= 0
// means one hit, so the zero rule fires exactly once, immediately.
type Rule struct {
	// Site names the seam ("runcache.read", "flight.leader", ...).
	Site string
	// Kind selects which probe method the rule answers.
	Kind Kind
	// After is the number of probes of this kind at this site that pass
	// untouched before the rule starts firing.
	After int
	// Count is the number of consecutive probes affected (<= 0 means 1).
	Count int
	// Delay is the pause length for KindDelay rules.
	Delay time.Duration
}

// Plan is a full fault schedule: a seed (for corruption byte choice and
// RandomPlan derivation) plus the armed rules.
type Plan struct {
	Seed  int64
	Rules []Rule
}

// Stats counts fired faults since New.
type Stats struct {
	Errors   uint64 `json:"errors"`
	Panics   uint64 `json:"panics"`
	Delays   uint64 `json:"delays"`
	Corrupts uint64 `json:"corrupts"`
}

// Total sums all fired faults.
func (s Stats) Total() uint64 { return s.Errors + s.Panics + s.Delays + s.Corrupts }

// InjectedError is the error value of KindError faults and the panic
// value of KindPanic faults, so tests can distinguish injected failures
// from organic ones.
type InjectedError struct {
	Site string
	Kind Kind
}

// Error implements error.
func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected %s at %s", e.Kind, e.Site)
}

// armedRule is one rule plus its live hit counter.
type armedRule struct {
	Rule
	hits int
}

// Injector executes a compiled Plan. The nil *Injector is the disarmed
// state: every probe returns immediately. All methods are safe for
// concurrent use.
type Injector struct {
	mu    sync.Mutex
	rules map[string][]*armedRule // keyed by site
	rng   *rand.Rand
	sleep func(time.Duration)
	stats Stats
}

// New compiles a plan into an injector. A nil plan yields a nil (fully
// disarmed) injector.
func New(plan *Plan) *Injector {
	if plan == nil {
		return nil
	}
	in := &Injector{
		rules: make(map[string][]*armedRule, len(plan.Rules)),
		rng:   rand.New(rand.NewSource(plan.Seed)),
		sleep: time.Sleep,
	}
	for _, r := range plan.Rules {
		if r.Count <= 0 {
			r.Count = 1
		}
		in.rules[r.Site] = append(in.rules[r.Site], &armedRule{Rule: r})
	}
	return in
}

// SetSleep overrides the delay primitive (tests substitute a no-op or a
// recording sleeper so chaos runs stay fast).
func (in *Injector) SetSleep(f func(time.Duration)) {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.sleep = f
	in.mu.Unlock()
}

// fire advances every rule of the kind at the site and returns the first
// rule whose window covers this hit.
func (in *Injector) fire(site string, kind Kind) *armedRule {
	var hit *armedRule
	for _, r := range in.rules[site] {
		if r.Kind != kind {
			continue
		}
		n := r.hits
		r.hits++
		if hit == nil && n >= r.After && n < r.After+r.Count {
			hit = r
		}
	}
	return hit
}

// Err probes the site for a KindError rule, returning a non-nil
// *InjectedError when one fires.
func (in *Injector) Err(site string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fire(site, KindError) == nil {
		return nil
	}
	in.stats.Errors++
	return &InjectedError{Site: site, Kind: KindError}
}

// MaybePanic probes the site for a KindPanic rule, panicking with an
// *InjectedError when one fires.
func (in *Injector) MaybePanic(site string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	fired := in.fire(site, KindPanic) != nil
	if fired {
		in.stats.Panics++
	}
	in.mu.Unlock()
	if fired {
		panic(&InjectedError{Site: site, Kind: KindPanic})
	}
}

// Delay probes the site for a KindDelay rule, sleeping for the rule's
// Delay when one fires.
func (in *Injector) Delay(site string) {
	if in == nil {
		return
	}
	in.mu.Lock()
	r := in.fire(site, KindDelay)
	if r != nil {
		in.stats.Delays++
	}
	sleep := in.sleep
	in.mu.Unlock()
	if r != nil && r.Delay > 0 {
		sleep(r.Delay)
	}
}

// Corrupt probes the site for a KindCorrupt rule. When one fires it
// returns a copy of data with a few seeded pseudo-random bytes flipped
// (never the original slice); otherwise it returns data unchanged. Empty
// payloads pass through untouched.
func (in *Injector) Corrupt(site string, data []byte) []byte {
	if in == nil {
		return data
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fire(site, KindCorrupt) == nil || len(data) == 0 {
		return data
	}
	in.stats.Corrupts++
	out := append([]byte(nil), data...)
	flips := 1 + in.rng.Intn(3)
	for i := 0; i < flips; i++ {
		p := in.rng.Intn(len(out))
		out[p] ^= byte(1 + in.rng.Intn(255))
	}
	return out
}

// Stats snapshots the fired-fault counters.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Armed reports whether the injector carries any rules.
func (in *Injector) Armed() bool { return in != nil }

// RandomPlan derives a deterministic pseudo-random plan from the seed:
// zero to two rules per site, with kinds, hit windows, and small delays
// drawn from a generator seeded only by seed. The same (seed, sites)
// always produces the same plan — the chaos suite's pinned seed list is a
// pinned fault schedule.
func RandomPlan(seed int64, sites []string) *Plan {
	rng := rand.New(rand.NewSource(seed))
	kinds := []Kind{KindError, KindPanic, KindDelay, KindCorrupt}
	p := &Plan{Seed: seed}
	for _, site := range sites {
		for n := rng.Intn(3); n > 0; n-- {
			p.Rules = append(p.Rules, Rule{
				Site:  site,
				Kind:  kinds[rng.Intn(len(kinds))],
				After: rng.Intn(4),
				Count: 1 + rng.Intn(3),
				Delay: time.Duration(1+rng.Intn(10)) * time.Millisecond,
			})
		}
	}
	return p
}
