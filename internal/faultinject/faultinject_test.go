package faultinject

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"
)

// TestNilInjectorIsNoOp pins the disarmed contract: every probe on a nil
// injector returns immediately and untouched.
func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.Armed() {
		t.Fatal("nil injector reports armed")
	}
	if err := in.Err("site"); err != nil {
		t.Fatalf("nil Err: %v", err)
	}
	in.MaybePanic("site") // must not panic
	in.Delay("site")      // must not sleep
	data := []byte("payload")
	if got := in.Corrupt("site", data); !bytes.Equal(got, data) {
		t.Fatalf("nil Corrupt changed data: %q", got)
	}
	if s := in.Stats(); s.Total() != 0 {
		t.Fatalf("nil stats: %+v", s)
	}
	if New(nil) != nil {
		t.Fatal("New(nil) is not the disarmed injector")
	}
}

// TestHitWindow pins the [After, After+Count) firing semantics.
func TestHitWindow(t *testing.T) {
	in := New(&Plan{Rules: []Rule{{Site: "s", Kind: KindError, After: 2, Count: 2}}})
	var fired []bool
	for i := 0; i < 6; i++ {
		fired = append(fired, in.Err("s") != nil)
	}
	want := []bool{false, false, true, true, false, false}
	if !reflect.DeepEqual(fired, want) {
		t.Fatalf("firing pattern %v, want %v", fired, want)
	}
	if s := in.Stats(); s.Errors != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestKindsAreIndependent checks a site's error rule never answers its
// delay/panic/corrupt probes, and vice versa.
func TestKindsAreIndependent(t *testing.T) {
	in := New(&Plan{Rules: []Rule{{Site: "s", Kind: KindError}}})
	in.MaybePanic("s")
	in.Delay("s")
	data := []byte("x")
	if got := in.Corrupt("s", data); !bytes.Equal(got, data) {
		t.Fatal("error rule fired a corrupt probe")
	}
	if err := in.Err("s"); err == nil {
		t.Fatal("error rule did not fire its own probe")
	}
	var ie *InjectedError
	if err := New(&Plan{Rules: []Rule{{Site: "t", Kind: KindError}}}).Err("t"); !errors.As(err, &ie) || ie.Site != "t" {
		t.Fatalf("injected error type: %v", err)
	}
}

// TestPanicValue checks MaybePanic panics with the typed value.
func TestPanicValue(t *testing.T) {
	in := New(&Plan{Rules: []Rule{{Site: "s", Kind: KindPanic}}})
	defer func() {
		p := recover()
		ie, ok := p.(*InjectedError)
		if !ok || ie.Site != "s" || ie.Kind != KindPanic {
			t.Fatalf("panic value: %v", p)
		}
		if s := in.Stats(); s.Panics != 1 {
			t.Fatalf("stats: %+v", s)
		}
	}()
	in.MaybePanic("s")
}

// TestDelayUsesSleeper checks Delay routes through the injectable sleeper
// with the rule's duration.
func TestDelayUsesSleeper(t *testing.T) {
	in := New(&Plan{Rules: []Rule{{Site: "s", Kind: KindDelay, Delay: 5 * time.Millisecond}}})
	var slept time.Duration
	in.SetSleep(func(d time.Duration) { slept += d })
	in.Delay("s")
	in.Delay("s") // window exhausted: no second sleep
	if slept != 5*time.Millisecond {
		t.Fatalf("slept %v", slept)
	}
	if s := in.Stats(); s.Delays != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestCorruptIsDeterministicCopy checks corruption flips bytes in a copy,
// never the caller's slice, and that the same seed flips the same bytes.
func TestCorruptIsDeterministicCopy(t *testing.T) {
	orig := []byte("the quick brown fox jumps over the lazy dog")
	corrupt := func() []byte {
		in := New(&Plan{Seed: 42, Rules: []Rule{{Site: "s", Kind: KindCorrupt}}})
		data := append([]byte(nil), orig...)
		out := in.Corrupt("s", data)
		if !bytes.Equal(data, orig) {
			t.Fatal("Corrupt mutated the caller's slice")
		}
		return out
	}
	a, b := corrupt(), corrupt()
	if bytes.Equal(a, orig) {
		t.Fatal("corruption did not change the payload")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	// Empty payloads pass through.
	in := New(&Plan{Rules: []Rule{{Site: "s", Kind: KindCorrupt}}})
	if got := in.Corrupt("s", nil); got != nil {
		t.Fatalf("corrupting nil: %q", got)
	}
}

// TestRandomPlanDeterminism pins RandomPlan: same seed, same plan; a
// different seed diverges somewhere over the chaos seed list.
func TestRandomPlanDeterminism(t *testing.T) {
	sites := []string{"a", "b", "c", "d"}
	p1, p2 := RandomPlan(7, sites), RandomPlan(7, sites)
	if !reflect.DeepEqual(p1, p2) {
		t.Fatal("same seed produced different plans")
	}
	diverged := false
	for seed := int64(0); seed < 16; seed++ {
		if !reflect.DeepEqual(RandomPlan(seed, sites), p1) {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("every seed produced the same plan")
	}
	for _, r := range p1.Rules {
		if r.Count <= 0 || r.Site == "" || r.Kind < KindError || r.Kind > KindCorrupt {
			t.Fatalf("malformed rule: %+v", r)
		}
	}
}
