package workload

import (
	"fmt"

	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// DSS builds the TPC-H-on-DB2 proxy (Figure 7: decision support, query 2):
// every thread streams a slice of a large shared fact table (read-mostly,
// miss-dominated), computes a filtered aggregate with branch-free
// predication, spills partials to private memory, and merges its result
// into a lock-protected global at the end. Synchronization is rare: the
// profile is load misses, not ordering stalls — which is exactly why DSS
// shows small TSO/RMO penalties in Figure 1.
func DSS(p Params) *Workload {
	const (
		rowWords = 2 // key, value
	)
	nRows := 8192
	span := p.scale(2600) // rows scanned per thread
	spill := 32           // spill a partial every N rows

	fp := p.Fences()
	l := newLayout()
	table := l.alloc(nRows * rowWords * memtypes.WordBytes)
	resultLock := l.alloc(memtypes.BlockBytes)
	result := l.alloc(memtypes.BlockBytes)
	done := l.alloc(memtypes.BlockBytes)
	// Partials spill into block-granularity slots of a shared result table
	// (block homes stripe across nodes): every spill is a cold remote store
	// miss, the load-behind-store pattern that penalizes SC (Figure 1).
	partials := make([]memtypes.Addr, p.Cores)
	for t := range partials {
		partials[t] = l.alloc((span/spill + 2) * memtypes.BlockBytes)
	}

	mem := make(map[memtypes.Addr]memtypes.Word)
	rng := newRNG(p, 37)
	keys := make([]memtypes.Word, nRows)
	vals := make([]memtypes.Word, nRows)
	for r := 0; r < nRows; r++ {
		keys[r] = memtypes.Word(rng.Int63n(1 << 16))
		vals[r] = memtypes.Word(rng.Int63n(1 << 10))
		mem[table+memtypes.Addr(w(r*rowWords))] = keys[r]
		mem[table+memtypes.Addr(w(r*rowWords+1))] = vals[r]
	}

	progs := make([]*isa.Program, p.Cores)
	var expected memtypes.Word
	for t := 0; t < p.Cores; t++ {
		start := (t * nRows) / p.Cores
		// Host-side replica of the scan for validation.
		for i := 0; i < span; i++ {
			r := (start + i) % nRows
			expected += vals[r] * (keys[r] & 1)
		}

		b := isa.NewBuilder(fmt.Sprintf("dss-t%d", t))
		b.MovI(isa.R20, int64(table))
		b.MovI(isa.R21, int64(partials[t]))
		b.MovI(isa.R2, 0)            // i
		b.MovI(isa.R3, int64(span))  // bound
		b.MovI(isa.R4, int64(start)) // row cursor
		b.MovI(isa.R5, int64(nRows)) // wrap bound
		b.MovI(isa.R7, 0)            // accumulator
		b.MovI(isa.R17, 0)           // spill slot cursor
		b.Label("scan")
		b.ShlI(isa.R8, isa.R4, 4) // *16 bytes per row
		b.Add(isa.R8, isa.R20, isa.R8)
		b.Ld(isa.R9, isa.R8, 0)     // key
		b.Ld(isa.R12, isa.R8, w(1)) // value
		b.MovI(isa.R13, 1)
		b.And(isa.R13, isa.R9, isa.R13) // predicate bit
		b.Mul(isa.R13, isa.R12, isa.R13)
		b.Add(isa.R7, isa.R7, isa.R13)
		// Advance the cursor with wraparound (branch-free).
		b.AddI(isa.R4, isa.R4, 1)
		b.SltU(isa.R13, isa.R4, isa.R5) // 1 while in range
		b.Mul(isa.R4, isa.R4, isa.R13)  // wraps to 0 at nRows
		// Periodic spill of the running partial (store traffic).
		b.MovI(isa.R13, int64(spill-1))
		b.And(isa.R13, isa.R2, isa.R13)
		b.Bne(isa.R13, isa.R0, "nospill")
		b.ShlI(isa.R14, isa.R17, int64(memtypes.BlockShift))
		b.Add(isa.R14, isa.R21, isa.R14)
		b.St(isa.R14, 0, isa.R7)
		b.AddI(isa.R17, isa.R17, 1)
		b.Label("nospill")
		b.AddI(isa.R2, isa.R2, 1)
		b.Bltu(isa.R2, isa.R3, "scan")

		// Merge into the global aggregate.
		b.MovI(isa.R20, int64(resultLock))
		b.MovI(isa.R21, int64(result))
		b.SpinLockBackoff(isa.R20, 0, isa.R10, isa.R11, 12, fp)
		b.Ld(isa.R8, isa.R21, 0)
		b.Add(isa.R8, isa.R8, isa.R7)
		b.St(isa.R21, 0, isa.R8)
		b.SpinUnlock(isa.R20, 0, fp)
		b.MovI(isa.R19, 1)
		b.MovI(isa.R22, int64(done))
		b.Fadd(isa.R9, isa.R22, 0, isa.R19)
		b.Halt()
		progs[t] = b.MustBuild()
	}

	cores := p.Cores
	return &Workload{
		Name:        "dss-db2",
		Description: "decision support: streaming scan with predicated aggregate, rare sync",
		Programs:    progs,
		RegInit:     regInit(cores),
		MemInit:     mem,
		Validate: func(read func(memtypes.Addr) memtypes.Word) error {
			if got := read(result); got != expected {
				return fmt.Errorf("dss-db2: aggregate = %d, want %d", got, expected)
			}
			if got := read(done); got != memtypes.Word(cores) {
				return fmt.Errorf("dss-db2: done = %d, want %d", got, cores)
			}
			return nil
		},
	}
}
