package workload

import (
	"testing"

	"invisifence/internal/cache"
	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/cpu"
	"invisifence/internal/isa"
	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
	"invisifence/internal/node"
	"invisifence/internal/sim"
)

// runConfig builds a small 4-node system for workload validation tests.
func runConfig(model consistency.Model, eng ifcore.Config) sim.Config {
	nc := node.Config{
		Model:              model,
		Engine:             eng,
		Core:               cpu.DefaultConfig(),
		L1:                 cache.Config{SizeBytes: 16 << 10, Ways: 2, HitLatency: 2, Name: "L1"},
		L2:                 cache.Config{SizeBytes: 128 << 10, Ways: 8, HitLatency: 12, Name: "L2"},
		Memory:             memctrl.Config{AccessLatency: 60, Banks: 16, BankBusy: 4},
		MSHRs:              16,
		SBCapacity:         64,
		StorePrefetchDepth: 4,
		SnoopLQ:            true,
		FillHoldCycles:     8,
	}
	if !nc.UsesFIFOSB() {
		nc.SBCapacity = 8
		if eng.MaxCheckpoints > 1 {
			nc.SBCapacity = 32
		}
	}
	return sim.Config{
		Net:            network.Config{Width: 2, Height: 2, HopLatency: 10, LocalLatency: 1},
		Node:           nc,
		MaxCycles:      8_000_000,
		WatchdogCycles: 300_000,
	}
}

// runAndValidate executes a workload and checks its data invariant.
func runAndValidate(t *testing.T, name string, model consistency.Model, eng ifcore.Config) sim.Result {
	t.Helper()
	p := Params{Cores: 4, Model: model, Seed: 1, Scale: 0.3}
	wl := MustGet(name, p)
	cfg := runConfig(model, eng)
	s := sim.New(cfg, wl.Programs, wl.RegInit)
	for a, v := range wl.MemInit {
		s.WriteWord(a, v)
	}
	res := s.Run()
	if !res.Finished {
		t.Fatalf("%s: did not finish in %d cycles", name, res.Cycles)
	}
	if err := wl.Validate(s.ReadWord); err != nil {
		t.Fatalf("%s: validation failed: %v", name, err)
	}
	return res
}

func off(m consistency.Model) ifcore.Config {
	return ifcore.Config{Mode: ifcore.ModeOff, Model: m}
}

// TestWorkloadsConventional validates every workload's end-to-end data
// invariant under the three conventional implementations.
func TestWorkloadsConventional(t *testing.T) {
	for _, name := range Names() {
		for _, m := range consistency.Models {
			name, m := name, m
			t.Run(name+"/"+m.String(), func(t *testing.T) {
				t.Parallel()
				runAndValidate(t, name, m, off(m))
			})
		}
	}
}

// TestWorkloadsSpeculative validates every workload under the speculative
// implementations — whole-program proof that rollback and commit preserve
// the data invariants.
func TestWorkloadsSpeculative(t *testing.T) {
	engines := []struct {
		name  string
		model consistency.Model
		eng   ifcore.Config
	}{
		{"invisi-sc", consistency.SC, ifcore.DefaultSelective(consistency.SC)},
		{"invisi-tso", consistency.TSO, ifcore.DefaultSelective(consistency.TSO)},
		{"invisi-rmo", consistency.RMO, ifcore.DefaultSelective(consistency.RMO)},
		{"continuous", consistency.SC, ifcore.DefaultContinuous(false)},
		{"continuous-cov", consistency.SC, ifcore.DefaultContinuous(true)},
		{"aso", consistency.SC, ifcore.DefaultASO()},
	}
	for _, name := range Names() {
		for _, e := range engines {
			name, e := name, e
			t.Run(name+"/"+e.name, func(t *testing.T) {
				t.Parallel()
				runAndValidate(t, name, e.model, e.eng)
			})
		}
	}
}

// TestWorkloadDeterminism: identical parameters must produce identical
// cycle counts (the simulator is strictly deterministic).
func TestWorkloadDeterminism(t *testing.T) {
	r1 := runAndValidate(t, "apache", consistency.SC, off(consistency.SC))
	r2 := runAndValidate(t, "apache", consistency.SC, off(consistency.SC))
	if r1.Cycles != r2.Cycles || r1.Retired != r2.Retired {
		t.Fatalf("nondeterministic: %d/%d cycles, %d/%d retired",
			r1.Cycles, r2.Cycles, r1.Retired, r2.Retired)
	}
}

// TestWorkloadGeneratorsBasics checks structural properties of generation.
func TestWorkloadGeneratorsBasics(t *testing.T) {
	p := Params{Cores: 4, Model: consistency.RMO, Seed: 7, Scale: 0.2}
	for _, name := range Names() {
		wl := MustGet(name, p)
		if len(wl.Programs) != p.Cores {
			t.Fatalf("%s: %d programs for %d cores", name, len(wl.Programs), p.Cores)
		}
		if wl.Description == "" {
			t.Fatalf("%s: missing description", name)
		}
		for i, prog := range wl.Programs {
			if prog.Len() == 0 {
				t.Fatalf("%s: empty program %d", name, i)
			}
			last := prog.Instrs[len(prog.Instrs)-1]
			if last.Op != isa.Halt {
				t.Fatalf("%s: program %d does not end in halt", name, i)
			}
		}
		// RMO programs must contain fences (the sync library emits them).
		fences := 0
		for _, in := range wl.Programs[0].Instrs {
			if in.Op == isa.Fence {
				fences++
			}
		}
		if fences == 0 {
			t.Fatalf("%s: no fences emitted under RMO", name)
		}
	}
}

// TestUnknownWorkload checks the error path.
func TestUnknownWorkload(t *testing.T) {
	if _, err := Get("nope", Params{Cores: 2}); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

var _ = memtypes.Addr(0) // keep import when layout helpers change
