package workload

import (
	"fmt"

	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// Ocean builds the SPLASH-2 Ocean proxy (Figure 7: 1026x1026 grid
// relaxations): red-black Gauss-Seidel sweeps over a row-partitioned
// integer grid. Threads write their own row bands (store bursts) and read
// neighbor boundary rows (producer-consumer sharing), with a global barrier
// between half-sweeps. Integer arithmetic keeps the computation exactly
// reproducible host-side, so validation compares the full final grid.
func Ocean(p Params) *Workload {
	const cols = 32 // words per row (4 blocks)
	rowsPer := 6
	sweeps := p.scale(4)

	rows := p.Cores*rowsPer + 2 // +2 fixed border rows
	fp := p.Fences()
	l := newLayout()
	grid := l.alloc(rows * cols * memtypes.WordBytes)
	barrier := l.alloc(memtypes.BlockBytes)

	mem := make(map[memtypes.Addr]memtypes.Word)
	rng := newRNG(p, 53)
	g := make([][]memtypes.Word, rows)
	for i := 0; i < rows; i++ {
		g[i] = make([]memtypes.Word, cols)
		for j := 0; j < cols; j++ {
			g[i][j] = memtypes.Word(rng.Int63n(1 << 12))
			mem[grid+memtypes.Addr(w(i*cols+j))] = g[i][j]
		}
	}

	rowBytes := int64(cols * memtypes.WordBytes)
	progs := make([]*isa.Program, p.Cores)
	for t := 0; t < p.Cores; t++ {
		firstRow := 1 + t*rowsPer
		b := isa.NewBuilder(fmt.Sprintf("ocean-t%d", t))
		b.MovI(isa.R20, int64(grid))
		b.MovI(isa.R24, int64(barrier))
		b.MovI(isa.R2, 0) // sweep*2 + parity counter
		b.MovI(isa.R3, int64(sweeps*2))

		b.Label("phase")
		b.MovI(isa.R16, 1)
		b.And(isa.R16, isa.R2, isa.R16) // parity of this half-sweep
		b.MovI(isa.R4, int64(firstRow))
		b.MovI(isa.R5, int64(firstRow+rowsPer))
		b.Label("row")
		// j starts at 1 or 2 so that (i + j) % 2 == parity, and steps by 2.
		b.Add(isa.R6, isa.R4, isa.R16)
		b.MovI(isa.R7, 1)
		b.And(isa.R6, isa.R6, isa.R7) // (i+parity)&1
		b.MovI(isa.R7, 2)
		b.Sub(isa.R6, isa.R7, isa.R6) // j0 = 2 - ((i+parity)&1) in {1,2}
		// row base address
		b.MovI(isa.R8, rowBytes)
		b.Mul(isa.R8, isa.R4, isa.R8)
		b.Add(isa.R8, isa.R20, isa.R8)
		b.Label("col")
		b.MovI(isa.R9, int64(cols-1))
		b.Bgeu(isa.R6, isa.R9, "rowdone")
		b.ShlI(isa.R9, isa.R6, 3)
		b.Add(isa.R9, isa.R8, isa.R9)    // &g[i][j]
		b.Ld(isa.R12, isa.R9, -rowBytes) // north
		b.Ld(isa.R13, isa.R9, rowBytes)  // south
		b.Ld(isa.R14, isa.R9, -8)        // west
		b.Ld(isa.R15, isa.R9, 8)         // east
		b.Add(isa.R12, isa.R12, isa.R13)
		b.Add(isa.R12, isa.R12, isa.R14)
		b.Add(isa.R12, isa.R12, isa.R15)
		b.ShrI(isa.R12, isa.R12, 2)
		b.St(isa.R9, 0, isa.R12)
		b.AddI(isa.R6, isa.R6, 2)
		b.Br("col")
		b.Label("rowdone")
		b.AddI(isa.R4, isa.R4, 1)
		b.Bltu(isa.R4, isa.R5, "row")

		b.Barrier(isa.R24, 0, isa.R28, isa.R10, isa.R11, p.Cores, fp)
		b.AddI(isa.R2, isa.R2, 1)
		b.Bltu(isa.R2, isa.R3, "phase")
		b.Halt()
		progs[t] = b.MustBuild()
	}

	// Host-side replica of the identical red-black schedule.
	for ph := 0; ph < sweeps*2; ph++ {
		parity := ph & 1
		next := make([][]memtypes.Word, rows)
		for i := range g {
			next[i] = append([]memtypes.Word(nil), g[i]...)
		}
		for i := 1; i < rows-1; i++ {
			for j := 1; j < cols-1; j++ {
				if (i+j)&1 == parity {
					next[i][j] = (g[i-1][j] + g[i+1][j] + g[i][j-1] + g[i][j+1]) >> 2
				}
			}
		}
		g = next
	}
	// Note: within a half-sweep, red cells only read black cells, so the
	// snapshot copy above matches the in-place simulated update exactly.

	cores := p.Cores
	return &Workload{
		Name:        "ocean",
		Description: "grid relaxation: red-black sweeps, boundary sharing, barriers",
		Programs:    progs,
		RegInit:     regInit(cores),
		MemInit:     mem,
		Validate: func(read func(memtypes.Addr) memtypes.Word) error {
			for i := 1; i < rows-1; i++ {
				for j := 1; j < cols-1; j++ {
					got := read(grid + memtypes.Addr(w(i*cols+j)))
					if got != g[i][j] {
						return fmt.Errorf("ocean: g[%d][%d] = %d, want %d", i, j, got, g[i][j])
					}
				}
			}
			_ = cores
			return nil
		},
	}
}
