package workload

import (
	"fmt"

	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// serverParams distinguishes the two web-server proxies.
type serverParams struct {
	name        string
	desc        string
	lockFreePop bool // zeus pops queues with fetch-add; apache locks them
	noGlobal    bool // zeus skips the global hit counter (event-driven stats)
	totalReqs   int  // must be a multiple of nQueues
	nQueues     int  // power of two; thread t serves queue t % nQueues
	nDocs       int  // power of two
	docWords    int  // power of two
	nSessions   int  // power of two; migratory shared counters
	nStats      int  // power of two
}

// Apache builds the Apache proxy (Figure 7: "16K connections, fastCGI,
// worker threading model"): worker threads pop lock-protected connection
// queues, stream a shared document interleaved with response-buffer writes,
// bump a migratory per-session counter, and update fine-grained locked
// statistics plus a global atomic hit counter.
func Apache(p Params) *Workload {
	return server(p, serverParams{
		name:      "apache",
		desc:      "web server: locked work queues, shared docs, session + stats sharing",
		totalReqs: p.scale(256),
		nQueues:   8,
		nDocs:     32,
		docWords:  64,
		nSessions: 64,
		nStats:    16,
	})
}

// Zeus builds the Zeus proxy (Figure 7: "16K connections, fastCGI"): an
// event-driven server with lock-free (fetch-add) accept queues, larger
// document reads, and hotter statistics (fewer locks, more contention).
func Zeus(p Params) *Workload {
	return server(p, serverParams{
		name:        "zeus",
		desc:        "web server: lock-free queue pops, hot shared stats",
		lockFreePop: true,
		noGlobal:    true,
		totalReqs:   p.scale(320),
		nQueues:     8,
		nDocs:       32,
		docWords:    64,
		nSessions:   32,
		nStats:      8,
	})
}

func server(p Params, sp serverParams) *Workload {
	fp := p.Fences()
	l := newLayout()
	qlocks := l.alloc(sp.nQueues * memtypes.BlockBytes)
	qheads := l.alloc(sp.nQueues * memtypes.BlockBytes)
	global := l.alloc(memtypes.BlockBytes)
	docs := l.alloc(sp.nDocs * sp.docWords * memtypes.WordBytes)
	sessions := l.alloc(sp.nSessions * memtypes.BlockBytes)
	stats := l.alloc(sp.nStats * memtypes.BlockBytes) // lock + counters per block

	// Every queue needs at least one serving thread.
	if sp.nQueues > p.Cores {
		sp.nQueues = p.Cores
	}
	// Round the request count up to a whole number per queue.
	if rem := sp.totalReqs % sp.nQueues; rem != 0 {
		sp.totalReqs += sp.nQueues - rem
	}
	perQueue := sp.totalReqs / sp.nQueues
	// Shared response pool: request r builds its response at pool[r].
	// First-touch remote store misses here are what make SC's
	// load-behind-store-miss drains expensive (Figure 1).
	pool := l.alloc(sp.totalReqs * sp.docWords * memtypes.WordBytes)

	mem := make(map[memtypes.Addr]memtypes.Word)
	rng := newRNG(p, 11)
	for i := 0; i < sp.nDocs*sp.docWords; i++ {
		mem[docs+memtypes.Addr(w(i))] = memtypes.Word(rng.Int63n(1 << 20))
	}

	docShift := shiftFor(sp.docWords*memtypes.WordBytes, "doc bytes")

	progs := make([]*isa.Program, p.Cores)
	for t := 0; t < p.Cores; t++ {
		q := t % sp.nQueues
		b := isa.NewBuilder(fmt.Sprintf("%s-t%d", sp.name, t))
		b.MovI(isa.R20, int64(blockOf(qlocks, q)))
		b.MovI(isa.R21, int64(blockOf(qheads, q)))
		b.MovI(isa.R22, int64(docs))
		b.MovI(isa.R23, int64(pool))
		b.MovI(isa.R24, int64(stats))
		b.MovI(isa.R25, int64(global))
		b.MovI(isa.R26, int64(sessions))
		b.MovI(isa.R19, 1)

		b.Label("loop")
		if sp.lockFreePop {
			b.Fadd(isa.R6, isa.R21, 0, isa.R19) // r6 = queue-local index
		} else {
			b.SpinLockBackoff(isa.R20, 0, isa.R10, isa.R11, 32, fp)
			b.Ld(isa.R6, isa.R21, 0)
			b.AddI(isa.R7, isa.R6, 1)
			b.St(isa.R21, 0, isa.R7)
			b.SpinUnlock(isa.R20, 0, fp)
		}
		b.MovI(isa.R8, int64(perQueue))
		b.Bgeu(isa.R6, isa.R8, "done")
		// Global request id: qlocal * nQueues + q (spreads docs/sessions).
		b.MovI(isa.R7, int64(sp.nQueues))
		b.Mul(isa.R6, isa.R6, isa.R7)
		b.AddI(isa.R6, isa.R6, int64(q))

		// Process: stream the document interleaved with response writes
		// into the shared pool (loads retiring behind outstanding store
		// misses: the SC pattern).
		b.MovI(isa.R9, int64(sp.nDocs-1))
		b.And(isa.R9, isa.R6, isa.R9)
		b.ShlI(isa.R9, isa.R9, docShift)
		b.Add(isa.R9, isa.R22, isa.R9) // doc base
		b.ShlI(isa.R7, isa.R6, docShift)
		b.Add(isa.R7, isa.R23, isa.R7) // response slot base (pool[r])
		b.MovI(isa.R12, 0)             // word index
		b.MovI(isa.R13, int64(sp.docWords))
		b.MovI(isa.R14, 0) // checksum
		b.Label("proc")
		b.ShlI(isa.R15, isa.R12, 3)
		b.Add(isa.R16, isa.R9, isa.R15)
		b.Ld(isa.R17, isa.R16, 0) // read doc word
		b.Add(isa.R14, isa.R14, isa.R17)
		b.Add(isa.R16, isa.R7, isa.R15)
		b.St(isa.R16, 0, isa.R14) // write response word
		b.AddI(isa.R12, isa.R12, 1)
		b.Bltu(isa.R12, isa.R13, "proc")

		// Migratory session counter (atomic increment).
		b.MovI(isa.R9, int64(sp.nSessions-1))
		b.And(isa.R9, isa.R6, isa.R9)
		b.ShlI(isa.R9, isa.R9, int64(memtypes.BlockShift))
		b.Add(isa.R9, isa.R26, isa.R9)
		b.Fadd(isa.R12, isa.R9, 0, isa.R19)

		// Locked per-bucket statistics update.
		b.MovI(isa.R9, int64(sp.nStats-1))
		b.And(isa.R9, isa.R6, isa.R9)
		b.ShlI(isa.R9, isa.R9, int64(memtypes.BlockShift))
		b.Add(isa.R9, isa.R24, isa.R9) // stat block
		b.SpinLockBackoff(isa.R9, 0, isa.R10, isa.R11, 32, fp)
		b.Ld(isa.R12, isa.R9, w(1))
		b.AddI(isa.R12, isa.R12, 1)
		b.St(isa.R9, w(1), isa.R12)
		b.Ld(isa.R12, isa.R9, w(2))
		b.Add(isa.R12, isa.R12, isa.R14)
		b.St(isa.R9, w(2), isa.R12)
		b.SpinUnlock(isa.R9, 0, fp)

		if !sp.noGlobal {
			// Global hit counter (atomic).
			b.Fadd(isa.R12, isa.R25, 0, isa.R19)
		}
		b.Br("loop")

		b.Label("done")
		b.Halt()
		progs[t] = b.MustBuild()
	}

	// Host-side expected totals. Request ids are qlocal*nQueues + q for
	// qlocal in [0, perQueue), q in [0, nQueues) — exactly 0..totalReqs-1.
	docSum := make([]memtypes.Word, sp.nDocs)
	for d := 0; d < sp.nDocs; d++ {
		for i := 0; i < sp.docWords; i++ {
			docSum[d] += mem[docs+memtypes.Addr(w(d*sp.docWords+i))]
		}
	}
	expCount := make([]memtypes.Word, sp.nStats)
	expSum := make([]memtypes.Word, sp.nStats)
	expSession := make([]memtypes.Word, sp.nSessions)
	for r := 0; r < sp.totalReqs; r++ {
		s := r % sp.nStats
		expCount[s]++
		expSum[s] += docSum[r%sp.nDocs]
		expSession[r%sp.nSessions]++
	}
	// Running response checksums for pool validation.
	poolExpect := func(r, k int) memtypes.Word {
		var sum memtypes.Word
		d := r % sp.nDocs
		for i := 0; i <= k; i++ {
			sum += mem[docs+memtypes.Addr(w(d*sp.docWords+i))]
		}
		return sum
	}
	threadsOnQueue := make([]int, sp.nQueues)
	for t := 0; t < p.Cores; t++ {
		threadsOnQueue[t%sp.nQueues]++
	}

	cores := p.Cores
	return &Workload{
		Name:        sp.name,
		Description: sp.desc,
		Programs:    progs,
		RegInit:     regInit(cores),
		MemInit:     mem,
		Validate: func(read func(memtypes.Addr) memtypes.Word) error {
			for q := 0; q < sp.nQueues; q++ {
				want := memtypes.Word(perQueue + threadsOnQueue[q])
				if got := read(blockOf(qheads, q)); got != want {
					return fmt.Errorf("%s: queue %d head = %d, want %d", sp.name, q, got, want)
				}
			}
			if !sp.noGlobal {
				if got := read(global); got != memtypes.Word(sp.totalReqs) {
					return fmt.Errorf("%s: global hits = %d, want %d", sp.name, got, sp.totalReqs)
				}
			}
			for s := 0; s < sp.nSessions; s++ {
				if got := read(blockOf(sessions, s)); got != expSession[s] {
					return fmt.Errorf("%s: session %d = %d, want %d", sp.name, s, got, expSession[s])
				}
			}
			for r := 0; r < sp.totalReqs; r += 37 {
				for _, k := range []int{0, sp.docWords - 1} {
					a := pool + memtypes.Addr(r*sp.docWords*memtypes.WordBytes+k*memtypes.WordBytes)
					if got := read(a); got != poolExpect(r, k) {
						return fmt.Errorf("%s: pool[%d][%d] = %d, want %d", sp.name, r, k, got, poolExpect(r, k))
					}
				}
			}
			for s := 0; s < sp.nStats; s++ {
				base := blockOf(stats, s)
				if got := read(base + memtypes.Addr(w(1))); got != expCount[s] {
					return fmt.Errorf("%s: stat %d count = %d, want %d", sp.name, s, got, expCount[s])
				}
				if got := read(base + memtypes.Addr(w(2))); got != expSum[s] {
					return fmt.Errorf("%s: stat %d sum = %d, want %d", sp.name, s, got, expSum[s])
				}
				if got := read(base); got != 0 {
					return fmt.Errorf("%s: stat lock %d left held", sp.name, s)
				}
			}
			return nil
		},
	}
}

// shiftFor returns log2(n), panicking if n is not a power of two.
func shiftFor(n int, what string) int64 {
	s := int64(0)
	for 1<<s < n {
		s++
	}
	if 1<<s != n {
		panic(fmt.Sprintf("server: %s (%d) must be a power of two", what, n))
	}
	return s
}
