package workload

import (
	"fmt"

	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// Barnes builds the SPLASH-2 Barnes-Hut proxy (Figure 7: 16K bodies): a
// timestep loop alternating a locked tree-update phase (sparse cell locks)
// with a read-mostly tree-traversal force phase over shared cells plus
// private body updates, separated by global barriers. Synchronization is
// infrequent relative to compute, which is why conventional RMO shows
// almost no ordering stalls on it (Figure 1).
func Barnes(p Params) *Workload {
	const (
		nCells    = 128
		pathLen   = 6
		lockEvery = 8 // 1 in 8 bodies does a locked cell update per step
	)
	bodiesPer := p.scale(24)
	steps := 3

	fp := p.Fences()
	l := newLayout()
	// Cell block layout: +0 lock, +8 mass, +16 touches.
	cells := l.alloc(nCells * memtypes.BlockBytes)
	barrier := l.alloc(memtypes.BlockBytes)
	bodies := make([]memtypes.Addr, p.Cores)  // body block: +0 pos, +8 vel
	paths := make([]memtypes.Addr, p.Cores)   // per body: pathLen cell indexes
	cellSel := make([]memtypes.Addr, p.Cores) // per body per step: cell to update
	for t := range bodies {
		bodies[t] = l.alloc(bodiesPer * memtypes.BlockBytes)
		paths[t] = l.alloc(bodiesPer * pathLen * memtypes.WordBytes)
		cellSel[t] = l.alloc(bodiesPer * steps * memtypes.WordBytes)
	}

	mem := make(map[memtypes.Addr]memtypes.Word)
	rng := newRNG(p, 41)
	pathIdx := make([][][]int, p.Cores)
	selIdx := make([][][]int, p.Cores)
	for t := 0; t < p.Cores; t++ {
		pathIdx[t] = make([][]int, bodiesPer)
		selIdx[t] = make([][]int, bodiesPer)
		for bdy := 0; bdy < bodiesPer; bdy++ {
			pathIdx[t][bdy] = make([]int, pathLen)
			for k := 0; k < pathLen; k++ {
				c := rng.Intn(nCells)
				pathIdx[t][bdy][k] = c
				mem[paths[t]+memtypes.Addr(w(bdy*pathLen+k))] = memtypes.Word(c)
			}
			selIdx[t][bdy] = make([]int, steps)
			for s := 0; s < steps; s++ {
				c := rng.Intn(nCells)
				selIdx[t][bdy][s] = c
				mem[cellSel[t]+memtypes.Addr(w(bdy*steps+s))] = memtypes.Word(c)
			}
		}
	}

	progs := make([]*isa.Program, p.Cores)
	for t := 0; t < p.Cores; t++ {
		b := isa.NewBuilder(fmt.Sprintf("barnes-t%d", t))
		b.MovI(isa.R20, int64(cells))
		b.MovI(isa.R21, int64(bodies[t]))
		b.MovI(isa.R22, int64(paths[t]))
		b.MovI(isa.R23, int64(cellSel[t]))
		b.MovI(isa.R24, int64(barrier))
		b.MovI(isa.R2, 0) // step
		b.MovI(isa.R3, int64(steps))
		// R28 = barrier sense (zero-initialized).

		b.Label("step")
		// Phase 1: sparse locked cell updates (tree build/refresh).
		b.MovI(isa.R4, 0) // body
		b.MovI(isa.R5, int64(bodiesPer))
		b.Label("build")
		b.MovI(isa.R6, int64(lockEvery-1))
		b.And(isa.R6, isa.R4, isa.R6)
		b.Bne(isa.R6, isa.R0, "skiplock")
		// cell = cellSel[body*steps + step]
		b.MovI(isa.R6, int64(steps))
		b.Mul(isa.R7, isa.R4, isa.R6)
		b.Add(isa.R7, isa.R7, isa.R2)
		b.ShlI(isa.R7, isa.R7, 3)
		b.Add(isa.R7, isa.R23, isa.R7)
		b.Ld(isa.R8, isa.R7, 0) // cell index
		b.ShlI(isa.R8, isa.R8, int64(memtypes.BlockShift))
		b.Add(isa.R8, isa.R20, isa.R8) // cell block
		b.SpinLockBackoff(isa.R8, 0, isa.R10, isa.R11, 48, fp)
		b.Ld(isa.R9, isa.R8, w(1))
		b.Add(isa.R9, isa.R9, isa.R4)
		b.AddI(isa.R9, isa.R9, 1)
		b.St(isa.R8, w(1), isa.R9)
		b.Ld(isa.R9, isa.R8, w(2))
		b.AddI(isa.R9, isa.R9, 1)
		b.St(isa.R8, w(2), isa.R9)
		b.SpinUnlock(isa.R8, 0, fp)
		b.Label("skiplock")
		b.AddI(isa.R4, isa.R4, 1)
		b.Bltu(isa.R4, isa.R5, "build")

		b.Barrier(isa.R24, 0, isa.R28, isa.R10, isa.R11, p.Cores, fp)

		// Phase 2: force computation — read the body's cell path, update
		// the private body block.
		b.MovI(isa.R4, 0)
		b.Label("force")
		b.MovI(isa.R9, 0) // accumulated "force"
		b.MovI(isa.R6, int64(pathLen))
		b.Mul(isa.R7, isa.R4, isa.R6)
		b.ShlI(isa.R7, isa.R7, 3)
		b.Add(isa.R7, isa.R22, isa.R7) // path base
		b.MovI(isa.R12, 0)             // k
		b.Label("walk")
		b.ShlI(isa.R13, isa.R12, 3)
		b.Add(isa.R13, isa.R7, isa.R13)
		b.Ld(isa.R14, isa.R13, 0) // cell index
		b.ShlI(isa.R14, isa.R14, int64(memtypes.BlockShift))
		b.Add(isa.R14, isa.R20, isa.R14)
		b.Ld(isa.R15, isa.R14, w(1)) // cell mass
		b.Add(isa.R9, isa.R9, isa.R15)
		b.AddI(isa.R12, isa.R12, 1)
		b.Bltu(isa.R12, isa.R6, "walk")
		// Private body update.
		b.ShlI(isa.R13, isa.R4, int64(memtypes.BlockShift))
		b.Add(isa.R13, isa.R21, isa.R13)
		b.Ld(isa.R15, isa.R13, 0)
		b.Add(isa.R15, isa.R15, isa.R9)
		b.St(isa.R13, 0, isa.R15)
		b.St(isa.R13, w(1), isa.R9)
		b.AddI(isa.R4, isa.R4, 1)
		b.Bltu(isa.R4, isa.R5, "force")

		b.Barrier(isa.R24, 0, isa.R28, isa.R10, isa.R11, p.Cores, fp)
		b.AddI(isa.R2, isa.R2, 1)
		b.Bltu(isa.R2, isa.R3, "step")
		b.Halt()
		progs[t] = b.MustBuild()
	}

	// Host-side replica: cell masses evolve deterministically per step
	// (locked adds commute within a phase; barriers order phases).
	expMass := make([]memtypes.Word, nCells)
	expTouch := make([]memtypes.Word, nCells)
	expPos := make([][]memtypes.Word, p.Cores)
	for t := range expPos {
		expPos[t] = make([]memtypes.Word, bodiesPer)
	}
	for s := 0; s < steps; s++ {
		for t := 0; t < p.Cores; t++ {
			for bdy := 0; bdy < bodiesPer; bdy++ {
				if bdy%lockEvery == 0 {
					c := selIdx[t][bdy][s]
					expMass[c] += memtypes.Word(bdy) + 1
					expTouch[c]++
				}
			}
		}
		for t := 0; t < p.Cores; t++ {
			for bdy := 0; bdy < bodiesPer; bdy++ {
				var force memtypes.Word
				for _, c := range pathIdx[t][bdy] {
					force += expMass[c]
				}
				expPos[t][bdy] += force
			}
		}
	}

	cores := p.Cores
	return &Workload{
		Name:        "barnes",
		Description: "n-body: sparse locked tree updates, read-mostly traversals, barriers",
		Programs:    progs,
		RegInit:     regInit(cores),
		MemInit:     mem,
		Validate: func(read func(memtypes.Addr) memtypes.Word) error {
			for c := 0; c < nCells; c++ {
				base := blockOf(cells, c)
				if got := read(base + memtypes.Addr(w(1))); got != expMass[c] {
					return fmt.Errorf("barnes: cell %d mass = %d, want %d", c, got, expMass[c])
				}
				if got := read(base + memtypes.Addr(w(2))); got != expTouch[c] {
					return fmt.Errorf("barnes: cell %d touches = %d, want %d", c, got, expTouch[c])
				}
			}
			for t := 0; t < cores; t++ {
				for bdy := 0; bdy < bodiesPer; bdy++ {
					a := blockOf(bodies[t], bdy)
					if got := read(a); got != expPos[t][bdy] {
						return fmt.Errorf("barnes: body %d/%d pos = %d, want %d", t, bdy, got, expPos[t][bdy])
					}
				}
			}
			return nil
		},
	}
}
