package workload

import (
	"fmt"

	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// oltpParams distinguishes the two TPC-C proxies.
type oltpParams struct {
	name      string
	desc      string
	nAccounts int
	nLocks    int // fewer locks => hotter contention
	txPerThr  int
	logSlots  int // power of two
}

// OLTPOracle builds the TPC-C-on-Oracle proxy (Figure 7: 100 warehouses,
// 16 clients): account-transfer transactions under fine-grained two-lock
// locking with an append-only commit log behind an atomic tail counter.
func OLTPOracle(p Params) *Workload {
	return oltp(p, oltpParams{
		name:      "oltp-oracle",
		desc:      "OLTP: two-lock transfers, moderate contention, atomic log tail",
		nAccounts: 2048,
		nLocks:    64,
		txPerThr:  p.scale(14),
		logSlots:  1024,
	})
}

// OLTPDB2 builds the TPC-C-on-DB2 proxy (Figure 7: 100 warehouses, 64
// clients): the same transaction engine with a larger working set and
// hotter locks, reflecting the higher client count.
func OLTPDB2(p Params) *Workload {
	return oltp(p, oltpParams{
		name:      "oltp-db2",
		desc:      "OLTP: two-lock transfers, hot locks, larger footprint",
		nAccounts: 8192,
		nLocks:    24,
		txPerThr:  p.scale(16),
		logSlots:  1024,
	})
}

func oltp(p Params, op oltpParams) *Workload {
	fp := p.Fences()
	l := newLayout()
	accounts := l.alloc(op.nAccounts * memtypes.BlockBytes) // one balance per block
	locks := l.alloc(op.nLocks * memtypes.BlockBytes)
	logTail := l.alloc(memtypes.BlockBytes)
	logArea := l.alloc(op.logSlots * 2 * memtypes.WordBytes)
	txData := make([]memtypes.Addr, p.Cores)
	for t := range txData {
		txData[t] = l.alloc(op.txPerThr * 4 * memtypes.WordBytes)
	}

	const initBal = 1000
	mem := make(map[memtypes.Addr]memtypes.Word)
	for a := 0; a < op.nAccounts; a++ {
		mem[blockOf(accounts, a)] = initBal
	}

	// Host-side transaction plans: per tx, two distinct accounts whose
	// locks are distinct and lock-ordered (deadlock freedom).
	rng := newRNG(p, 23)
	lockOf := func(acct int) int { return acct % op.nLocks }
	for t := 0; t < p.Cores; t++ {
		for i := 0; i < op.txPerThr; i++ {
			var a1, a2 int
			for {
				a1 = rng.Intn(op.nAccounts)
				a2 = rng.Intn(op.nAccounts)
				if a1 != a2 && lockOf(a1) != lockOf(a2) {
					break
				}
			}
			if lockOf(a1) > lockOf(a2) {
				a1, a2 = a2, a1
			}
			base := txData[t] + memtypes.Addr(w(i*4))
			mem[base+0*memtypes.WordBytes] = memtypes.Word(blockOf(locks, lockOf(a1)))
			mem[base+1*memtypes.WordBytes] = memtypes.Word(blockOf(locks, lockOf(a2)))
			mem[base+2*memtypes.WordBytes] = memtypes.Word(blockOf(accounts, a1))
			mem[base+3*memtypes.WordBytes] = memtypes.Word(blockOf(accounts, a2))
		}
	}

	logShift := int64(0)
	for 1<<logShift < op.logSlots {
		logShift++
	}

	progs := make([]*isa.Program, p.Cores)
	for t := 0; t < p.Cores; t++ {
		b := isa.NewBuilder(fmt.Sprintf("%s-t%d", op.name, t))
		b.MovI(isa.R20, int64(txData[t]))
		b.MovI(isa.R21, int64(logTail))
		b.MovI(isa.R22, int64(logArea))
		b.MovI(isa.R19, 1)
		b.MovI(isa.R2, 0)
		b.MovI(isa.R3, int64(op.txPerThr))

		b.Label("tx")
		// Load the transaction plan.
		b.ShlI(isa.R6, isa.R2, 5) // *32 bytes
		b.Add(isa.R6, isa.R20, isa.R6)
		b.Ld(isa.R12, isa.R6, w(0)) // lock A address
		b.Ld(isa.R13, isa.R6, w(1)) // lock B address
		b.Ld(isa.R14, isa.R6, w(2)) // account A address
		b.Ld(isa.R15, isa.R6, w(3)) // account B address
		// Acquire in lock order, transfer, release in reverse.
		b.SpinLockBackoff(isa.R12, 0, isa.R10, isa.R11, 12, fp)
		b.SpinLockBackoff(isa.R13, 0, isa.R10, isa.R11, 12, fp)
		b.Ld(isa.R7, isa.R14, 0)
		b.Ld(isa.R8, isa.R15, 0)
		b.AddI(isa.R7, isa.R7, -1)
		b.AddI(isa.R8, isa.R8, 1)
		b.St(isa.R14, 0, isa.R7)
		b.St(isa.R15, 0, isa.R8)
		b.SpinUnlock(isa.R13, 0, fp)
		b.SpinUnlock(isa.R12, 0, fp)
		// Commit record: atomic tail bump plus a two-word log entry.
		b.Fadd(isa.R9, isa.R21, 0, isa.R19)
		b.MovI(isa.R16, int64(op.logSlots-1))
		b.And(isa.R16, isa.R9, isa.R16)
		b.ShlI(isa.R16, isa.R16, 4) // *16 bytes per entry
		b.Add(isa.R16, isa.R22, isa.R16)
		b.St(isa.R16, 0, isa.R9)
		b.St(isa.R16, w(1), isa.R7)
		b.AddI(isa.R2, isa.R2, 1)
		b.Bltu(isa.R2, isa.R3, "tx")
		b.Halt()
		progs[t] = b.MustBuild()
	}

	cores := p.Cores
	totalTx := memtypes.Word(cores * op.txPerThr)
	return &Workload{
		Name:        op.name,
		Description: op.desc,
		Programs:    progs,
		RegInit:     regInit(cores),
		MemInit:     mem,
		Validate: func(read func(memtypes.Addr) memtypes.Word) error {
			var sum memtypes.Word
			for a := 0; a < op.nAccounts; a++ {
				sum += read(blockOf(accounts, a))
			}
			if want := memtypes.Word(op.nAccounts) * initBal; sum != want {
				return fmt.Errorf("%s: balance sum = %d, want %d (transfers not atomic)", op.name, sum, want)
			}
			if got := read(logTail); got != totalTx {
				return fmt.Errorf("%s: log tail = %d, want %d", op.name, got, totalTx)
			}
			for i := 0; i < op.nLocks; i++ {
				if got := read(blockOf(locks, i)); got != 0 {
					return fmt.Errorf("%s: lock %d left held", op.name, i)
				}
			}
			return nil
		},
	}
}
