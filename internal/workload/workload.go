// Package workload builds the seven benchmark proxies of Figure 7. The
// paper's commercial workloads (Apache, Zeus, TPC-C on Oracle/DB2, TPC-H on
// DB2) and SPLASH-2 codes (Barnes, Ocean) are proprietary or impractical to
// run in a laptop-scale functional simulator, so each is replaced by a
// kernel with the same memory-ordering-relevant structure: the same kinds
// of sharing (work queues, fine-grained row locks, streaming scans, tree
// walks, stencil boundaries), the same synchronization idioms (spinlocks,
// atomics, barriers, fences per model), and working sets scaled to the
// simulated cache hierarchy. DESIGN.md §1 records the substitution;
// EXPERIMENTS.md records per-figure fidelity.
//
// Every workload validates an end-to-end data invariant after the run
// (conserved balances, exact counter totals, host-replicated checksums), so
// the performance experiments double as whole-system correctness tests of
// the speculation machinery.
package workload

import (
	"fmt"
	"math/rand"

	"invisifence/internal/consistency"
	"invisifence/internal/isa"
	"invisifence/internal/memtypes"
)

// Params configures workload generation.
type Params struct {
	Cores int
	Model consistency.Model
	Seed  int64
	// Scale multiplies the work per run (1.0 = default calibration;
	// benches use less, soak tests more).
	Scale float64
}

func (p Params) scale(n int) int {
	if p.Scale <= 0 {
		return n
	}
	v := int(float64(n) * p.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// Fences returns the fence policy the model requires of the sync library.
func (p Params) Fences() isa.FencePolicy {
	switch p.Model {
	case consistency.RMO:
		return isa.RMOFences
	case consistency.RC:
		return isa.RCFences
	}
	return isa.NoFences
}

// Workload is a generated multi-threaded program plus its memory image and
// validation invariant.
type Workload struct {
	Name        string
	Description string // Figure 7-style one-liner
	Programs    []*isa.Program
	RegInit     [][isa.NumRegs]memtypes.Word
	MemInit     map[memtypes.Addr]memtypes.Word
	// Validate checks post-run data invariants through a coherent reader.
	Validate func(read func(memtypes.Addr) memtypes.Word) error
}

// Generator builds a workload for the given parameters.
type Generator func(Params) *Workload

// registry maps workload names to generators, in presentation order.
var registry = []struct {
	name string
	gen  Generator
}{
	{"apache", Apache},
	{"zeus", Zeus},
	{"oltp-oracle", OLTPOracle},
	{"oltp-db2", OLTPDB2},
	{"dss-db2", DSS},
	{"barnes", Barnes},
	{"ocean", Ocean},
}

// Names lists the seven paper workloads in Figure 1/7 order.
func Names() []string {
	out := make([]string, len(registry))
	for i, r := range registry {
		out[i] = r.name
	}
	return out
}

// Get builds the named workload.
func Get(name string, p Params) (*Workload, error) {
	for _, r := range registry {
		if r.name == name {
			return r.gen(p), nil
		}
	}
	return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, Names())
}

// MustGet is Get that panics on unknown names.
func MustGet(name string, p Params) *Workload {
	w, err := Get(name, p)
	if err != nil {
		panic(err)
	}
	return w
}

// layout hands out block-aligned, padded memory regions.
type layout struct{ next memtypes.Addr }

func newLayout() *layout { return &layout{next: 0x100000} }

// alloc reserves a region of at least size bytes, block-aligned, with a
// trailing guard block.
func (l *layout) alloc(size int) memtypes.Addr {
	a := l.next
	blocks := (size + memtypes.BlockBytes - 1) / memtypes.BlockBytes
	l.next += memtypes.Addr((blocks + 1) * memtypes.BlockBytes)
	return a
}

// w is a builder-side shorthand for word offsets.
func w(i int) int64 { return int64(i) * memtypes.WordBytes }

// blockOf returns the address of item i in a one-item-per-block array.
func blockOf(base memtypes.Addr, i int) memtypes.Addr {
	return base + memtypes.Addr(i*memtypes.BlockBytes)
}

// newRNG builds the deterministic generator for host-side layout choices.
func newRNG(p Params, salt int64) *rand.Rand {
	return rand.New(rand.NewSource(p.Seed*1000003 + salt))
}

// regInit builds per-thread initial registers: R1 = thread id.
func regInit(cores int) [][isa.NumRegs]memtypes.Word {
	out := make([][isa.NumRegs]memtypes.Word, cores)
	for t := 0; t < cores; t++ {
		out[t][isa.R1] = memtypes.Word(t)
	}
	return out
}
