package storebuffer

import (
	"invisifence/internal/memtypes"
)

// NonSpecEpoch marks a coalescing-buffer entry holding non-speculative
// stores.
const NonSpecEpoch = -1

// CoalescingEntry is one block-granularity entry with per-word valid bits.
// Epoch is NonSpecEpoch for non-speculative stores or the checkpoint epoch
// index for speculative ones; speculative and non-speculative stores to the
// same block never coalesce (§3.1), so a block may have several entries of
// different classes, ordered by seq.
type CoalescingEntry struct {
	Block  memtypes.Addr
	Words  memtypes.BlockData
	Valid  [memtypes.WordsPerBlock]bool
	Epoch  int
	Issued bool // ownership request sent for this block
	seq    uint64
}

// Seq exposes the entry's age order (older = smaller) for drain ordering.
func (e *CoalescingEntry) Seq() uint64 { return e.seq }

// Coalescing is the unordered block-granularity store buffer. Capacity is
// sized to the number of outstanding store misses (8 entries for a single
// checkpoint, 32 with two in-flight checkpoints, per Figure 6).
type Coalescing struct {
	entries  []*CoalescingEntry
	capacity int
	nextSeq  uint64

	// free recycles removed entries: occupancy is capacity-bounded, so after
	// warm-up every Store that needs a fresh entry pops one here and the
	// speculation-path store stream allocates nothing.
	free []*CoalescingEntry

	Merges, Allocs, FullStalls uint64
}

// NewCoalescing creates a coalescing store buffer with the given capacity.
func NewCoalescing(capacity int) *Coalescing {
	return &Coalescing{capacity: capacity}
}

// Full reports whether a store needing a fresh entry would fail.
func (c *Coalescing) Full() bool { return len(c.entries) >= c.capacity }

// Empty reports whether the buffer holds no stores.
func (c *Coalescing) Empty() bool { return len(c.entries) == 0 }

// Len returns the current entry count.
func (c *Coalescing) Len() int { return len(c.entries) }

// Capacity returns the configured capacity.
func (c *Coalescing) Capacity() int { return c.capacity }

// mergeTarget returns the entry a store of the given class may coalesce
// into: the youngest entry for the block, and only if it has the same
// epoch class (no speculative/non-speculative or cross-epoch coalescing,
// and no writing into an older entry past a younger one).
func (c *Coalescing) mergeTarget(block memtypes.Addr, epoch int) *CoalescingEntry {
	var youngest *CoalescingEntry
	for _, e := range c.entries {
		if e.Block == block && (youngest == nil || e.seq > youngest.seq) {
			youngest = e
		}
	}
	if youngest != nil && youngest.Epoch == epoch {
		return youngest
	}
	return nil
}

// Store buffers a retired store. It returns false (and counts a stall) if a
// new entry is needed but the buffer is full.
func (c *Coalescing) Store(addr memtypes.Addr, val memtypes.Word, epoch int) bool {
	block := memtypes.BlockAddr(addr)
	wi := memtypes.WordIndex(addr)
	if e := c.mergeTarget(block, epoch); e != nil {
		e.Words[wi] = val
		e.Valid[wi] = true
		c.Merges++
		return true
	}
	if c.Full() {
		c.FullStalls++
		return false
	}
	c.nextSeq++
	var e *CoalescingEntry
	if k := len(c.free); k > 0 {
		e = c.free[k-1]
		c.free = c.free[:k-1]
		*e = CoalescingEntry{Block: block, Epoch: epoch, seq: c.nextSeq}
	} else {
		e = &CoalescingEntry{Block: block, Epoch: epoch, seq: c.nextSeq}
	}
	e.Words[wi] = val
	e.Valid[wi] = true
	c.entries = append(c.entries, e)
	c.Allocs++
	return true
}

// Forward returns the youngest buffered value for the word at addr, if any.
// Only the local core ever searches the buffer; external coherence requests
// do not (§3.1).
func (c *Coalescing) Forward(addr memtypes.Addr) (memtypes.Word, bool) {
	block := memtypes.BlockAddr(addr)
	wi := memtypes.WordIndex(addr)
	var best *CoalescingEntry
	for _, e := range c.entries {
		if e.Block == block && e.Valid[wi] && (best == nil || e.seq > best.seq) {
			best = e
		}
	}
	if best == nil {
		return 0, false
	}
	return best.Words[wi], true
}

// Entries returns the live entries in age order (the slice is the internal
// one; callers must not mutate its structure).
func (c *Coalescing) Entries() []*CoalescingEntry { return c.entries }

// EntriesForBlock returns the entries for one block in age order.
func (c *Coalescing) EntriesForBlock(block memtypes.Addr) []*CoalescingEntry {
	var out []*CoalescingEntry
	for _, e := range c.entries {
		if e.Block == block {
			out = append(out, e)
		}
	}
	return out
}

// HasBlock reports whether any entry (of any epoch class) holds stores for
// the block. Allocation-free equivalent of len(EntriesForBlock(block)) > 0
// for the hot paths (eviction pinning, retirement bypass checks).
func (c *Coalescing) HasBlock(block memtypes.Addr) bool {
	for _, e := range c.entries {
		if e.Block == block {
			return true
		}
	}
	return false
}

// IsOldestForBlock reports whether e is the oldest live entry for its block.
// The entries slice is kept in seq order, so the first same-block entry
// encountered decides; this replaces the allocating EntriesForBlock walk on
// the per-cycle drain path.
func (c *Coalescing) IsOldestForBlock(target *CoalescingEntry) bool {
	for _, e := range c.entries {
		if e == target {
			return true
		}
		if e.Block == target.Block {
			return false
		}
	}
	panic("storebuffer: IsOldestForBlock of entry not present")
}

// Remove deletes an entry (after its words have been written to the L1) and
// recycles it.
func (c *Coalescing) Remove(target *CoalescingEntry) {
	for i, e := range c.entries {
		if e == target {
			c.entries = append(c.entries[:i], c.entries[i+1:]...)
			c.free = append(c.free, target)
			return
		}
	}
	panic("storebuffer: remove of entry not present")
}

// FlashInvalidateSpec drops every speculative entry of the given epoch (the
// paper's abort operation) and returns how many were dropped. Non-
// speculative entries are untouched because speculative and non-speculative
// stores never coalesce.
func (c *Coalescing) FlashInvalidateSpec(epoch int) int {
	kept := c.entries[:0]
	dropped := 0
	for _, e := range c.entries {
		if e.Epoch == epoch {
			dropped++
			c.free = append(c.free, e)
		} else {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(c.entries); i++ {
		c.entries[i] = nil
	}
	c.entries = kept
	return dropped
}

// CountEpoch returns the number of entries in the given epoch class.
func (c *Coalescing) CountEpoch(epoch int) int {
	n := 0
	for _, e := range c.entries {
		if e.Epoch == epoch {
			n++
		}
	}
	return n
}

// ReclassifyEpoch moves all entries from one epoch class to another: used
// when an epoch commits while some of its stores still sit in the buffer
// waiting for fills (they become non-speculative), and when epoch indexes
// rotate after a commit.
func (c *Coalescing) ReclassifyEpoch(from, to int) int {
	n := 0
	for _, e := range c.entries {
		if e.Epoch == from {
			e.Epoch = to
			n++
		}
	}
	return n
}
