// Package storebuffer implements the two post-retirement store buffer
// organizations from Figure 2 and §3.1 of the paper:
//
//   - a word-granularity FIFO store buffer (SC and TSO conventional
//     implementations): age-ordered, fully-associative search for load
//     forwarding, drained strictly in order;
//   - a block-granularity unordered coalescing store buffer (RMO baseline
//     and all InvisiFence variants): per-word valid bits, entries merge by
//     block, never searched by incoming coherence requests, never supplies
//     data to other processors, extended with flash-invalidation of
//     speculative entries for InvisiFence abort.
package storebuffer

import "invisifence/internal/memtypes"

// FIFOEntry is one retired-but-uncommitted store at word granularity.
type FIFOEntry struct {
	Addr memtypes.Addr // word-aligned
	Val  memtypes.Word
	seq  uint64
}

// FIFO is the word-granularity FIFO store buffer. Its CAM-based load
// forwarding is what limits its capacity in real designs (§2.1); capacity
// stalls under TSO come from here.
type FIFO struct {
	entries  []FIFOEntry
	capacity int
	nextSeq  uint64

	// prefetchBuf is the reusable result slice for PrefetchBlocks: the drain
	// engine calls it every cycle, so it must not allocate.
	prefetchBuf []memtypes.Addr

	Pushes, FullStalls uint64
}

// NewFIFO creates a FIFO store buffer with the given entry capacity.
func NewFIFO(capacity int) *FIFO {
	return &FIFO{capacity: capacity}
}

// Full reports whether a push would fail.
func (f *FIFO) Full() bool { return len(f.entries) >= f.capacity }

// Empty reports whether the buffer holds no stores.
func (f *FIFO) Empty() bool { return len(f.entries) == 0 }

// Len returns the current occupancy.
func (f *FIFO) Len() int { return len(f.entries) }

// Capacity returns the configured capacity.
func (f *FIFO) Capacity() int { return f.capacity }

// Push appends a retired store. It returns false (and counts a stall) if
// the buffer is full.
func (f *FIFO) Push(addr memtypes.Addr, val memtypes.Word) bool {
	if f.Full() {
		f.FullStalls++
		return false
	}
	f.nextSeq++
	f.entries = append(f.entries, FIFOEntry{Addr: memtypes.WordAlign(addr), Val: val, seq: f.nextSeq})
	f.Pushes++
	return true
}

// Forward returns the value of the youngest buffered store to the word at
// addr, if any (store-to-load forwarding through the CAM).
func (f *FIFO) Forward(addr memtypes.Addr) (memtypes.Word, bool) {
	wa := memtypes.WordAlign(addr)
	for i := len(f.entries) - 1; i >= 0; i-- {
		if f.entries[i].Addr == wa {
			return f.entries[i].Val, true
		}
	}
	return 0, false
}

// Head returns the oldest entry without removing it, or nil if empty. The
// drain engine writes the head into the L1 once the block is writable.
func (f *FIFO) Head() *FIFOEntry {
	if len(f.entries) == 0 {
		return nil
	}
	return &f.entries[0]
}

// Pop removes the oldest entry.
func (f *FIFO) Pop() {
	if len(f.entries) == 0 {
		panic("storebuffer: pop from empty FIFO")
	}
	copy(f.entries, f.entries[1:])
	f.entries = f.entries[:len(f.entries)-1]
}

// PrefetchBlocks returns the distinct block addresses of up to depth entries
// past the head; the drain engine issues exclusive prefetches for them
// (Flexus-style store prefetching, §6.1). The returned slice is reused
// across calls: callers must not retain it. Deduplication is a linear scan
// of the result — depth is single-digit, so this beats a map and allocates
// nothing.
func (f *FIFO) PrefetchBlocks(depth int) []memtypes.Addr {
	out := f.prefetchBuf[:0]
	for i := 0; i < len(f.entries) && i < depth; i++ {
		ba := memtypes.BlockAddr(f.entries[i].Addr)
		dup := false
		for _, b := range out {
			if b == ba {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, ba)
		}
	}
	f.prefetchBuf = out
	return out
}
