package storebuffer

import (
	"math/rand"
	"testing"

	"invisifence/internal/memtypes"
)

// ------------------------------------------------------------------ FIFO

func TestFIFOOrderAndCapacity(t *testing.T) {
	f := NewFIFO(4)
	for i := 0; i < 4; i++ {
		if !f.Push(memtypes.Addr(i*8), memtypes.Word(i)) {
			t.Fatalf("push %d failed", i)
		}
	}
	if !f.Full() || f.Push(0x100, 1) {
		t.Fatal("push into full FIFO succeeded")
	}
	if f.FullStalls != 1 {
		t.Fatalf("FullStalls = %d", f.FullStalls)
	}
	for i := 0; i < 4; i++ {
		h := f.Head()
		if h == nil || h.Val != memtypes.Word(i) {
			t.Fatalf("head %d = %+v", i, h)
		}
		f.Pop()
	}
	if !f.Empty() {
		t.Fatal("not empty after draining")
	}
}

func TestFIFOForwardYoungest(t *testing.T) {
	f := NewFIFO(8)
	f.Push(0x40, 1)
	f.Push(0x48, 2)
	f.Push(0x40, 3) // newer store to same word
	if v, ok := f.Forward(0x40); !ok || v != 3 {
		t.Fatalf("forward = %d,%v want 3", v, ok)
	}
	if v, ok := f.Forward(0x48); !ok || v != 2 {
		t.Fatalf("forward = %d,%v want 2", v, ok)
	}
	if _, ok := f.Forward(0x50); ok {
		t.Fatal("forward hit for absent word")
	}
}

func TestFIFOPrefetchBlocks(t *testing.T) {
	f := NewFIFO(16)
	f.Push(0x00, 1) // block 0
	f.Push(0x08, 2) // block 0
	f.Push(0x40, 3) // block 1
	f.Push(0x80, 4) // block 2
	blocks := f.PrefetchBlocks(3)
	if len(blocks) != 2 || blocks[0] != 0 || blocks[1] != 0x40 {
		t.Fatalf("prefetch blocks = %v", blocks)
	}
}

func TestFIFOPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewFIFO(2).Pop()
}

// ------------------------------------------------------------ Coalescing

func TestCoalescingMergeSameEpoch(t *testing.T) {
	c := NewCoalescing(2)
	if !c.Store(0x40, 1, NonSpecEpoch) || !c.Store(0x48, 2, NonSpecEpoch) {
		t.Fatal("stores failed")
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1 (merged)", c.Len())
	}
	e := c.Entries()[0]
	if !e.Valid[0] || !e.Valid[1] || e.Words[0] != 1 || e.Words[1] != 2 {
		t.Fatalf("bad entry %+v", e)
	}
}

func TestCoalescingNoCrossEpochMerge(t *testing.T) {
	c := NewCoalescing(4)
	c.Store(0x40, 1, NonSpecEpoch)
	c.Store(0x48, 2, 0) // speculative epoch 0: no coalescing (§3.1)
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// A later store of the same epoch merges into the youngest entry only.
	c.Store(0x40, 3, 0)
	if c.Len() != 2 {
		t.Fatalf("len = %d after same-epoch merge, want 2", c.Len())
	}
	// A non-speculative store now cannot merge (the youngest entry for the
	// block is speculative): new entry.
	c.Store(0x40, 4, NonSpecEpoch)
	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
}

func TestCoalescingForwardYoungest(t *testing.T) {
	c := NewCoalescing(4)
	c.Store(0x40, 1, NonSpecEpoch)
	c.Store(0x40, 9, 0) // younger speculative value
	if v, ok := c.Forward(0x40); !ok || v != 9 {
		t.Fatalf("forward = %d,%v want 9", v, ok)
	}
	if _, ok := c.Forward(0x48); ok {
		t.Fatal("hit for invalid word")
	}
}

func TestCoalescingCapacity(t *testing.T) {
	c := NewCoalescing(2)
	c.Store(0x000, 1, NonSpecEpoch)
	c.Store(0x040, 2, NonSpecEpoch)
	if c.Store(0x080, 3, NonSpecEpoch) {
		t.Fatal("store beyond capacity succeeded")
	}
	// Merging into an existing block still works when full.
	if !c.Store(0x008, 4, NonSpecEpoch) {
		t.Fatal("merge into existing entry failed when full")
	}
}

func TestCoalescingFlashInvalidateSpec(t *testing.T) {
	c := NewCoalescing(8)
	c.Store(0x000, 1, NonSpecEpoch)
	c.Store(0x040, 2, 0)
	c.Store(0x080, 3, 1)
	c.Store(0x0C0, 4, 0)
	if n := c.FlashInvalidateSpec(0); n != 2 {
		t.Fatalf("dropped %d, want 2", n)
	}
	if c.Len() != 2 || c.CountEpoch(NonSpecEpoch) != 1 || c.CountEpoch(1) != 1 {
		t.Fatalf("wrong survivors: len=%d", c.Len())
	}
}

func TestCoalescingEntriesForBlockAgeOrder(t *testing.T) {
	c := NewCoalescing(8)
	c.Store(0x40, 1, NonSpecEpoch)
	c.Store(0x40, 2, 0)
	c.Store(0x40, 3, 1)
	es := c.EntriesForBlock(0x40)
	if len(es) != 3 {
		t.Fatalf("entries = %d", len(es))
	}
	for i := 1; i < len(es); i++ {
		if es[i].Seq() <= es[i-1].Seq() {
			t.Fatal("entries not in age order")
		}
	}
}

func TestCoalescingRemove(t *testing.T) {
	c := NewCoalescing(4)
	c.Store(0x40, 1, NonSpecEpoch)
	c.Store(0x80, 2, NonSpecEpoch)
	c.Remove(c.Entries()[0])
	if c.Len() != 1 || c.Entries()[0].Block != 0x80 {
		t.Fatal("wrong entry removed")
	}
}

func TestCoalescingReclassify(t *testing.T) {
	c := NewCoalescing(4)
	c.Store(0x40, 1, 2)
	c.Store(0x80, 2, 2)
	if n := c.ReclassifyEpoch(2, NonSpecEpoch); n != 2 {
		t.Fatalf("reclassified %d", n)
	}
	if c.CountEpoch(NonSpecEpoch) != 2 || c.CountEpoch(2) != 0 {
		t.Fatal("reclassify failed")
	}
}

// TestCoalescingForwardVsReference: random stores against a per-word
// reference map, checking forwarding always returns the newest value.
func TestCoalescingForwardVsReference(t *testing.T) {
	c := NewCoalescing(64)
	ref := make(map[memtypes.Addr]memtypes.Word)
	rng := rand.New(rand.NewSource(7))
	epoch := NonSpecEpoch
	for i := 0; i < 2000; i++ {
		a := memtypes.Addr(rng.Intn(16)*8 + rng.Intn(4)*64)
		v := memtypes.Word(i)
		if c.Store(a, v, epoch) {
			ref[memtypes.WordAlign(a)] = v
		}
		probe := memtypes.Addr(rng.Intn(16)*8 + rng.Intn(4)*64)
		got, ok := c.Forward(probe)
		want, wok := ref[memtypes.WordAlign(probe)]
		if ok != wok || (ok && got != want) {
			t.Fatalf("forward(%#x) = %d,%v want %d,%v", uint64(probe), got, ok, want, wok)
		}
	}
}
