package isa

import (
	"strings"
	"testing"
	"testing/quick"

	"invisifence/internal/memtypes"
)

func TestBuilderLabelsAndBranches(t *testing.T) {
	b := NewBuilder("t")
	b.MovI(R1, 5)
	b.Label("top")
	b.AddI(R1, R1, -1)
	b.Bne(R1, R0, "top")
	b.Halt()
	p := b.MustBuild()
	if p.Len() != 4 {
		t.Fatalf("len = %d", p.Len())
	}
	if p.Instrs[2].Target != 1 {
		t.Fatalf("branch target = %d, want 1", p.Instrs[2].Target)
	}
}

func TestBuilderUnresolvedLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Br("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected unresolved-label error")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	b := NewBuilder("t")
	b.Label("x")
	b.Label("x")
}

func TestFreshLabelsUnique(t *testing.T) {
	b := NewBuilder("t")
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		l := b.FreshLabel("spin")
		if seen[l] {
			t.Fatalf("duplicate fresh label %q", l)
		}
		seen[l] = true
	}
}

func TestOpClassifiers(t *testing.T) {
	cases := []struct {
		op                          Op
		load, store, atomic, branch bool
	}{
		{Ld, true, false, false, false},
		{St, false, true, false, false},
		{LdAcq, true, false, false, false},
		{StRel, false, true, false, false},
		{Cas, false, false, true, false},
		{Fadd, false, false, true, false},
		{Swap, false, false, true, false},
		{Beq, false, false, false, true},
		{Br, false, false, false, true},
		{Add, false, false, false, false},
		{Fence, false, false, false, false},
	}
	for _, c := range cases {
		if c.op.IsLoad() != c.load || c.op.IsStore() != c.store ||
			c.op.IsAtomic() != c.atomic || c.op.IsBranch() != c.branch {
			t.Errorf("%v misclassified", c.op)
		}
	}
	if !Ld.IsMem() || !Cas.IsMem() || Fence.IsMem() {
		t.Fatal("IsMem wrong")
	}
	if !LdAcq.IsAcquire() || !StRel.IsRelease() || Ld.IsAcquire() || St.IsRelease() || Fence.IsAcquire() {
		t.Fatal("acquire/release annotations wrong")
	}
}

func TestAccessKinds(t *testing.T) {
	if Ld.AccessKind() != memtypes.AccessLoad || St.AccessKind() != memtypes.AccessStore ||
		Fadd.AccessKind() != memtypes.AccessAtomic || Fence.AccessKind() != memtypes.AccessFence {
		t.Fatal("access kinds wrong")
	}
}

func TestDisassembleRoundtripMentions(t *testing.T) {
	b := NewBuilder("t")
	b.MovI(R3, 42)
	b.Ld(R4, R3, 16)
	b.St(R3, 8, R4)
	b.Cas(R5, R3, 0, R0, R4)
	b.Fadd(R6, R3, 0, R4)
	b.LdAcq(R7, R3, 24)
	b.StRel(R3, 32, R7)
	b.Fence()
	b.Label("end")
	b.Br("end")
	b.Halt()
	p := b.MustBuild()
	d := p.Disassemble()
	for _, frag := range []string{"movi r3, 42", "ld r4, [r3+16]", "st [r3+8], r4", "cas", "fadd",
		"ld.acq r7, [r3+24]", "st.rel [r3+32], r7", "fence", "halt", "end:"} {
		if !strings.Contains(d, frag) {
			t.Errorf("disassembly missing %q:\n%s", frag, d)
		}
	}
}

func TestOpStringTotal(t *testing.T) {
	f := func(x uint8) bool { return Op(x%30).String() != "" }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLatency(t *testing.T) {
	if Mul.Latency(0) != 3 || Add.Latency(0) != 1 {
		t.Fatal("latency wrong")
	}
	if Delay.Latency(17) != 17 || Delay.Latency(0) != 1 {
		t.Fatal("delay latency wrong")
	}
}

func TestSyncEmittersFencePolicy(t *testing.T) {
	count := func(fp FencePolicy) int {
		b := NewBuilder("t")
		b.SpinLock(R1, 0, R10, R11, fp)
		b.SpinUnlock(R1, 0, fp)
		b.Barrier(R2, 0, R28, R10, R11, 4, fp)
		b.Halt()
		p := b.MustBuild()
		n := 0
		for _, in := range p.Instrs {
			if in.Op == Fence {
				n++
			}
		}
		return n
	}
	if n := count(NoFences); n != 0 {
		t.Fatalf("SC/TSO policy emitted %d fences", n)
	}
	if n := count(RMOFences); n == 0 {
		t.Fatal("RMO policy emitted no fences")
	}
	if n := count(RCFences); n != 0 {
		t.Fatalf("RC policy emitted %d standalone fences, want 0", n)
	}
}

// TestSyncEmittersRCAnnotations pins the RC specialization: the lock and
// barrier macros carry ordering on annotated accesses, not fences — the
// unlock store and sense publish are st.rel, the spin loads are ld.acq.
func TestSyncEmittersRCAnnotations(t *testing.T) {
	ops := func(fp FencePolicy) (acq, rel int) {
		b := NewBuilder("t")
		b.SpinLock(R1, 0, R10, R11, fp)
		b.SpinUnlock(R1, 0, fp)
		b.Barrier(R2, 0, R28, R10, R11, 4, fp)
		b.Halt()
		for _, in := range b.MustBuild().Instrs {
			switch in.Op {
			case LdAcq:
				acq++
			case StRel:
				rel++
			}
		}
		return
	}
	acq, rel := ops(RCFences)
	// ld.acq: lock test load + barrier sense spin; st.rel: unlock store +
	// barrier sense publish.
	if acq != 2 || rel != 2 {
		t.Fatalf("RC policy emitted %d ld.acq / %d st.rel, want 2/2", acq, rel)
	}
	if acq, rel := ops(NoFences); acq != 0 || rel != 0 {
		t.Fatalf("plain policy emitted annotated accesses: %d/%d", acq, rel)
	}
	if !RCFences.Synchronizes() || NoFences.Synchronizes() || !RMOFences.Synchronizes() {
		t.Fatal("Synchronizes wrong")
	}
}
