package isa

import (
	"fmt"

	"invisifence/internal/memtypes"
)

// Interp is a reference interpreter: the architectural semantics of one
// thread executing against a flat word-addressed memory, with no timing.
// It defines the correct final state for single-threaded programs and for
// multi-threaded programs whose threads touch disjoint data, and anchors
// the randomized differential tests against the cycle-level simulator.
type Interp struct {
	Regs [NumRegs]memtypes.Word
	PC   int
	Mem  map[memtypes.Addr]memtypes.Word

	prog    *Program
	halted  bool
	Retired uint64
}

// NewInterp creates an interpreter for prog with the given initial
// registers, sharing (and mutating) mem.
func NewInterp(prog *Program, regs [NumRegs]memtypes.Word, mem map[memtypes.Addr]memtypes.Word) *Interp {
	if mem == nil {
		mem = make(map[memtypes.Addr]memtypes.Word)
	}
	it := &Interp{Regs: regs, Mem: mem, prog: prog}
	it.Regs[R0] = 0
	return it
}

// Halted reports whether the program has executed Halt.
func (it *Interp) Halted() bool { return it.halted }

func (it *Interp) read(r Reg) memtypes.Word {
	if r == R0 {
		return 0
	}
	return it.Regs[r]
}

func (it *Interp) write(r Reg, v memtypes.Word) {
	if r != R0 {
		it.Regs[r] = v
	}
}

func (it *Interp) addr(in Instr) memtypes.Addr {
	return memtypes.WordAlign(memtypes.Addr(it.read(in.Rs1)) + memtypes.Addr(in.Imm))
}

// Step executes one instruction. It returns an error on a bad PC.
func (it *Interp) Step() error {
	if it.halted {
		return nil
	}
	if it.PC < 0 || it.PC >= len(it.prog.Instrs) {
		return fmt.Errorf("isa: interp pc %d out of range [0,%d)", it.PC, len(it.prog.Instrs))
	}
	in := it.prog.Instrs[it.PC]
	next := it.PC + 1
	switch in.Op {
	case Nop, Delay:
	case Halt:
		it.halted = true
	case MovI:
		it.write(in.Rd, memtypes.Word(in.Imm))
	case Add:
		it.write(in.Rd, it.read(in.Rs1)+it.read(in.Rs2))
	case AddI:
		it.write(in.Rd, it.read(in.Rs1)+memtypes.Word(in.Imm))
	case Sub:
		it.write(in.Rd, it.read(in.Rs1)-it.read(in.Rs2))
	case Mul:
		it.write(in.Rd, it.read(in.Rs1)*it.read(in.Rs2))
	case And:
		it.write(in.Rd, it.read(in.Rs1)&it.read(in.Rs2))
	case Or:
		it.write(in.Rd, it.read(in.Rs1)|it.read(in.Rs2))
	case Xor:
		it.write(in.Rd, it.read(in.Rs1)^it.read(in.Rs2))
	case ShlI:
		it.write(in.Rd, it.read(in.Rs1)<<uint(in.Imm&63))
	case ShrI:
		it.write(in.Rd, it.read(in.Rs1)>>uint(in.Imm&63))
	case SltU:
		if it.read(in.Rs1) < it.read(in.Rs2) {
			it.write(in.Rd, 1)
		} else {
			it.write(in.Rd, 0)
		}
	case Seq:
		if it.read(in.Rs1) == it.read(in.Rs2) {
			it.write(in.Rd, 1)
		} else {
			it.write(in.Rd, 0)
		}
	case Ld, LdAcq:
		it.write(in.Rd, it.Mem[it.addr(in)])
	case St, StRel:
		it.Mem[it.addr(in)] = it.read(in.Rs2)
	case Cas:
		a := it.addr(in)
		old := it.Mem[a]
		if old == it.read(in.Rs2) {
			it.Mem[a] = it.read(in.Rs3)
		}
		it.write(in.Rd, old)
	case Fadd:
		a := it.addr(in)
		old := it.Mem[a]
		it.Mem[a] = old + it.read(in.Rs2)
		it.write(in.Rd, old)
	case Swap:
		a := it.addr(in)
		old := it.Mem[a]
		it.Mem[a] = it.read(in.Rs2)
		it.write(in.Rd, old)
	case Fence:
		// Architecturally a no-op for a single thread.
	case Br:
		next = in.Target
	case Beq:
		if it.read(in.Rs1) == it.read(in.Rs2) {
			next = in.Target
		}
	case Bne:
		if it.read(in.Rs1) != it.read(in.Rs2) {
			next = in.Target
		}
	case Bltu:
		if it.read(in.Rs1) < it.read(in.Rs2) {
			next = in.Target
		}
	case Bgeu:
		if it.read(in.Rs1) >= it.read(in.Rs2) {
			next = in.Target
		}
	default:
		return fmt.Errorf("isa: interp cannot execute %v", in.Op)
	}
	it.PC = next
	it.Retired++
	return nil
}

// Run executes until Halt or maxSteps, returning an error on bad programs.
func (it *Interp) Run(maxSteps uint64) error {
	for !it.halted {
		if it.Retired >= maxSteps {
			return fmt.Errorf("isa: interp exceeded %d steps (infinite loop?)", maxSteps)
		}
		if err := it.Step(); err != nil {
			return err
		}
	}
	return nil
}
