package isa

// FencePolicy says which fences the synchronization library must emit for
// the target consistency model. Following the paper's methodology (§6.1),
// programs are specialized per model: under RMO, locks and barriers carry
// explicit MEMBARs; under TSO and SC they need none.
//
// One deliberate divergence, recorded in DESIGN.md: the paper's tooling
// could not insert fences at lock *releases* and therefore strictly
// overestimates conventional RMO performance. Our programs actually execute
// and are checked for data-structure invariants, so RMO locking emits the
// release fence required for correctness with an unordered coalescing store
// buffer. Both the conventional RMO baseline and InvisiFence-RMO pay it, so
// relative shapes are preserved.
type FencePolicy struct {
	// Acquire inserts a full fence after acquiring a lock (and after
	// barrier exit), ordering the critical section after the acquire.
	Acquire bool
	// Release inserts a full fence before releasing a lock (and before
	// barrier announcement), ordering the critical section before the
	// release store.
	Release bool
	// AcquireLoads replaces the synchronization loads that observe a lock
	// or barrier sense word with ld.acq, carrying acquire ordering on the
	// access itself instead of a standalone fence (RC).
	AcquireLoads bool
	// ReleaseStores replaces the stores that publish a lock release or
	// barrier sense with st.rel, carrying release ordering on the access
	// itself instead of a standalone fence (RC).
	ReleaseStores bool
}

// NoFences is the policy for SC and TSO.
var NoFences = FencePolicy{}

// RMOFences is the policy for RMO.
var RMOFences = FencePolicy{Acquire: true, Release: true}

// RCFences is the policy for RC: no standalone fences; ordering rides on
// annotated acquire loads and release stores.
var RCFences = FencePolicy{AcquireLoads: true, ReleaseStores: true}

// Synchronizes reports whether the policy emits any ordering at all —
// fences or annotated accesses.
func (fp FencePolicy) Synchronizes() bool {
	return fp.Acquire || fp.Release || fp.AcquireLoads || fp.ReleaseStores
}

// syncLd emits the load a spin loop uses to observe a synchronization
// word: ld.acq under AcquireLoads, plain ld otherwise.
func (b *Builder) syncLd(fp FencePolicy, rd, base Reg, off int64) {
	if fp.AcquireLoads {
		b.LdAcq(rd, base, off)
	} else {
		b.Ld(rd, base, off)
	}
}

// syncSt emits the store that publishes a synchronization word: st.rel
// under ReleaseStores, plain st otherwise.
func (b *Builder) syncSt(fp FencePolicy, base Reg, off int64, src Reg) {
	if fp.ReleaseStores {
		b.StRel(base, off, src)
	} else {
		b.St(base, off, src)
	}
}

// SpinLock emits a test-and-test-and-set acquire of the lock word at
// [base+off]. It clobbers t0 and t1. The lock word is 0 when free, 1 when
// held.
func (b *Builder) SpinLock(base Reg, off int64, t0, t1 Reg, fp FencePolicy) {
	b.SpinLockBackoff(base, off, t0, t1, 0, fp)
}

// SpinLockBackoff is SpinLock with a fixed backoff delay (cycles) on each
// failed test, modeling a PAUSE-style spin hint. Backoff keeps contended
// locks from flooding the interconnect with refetch invalidations.
func (b *Builder) SpinLockBackoff(base Reg, off int64, t0, t1 Reg, backoff int64, fp FencePolicy) {
	spin := b.FreshLabel("lockspin")
	retry := b.FreshLabel("lockretry")
	b.MovI(t1, 1)
	b.Br(retry)
	b.Label(spin)
	if backoff > 0 {
		b.Delay(backoff)
	}
	b.Label(retry)
	b.syncLd(fp, t0, base, off)  // test (ld.acq under RC)
	b.Bne(t0, R0, spin)          // spin while held
	b.Cas(t0, base, off, R0, t1) // test-and-set
	b.Bne(t0, R0, spin)          // lost the race; spin again
	if fp.Acquire {
		b.Fence()
	}
}

// SpinUnlock emits a release of the lock word at [base+off]. Under a
// Release policy the ordering is a standalone fence; under ReleaseStores
// (RC) the lock-clearing store itself carries it.
func (b *Builder) SpinUnlock(base Reg, off int64, fp FencePolicy) {
	if fp.Release {
		b.Fence()
	}
	b.syncSt(fp, base, off, R0)
}

// Barrier emits a sense-reversing barrier. The barrier's memory layout is
// two words at [base+off]: the arrival counter and the sense word. senseReg
// must be initialized to 0 before the first use and is flipped on each
// barrier crossing; t0 and t1 are clobbered. threads is the participant
// count.
func (b *Builder) Barrier(base Reg, off int64, senseReg, t0, t1 Reg, threads int, fp FencePolicy) {
	wait := b.FreshLabel("barwait")
	done := b.FreshLabel("bardone")
	b.MovI(t1, 1)
	b.Xor(senseReg, senseReg, t1) // flip local sense
	if fp.Release {
		b.Fence() // prior work visible before announcing arrival
	}
	// Under RC the arrival Fadd itself carries release ordering (atomics
	// are synchronization accesses), so no fence is needed here.
	b.Fadd(t0, base, off, t1) // arrive
	b.MovI(t1, int64(threads-1))
	b.Bne(t0, t1, wait)
	// Last arriver: reset the counter and publish the new sense.
	b.St(base, off, R0)
	if fp.Release {
		b.Fence()
	}
	b.syncSt(fp, base, off+8, senseReg)
	b.Br(done)
	b.Label(wait)
	b.syncLd(fp, t0, base, off+8)
	b.Bne(t0, senseReg, wait)
	b.Label(done)
	if fp.Acquire {
		b.Fence()
	}
}

// AtomicAdd emits a fetch-and-add of the immediate to [base+off], result
// (old value) in rd; clobbers t0.
func (b *Builder) AtomicAdd(rd, base Reg, off int64, delta int64, t0 Reg) {
	b.MovI(t0, delta)
	b.Fadd(rd, base, off, t0)
}
