package isa

// MemAccess is one statically-extracted memory access of a straight-line
// program: the instruction's PC, opcode, and its base-register + immediate
// addressing pair. It is the raw material of the static fence-inference
// analysis (internal/staticfence), which classifies accesses by base
// register (shared-variable area vs. private result area) without running
// the program.
type MemAccess struct {
	PC   int
	Op   Op
	Base Reg
	Off  int64
}

// Reads reports whether the access observes memory (loads and atomics).
func (a MemAccess) Reads() bool { return a.Op.IsLoad() || a.Op.IsAtomic() }

// Writes reports whether the access mutates memory (stores and atomics).
func (a MemAccess) Writes() bool { return a.Op.IsStore() || a.Op.IsAtomic() }

// MemAccesses extracts every memory access of a program in program order.
// The extraction is purely syntactic: an access's address is summarized as
// (base register, immediate offset), which is exact for the litmus protocol
// (bases are set once in the harness prefix and never rewritten) but says
// nothing about programs that compute addresses.
func MemAccesses(p *Program) []MemAccess {
	var out []MemAccess
	for pc, in := range p.Instrs {
		if !in.Op.IsMem() {
			continue
		}
		out = append(out, MemAccess{PC: pc, Op: in.Op, Base: in.Rs1, Off: in.Imm})
	}
	return out
}

// HasBranch reports whether the program contains any control transfer.
// Static event-graph construction requires straight-line bodies: with
// branches, program order over executed accesses is not the instruction
// order, and the analysis must refuse rather than guess.
func HasBranch(p *Program) bool {
	for _, in := range p.Instrs {
		if in.Op.IsBranch() {
			return true
		}
	}
	return false
}

// FenceBetween reports whether a Fence instruction sits strictly between
// PCs a and b (a < fence < b would be wrong: a fence *at* b's PC, i.e.
// immediately before b in the inserted-fence sense, separates the pair too,
// but instruction-stream fences occupy their own PC, so the test is simply
// a < pc < b over the original stream).
func FenceBetween(p *Program, a, b int) bool {
	if a > b {
		a, b = b, a
	}
	for pc := a + 1; pc < b; pc++ {
		if p.Instrs[pc].Op == Fence {
			return true
		}
	}
	return false
}
