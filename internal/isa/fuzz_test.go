package isa

import (
	"testing"

	"invisifence/internal/memtypes"
)

// FuzzRCInterp feeds the reference interpreter random straight-line
// programs dense in acquire/release-annotated accesses (plus plain
// loads/stores, atomics, fences, and arithmetic). Two properties:
//
//  1. The interpreter never panics and never errors on a well-formed
//     program — the RC ops are full citizens of the architectural
//     semantics, not a special case bolted onto the simulator.
//  2. Annotations are architecturally transparent: rewriting every
//     ld.acq to ld and every st.rel to st yields a bit-identical final
//     state. Ordering annotations are a multi-thread visibility
//     contract; single-threaded they must change nothing.
func FuzzRCInterp(f *testing.F) {
	f.Add([]byte{0x00, 0x41, 0x82, 0xc3, 0x14, 0x55, 0x96, 0xd7, 0x28, 0x69})
	f.Add([]byte{0xff, 0xfe, 0xfd, 0x01, 0x02, 0x03})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog := fuzzProgram(data)
		plain := demoteAnnotations(prog)

		run := func(p *Program) *Interp {
			it := NewInterp(p, [NumRegs]memtypes.Word{}, nil)
			if err := it.Run(10_000); err != nil {
				t.Fatalf("interp error on generated program: %v\n%s", err, p.Disassemble())
			}
			return it
		}
		a, b := run(prog), run(plain)
		if a.Regs != b.Regs {
			t.Fatalf("annotations changed registers:\nannotated: %v\nplain:     %v", a.Regs, b.Regs)
		}
		if len(a.Mem) != len(b.Mem) {
			t.Fatalf("annotations changed memory footprint: %d vs %d words", len(a.Mem), len(b.Mem))
		}
		for addr, v := range a.Mem {
			if b.Mem[addr] != v {
				t.Fatalf("annotations changed memory at %#x: %d vs %d", addr, v, b.Mem[addr])
			}
		}
	})
}

// fuzzProgram decodes the fuzz payload into a straight-line program. Every
// byte chooses one instruction; addresses are confined to a small window so
// loads observe earlier stores. The stream is biased toward the annotated
// ops (4 of 10 choices) to keep them dense in the corpus.
func fuzzProgram(data []byte) *Program {
	b := NewBuilder("fuzz-rc")
	b.MovI(R1, 0x1000)                                   // memory window base
	reg := func(x byte) Reg { return Reg(2 + int(x)%6) } // R2..R7
	off := func(x byte) int64 { return int64(x%8) * memtypes.WordBytes }
	for i, x := range data {
		if i >= 64 {
			break
		}
		sel, lo, hi := x%10, x>>4, x&0x0f
		switch sel {
		case 0, 1:
			b.LdAcq(reg(lo), R1, off(hi))
		case 2, 3:
			b.StRel(R1, off(hi), reg(lo))
		case 4:
			b.Ld(reg(lo), R1, off(hi))
		case 5:
			b.St(R1, off(hi), reg(lo))
		case 6:
			b.Fadd(reg(lo), R1, off(hi), reg(hi))
		case 7:
			b.Cas(reg(lo), R1, off(hi), reg(hi), reg(lo+1))
		case 8:
			b.Fence()
		case 9:
			b.AddI(reg(lo), reg(hi), int64(x))
		}
	}
	b.Halt()
	return b.MustBuild()
}

// demoteAnnotations rewrites ld.acq/st.rel to their plain forms.
func demoteAnnotations(p *Program) *Program {
	out := &Program{Name: p.Name + "-plain", Instrs: append([]Instr(nil), p.Instrs...)}
	for i := range out.Instrs {
		switch out.Instrs[i].Op {
		case LdAcq:
			out.Instrs[i].Op = Ld
		case StRel:
			out.Instrs[i].Op = St
		}
	}
	return out
}
