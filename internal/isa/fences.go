package isa

import (
	"fmt"
	"sort"
)

// Insertion places one instruction immediately before the instruction at
// PC in the original program (PC == Len() appends). The inserted
// instruction must not be a branch: Target fields of insertions are not
// remapped.
type Insertion struct {
	PC int
	In Instr
}

// InsertBefore returns a new program with the given instructions inserted.
// Multiple insertions at the same PC keep their slice order. Branch targets
// and labels of the original program are remapped so control flow is
// preserved; a branch whose target receives insertions lands on the first
// inserted instruction (CFG-point semantics: every edge into the point
// executes the insertion, including loop back-edges).
func InsertBefore(p *Program, ins []Insertion) (*Program, error) {
	if len(ins) == 0 {
		cp := *p
		return &cp, nil
	}
	sorted := make([]Insertion, len(ins))
	copy(sorted, ins)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].PC < sorted[b].PC })
	for _, in := range sorted {
		if in.PC < 0 || in.PC > p.Len() {
			return nil, fmt.Errorf("isa: insertion PC %d out of range [0,%d] in %s", in.PC, p.Len(), p.Name)
		}
		if in.In.Op.IsBranch() {
			return nil, fmt.Errorf("isa: cannot insert branch %v in %s", in.In.Op, p.Name)
		}
	}
	// shift(t) = number of insertions strictly before original index t:
	// original instruction i moves to i + #{PC <= i}; a reference to point
	// t resolves to t + shift(t), the first instruction inserted at t (or
	// the original instruction when none is).
	shift := func(t int) int {
		n := 0
		for _, in := range sorted {
			if in.PC < t {
				n++
			}
		}
		return t + n
	}
	instrs := make([]Instr, 0, p.Len()+len(sorted))
	next := 0
	for i := 0; i <= p.Len(); i++ {
		for next < len(sorted) && sorted[next].PC == i {
			instrs = append(instrs, sorted[next].In)
			next++
		}
		if i == p.Len() {
			break
		}
		in := p.Instrs[i]
		if in.Op.IsBranch() {
			in.Target = shift(in.Target)
		}
		instrs = append(instrs, in)
	}
	labels := make(map[string]int, len(p.Labels))
	for name, pc := range p.Labels {
		labels[name] = shift(pc)
	}
	return &Program{Name: p.Name, Instrs: instrs, Labels: labels}, nil
}

// InsertFences returns a new program with a full Fence inserted immediately
// before each of the given original PCs (duplicates are collapsed). This is
// the fence-placement primitive of the fence-insertion search: a placement
// is identified by original-program PCs, so placements compose and compare
// independently of each other's index shifts.
func InsertFences(p *Program, pcs []int) (*Program, error) {
	if len(pcs) == 0 {
		cp := *p
		return &cp, nil
	}
	uniq := make([]int, 0, len(pcs))
	seen := make(map[int]bool, len(pcs))
	for _, pc := range pcs {
		if !seen[pc] {
			seen[pc] = true
			uniq = append(uniq, pc)
		}
	}
	sort.Ints(uniq)
	ins := make([]Insertion, len(uniq))
	for i, pc := range uniq {
		ins[i] = Insertion{PC: pc, In: Instr{Op: Fence}}
	}
	np, err := InsertBefore(p, ins)
	if err != nil {
		return nil, err
	}
	np.Name = fmt.Sprintf("%s+F%v", p.Name, uniq)
	return np, nil
}

// FenceSites enumerates the candidate fence-insertion points of a program:
// every PC whose instruction touches memory and that has at least one
// earlier (program-index) memory access — the points where a fence can
// constrain the ordering of two accesses. PCs already preceded by a Fence
// are skipped (inserting another there is redundant). The result is sorted
// ascending and forms the per-thread dimension of the fence-placement
// lattice searched by internal/fencesearch.
func FenceSites(p *Program) []int {
	var sites []int
	seenMem := false
	for pc, in := range p.Instrs {
		if !in.Op.IsMem() {
			continue
		}
		if seenMem && !(pc > 0 && p.Instrs[pc-1].Op == Fence) {
			sites = append(sites, pc)
		}
		seenMem = true
	}
	return sites
}
