package isa

import "fmt"

// Builder assembles a Program, resolving label references in branches.
// Methods panic on misuse (duplicate labels, register out of range); build
// errors for unresolved labels are reported by Build.
type Builder struct {
	name   string
	instrs []Instr
	labels map[string]int
	fixups []fixup
	nlabel int
}

type fixup struct {
	pc    int
	label string
}

// NewBuilder creates a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int)}
}

// PC returns the index the next emitted instruction will occupy.
func (b *Builder) PC() int { return len(b.instrs) }

// Label binds name to the next instruction's address.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("isa: duplicate label %q in %s", name, b.name))
	}
	b.labels[name] = len(b.instrs)
}

// FreshLabel returns a unique label name with the given prefix; used by
// macro-style helpers (locks, barriers) to avoid collisions.
func (b *Builder) FreshLabel(prefix string) string {
	b.nlabel++
	return fmt.Sprintf("%s$%d", prefix, b.nlabel)
}

func (b *Builder) emit(in Instr) {
	b.instrs = append(b.instrs, in)
}

func (b *Builder) emitBranch(in Instr, label string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), label: label})
	b.emit(in)
}

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Instr{Op: Nop}) }

// Halt emits a thread-terminating halt.
func (b *Builder) Halt() { b.emit(Instr{Op: Halt}) }

// MovI emits rd = imm.
func (b *Builder) MovI(rd Reg, imm int64) { b.emit(Instr{Op: MovI, Rd: rd, Imm: imm}) }

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Add, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// AddI emits rd = rs1 + imm.
func (b *Builder) AddI(rd, rs1 Reg, imm int64) {
	b.emit(Instr{Op: AddI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Sub, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Mul, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) { b.emit(Instr{Op: And, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Or, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Xor, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// ShlI emits rd = rs1 << imm.
func (b *Builder) ShlI(rd, rs1 Reg, imm int64) {
	b.emit(Instr{Op: ShlI, Rd: rd, Rs1: rs1, Imm: imm})
}

// ShrI emits rd = rs1 >> imm.
func (b *Builder) ShrI(rd, rs1 Reg, imm int64) {
	b.emit(Instr{Op: ShrI, Rd: rd, Rs1: rs1, Imm: imm})
}

// SltU emits rd = rs1 < rs2.
func (b *Builder) SltU(rd, rs1, rs2 Reg) { b.emit(Instr{Op: SltU, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Seq emits rd = rs1 == rs2.
func (b *Builder) Seq(rd, rs1, rs2 Reg) { b.emit(Instr{Op: Seq, Rd: rd, Rs1: rs1, Rs2: rs2}) }

// Delay emits a compute bubble of the given cycle count.
func (b *Builder) Delay(cycles int64) { b.emit(Instr{Op: Delay, Imm: cycles}) }

// Ld emits rd = mem[rs1+off].
func (b *Builder) Ld(rd, base Reg, off int64) {
	b.emit(Instr{Op: Ld, Rd: rd, Rs1: base, Imm: off})
}

// St emits mem[rs1+off] = rs2.
func (b *Builder) St(base Reg, off int64, src Reg) {
	b.emit(Instr{Op: St, Rs1: base, Imm: off, Rs2: src})
}

// LdAcq emits rd = mem[rs1+off] with acquire ordering.
func (b *Builder) LdAcq(rd, base Reg, off int64) {
	b.emit(Instr{Op: LdAcq, Rd: rd, Rs1: base, Imm: off})
}

// StRel emits mem[rs1+off] = rs2 with release ordering.
func (b *Builder) StRel(base Reg, off int64, src Reg) {
	b.emit(Instr{Op: StRel, Rs1: base, Imm: off, Rs2: src})
}

// Cas emits rd = CAS(mem[base+off], cmp, swp).
func (b *Builder) Cas(rd, base Reg, off int64, cmp, swp Reg) {
	b.emit(Instr{Op: Cas, Rd: rd, Rs1: base, Imm: off, Rs2: cmp, Rs3: swp})
}

// Fadd emits rd = FetchAdd(mem[base+off], addend).
func (b *Builder) Fadd(rd, base Reg, off int64, addend Reg) {
	b.emit(Instr{Op: Fadd, Rd: rd, Rs1: base, Imm: off, Rs2: addend})
}

// Swap emits rd = Exchange(mem[base+off], val).
func (b *Builder) Swap(rd, base Reg, off int64, val Reg) {
	b.emit(Instr{Op: Swap, Rd: rd, Rs1: base, Imm: off, Rs2: val})
}

// Fence emits a full memory fence.
func (b *Builder) Fence() { b.emit(Instr{Op: Fence}) }

// Br emits an unconditional branch to label.
func (b *Builder) Br(label string) { b.emitBranch(Instr{Op: Br}, label) }

// Beq emits a branch to label if rs1 == rs2.
func (b *Builder) Beq(rs1, rs2 Reg, label string) {
	b.emitBranch(Instr{Op: Beq, Rs1: rs1, Rs2: rs2}, label)
}

// Bne emits a branch to label if rs1 != rs2.
func (b *Builder) Bne(rs1, rs2 Reg, label string) {
	b.emitBranch(Instr{Op: Bne, Rs1: rs1, Rs2: rs2}, label)
}

// Bltu emits a branch to label if rs1 < rs2 (unsigned).
func (b *Builder) Bltu(rs1, rs2 Reg, label string) {
	b.emitBranch(Instr{Op: Bltu, Rs1: rs1, Rs2: rs2}, label)
}

// Bgeu emits a branch to label if rs1 >= rs2 (unsigned).
func (b *Builder) Bgeu(rs1, rs2 Reg, label string) {
	b.emitBranch(Instr{Op: Bgeu, Rs1: rs1, Rs2: rs2}, label)
}

// Build resolves fixups and returns the assembled program.
func (b *Builder) Build() (*Program, error) {
	instrs := make([]Instr, len(b.instrs))
	copy(instrs, b.instrs)
	for _, f := range b.fixups {
		target, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("isa: unresolved label %q in %s", f.label, b.name)
		}
		instrs[f.pc].Target = target
	}
	labels := make(map[string]int, len(b.labels))
	for k, v := range b.labels {
		labels[k] = v
	}
	return &Program{Name: b.name, Instrs: instrs, Labels: labels}, nil
}

// MustBuild is Build that panics on error; for tests and static programs.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
