// Package isa defines the small RISC instruction set the simulated cores
// execute, a program builder with labels and fixups, a disassembler, and a
// synchronization library (spinlocks, barriers) parameterized by the fence
// requirements of the target consistency model.
//
// The ISA stands in for the paper's UltraSPARC III ISA: what matters for
// memory-ordering studies is the mix of loads, stores, atomic
// read-modify-writes, and fences, which this ISA captures directly.
// All memory accesses are 8-byte, word-aligned.
package isa

import (
	"fmt"

	"invisifence/internal/memtypes"
)

// Reg names one of the 32 general-purpose registers. R0 reads as zero and
// ignores writes.
type Reg uint8

// NumRegs is the architectural register count.
const NumRegs = 32

// Conventional register aliases used by the builder and workloads.
const (
	R0 Reg = iota // hardwired zero
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
)

// Op is an instruction opcode.
type Op uint8

const (
	// Nop does nothing.
	Nop Op = iota
	// Halt stops the thread; the simulator treats a core whose program
	// halted as finished.
	Halt
	// MovI: rd = imm.
	MovI
	// Add: rd = rs1 + rs2.
	Add
	// AddI: rd = rs1 + imm (imm may be negative).
	AddI
	// Sub: rd = rs1 - rs2.
	Sub
	// Mul: rd = rs1 * rs2 (3-cycle latency).
	Mul
	// And: rd = rs1 & rs2.
	And
	// Or: rd = rs1 | rs2.
	Or
	// Xor: rd = rs1 ^ rs2.
	Xor
	// ShlI: rd = rs1 << imm.
	ShlI
	// ShrI: rd = rs1 >> imm (logical).
	ShrI
	// SltU: rd = 1 if rs1 < rs2 (unsigned) else 0.
	SltU
	// Seq: rd = 1 if rs1 == rs2 else 0.
	Seq
	// Delay occupies a functional unit for imm cycles; models a stretch of
	// computation without inflating the instruction stream.
	Delay
	// Ld: rd = mem[rs1 + imm].
	Ld
	// St: mem[rs1 + imm] = rs2.
	St
	// LdAcq: rd = mem[rs1 + imm], acquire semantics — under RC no later
	// access may appear to execute before it. Identical to Ld under
	// SC/TSO/RMO.
	LdAcq
	// StRel: mem[rs1 + imm] = rs2, release semantics — under RC no
	// earlier access may appear to execute after it. Identical to St
	// under SC/TSO/RMO.
	StRel
	// Cas: atomic compare-and-swap on mem[rs1 + imm]: rd = old;
	// if old == rs2 { mem = rs3 }.
	Cas
	// Fadd: atomic fetch-and-add on mem[rs1 + imm]: rd = old; mem = old + rs2.
	Fadd
	// Swap: atomic exchange on mem[rs1 + imm]: rd = old; mem = rs2.
	Swap
	// Fence is a full memory ordering fence (SPARC MEMBAR #Sync analogue).
	Fence
	// Br: unconditional branch to Target.
	Br
	// Beq: branch to Target if rs1 == rs2.
	Beq
	// Bne: branch to Target if rs1 != rs2.
	Bne
	// Bltu: branch to Target if rs1 < rs2 (unsigned).
	Bltu
	// Bgeu: branch to Target if rs1 >= rs2 (unsigned).
	Bgeu
)

var opNames = [...]string{
	Nop: "nop", Halt: "halt", MovI: "movi", Add: "add", AddI: "addi",
	Sub: "sub", Mul: "mul", And: "and", Or: "or", Xor: "xor",
	ShlI: "shli", ShrI: "shri", SltU: "sltu", Seq: "seq", Delay: "delay",
	Ld: "ld", St: "st", LdAcq: "ld.acq", StRel: "st.rel",
	Cas: "cas", Fadd: "fadd", Swap: "swap",
	Fence: "fence", Br: "br", Beq: "beq", Bne: "bne", Bltu: "bltu", Bgeu: "bgeu",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// IsBranch reports whether the op is a control transfer.
func (o Op) IsBranch() bool {
	switch o {
	case Br, Beq, Bne, Bltu, Bgeu:
		return true
	}
	return false
}

// IsCondBranch reports whether the op is a conditional control transfer.
func (o Op) IsCondBranch() bool {
	switch o {
	case Beq, Bne, Bltu, Bgeu:
		return true
	}
	return false
}

// IsLoad reports whether the op reads memory non-atomically.
func (o Op) IsLoad() bool { return o == Ld || o == LdAcq }

// IsStore reports whether the op writes memory non-atomically.
func (o Op) IsStore() bool { return o == St || o == StRel }

// IsAcquire reports whether the op carries acquire ordering (RC).
func (o Op) IsAcquire() bool { return o == LdAcq }

// IsRelease reports whether the op carries release ordering (RC).
func (o Op) IsRelease() bool { return o == StRel }

// IsAtomic reports whether the op is an atomic read-modify-write.
func (o Op) IsAtomic() bool { return o == Cas || o == Fadd || o == Swap }

// IsMem reports whether the op touches memory.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() || o.IsAtomic() }

// AccessKind maps a memory/fence op onto the ordering taxonomy.
func (o Op) AccessKind() memtypes.AccessKind {
	switch {
	case o.IsLoad():
		return memtypes.AccessLoad
	case o.IsStore():
		return memtypes.AccessStore
	case o.IsAtomic():
		return memtypes.AccessAtomic
	case o == Fence:
		return memtypes.AccessFence
	}
	panic(fmt.Sprintf("isa: %v has no access kind", o))
}

// WritesRd reports whether the instruction produces a register result.
func (o Op) WritesRd() bool {
	switch o {
	case MovI, Add, AddI, Sub, Mul, And, Or, Xor, ShlI, ShrI, SltU, Seq, Ld, LdAcq, Cas, Fadd, Swap:
		return true
	}
	return false
}

// Latency returns the functional-unit latency for compute ops.
func (o Op) Latency(imm int64) uint64 {
	switch o {
	case Mul:
		return 3
	case Delay:
		if imm < 1 {
			return 1
		}
		return uint64(imm)
	default:
		return 1
	}
}

// Instr is one decoded instruction.
type Instr struct {
	Op     Op
	Rd     Reg
	Rs1    Reg // base register for memory ops
	Rs2    Reg // data register for St/Fadd/Swap; compare value for Cas
	Rs3    Reg // swap-in value for Cas
	Imm    int64
	Target int // resolved branch target (instruction index)
}

// String disassembles the instruction.
func (in Instr) String() string {
	switch {
	case in.Op == Nop || in.Op == Halt || in.Op == Fence:
		return in.Op.String()
	case in.Op == MovI:
		return fmt.Sprintf("movi r%d, %d", in.Rd, in.Imm)
	case in.Op == Delay:
		return fmt.Sprintf("delay %d", in.Imm)
	case in.Op == AddI || in.Op == ShlI || in.Op == ShrI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op == Ld || in.Op == LdAcq:
		return fmt.Sprintf("%s r%d, [r%d+%d]", in.Op, in.Rd, in.Rs1, in.Imm)
	case in.Op == St || in.Op == StRel:
		return fmt.Sprintf("%s [r%d+%d], r%d", in.Op, in.Rs1, in.Imm, in.Rs2)
	case in.Op == Cas:
		return fmt.Sprintf("cas r%d, [r%d+%d], r%d -> r%d", in.Rd, in.Rs1, in.Imm, in.Rs2, in.Rs3)
	case in.Op == Fadd:
		return fmt.Sprintf("fadd r%d, [r%d+%d], r%d", in.Rd, in.Rs1, in.Imm, in.Rs2)
	case in.Op == Swap:
		return fmt.Sprintf("swap r%d, [r%d+%d], r%d", in.Rd, in.Rs1, in.Imm, in.Rs2)
	case in.Op == Br:
		return fmt.Sprintf("br %d", in.Target)
	case in.Op.IsCondBranch():
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rs1, in.Rs2, in.Target)
	default:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	}
}

// Program is an assembled instruction sequence for one thread.
type Program struct {
	Name   string
	Instrs []Instr
	Labels map[string]int
}

// Len returns the instruction count.
func (p *Program) Len() int { return len(p.Instrs) }

// Disassemble renders the whole program, one instruction per line.
func (p *Program) Disassemble() string {
	rev := make(map[int][]string)
	for name, pc := range p.Labels {
		rev[pc] = append(rev[pc], name)
	}
	out := ""
	for pc, in := range p.Instrs {
		for _, l := range rev[pc] {
			out += l + ":\n"
		}
		out += fmt.Sprintf("  %4d  %s\n", pc, in.String())
	}
	return out
}
