package isa

import (
	"testing"

	"invisifence/internal/memtypes"
)

func TestInterpArithmeticAndBranches(t *testing.T) {
	b := NewBuilder("t")
	b.MovI(R1, 0)
	b.MovI(R2, 1)
	b.MovI(R3, 11)
	b.Label("l")
	b.Add(R1, R1, R2)
	b.AddI(R2, R2, 1)
	b.Bltu(R2, R3, "l")
	b.Halt()
	it := NewInterp(b.MustBuild(), [NumRegs]memtypes.Word{}, nil)
	if err := it.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R1] != 55 {
		t.Fatalf("sum = %d", it.Regs[R1])
	}
	if !it.Halted() {
		t.Fatal("not halted")
	}
}

func TestInterpMemoryAndAtomics(t *testing.T) {
	b := NewBuilder("t")
	b.MovI(R1, 0x100)
	b.MovI(R2, 5)
	b.St(R1, 0, R2)
	b.Ld(R3, R1, 0)          // 5
	b.Fadd(R4, R1, 0, R2)    // old 5, mem 10
	b.Swap(R5, R1, 0, R3)    // old 10, mem 5
	b.Cas(R6, R1, 0, R2, R4) // old 5 == 5: mem = 5(R4=5)... R4 holds 5
	b.Halt()
	it := NewInterp(b.MustBuild(), [NumRegs]memtypes.Word{}, nil)
	if err := it.Run(1000); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R3] != 5 || it.Regs[R4] != 5 || it.Regs[R5] != 10 || it.Regs[R6] != 5 {
		t.Fatalf("regs: %d %d %d %d", it.Regs[R3], it.Regs[R4], it.Regs[R5], it.Regs[R6])
	}
}

func TestInterpR0Immutable(t *testing.T) {
	b := NewBuilder("t")
	b.MovI(R0, 99)
	b.AddI(R1, R0, 1)
	b.Halt()
	it := NewInterp(b.MustBuild(), [NumRegs]memtypes.Word{}, nil)
	if err := it.Run(100); err != nil {
		t.Fatal(err)
	}
	if it.Regs[R0] != 0 || it.Regs[R1] != 1 {
		t.Fatal("R0 must stay zero")
	}
}

func TestInterpInfiniteLoopDetected(t *testing.T) {
	b := NewBuilder("t")
	b.Label("l")
	b.Br("l")
	b.Halt()
	it := NewInterp(b.MustBuild(), [NumRegs]memtypes.Word{}, nil)
	if err := it.Run(1000); err == nil {
		t.Fatal("expected step-limit error")
	}
}

func TestInterpMatchesBuilderPrograms(t *testing.T) {
	// The sync-library emitters must be executable (single-threaded:
	// the lock is free, the barrier has one participant).
	b := NewBuilder("t")
	b.MovI(R20, 0x1000)
	b.SpinLock(R20, 0, R10, R11, RMOFences)
	b.SpinUnlock(R20, 0, RMOFences)
	b.Barrier(R20, 64, R28, R10, R11, 1, RMOFences)
	b.Halt()
	it := NewInterp(b.MustBuild(), [NumRegs]memtypes.Word{}, nil)
	if err := it.Run(10_000); err != nil {
		t.Fatal(err)
	}
	if it.Mem[0x1000] != 0 {
		t.Fatal("lock left held")
	}
}
