package isa

import (
	"reflect"
	"testing"
)

// mpReader builds the MP-reader shape: two loads, two result stores.
func mpReader() *Program {
	b := NewBuilder("reader")
	b.MovI(R4, 0x1000)
	b.MovI(R5, 0x2000)
	b.Ld(R7, R4, 64)
	b.Ld(R8, R4, 0)
	b.St(R5, 0, R7)
	b.St(R5, 64, R8)
	b.Halt()
	return b.MustBuild()
}

func TestFenceSites(t *testing.T) {
	p := mpReader()
	// Memory ops at PCs 2,3,4,5; the first (PC 2) has no earlier access.
	want := []int{3, 4, 5}
	if got := FenceSites(p); !reflect.DeepEqual(got, want) {
		t.Fatalf("FenceSites = %v, want %v", got, want)
	}
}

func TestFenceSitesSkipExistingFence(t *testing.T) {
	b := NewBuilder("fenced")
	b.MovI(R4, 0x1000)
	b.St(R4, 0, R6)
	b.Fence()
	b.Ld(R7, R4, 64)
	b.St(R4, 128, R7)
	b.Halt()
	p := b.MustBuild()
	// PC 3 (the Ld) is preceded by a Fence: redundant, excluded. PC 4 stays.
	want := []int{4}
	if got := FenceSites(p); !reflect.DeepEqual(got, want) {
		t.Fatalf("FenceSites = %v, want %v", got, want)
	}
}

func TestFenceSitesStraightLineNoMem(t *testing.T) {
	b := NewBuilder("pure")
	b.MovI(R1, 1)
	b.Add(R2, R1, R1)
	b.Halt()
	if got := FenceSites(b.MustBuild()); got != nil {
		t.Fatalf("FenceSites = %v, want none", got)
	}
}

func TestInsertFencesStraightLine(t *testing.T) {
	p := mpReader()
	np, err := InsertFences(p, []int{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if np.Len() != p.Len()+2 {
		t.Fatalf("len = %d, want %d", np.Len(), p.Len()+2)
	}
	// Fences land before the original PC-3 and PC-5 instructions.
	if np.Instrs[3].Op != Fence || np.Instrs[6].Op != Fence {
		t.Fatalf("fences misplaced: %s", np.Disassemble())
	}
	if np.Instrs[4].Op != Ld || np.Instrs[7].Op != St {
		t.Fatalf("original instructions shifted wrong: %s", np.Disassemble())
	}
	// Original program untouched.
	if p.Instrs[3].Op != Ld {
		t.Fatal("InsertFences mutated the input program")
	}
}

func TestInsertFencesDedupes(t *testing.T) {
	p := mpReader()
	a, err := InsertFences(p, []int{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := InsertFences(p, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Instrs, b.Instrs) {
		t.Fatalf("duplicate PCs not collapsed:\n%s\nvs\n%s", a.Disassemble(), b.Disassemble())
	}
}

func TestInsertBeforeRemapsBranchesAndLabels(t *testing.T) {
	b := NewBuilder("spin")
	b.MovI(R4, 0x1000)
	b.Label("spin") // PC 1
	b.Ld(R7, R4, 0)
	b.Bne(R7, R0, "spin") // back-edge to PC 1
	b.Ld(R8, R4, 64)
	b.Halt()
	p := b.MustBuild()

	np, err := InsertFences(p, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Layout: movi, FENCE, ld(spin body), bne, FENCE, ld, halt.
	if np.Instrs[1].Op != Fence || np.Instrs[4].Op != Fence {
		t.Fatalf("fences misplaced:\n%s", np.Disassemble())
	}
	// The back-edge must land on the fence inserted at the target point,
	// so the fence executes on every loop iteration.
	bne := np.Instrs[3]
	if bne.Op != Bne || bne.Target != 1 {
		t.Fatalf("branch target = %d, want 1:\n%s", bne.Target, np.Disassemble())
	}
	if np.Labels["spin"] != 1 {
		t.Fatalf("label spin = %d, want 1", np.Labels["spin"])
	}
}

func TestInsertBeforeForwardBranch(t *testing.T) {
	b := NewBuilder("fwd")
	b.MovI(R4, 0x1000)
	b.Beq(R0, R0, "done") // PC 1, forward to PC 4
	b.St(R4, 0, R6)
	b.Ld(R7, R4, 64)
	b.Label("done") // PC 4
	b.Halt()
	p := b.MustBuild()

	np, err := InsertFences(p, []int{3}) // fence before the Ld only
	if err != nil {
		t.Fatal(err)
	}
	// Target 4 shifts by the one insertion before it.
	if np.Instrs[1].Target != 5 {
		t.Fatalf("forward target = %d, want 5:\n%s", np.Instrs[1].Target, np.Disassemble())
	}
	if np.Instrs[5].Op != Halt {
		t.Fatalf("halt misplaced:\n%s", np.Disassemble())
	}
}

func TestInsertBeforeRejectsBadInput(t *testing.T) {
	p := mpReader()
	if _, err := InsertBefore(p, []Insertion{{PC: p.Len() + 1, In: Instr{Op: Fence}}}); err == nil {
		t.Fatal("out-of-range PC accepted")
	}
	if _, err := InsertBefore(p, []Insertion{{PC: 0, In: Instr{Op: Br}}}); err == nil {
		t.Fatal("branch insertion accepted")
	}
}

func TestInsertFencesEmptyIsIdentity(t *testing.T) {
	p := mpReader()
	np, err := InsertFences(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(np.Instrs, p.Instrs) {
		t.Fatal("empty insertion changed the program")
	}
}
