package invisifence

import (
	"encoding/json"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// TestTorusForEdgeCases pins the factorization on the shapes sweeps
// actually request: tiny counts, primes (which degenerate to Nx1), and
// large even counts (which must stay as square as possible).
func TestTorusForEdgeCases(t *testing.T) {
	cases := []struct{ n, w, h int }{
		{1, 1, 1},
		{2, 2, 1},
		{3, 3, 1},   // prime
		{5, 5, 1},   // prime
		{13, 13, 1}, // prime
		{97, 97, 1}, // prime
		{6, 3, 2},
		{36, 6, 6},
		{60, 10, 6},
		{64, 8, 8},
		{100, 10, 10},
		{128, 16, 8},
		{1024, 32, 32},
	}
	for _, c := range cases {
		w, h, err := TorusFor(c.n)
		if err != nil {
			t.Fatalf("TorusFor(%d): %v", c.n, err)
		}
		if w*h != c.n {
			t.Errorf("TorusFor(%d) = %dx%d does not cover the node count", c.n, w, h)
		}
		if w != c.w || h != c.h {
			t.Errorf("TorusFor(%d) = %dx%d, want %dx%d", c.n, w, h, c.w, c.h)
		}
		if h > w {
			t.Errorf("TorusFor(%d): height %d exceeds width %d", c.n, h, w)
		}
	}
	for _, bad := range []int{0, -1, -16} {
		if _, _, err := TorusFor(bad); err == nil {
			t.Errorf("TorusFor(%d): expected error", bad)
		}
	}
}

// TestSweepTableZeroCycleGuard pins the degenerate-result rendering: a
// zero-cycle Result (corrupt cache entry, degenerate config) must render
// "-" for IPC, never NaN.
func TestSweepTableZeroCycleGuard(t *testing.T) {
	cfg := DefaultConfig()
	out := &SweepOutcome{Runs: []SweepRun{
		{Config: cfg, Result: Result{Cycles: 0, Retired: 123}},
		{Config: cfg, Result: Result{Cycles: 1000, Retired: 1600}},
	}}
	s := out.Table().String()
	if strings.Contains(s, "NaN") {
		t.Fatalf("table renders NaN:\n%s", s)
	}
	if !strings.Contains(s, "-") {
		t.Fatalf("zero-cycle row does not render '-':\n%s", s)
	}
	if !strings.Contains(s, "0.100") {
		t.Fatalf("healthy row lost its IPC:\n%s", s)
	}
}

// TestRunLitmusDeterministicOutcomes is the regression test for the
// map-iteration histogram bug: RunLitmus builds its outcome list from a
// map, so without canonical sorting, two identical invocations printed the
// histogram in different orders. Two calls must return identical slices,
// sorted by outcome values.
func TestRunLitmusDeterministicOutcomes(t *testing.T) {
	run := func() LitmusResult {
		r, err := RunLitmus("SB", "tso", 12)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	a, b := run(), run()
	if len(a.Outcomes) < 2 {
		t.Fatalf("want a multi-outcome histogram to make ordering meaningful, got %d", len(a.Outcomes))
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeated RunLitmus calls differ:\n%+v\n%+v", a, b)
	}
	if !sort.SliceIsSorted(a.Outcomes, func(i, j int) bool {
		x, y := a.Outcomes[i].Values, a.Outcomes[j].Values
		for k := range x {
			if x[k] != y[k] {
				return x[k] < y[k]
			}
		}
		return false
	}) {
		t.Fatalf("outcomes not canonically sorted: %+v", a.Outcomes)
	}
}

// TestLinkBandwidthZeroEncodingStable pins the bandwidth-0 invisibility
// guarantee at the serialization layer: a config that never mentions the
// contention knob and a Result from a latency-only run must encode without
// any contention key, so golden results, cached entries, and cache keys
// from before the model existed stay byte-identical (DESIGN.md §10).
func TestLinkBandwidthZeroEncodingStable(t *testing.T) {
	cfg := DefaultConfig()
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cfgJSON), "LinkBandwidth") {
		t.Errorf("bandwidth-0 Config encodes the contention knob (cache keys drift): %s", cfgJSON)
	}
	key0 := resultKey(cfg)
	cfg.Machine.LinkBandwidth = 0 // explicit zero: same cell
	if k := resultKey(cfg); k != key0 {
		t.Errorf("explicit LinkBandwidth 0 changed the cache key: %s vs %s", k, key0)
	}
	cfg.Machine.LinkBandwidth = 4
	if k := resultKey(cfg); k == key0 {
		t.Error("finite LinkBandwidth did not change the cache key: congested cells would collide with latency-only ones")
	}

	resJSON, err := json.Marshal(Result{Cycles: 1, Validated: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Messages", "QueueDelayCycles", "LinkBusyCycles", "MaxQueueDepth"} {
		if strings.Contains(string(resJSON), field) {
			t.Errorf("zero-contention Result encodes %q (golden bytes drift): %s", field, resJSON)
		}
	}
}

// TestSweepLinkBandwidthAxis pins the contention axis: link_bandwidths
// expands into per-cell MachineConfig.LinkBandwidth values (distinct cache
// cells), and the default axis keeps the historical single-cell grid.
func TestSweepLinkBandwidthAxis(t *testing.T) {
	spec := SweepSpec{
		Workloads:      []string{"apache"},
		Variants:       []string{"sc"},
		LinkBandwidths: []uint64{0, 4},
	}
	jobs, err := spec.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("got %d jobs, want 2 (linkbw axis)", len(jobs))
	}
	if jobs[0].Machine.LinkBandwidth != 0 || jobs[1].Machine.LinkBandwidth != 4 {
		t.Errorf("axis not applied: bandwidths %d, %d", jobs[0].Machine.LinkBandwidth, jobs[1].Machine.LinkBandwidth)
	}
	if resultKey(jobs[0]) == resultKey(jobs[1]) {
		t.Error("linkbw axis cells share a cache key")
	}

	plain, err := SweepSpec{Workloads: []string{"apache"}, Variants: []string{"sc"}}.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(plain) != 1 || !reflect.DeepEqual(plain[0], jobs[0]) {
		t.Error("default link-bandwidth axis changed the historical grid")
	}
}
