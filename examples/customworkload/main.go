// Customworkload: author a new multiprocessor workload with the ISA
// builder and synchronization library, then run it under two consistency
// implementations.
//
// The workload is a four-stage software pipeline: each thread owns a stage,
// pops work from its inbox ring, transforms it, and pushes it to the next
// stage's ring under a per-ring lock — a classic producer/consumer pattern
// whose lock fences are exactly what InvisiFence makes free.
//
//	go run ./examples/customworkload
package main

import (
	"fmt"
	"log"

	"invisifence"
	"invisifence/internal/cache"
	"invisifence/internal/consistency"
	ifcore "invisifence/internal/core"
	"invisifence/internal/cpu"
	"invisifence/internal/isa"
	"invisifence/internal/memctrl"
	"invisifence/internal/memtypes"
	"invisifence/internal/network"
	"invisifence/internal/node"
	"invisifence/internal/sim"
)

const (
	stages   = 4
	items    = 64
	ringBase = memtypes.Addr(0x40000)
	ringSize = memtypes.Addr(0x1000) // per-stage region
	// Per-ring layout: +0 lock, +8 head, +16 tail, +64.. item slots.
)

func ringAddr(stage int) memtypes.Addr { return ringBase + memtypes.Addr(stage)*ringSize }

// buildStage emits the program for one pipeline stage.
func buildStage(stage int, fp isa.FencePolicy) *isa.Program {
	b := isa.NewBuilder(fmt.Sprintf("stage%d", stage))
	in := ringAddr(stage)
	out := ringAddr((stage + 1) % stages)
	b.MovI(isa.R20, int64(in))
	b.MovI(isa.R21, int64(out))
	b.MovI(isa.R2, 0) // processed count
	b.MovI(isa.R3, items)

	b.Label("loop")
	// Pop from our inbox: lock, check head<tail, read slot, bump head.
	b.Label("retry")
	b.SpinLockBackoff(isa.R20, 0, isa.R10, isa.R11, 8, fp)
	b.Ld(isa.R6, isa.R20, 8)  // head
	b.Ld(isa.R7, isa.R20, 16) // tail
	b.Bltu(isa.R6, isa.R7, "have")
	b.SpinUnlock(isa.R20, 0, fp)
	b.Br("retry")
	b.Label("have")
	b.ShlI(isa.R8, isa.R6, 3)
	b.Add(isa.R8, isa.R20, isa.R8)
	b.Ld(isa.R9, isa.R8, 64) // item value
	b.AddI(isa.R6, isa.R6, 1)
	b.St(isa.R20, 8, isa.R6)
	b.SpinUnlock(isa.R20, 0, fp)

	// Transform: a little compute.
	b.AddI(isa.R9, isa.R9, 1)

	// Final stage retires items instead of forwarding them.
	if stage == stages-1 {
		b.MovI(isa.R13, int64(ringBase)-64) // results cell
		b.Ld(isa.R14, isa.R13, 0)
		b.Add(isa.R14, isa.R14, isa.R9)
		b.St(isa.R13, 0, isa.R14)
	} else {
		// Push to the next stage: lock, append at tail.
		b.SpinLockBackoff(isa.R21, 0, isa.R10, isa.R11, 8, fp)
		b.Ld(isa.R7, isa.R21, 16)
		b.ShlI(isa.R8, isa.R7, 3)
		b.Add(isa.R8, isa.R21, isa.R8)
		b.St(isa.R8, 64, isa.R9)
		b.AddI(isa.R7, isa.R7, 1)
		b.St(isa.R21, 16, isa.R7)
		b.SpinUnlock(isa.R21, 0, fp)
	}
	b.AddI(isa.R2, isa.R2, 1)
	b.Bltu(isa.R2, isa.R3, "loop")
	b.Halt()
	return b.MustBuild()
}

func runPipeline(model consistency.Model, eng ifcore.Config, name string) {
	fp := isa.NoFences
	if model == consistency.RMO {
		fp = isa.RMOFences
	}
	progs := make([]*isa.Program, stages)
	for s := 0; s < stages; s++ {
		progs[s] = buildStage(s, fp)
	}
	cfg := sim.Config{
		Net: network.Config{Width: 2, Height: 2, HopLatency: 100, LocalLatency: 1},
		Node: node.Config{
			Model:  model,
			Engine: eng,
			Core:   cpu.DefaultConfig(),
			L1:     cache.Config{SizeBytes: 64 << 10, Ways: 2, HitLatency: 2, Name: "L1"},
			L2:     cache.Config{SizeBytes: 1 << 20, Ways: 8, HitLatency: 25, Name: "L2"},
			Memory: memctrl.Config{AccessLatency: 160, Banks: 64, BankBusy: 8},
			MSHRs:  32, SBCapacity: 8, StorePrefetchDepth: 8,
			MsgsPerCycle: 8, SnoopLQ: true, FillHoldCycles: 8,
		},
		MaxCycles:      100_000_000,
		WatchdogCycles: 2_000_000,
	}
	if !cfg.Node.UsesFIFOSB() && eng.MaxCheckpoints > 1 {
		cfg.Node.SBCapacity = 32
	}
	if cfg.Node.UsesFIFOSB() {
		cfg.Node.SBCapacity = 64
	}
	s := sim.New(cfg, progs, nil)
	// Seed stage 0's inbox with the initial items.
	r0 := ringAddr(0)
	for i := 0; i < items; i++ {
		s.WriteWord(r0+64+memtypes.Addr(i*8), memtypes.Word(i))
	}
	s.WriteWord(r0+16, items) // tail
	res := s.Run()
	if !res.Finished {
		log.Fatalf("%s: pipeline did not finish", name)
	}
	got := s.ReadWord(ringBase - 64)
	// Each item passes 4 stages, +1 each: item i retires as i+4... the
	// last stage only adds the final +1 after three earlier increments.
	want := memtypes.Word(0)
	for i := 0; i < items; i++ {
		want += memtypes.Word(i + stages)
	}
	status := "OK"
	if got != want {
		status = fmt.Sprintf("MISMATCH (want %d)", want)
	}
	fmt.Printf("%-12s cycles=%9d result=%5d %s\n", name, res.Cycles, got, status)
}

func main() {
	fmt.Printf("4-stage locked pipeline, %d items (custom workload via the ISA builder)\n\n", items)
	// The SC configurations are omitted: a lock-polling pipeline under
	// SC's retirement rules crawls — which is rather the paper's point
	// about strong models and synchronization-heavy code.
	runPipeline(consistency.RMO, ifcore.Config{Mode: ifcore.ModeOff, Model: consistency.RMO}, "rmo")
	runPipeline(consistency.RMO, ifcore.DefaultSelective(consistency.RMO), "invisi-rmo")
	_ = invisifence.Workloads() // the packaged workloads remain available too
}
