// Sweep example: a store-buffer-depth sensitivity study run through the
// experiment-orchestration subsystem.
//
// A declarative SweepSpec expands to the cross-product of its axes; the
// harness runs the grid on a worker pool and persists every result to a
// content-addressed cache, so rerunning this example (or any overlapping
// grid, or cmd/sweep itself) simulates only cells it has never seen.
//
//	go run ./examples/sweep
//	go run ./examples/sweep   # again: everything served from cache
package main

import (
	"fmt"
	"log"
	"os"

	"invisifence"
)

func main() {
	spec := invisifence.SweepSpec{
		Workloads: []string{"oltp-oracle", "ocean"},
		Variants:  []string{"invisi-sc"},
		SBDepths:  []int{2, 4, 8, 16}, // how much coalescing buffer does selective SC need?
		Seeds:     []int64{1},
		Scale:     0.3, // keep the demo quick
	}
	fmt.Printf("sweeping %d configurations (store-buffer depth sensitivity)...\n", spec.Size())

	out, err := invisifence.Sweep(spec, invisifence.SweepOptions{
		Parallel: 4,
		CacheDir: ".invisifence-cache",
		Progress: func(done, total int, cfg invisifence.Config, cached bool) {
			src := "ran"
			if cached {
				src = "cache"
			}
			fmt.Fprintf(os.Stderr, "  [%d/%d] %-5s %s/%s\n", done, total, src,
				cfg.Workload, cfg.Variant.Name)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Print(out.Table().String())
	fmt.Printf("\n%d of %d runs simulated in this process; %s\n",
		out.Simulated, len(out.Runs), out.CacheStats)
	if out.Simulated == 0 {
		fmt.Println("every result came from the persistent cache — rerun with a clean")
		fmt.Println(".invisifence-cache to watch the grid execute for real.")
	}
}
