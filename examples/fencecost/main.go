// Fencecost: what memory fences cost, and how InvisiFence removes them.
//
// Runs the lock-intensive OLTP workload under relaxed memory order (RMO),
// whose MEMBARs at lock acquire/release stall the store buffer, and
// compares four implementations from the paper's Figure 12 grouping:
//
//	rmo              conventional: every fence drains the store buffer
//	Invisi_rmo       selective speculation through fences and atomics
//	Invisi_cont      continuous chunks, abort-on-conflict
//	Invisi_cont_CoV  continuous chunks with commit-on-violate deferral
//
//	go run ./examples/fencecost
package main

import (
	"fmt"
	"log"

	"invisifence"
)

func main() {
	base := invisifence.DefaultConfig()
	base.Workload = "oltp-oracle"
	base.Scale = 1.0

	variants := []invisifence.Variant{
		invisifence.ConventionalVariant(invisifence.RMO),
		invisifence.SelectiveVariant(invisifence.RMO),
		invisifence.ContinuousVariant(false),
		invisifence.ContinuousVariant(true),
	}
	fmt.Println("oltp-oracle, 16 cores: fence/atomic ordering cost across implementations")
	fmt.Printf("\n%-18s %10s %9s %9s %9s %12s\n",
		"variant", "cycles", "SBdrain", "violation", "%spec", "CoV saves")
	var rmoCycles uint64
	for _, v := range variants {
		cfg := base
		cfg.Variant = v
		r, err := invisifence.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		if v.Name == "rmo" {
			rmoCycles = r.Cycles
		}
		cov := "-"
		if r.CoVDeferrals > 0 {
			cov = fmt.Sprintf("%d/%d", r.CoVSaves, r.CoVDeferrals)
		}
		fmt.Printf("%-18s %10d %8.1f%% %8.1f%% %8.1f%% %12s   (%.2fx vs rmo)\n",
			v.Name, r.Cycles,
			100*r.Breakdown.Frac(3), 100*r.Breakdown.Frac(4), 100*r.SpecFraction,
			cov, float64(rmoCycles)/float64(r.Cycles))
	}
	fmt.Println("\nthe paper's §6.6 story: plain continuous speculation suffers violations;")
	fmt.Println("commit-on-violate defers the conflicting request long enough to commit,")
	fmt.Println("recovering most of the loss without giving up continuous operation.")
}
