// Litmus: observe the memory model directly.
//
// Runs the store-buffering (Dekker) and message-passing litmus tests under
// conventional SC/TSO/RMO and under InvisiFence enforcing SC, printing the
// outcome histograms. The relaxed outcome (both loads see zero) appears
// under TSO and RMO but never under SC — conventional or speculative:
// InvisiFence's deep speculation leaves the model intact.
//
//	go run ./examples/litmus
package main

import (
	"fmt"
	"log"

	"invisifence"
)

func main() {
	const seeds = 24
	for _, test := range []string{"SB", "MP"} {
		fmt.Printf("== litmus %s (%d interleaving seeds per config) ==\n", test, seeds)
		for _, config := range []string{"sc", "tso", "rmo", "invisi-sc", "continuous", "aso"} {
			r, err := invisifence.RunLitmus(test, config, seeds)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-12s forbidden=%d relaxed=%d outcomes:", config, r.Forbidden, r.Relaxed)
			for _, o := range r.Outcomes {
				fmt.Printf("  %v x%d", o.Values[:2], o.Count)
			}
			fmt.Println()
			if r.Forbidden > 0 {
				log.Fatalf("%s/%s: forbidden outcome observed!", test, config)
			}
		}
		fmt.Println()
	}
	fmt.Println("no forbidden outcome appeared under any implementation.")
}
