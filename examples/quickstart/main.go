// Quickstart: run one workload under conventional SC and under
// INVISIFENCE-SELECTIVE enforcing SC, and compare.
//
// This is the paper's headline claim in miniature: speculation makes the
// strongest memory model perform like a relaxed one, while the workload's
// end-to-end data invariant (validated after every run) proves the
// speculation was architecturally invisible.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"invisifence"
)

func main() {
	base := invisifence.DefaultConfig()
	base.Workload = "apache"
	base.Scale = 0.5 // keep the demo quick

	conventional := base
	conventional.Variant = invisifence.ConventionalVariant(invisifence.SC)

	speculative := base
	speculative.Variant = invisifence.SelectiveVariant(invisifence.SC)

	fmt.Println("running apache on a 16-core simulated multiprocessor...")
	conv, err := invisifence.Run(conventional)
	if err != nil {
		log.Fatal(err)
	}
	spec, err := invisifence.Run(speculative)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-22s %12s %10s %10s %10s\n", "variant", "cycles", "SB drain", "SB full", "violation")
	for _, r := range []invisifence.Result{conv, spec} {
		fmt.Printf("%-22s %12d %9.1f%% %9.1f%% %9.1f%%\n",
			r.Config.Variant.Name, r.Cycles,
			100*r.Breakdown.Frac(3), 100*r.Breakdown.Frac(2), 100*r.Breakdown.Frac(4))
	}
	fmt.Printf("\nInvisiFence-SC speedup over conventional SC: %.2fx\n",
		float64(conv.Cycles)/float64(spec.Cycles))
	fmt.Printf("speculation: %d episodes, %d commits, %d aborts, %.0f%% of cycles\n",
		spec.Speculations, spec.Commits, spec.Aborts, 100*spec.SpecFraction)
	fmt.Println("\nboth runs validated the workload's data invariant: the speculation was invisible.")
}
