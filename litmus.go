package invisifence

import (
	"fmt"
	"sort"

	"invisifence/internal/litmus"
)

// LitmusOutcome is one observed litmus-test outcome with its frequency.
type LitmusOutcome struct {
	Values [4]uint64
	Count  int
}

// LitmusResult summarizes a litmus sweep under one implementation.
type LitmusResult struct {
	Test      string
	Config    string
	Runs      int
	Outcomes  []LitmusOutcome
	Forbidden int // runs that produced a model-forbidden outcome (must be 0)
	Relaxed   int // runs showing the tracked relaxed outcome
}

// LitmusTests lists the available litmus tests (SB, MP, LB, IRIW, SB+F,
// WRC, CoRR, RMW, ISA2, 2+2W, R, S).
func LitmusTests() []string {
	names := make([]string, len(litmus.Tests))
	for i, t := range litmus.Tests {
		names[i] = t.Name
	}
	return names
}

// LitmusConfigs lists the implementations the litmus harness can drive.
func LitmusConfigs() []string {
	specs := litmus.AllConfigs()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// RunLitmus sweeps one litmus test under one implementation across seeds,
// reporting outcome frequencies and any forbidden observations.
func RunLitmus(test, config string, seeds int) (LitmusResult, error) {
	var tt *litmus.Test
	for i := range litmus.Tests {
		if litmus.Tests[i].Name == test {
			tt = &litmus.Tests[i]
			break
		}
	}
	if tt == nil {
		return LitmusResult{}, fmt.Errorf("invisifence: unknown litmus test %q (have %v)", test, LitmusTests())
	}
	var spec *litmus.ConfigSpec
	for _, s := range litmus.AllConfigs() {
		if s.Name == config {
			spec = &s // per-iteration variable (go >= 1.22): safe to retain
			break
		}
	}
	if spec == nil {
		return LitmusResult{}, fmt.Errorf("invisifence: unknown litmus config %q (have %v)", config, LitmusConfigs())
	}
	r := litmus.Run(*tt, *spec, seeds)
	out := LitmusResult{
		Test:      r.Test,
		Config:    r.Config,
		Runs:      r.Runs,
		Forbidden: len(r.Violations),
		Relaxed:   r.Relaxed,
	}
	for o, n := range r.Outcomes {
		var vals [4]uint64
		for i, v := range o {
			vals[i] = uint64(v)
		}
		out.Outcomes = append(out.Outcomes, LitmusOutcome{Values: vals, Count: n})
	}
	// Map iteration order is randomized per invocation; sort outcomes
	// canonically by their observed values so repeated sweeps (and repeated
	// cmd/litmus runs) report byte-identical histograms.
	sort.Slice(out.Outcomes, func(i, j int) bool {
		a, b := out.Outcomes[i].Values, out.Outcomes[j].Values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out, nil
}
